(* Benchmark harness: regenerates every experiment of DESIGN.md's index.

   The paper's evaluation consists of (a) the worked examples of Figures
   1-10 / loops L1-L24, and (b) the complexity claim that the algorithm
   is "linear in the size of the SSA graph, not iterative". The harness
   therefore prints:

     1. the classification reproduction for every figure (paper row vs
        measured row) — experiments F1..F10, L14, T1;
     2. Bechamel timings for the SSA classifier vs the classical
        iterative baseline over growing loop bodies and derived-IV chain
        depths — experiments C1 (speed/shape) and C2 (generality);
     3. dependence-testing reproductions for the §6 examples.

   Run with:  dune exec bench/main.exe *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Workload generators                                                  *)
(* ------------------------------------------------------------------ *)

(* A loop body of [n] independent linear updates: SSA-graph size grows
   linearly with [n]. *)
let straightline_loop n =
  let vars = List.init n (fun i -> Printf.sprintf "v%d" i) in
  let inits = List.map (fun v -> Printf.sprintf "%s = 0" v) vars in
  let updates = List.map (fun v -> Printf.sprintf "  %s = %s + 1" v v) vars in
  let uses = List.mapi (fun i v -> Printf.sprintf "A(%d) = %s" i v) vars in
  String.concat "\n"
    (inits
    @ [ "T: loop" ]
    @ updates
    @ [ "  if v0 > 100 exit"; "endloop" ]
    @ uses)

(* A derived chain of depth [k], announced in reverse program order: the
   classical algorithm discovers one link per pass (quadratic work), the
   SSA classifier does it in one Tarjan pass. *)
let chain_loop k =
  let defs =
    List.init k (fun idx ->
        let j = k - idx in
        if j = 1 then "  j1 = i * 2" else Printf.sprintf "  j%d = j%d + 1" j (j - 1))
  in
  let uses = List.init k (fun idx -> Printf.sprintf "A(%d) = j%d" idx (idx + 1)) in
  String.concat "\n"
    ([ "i = 0"; "T: loop"; "  i = i + 1" ]
    @ defs
    @ [ "  if i > 100 exit"; "endloop" ]
    @ uses)

(* A *forward* chain: j1 = i*2; j2 = j1 + 1; ... — same-iteration derived
   IVs, the friendly textual order. *)
let forward_chain_loop k =
  let defs =
    List.init k (fun idx ->
        let j = idx + 1 in
        if j = 1 then "  j1 = i * 2" else Printf.sprintf "  j%d = j%d + 1" j (j - 1))
  in
  let uses = List.init k (fun idx -> Printf.sprintf "A(%d) = j%d" idx (idx + 1)) in
  String.concat "\n"
    ([ "i = 0"; "T: loop"; "  i = i + 1" ]
    @ defs
    @ [ "  if i > 100 exit"; "endloop" ]
    @ uses)

(* Mixed-class body: every recurrence shape the paper names. *)
let mixed_loop () =
  {|
j = 1
k = 1
l = 1
m = 0
w = 9
p = 1
q = 2
mono = 0
T: for i = 1 to 100 loop
  j = j + i
  k = k + j + 1
  l = l * 2 + 1
  m = 3 * m + 2 * i + 1
  w = i
  t = p
  p = q
  q = t
  if ?? then
    mono = mono + 1
  else
    mono = mono + 2
  endif
  A(j) = k + l + m + w + p + mono
endloop
|}

(* ------------------------------------------------------------------ *)
(* Reproduction tables (figures -> measured classifications)            *)
(* ------------------------------------------------------------------ *)

let figure_rows =
  [
    ( "F1 (Fig 1, loop L7)",
      "j = n\nL7: loop\n  i = j + c\n  j = i + k\nendloop",
      [
        ("j2", "(L7, n1, c1+k1)");
        ("i1", "(L7, n1+c1, c1+k1)" (* the paper's i3; i's dead phi is pruned here *));
        ("j3", "(L7, n1+c1+k1, c1+k1)");
      ] );
    ( "F3 (Fig 3, loop L8)",
      "i = 1\nL8: loop\n  if ?? then\n    i = i + 2\n  else\n    i = i + 2\n  endif\nendloop\nA(i) = 1",
      [ ("i2", "(L8, 1, 2)"); ("i3", "(L8, 3, 2)"); ("i4", "(L8, 3, 2)"); ("i5", "(L8, 3, 2)") ] );
    ( "F4 (Fig 4, loop L10)",
      "k = 9\nj = 8\ni = 1\nL10: loop\n  A(k) = A(j) + A(i)\n  k = j\n  j = i\n  i = i + 1\nendloop",
      [
        ("i2", "(L10, 1, 1)");
        ("j2", "wrap order 1 of (L10, 1, 1)");
        ("k2", "wrap order 2 of (L10, 1, 1)");
      ] );
    ( "F5 (Fig 5, loop L13)",
      "j = 1\nk = 2\nl = 3\nL13: loop\n  t = j\n  j = k\n  k = l\n  l = t\n  A(j) = A(k)\nendloop",
      [
        ("j2", "periodic period 3 [1;2;3] phase 0");
        ("k2", "periodic period 3 phase 1");
        ("l2", "periodic period 3 phase 2");
      ] );
    ( "F6 (Fig 6, loop L16)",
      "k = 0\nL16: loop\n  if ?? then\n    k = k + 1\n  else\n    k = k + 2\n  endif\nendloop\nA(k) = 1",
      [ ("k2", "monotonic strictly increasing") ] );
    ( "F7/F8 (Figs 7-8, loops L17/L18)",
      "k = 0\nL17: loop\n  i = 1\n  L18: loop\n    k = k + 2\n    if i > 100 exit\n    i = i + 1\n  endloop\n  k = k + 2\nendloop",
      [
        ("k3", "(L18, (L17, 0, 204), 2)");
        ("k2", "(L17, 0, 204)");
        ("k5", "(L17, 204, 204)");
      ] );
    ( "F9 (Fig 9, loops L19/L20)",
      "j = 0\nL19: for i = 1 to n loop\n  j = j + i\n  L20: for k = 1 to i loop\n    j = j + 1\n  endloop\nendloop",
      [
        ("j2", "(L19, 0, <quadratic>)");
        ("j4", "(L20, (L19, 1, ...), 1)");
        ("i2", "(L19, 1, 1)");
      ] );
    ( "L14 closed forms",
      "j = 1\nk = 1\nl = 1\nm = 0\nL14: for i = 1 to n loop\n  j = j + i\n  k = k + j + 1\n  l = l * 2 + 1\n  m = 3 * m + 2 * i + 1\nendloop\nA(j) = k + l + m",
      [
        ("j3", "(h^2+3h+4)/2");
        ("k3", "(h^3+6h^2+23h+24)/6");
        ("l3", "2^(h+2) - 1");
        ("m3", "6*3^h - h - 3");
      ] );
  ]

let print_reproductions () =
  print_endline "== Experiment F*: figure classifications (paper vs measured) ==";
  List.iter
    (fun (title, src, rows) ->
      Printf.printf "--- %s ---\n" title;
      let t = Analysis.Driver.analyze_source src in
      List.iter
        (fun (name, paper) ->
          let measured =
            match Analysis.Driver.class_of_name t name with
            | Some c -> Analysis.Driver.class_to_string t c
            | None -> "<missing>"
          in
          Printf.printf "  %-5s paper: %-34s measured: %s\n" name paper measured)
        rows)
    figure_rows;
  print_newline ()

let print_trip_counts () =
  print_endline "== Experiment T1: trip counts (section 5.2 table) ==";
  let show title src loop expected =
    let t = Analysis.Driver.analyze_source src in
    let loops = Ir.Ssa.loops (Analysis.Driver.ssa t) in
    let measured =
      match Ir.Loops.find_by_name loops loop with
      | Some lp ->
        Format.asprintf "%a"
          (Analysis.Trip_count.pp_with (fun id ->
               Ir.Ssa.primary_name (Analysis.Driver.ssa t) id))
          (Analysis.Driver.trip_count t lp.Ir.Loops.id)
      | None -> "<loop missing>"
    in
    Printf.printf "  %-38s paper: %-10s measured: %s\n" title expected measured
  in
  show "L18: i=1; ...; if i > 100 exit"
    "k = 0\nL17: loop\n  i = 1\n  L18: loop\n    k = k + 2\n    if i > 100 exit\n    i = i + 1\n  endloop\nendloop"
    "L18" "100";
  show "L20: for k = 1 to i (triangular)"
    "j = 0\nL19: for i = 1 to n loop\n  L20: for k = 1 to i loop\n    j = j + 1\n  endloop\nendloop\nA(0) = j"
    "L20" "i";
  show "for i = 1 to n" "s = 0\nT: for i = 1 to n loop\n  s = s + 1\nendloop\nA(0) = s" "T" "n";
  show "for i = 10 to 1 by -2"
    "s = 0\nT: for i = 10 to 1 by -2 loop\n  s = s + 1\nendloop\nA(0) = s" "T" "5";
  print_newline ()

let print_dependence_repro () =
  print_endline "== Experiments L21/L22/L23, F10: dependence testing (section 6) ==";
  let show title src =
    Printf.printf "--- %s ---\n" title;
    let t = Analysis.Driver.analyze_source src in
    let g = Dependence.Dep_graph.build t in
    if g = [] then print_endline "  (no dependences)"
    else
      List.iter
        (fun e -> Format.printf "  %a@." (Dependence.Dep_graph.pp_edge t) e)
        g
  in
  show "L21: A(i) = A(j - i) with i=(L21,1,1), j-i=(L21,2,1)"
    "i = 0\nj = 3\nL21: loop\n  i = i + 1\n  A(i) = A(j - i)\n  j = j + 2\n  if i > 50 exit\nendloop";
  show "L22: periodic relaxation ('=' on members -> '<>' on iterations)"
    "j = 1\nk = 2\nl = 3\nL22: loop\n  A(2 * j) = A(2 * k)\n  temp = j\n  j = k\n  k = l\n  l = temp\n  if ?? exit\nendloop";
  show "L23/L24 triangular nest (iteration-space distance (1,-1))"
    "L23: for i = 1 to n loop\n  L24: for j = i + 1 to n loop\n    A(i, j) = A(i - 1, j)\n  endloop\nendloop";
  show "Fig 10: monotonic directions (B '=', F flow '<=', F anti '<')"
    "k = 0\nL15: for i = 1 to n loop\n  F(k) = A(i)\n  if ?? then\n    k = k + 1\n    B(k) = A(i)\n    E(i) = B(k)\n  endif\n  G(i) = F(k)\nendloop";
  show "L9: wrap-around subscript (dependence holds after 1 iteration)"
    "iml = n\nL9: for i = 1 to n loop\n  A(i) = A(iml) + 1\n  iml = i\nendloop";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Generality comparison (experiment C2)                                *)
(* ------------------------------------------------------------------ *)

let print_generality () =
  print_endline "== Experiment C2: generality (variables recognized) ==";
  let cases =
    [
      ( "textbook (i, j=i*4, k=j+2)",
        "i = 0\nT: loop\n  i = i + 1\n  j = i * 4\n  k = j + 2\n  if i > 9 exit\nendloop\nA(j) = k"
      );
      ( "mutual pair (loop L2)",
        "j = 0\nT: loop\n  i = j + 1\n  j = i + 2\n  if j > 50 exit\nendloop\nA(i) = j" );
      ( "conditional same-offset (Fig 3)",
        "i = 1\nT: loop\n  if ?? then\n    i = i + 2\n  else\n    i = i + 2\n  endif\n  if i > 40 exit\nendloop\nA(i) = 1"
      );
      ("mixed classes (L14 + periodic + monotonic)", mixed_loop ());
    ]
  in
  Printf.printf "  %-45s %10s %10s\n" "workload" "classical" "ssa-based";
  List.iter
    (fun (name, src) ->
      let classical =
        List.fold_left
          (fun acc (_, r) -> acc + Analysis.Baseline.iv_count r)
          0
          (Analysis.Baseline.find_all (Ir.Lower.lower_source src))
      in
      let t = Analysis.Driver.analyze_source src in
      let ssa = Analysis.Driver.ssa t in
      let ours = ref 0 in
      Ir.Cfg.iter_instrs (Ir.Ssa.cfg ssa) (fun _ (i : Ir.Instr.t) ->
          match Analysis.Driver.class_of t i.Ir.Instr.id with
          | Analysis.Ivclass.Linear _ | Analysis.Ivclass.Poly _
          | Analysis.Ivclass.Geometric _ | Analysis.Ivclass.Wrap _
          | Analysis.Ivclass.Periodic _ | Analysis.Ivclass.Monotonic _ ->
            incr ours
          | _ -> ());
      Printf.printf "  %-45s %10d %10d\n" name classical !ours)
    cases;
  print_endline
    "  (classical counts source variables; ssa-based counts classified defs —";
  print_endline "   the shape that matters: 0 vs many on the paper's new classes)";
  print_newline ()

let print_ablations () =
  print_endline "== Ablations: what each design piece buys ==";
  (* (a) SCCP: constant initial values vs symbolic ones. *)
  let src = "c = 2 + 3\nk = 0\nT: loop\n  k = k + c\n  if k > 100 exit\nendloop\nA(k) = 1" in
  let step use_sccp =
    let t = Analysis.Driver.analyze_source ~use_sccp src in
    match Analysis.Driver.class_of_name t "k2" with
    | Some c -> Analysis.Driver.class_to_string t c
    | None -> "<missing>"
  in
  Printf.printf "  SCCP on : k2 = %s\n" (step true);
  Printf.printf "  SCCP off: k2 = %s\n" (step false);
  (* (b) Exit-value substitution: the triangular quadratic only exists
     because inner loops collapse to closed-form exit values. *)
  let tri =
    "j = 0\nL19: for i = 1 to n loop\n  j = j + i\n  L20: for k = 1 to i loop\n    j = j + 1\n  endloop\nendloop"
  in
  let t = Analysis.Driver.analyze_source tri in
  (match Analysis.Driver.class_of_name t "j2" with
   | Some c ->
     Printf.printf "  with exit-value substitution: j2 = %s\n"
       (Analysis.Driver.class_to_string t c)
   | None -> ());
  print_endline
    "  (without section-5.3 exit values the outer cycle would touch an\n\
    \   unclassifiable inner def and j2 would be unknown)";
  (* (c) Coupled-subscript solving: the L23/L24 distance vector. *)
  let nest =
    "L23: for i = 1 to n loop\n  L24: for j = i + 1 to n loop\n    A(i, j) = A(i - 1, j)\n  endloop\nendloop"
  in
  let t = Analysis.Driver.analyze_source nest in
  List.iter
    (fun e -> Format.printf "  coupled system: %a@." (Dependence.Dep_graph.pp_edge t) e)
    (Dependence.Dep_graph.build t);
  print_newline ()

let print_pass_counts () =
  print_endline "== Experiment C1a: scans over the loop body (iterative vs one pass) ==";
  Printf.printf "  %-28s %18s %12s\n" "reversed chain depth" "classical passes" "ssa passes";
  List.iter
    (fun k ->
      let cfg = Ir.Lower.lower_source (chain_loop k) in
      let passes =
        List.fold_left
          (fun acc (_, r) -> Stdlib.max acc r.Analysis.Baseline.passes)
          0
          (Analysis.Baseline.find_all cfg)
      in
      (* The SSA classifier visits each SSA-graph node once by
         construction (Tarjan emission order): always one pass. *)
      Printf.printf "  %-28d %18d %12d\n" k passes 1)
    [ 4; 16; 64 ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel timing benches (experiment C1)                              *)
(* ------------------------------------------------------------------ *)

let classify_whole src () = ignore (Analysis.Driver.analyze_source src)

let classify_prepared ssa () =
  let loops = Ir.Ssa.loops ssa in
  List.iter
    (fun (lp : Ir.Loops.loop) -> ignore (Analysis.Classify.classify_loop ssa lp))
    (Ir.Loops.postorder loops)

let baseline_prepared cfg () = ignore (Analysis.Baseline.find_all cfg)

let tests () =
  let scaling =
    List.concat_map
      (fun n ->
        let src = straightline_loop n in
        let ssa = Ir.Ssa.of_source src in
        let cfg = Ir.Lower.lower_source src in
        [
          Test.make
            ~name:(Printf.sprintf "scaling/ssa-classify/%d" n)
            (Staged.stage (classify_prepared ssa));
          Test.make
            ~name:(Printf.sprintf "scaling/classical/%d" n)
            (Staged.stage (baseline_prepared cfg));
        ])
      [ 10; 40; 160 ]
  in
  let fwd_chains =
    List.concat_map
      (fun k ->
        let src = forward_chain_loop k in
        let ssa = Ir.Ssa.of_source src in
        let cfg = Ir.Lower.lower_source src in
        [
          Test.make
            ~name:(Printf.sprintf "fwd-chain/ssa-classify/%d" k)
            (Staged.stage (classify_prepared ssa));
          Test.make
            ~name:(Printf.sprintf "fwd-chain/classical/%d" k)
            (Staged.stage (baseline_prepared cfg));
        ])
      [ 4; 16; 64 ]
  in
  let chains =
    List.concat_map
      (fun k ->
        let src = chain_loop k in
        let ssa = Ir.Ssa.of_source src in
        let cfg = Ir.Lower.lower_source src in
        [
          Test.make
            ~name:(Printf.sprintf "chain/ssa-classify/%d" k)
            (Staged.stage (classify_prepared ssa));
          Test.make
            ~name:(Printf.sprintf "chain/classical/%d" k)
            (Staged.stage (baseline_prepared cfg));
        ])
      [ 4; 16; 64 ]
  in
  let pipeline =
    [
      Test.make ~name:"pipeline/fig1"
        (Staged.stage
           (classify_whole "j = n\nL7: loop\n  i = j + c\n  j = i + k\nendloop"));
      Test.make ~name:"pipeline/l14-closed-forms"
        (Staged.stage (classify_whole (mixed_loop ())));
      Test.make ~name:"pipeline/fig9-triangular"
        (Staged.stage
           (classify_whole
              "j = 0\nL19: for i = 1 to n loop\n  j = j + i\n  L20: for k = 1 to i loop\n    j = j + 1\n  endloop\nendloop"));
      Test.make ~name:"pipeline/dependence-graph"
        (Staged.stage (fun () ->
             let t =
               Analysis.Driver.analyze_source
                 "L23: for i = 1 to n loop\n  L24: for j = i + 1 to n loop\n    A(i, j) = A(i - 1, j)\n  endloop\nendloop"
             in
             ignore (Dependence.Dep_graph.build t)));
      Test.make ~name:"pipeline/sccp"
        (Staged.stage (fun () ->
             ignore (Analysis.Sccp.run (Ir.Ssa.of_source (straightline_loop 40)))));
      Test.make ~name:"pipeline/ssa-construction"
        (Staged.stage (fun () -> ignore (Ir.Ssa.of_source (straightline_loop 40))));
    ]
  in
  scaling @ fwd_chains @ chains @ pipeline

let run_benchmarks () =
  print_endline "== Experiment C1: timing (Bechamel, monotonic clock) ==";
  print_endline
    "   claim: ssa-classify is ~linear in loop size; the classical pass is";
  print_endline "   superlinear on derived chains (one scan per chain link)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance raw in
      let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
      List.iter
        (fun (name, ols_result) ->
          let nanos =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> e
            | _ -> Float.nan
          in
          Printf.printf "  %-32s %12.1f ns/run\n" name nanos)
        (List.sort compare rows))
    (List.map (fun t -> Test.make_grouped ~name:"bench" [ t ]) (tests ()));
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Experiment B1: service batch throughput                              *)
(* ------------------------------------------------------------------ *)

(* Batch-analyze a synthetic corpus through lib/service: 1 domain vs N
   domains; cold cache vs disk-warm (a fresh engine over a populated
   persistent store — the restarted-server shape, see docs/STORE.md)
   vs memory-warm cache. Wall-clock times (monotonic
   enough at these durations: Unix.gettimeofday), plus the engine's own
   cache counters. Results go to stdout as a table and to
   BENCH_service.json for machine consumption. *)

(* The corpus is drawn from the seeded generator (Corpus.Gen — the
   same engine as `ivtool gen` and the property tests), so its size is
   a knob: the smoke gate uses a few dozen programs, the full
   experiment ~10k, and any two runs at the same size see identical
   programs. *)
let b1_seed = 1992

let b1_corpus n =
  List.map
    (fun (name, source) -> { Service.Batch.name; source })
    (Corpus.Gen.corpus ~seed:b1_seed ~count:n ())

type b1_run = {
  domains : int;
  cache : string; (* "cold" | "disk" | "warm" *)
  pool : bool; (* resident worker pool vs spawn-per-pass *)
  seconds : float;
  files_per_sec : float;
  hits : int;
  misses : int;
  store_hits : int; (* disk-tier traffic; zero without a store *)
  store_misses : int;
}

let b1_artifacts = [ Service.Engine.Classify; Service.Engine.Deps; Service.Engine.Trip ]

let b1_time_pass ?pool ~domains ~engine items =
  let t0 = Unix.gettimeofday () in
  let results =
    Service.Batch.run ?pool ~domains ~engine ~artifacts:b1_artifacts items
  in
  let dt = Unix.gettimeofday () -. t0 in
  List.iter
    (fun ((item : Service.Batch.item), r) ->
      match r with
      | Ok _ -> ()
      | Error msg -> failwith (Printf.sprintf "B1: %s failed: %s" item.name msg))
    results;
  dt

let rec b1_rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> b1_rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let b1_open_store root =
  match Store.Disk.open_store ~root () with
  | Ok s -> s
  | Error msg -> failwith ("B1: " ^ msg)

let b1_runs ~corpus_size ~reps ~domain_counts =
  let items = b1_corpus corpus_size in
  let n = float_of_int corpus_size in
  (* One persistent store, populated outside every timed region: the
     disk-warm rows measure a *restarted process* (fresh engine, empty
     memory cache) against it — the serve-fleet sharing shape. *)
  let store_root = Filename.temp_file "ivbench_store" "" in
  Sys.remove store_root;
  let populate () =
    let engine =
      Service.Engine.create ~capacity:4096 ~store:(b1_open_store store_root) ()
    in
    ignore (Service.Batch.run ~domains:1 ~engine ~artifacts:b1_artifacts items)
  in
  let measure ~domains ~use_pool =
    (* Best-of-[reps], with a fresh engine per cold rep so the cold
       measurement never sees a warm cache. With [use_pool] the workers
       are spawned once, outside the timed region — the resident-pool
       deployment shape. *)
    let best f =
      List.fold_left (fun acc _ -> Float.min acc (f ())) infinity
        (List.init reps Fun.id)
    in
    let pool =
      if use_pool then Some (Service.Pool.create ~domains ()) else None
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Service.Pool.shutdown pool)
      (fun () ->
        let last_engine = ref (Service.Engine.create ~capacity:4096 ()) in
        let cold =
          best (fun () ->
              last_engine := Service.Engine.create ~capacity:4096 ();
              b1_time_pass ?pool ~domains ~engine:!last_engine items)
        in
        let cold_stats = Service.Engine.cache_stats !last_engine in
        let disk =
          best (fun () ->
              last_engine :=
                Service.Engine.create ~capacity:4096
                  ~store:(b1_open_store store_root) ();
              b1_time_pass ?pool ~domains ~engine:!last_engine items)
        in
        let disk_store =
          match Service.Engine.store !last_engine with
          | Some s -> Store.Disk.stats s
          | None -> assert false
        in
        let disk_stats = Service.Engine.cache_stats !last_engine in
        let warm_base = Service.Engine.create ~capacity:4096 () in
        ignore (b1_time_pass ?pool ~domains ~engine:warm_base items);
        let warm_cold_stats = Service.Engine.cache_stats warm_base in
        let warm =
          best (fun () -> b1_time_pass ?pool ~domains ~engine:warm_base items)
        in
        let warm_stats = Service.Engine.cache_stats warm_base in
        [
          {
            domains;
            cache = "cold";
            pool = use_pool;
            seconds = cold;
            files_per_sec = n /. cold;
            hits = cold_stats.Service.Cache.hits;
            misses = cold_stats.Service.Cache.misses;
            store_hits = 0;
            store_misses = 0;
          };
          {
            domains;
            cache = "disk";
            pool = use_pool;
            seconds = disk;
            files_per_sec = n /. disk;
            hits = disk_stats.Service.Cache.hits;
            misses = disk_stats.Service.Cache.misses;
            store_hits = disk_store.Store.Disk.hits;
            store_misses = disk_store.Store.Disk.misses;
          };
          {
            domains;
            cache = "warm";
            pool = use_pool;
            seconds = warm;
            files_per_sec = n /. warm;
            hits = warm_stats.Service.Cache.hits - warm_cold_stats.Service.Cache.hits;
            misses =
              warm_stats.Service.Cache.misses - warm_cold_stats.Service.Cache.misses;
            store_hits = 0;
            store_misses = 0;
          };
        ])
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists store_root then b1_rm_rf store_root)
    (fun () ->
      populate ();
      List.concat_map
        (fun domains ->
          measure ~domains ~use_pool:false
          @ (if domains > 1 then measure ~domains ~use_pool:true else []))
        domain_counts)

(* --- per-phase breakdown (lib/obs tracing) ---

   One traced pass per (domains, cache) cell: where does the wall clock
   go? [spawn] is Domain.spawn cost paid by the coordinating domain,
   [join] the straggler wait after the coordinator's own worker loop
   drained, [task] the summed in-worker task time, [queue] the summed
   claim-to-start wait, [compute] the summed cold pipeline time inside
   cache misses. *)

type b1_phases = {
  p_domains : int;
  p_cache : string;
  p_pool : bool;
  wall_us : float;
  spawn_us : float;
  join_us : float;
  task_us : float;
  queue_us : float;
  compute_us : float;
  (* GC work inside the workers, summed from the pool.task span
     attributes ([Obs.Prof] deltas — minor words are exact per domain;
     see lib/obs/prof.ml). *)
  gc_minor_words : int;
  gc_promoted_words : int;
  gc_minor_gcs : int;
  gc_major_gcs : int;
}

let b1_phase_breakdown ?pool ~domains ~engine ~cache items =
  let (), t =
    Obs.Trace.collect (fun () ->
        ignore
          (Service.Batch.run ?pool ~domains ~engine ~artifacts:b1_artifacts items))
  in
  let spans = Obs.Trace.spans t in
  let dur (s : Obs.Trace.span) =
    Obs.Clock.ns_to_us (Int64.sub s.Obs.Trace.stop_ns s.Obs.Trace.start_ns)
  in
  let sum name =
    List.fold_left
      (fun acc (s : Obs.Trace.span) ->
        if s.Obs.Trace.name = name then acc +. dur s else acc)
      0.0 spans
  in
  let queue_us =
    List.fold_left
      (fun acc (s : Obs.Trace.span) ->
        if s.Obs.Trace.name = "pool.task" then
          match List.assoc_opt "queue_wait_us" s.Obs.Trace.attrs with
          | Some (Obs.Trace.Float f) -> acc +. f
          | _ -> acc
        else acc)
      0.0 spans
  in
  let task_gc field =
    List.fold_left
      (fun acc (s : Obs.Trace.span) ->
        if s.Obs.Trace.name = "pool.task" then
          match List.assoc_opt field s.Obs.Trace.attrs with
          | Some (Obs.Trace.Int v) -> acc + v
          | _ -> acc
        else acc)
      0 spans
  in
  {
    p_domains = domains;
    p_cache = cache;
    p_pool = pool <> None;
    wall_us = sum "batch.pass";
    spawn_us = sum "pool.spawn";
    join_us = sum "pool.join";
    task_us = sum "pool.task";
    queue_us;
    compute_us = sum "engine.compute";
    gc_minor_words = task_gc "minor_words";
    gc_promoted_words = task_gc "promoted_words";
    gc_minor_gcs = task_gc "minor_gcs";
    gc_major_gcs = task_gc "major_gcs";
  }

let b1_phase_runs ~domain_counts items =
  List.concat_map
    (fun domains ->
      let engine = Service.Engine.create ~capacity:4096 () in
      let cold = b1_phase_breakdown ~domains ~engine ~cache:"cold" items in
      let warm = b1_phase_breakdown ~domains ~engine ~cache:"warm" items in
      let pooled =
        if domains <= 1 then []
        else begin
          (* Workers spawned outside the collected region: the spawn and
             join spans vanish from the pooled breakdown by design. *)
          let pool = Service.Pool.create ~domains () in
          Fun.protect
            ~finally:(fun () -> Service.Pool.shutdown pool)
            (fun () ->
              let engine = Service.Engine.create ~capacity:4096 () in
              let pcold =
                b1_phase_breakdown ~pool ~domains ~engine ~cache:"cold" items
              in
              let pwarm =
                b1_phase_breakdown ~pool ~domains ~engine ~cache:"warm" items
              in
              [ pcold; pwarm ])
        end
      in
      (cold :: warm :: pooled))
    domain_counts

let b1_json ~corpus_size runs phases =
  let run_json r =
    Printf.sprintf
      "    {\"domains\": %d, \"cache\": \"%s\", \"pool\": %b, \"seconds\": %.6f, \"files_per_sec\": %.1f, \"cache_hits\": %d, \"cache_misses\": %d, \"store_hits\": %d, \"store_misses\": %d}"
      r.domains r.cache r.pool r.seconds r.files_per_sec r.hits r.misses
      r.store_hits r.store_misses
  in
  let phase_json p =
    Printf.sprintf
      "    {\"domains\": %d, \"cache\": \"%s\", \"pool\": %b, \"wall_us\": %.1f, \"spawn_us\": %.1f, \"join_us\": %.1f, \"task_us\": %.1f, \"queue_wait_us\": %.1f, \"compute_us\": %.1f, \"gc_minor_words\": %d, \"gc_promoted_words\": %d, \"gc_minor_gcs\": %d, \"gc_major_gcs\": %d}"
      p.p_domains p.p_cache p.p_pool p.wall_us p.spawn_us p.join_us p.task_us
      p.queue_us p.compute_us p.gc_minor_words p.gc_promoted_words
      p.gc_minor_gcs p.gc_major_gcs
  in
  String.concat "\n"
    [
      "{";
      "  \"experiment\": \"B1\",";
      "  \"description\": \"service batch throughput: 1 vs N domains; cold vs disk-warm (persistent store, fresh process) vs memory-warm cache\",";
      Printf.sprintf "  \"corpus_files\": %d," corpus_size;
      "  \"artifacts\": [\"classify\", \"deps\", \"trip\"],";
      "  \"runs\": [";
      String.concat ",\n" (List.map run_json runs);
      "  ],";
      "  \"phases\": [";
      String.concat ",\n" (List.map phase_json phases);
      "  ]";
      "}";
      "";
    ]

let experiment_b1 ~smoke () =
  print_endline "== Experiment B1: service batch throughput (lib/service) ==";
  (* Full mode runs the ~10k-program generated corpus: large enough
     that files/sec trends (and the scheduler's scaling) are visible
     above noise with a single rep. *)
  let corpus_size = if smoke then 32 else 10_000 in
  let reps = 1 in
  (* Always measure a multi-domain row, even on one-core machines
     (no speedup there, but the parallel path stays exercised). *)
  let parallel = max 4 (Service.Pool.default_domains ~cap:4 ()) in
  let domain_counts = [ 1; parallel ] in
  let runs = b1_runs ~corpus_size ~reps ~domain_counts in
  Printf.printf "   corpus: %d generated programs x %d artifacts; best of %d\n"
    corpus_size (List.length b1_artifacts) reps;
  List.iter
    (fun r ->
      Printf.printf
        "  domains=%d %-4s %-5s %8.4fs %8.1f files/s  hits=%d misses=%d%s\n"
        r.domains r.cache
        (if r.pool then "pool" else "spawn")
        r.seconds r.files_per_sec r.hits r.misses
        (if r.cache = "disk" then
           Printf.sprintf " store_hits=%d store_misses=%d" r.store_hits
             r.store_misses
         else ""))
    runs;
  (* The traced per-phase breakdown keeps every span in memory; cap its
     corpus so the full 10k run doesn't drown in trace buffers. *)
  let phases = b1_phase_runs ~domain_counts (b1_corpus (min corpus_size 1_000)) in
  print_endline
    "   per-phase (one traced pass each; times are summed span µs; GC from\n\
    \   pool.task span attributes — per-domain Obs.Prof deltas):";
  List.iter
    (fun p ->
      Printf.printf
        "  domains=%d %-4s %-5s wall=%8.0f spawn=%7.0f join=%7.0f task=%8.0f queue=%6.0f compute=%8.0f minor_w=%9d prom_w=%7d mGC=%3d MGC=%2d\n"
        p.p_domains p.p_cache
        (if p.p_pool then "pool" else "spawn")
        p.wall_us p.spawn_us p.join_us p.task_us p.queue_us p.compute_us
        p.gc_minor_words p.gc_promoted_words p.gc_minor_gcs p.gc_major_gcs)
    phases;
  let json = b1_json ~corpus_size runs phases in
  let oc = open_out "BENCH_service.json" in
  output_string oc json;
  close_out oc;
  print_endline "   wrote BENCH_service.json";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Experiment B2: incremental re-analysis (region-based units)          *)
(* ------------------------------------------------------------------ *)

(* One program of [n] independent top-level loop nests; edit exactly one
   nest and re-analyze. The full run pays per-loop classification for
   every nest; the incremental run reuses the unit cache for the n-1
   untouched nests and recomputes only the edited one. Both must render
   byte-identical classify/trip/deps reports. *)

let b2_program ?edited n =
  String.concat "\n"
    (List.init n (fun i ->
         let body =
           if edited = Some i then Printf.sprintf "s%d - i%d" i i
           else Printf.sprintf "s%d + i%d" i i
         in
         Printf.sprintf
           "s%d = 0\nN%d: for i%d = 1 to n loop\n  s%d = %s\n  A%d(i%d) = s%d\nendloop"
           i i i i body i i i))
  ^ "\n"

let b2_artifacts = [ Service.Engine.Classify; Service.Engine.Trip; Service.Engine.Deps ]

let b2_render engine src =
  List.map
    (fun a ->
      match Service.Engine.render engine a src with
      | Ok text -> text
      | Error msg -> failwith ("B2: " ^ msg))
    b2_artifacts

type b2_run = {
  b2_mode : string; (* "full" | "incremental" *)
  b2_seconds : float;
  b2_unit_hits : int;
  b2_unit_misses : int;
}

let b2_unit_stat engine =
  match
    List.find_opt (fun (p, _, _) -> p = "unit_classify")
      (Service.Engine.pass_stats engine)
  with
  | Some (_, hits, misses) -> (hits, misses)
  | None -> (0, 0)

let b2_runs ~nests ~reps =
  let edited = nests / 2 in
  let old_src = b2_program nests in
  let new_src = b2_program ~edited nests in
  (* Each rep uses a fresh engine so the timed region is never a pure
     pipeline-cache hit; the incremental rep primes on [old_src] outside
     the timed region, exactly the serve-mode REANALYZE shape. *)
  let best f =
    List.fold_left (fun acc _ -> Float.min acc (f ())) infinity
      (List.init reps Fun.id)
  in
  let stats = ref (0, 0) in
  let full =
    best (fun () ->
        let engine = Service.Engine.create ~capacity:4096 () in
        let t0 = Unix.gettimeofday () in
        ignore (b2_render engine new_src);
        let dt = Unix.gettimeofday () -. t0 in
        stats := b2_unit_stat engine;
        dt)
  in
  let full_hits, full_misses = !stats in
  let incremental =
    best (fun () ->
        let engine = Service.Engine.create ~capacity:4096 () in
        ignore (b2_render engine old_src);
        let h0, m0 = b2_unit_stat engine in
        let t0 = Unix.gettimeofday () in
        ignore (b2_render engine new_src);
        let dt = Unix.gettimeofday () -. t0 in
        let h1, m1 = b2_unit_stat engine in
        stats := (h1 - h0, m1 - m0);
        dt)
  in
  let inc_hits, inc_misses = !stats in
  (* Byte-identity is part of the experiment's claim: check it on every
     harness run, not only in the test suite. *)
  let warm = Service.Engine.create ~capacity:4096 () in
  ignore (b2_render warm old_src);
  let merged = b2_render warm new_src in
  let cold = b2_render (Service.Engine.create ~capacity:4096 ()) new_src in
  if merged <> cold then failwith "B2: incremental reports diverge from cold run";
  ( [
      {
        b2_mode = "full";
        b2_seconds = full;
        b2_unit_hits = full_hits;
        b2_unit_misses = full_misses;
      };
      {
        b2_mode = "incremental";
        b2_seconds = incremental;
        b2_unit_hits = inc_hits;
        b2_unit_misses = inc_misses;
      };
    ],
    old_src )

let b2_json ~nests ~reps runs =
  let run_json r =
    Printf.sprintf
      "    {\"mode\": \"%s\", \"seconds\": %.6f, \"unit_hits\": %d, \"unit_misses\": %d}"
      r.b2_mode r.b2_seconds r.b2_unit_hits r.b2_unit_misses
  in
  let speedup =
    match runs with
    | [ f; i ] when i.b2_seconds > 0.0 -> f.b2_seconds /. i.b2_seconds
    | _ -> Float.nan
  in
  String.concat "\n"
    [
      "{";
      "  \"experiment\": \"B2\",";
      "  \"description\": \"incremental re-analysis: edit one of N top-level loop nests, reuse per-unit artifacts for the rest\",";
      Printf.sprintf "  \"nests\": %d," nests;
      Printf.sprintf "  \"reps\": %d," reps;
      "  \"artifacts\": [\"classify\", \"trip\", \"deps\"],";
      "  \"byte_identical\": true,";
      Printf.sprintf "  \"speedup_full_over_incremental\": %.2f," speedup;
      "  \"runs\": [";
      String.concat ",\n" (List.map run_json runs);
      "  ]";
      "}";
      "";
    ]

let experiment_b2 ~smoke () =
  print_endline "== Experiment B2: incremental re-analysis (region units) ==";
  let nests = if smoke then 6 else 24 in
  let reps = if smoke then 1 else 3 in
  let runs, _ = b2_runs ~nests ~reps in
  Printf.printf
    "   program: %d top-level nests; edit one nest, re-render classify+trip+deps\n"
    nests;
  List.iter
    (fun r ->
      Printf.printf "  %-12s %8.4fs  unit hits=%d misses=%d\n" r.b2_mode
        r.b2_seconds r.b2_unit_hits r.b2_unit_misses)
    runs;
  (match runs with
   | [ f; i ] when i.b2_seconds > 0.0 ->
     Printf.printf "   full/incremental = %.2fx; merged reports byte-identical\n"
       (f.b2_seconds /. i.b2_seconds)
   | _ -> ());
  let oc = open_out "BENCH_incremental.json" in
  output_string oc (b2_json ~nests ~reps runs);
  close_out oc;
  print_endline "   wrote BENCH_incremental.json";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Experiment B4: range-sharpened dependence precision + bounds checks  *)
(* ------------------------------------------------------------------ *)

(* Over the examples corpus, count dependence edges with and without
   the value-range analysis feeding the Banerjee tests, and count the
   bounds checks the same intervals eliminate. The headline numbers:
   pairs newly proven independent (baseline edges minus ranged edges)
   and checks eliminated — both must be nonzero for the pass to have
   earned its place in the pipeline. *)

let b4_corpus_dir =
  List.find Sys.file_exists
    [
      Filename.concat "examples" "programs";
      Filename.concat (Filename.concat ".." "examples") "programs";
    ]

let b4_corpus () =
  Sys.readdir b4_corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".iv")
  |> List.sort compare
  |> List.map (fun f ->
         let path = Filename.concat b4_corpus_dir f in
         let ic = open_in_bin path in
         let src = really_input_string ic (in_channel_length ic) in
         close_in ic;
         (f, src))

type b4_row = {
  b4_name : string;
  b4_baseline_edges : int;
  b4_ranged_edges : int;
  b4_eliminated : int;
  b4_retained : int;
}

let b4_rows () =
  List.map
    (fun (name, src) ->
      let d = Analysis.Driver.analyze_source src in
      let r = Analysis.Driver.ranges d in
      let baseline = List.length (Dependence.Dep_graph.build d) in
      let ranged = List.length (Dependence.Dep_graph.build ~ranges:r d) in
      let eliminated, retained =
        match Ir.Parser.parse_result src with
        | Ok prog when prog.Ir.Ast.decls <> [] ->
          let s =
            Transform.Bounds_elim.analyze r (Analysis.Driver.ssa d) prog
          in
          (s.Transform.Bounds_elim.eliminated, s.Transform.Bounds_elim.retained)
        | _ -> (0, 0)
      in
      {
        b4_name = name;
        b4_baseline_edges = baseline;
        b4_ranged_edges = ranged;
        b4_eliminated = eliminated;
        b4_retained = retained;
      })
    (b4_corpus ())

let b4_json rows =
  let total f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let row_json r =
    Printf.sprintf
      "    {\"file\": \"%s\", \"baseline_edges\": %d, \"ranged_edges\": %d, \"checks_eliminated\": %d, \"checks_retained\": %d}"
      r.b4_name r.b4_baseline_edges r.b4_ranged_edges r.b4_eliminated
      r.b4_retained
  in
  String.concat "\n"
    [
      "{";
      "  \"experiment\": \"B4\",";
      "  \"description\": \"value-range precision: dependence edges with/without range sharpening, and bounds checks eliminated, over the examples corpus\",";
      Printf.sprintf "  \"corpus_files\": %d," (List.length rows);
      Printf.sprintf "  \"pairs_proven_independent\": %d,"
        (total (fun r -> r.b4_baseline_edges - r.b4_ranged_edges));
      Printf.sprintf "  \"checks_eliminated\": %d,"
        (total (fun r -> r.b4_eliminated));
      Printf.sprintf "  \"checks_retained\": %d,"
        (total (fun r -> r.b4_retained));
      "  \"rows\": [";
      String.concat ",\n" (List.map row_json rows);
      "  ]";
      "}";
      "";
    ]

let experiment_b4 () =
  print_endline
    "== Experiment B4: range-sharpened dependence precision (lib/analysis) ==";
  let rows = b4_rows () in
  List.iter
    (fun r ->
      Printf.printf
        "  %-26s edges: %d -> %d with ranges; checks: %d eliminated, %d retained\n"
        r.b4_name r.b4_baseline_edges r.b4_ranged_edges r.b4_eliminated
        r.b4_retained)
    rows;
  let independent =
    List.fold_left
      (fun acc r -> acc + (r.b4_baseline_edges - r.b4_ranged_edges))
      0 rows
  in
  let eliminated =
    List.fold_left (fun acc r -> acc + r.b4_eliminated) 0 rows
  in
  Printf.printf
    "   corpus total: %d pairs newly proven independent, %d bounds checks eliminated\n"
    independent eliminated;
  (* The pass must pay for itself: nonzero precision gain on both
     consumers, checked on every harness run. *)
  if independent <= 0 then failwith "B4: range sharpening proved nothing";
  if eliminated <= 0 then failwith "B4: no bounds check eliminated";
  let oc = open_out "BENCH_ranges.json" in
  output_string oc (b4_json rows);
  close_out oc;
  print_endline "   wrote BENCH_ranges.json";
  print_newline ()

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let b1_only = Array.exists (( = ) "--b1") Sys.argv in
  let b2_only = Array.exists (( = ) "--b2") Sys.argv in
  let b4_only = Array.exists (( = ) "--b4") Sys.argv in
  if smoke then begin
    (* `make bench-smoke`: one fast pass over the batch and unit paths. *)
    experiment_b1 ~smoke:true ();
    experiment_b2 ~smoke:true ();
    experiment_b4 ();
    print_endline "bench: done (smoke)"
  end
  else if b1_only then begin
    (* Full-scale batch-throughput experiment alone (`make bench-b1`):
       regenerates BENCH_service.json including the disk-warm rows. *)
    experiment_b1 ~smoke:false ();
    print_endline "bench: done (b1)"
  end
  else if b2_only then begin
    (* Full-scale incremental experiment alone (CI runs this per push;
       the Bechamel timing sweep is too slow for that cadence). *)
    experiment_b2 ~smoke:false ();
    print_endline "bench: done (b2)"
  end
  else if b4_only then begin
    (* Precision experiment alone (`make bench-b4`): deterministic, no
       timing — safe at CI cadence. *)
    experiment_b4 ();
    print_endline "bench: done (b4)"
  end
  else begin
    print_reproductions ();
    print_trip_counts ();
    print_dependence_repro ();
    print_generality ();
    print_ablations ();
    print_pass_counts ();
    experiment_b1 ~smoke:false ();
    experiment_b2 ~smoke:false ();
    experiment_b4 ();
    run_benchmarks ();
    print_endline "bench: done"
  end
