.PHONY: build test bench bench-smoke clean

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# One fast pass over the service batch path (experiment B1 only).
bench-smoke:
	dune exec bench/main.exe -- --smoke

clean:
	dune clean
