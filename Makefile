.PHONY: build test check bench bench-smoke bench-b1 bench-b2 bench-b4 \
	bench-gate metrics-demo trace-demo clean

build:
	dune build

test:
	dune runtest

# Checked mode over the corpus, warnings as errors (docs/CHECKING.md).
check: build
	@for f in examples/programs/*.iv; do \
	  echo "check $$f"; \
	  dune exec bin/ivtool.exe -- check --werror $$f || exit 1; \
	done

bench:
	dune exec bench/main.exe

# One fast pass over the service batch and unit paths (B1 + B2 + B4).
bench-smoke:
	dune exec bench/main.exe -- --smoke

# Full-scale batch-throughput experiment (B1 only; writes
# BENCH_service.json including the disk-warm persistent-store rows —
# see docs/STORE.md).
bench-b1:
	dune exec bench/main.exe -- --b1

# Full-scale incremental re-analysis experiment (B2 only; writes
# BENCH_incremental.json — see docs/INCREMENTAL.md).
bench-b2:
	dune exec bench/main.exe -- --b2

# Range-precision experiment (B4 only; writes BENCH_ranges.json — see
# docs/RANGES.md).
bench-b4:
	dune exec bench/main.exe -- --b4

# The perf gate CI runs: smoke bench, then diff each experiment against
# its checked-in baseline. B1/B2 carry timings, so their threshold is
# generous (runners differ; tighten it when comparing two runs from the
# same machine). B4 is deterministic precision counting — any drop in
# pairs_proven_independent / checks_eliminated fails the tight gate.
bench-gate: bench-smoke
	dune exec bin/ivtool.exe -- bench-diff \
	  bench/BASELINE_b1_smoke.json BENCH_service.json --threshold 900
	dune exec bin/ivtool.exe -- bench-diff \
	  bench/BASELINE_b2_smoke.json BENCH_incremental.json --threshold 900
	dune exec bin/ivtool.exe -- bench-diff \
	  bench/BASELINE_b4_smoke.json BENCH_ranges.json --threshold 1

# The metrics tour (docs/OBSERVABILITY.md, "Metrics & profiling"):
# Prometheus exposition of a pooled batch, and a profiled classify.
metrics-demo:
	dune exec bin/ivtool.exe -- metrics -j 2 --artifacts all \
	  examples/programs/*.iv
	dune exec bin/ivtool.exe -- classify --profile \
	  examples/programs/fig9_triangular.iv > /dev/null

# The observability tour (docs/OBSERVABILITY.md): traced parallel batch
# over the example corpus, trace validation, one provenance report.
# Outputs stay under _build/ so the working tree is never dirtied.
trace-demo:
	mkdir -p _build
	dune exec bin/ivtool.exe -- batch -j 2 --artifacts all --repeat 2 \
	  --trace _build/trace_demo.json --trace-summary examples/programs/*.iv
	dune exec bin/ivtool.exe -- trace-check _build/trace_demo.json
	dune exec bin/ivtool.exe -- explain examples/programs/l14_closed_forms.iv

clean:
	dune clean
	rm -f trace_demo.json batch_j1.out batch_j4.out
