(* The metrics-exposition layer: Obs.Json string escaping, log2
   histogram bucket edges, Prometheus text rendering, Prof GC deltas,
   the folded-stacks exporter, and the bench-diff perf gate. *)

module I = Obs.Instrument

(* --- Obs.Json escaping (shared by every JSON exporter) --- *)

let test_json_escape_basics () =
  let e = Obs.Json.escape in
  Alcotest.(check string) "plain" "\"abc\"" (e "abc");
  Alcotest.(check string) "quote" "\"a\\\"b\"" (e "a\"b");
  Alcotest.(check string) "backslash" "\"a\\\\b\"" (e "a\\b");
  Alcotest.(check string) "newline" "\"a\\nb\"" (e "a\nb");
  Alcotest.(check string) "cr tab" "\"\\r\\t\"" (e "\r\t");
  Alcotest.(check string) "NUL" "\"\\u0000\"" (e "\x00");
  Alcotest.(check string) "ESC" "\"\\u001b\"" (e "\x1b");
  (* Bytes >= 0x80 pass through verbatim so UTF-8 survives. *)
  Alcotest.(check string) "utf-8" "\"\xc3\xa9\"" (e "\xc3\xa9")

let test_json_escape_roundtrip () =
  (* Everything the escaper emits must re-parse to the original string
     through our own parser — including every control byte. *)
  let cases =
    [
      "plain";
      "with \"quotes\" and \\backslashes\\";
      "newline\nand\ttab\rand\x00nul";
      String.init 32 Char.chr;
      "mixed \xc3\xa9\xe2\x86\x92 utf-8 \xf0\x9f\x90\xab bytes";
    ]
  in
  List.iter
    (fun s ->
      match Obs.Json.parse_result (Obs.Json.escape s) with
      | Ok (Obs.Json.Str s') ->
        Alcotest.(check string) (Printf.sprintf "roundtrip %S" s) s s'
      | Ok _ -> Alcotest.failf "%S parsed as non-string" s
      | Error msg -> Alcotest.failf "%S did not re-parse: %s" s msg)
    cases

(* --- log2 histogram bucket boundaries --- *)

(* Bucket i spans [2^i, 2^(i+1)) µs; quantile answers are the exact min,
   the exact max, or a bucket upper edge clamped into [min, max]. Pin
   the edges down with samples sitting exactly on powers of two. *)
let test_bucket_boundaries () =
  let m = I.create () in
  let h = I.histogram m "edges" in
  (* 2µs sits at the lower edge of bucket 1 ([2,4)µs, upper 4µs). *)
  List.iter (I.observe h) [ 2e-6; 2e-6; 2e-6; 100e-6 ];
  (match I.quantile h 0.5 with
   | Some v -> Alcotest.(check (float 1e-12)) "median = bucket upper" 4e-6 v
   | None -> Alcotest.fail "empty");
  (* Sub-microsecond samples all land in bucket 0 (upper 2µs); the
     clamp keeps the answer at the recorded max, not the bucket edge. *)
  let h0 = I.histogram m "subus" in
  List.iter (I.observe h0) [ 0.4e-6; 0.5e-6 ];
  (match I.quantile h0 0.5 with
   | Some v -> Alcotest.(check (float 1e-12)) "clamped to max" 0.5e-6 v
   | None -> Alcotest.fail "empty");
  (* 4µs is the first sample of bucket 2, not the last of bucket 1. *)
  let h2 = I.histogram m "open-upper" in
  List.iter (I.observe h2) [ 4e-6; 4e-6; 4e-6 ];
  (match I.quantile h2 0.5 with
   | Some v ->
     Alcotest.(check bool) "within [4,8)us bucket" true (v >= 4e-6 && v <= 8e-6)
   | None -> Alcotest.fail "empty");
  (* The snapshot view exposes (upper edge, count) pairs, increasing. *)
  match List.assoc_opt "edges" (I.snapshot m) with
  | Some (I.V_histogram { v_count; v_buckets; _ }) ->
    Alcotest.(check int) "count" 4 v_count;
    Alcotest.(check bool) "edges increasing" true
      (List.sort compare v_buckets = v_buckets);
    Alcotest.(check int) "bucket mass = count" 4
      (List.fold_left (fun a (_, c) -> a + c) 0 v_buckets)
  | _ -> Alcotest.fail "no snapshot view for edges"

(* --- Instrument.labeled --- *)

let test_labeled_names () =
  Alcotest.(check string) "no labels" "x" (I.labeled "x" []);
  Alcotest.(check string) "one" "x{k=\"v\"}" (I.labeled "x" [ ("k", "v") ]);
  Alcotest.(check string) "two, escaped"
    "x{a=\"q\\\"uote\",b=\"back\\\\slash\"}"
    (I.labeled "x" [ ("a", "q\"uote"); ("b", "back\\slash") ])

(* --- Prometheus text rendering --- *)

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let test_prom_render () =
  let m = I.create () in
  I.incr ~by:3 (I.counter m "cache.hits");
  I.incr (I.counter m (I.labeled "pass.hits" [ ("pass", "classify") ]));
  I.set_gauge (I.gauge m "pool.queue_depth") 7;
  let h = I.histogram m "phase.parse" in
  List.iter (I.observe h) [ 3e-6; 3e-6; 500e-6 ];
  let text = Obs.Export_prom.render m in
  Alcotest.(check string) "byte-stable" text (Obs.Export_prom.render m);
  let has l = Helpers.contains text l in
  Alcotest.(check bool) "counter suffixed" true (has "iv_cache_hits_total 3");
  Alcotest.(check bool) "counter typed" true
    (has "# TYPE iv_cache_hits_total counter");
  Alcotest.(check bool) "label block survives" true
    (has "iv_pass_hits_total{pass=\"classify\"} 1");
  Alcotest.(check bool) "gauge bare" true (has "iv_pool_queue_depth 7");
  Alcotest.(check bool) "gauge typed" true
    (has "# TYPE iv_pool_queue_depth gauge");
  Alcotest.(check bool) "histogram typed" true
    (has "# TYPE iv_phase_parse_seconds histogram");
  Alcotest.(check bool) "count" true (has "iv_phase_parse_seconds_count 3");
  Alcotest.(check bool) "+Inf bucket" true
    (has "iv_phase_parse_seconds_bucket{le=\"+Inf\"} 3");
  (* Buckets are cumulative: the le-values increase and so do the
     counts, ending at _count. *)
  let buckets =
    List.filter_map
      (fun l ->
        if Helpers.contains l "_bucket{le=" && not (Helpers.contains l "+Inf")
        then
          match String.rindex_opt l ' ' with
          | Some i ->
            Some
              (int_of_string
                 (String.sub l (i + 1) (String.length l - i - 1)))
          | None -> None
        else None)
      (lines text)
  in
  Alcotest.(check bool) "cumulative" true
    (List.sort compare buckets = buckets);
  Alcotest.(check bool) "last finite bucket = count" true
    (match List.rev buckets with n :: _ -> n = 3 | [] -> false)

let test_prom_external_rows () =
  (* The row API Service.Engine uses for cache/store/pass metrics. *)
  let open Obs.Export_prom in
  let text =
    render_rows
      [
        row ~help:"LRU hits" "cache.hits" (Counter 12.);
        row "artifact.served{artifact=\"classify\",tier=\"mem\"}" (Counter 4.);
        row "store.bytes" (Gauge 123456.);
      ]
  in
  Alcotest.(check bool) "help line" true
    (Helpers.contains text "# HELP iv_cache_hits_total LRU hits");
  Alcotest.(check bool) "labeled row" true
    (Helpers.contains text
       "iv_artifact_served_total{artifact=\"classify\",tier=\"mem\"} 4");
  Alcotest.(check bool) "gauge" true (Helpers.contains text "iv_store_bytes 123456")

(* --- Prof: GC deltas scoped to a span of work --- *)

let test_prof_time_records () =
  let m = I.create () in
  let r =
    Obs.Prof.time m "phase.work" (fun () ->
        (* Allocate enough that the minor-words delta is unambiguous. *)
        List.length (List.init 100_000 (fun i -> (i, i + 1))))
  in
  Alcotest.(check int) "thunk result" 100_000 r;
  let snap = I.snapshot m in
  (match List.assoc_opt "phase.work" snap with
   | Some (I.V_histogram { v_count; _ }) ->
     Alcotest.(check int) "one observation" 1 v_count
   | _ -> Alcotest.fail "no phase.work histogram");
  (match List.assoc_opt "phase.work.minor_words" snap with
   | Some (I.V_counter words) ->
     Alcotest.(check bool)
       (Printf.sprintf "minor words counted (%d)" words)
       true
       (words > 100_000)
   | _ -> Alcotest.fail "no minor_words counter");
  (* The --profile table renders the phase with its allocation. *)
  let table = Obs.Prof.phase_table m in
  Alcotest.(check bool) "table row" true (Helpers.contains table "work");
  Alcotest.(check bool) "table totals" true (Helpers.contains table "total")

let test_prof_delta_clamps () =
  let s = Obs.Prof.sample () in
  let d = Obs.Prof.delta s s in
  Alcotest.(check int) "zero minor" 0 d.Obs.Prof.d_minor_words;
  Alcotest.(check int) "zero gcs" 0 d.Obs.Prof.d_minor_gcs;
  Alcotest.(check bool) "attrs drop zeros" true (Obs.Prof.attrs d = [])

(* --- folded stacks --- *)

let span ~sid ~parent ~name ~tid ~start_us ~stop_us =
  {
    Obs.Trace.sid;
    parent;
    name;
    cat = "t";
    tid;
    start_ns = Int64.of_int (start_us * 1000);
    stop_ns = Int64.of_int (stop_us * 1000);
    attrs = [];
  }

let test_folded_self_time () =
  let spans =
    [
      span ~sid:1 ~parent:None ~name:"outer" ~tid:0 ~start_us:0 ~stop_us:100;
      span ~sid:2 ~parent:(Some 1) ~name:"inner" ~tid:0 ~start_us:10
        ~stop_us:40;
      span ~sid:3 ~parent:(Some 1) ~name:"inner" ~tid:0 ~start_us:50
        ~stop_us:80;
      span ~sid:4 ~parent:None ~name:"other" ~tid:3 ~start_us:0 ~stop_us:5;
    ]
  in
  let out = Obs.Export_folded.render_parts spans in
  (* outer self = 100 - (30 + 30); the two sibling "inner" spans fold
     into one line; the second domain gets its own root frame. *)
  Alcotest.(check string) "folded"
    "domain0;outer 40\ndomain0;outer;inner 60\ndomain3;other 5\n" out;
  Alcotest.(check string) "deterministic" out
    (Obs.Export_folded.render_parts spans)

let test_folded_zero_self_omitted () =
  let spans =
    [
      span ~sid:1 ~parent:None ~name:"outer" ~tid:0 ~start_us:0 ~stop_us:50;
      span ~sid:2 ~parent:(Some 1) ~name:"inner" ~tid:0 ~start_us:0
        ~stop_us:50;
    ]
  in
  let out = Obs.Export_folded.render_parts spans in
  Alcotest.(check string) "only the leaf" "domain0;outer;inner 50\n" out

(* --- bench-diff: the perf gate --- *)

let bench_json ~seconds ~fps ~hits =
  Printf.sprintf
    {|{
  "experiment": "B1",
  "corpus_files": 8,
  "runs": [
    {"domains": 1, "cache": "cold", "pool": false, "seconds": %g, "files_per_sec": %g, "cache_hits": %d, "task_us": 12.0}
  ]
}|}
    seconds fps hits

let diff ?(threshold = 10.0) old_j new_j =
  match
    Service.Bench_diff.compare ~threshold_pct:threshold ~old_json:old_j
      ~new_json:new_j
  with
  | Ok r -> r
  | Error msg -> Alcotest.failf "bench-diff failed: %s" msg

let test_bench_diff_regression () =
  let old_j = bench_json ~seconds:1.0 ~fps:100.0 ~hits:5 in
  (* Slower wall clock beyond threshold: exactly one regression. *)
  let r = diff old_j (bench_json ~seconds:1.5 ~fps:100.0 ~hits:5) in
  Alcotest.(check int) "seconds regressed" 1 r.Service.Bench_diff.regressions;
  Alcotest.(check bool) "marked in rendering" true
    (Helpers.contains (Service.Bench_diff.to_string r) "REGRESSION");
  (* Faster is never a regression, whatever the magnitude. *)
  let r = diff old_j (bench_json ~seconds:0.01 ~fps:100.0 ~hits:5) in
  Alcotest.(check int) "improvement ok" 0 r.Service.Bench_diff.regressions;
  (* Throughput gates in the other direction. *)
  let r = diff old_j (bench_json ~seconds:1.0 ~fps:50.0 ~hits:5) in
  Alcotest.(check int) "rate drop regressed" 1 r.Service.Bench_diff.regressions;
  (* Within threshold: clean. *)
  let r = diff old_j (bench_json ~seconds:1.05 ~fps:98.0 ~hits:5) in
  Alcotest.(check int) "within threshold" 0 r.Service.Bench_diff.regressions

let test_bench_diff_info_never_gates () =
  (* Counters and µs breakdowns report but cannot fail the gate. *)
  let old_j = bench_json ~seconds:1.0 ~fps:100.0 ~hits:5 in
  let r = diff old_j (bench_json ~seconds:1.0 ~fps:100.0 ~hits:500) in
  Alcotest.(check int) "hit-count change not gated" 0
    r.Service.Bench_diff.regressions;
  let shown = Service.Bench_diff.to_string r in
  Alcotest.(check bool) "but reported" true (Helpers.contains shown "cache_hits")

let test_bench_diff_shape_notes () =
  let old_j = bench_json ~seconds:1.0 ~fps:100.0 ~hits:5 in
  let extra =
    {|{"runs": [
        {"domains": 1, "cache": "cold", "pool": false, "seconds": 1.0, "files_per_sec": 100.0},
        {"domains": 8, "cache": "cold", "pool": false, "seconds": 2.0, "files_per_sec": 50.0}
      ]}|}
  in
  let r = diff old_j extra in
  Alcotest.(check bool) "new row noted" true
    (List.exists
       (fun n -> Helpers.contains n "only in new")
       r.Service.Bench_diff.notes);
  match
    Service.Bench_diff.compare ~threshold_pct:10.0 ~old_json:"not json"
      ~new_json:old_j
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse error accepted"

(* --- pool telemetry + engine exposition, end to end --- *)

let test_pool_telemetry () =
  let m = I.create () in
  let pool = Service.Pool.create ~domains:2 ~metrics:m () in
  Fun.protect
    ~finally:(fun () -> Service.Pool.shutdown pool)
    (fun () ->
      let r =
        Service.Pool.run pool
          (fun x -> List.length (List.init (10_000 + x) Fun.id))
          (Array.init 16 Fun.id)
      in
      Alcotest.(check int) "all ran" 16
        (Array.fold_left
           (fun acc o ->
             match o with Service.Pool.Done _ -> acc + 1 | _ -> acc)
           0 r));
  let snap = I.snapshot m in
  let tasks =
    List.fold_left
      (fun acc (name, v) ->
        match v with
        | I.V_counter n when Helpers.contains name "pool.tasks{domain=" ->
          acc + n
        | _ -> acc)
      0 snap
  in
  Alcotest.(check int) "every task counted under a domain label" 16 tasks;
  Alcotest.(check bool) "latency histogram present" true
    (List.exists
       (fun (name, _) -> Helpers.contains name "pool.task_latency{domain=")
       snap);
  Alcotest.(check bool) "spawn/join observed" true
    (List.mem_assoc "pool.spawn" snap && List.mem_assoc "pool.join" snap);
  (* And it all comes out the Prometheus end with the domain label. *)
  let text = Obs.Export_prom.render m in
  Alcotest.(check bool) "prometheus exposition" true
    (Helpers.contains text "iv_pool_tasks_total{domain=")

let test_engine_prometheus_report () =
  let engine = Service.Engine.create () in
  (match
     Service.Engine.classify engine
       "i = 0\nT: loop\n  i = i + 1\n  if i > 9 exit\nendloop\nA(i) = 1"
   with
   | Ok _ -> ()
   | Error msg -> Alcotest.failf "classify failed: %s" msg);
  let text = Service.Engine.prometheus_report engine in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (Helpers.contains text needle))
    [
      "# TYPE iv_cache_hits_total counter";
      "iv_pass_misses_total{pass=\"classify\"} 1";
      "iv_artifact_served_total{artifact=\"classify\",tier=\"computed\"} 1";
      "# TYPE iv_phase_parse_seconds histogram";
      "iv_phase_parse_seconds_bucket{le=\"+Inf\"}";
      "iv_gc_process_minor_words_total";
      "iv_gc_heap_words";
    ];
  (* Malformed exposition would break scrapes silently; pin the shape:
     every non-comment line is "name{labels} value" with a float value. *)
  List.iter
    (fun l ->
      if l <> "" && l.[0] <> '#' then
        match String.rindex_opt l ' ' with
        | Some i ->
          let v = String.sub l (i + 1) (String.length l - i - 1) in
          (match float_of_string_opt v with
           | Some _ -> ()
           | None -> Alcotest.failf "unparsable sample value in %S" l)
        | None -> Alcotest.failf "sample line without value: %S" l)
    (String.split_on_char '\n' text)

let suite =
  ( "obs-prom",
    [
      Helpers.case "json escape basics" test_json_escape_basics;
      Helpers.case "json escape roundtrips" test_json_escape_roundtrip;
      Helpers.case "log2 bucket boundaries" test_bucket_boundaries;
      Helpers.case "labeled instrument names" test_labeled_names;
      Helpers.case "prometheus rendering" test_prom_render;
      Helpers.case "prometheus external rows" test_prom_external_rows;
      Helpers.case "prof time records alloc" test_prof_time_records;
      Helpers.case "prof delta clamps" test_prof_delta_clamps;
      Helpers.case "folded self time" test_folded_self_time;
      Helpers.case "folded omits zero self" test_folded_zero_self_omitted;
      Helpers.case "bench-diff regressions" test_bench_diff_regression;
      Helpers.case "bench-diff info never gates" test_bench_diff_info_never_gates;
      Helpers.case "bench-diff shape notes" test_bench_diff_shape_notes;
      Helpers.case "pool per-domain telemetry" test_pool_telemetry;
      Helpers.case "engine prometheus report" test_engine_prometheus_report;
    ] )
