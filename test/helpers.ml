(* Shared helpers for the test suites. *)

module Driver = Analysis.Driver
module Ivclass = Analysis.Ivclass
module Sym = Analysis.Sym

let analyze src = Driver.analyze_source src

let class_str t name =
  match Driver.class_of_name t name with
  | Some c -> Driver.class_to_string t c
  | None -> "<no such name>"

(* [check_class t name expected] compares a classification's rendered
   tuple against the expected string (the notation of the paper). *)
let check_class t name expected =
  Alcotest.(check string) name expected (class_str t name)

let check_classes src expectations =
  let t = analyze src in
  List.iter (fun (name, expected) -> check_class t name expected) expectations

(* ---------- the classification soundness oracle ----------

   Run the interpreter; at every instruction execution, evaluate the
   instruction's classification at the current iteration number using
   the *live* environment for symbolic atoms (atoms are invariant in the
   loop, so their current values are the activation's values) and check
   it against the observed value. Monotonic classes are checked for
   (strict) monotonicity within each loop activation. *)

type mono_state = { mutable last_act : int; mutable last_v : int option }

let oracle_check ?(fuel = 50_000) ?(params = fun _ -> 0) ?(rand = fun () -> false)
    ?(arrays = []) src =
  let ssa = Ir.Ssa.of_source src in
  (match Ir.Ssa.check ssa with
   | [] -> ()
   | errs -> Alcotest.failf "SSA invariant violations: %s" (String.concat "; " errs));
  let t = Driver.analyze ssa in
  let loops = Ir.Ssa.loops ssa in
  let cfg = Ir.Ssa.cfg ssa in
  let failures = ref [] in
  let mono : mono_state Ir.Instr.Id.Table.t = Ir.Instr.Id.Table.create 16 in
  let checked = ref 0 in
  let on_instr st (instr : Ir.Instr.t) v =
    let id = instr.Ir.Instr.id in
    let label = Ir.Cfg.block_of_instr cfg id in
    match Ir.Loops.innermost loops label with
    | None -> ()
    | Some lp ->
      let h = Ir.Interp.loop_iter st lp in
      let lookup (a : Sym.atom) =
        match a with
        | Sym.Param x -> Some (Bignum.Rat.of_int (params x))
        | Sym.Def d -> Some (Bignum.Rat.of_int (Ir.Interp.value st (Ir.Instr.Def d)))
      in
      let cls = Driver.class_of t id in
      (match cls with
       | Ivclass.Unknown -> ()
       | Ivclass.Monotonic m ->
         incr checked;
         let ms =
           match Ir.Instr.Id.Table.find_opt mono id with
           | Some ms -> ms
           | None ->
             let ms = { last_act = -1; last_v = None } in
             Ir.Instr.Id.Table.add mono id ms;
             ms
         in
         (* Monotonicity holds within one loop activation. *)
         let act = Ir.Interp.loop_activation st lp in
         if act <> ms.last_act then ms.last_v <- None;
         (match ms.last_v with
          | Some prev ->
            let ok =
              match (m.Ivclass.dir, m.Ivclass.strict) with
              | Ivclass.Increasing, true -> v > prev
              | Ivclass.Increasing, false -> v >= prev
              | Ivclass.Decreasing, true -> v < prev
              | Ivclass.Decreasing, false -> v <= prev
            in
            if not ok then
              failures :=
                Printf.sprintf "%s: monotonicity violated at h=%d (%d then %d)"
                  (Ir.Ssa.primary_name ssa id) h prev v
                :: !failures
          | None -> ());
         ms.last_act <- act;
         ms.last_v <- Some v
       | cls -> (
         let iter_of outer = Some (Ir.Interp.loop_iter st outer) in
         match Ivclass.eval_at_nest lookup iter_of cls h with
         | Some predicted ->
           (* The interpreter computes in native (wrapping) integers while
              the classifier is exact; past this magnitude geometric
              sequences have overflowed and the comparison is meaningless
              (the language leaves overflow unspecified). *)
           let overflow_bound = Bignum.Rat.of_int (1 lsl 55) in
           if Bignum.Rat.compare (Bignum.Rat.abs predicted) overflow_bound >= 0 then ()
           else begin
             incr checked;
             if not (Bignum.Rat.equal predicted (Bignum.Rat.of_int v)) then
               failures :=
                 Printf.sprintf "%s: h=%d predicted %s, observed %d"
                   (Ir.Ssa.primary_name ssa id) h
                   (Bignum.Rat.to_string predicted)
                   v
                 :: !failures
           end
         | None -> ()))
  in
  let st = Ir.Interp.run ~fuel ~on_instr ~params ~rand ~arrays ssa in
  ignore st;
  (!checked, List.rev !failures)

(* [oracle src] asserts every prediction matched. *)
let oracle ?fuel ?params ?rand ?arrays src =
  let checked, failures = oracle_check ?fuel ?params ?rand ?arrays src in
  (match failures with
   | [] -> ()
   | f :: _ ->
     Alcotest.failf "oracle: %d failures, first: %s" (List.length failures) f);
  checked

(* [oracle_min src n] additionally requires at least [n] checked
   predictions (guarding against vacuous passes). *)
let oracle_min ?fuel ?params ?rand ?arrays src n =
  let checked = oracle ?fuel ?params ?rand ?arrays src in
  if checked < n then
    Alcotest.failf "oracle made only %d checks (expected at least %d)" checked n

(* ---------- misc ---------- *)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let case name f = Alcotest.test_case name `Quick f

(* [contains s sub] — naive substring search, for diagnostics checks. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else begin
    let found = ref false in
    for i = 0 to n - m do
      if (not !found) && String.sub s i m = sub then found := true
    done;
    !found
  end

(* Final array contents after interpreting a program: the semantic
   footprint used to validate transformations. *)
let array_footprint ?(fuel = 200_000) ?(params = fun _ -> 0) ?(rand = fun () -> false)
    ?(arrays = []) ast =
  let ssa = Ir.Ssa.of_program ast in
  let st = Ir.Interp.run ~fuel ~params ~rand ~arrays ssa in
  (match st.Ir.Interp.outcome with
   | Ir.Interp.Halted -> ()
   | Ir.Interp.Out_of_fuel -> Alcotest.fail "interpreter ran out of fuel");
  Hashtbl.fold
    (fun (a, idx) v acc -> (Ir.Ident.name a, idx, v) :: acc)
    st.Ir.Interp.arrays []
  |> List.sort compare
