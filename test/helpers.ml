(* Shared helpers for the test suites. *)

module Driver = Analysis.Driver
module Ivclass = Analysis.Ivclass
module Sym = Analysis.Sym

let analyze src = Driver.analyze_source src

let class_str t name =
  match Driver.class_of_name t name with
  | Some c -> Driver.class_to_string t c
  | None -> "<no such name>"

(* [check_class t name expected] compares a classification's rendered
   tuple against the expected string (the notation of the paper). *)
let check_class t name expected =
  Alcotest.(check string) name expected (class_str t name)

let check_classes src expectations =
  let t = analyze src in
  List.iter (fun (name, expected) -> check_class t name expected) expectations

(* ---------- the classification soundness oracle ----------

   Thin wrapper over the production oracle ({!Verify.Oracle}, which this
   helper pioneered): interpret, and at every instruction execution
   check the classification's prediction against the observed value.
   Failures come back as rendered diagnostic strings. *)

let oracle_check ?fuel ?params ?rand ?arrays src =
  let ssa = Ir.Ssa.of_source src in
  (match Ir.Ssa.check ssa with
   | [] -> ()
   | errs ->
     Alcotest.failf "SSA invariant violations: %s"
       (String.concat "; " (List.map Ir.Diag.to_string errs)));
  let t = Driver.analyze ssa in
  let r =
    Verify.Oracle.check ~max_diags:max_int ?fuel ?params ?rand ?arrays t
  in
  (r.Verify.Oracle.checked, List.map Ir.Diag.to_string r.Verify.Oracle.diags)

(* [oracle src] asserts every prediction matched. *)
let oracle ?fuel ?params ?rand ?arrays src =
  let checked, failures = oracle_check ?fuel ?params ?rand ?arrays src in
  (match failures with
   | [] -> ()
   | f :: _ ->
     Alcotest.failf "oracle: %d failures, first: %s" (List.length failures) f);
  checked

(* [oracle_min src n] additionally requires at least [n] checked
   predictions (guarding against vacuous passes). *)
let oracle_min ?fuel ?params ?rand ?arrays src n =
  let checked = oracle ?fuel ?params ?rand ?arrays src in
  if checked < n then
    Alcotest.failf "oracle made only %d checks (expected at least %d)" checked n

(* ---------- misc ---------- *)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let case name f = Alcotest.test_case name `Quick f

(* [contains s sub] — naive substring search, for diagnostics checks. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else begin
    let found = ref false in
    for i = 0 to n - m do
      if (not !found) && String.sub s i m = sub then found := true
    done;
    !found
  end

(* Final array contents after interpreting a program: the semantic
   footprint used to validate transformations. *)
let array_footprint ?(fuel = 200_000) ?(params = fun _ -> 0) ?(rand = fun () -> false)
    ?(arrays = []) ast =
  let ssa = Ir.Ssa.of_program ast in
  let st = Ir.Interp.run ~fuel ~params ~rand ~arrays ssa in
  (match st.Ir.Interp.outcome with
   | Ir.Interp.Halted -> ()
   | Ir.Interp.Out_of_fuel -> Alcotest.fail "interpreter ran out of fuel");
  Hashtbl.fold
    (fun (a, idx) v acc -> (Ir.Ident.name a, idx, v) :: acc)
    st.Ir.Interp.arrays []
  |> List.sort compare
