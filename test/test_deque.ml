(* The Chase-Lev deque under the scheduler: LIFO on the owner side,
   FIFO on the thief side, and — the property the batch determinism
   argument rests on — every pushed element claimed by exactly one of
   pop/steal even when owner and thieves race. *)

module Deque = Service.Deque

let test_owner_lifo () =
  let dq = Deque.create () in
  for i = 0 to 9 do
    Deque.push dq i
  done;
  Alcotest.(check int) "length" 10 (Deque.length dq);
  for i = 9 downto 0 do
    Alcotest.(check (option int)) "pop newest first" (Some i) (Deque.pop dq)
  done;
  Alcotest.(check (option int)) "then empty" None (Deque.pop dq)

let test_thief_fifo () =
  let dq = Deque.create ~capacity:4 () in
  (* Push past the initial capacity so a grow happens under the steals. *)
  for i = 0 to 19 do
    Deque.push dq i
  done;
  let rec steal_all acc =
    match Deque.steal dq with
    | Deque.Stolen x -> steal_all (x :: acc)
    | Deque.Retry -> steal_all acc
    | Deque.Empty -> List.rev acc
  in
  Alcotest.(check (list int)) "steal oldest first"
    (List.init 20 Fun.id) (steal_all []);
  Alcotest.(check (option int)) "owner sees empty" None (Deque.pop dq)

(* Steal-vs-pop race: an owner domain pushes [n] elements in batches,
   popping between batches, while two thief domains steal continuously.
   Afterwards every element must have been claimed exactly once. *)
let claims_exactly_once (n, batch) =
  let dq = Deque.create ~capacity:2 () in
  let stop = Atomic.make false in
  let thief () =
    let acc = ref [] in
    let rec drain () =
      match Deque.steal dq with
      | Deque.Stolen x ->
        acc := x :: !acc;
        drain ()
      | Deque.Retry -> drain ()
      | Deque.Empty -> if not (Atomic.get stop) then (Domain.cpu_relax (); drain ())
    in
    drain ();
    !acc
  in
  let t1 = Domain.spawn thief in
  let t2 = Domain.spawn thief in
  let popped = ref [] in
  let pop_all () =
    let rec go () =
      match Deque.pop dq with
      | Some x ->
        popped := x :: !popped;
        go ()
      | None -> ()
    in
    go ()
  in
  let i = ref 0 in
  while !i < n do
    let b = min batch (n - !i) in
    for _ = 1 to b do
      Deque.push dq !i;
      incr i
    done;
    (match Deque.pop dq with Some x -> popped := x :: !popped | None -> ())
  done;
  pop_all ();
  (* All elements are claimed (or in a thief's hands) by now; release
     the thieves, who drain whatever the owner's pops lost races on. *)
  Atomic.set stop true;
  let s1 = Domain.join t1 in
  let s2 = Domain.join t2 in
  let claimed = Array.make n 0 in
  List.iter
    (fun x -> claimed.(x) <- claimed.(x) + 1)
    (List.concat [ !popped; s1; s2 ]);
  Array.for_all (fun c -> c = 1) claimed

let steal_race =
  Helpers.qtest ~count:30 "steal vs pop claims exactly once"
    QCheck2.Gen.(pair (int_range 1 300) (int_range 1 8))
    claims_exactly_once

let suite =
  ( "service-deque",
    [
      Helpers.case "owner pops LIFO" test_owner_lifo;
      Helpers.case "thieves steal FIFO across a grow" test_thief_fifo;
      steal_race;
    ] )
