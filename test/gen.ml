(* QCheck2 generators of random loop programs, used by the SSA/dominator
   property tests and the classification soundness oracle.

   The statement mix is biased toward the paper's recurrence shapes
   (increments, copies/rotations, flip-flops, conditional updates,
   multiplies) so that the classifier actually fires; all loops are
   counted so the interpreter terminates without fuel pressure. *)

open QCheck2.Gen

let var_names = [ "va"; "vb"; "vc"; "vd" ]

let ident name = Ir.Ident.of_string name
let var name = Ir.Ast.Var (ident name)

let gen_var = oneofl var_names

let gen_const = int_range (-4) 6

(* Simple right-hand sides over the current variables. *)
let gen_expr =
  oneof
    [
      map (fun c -> Ir.Ast.Int c) gen_const;
      map var gen_var;
      map2 (fun v c -> Ir.Ast.Binop (Ir.Ops.Add, var v, Ir.Ast.Int c)) gen_var gen_const;
      map2 (fun a b -> Ir.Ast.Binop (Ir.Ops.Add, var a, var b)) gen_var gen_var;
      map2 (fun v c -> Ir.Ast.Binop (Ir.Ops.Mul, var v, Ir.Ast.Int c)) gen_var (int_range (-3) 3);
      map2 (fun a b -> Ir.Ast.Binop (Ir.Ops.Sub, var a, var b)) gen_var gen_var;
      map (fun v -> Ir.Ast.Neg (var v)) gen_var;
    ]

let gen_cond =
  oneof
    [
      return Ir.Ast.Unknown;
      map3
        (fun op a c -> Ir.Ast.Cmp (op, var a, Ir.Ast.Int c))
        (oneofl [ Ir.Ops.Lt; Ir.Ops.Le; Ir.Ops.Gt; Ir.Ops.Ge; Ir.Ops.Eq; Ir.Ops.Ne ])
        gen_var gen_const;
    ]

(* Statement templates biased toward classifiable recurrences. *)
let rec gen_stmt ~loop_vars depth =
  let leaf =
    oneof
      [
        (* v += c (linear) *)
        map2
          (fun v c ->
            Ir.Ast.Assign
              (ident v, Ir.Ast.Binop (Ir.Ops.Add, var v, Ir.Ast.Int (if c = 0 then 1 else c))))
          gen_var gen_const;
        (* v += w (polynomial chains) *)
        map2
          (fun v w -> Ir.Ast.Assign (ident v, Ir.Ast.Binop (Ir.Ops.Add, var v, var w)))
          gen_var gen_var;
        (* copy: v = w (rotations / wrap-arounds) *)
        map2 (fun v w -> Ir.Ast.Assign (ident v, var w)) gen_var gen_var;
        (* flip-flop: v = c - v *)
        map2
          (fun v c -> Ir.Ast.Assign (ident v, Ir.Ast.Binop (Ir.Ops.Sub, Ir.Ast.Int c, var v)))
          gen_var gen_const;
        (* geometric: v = v*k + c *)
        map3
          (fun v k c ->
            Ir.Ast.Assign
              ( ident v,
                Ir.Ast.Binop
                  (Ir.Ops.Add, Ir.Ast.Binop (Ir.Ops.Mul, var v, Ir.Ast.Int k), Ir.Ast.Int c) ))
          gen_var (int_range 2 3) gen_const;
        (* general assignment *)
        map2 (fun v e -> Ir.Ast.Assign (ident v, e)) gen_var gen_expr;
        (* array store, subscripted by a variable *)
        map2 (fun v e -> Ir.Ast.Astore (ident "arr", [ var v ], e)) gen_var gen_expr;
        (* array store with an affine subscript (exercises the
           dependence-graph oracle) *)
        (let* v = gen_var in
         let* k = int_range 1 3 in
         let* c = int_range (-2) 4 in
         let* e = gen_expr in
         return
           (Ir.Ast.Astore
              ( ident "arr",
                [
                  Ir.Ast.Binop
                    ( Ir.Ops.Add,
                      Ir.Ast.Binop (Ir.Ops.Mul, var v, Ir.Ast.Int k),
                      Ir.Ast.Int c );
                ],
                e )));
        (* array read through an affine subscript *)
        (let* w = gen_var in
         let* v = gen_var in
         let* k = int_range 1 3 in
         let* c = int_range (-2) 4 in
         return
           (Ir.Ast.Assign
              ( ident w,
                Ir.Ast.Aref
                  ( ident "arr",
                    [
                      Ir.Ast.Binop
                        ( Ir.Ops.Add,
                          Ir.Ast.Binop (Ir.Ops.Mul, var v, Ir.Ast.Int k),
                          Ir.Ast.Int c );
                    ] ) )));
      ]
  in
  if depth = 0 then map (fun s -> [ s ]) leaf
  else
    frequency
      [
        (4, map (fun s -> [ s ]) leaf);
        ( 2,
          (* conditional update *)
          map3
            (fun c t e -> [ Ir.Ast.If (c, t, e) ])
            gen_cond
            (gen_stmts ~loop_vars (depth - 1))
            (oneof [ return []; gen_stmts ~loop_vars (depth - 1) ]) );
        ( 2,
          (* nested counted loop with a fresh index *)
          let idx = Printf.sprintf "ix%d" depth in
          map2
            (fun hi body ->
              [
                Ir.Ast.For
                  {
                    Ir.Ast.name = Printf.sprintf "GL%d" depth;
                    var = ident idx;
                    lo = Ir.Ast.Int 1;
                    hi = Ir.Ast.Int hi;
                    step = 1;
                    body;
                  };
              ])
            (int_range 1 5)
            (gen_stmts ~loop_vars:(idx :: loop_vars) (depth - 1)) );
      ]

and gen_stmts ~loop_vars depth =
  map List.concat (list_size (int_range 1 4) (gen_stmt ~loop_vars depth))

(* A whole program: initialize every variable, then run a counted outer
   loop around a random body. *)
let gen_program =
  let inits =
    map
      (fun consts ->
        List.map2 (fun v c -> Ir.Ast.Assign (ident v, Ir.Ast.Int c)) var_names consts)
      (list_size (return (List.length var_names)) gen_const)
  in
  map3
    (fun inits trips body ->
      {
        Ir.Ast.decls = [];
        stmts =
          inits
          @ [
              Ir.Ast.For
                {
                  Ir.Ast.name = "GOUTER";
                  var = ident "go";
                  lo = Ir.Ast.Int 1;
                  hi = Ir.Ast.Int trips;
                  step = 1;
                  body;
                };
            ];
      })
    inits (int_range 1 8)
    (gen_stmts ~loop_vars:[ "go" ] 2)

(* Print for counterexample reporting. *)
let print_program p = Ir.Ast.to_string p

let gen_program_printable = gen_program
