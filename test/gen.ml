(* QCheck2 adapter over the library corpus generator (Corpus.Gen): the
   property tests draw a random seed and expand it deterministically.
   Shrinking degrades to "try smaller seeds" — acceptable for the
   soundness oracles, which report the full offending program via
   [print_program] anyway, and it keeps exactly one generator
   implementation between tests, `ivtool gen` and the benchmarks. *)

let gen_program =
  QCheck2.Gen.map
    (fun seed -> Corpus.Gen.program (Random.State.make [| seed |]))
    (QCheck2.Gen.int_bound 1_000_000)

(* Print for counterexample reporting. *)
let print_program p = Ir.Ast.to_string p

let gen_program_printable = gen_program
