(* Test runner: one alcotest binary aggregating every suite. *)

let () =
  Alcotest.run "beyond_iv"
    [
      Test_bigint.suite;
      Test_rat.suite;
      Test_ratmat.suite;
      Test_sym.suite;
      Test_lexer_parser.suite;
      Test_cfg.suite;
      Test_dom.suite;
      Test_loops.suite;
      Test_ssa.suite;
      Test_interp.suite;
      Test_tarjan.suite;
      Test_sccp.suite;
      Test_figures.suite;
      Test_nested.suite;
      Test_closed_form.suite;
      Test_trip_count.suite;
      Test_algebra.suite;
      Test_oracle.suite;
      Test_dependence.suite;
      Test_normalize.suite;
      Test_peel.suite;
      Test_strength.suite;
      Test_baseline.suite;
      Test_ast_interp.suite;
      Test_transforms.suite;
      Test_ivclass.suite;
      Test_driver.suite;
      Test_affine.suite;
      Test_extensions.suite;
      Test_monotonic_mul.suite;
      Test_banerjee.suite;
      Test_dep_oracle.suite;
      Test_cache.suite;
      Test_pipeline.suite;
      Test_incremental.suite;
      Test_pool.suite;
      Test_server.suite;
      Test_store.suite;
      Test_trace.suite;
      Test_prom.suite;
      Test_explain.suite;
      Test_verify.suite;
    ]
