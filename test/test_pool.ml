(* Service pool: parallel batches must equal sequential ones element for
   element, exceptions must be isolated to their task, and cooperative
   timeouts must surface as Timed_out. *)

module Pool = Service.Pool
module Batch = Service.Batch
module Engine = Service.Engine

let sources =
  [
    "j = n\nL7: loop\n  i = j + c\n  j = i + k\nendloop\n";
    "j = 0\nL19: for i = 1 to n loop\n  j = j + i\n  L20: for k = 1 to i loop\n    j = j + 1\n  endloop\nendloop\n";
    "i = 0\nT: loop\n  i = i + 1\n  if i > 100 exit\nendloop\n";
    "k = 0\nL15: for i = 1 to n loop\n  F(k) = A(i)\n  if ?? then\n    k = k + 1\n  endif\nendloop\n";
    "L23: for i = 1 to n loop\n  L24: for j = i + 1 to n loop\n    A(i, j) = A(i - 1, j)\n  endloop\nendloop\n";
  ]

let unwrap = function
  | Pool.Done x -> x
  | Pool.Failed msg -> Alcotest.fail ("unexpected failure: " ^ msg)
  | Pool.Timed_out s -> Alcotest.fail (Printf.sprintf "unexpected timeout (%.3fs)" s)

let test_parallel_equals_sequential () =
  let tasks = Array.init 64 (fun i -> i) in
  let f i = i * i in
  let seq = Pool.map ~domains:1 f tasks in
  let par = Pool.map ~domains:4 f tasks in
  Alcotest.(check (list int))
    "same results, same order"
    (Array.to_list (Array.map unwrap seq))
    (Array.to_list (Array.map unwrap par))

let test_exception_isolation () =
  let tasks = Array.init 10 (fun i -> i) in
  let f i = if i = 3 then failwith "boom" else i in
  let results = Pool.map ~domains:4 f tasks in
  Array.iteri
    (fun i r ->
      match (i, r) with
      | 3, Pool.Failed msg ->
        Alcotest.(check bool) "message kept" true
          (Helpers.contains msg "boom")
      | 3, _ -> Alcotest.fail "task 3 should fail"
      | i, r -> Alcotest.(check int) "survivor" i (unwrap r))
    results

let test_timeout_is_cooperative () =
  let f = function
    | `Sleepy ->
      (* Busy-wait past the deadline, ticking as a long task should. *)
      let t0 = Unix.gettimeofday () in
      while Unix.gettimeofday () -. t0 < 0.2 do
        Pool.tick ()
      done;
      0
    | `Quick -> 1
  in
  let results = Pool.map ~timeout_s:0.02 ~domains:2 f [| `Sleepy; `Quick; `Quick |] in
  (match results.(0) with
   | Pool.Timed_out _ -> ()
   | _ -> Alcotest.fail "sleepy task should time out");
  Alcotest.(check int) "quick unaffected" 1 (unwrap results.(1));
  Alcotest.(check int) "quick unaffected" 1 (unwrap results.(2))

let test_batch_parallel_equals_sequential () =
  let items =
    List.mapi (fun i src -> { Batch.name = Printf.sprintf "p%d" i; source = src }) sources
  in
  let artifacts = [ Engine.Classify; Engine.Deps; Engine.Trip ] in
  let run domains =
    let engine = Engine.create () in
    Batch.run ~domains ~engine ~artifacts items
    |> List.map (fun ((item : Batch.item), r) ->
           match r with
           | Ok report -> item.Batch.name ^ "\n" ^ report
           | Error msg -> Alcotest.fail (item.Batch.name ^ ": " ^ msg))
  in
  Alcotest.(check (list string)) "4 workers = sequential" (run 1) (run 4)

let test_batch_isolates_bad_input () =
  let items =
    [
      { Batch.name = "good"; source = List.hd sources };
      { Batch.name = "bad"; source = "x = = 1\n" };
      { Batch.name = "also-good"; source = List.nth sources 2 };
    ]
  in
  let engine = Engine.create () in
  let results = Batch.run ~domains:3 ~engine ~artifacts:[ Engine.Classify ] items in
  (match results with
   | [ (_, Ok _); (_, Error msg); (_, Ok _) ] ->
     Alcotest.(check bool) "parse diagnostic" true
       (Helpers.contains msg "parse error")
   | _ -> Alcotest.fail "expected ok/error/ok in input order")

let test_batch_second_pass_hits_cache () =
  let items =
    List.mapi (fun i src -> { Batch.name = Printf.sprintf "p%d" i; source = src }) sources
  in
  let engine = Engine.create () in
  let artifacts = [ Engine.Classify; Engine.Trip ] in
  let r1 = Batch.run ~passes:2 ~domains:4 ~engine ~artifacts items in
  let stats = Engine.cache_stats engine in
  Alcotest.(check bool) "all ok" true
    (List.for_all (fun (_, r) -> Result.is_ok r) r1);
  (* Pass 2 is pure hits: at least one artifact per item per pass. *)
  Alcotest.(check bool) "warm pass hits" true
    (stats.Service.Cache.hits >= List.length items * List.length artifacts)

let suite =
  ( "service-pool",
    [
      Helpers.case "parallel equals sequential" test_parallel_equals_sequential;
      Helpers.case "a raising task is isolated" test_exception_isolation;
      Helpers.case "cooperative timeout" test_timeout_is_cooperative;
      Helpers.case "batch: 4 workers = sequential" test_batch_parallel_equals_sequential;
      Helpers.case "batch: malformed input is isolated" test_batch_isolates_bad_input;
      Helpers.case "batch: second pass is cached" test_batch_second_pass_hits_cache;
    ] )
