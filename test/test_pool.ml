(* Service pool: parallel batches must equal sequential ones element for
   element, exceptions must be isolated to their task, and cooperative
   timeouts must surface as Timed_out. *)

module Pool = Service.Pool
module Batch = Service.Batch
module Engine = Service.Engine

let sources =
  [
    "j = n\nL7: loop\n  i = j + c\n  j = i + k\nendloop\n";
    "j = 0\nL19: for i = 1 to n loop\n  j = j + i\n  L20: for k = 1 to i loop\n    j = j + 1\n  endloop\nendloop\n";
    "i = 0\nT: loop\n  i = i + 1\n  if i > 100 exit\nendloop\n";
    "k = 0\nL15: for i = 1 to n loop\n  F(k) = A(i)\n  if ?? then\n    k = k + 1\n  endif\nendloop\n";
    "L23: for i = 1 to n loop\n  L24: for j = i + 1 to n loop\n    A(i, j) = A(i - 1, j)\n  endloop\nendloop\n";
  ]

let unwrap = function
  | Pool.Done x -> x
  | Pool.Failed msg -> Alcotest.fail ("unexpected failure: " ^ msg)
  | Pool.Timed_out s -> Alcotest.fail (Printf.sprintf "unexpected timeout (%.3fs)" s)

let test_parallel_equals_sequential () =
  let tasks = Array.init 64 (fun i -> i) in
  let f i = i * i in
  let seq = Pool.map ~domains:1 f tasks in
  let par = Pool.map ~domains:4 f tasks in
  Alcotest.(check (list int))
    "same results, same order"
    (Array.to_list (Array.map unwrap seq))
    (Array.to_list (Array.map unwrap par))

let test_exception_isolation () =
  let tasks = Array.init 10 (fun i -> i) in
  let f i = if i = 3 then failwith "boom" else i in
  let results = Pool.map ~domains:4 f tasks in
  Array.iteri
    (fun i r ->
      match (i, r) with
      | 3, Pool.Failed msg ->
        Alcotest.(check bool) "message kept" true
          (Helpers.contains msg "boom")
      | 3, _ -> Alcotest.fail "task 3 should fail"
      | i, r -> Alcotest.(check int) "survivor" i (unwrap r))
    results

let test_timeout_is_cooperative () =
  let f = function
    | `Sleepy ->
      (* Busy-wait past the deadline, ticking as a long task should. *)
      let t0 = Unix.gettimeofday () in
      while Unix.gettimeofday () -. t0 < 0.2 do
        Pool.tick ()
      done;
      0
    | `Quick -> 1
  in
  let results = Pool.map ~timeout_s:0.02 ~domains:2 f [| `Sleepy; `Quick; `Quick |] in
  (match results.(0) with
   | Pool.Timed_out _ -> ()
   | _ -> Alcotest.fail "sleepy task should time out");
  Alcotest.(check int) "quick unaffected" 1 (unwrap results.(1));
  Alcotest.(check int) "quick unaffected" 1 (unwrap results.(2))

let test_batch_parallel_equals_sequential () =
  let items =
    List.mapi (fun i src -> { Batch.name = Printf.sprintf "p%d" i; source = src }) sources
  in
  let artifacts = [ Engine.Classify; Engine.Deps; Engine.Trip ] in
  let run domains =
    let engine = Engine.create () in
    Batch.run ~domains ~engine ~artifacts items
    |> List.map (fun ((item : Batch.item), r) ->
           match r with
           | Ok report -> item.Batch.name ^ "\n" ^ report
           | Error msg -> Alcotest.fail (item.Batch.name ^ ": " ^ msg))
  in
  Alcotest.(check (list string)) "4 workers = sequential" (run 1) (run 4)

let test_batch_isolates_bad_input () =
  let items =
    [
      { Batch.name = "good"; source = List.hd sources };
      { Batch.name = "bad"; source = "x = = 1\n" };
      { Batch.name = "also-good"; source = List.nth sources 2 };
    ]
  in
  let engine = Engine.create () in
  let results = Batch.run ~domains:3 ~engine ~artifacts:[ Engine.Classify ] items in
  (match results with
   | [ (_, Ok _); (_, Error msg); (_, Ok _) ] ->
     Alcotest.(check bool) "parse diagnostic" true
       (Helpers.contains msg "parse error")
   | _ -> Alcotest.fail "expected ok/error/ok in input order")

let test_batch_second_pass_hits_cache () =
  let items =
    List.mapi (fun i src -> { Batch.name = Printf.sprintf "p%d" i; source = src }) sources
  in
  let engine = Engine.create () in
  let artifacts = [ Engine.Classify; Engine.Trip ] in
  let r1 = Batch.run ~passes:2 ~domains:4 ~engine ~artifacts items in
  let stats = Engine.cache_stats engine in
  Alcotest.(check bool) "all ok" true
    (List.for_all (fun (_, r) -> Result.is_ok r) r1);
  (* Pass 2 is pure hits: at least one artifact per item per pass. *)
  Alcotest.(check bool) "warm pass hits" true
    (stats.Service.Cache.hits >= List.length items * List.length artifacts)

(* --- scheduler edge cases (the work-stealing deques) --- *)

(* Many tasks, several of which die, on enough workers that thieves are
   stealing while the deaths happen: every failure stays isolated to its
   own slot and every survivor lands in input order. *)
let test_death_mid_steal () =
  let n = 128 in
  let tasks = Array.init n (fun i -> i) in
  let f i = if i mod 7 = 3 then failwith (Printf.sprintf "dead-%d" i) else i * 3 in
  let results = Pool.map ~domains:4 f tasks in
  Array.iteri
    (fun i r ->
      match r with
      | Pool.Failed msg ->
        Alcotest.(check bool) "only scripted deaths" true (i mod 7 = 3);
        Alcotest.(check bool) "own message" true
          (Helpers.contains msg (Printf.sprintf "dead-%d" i))
      | r -> Alcotest.(check int) "survivor in order" (i * 3) (unwrap r))
    results

(* A timeout firing while the deques still hold queued work must not
   take the queued tasks down with it. *)
let test_timeout_with_nonempty_deque () =
  let n = 64 in
  let f = function
    | 0 ->
      let t0 = Unix.gettimeofday () in
      while Unix.gettimeofday () -. t0 < 0.2 do
        Pool.tick ()
      done;
      -1
    | i -> i
  in
  let results = Pool.map ~timeout_s:0.02 ~domains:2 f (Array.init n Fun.id) in
  (match results.(0) with
   | Pool.Timed_out _ -> ()
   | _ -> Alcotest.fail "task 0 should time out");
  for i = 1 to n - 1 do
    Alcotest.(check int) "queued task unaffected" i (unwrap results.(i))
  done

(* In-task fork/join: each top-level task fans subtasks onto its own
   deque; results come back in order with failures isolated, and the
   whole thing nests under a persistent pool. *)
let test_fork_all_in_task () =
  let pool = Pool.create ~domains:3 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let f i =
    Alcotest.(check bool) "inside a scheduler node" true (Pool.in_worker ());
    let subs =
      Array.init 5 (fun j ->
          fun () -> if j = 2 && i = 1 then failwith "sub-boom" else (i * 10) + j)
    in
    Pool.fork_all subs
    |> Array.map (function
         | Pool.Done v -> v
         | Pool.Failed _ -> -1
         | Pool.Timed_out _ -> -2)
  in
  let results = Pool.run pool f (Array.init 8 Fun.id) in
  Array.iteri
    (fun i r ->
      let sub = unwrap r in
      Array.iteri
        (fun j v ->
          let expect = if j = 2 && i = 1 then -1 else (i * 10) + j in
          Alcotest.(check int) "forked result" expect v)
        sub)
    results

(* Forked subtasks inherit the forking task's deadline: a subtask that
   ticks past it times out even though fork_all passes no timeout. *)
let test_fork_all_inherits_deadline () =
  let f () =
    let sub () =
      let t0 = Unix.gettimeofday () in
      while Unix.gettimeofday () -. t0 < 0.2 do
        Pool.tick ()
      done;
      0
    in
    match (Pool.fork_all [| sub |]).(0) with
    | Pool.Timed_out _ -> `Sub_timed_out
    | Pool.Done _ -> `Sub_finished
    | Pool.Failed m -> `Sub_failed m
  in
  let results = Pool.map ~timeout_s:0.02 ~domains:2 f [| (); () |] in
  Array.iter
    (fun r ->
      match unwrap r with
      | `Sub_timed_out -> ()
      | `Sub_finished -> Alcotest.fail "subtask ignored inherited deadline"
      | `Sub_failed m -> Alcotest.fail ("subtask failed: " ^ m))
    results

(* domains = 1 takes the no-atomic sequential path; fork_all without a
   worker context or pool evaluates inline. Same contract either way. *)
let test_j1_inline_fallback () =
  let results =
    Pool.map ~domains:1
      (fun i ->
        let subs = [| (fun () -> i); (fun () -> failwith "inline-boom") |] in
        match Pool.fork_all subs with
        | [| Pool.Done v; Pool.Failed msg |] when Helpers.contains msg "inline-boom" -> v
        | _ -> Alcotest.fail "inline fork_all shape")
      (Array.init 6 Fun.id)
  in
  Array.iteri (fun i r -> Alcotest.(check int) "inline result" i (unwrap r)) results;
  Alcotest.(check bool) "not in a worker here" false (Pool.in_worker ())

(* The scheduler's telemetry contract: per-domain pool.tasks and
   pool.steals counters are registered, and the task counters across
   domains account for every task exactly once. *)
let test_steal_telemetry () =
  let m = Obs.Instrument.create () in
  let n = 256 in
  let results = Pool.map ~metrics:m ~domains:4 (fun i -> i) (Array.init n Fun.id) in
  Array.iteri (fun i r -> Alcotest.(check int) "result" i (unwrap r)) results;
  let sum_prefix prefix =
    List.fold_left
      (fun acc (name, view) ->
        match view with
        | Obs.Instrument.V_counter c when Helpers.contains name prefix -> acc + c
        | _ -> acc)
      0 (Obs.Instrument.snapshot m)
  in
  Alcotest.(check int) "every task counted once" n (sum_prefix "pool.tasks");
  Alcotest.(check bool) "steal counters registered" true
    (List.exists
       (fun (name, _) -> Helpers.contains name "pool.steals")
       (Obs.Instrument.snapshot m))

let suite =
  ( "service-pool",
    [
      Helpers.case "parallel equals sequential" test_parallel_equals_sequential;
      Helpers.case "a raising task is isolated" test_exception_isolation;
      Helpers.case "cooperative timeout" test_timeout_is_cooperative;
      Helpers.case "batch: 4 workers = sequential" test_batch_parallel_equals_sequential;
      Helpers.case "batch: malformed input is isolated" test_batch_isolates_bad_input;
      Helpers.case "batch: second pass is cached" test_batch_second_pass_hits_cache;
      Helpers.case "worker death mid-steal is isolated" test_death_mid_steal;
      Helpers.case "timeout with a non-empty deque" test_timeout_with_nonempty_deque;
      Helpers.case "fork_all fans out in-task" test_fork_all_in_task;
      Helpers.case "fork_all inherits the deadline" test_fork_all_inherits_deadline;
      Helpers.case "domains=1 inline fallback" test_j1_inline_fallback;
      Helpers.case "per-domain task/steal telemetry" test_steal_telemetry;
    ] )
