(* Region-based incremental re-analysis: the per-unit cache must make
   an edit to one loop nest cheap (every other unit is a cache hit)
   without ever changing a byte of the merged whole-program reports. *)

module Engine = Service.Engine
module Server = Service.Server
module Pipeline = Analysis.Pipeline
module Region = Ir.Region

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* Three independent top-level nests with straight-line code between
   the first two; editing one nest must leave the other units' digests
   (and so their cached artifacts) untouched. *)
let base ?(body1 = "s + i") ?(body2 = "t + 2") () =
  Printf.sprintf
    "s = 0\n\
     L1: for i = 1 to n loop\n\
    \  s = %s\n\
    \  A(i) = s\n\
     endloop\n\
     t = 0\n\
     L2: for j = 1 to m loop\n\
    \  t = %s\n\
    \  B(j) = t\n\
     endloop\n\
     L3: for k = 1 to 10 loop\n\
    \  C(k) = k * k\n\
     endloop\n"
    body1 body2

let old_src = base ()
let new_src = base ~body2:"t + 3" ()

let stat engine name =
  match
    List.find_opt (fun (p, _, _) -> p = name) (Engine.pass_stats engine)
  with
  | Some (_, hits, misses) -> (hits, misses)
  | None -> Alcotest.failf "no pass named %s in pass_stats" name

(* --- the partition itself --- *)

let test_partition () =
  let p = Pipeline.create old_src in
  match ok (Pipeline.units p) with
  | None -> Alcotest.fail "expected a unit mapping for a structured program"
  | Some infos ->
    Alcotest.(check int) "five units" 5 (List.length infos);
    let kinds =
      List.map
        (fun (i : Pipeline.unit_info) -> Region.kind_to_string i.region.kind)
        infos
    in
    Alcotest.(check (list string))
      "straight / nest interleaving"
      [ "straight"; "nest"; "straight"; "nest"; "nest" ]
      kinds;
    List.iter
      (fun (i : Pipeline.unit_info) ->
        match i.region.kind with
        | Region.Nest ->
          Alcotest.(check bool) "nest unit owns loops" true (i.uroots <> [])
        | Region.Straight ->
          Alcotest.(check bool) "straight unit owns no loops" true
            (i.uroots = []))
      infos

(* --- cache behaviour across an edit --- *)

let test_unit_reuse () =
  let e = Engine.create () in
  ignore (ok (Engine.classify e old_src));
  Alcotest.(check (pair int int))
    "cold run computes all three nests" (0, 3) (stat e "unit_classify");
  ignore (ok (Engine.classify e new_src));
  (* Only L2 changed: L1 and L3 are served from the unit cache, the
     edited nest is the single new miss. *)
  Alcotest.(check (pair int int))
    "edit reuses the two untouched nests" (2, 4) (stat e "unit_classify")

(* --- byte-identity of the merged reports --- *)

let reports engine src =
  List.map
    (fun a -> ok (Engine.render engine a src))
    [ Engine.Classify; Engine.Trip; Engine.Deps ]

let check_identical ?(expect_reuse = true) ~edited old_src new_src =
  let warm = Engine.create () in
  ignore (ok (Engine.classify warm old_src));
  let incremental = reports warm new_src in
  let cold = reports (Engine.create ()) new_src in
  List.iter2
    (fun a b ->
      Alcotest.(check string) ("incremental = cold after " ^ edited) a b)
    cold incremental;
  if expect_reuse then begin
    (* Some nest really was reused, so the equality above is a
       statement about merged-from-cache output, not a trivial re-run. *)
    let hits, _ = stat warm "unit_classify" in
    Alcotest.(check bool) "some units were reused" true (hits > 0)
  end

let test_merged_byte_identity () = check_identical ~edited:"a mid-nest edit" old_src new_src

let test_first_nest_edit () =
  (* Same program, different edited unit: the first nest this time
     (size-preserving, so downstream SSA ids — and with them the other
     units' digests — are untouched). *)
  check_identical ~edited:"a first-nest edit" old_src (base ~body1:"s - i" ())

let test_size_changing_edit () =
  (* An edit that inserts an instruction shifts every downstream SSA id,
     so the digests of later units change and their artifacts are not
     reused — correctness over cleverness. The merged output must still
     be byte-identical to a cold run. *)
  check_identical ~expect_reuse:false ~edited:"a size-changing edit" old_src
    (base ~body1:"s + 2 * i" ())

let test_parallel_merge_identical () =
  (* Unit fan-out across domains must not perturb merged output. *)
  let pool = Service.Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Service.Pool.shutdown pool)
    (fun () ->
      let warm = Engine.create () in
      ignore (ok (Engine.classify warm old_src));
      let par = ok (Engine.render ~pool warm Engine.Classify new_src) in
      let seq = ok (Engine.render (Engine.create ()) Engine.Classify new_src) in
      Alcotest.(check string) "pooled merge = sequential" seq par)

(* --- the merged analysis still satisfies the checked-mode oracle --- *)

let test_check_after_merge () =
  let e = Engine.create () in
  ignore (ok (Engine.classify e old_src));
  ignore (ok (Engine.classify e new_src));
  let report = ok (Engine.check e new_src) in
  Alcotest.(check int) "no checker errors on merged analysis" 0
    (Verify.Check.errors report);
  Alcotest.(check bool) "oracle actually checked something" true
    (Verify.Check.checks report > 0)

(* --- user-facing surfaces --- *)

let test_diff_report () =
  let e = Engine.create () in
  let text = ok (Engine.diff e old_src new_src) in
  Alcotest.(check bool) "counts the units" true
    (Helpers.contains text "diff: 5 units");
  Alcotest.(check bool) "reused nests are visible" true
    (Helpers.contains text "reused (unit cache hit)");
  Alcotest.(check bool) "the edited nest is re-analyzed" true
    (Helpers.contains text "reanalyzed (changed)")

let with_temp_program src f =
  let path = Filename.temp_file "ivtool_incr" ".iv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc src;
      close_out oc;
      f path)

let payload = function
  | Server.Ok_payload s -> s
  | Server.Err msg -> Alcotest.fail ("unexpected ERR: " ^ msg)
  | Server.Bye -> Alcotest.fail "unexpected BYE"

let test_reanalyze_verb () =
  let e = Engine.create () in
  with_temp_program old_src (fun path ->
      ignore (payload (Server.handle e ("CLASSIFY " ^ path))));
  with_temp_program new_src (fun path ->
      let reply = payload (Server.handle e ("REANALYZE " ^ path)) in
      (* The summary counts nest units (straight-line units carry no
         cached loop work): two of the three nests are reused. *)
      Alcotest.(check bool) "summarises reuse" true
        (Helpers.contains reply "reanalyze: 3 units, 2 reused, 1 computed");
      Alcotest.(check bool) "carries the classify report" true
        (Helpers.contains reply "loop L2"));
  Alcotest.(check bool) "REANALYZE needs a path" true
    (match Server.handle e "REANALYZE" with
     | Server.Err msg -> Helpers.contains msg "file argument"
     | _ -> false)

let suite =
  ( "incremental",
    [
      Helpers.case "partition into units" test_partition;
      Helpers.case "edit reuses untouched units" test_unit_reuse;
      Helpers.case "merged reports byte-identical" test_merged_byte_identity;
      Helpers.case "first-nest edit byte-identical" test_first_nest_edit;
      Helpers.case "size-changing edit byte-identical" test_size_changing_edit;
      Helpers.case "parallel merge byte-identical" test_parallel_merge_identical;
      Helpers.case "checked mode passes on merged" test_check_after_merge;
      Helpers.case "diff report" test_diff_report;
      Helpers.case "REANALYZE serve verb" test_reanalyze_verb;
    ] )
