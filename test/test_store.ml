(* The persistent artifact store: frame validation, crash-safe
   publication, corruption recovery, GC policy, and the engine's
   two-tier read path over it. The recurring shape: break something on
   disk, then check the reader degrades to a recompute — never a crash,
   never bad bytes. *)

module Frame = Store.Frame
module Disk = Store.Disk
module Engine = Service.Engine
module Server = Service.Server

let fig1 = "j = n\nL7: loop\n  i = j + c\n  j = i + k\nendloop\n"

let key_of s = Hash.Fnv.feed_string Hash.Fnv.empty s

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_store_dir f =
  let dir = Filename.temp_file "ivstore" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

let open_exn dir =
  match Disk.open_store ~root:dir () with
  | Ok s -> s
  | Error msg -> Alcotest.fail msg

let write_raw path bytes =
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---------- framing ---------- *)

let err_kind = function
  | Frame.Foreign -> "foreign"
  | Frame.Bad_version _ -> "version"
  | Frame.Bad_kind _ -> "kind"
  | Frame.Truncated -> "truncated"
  | Frame.Trailing _ -> "trailing"
  | Frame.Bad_checksum -> "checksum"

let check_decode name expected ~kind bytes =
  match Frame.decode ~kind bytes with
  | Ok _ -> Alcotest.failf "%s: decoded a bad frame" name
  | Error e -> Alcotest.(check string) name expected (err_kind e)

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      match Frame.decode ~kind:"classify" (Frame.encode ~kind:"classify" payload) with
      | Ok p -> Alcotest.(check string) "payload survives" payload p
      | Error e -> Alcotest.failf "roundtrip rejected: %s" (Frame.error_to_string e))
    [ ""; "x"; fig1; String.make 100_000 '\255' ]

let test_frame_rejects () =
  let good = Frame.encode ~kind:"classify" "hello, artifact" in
  (* Truncation at every prefix length: always Truncated or Foreign
     (cut inside the magic), never an exception or a success. *)
  for len = 0 to String.length good - 1 do
    match Frame.decode ~kind:"classify" (String.sub good 0 len) with
    | Ok _ -> Alcotest.failf "prefix of %d bytes decoded" len
    | Error (Frame.Truncated | Frame.Foreign) -> ()
    | Error e ->
      Alcotest.failf "prefix of %d bytes: unexpected %s" len
        (Frame.error_to_string e)
  done;
  check_decode "trailing bytes" "trailing" ~kind:"classify" (good ^ "!");
  check_decode "foreign magic" "foreign" ~kind:"classify"
    ("JUNK" ^ String.sub good 4 (String.length good - 4));
  check_decode "wrong kind" "kind" ~kind:"deps" good;
  (let b = Bytes.of_string good in
   Bytes.set b 4 '\007';
   check_decode "future version" "version" ~kind:"classify" (Bytes.to_string b));
  (let b = Bytes.of_string good in
   let pos = String.length good - 3 in
   Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
   check_decode "flipped payload bit" "checksum" ~kind:"classify"
     (Bytes.to_string b));
  Alcotest.check_raises "empty kind rejected"
    (Invalid_argument "Store.Frame.encode: bad kind") (fun () ->
      ignore (Frame.encode ~kind:"" "x"))

(* ---------- the disk store ---------- *)

let test_disk_roundtrip () =
  with_store_dir (fun dir ->
      let s = open_exn dir in
      let k = key_of "report-a" in
      Alcotest.(check (option string)) "absent before put" None
        (Disk.get s ~kind:"classify" k);
      Disk.put s ~kind:"classify" k "the report";
      Alcotest.(check (option string)) "round trip" (Some "the report")
        (Disk.get s ~kind:"classify" k);
      (* Same digest, different kind: a distinct entry. *)
      Alcotest.(check (option string)) "kinds are disjoint" None
        (Disk.get s ~kind:"deps" k);
      let st = Disk.stats s in
      Alcotest.(check int) "one put" 1 st.Disk.puts;
      Alcotest.(check int) "one hit" 1 st.Disk.hits;
      Alcotest.(check int) "two misses" 2 st.Disk.misses;
      (* The layout contract: two-hex shard directory, kind suffix. *)
      let hex = Hash.Fnv.to_hex k in
      Alcotest.(check string) "sharded path"
        (Filename.concat
           (Filename.concat dir (String.sub hex 0 2))
           (String.sub hex 2 14 ^ ".classify"))
        (Disk.entry_path s ~kind:"classify" k);
      Alcotest.(check (pair int int)) "usage sees the entry bytes"
        (1, String.length (read_raw (Disk.entry_path s ~kind:"classify" k)))
        (Disk.usage s))

let test_disk_rejects_corruption () =
  with_store_dir (fun dir ->
      let s = open_exn dir in
      let corrupt name mutate =
        let k = key_of name in
        Disk.put s ~kind:"classify" k ("payload of " ^ name);
        let path = Disk.entry_path s ~kind:"classify" k in
        write_raw path (mutate (read_raw path));
        Alcotest.(check (option string)) (name ^ " rejected") None
          (Disk.get s ~kind:"classify" k)
      in
      corrupt "truncated" (fun b -> String.sub b 0 (String.length b - 4));
      corrupt "bitflip" (fun b ->
          let by = Bytes.of_string b in
          let pos = Bytes.length by - 1 in
          Bytes.set by pos (Char.chr (Char.code (Bytes.get by pos) lxor 0x80));
          Bytes.to_string by);
      corrupt "foreign" (fun _ -> "not a store entry at all");
      corrupt "version" (fun b ->
          let by = Bytes.of_string b in
          Bytes.set by 4 '\002';
          Bytes.to_string by);
      let st = Disk.stats s in
      Alcotest.(check int) "corrupt rejects" 2 st.Disk.rejects_corrupt;
      Alcotest.(check int) "foreign rejects" 1 st.Disk.rejects_foreign;
      Alcotest.(check int) "version rejects" 1 st.Disk.rejects_version;
      Alcotest.(check int) "every reject is also a miss" 4 st.Disk.misses;
      (* Republication over a corrupted entry heals it. *)
      Disk.put s ~kind:"classify" (key_of "bitflip") "healed";
      Alcotest.(check (option string)) "healed" (Some "healed")
        (Disk.get s ~kind:"classify" (key_of "bitflip")))

let test_disk_concurrent_writers () =
  with_store_dir (fun dir ->
      let k = key_of "contended" in
      let payload = String.concat "\n" (List.init 200 string_of_int) in
      (* Domains hammering one key through separate handles — the
         sharpest version of N processes sharing a store. Every read
         during and after the storm must be absent-or-complete. *)
      let workers =
        List.init 4 (fun _ ->
            Domain.spawn (fun () ->
                let s = open_exn dir in
                for _ = 1 to 25 do
                  Disk.put s ~kind:"classify" k payload;
                  match Disk.get s ~kind:"classify" k with
                  | None -> () (* raced a rename: an honest miss *)
                  | Some got -> assert (String.equal got payload)
                done;
                Disk.stats s))
      in
      let stats = List.map Domain.join workers in
      List.iter
        (fun (st : Disk.stats) ->
          Alcotest.(check int) "no writer errors" 0 st.Disk.put_errors;
          Alcotest.(check int) "no corrupt reads" 0 st.Disk.rejects_corrupt)
        stats;
      let s = open_exn dir in
      Alcotest.(check (option string)) "entry valid after the storm"
        (Some payload)
        (Disk.get s ~kind:"classify" k);
      Alcotest.(check (pair int int)) "exactly one entry, no temps left"
        (1, String.length (read_raw (Disk.entry_path s ~kind:"classify" k)))
        (Disk.usage s))

let test_disk_gc () =
  with_store_dir (fun dir ->
      let s = open_exn dir in
      let entry i = key_of (Printf.sprintf "entry-%d" i) in
      for i = 1 to 5 do
        Disk.put s ~kind:"classify" (entry i) (String.make 100 'x')
      done;
      (* Age entries 1-2 a day back; leave 3-5 fresh. *)
      let old = Unix.gettimeofday () -. 86_400.0 in
      for i = 1 to 2 do
        Unix.utimes (Disk.entry_path s ~kind:"classify" (entry i)) old old
      done;
      (* A stale temp from a "crashed writer". *)
      let temp =
        Filename.concat (Filename.dirname (Disk.entry_path s ~kind:"classify" (entry 1)))
          ".tmp.999.0"
      in
      write_raw temp "partial";
      Unix.utimes temp old old;
      let dry = Disk.gc ~dry_run:true ~max_age_s:3600.0 s () in
      Alcotest.(check int) "dry run would expire two" 2 dry.Disk.deleted;
      Alcotest.(check int) "dry run deletes nothing" 5 (fst (Disk.usage s));
      Alcotest.(check bool) "dry run keeps the temp" true (Sys.file_exists temp);
      let r = Disk.gc ~max_age_s:3600.0 s () in
      Alcotest.(check int) "expired two" 2 r.Disk.deleted;
      Alcotest.(check int) "swept the stale temp" 1 r.Disk.stale_temps;
      Alcotest.(check bool) "temp gone" false (Sys.file_exists temp);
      Alcotest.(check int) "three survive" 3 (fst (Disk.usage s));
      (* Size budget: each entry's file is ~130 bytes; 150 keeps one. *)
      let r = Disk.gc ~max_bytes:150 s () in
      Alcotest.(check int) "evicted down to budget" 2 r.Disk.deleted;
      Alcotest.(check int) "one left" 1 (fst (Disk.usage s));
      Alcotest.(check bool) "under budget" true (snd (Disk.usage s) <= 150);
      (* The survivors are still valid entries. *)
      let alive =
        List.filter
          (fun i -> Disk.get s ~kind:"classify" (entry i) <> None)
          [ 3; 4; 5 ]
      in
      Alcotest.(check int) "survivor readable" 1 (List.length alive))

let test_open_store_errors () =
  with_store_dir (fun dir ->
      let file = Filename.concat dir "plain-file" in
      write_raw file "x";
      match Disk.open_store ~root:file () with
      | Ok _ -> Alcotest.fail "opened a store over a plain file"
      | Error msg ->
        Alcotest.(check bool) "names the path" true
          (Helpers.contains msg "plain-file"))

(* ---------- the engine's two-tier read path ---------- *)

let artifact_counts e a =
  let _, mem, disk, computed =
    List.find (fun (a', _, _, _) -> a' = a) (Engine.artifact_stats e)
  in
  (mem, disk, computed)

let render_exn e a src =
  match Engine.render e a src with
  | Ok text -> text
  | Error msg -> Alcotest.fail msg

let test_engine_two_tiers () =
  with_store_dir (fun dir ->
      (* Cold process: compute, publish. *)
      let e1 = Engine.create ~store:(open_exn dir) () in
      let first = render_exn e1 Engine.Classify fig1 in
      Alcotest.(check (triple int int int)) "cold = computed" (0, 0, 1)
        (artifact_counts e1 Engine.Classify);
      ignore (render_exn e1 Engine.Classify fig1);
      Alcotest.(check (triple int int int)) "second request = memory" (1, 0, 1)
        (artifact_counts e1 Engine.Classify);
      (* "Restarted" process sharing the store: disk hit, byte-identical,
         and zero analysis passes run. *)
      let e2 = Engine.create ~store:(open_exn dir) () in
      let warm = render_exn e2 Engine.Classify fig1 in
      Alcotest.(check string) "byte-identical across processes" first warm;
      Alcotest.(check (triple int int int)) "warm start = disk" (0, 1, 0)
        (artifact_counts e2 Engine.Classify);
      List.iter
        (fun (name, _, misses) ->
          Alcotest.(check int) (name ^ " never ran") 0 misses)
        (Engine.pass_stats e2);
      (* The disk hit was promoted: the next request is a memory hit. *)
      ignore (render_exn e2 Engine.Classify fig1);
      Alcotest.(check (triple int int int)) "promoted to memory" (1, 1, 0)
        (artifact_counts e2 Engine.Classify);
      (* STATS surfaces all of it. *)
      let stats = Engine.stats_report e2 in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("stats mention " ^ needle) true
            (Helpers.contains stats needle))
        [ "store: hits=1"; "artifact.classify: mem=1 disk=1 computed=0";
          "hit_rate=1.00" ])

let test_engine_store_owner_column () =
  with_store_dir (fun dir ->
      let e1 = Engine.create ~store:(open_exn dir) () in
      ignore (render_exn e1 Engine.Classify fig1);
      let e2 = Engine.create ~store:(open_exn dir) () in
      ignore (render_exn e2 Engine.Classify fig1);
      let report = Engine.passes_report e2 fig1 in
      Alcotest.(check bool) "promote owned by the store" true
        (Helpers.contains report "store");
      (* The same report from the computing engine has no store rows:
         every pass genuinely ran there. *)
      Alcotest.(check bool) "computing engine owns its passes" false
        (Helpers.contains (Engine.passes_report e1 fig1) "store"))

let test_engine_recovers_from_corruption () =
  with_store_dir (fun dir ->
      let s = open_exn dir in
      let e1 = Engine.create ~store:s () in
      let first = render_exn e1 Engine.Classify fig1 in
      (* Find the published entry and tear it. *)
      let entries = ref [] in
      Array.iter
        (fun shard ->
          let d = Filename.concat dir shard in
          if Sys.is_directory d then
            Array.iter
              (fun n ->
                if Filename.check_suffix n ".classify" then
                  entries := Filename.concat d n :: !entries)
              (Sys.readdir d))
        (Sys.readdir dir);
      (match !entries with
       | [ path ] ->
         let b = read_raw path in
         write_raw path (String.sub b 0 (String.length b / 2))
       | l -> Alcotest.failf "expected one classify entry, found %d" (List.length l));
      (* A fresh process: the torn entry is rejected, the report is
         recomputed (bit-identical), and the store is healed. *)
      let s2 = open_exn dir in
      let e2 = Engine.create ~store:s2 () in
      Alcotest.(check string) "recomputed identically" first
        (render_exn e2 Engine.Classify fig1);
      Alcotest.(check (triple int int int)) "served by recompute" (0, 0, 1)
        (artifact_counts e2 Engine.Classify);
      Alcotest.(check int) "reject counted" 1 (Disk.stats s2).Disk.rejects_corrupt;
      let e3 = Engine.create ~store:(open_exn dir) () in
      Alcotest.(check (triple int int int)) "healed for the next process" (0, 1, 0)
        (ignore (render_exn e3 Engine.Classify fig1);
         artifact_counts e3 Engine.Classify))

let test_engine_check_keyed_by_iters () =
  with_store_dir (fun dir ->
      let mk iters =
        Engine.create
          ~options:{ Engine.default_options with Engine.check_iters = iters }
          ~store:(open_exn dir) ()
      in
      let e1 = mk 100 in
      ignore (render_exn e1 Engine.Check fig1);
      (* Same source, different oracle bound: must not share the entry. *)
      let e2 = mk 5 in
      ignore (render_exn e2 Engine.Check fig1);
      Alcotest.(check (triple int int int)) "different --iters recomputes"
        (0, 0, 1)
        (artifact_counts e2 Engine.Check);
      let e3 = mk 100 in
      ignore (render_exn e3 Engine.Check fig1);
      Alcotest.(check (triple int int int)) "same --iters shares" (0, 1, 0)
        (artifact_counts e3 Engine.Check))

let test_engine_without_store_unchanged () =
  let e = Engine.create () in
  (match Engine.render e Engine.Classify fig1 with
   | Ok _ -> ()
   | Error msg -> Alcotest.fail msg);
  Alcotest.(check bool) "no store line in stats" false
    (Helpers.contains (Engine.stats_report e) "store:");
  Alcotest.(check (triple int int int)) "tiers still counted" (0, 0, 1)
    (artifact_counts e Engine.Classify);
  Alcotest.(check bool) "no store accessor" true (Engine.store e = None)

(* ---------- the serve-mode PERSIST verb ---------- *)

let with_temp_program src f =
  let path = Filename.temp_file "ivtool_test" ".iv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc src;
      close_out oc;
      f path)

let payload = function
  | Server.Ok_payload s -> s
  | Server.Err msg -> Alcotest.fail ("unexpected ERR: " ^ msg)
  | Server.Bye -> Alcotest.fail "unexpected BYE"

let test_server_persist () =
  with_store_dir (fun dir ->
      with_temp_program fig1 (fun path ->
          let store_dir = Filename.concat dir "fleet" in
          let e1 = Engine.create () in
          Alcotest.(check string) "bare PERSIST without a store"
            "no store attached\n"
            (payload (Server.handle e1 "PERSIST"));
          Alcotest.(check string) "attach"
            (Printf.sprintf "store attached %s\n" store_dir)
            (payload (Server.handle e1 ("PERSIST " ^ store_dir)));
          let first = payload (Server.handle e1 ("CLASSIFY " ^ path)) in
          (* A second server over the same directory starts warm. *)
          let e2 = Engine.create () in
          ignore (payload (Server.handle e2 ("PERSIST " ^ store_dir)));
          Alcotest.(check string) "second server serves identical bytes" first
            (payload (Server.handle e2 ("CLASSIFY " ^ path)));
          Alcotest.(check (triple int int int)) "from disk" (0, 1, 0)
            (artifact_counts e2 Engine.Classify);
          let status = payload (Server.handle e2 "PERSIST") in
          List.iter
            (fun needle ->
              Alcotest.(check bool) ("status mentions " ^ needle) true
                (Helpers.contains status needle))
            [ store_dir; "hits=1"; "entries=1" ];
          Alcotest.(check bool) "STATS has the store line" true
            (Helpers.contains
               (payload (Server.handle e2 "STATS"))
               "store: hits=1");
          Alcotest.(check string) "detach" "store detached\n"
            (payload (Server.handle e2 "PERSIST off"));
          Alcotest.(check string) "detached status" "no store attached\n"
            (payload (Server.handle e2 "PERSIST"))))

let suite =
  ( "store",
    [
      Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
      Alcotest.test_case "frame rejects" `Quick test_frame_rejects;
      Alcotest.test_case "disk roundtrip" `Quick test_disk_roundtrip;
      Alcotest.test_case "disk rejects corruption" `Quick test_disk_rejects_corruption;
      Alcotest.test_case "concurrent writers" `Quick test_disk_concurrent_writers;
      Alcotest.test_case "gc policy" `Quick test_disk_gc;
      Alcotest.test_case "open errors" `Quick test_open_store_errors;
      Alcotest.test_case "engine two tiers" `Quick test_engine_two_tiers;
      Alcotest.test_case "passes owner column" `Quick test_engine_store_owner_column;
      Alcotest.test_case "corruption recovery" `Quick test_engine_recovers_from_corruption;
      Alcotest.test_case "check keyed by iters" `Quick test_engine_check_keyed_by_iters;
      Alcotest.test_case "store-less engine unchanged" `Quick
        test_engine_without_store_unchanged;
      Alcotest.test_case "serve PERSIST" `Quick test_server_persist;
    ] )
