(* lib/obs: span collection and nesting, exporters, the JSON checker,
   instrument quantile edges, and the classification provenance events. *)

module Trace = Obs.Trace

(* --- spans and events --- *)

let test_span_nesting () =
  let (), t =
    Trace.collect (fun () ->
        Trace.with_span "outer" (fun () ->
            Trace.with_span "inner" (fun () -> Trace.event "tick");
            Trace.with_span "inner2" ignore))
  in
  let spans = Trace.spans t in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let by_name n = List.find (fun (s : Trace.span) -> s.Trace.name = n) spans in
  let outer = by_name "outer" and inner = by_name "inner" in
  let inner2 = by_name "inner2" in
  Alcotest.(check bool) "outer is a root" true (outer.Trace.parent = None);
  Alcotest.(check bool) "inner under outer" true
    (inner.Trace.parent = Some outer.Trace.sid);
  Alcotest.(check bool) "inner2 under outer" true
    (inner2.Trace.parent = Some outer.Trace.sid);
  Alcotest.(check bool) "span closed" true
    (Int64.compare inner.Trace.stop_ns inner.Trace.start_ns >= 0);
  Alcotest.(check int) "one event" 1 (List.length (Trace.events t))

let test_span_closes_on_raise () =
  let result, t =
    Trace.collect (fun () ->
        try
          ignore (Trace.with_span "boom" (fun () -> failwith "no"));
          false
        with Failure _ -> true)
  in
  Alcotest.(check bool) "exception propagated" true result;
  let s = List.hd (Trace.spans t) in
  Alcotest.(check bool) "closed anyway" true
    (Int64.compare s.Trace.stop_ns s.Trace.start_ns >= 0);
  (* The stack unwound: a later span is a root, not a child of "boom". *)
  let (), t2 =
    Trace.collect (fun () ->
        (try Trace.with_span "boom" (fun () -> failwith "no")
         with Failure _ -> ());
        Trace.with_span "after" ignore)
  in
  let after = List.find (fun (s : Trace.span) -> s.Trace.name = "after") (Trace.spans t2) in
  Alcotest.(check bool) "after is a root" true (after.Trace.parent = None)

let test_disabled_is_noop () =
  Trace.uninstall ();
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  (* Must not raise, and must still run the thunk. *)
  let r = Trace.with_span "nope" (fun () -> 7) in
  Trace.event "nope";
  Alcotest.(check int) "thunk ran" 7 r

let test_limit_drops () =
  let (), t =
    Trace.collect ~limit:2 (fun () ->
        List.iter (fun _ -> Trace.event "e") [ 1; 2; 3; 4; 5 ])
  in
  Alcotest.(check int) "kept two" 2 (List.length (Trace.events t));
  Alcotest.(check int) "dropped three" 3 (Trace.dropped t)

let test_collect_restores () =
  let outer = Trace.create () in
  Trace.install outer;
  let (), _inner = Trace.collect (fun () -> Trace.event "inner-only") in
  Alcotest.(check bool) "outer back in place" true
    (match Trace.current () with Some t -> t == outer | None -> false);
  Trace.uninstall ();
  Alcotest.(check int) "outer untouched" 0 (List.length (Trace.events outer))

let test_add_attrs () =
  let (), t =
    Trace.collect (fun () ->
        Trace.with_span "s" (fun () -> Trace.add_attrs [ ("k", Trace.Int 3) ]))
  in
  let s = List.hd (Trace.spans t) in
  Alcotest.(check bool) "attr added" true
    (List.assoc_opt "k" s.Trace.attrs = Some (Trace.Int 3))

(* --- exporters --- *)

let test_chrome_roundtrip () =
  let (), t =
    Trace.collect (fun () ->
        Trace.with_span ~attrs:[ ("file", Trace.Str "a \"quoted\"\nname") ] "outer"
          (fun () -> Trace.with_span "inner" ignore);
        Trace.event ~attrs:[ ("n", Trace.Int 1) ] "tick")
  in
  let json = Obs.Export_chrome.render t in
  (* 2 complete spans + 1 instant + process_name + thread_name metadata
     (single tid here). *)
  (match Obs.Json.check_trace json with
   | Ok (total, complete) ->
     Alcotest.(check int) "records" 5 total;
     Alcotest.(check int) "complete spans" 2 complete
   | Error msg -> Alcotest.failf "invalid trace: %s" msg);
  (* The hierarchy survives the export: parent arg = outer's span arg. *)
  match Obs.Json.parse json |> Obs.Json.member "traceEvents" with
  | Some (Obs.Json.List records) ->
    let arg name r =
      match Obs.Json.member "args" r with
      | Some args -> Obs.Json.member name args
      | None -> None
    in
    let named n =
      List.find (fun r -> Obs.Json.member "name" r = Some (Obs.Json.Str n)) records
    in
    Alcotest.(check bool) "parent id recorded" true
      (arg "parent" (named "inner") = arg "span" (named "outer"))
  | _ -> Alcotest.fail "no traceEvents array"

let test_text_summary_stable () =
  let (), t =
    Trace.collect (fun () ->
        Trace.with_span "b" ignore;
        Trace.with_span "a" ignore;
        Trace.event "tick")
  in
  let s1 = Obs.Export_text.render t and s2 = Obs.Export_text.render t in
  Alcotest.(check string) "byte-stable" s1 s2;
  Alcotest.(check bool) "mentions spans" true (Helpers.contains s1 "pipeline/a");
  Alcotest.(check bool) "mentions events" true (Helpers.contains s1 "tick");
  (* Rows sort by (cat, name): a before b. *)
  let ia = String.index s1 'a' in
  ignore ia;
  let find sub =
    let rec go i =
      if i + String.length sub > String.length s1 then -1
      else if String.sub s1 i (String.length sub) = sub then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "sorted" true (find "pipeline/a" < find "pipeline/b")

let test_json_parser_rejects () =
  (match Obs.Json.parse_result "{\"a\": [1, 2,]}" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "trailing comma accepted");
  (match Obs.Json.check_trace "{\"notTraceEvents\": []}" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "missing traceEvents accepted");
  match Obs.Json.check_trace "{\"traceEvents\": [{\"ph\": \"X\"}]}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "record without name/ts accepted"

(* --- instrument quantile edges (Service.Metrics = Obs.Instrument) --- *)

let test_quantile_edges () =
  let m = Obs.Instrument.create () in
  let h = Obs.Instrument.histogram m "t" in
  Alcotest.(check bool) "empty" true (Obs.Instrument.quantile h 0.5 = None);
  List.iter (Obs.Instrument.observe h) [ 0.010; 0.020; 0.500 ];
  let q x = match Obs.Instrument.quantile h x with Some v -> v | None -> nan in
  Alcotest.(check (float 1e-9)) "q=0 is the exact min" 0.010 (q 0.0);
  Alcotest.(check (float 1e-9)) "q<0 clamps to min" 0.010 (q (-3.0));
  Alcotest.(check (float 1e-9)) "q=1 is the exact max" 0.500 (q 1.0);
  Alcotest.(check (float 1e-9)) "q>1 clamps to max" 0.500 (q 2.0);
  Alcotest.(check (float 1e-9)) "NaN is conservative (max)" 0.500 (q nan);
  (* In between: bucketed, but always within [min, max]. *)
  List.iter
    (fun x ->
      let v = q x in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f within range" x)
        true
        (v >= 0.010 && v <= 0.500))
    [ 0.01; 0.25; 0.5; 0.75; 0.99 ]

let test_quantile_single_sample () =
  let m = Obs.Instrument.create () in
  let h = Obs.Instrument.histogram m "one" in
  Obs.Instrument.observe h 0.123;
  List.iter
    (fun x ->
      match Obs.Instrument.quantile h x with
      | Some v -> Alcotest.(check (float 1e-9)) "the sample" 0.123 v
      | None -> Alcotest.fail "empty")
    [ 0.0; 0.5; 1.0 ]

let test_dump_stable () =
  let m = Obs.Instrument.create () in
  Obs.Instrument.incr (Obs.Instrument.counter m "reqs");
  Obs.Instrument.set_gauge (Obs.Instrument.gauge m "depth") 4;
  let h = Obs.Instrument.histogram m "lat" in
  List.iter (Obs.Instrument.observe h) [ 0.0001; 0.0002; 0.0004 ];
  let d1 = Obs.Instrument.dump m and d2 = Obs.Instrument.dump m in
  Alcotest.(check string) "byte-stable" d1 d2;
  (* Integer microseconds only: no decimal point in histogram times. *)
  List.iter
    (fun line ->
      if Helpers.contains line "lat" then
        Alcotest.(check bool)
          (Printf.sprintf "no fractional us in %S" line)
          false (String.contains line '.'))
    (String.split_on_char '\n' d1)

(* --- classification provenance exemplars, one per class --- *)

(* Run the full pipeline under a collector and return the provenance
   events. *)
let provenance src =
  let (), t = Trace.collect (fun () -> ignore (Helpers.analyze src)) in
  Service.Explain.provenance_events (Trace.events t)

let attr_str e key =
  Option.map Trace.attr_to_string (List.assoc_opt key e.Trace.ev_attrs)

(* The event for the SCR containing [var] must name a rule containing
   [expect] and classify [var] as [cls]. *)
let check_prov src var ~rule ~cls =
  let evs = List.filter (Service.Explain.mentions var) (provenance src) in
  match evs with
  | [] -> Alcotest.failf "no provenance event mentions %s" var
  | e :: _ ->
    let r = Option.value ~default:"" (attr_str e "rule") in
    if not (Helpers.contains r rule) then
      Alcotest.failf "rule for %s is %S (expected it to mention %S)" var r rule;
    Alcotest.(check (option string))
      (var ^ " class") (Some cls)
      (attr_str e ("class." ^ var))

let test_prov_basic () =
  check_prov "i = 0\nT: loop\n  i = i + 1\n  if i > 9 exit\nendloop\nA(i) = 1" "i2"
    ~rule:"basic IV family (sec 3.1)" ~cls:"(T, 0, 1)"

let test_prov_wraparound () =
  check_prov
    "k = 9\nj = 8\ni = 1\nL10: loop\n  A(k) = A(j) + A(i)\n  k = j\n  j = i\n  i = i + 1\nendloop"
    "j2" ~rule:"wrap-around of the carried class" ~cls:"wrap(L10, order 1, [8], (L10, 1, 1))"

let test_prov_flip_flop () =
  check_prov "x = 1\nT: loop\n  x = 5 - x\n  if ?? exit\nendloop\nA(x) = 1" "x2"
    ~rule:"flip-flop, periodic with period 2 (sec 4.2)"
    ~cls:"periodic(T, period 2, phase 0, [1; 4])"

let test_prov_periodic () =
  check_prov
    "j = 1\nk = 2\nl = 3\nL13: loop\n  t = j\n  j = k\n  k = l\n  l = t\n  A(j) = A(k)\nendloop"
    "j2" ~rule:"periodic family, period 3 (sec 4.2)"
    ~cls:"periodic(L13, period 3, phase 0, [1; 2; 3])"

let test_prov_polynomial () =
  check_prov "j = 1\nT: for i = 1 to n loop\n  j = j + i\nendloop\nA(j) = 1" "j3"
    ~rule:"polynomial degree 2 (sec 4.3)" ~cls:"(T, 2, 3/2, 1/2)"

let test_prov_geometric () =
  check_prov "l = 1\nT: for i = 1 to n loop\n  l = l * 2 + 1\nendloop\nA(l) = 1" "l3"
    ~rule:"geometric with ratio 2 (sec 4.3)" ~cls:"(T, -1 | 4*2^h)"

let test_prov_monotonic () =
  check_prov
    "k = 0\nL16: loop\n  if ?? then\n    k = k + 1\n  else\n    k = k + 2\n  endif\nendloop\nA(k) = 1"
    "k2" ~rule:"monotonic family (sec 4.4)" ~cls:"monotonic(L16, increasing, strict)"

(* --- tracing across domains (the pool records one tree per tid) --- *)

let test_multi_domain_spans () =
  let (), t =
    Trace.collect (fun () ->
        let d =
          Domain.spawn (fun () -> Trace.with_span "worker" (fun () -> 1))
        in
        Trace.with_span "main" ignore;
        ignore (Domain.join d))
  in
  let spans = Trace.spans t in
  Alcotest.(check int) "both spans" 2 (List.length spans);
  let worker = List.find (fun (s : Trace.span) -> s.Trace.name = "worker") spans in
  let main = List.find (fun (s : Trace.span) -> s.Trace.name = "main") spans in
  Alcotest.(check bool) "distinct tids" true (worker.Trace.tid <> main.Trace.tid);
  Alcotest.(check bool) "both roots" true
    (worker.Trace.parent = None && main.Trace.parent = None)

let suite =
  ( "obs-trace",
    [
      Helpers.case "span nesting" test_span_nesting;
      Helpers.case "span closes on raise" test_span_closes_on_raise;
      Helpers.case "disabled is a no-op" test_disabled_is_noop;
      Helpers.case "record limit drops" test_limit_drops;
      Helpers.case "collect restores ambient" test_collect_restores;
      Helpers.case "add_attrs" test_add_attrs;
      Helpers.case "chrome export re-parses" test_chrome_roundtrip;
      Helpers.case "text summary stable+sorted" test_text_summary_stable;
      Helpers.case "json parser rejects junk" test_json_parser_rejects;
      Helpers.case "quantile edges" test_quantile_edges;
      Helpers.case "quantile single sample" test_quantile_single_sample;
      Helpers.case "dump byte-stable integer-us" test_dump_stable;
      Helpers.case "provenance: basic" test_prov_basic;
      Helpers.case "provenance: wraparound" test_prov_wraparound;
      Helpers.case "provenance: flip-flop" test_prov_flip_flop;
      Helpers.case "provenance: periodic" test_prov_periodic;
      Helpers.case "provenance: polynomial" test_prov_polynomial;
      Helpers.case "provenance: geometric" test_prov_geometric;
      Helpers.case "provenance: monotonic" test_prov_monotonic;
      Helpers.case "multi-domain spans" test_multi_domain_spans;
    ] )
