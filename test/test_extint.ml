(* Extint edge cases: the saturating operations around the infinities
   and the min_int corner, which the exact Banerjee arithmetic never
   exercises but the range domain leans on. *)

module E = Analysis.Extint

let fin n = E.Fin n

let ext =
  Alcotest.testable
    (fun fmt x -> Format.pp_print_string fmt (E.to_string x))
    E.equal

let test_neg () =
  Alcotest.check ext "neg 5" (fin (-5)) (E.neg (fin 5));
  Alcotest.check ext "neg -inf" E.Pos_inf (E.neg E.Neg_inf);
  Alcotest.check ext "neg +inf" E.Neg_inf (E.neg E.Pos_inf);
  (* -min_int overflows natively; saturating negation goes to +inf. *)
  Alcotest.check ext "neg min_int" E.Pos_inf (E.neg (fin min_int));
  Alcotest.check ext "neg max_int" (fin (-max_int)) (E.neg (fin max_int))

let test_sat_add () =
  Alcotest.check ext "finite" (fin 7) (E.sat_add (fin 3) (fin 4));
  Alcotest.check ext "overflow up" E.Pos_inf (E.sat_add (fin max_int) (fin 1));
  Alcotest.check ext "overflow down" E.Neg_inf
    (E.sat_add (fin min_int) (fin (-1)));
  Alcotest.check ext "inf absorbs" E.Pos_inf (E.sat_add E.Pos_inf (fin (-5)));
  Alcotest.check ext "neg inf absorbs" E.Neg_inf
    (E.sat_add E.Neg_inf (fin max_int));
  Alcotest.check_raises "opposite infinities"
    (Invalid_argument "Extint.sat_add: opposite infinities") (fun () ->
      ignore (E.sat_add E.Pos_inf E.Neg_inf))

let test_mul () =
  Alcotest.check ext "finite" (fin 12) (E.mul (fin 3) (fin 4));
  (* Interval convention: zero annihilates even infinities. *)
  Alcotest.check ext "0 * +inf" E.zero (E.mul E.zero E.Pos_inf);
  Alcotest.check ext "-inf * 0" E.zero (E.mul E.Neg_inf E.zero);
  Alcotest.check ext "inf signs" E.Neg_inf (E.mul E.Pos_inf (fin (-2)));
  Alcotest.check ext "-inf * -inf" E.Pos_inf (E.mul E.Neg_inf E.Neg_inf);
  (* min_int * -1 = max_int + 1: saturates instead of wrapping. *)
  Alcotest.check ext "min_int * -1" E.Pos_inf (E.mul (fin min_int) (fin (-1)));
  Alcotest.check ext "-1 * min_int" E.Pos_inf (E.mul (fin (-1)) (fin min_int));
  Alcotest.check ext "finite overflow" E.Pos_inf
    (E.mul (fin max_int) (fin 2));
  Alcotest.check ext "finite overflow down" E.Neg_inf
    (E.mul (fin max_int) (fin (-2)))

let test_mul_scalar () =
  Alcotest.check ext "exact" (fin (-6)) (E.mul_scalar (-2) (fin 3));
  Alcotest.check ext "scalar 0 kills inf" E.zero (E.mul_scalar 0 E.Pos_inf);
  Alcotest.check ext "flips inf" E.Neg_inf (E.mul_scalar (-1) E.Pos_inf);
  Alcotest.check ext "min_int corner" E.Pos_inf
    (E.mul_scalar (-1) (fin min_int))

let test_div_scalar () =
  Alcotest.check ext "exact" (fin (-3)) (E.div_scalar (fin 7) (-2));
  Alcotest.check ext "inf / negative flips" E.Neg_inf
    (E.div_scalar E.Pos_inf (-3));
  Alcotest.check ext "min_int / -1" E.Pos_inf (E.div_scalar (fin min_int) (-1))

let test_int_opts () =
  Alcotest.(check (option int)) "add ok" (Some 3) (E.add_int_opt 1 2);
  Alcotest.(check (option int)) "add wraps" None (E.add_int_opt max_int 1);
  Alcotest.(check (option int)) "add wraps down" None
    (E.add_int_opt min_int (-1));
  Alcotest.(check (option int)) "mul ok" (Some (-8)) (E.mul_int_opt 2 (-4));
  Alcotest.(check (option int)) "mul wraps" None (E.mul_int_opt max_int 2);
  Alcotest.(check (option int)) "min_int * -1 wraps" None
    (E.mul_int_opt min_int (-1));
  Alcotest.(check (option int)) "min_int * 1 ok" (Some min_int)
    (E.mul_int_opt min_int 1)

let suite =
  ( "extint",
    [
      Helpers.case "saturating negation" test_neg;
      Helpers.case "saturating addition" test_sat_add;
      Helpers.case "saturating multiplication" test_mul;
      Helpers.case "scalar multiplication" test_mul_scalar;
      Helpers.case "scalar division" test_div_scalar;
      Helpers.case "overflow-checked native ops" test_int_opts;
    ] )
