(* Strength reduction driven by the classification. *)

module Driver = Analysis.Driver
module SR = Transform.Strength_reduction

let count_muls ssa =
  let n = ref 0 in
  Ir.Cfg.iter_instrs (Ir.Ssa.cfg ssa) (fun _ (i : Ir.Instr.t) ->
      match i.Ir.Instr.op with Ir.Instr.Binop Ir.Ops.Mul -> incr n | _ -> ());
  !n

(* Run a program's SSA directly (the reduced CFG is only available as a
   mutated Ssa.t). *)
let footprint_of_ssa ?(params = fun _ -> 0) ssa =
  let st = Ir.Interp.run ~fuel:500_000 ~params ssa in
  (match st.Ir.Interp.outcome with
   | Ir.Interp.Halted -> ()
   | Ir.Interp.Out_of_fuel -> Alcotest.fail "interpreter out of fuel");
  Hashtbl.fold
    (fun (a, idx) v acc -> (Ir.Ident.name a, idx, v) :: acc)
    st.Ir.Interp.arrays []
  |> List.sort compare

let reduce_and_compare ?(params = fun _ -> 0) src =
  let before = footprint_of_ssa ~params (Ir.Ssa.of_source src) in
  let ssa = Ir.Ssa.of_source src in
  let t = Driver.analyze ssa in
  let reductions = SR.reduce t in
  (* The rewritten CFG must still be valid SSA. *)
  (match Ir.Ssa.check ssa with
   | [] -> ()
   | errs ->
     Alcotest.failf "SSA broken after reduction: %s"
       (String.concat "; " (List.map Ir.Diag.to_string errs)));
  let after = footprint_of_ssa ~params ssa in
  Alcotest.(check bool) "semantics preserved" true (before = after);
  (reductions, ssa)

let test_basic_reduction () =
  let src = "L1: for i = 0 to 50 loop\n  A(i * 4) = i\nendloop" in
  let muls_before = count_muls (Ir.Ssa.of_source src) in
  let reductions, ssa = reduce_and_compare src in
  Alcotest.(check bool) "reduced something" true (List.length reductions >= 1);
  Alcotest.(check bool) "fewer multiplies in the loop" true
    (count_muls ssa < muls_before)

let test_addressing_expression () =
  (* The motivating case: array address arithmetic i*stride + base. *)
  let src = "L1: for i = 1 to 30 loop\n  A(i * 8 + 3) = A(i * 8 + 2) + 1\nendloop" in
  let reductions, _ = reduce_and_compare src in
  Alcotest.(check bool) "both multiplies reduced" true (List.length reductions >= 1)

let test_nested_reduction () =
  let src =
    "L1: for i = 0 to 10 loop\n  L2: for j = 0 to 10 loop\n    A(j * 11 + i) = i + j\n  endloop\nendloop"
  in
  let reductions, _ = reduce_and_compare src in
  Alcotest.(check bool) "reduced" true (List.length reductions >= 1)

let test_symbolic_base () =
  (* i*2 + n has a symbolic but loop-invariant base: still reducible. *)
  let src = "L1: for i = 0 to 20 loop\n  A(i * 2 + n) = i\nendloop" in
  let params x = if Ir.Ident.name x = "n" then 100 else 0 in
  let reductions, _ = reduce_and_compare ~params src in
  Alcotest.(check bool) "reduced with symbolic base" true (List.length reductions >= 1)

let test_invariant_multiply_untouched () =
  (* n * 4 is invariant: no induction variable to create. *)
  let src = "L1: for i = 0 to 9 loop\n  A(i) = n * 4\nendloop" in
  let reductions, _ = reduce_and_compare src in
  Alcotest.(check int) "nothing reduced" 0 (List.length reductions)

let test_conditional_multiply () =
  (* A multiply inside a conditional is classified linear only when its
     operands are; even so the phi-based rewrite stays correct. *)
  let src =
    "L1: for i = 0 to 20 loop\n  if ?? then\n    A(i * 3) = 1\n  endif\nendloop"
  in
  (* '??' makes footprints depend on the random stream; use a fixed one. *)
  let before =
    let state = Random.State.make [| 3 |] in
    let st =
      Ir.Interp.run ~rand:(fun () -> Random.State.bool state) (Ir.Ssa.of_source src)
    in
    Hashtbl.length st.Ir.Interp.arrays
  in
  let ssa = Ir.Ssa.of_source src in
  let t = Driver.analyze ssa in
  let _ = SR.reduce t in
  let after =
    let state = Random.State.make [| 3 |] in
    let st = Ir.Interp.run ~rand:(fun () -> Random.State.bool state) ssa in
    Hashtbl.length st.Ir.Interp.arrays
  in
  Alcotest.(check int) "same number of cells written" before after

let prop_reduction_preserves_random_programs =
  Helpers.qtest ~count:50 "strength reduction preserves semantics" Gen.gen_program
    (fun p ->
      let src = Ir.Ast.to_string p in
      let seed = Hashtbl.hash src in
      let footprint ssa =
        let state = Random.State.make [| seed |] in
        let st =
          Ir.Interp.run ~fuel:500_000 ~rand:(fun () -> Random.State.bool state) ssa
        in
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.Ir.Interp.arrays []
        |> List.sort compare
      in
      let before = footprint (Ir.Ssa.of_source src) in
      let ssa = Ir.Ssa.of_source src in
      let t = Driver.analyze ssa in
      let _ = SR.reduce t in
      match Ir.Ssa.check ssa with
      | [] -> footprint ssa = before
      | errs ->
        QCheck2.Test.fail_reportf "SSA broken: %s"
          (String.concat "; " (List.map Ir.Diag.to_string errs)))

let suite =
  ( "strength-reduction",
    [
      Helpers.case "basic reduction" test_basic_reduction;
      Helpers.case "addressing expressions" test_addressing_expression;
      Helpers.case "nested loops" test_nested_reduction;
      Helpers.case "symbolic base" test_symbolic_base;
      Helpers.case "invariant multiplies untouched" test_invariant_multiply_untouched;
      Helpers.case "conditional multiplies" test_conditional_multiply;
      prop_reduction_preserves_random_programs;
    ] )
