(* Checked mode: structural verifiers against injected faults (golden
   diagnostics), the corpus-clean property over examples/programs, the
   oracle's iteration depth, random-program structural soundness, the
   engine's verify-pass caching, and the CHECK serve verb. *)

module Diag = Ir.Diag
module Structural = Verify.Structural
module Inject = Verify.Inject
module Check = Verify.Check
module Oracle = Verify.Oracle
module Engine = Service.Engine
module Server = Service.Server

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Same resolution dance as test_pipeline: dune runtest runs in
   _build/default/test, a by-hand run in the repo root. *)
let corpus_dir =
  List.find Sys.file_exists
    [
      Filename.concat (Filename.concat ".." "examples") "programs";
      Filename.concat "examples" "programs";
    ]

let corpus () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".iv")
  |> List.sort compare
  |> List.map (fun f -> (f, read_file (Filename.concat corpus_dir f)))

let fig9 () = read_file (Filename.concat corpus_dir "fig9_triangular.iv")
let stress () = read_file (Filename.concat corpus_dir "oracle_stress.iv")

(* ---------- fault injection: goldens ---------- *)

(* One golden rendered line per fault kind, pinned against the fig9
   fixture. The exact ids matter: they prove the diagnostics point at
   the corrupted site, not merely that something failed. *)
let injection_goldens =
  [
    ( Inject.Phi_arity,
      "error[SSA001] ssa (instr %28): phi %28 in B1 has 1 args but 2 preds" );
    ( Inject.Dangling_def,
      "error[SSA005] ssa (instr %6): dangling operand %1010 in B1" );
    ( Inject.Bad_edge,
      "error[CFG001] ssa-cfg (edge 0->14): terminator of block 0 targets \
       missing block 14" );
    ( Inject.Nondom_use,
      "error[SSA004] ssa (instr %6): use of %9 in B1 not dominated by its def \
       in B3" );
  ]

let test_injected_faults () =
  let src = fig9 () in
  List.iter
    (fun (kind, golden) ->
      let name = Inject.to_string kind in
      let prog = Ir.Parser.parse src in
      let ssa = Ir.Ssa.of_program prog in
      (match Inject.apply kind ssa with
       | Ok _ -> ()
       | Error e -> Alcotest.failf "%s: injection not applicable: %s" name e);
      let diags = Structural.check_ir ssa in
      let code = Inject.expected_code kind in
      Alcotest.(check bool)
        (name ^ " reports " ^ code)
        true
        (List.exists (fun (d : Diag.t) -> d.Diag.code = code) diags);
      Alcotest.(check bool)
        (name ^ " golden line present")
        true
        (List.mem golden (List.map Diag.to_string diags));
      Alcotest.(check bool)
        (name ^ " is fatal")
        true
        (List.exists Diag.is_error diags))
    injection_goldens

let test_clean_fixture_has_no_findings () =
  let src = fig9 () in
  let prog = Ir.Parser.parse src in
  let lower = Ir.Lower.lower prog in
  let ssa = Ir.Ssa.of_program prog in
  Alcotest.(check (list string)) "no diagnostics" []
    (List.map Diag.to_string (Structural.check_ir ~lower ssa))

(* ---------- the corpus-clean property ---------- *)

let test_corpus_checks_clean () =
  (* The ranges part is allowed to be vacuous on programs whose every
     interval is top (e.g. uncountable mutual induction) — but it must
     check something somewhere across the corpus. *)
  let range_checks = ref 0 in
  List.iter
    (fun (name, src) ->
      match Check.run ~iters:40 src with
      | Error e -> Alcotest.failf "%s: %s" name e
      | Ok report ->
        Alcotest.(check int) (name ^ ": errors") 0 (Check.errors report);
        Alcotest.(check int) (name ^ ": warnings") 0 (Check.warnings report);
        Alcotest.(check int) (name ^ ": all four parts ran") 4
          (List.length report.Check.parts);
        Alcotest.(check bool) (name ^ ": not vacuous") true
          (Check.checks report > 0);
        List.iter
          (fun (p : Check.part) ->
            if p.Check.family = "ranges" then
              range_checks := !range_checks + p.Check.checks
            else if p.Check.family <> "structural" then
              Alcotest.(check bool)
                (name ^ ": " ^ p.Check.family ^ " checked something")
                true (p.Check.checks > 0))
          report.Check.parts)
    (corpus ());
  Alcotest.(check bool) "ranges checked something across the corpus" true
    (!range_checks > 0)

let test_oracle_depth () =
  (* The acceptance bar: closed forms hold for at least 64 iterations.
     oracle_stress.iv runs its outer loop 120 times, so the oracle must
     get at least that deep before fuel runs out. *)
  let t = Analysis.Driver.analyze_source (stress ()) in
  let r = Oracle.check ~fuel:200_000 t in
  Alcotest.(check (list string)) "no failures" []
    (List.map Diag.to_string r.Oracle.diags);
  Alcotest.(check bool) "reaches h >= 64" true (r.Oracle.max_h >= 64);
  Alcotest.(check bool) "several variables" true (r.Oracle.vars >= 4);
  Alcotest.(check bool) "fuel sufficed" false r.Oracle.out_of_fuel

let prop_random_programs_verify =
  Helpers.qtest ~count:100 "random programs verify structurally clean"
    Gen.gen_program (fun p ->
      let lower = Ir.Lower.lower p in
      let ssa = Ir.Ssa.of_program p in
      match
        List.filter
          (fun (d : Diag.t) -> d.Diag.severity <> Diag.Info)
          (Structural.check_ir ~lower ssa)
      with
      | [] -> true
      | d :: _ ->
        QCheck2.Test.fail_reportf "program:\n%s\nfinding: %s"
          (Ir.Ast.to_string p) (Diag.to_string d))

(* ---------- rendering ---------- *)

let test_json_rendering_parses () =
  match Check.run ~iters:10 (fig9 ()) with
  | Error e -> Alcotest.fail e
  | Ok report -> (
    let json = Check.to_json report in
    match Obs.Json.parse_result json with
    | Error e -> Alcotest.failf "JSON does not parse: %s\n%s" e json
    | Ok j ->
      Alcotest.(check bool) "has errors field" true
        (Obs.Json.member "errors" j <> None);
      Alcotest.(check bool) "has parts field" true
        (Obs.Json.member "parts" j <> None))

(* ---------- the engine: verify passes are cached ---------- *)

let bounded = "i = 0\nT: loop\n  i = i + 1\n  if i > 10 exit\nendloop\n"

let stat e pass =
  match
    List.find_opt (fun (p, _, _) -> p = pass) (Engine.pass_stats e)
  with
  | Some (_, hits, misses) -> (hits, misses)
  | None -> Alcotest.failf "pass %s not in pass_stats" pass

let test_engine_caches_verify_parts () =
  let e = Engine.create () in
  let r1 = Engine.check e bounded in
  let report =
    match r1 with Ok r -> r | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "clean" 0 (Check.errors report);
  let p = Engine.pipeline e bounded in
  List.iter
    (fun pass ->
      Alcotest.(check bool)
        (Analysis.Pipeline.name pass ^ " recorded on the pipeline")
        true
        (Analysis.Pipeline.forced p pass))
    [
      Analysis.Pipeline.VerifyIr;
      Analysis.Pipeline.VerifyClass;
      Analysis.Pipeline.VerifyTrans;
    ];
  List.iter
    (fun pass ->
      let hits, misses = stat e pass in
      Alcotest.(check int) (pass ^ " computed once") 1 misses;
      Alcotest.(check int) (pass ^ " no hits yet") 0 hits)
    [ "verify_ir"; "verify_class"; "verify_trans" ];
  let r2 = Engine.check e bounded in
  Alcotest.(check bool) "second reply identical" true (r1 = r2);
  List.iter
    (fun pass ->
      let hits, misses = stat e pass in
      Alcotest.(check int) (pass ^ " still computed once") 1 misses;
      Alcotest.(check int) (pass ^ " served from cache") 1 hits)
    [ "verify_ir"; "verify_class"; "verify_trans" ]

let test_broken_ir_skips_oracle () =
  (* Engine.check on a structurally broken program must not interpret
     it: the report carries only the structural part. Broken IR cannot
     come from the parser, so go through Check's parts directly. *)
  let prog = Ir.Parser.parse bounded in
  let ssa = Ir.Ssa.of_program prog in
  (match Inject.apply Inject.Bad_edge ssa with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  let part = Check.structural_part ssa in
  Alcotest.(check bool) "fault found" true
    (List.exists Diag.is_error part.Check.diags)

(* ---------- the serve verb ---------- *)

let with_temp_program src f =
  let path = Filename.temp_file "ivtool_verify" ".iv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc src;
      close_out oc;
      f path)

let test_check_verb () =
  with_temp_program bounded (fun path ->
      let e = Engine.create () in
      match Server.handle e ("CHECK " ^ path) with
      | Server.Ok_payload body ->
        Alcotest.(check bool) "structural section" true
          (Helpers.contains body "== structural ==");
        Alcotest.(check bool) "oracle section" true
          (Helpers.contains body "== oracle ==");
        Alcotest.(check bool) "transforms section" true
          (Helpers.contains body "== transforms ==");
        Alcotest.(check bool) "clean summary" true
          (Helpers.contains body "check: 0 errors, 0 warnings,")
      | Server.Err e -> Alcotest.fail e
      | Server.Bye -> Alcotest.fail "unexpected BYE")

let suite =
  ( "verify",
    [
      Helpers.case "injected faults produce golden diagnostics"
        test_injected_faults;
      Helpers.case "clean fixture has no findings"
        test_clean_fixture_has_no_findings;
      Helpers.case "examples corpus checks clean" test_corpus_checks_clean;
      Helpers.case "oracle reaches 64 iterations" test_oracle_depth;
      prop_random_programs_verify;
      Helpers.case "JSON rendering parses" test_json_rendering_parses;
      Helpers.case "engine caches verify parts" test_engine_caches_verify_parts;
      Helpers.case "broken IR is caught before interpretation"
        test_broken_ir_skips_oracle;
      Helpers.case "CHECK serve verb" test_check_verb;
    ] )
