(* The demand-driven pipeline: golden equivalence against the
   monolithic driver path over the whole examples corpus, lazy forcing
   (a trip request must not run promotion or dependence testing),
   per-pass cache accounting, digest stability, and the persistent
   worker pool. *)

module Pipeline = Analysis.Pipeline
module Driver = Analysis.Driver
module Engine = Service.Engine
module Pool = Service.Pool

(* Under `dune runtest` the cwd is _build/default/test; when the test
   binary is run by hand it is usually the repo root. *)
let corpus_dir =
  List.find Sys.file_exists
    [
      Filename.concat (Filename.concat ".." "examples") "programs";
      Filename.concat "examples" "programs";
    ]

let corpus () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".iv")
  |> List.sort compare
  |> List.map (fun f ->
         let path = Filename.concat corpus_dir f in
         let ic = open_in_bin path in
         let src =
           Fun.protect
             ~finally:(fun () -> close_in_noerr ic)
             (fun () -> really_input_string ic (in_channel_length ic))
         in
         (f, src))

(* The seed rendering of the trip report, reimplemented over the
   driver's public query surface so the staged path is checked against
   an independent renderer. *)
let seed_trip_report (d : Driver.t) =
  let ssa = Driver.ssa d in
  let loops = Ir.Ssa.loops ssa in
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  List.iter
    (fun (lp : Ir.Loops.loop) ->
      let trip = Driver.trip_count d lp.Ir.Loops.id in
      Format.fprintf fmt "loop %-8s trips: %a" lp.Ir.Loops.name
        (Analysis.Trip_count.pp_with (fun id -> Ir.Ssa.primary_name ssa id))
        trip;
      (match Analysis.Trip_count.max_count_int trip with
       | Some n when Analysis.Trip_count.count_int trip = None ->
         Format.fprintf fmt " (at most %d)" n
       | _ -> ());
      Format.fprintf fmt "@.")
    (Ir.Loops.postorder loops);
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let seed_deps_report (d : Driver.t) =
  (* The engine defaults to range-sharpened dependence testing; the
     monolithic reference must match. *)
  let g = Dependence.Dep_graph.build ~ranges:(Driver.ranges d) d in
  if g = [] then "no dependences\n" else Dependence.Dep_graph.to_string d g

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail ("unexpected error: " ^ msg)

(* Every artifact of every example program, staged vs monolithic,
   byte for byte. *)
let test_golden_equivalence () =
  let files = corpus () in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun (name, src) ->
      let engine = Engine.create () in
      let d = Driver.analyze_source src in
      Alcotest.(check string)
        (name ^ ": classify") (Driver.report d)
        (ok (Engine.classify engine src));
      Alcotest.(check string)
        (name ^ ": trip") (seed_trip_report d)
        (ok (Engine.trip engine src));
      Alcotest.(check string)
        (name ^ ": deps") (seed_deps_report d)
        (ok (Engine.deps engine src)))
    files

let fig9 =
  "j = 0\n\
   L19: for i = 1 to n loop\n\
   \  j = j + i\n\
   \  L20: for k = 1 to i loop\n\
   \    j = j + 1\n\
   \  endloop\n\
   endloop\n"

let forced_passes p =
  List.filter (Pipeline.forced p) Pipeline.all |> List.map Pipeline.name

let test_trip_is_lazy () =
  let engine = Engine.create () in
  ignore (ok (Engine.trip engine fig9));
  let p = Engine.pipeline engine fig9 in
  (* Classify runs through the unit layer, so [units]/[unit_classify]
     are forced with it, and — unit artifacts being promoted before they
     reach the cache — [promote] is satisfied as a by-product (though
     never requested: its counters below stay zero). *)
  Alcotest.(check (list string))
    "trip forces exactly its chain"
    [
      "parse"; "ssa"; "looptree"; "sccp"; "units"; "unit_classify"; "classify";
      "trip"; "promote";
    ]
    (forced_passes p);
  Alcotest.(check bool) "depgraph not forced" false
    (Pipeline.forced p Pipeline.Depgraph);
  (* The per-pass stats agree: nothing ever asked for promote or deps. *)
  List.iter
    (fun (pass, hits, misses) ->
      if pass = "promote" || pass = "depgraph" || pass = "lower" then begin
        Alcotest.(check int) (pass ^ " hits") 0 hits;
        Alcotest.(check int) (pass ^ " misses") 0 misses
      end)
    (Engine.pass_stats engine)

let test_per_pass_accounting () =
  let engine = Engine.create () in
  ignore (ok (Engine.classify engine fig9));
  ignore (ok (Engine.classify engine fig9));
  List.iter
    (fun (pass, hits, misses) ->
      match pass with
      | "parse" | "ssa" | "looptree" | "sccp" | "units" | "classify" ->
        Alcotest.(check int) (pass ^ " misses once") 1 misses;
        Alcotest.(check int) (pass ^ " hits once") 1 hits
      | "promote" ->
        (* Satisfied by the unit walk (artifacts are pre-promoted), so
           both requests find it already forced. *)
        Alcotest.(check int) "promote never ran" 0 misses;
        Alcotest.(check int) "promote hits twice" 2 hits
      | "unit_classify" ->
        (* fig9 is one nest unit: a cold miss, then the second request
           is a Classify-level hit and never probes the unit cache. *)
        Alcotest.(check int) "one unit computed" 1 misses;
        Alcotest.(check int) "no unit reuse yet" 0 hits
      | "lower" | "trip" | "depgraph" ->
        Alcotest.(check int) (pass ^ " untouched (misses)") 0 misses;
        Alcotest.(check int) (pass ^ " untouched (hits)") 0 hits
      | _ -> ())
    (Engine.pass_stats engine);
  (* A trip request on the warm engine reuses the classify prefix and
     runs only the trip rendering. *)
  ignore (ok (Engine.trip engine fig9));
  List.iter
    (fun (pass, hits, misses) ->
      match pass with
      | "classify" ->
        Alcotest.(check int) "classify served from pipeline" 2 hits;
        Alcotest.(check int) "classify still ran once" 1 misses
      | "trip" ->
        Alcotest.(check int) "trip ran once" 1 misses
      | _ -> ())
    (Engine.pass_stats engine)

let test_deps_invalidate_drops_both () =
  let engine = Engine.create () in
  ignore (ok (Engine.deps engine fig9));
  Alcotest.(check int) "pipeline + deps report + unit artifact" 3
    (Engine.cache_stats engine).Service.Cache.size;
  (* Invalidation is per-source: the pipeline entry and the derived
     deps report go, but the unit artifact for fig9's nest stays (it is
     keyed by the nest digest and shared across sources). *)
  Alcotest.(check int) "both dropped" 2 (Engine.invalidate engine fig9);
  Alcotest.(check int) "unit artifact survives" 1
    (Engine.cache_stats engine).Service.Cache.size

let test_digests_are_stable () =
  let a = Pipeline.create fig9 in
  let b = Pipeline.create fig9 in
  ignore (ok (Pipeline.report a));
  ignore (ok (Pipeline.report b));
  ignore (ok (Pipeline.trip_report a));
  ignore (ok (Pipeline.trip_report b));
  Alcotest.(check bool) "same source digest" true
    (Hash.Fnv.equal (Pipeline.source_digest a) (Pipeline.source_digest b));
  List.iter
    (fun pass ->
      match (Pipeline.digest a pass, Pipeline.digest b pass) with
      | Some da, Some db ->
        Alcotest.(check bool)
          ("digest " ^ Pipeline.name pass ^ " reproducible")
          true (Hash.Fnv.equal da db)
      | None, None -> ()
      | _ ->
        Alcotest.fail
          ("pass " ^ Pipeline.name pass ^ " forced on one instance only"))
    Pipeline.all

let test_pipeline_errors () =
  let p = Pipeline.create "x = = 1\n" in
  Alcotest.(check bool) "trip fails" true (Result.is_error (Pipeline.trip_report p));
  Alcotest.(check bool) "report fails the same way" true
    (Pipeline.report p = Pipeline.trip_report p);
  Alcotest.(check bool) "parse forced (error cached)" true
    (Pipeline.forced p Pipeline.Parse);
  Alcotest.(check (option string)) "no digest for a failed pass" None
    (Option.map Hash.Fnv.to_hex (Pipeline.digest p Pipeline.Parse));
  (* Depgraph can only be noted by the service layer. *)
  let good = Pipeline.create fig9 in
  Alcotest.(check bool) "depgraph cannot be forced here" true
    (Result.is_error (Pipeline.force good Pipeline.Depgraph))

let test_dag_shape () =
  (* Every input of a pass precedes it in the topological order. *)
  let index p = Option.get (List.find_index (fun q -> q = p) Pipeline.all) in
  List.iter
    (fun pass ->
      List.iter
        (fun input ->
          Alcotest.(check bool)
            (Pipeline.name input ^ " before " ^ Pipeline.name pass)
            true
            (index input < index pass))
        (Pipeline.inputs pass))
    Pipeline.all;
  List.iter
    (fun pass ->
      Alcotest.(check (option string)) ("name round-trips " ^ Pipeline.name pass)
        (Some (Pipeline.name pass))
        (Option.map Pipeline.name (Pipeline.of_name (Pipeline.name pass))))
    Pipeline.all

let test_persistent_pool () =
  let pool = Pool.create ~domains:2 () in
  Alcotest.(check int) "size" 2 (Pool.size pool);
  let tasks = Array.init 16 (fun i -> i) in
  (* Two jobs on the same resident workers; results in input order. *)
  let r1 = Pool.run pool (fun i -> i * i) tasks in
  let r2 = Pool.run pool (fun i -> i + 1) tasks in
  Array.iteri
    (fun i o ->
      match o with
      | Pool.Done v -> Alcotest.(check int) "square in order" (i * i) v
      | _ -> Alcotest.fail "task failed")
    r1;
  Array.iteri
    (fun i o ->
      match o with
      | Pool.Done v -> Alcotest.(check int) "succ in order" (i + 1) v
      | _ -> Alcotest.fail "task failed")
    r2;
  (* Failures stay isolated per task. *)
  let r3 =
    Pool.run pool (fun i -> if i = 3 then failwith "boom" else i) tasks
  in
  (match r3.(3) with
   | Pool.Failed msg ->
     Alcotest.(check bool) "failure captured" true
       (Helpers.contains msg "boom")
   | _ -> Alcotest.fail "expected failure");
  (match r3.(4) with
   | Pool.Done 4 -> ()
   | _ -> Alcotest.fail "neighbor unaffected");
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Pool.run: pool is shut down") (fun () ->
      ignore (Pool.run pool (fun i -> i) tasks))

let test_batch_over_pool_matches_spawning () =
  let items =
    List.map
      (fun (name, src) -> { Service.Batch.name; source = src })
      (corpus ())
  in
  let spawned =
    Service.Batch.run
      ~domains:2
      ~engine:(Engine.create ())
      ~artifacts:[ Engine.Classify; Engine.Trip ]
      items
  in
  let pool = Pool.create ~domains:2 () in
  let pooled =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        Service.Batch.run ~pool ~domains:2
          ~engine:(Engine.create ())
          ~artifacts:[ Engine.Classify; Engine.Trip ]
          items)
  in
  List.iter2
    (fun ((a : Service.Batch.item), ra) ((b : Service.Batch.item), rb) ->
      Alcotest.(check string) "same item order" a.Service.Batch.name
        b.Service.Batch.name;
      Alcotest.(check bool) ("same result for " ^ a.Service.Batch.name) true
        (ra = rb))
    spawned pooled

let suite =
  ( "pipeline",
    [
      Helpers.case "golden equivalence over examples/" test_golden_equivalence;
      Helpers.case "trip forces no pass beyond trip" test_trip_is_lazy;
      Helpers.case "per-pass hit/miss accounting" test_per_pass_accounting;
      Helpers.case "invalidate drops pipeline and deps" test_deps_invalidate_drops_both;
      Helpers.case "pass digests are reproducible" test_digests_are_stable;
      Helpers.case "errors cache and propagate" test_pipeline_errors;
      Helpers.case "pass DAG is topologically ordered" test_dag_shape;
      Helpers.case "persistent pool reuses workers" test_persistent_pool;
      Helpers.case "batch over a pool matches spawning" test_batch_over_pool_matches_spawning;
    ] )
