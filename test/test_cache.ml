(* Service cache: LRU behavior, statistics, invalidation, and the
   engine's content-addressed keying (same source, different options →
   different entries). *)

module Cache = Service.Cache
module Digest = Service.Digest
module Engine = Service.Engine

let test_hit_miss () =
  let c = Cache.create ~capacity:4 () in
  Alcotest.(check (option int)) "cold miss" None (Cache.find c "a");
  Cache.add c "a" 1;
  Alcotest.(check (option int)) "hit" (Some 1) (Cache.find c "a");
  let s = Cache.stats c in
  Alcotest.(check int) "one hit" 1 s.Cache.hits;
  Alcotest.(check int) "one miss" 1 s.Cache.misses;
  Alcotest.(check int) "one insertion" 1 s.Cache.insertions

let test_lru_eviction () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  (* Touch "a" so "b" is the LRU entry when "c" arrives. *)
  ignore (Cache.find c "a");
  Cache.add c "c" 3;
  Alcotest.(check (option int)) "a survives" (Some 1) (Cache.find c "a");
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option int)) "c present" (Some 3) (Cache.find c "c");
  Alcotest.(check int) "one eviction" 1 (Cache.stats c).Cache.evictions;
  Alcotest.(check int) "size stays bounded" 2 (Cache.size c)

let test_replace_same_key () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c "a" 1;
  Cache.add c "a" 7;
  Alcotest.(check (option int)) "replaced" (Some 7) (Cache.find c "a");
  Alcotest.(check int) "no eviction on replace" 0 (Cache.stats c).Cache.evictions

let test_invalidate_and_clear () =
  let c = Cache.create ~capacity:8 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Alcotest.(check bool) "invalidate present" true (Cache.invalidate c "a");
  Alcotest.(check bool) "invalidate absent" false (Cache.invalidate c "a");
  Alcotest.(check (option int)) "gone" None (Cache.find c "a");
  Cache.clear c;
  Alcotest.(check int) "cleared" 0 (Cache.size c);
  Alcotest.(check (option int)) "b gone too" None (Cache.find c "b")

let test_find_or_add () =
  let c = Cache.create ~capacity:8 () in
  let computed = ref 0 in
  let get () =
    Cache.find_or_add c "k" (fun () ->
        incr computed;
        42)
  in
  Alcotest.(check int) "computed" 42 (get ());
  Alcotest.(check int) "cached" 42 (get ());
  Alcotest.(check int) "computed once" 1 !computed

let test_digest_framing () =
  (* Length framing: re-splitting the same bytes must change the key. *)
  let a = Digest.of_strings [ "ab"; "c" ] in
  let b = Digest.of_strings [ "a"; "bc" ] in
  Alcotest.(check bool) "no concat collision" false (Digest.equal a b);
  Alcotest.(check bool) "deterministic" true
    (Digest.equal (Digest.of_strings [ "x"; "y" ]) (Digest.of_strings [ "x"; "y" ]))

let fig1 = "j = n\nL7: loop\n  i = j + c\n  j = i + k\nendloop\n"

let test_engine_memoizes () =
  let e = Engine.create () in
  let r1 = Engine.classify e fig1 in
  let r2 = Engine.classify e fig1 in
  Alcotest.(check bool) "both succeed" true (Result.is_ok r1 && Result.is_ok r2);
  Alcotest.(check bool) "identical" true (r1 = r2);
  let s = Engine.cache_stats e in
  (* First call misses the pipeline entry and probes the unit-artifact
     cache for fig1's single loop nest (a second miss); the second call
     is one pipeline hit and never reaches the unit layer. *)
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 2 s.Cache.misses

let test_same_source_different_options () =
  (* The options are part of the key: sccp on/off must not share
     entries, and each engine's first lookup is a miss. *)
  let on =
    Engine.create
      ~options:{ Engine.use_sccp = true; check_iters = 100; use_ranges = true }
      ()
  in
  let off =
    Engine.create
      ~options:{ Engine.use_sccp = false; check_iters = 100; use_ranges = true }
      ()
  in
  let src = "i = 0\nT: loop\n  i = i + 1\n  if i > 10 exit\nendloop\n" in
  Alcotest.(check bool) "sccp on ok" true (Result.is_ok (Engine.classify on src));
  Alcotest.(check bool) "sccp off ok" true (Result.is_ok (Engine.classify off src));
  Alcotest.(check int) "off engine missed" 0 (Engine.cache_stats off).Cache.hits;
  (* Directly: the per-request base digest differs even over identical
     text, so every derived per-pass key differs too. *)
  let k b = Digest.feed_bool (Digest.of_strings [ src ]) b in
  Alcotest.(check bool) "keys differ" false (Digest.equal (k true) (k false))

let test_engine_caches_errors () =
  let e = Engine.create () in
  let bad = "x = = 1\n" in
  let r1 = Engine.classify e bad in
  let r2 = Engine.classify e bad in
  Alcotest.(check bool) "error" true (Result.is_error r1);
  Alcotest.(check bool) "same error" true (r1 = r2);
  Alcotest.(check bool) "error served from cache" true
    ((Engine.cache_stats e).Cache.hits > 0)

let test_engine_invalidate () =
  let e = Engine.create () in
  ignore (Engine.classify e fig1);
  ignore (Engine.trip e fig1);
  let removed = Engine.invalidate e fig1 in
  (* One pipeline entry holds every forced pass; no deps report was
     requested, so exactly one entry goes. The unit artifact for fig1's
     loop nest survives: it is keyed by the nest's own digest, not the
     source, so any program containing that nest may still reuse it. *)
  Alcotest.(check int) "pipeline entry dropped" 1 removed;
  Alcotest.(check int) "unit artifact survives" 1 (Engine.cache_stats e).Cache.size

let suite =
  ( "service-cache",
    [
      Helpers.case "hit and miss counting" test_hit_miss;
      Helpers.case "lru eviction order" test_lru_eviction;
      Helpers.case "replace same key" test_replace_same_key;
      Helpers.case "invalidate and clear" test_invalidate_and_clear;
      Helpers.case "find_or_add computes once" test_find_or_add;
      Helpers.case "digest length framing" test_digest_framing;
      Helpers.case "engine memoizes reports" test_engine_memoizes;
      Helpers.case "options are part of the key" test_same_source_different_options;
      Helpers.case "parse errors are cached" test_engine_caches_errors;
      Helpers.case "per-source invalidation" test_engine_invalidate;
    ] )
