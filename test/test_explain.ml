(* `ivtool explain`: golden provenance reports for the paper's figure
   programs. Full-text equality — the report *is* the user-facing
   surface, so its wording and layout are pinned here. *)

let engine () = Service.Engine.create ()

(* The provenance goldens below pin the text before the [== ranges ==]
   section (the ranges surface has its own goldens at the bottom). *)
let before_ranges report =
  let marker = "== ranges ==" in
  let ml = String.length marker and rl = String.length report in
  let rec find i =
    if i + ml > rl then None
    else if String.sub report i ml = marker then Some i
    else find (i + 1)
  in
  match find 0 with Some i -> String.sub report 0 i | None -> report

let check_report name ?var src expected =
  match Service.Explain.run ?var (engine ()) src with
  | Ok report ->
    Alcotest.(check string) name expected (before_ranges report);
    Alcotest.(check bool) (name ^ ": has ranges section") true
      (Helpers.contains report "== ranges ==")
  | Error msg -> Alcotest.failf "%s: explain failed: %s" name msg

(* Figure 1: mutual j/i updates through one phi — the basic IV family. *)
let test_fig1 () =
  check_report "fig1"
    "j = n\nL7: loop\n  i = j + c\n  j = i + k\nendloop\n"
    "== loop L7 ==\n\
     scr {j2, j3, i1}  shape: single-phi-cycle\n\
    \  rule: cycle length 3 through a single phi, cumulative effect v' = v + d with d loop-invariant => basic IV family (sec 3.1)\n\
    \  j2       (L7, n, c + k)\n\
    \  j3       (L7, c + k + n, c + k)\n\
    \  i1       (L7, c + n, c + k)\n"

(* Figure 3: the same increment on both branches still classifies. *)
let test_fig3 () =
  check_report "fig3"
    "i = 1\nL8: loop\n  if ?? then\n    i = i + 2\n  else\n    i = i + 2\n  endif\nendloop\nA(i) = 1\n"
    "== loop L8 ==\n\
     scr {i2, i5, i4, i3}  shape: single-phi-cycle\n\
    \  rule: cycle length 4 through a single phi, cumulative effect v' = v + d with d loop-invariant => basic IV family (sec 3.1)\n\
    \  i2       (L8, 1, 2)\n\
    \  i5       (L8, 3, 2)\n\
    \  i4       (L8, 3, 2)\n\
    \  i3       (L8, 3, 2)\n\
     scr {%1}  shape: singleton\n\
    \  rule: random value: unknowable\n\
    \  %1       unknown\n"

(* Figure 4: wrap-around variables k and j trailing the basic IV i. *)
let test_fig4 () =
  check_report "fig4"
    "k = 9\nj = 8\ni = 1\nL10: loop\n  A(k) = A(j) + A(i)\n  k = j\n  j = i\n  i = i + 1\nendloop\n"
    "== loop L10 ==\n\
     scr {i2, i3}  shape: single-phi-cycle\n\
    \  rule: cycle length 2 through a single phi, cumulative effect v' = v + d with d loop-invariant => basic IV family (sec 3.1)\n\
    \  i2       (L10, 1, 1)\n\
    \  i3       (L10, 2, 1)\n\
     scr {j2}  shape: lone-header-phi\n\
    \  rule: header phi alone in its region, carried value classified => wrap-around of the carried class, delayed one iteration (sec 4.1)\n\
    \  j2       wrap(L10, order 1, [8], (L10, 1, 1))\n\
     scr {k2}  shape: lone-header-phi\n\
    \  rule: header phi alone in its region, carried value classified => wrap-around of the carried class, delayed one iteration (sec 4.1)\n\
    \  k2       wrap(L10, order 2, [9; 8], (L10, 1, 1))\n\
     scr {%5}  shape: singleton\n\
    \  rule: array load: value not tracked\n\
    \  %5       unknown\n\
     scr {%7}  shape: singleton\n\
    \  rule: array load: value not tracked\n\
    \  %7       unknown\n\
     scr {%8}  shape: singleton\n\
    \  rule: operator algebra on add of classified operands (sec 5.1)\n\
    \  %8       unknown\n\
     scr {%9}  shape: singleton\n\
    \  rule: store passes its value through\n\
    \  %9       unknown\n"

(* Figure 4 filtered to one variable: only j2's SCR is reported. *)
let test_fig4_var () =
  check_report "fig4 j2" ~var:"j2"
    "k = 9\nj = 8\ni = 1\nL10: loop\n  A(k) = A(j) + A(i)\n  k = j\n  j = i\n  i = i + 1\nendloop\n"
    "== loop L10 ==\n\
     scr {j2}  shape: lone-header-phi\n\
    \  rule: header phi alone in its region, carried value classified => wrap-around of the carried class, delayed one iteration (sec 4.1)\n\
    \  j2       wrap(L10, order 1, [8], (L10, 1, 1))\n"

(* Figure 5: a three-phi rotation — the periodic family. *)
let test_fig5 () =
  check_report "fig5"
    "j = 1\nk = 2\nl = 3\nL13: loop\n  t = j\n  j = k\n  k = l\n  l = t\n  A(j) = A(k)\nendloop\n"
    "== loop L13 ==\n\
     scr {l2, j2, k2}  shape: phi-cycle\n\
    \  rule: cycle of 3 loop-header phis, carried edges close a rotation with invariant entries => periodic family, period 3 (sec 4.2)\n\
    \  l2       periodic(L13, period 3, phase 2, [1; 2; 3])\n\
    \  j2       periodic(L13, period 3, phase 0, [1; 2; 3])\n\
    \  k2       periodic(L13, period 3, phase 1, [1; 2; 3])\n\
     scr {%13}  shape: singleton\n\
    \  rule: array load: value not tracked\n\
    \  %13      unknown\n\
     scr {%14}  shape: singleton\n\
    \  rule: store passes its value through\n\
    \  %14      unknown\n"

(* Figure 6: differently signed-consistent branches — monotonic. *)
let test_fig6 () =
  check_report "fig6"
    "k = 0\nL16: loop\n  if ?? then\n    k = k + 1\n  else\n    k = k + 2\n  endif\nendloop\nA(k) = 1\n"
    "== loop L16 ==\n\
     scr {k2, k5, k4, k3}  shape: single-phi-cycle\n\
    \  rule: not affine in the phi, but every back-edge path accumulates a consistently signed increment => monotonic family (sec 4.4)\n\
    \  k2       monotonic(L16, increasing, strict)\n\
    \  k5       monotonic(L16, increasing, strict)\n\
    \  k4       monotonic(L16, increasing, strict)\n\
    \  k3       monotonic(L16, increasing, strict)\n\
     scr {%1}  shape: singleton\n\
    \  rule: random value: unknowable\n\
    \  %1       unknown\n"

(* The kitchen-sink loop: polynomial, geometric and algebra rules all
   fire, each naming its closed form and paper section. *)
let test_polynomial_geometric () =
  check_report "poly-geo"
    "j = 1\nk = 1\nl = 1\nm = 0\nL14: for i = 1 to n loop\n  j = j + i\n  k = k + j + 1\n  l = l * 2 + 1\n  m = 3 * m + 2 * i + 1\nendloop\nA(j) = k + l + m\n"
    "== loop L14 ==\n\
     scr {i2, i3}  shape: single-phi-cycle\n\
    \  rule: cycle length 2 through a single phi, cumulative effect v' = v + d with d loop-invariant => basic IV family (sec 3.1)\n\
    \  i2       (L14, 1, 1)\n\
    \  i3       (L14, 2, 1)\n\
     scr {%26}  shape: singleton\n\
    \  rule: operator algebra on mul of classified operands (sec 5.1)\n\
    \  %26      (L14, 2, 2)\n\
     scr {m2, m3, %27, %24}  shape: single-phi-cycle\n\
    \  rule: cumulative effect v' = 3*v + p(h) => geometric with ratio 3 (sec 4.3)\n\
    \  m2       (L14, -2, -1 | 2*3^h)\n\
    \  m3       (L14, -3, -1 | 6*3^h)\n\
    \  %27      (L14, -4, -1 | 6*3^h)\n\
    \  %24      (L14, -6, -3 | 6*3^h)\n\
     scr {l2, l3, %20}  shape: single-phi-cycle\n\
    \  rule: cumulative effect v' = 2*v + p(h) => geometric with ratio 2 (sec 4.3)\n\
    \  l2       (L14, -1 | 2*2^h)\n\
    \  l3       (L14, -1 | 4*2^h)\n\
    \  %20      (L14, -2 | 4*2^h)\n\
     scr {j3, j2}  shape: single-phi-cycle\n\
    \  rule: cumulative effect v' = v + p(h) with deg p = 1, matrix inverted (rank 3) => polynomial degree 2 (sec 4.3)\n\
    \  j3       (L14, 2, 3/2, 1/2)\n\
    \  j2       (L14, 1, 1/2, 1/2)\n\
     scr {k2, k3, %16}  shape: single-phi-cycle\n\
    \  rule: cumulative effect v' = v + p(h) with deg p = 2, matrix inverted (rank 4) => polynomial degree 3 (sec 4.3)\n\
    \  k2       (L14, 1, 7/3, 1/2, 1/6)\n\
    \  k3       (L14, 4, 23/6, 1, 1/6)\n\
    \  %16      (L14, 3, 23/6, 1, 1/6)\n\
     scr {%9}  shape: singleton\n\
    \  rule: relational result is not an integer sequence\n\
    \  %9       unknown\n"

(* --- error paths --- *)

let test_unknown_var () =
  match
    Service.Explain.run ~var:"zz9" (engine ())
      "j = n\nL7: loop\n  i = j + c\n  j = i + k\nendloop\n"
  with
  | Ok r -> Alcotest.failf "expected an error, got report:\n%s" r
  | Error msg ->
    Alcotest.(check bool) "names the variable" true (Helpers.contains msg "zz9")

let test_parse_error () =
  match Service.Explain.run (engine ()) "loop loop loop" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error _ -> ()

(* Explain must bypass the engine cache: a warm engine still reports. *)
let test_warm_engine () =
  let e = engine () in
  let src = "j = n\nL7: loop\n  i = j + c\n  j = i + k\nendloop\n" in
  (match Service.Engine.classify e src with
   | Ok _ -> ()
   | Error msg -> Alcotest.failf "priming classify failed: %s" msg);
  match Service.Explain.run e src with
  | Ok report ->
    Alcotest.(check bool) "still reports after a cache hit" true
      (Helpers.contains report "basic IV family (sec 3.1)")
  | Error msg -> Alcotest.failf "explain on warm engine failed: %s" msg

(* --- the ranges section, text and JSON --- *)

let ranges_src =
  "array A(10)\nL1: for i = 1 to 10 loop\n  A(i) = i\nendloop\n"

(* Full-text golden including the ranges section and the bounds-check
   classification it licenses. *)
let test_ranges_section () =
  match Service.Explain.run (engine ()) ranges_src with
  | Error msg -> Alcotest.failf "explain failed: %s" msg
  | Ok report ->
    Alcotest.(check string) "ranges golden"
      "== loop L1 ==\n\
       scr {i2, i3}  shape: single-phi-cycle\n\
      \  rule: cycle length 2 through a single phi, cumulative effect v' = v + d with d loop-invariant => basic IV family (sec 3.1)\n\
      \  i2       (L1, 1, 1)\n\
      \  i3       (L1, 2, 1)\n\
       scr {%4}  shape: singleton\n\
      \  rule: relational result is not an integer sequence\n\
      \  %4       unknown\n\
       scr {%7}  shape: singleton\n\
      \  rule: store passes its value through\n\
      \  %7       (L1, 1, 1)\n\
       == ranges ==\n\
       ranges: fixpoint after 5 rounds\n\
      \  %4       [0, 1]\n\
      \  %7       [1, 11]  body [1, 10]\n\
      \  i3       [2, 12]  body [2, 11]\n\
      \  i2       [1, 11]  body [1, 10]\n\
      \  A store dim 0: [1, 10] within 1:10 -> eliminated\n\
       bounds checks: 1 eliminated, 0 retained\n"
      report

let test_ranges_json () =
  match Service.Explain.run ~json:true (engine ()) ranges_src with
  | Error msg -> Alcotest.failf "explain --json failed: %s" msg
  | Ok payload -> (
    match Obs.Json.parse_result payload with
    | Error e -> Alcotest.failf "payload is not JSON: %s" e
    | Ok j ->
      Alcotest.(check bool) "has scrs" true (Obs.Json.member "scrs" j <> None);
      Alcotest.(check bool) "has ranges" true
        (Obs.Json.member "ranges" j <> None);
      Alcotest.(check bool) "has bounds" true
        (Obs.Json.member "bounds" j <> None);
      Alcotest.(check bool) "counts one eliminated check" true
        (Helpers.contains payload "\"eliminated\":1"))

let suite =
  ( "explain",
    [
      Helpers.case "fig1 basic IVs" test_fig1;
      Helpers.case "fig3 branch join" test_fig3;
      Helpers.case "fig4 wrap-around" test_fig4;
      Helpers.case "fig4 filtered to j2" test_fig4_var;
      Helpers.case "fig5 periodic rotation" test_fig5;
      Helpers.case "fig6 monotonic" test_fig6;
      Helpers.case "polynomial and geometric" test_polynomial_geometric;
      Helpers.case "unknown variable is an error" test_unknown_var;
      Helpers.case "parse error propagates" test_parse_error;
      Helpers.case "warm engine cache is bypassed" test_warm_engine;
      Helpers.case "ranges section golden" test_ranges_section;
      Helpers.case "ranges JSON payload" test_ranges_json;
    ] )
