(* Quick manual smoke driver: dune exec test/smoke.exe *)

let show title src =
  Printf.printf "=== %s ===\n" title;
  let ssa = Ir.Ssa.of_source src in
  (match Ir.Ssa.check ssa with
   | [] -> ()
   | errs ->
     List.iter (fun d -> print_endline (Ir.Diag.to_string d)) errs;
     failwith "SSA check failed");
  let t = Analysis.Driver.analyze ssa in
  print_endline (Analysis.Driver.report t)

let () =
  show "Fig 1 (L7)" {|
j = n
L7: loop
  i = j + c
  j = i + k
endloop
|};
  show "Fig 3 (L8): conditional same-offset" {|
i = 1
L8: loop
  if ?? then
    i = i + 2
  else
    i = i + 2
  endif
endloop
|};
  show "Fig 4 (L10): wrap-around" {|
k = 9
j = 8
i = 1
L10: loop
  k = j
  j = i
  i = i + 1
endloop
|};
  show "Fig 5 (L13): periodic" {|
j = 1
k = 2
l = 3
L13: loop
  t = j
  j = k
  k = l
  l = t
  A(2 * j) = A(2 * k)
endloop
|};
  show "Fig 6 (L16): monotonic strict" {|
k = 0
L16: loop
  if ?? then
    k = k + 1
  else
    k = k + 2
  endif
endloop
|};
  show "L15: conditional monotonic" {|
k = 0
L15: for i = 1 to n loop
  if ?? then
    k = k + 1
    B(k) = A(i)
  endif
endloop
|};
  show "Fig 10: mixed monotonic" {|
k = 0
L15: for i = 1 to n loop
  F(k) = A(i)
  if ?? then
    C(k) = D(i)
    k = k + 1
    B(k) = A(i)
    E(i) = B(k)
  endif
  G(i) = F(k)
endloop
|};
  show "L14: polynomial and geometric" {|
j = 2
k = 4
l = 3
m = 0
L14: for i = 1 to n loop
  j = j + i
  k = k + j + 1
  l = l * 2 + 1
  m = 3 * m + 2 * i + 1
endloop
|};
  show "L12: flip-flop" {|
j = 1
jold = 2
L12: for iter = 1 to n loop
  j = 3 - j
  jold = 3 - jold
endloop
|};
  show "Fig 7/8 (L17/L18): nested" {|
k = 0
L17: loop
  i = 1
  L18: loop
    k = k + 2
    if i > 100 exit
    i = i + 1
  endloop
  k = k + 2
endloop
|};
  show "Fig 9 (L19/L20): triangular" {|
j = 0
L19: for i = 1 to n loop
  j = j + i
  L20: for k = 1 to i loop
    j = j + 1
  endloop
endloop
|};
  show "L2: mutual induction" {|
j = n
L2: loop
  i = j + c
  j = i + k
endloop
|};
  show "L21: dependence example" {|
i = 0
j = 3
L21: loop
  i = i + 1
  A(i) = A(j - i)
  j = j + 2
endloop
|}

let show_deps title src =
  Printf.printf "=== deps: %s ===\n" title;
  let t = Analysis.Driver.analyze_source src in
  let g = Dependence.Dep_graph.build ~include_input:false t in
  print_endline (Dependence.Dep_graph.to_string t g)

let () =
  show_deps "L22 periodic relaxation" {|
j = 1
k = 2
l = 3
L22: loop
  A(2 * j) = A(2 * k)
  temp = j
  j = k
  k = l
  l = temp
endloop
|};
  show_deps "L23/L24 unnormalized" {|
L23: for i = 1 to n loop
  L24: for j = i + 1 to n loop
    A(i, j) = A(i - 1, j)
  endloop
endloop
|};
  show_deps "Fig 10 monotonic deps" {|
k = 0
L15: for i = 1 to n loop
  F(k) = A(i)
  if ?? then
    C(k) = D(i)
    k = k + 1
    B(k) = A(i)
    E(i) = B(k)
  endif
  G(i) = F(k)
endloop
|};
  show_deps "simple distance" {|
L1: for i = 1 to 100 loop
  A(i) = A(i - 1) + 1
endloop
|};
  show_deps "independent strides" {|
L1: for i = 1 to 100 loop
  A(2 * i) = A(2 * i + 1)
endloop
|}
