(* The value-range analysis: fixpoint termination, oracle soundness on
   random programs, the two consumers (range-sharpened dependence
   testing and bounds-check elimination), and the array-declaration
   syntax they lean on. *)

module Driver = Analysis.Driver
module Range = Analysis.Range
module Interval = Analysis.Interval
module Extint = Analysis.Extint

let ranges_of src =
  let t = Driver.analyze_source src in
  (t, Driver.ranges t)

(* ---------- the paper-style demo: branch join + loop body ---------- *)

let demo_src =
  "array A(150)\n\
   t = 60\n\
   if ?? then\n\
  \  t = 70\n\
   endif\n\
   L1: for i = 1 to 50 loop\n\
  \  A(i) = A(i + t) + 1\n\
   endloop\n"

let interval_str t r name =
  match Ir.Ssa.def_of_name (Driver.ssa t) name with
  | None -> "<no such name>"
  | Some id -> Interval.to_string (Range.interval_of r id)

let test_demo_intervals () =
  let t, r = ranges_of demo_src in
  Alcotest.(check string) "t3 joins the branch constants" "[60, 70]"
    (interval_str t r "t3");
  Alcotest.(check string) "i2 spans the trip plus exit" "[1, 51]"
    (interval_str t r "i2")

(* The h-range refinement: inside the loop body (below the counted exit
   test) the index never carries its exit value. *)
let test_body_refinement () =
  let t, r = ranges_of demo_src in
  let ssa = Driver.ssa t in
  match Ir.Ssa.def_of_name ssa "i2" with
  | None -> Alcotest.fail "no i2"
  | Some id ->
    (* The store block: where A(i) = ... lives. *)
    let cfg = Ir.Ssa.cfg ssa in
    let store =
      List.find
        (fun label ->
          List.exists
            (fun (i : Ir.Instr.t) ->
              match i.Ir.Instr.op with Ir.Instr.Astore _ -> true | _ -> false)
            (Ir.Cfg.block cfg label).Ir.Cfg.instrs)
        (Ir.Cfg.labels cfg)
    in
    Alcotest.(check string) "body interval excludes the exit value"
      "[1, 50]"
      (Interval.to_string (Range.interval_at r ~block:store id))

(* ---------- range-sharpened dependence testing ---------- *)

let edges ?ranges src =
  let t = Driver.analyze_source src in
  let ranges = if ranges = Some true then Some (Driver.ranges t) else None in
  Dependence.Dep_graph.build ?ranges t

let test_deps_sharpened () =
  (* Distance t >= 60 exceeds the 49-iteration span: independent with
     ranges, conservatively dependent without. *)
  Alcotest.(check int) "baseline keeps the pair" 2
    (List.length (edges demo_src));
  Alcotest.(check int) "ranges prove independence" 0
    (List.length (edges ~ranges:true demo_src))

(* ---------- bounds-check elimination ---------- *)

let bounds_summary src =
  match Ir.Parser.parse_result src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok prog ->
    let t = Driver.analyze_source src in
    (prog, t, Transform.Bounds_elim.analyze (Driver.ranges t) (Driver.ssa t) prog)

let test_bounds_elim () =
  let _, _, s = bounds_summary demo_src in
  Alcotest.(check int) "both checks eliminated" 2
    s.Transform.Bounds_elim.eliminated;
  Alcotest.(check int) "none retained" 0 s.Transform.Bounds_elim.retained

let test_bounds_retained () =
  (* n is a free parameter: A(n + i) cannot be proven in bounds, and a
     tight extent catches the store interval poking past it. *)
  let _, _, s =
    bounds_summary
      "array A(10)\narray B(5)\nL1: for i = 1 to 10 loop\n  A(i) = 1\n  B(i) = 2\n  A(n + i) = 3\nendloop\n"
  in
  Alcotest.(check int) "A(i) alone is proven" 1
    s.Transform.Bounds_elim.eliminated;
  (* B(i) with i in [1,10] over extent 1:5, and the symbolic A(n+i). *)
  Alcotest.(check int) "two checks retained" 2
    s.Transform.Bounds_elim.retained

let test_bounds_undeclared_skipped () =
  let _, _, s =
    bounds_summary "L1: for i = 1 to 4 loop\n  C(i) = i\nendloop\n"
  in
  Alcotest.(check int) "nothing classified" 0
    (s.Transform.Bounds_elim.eliminated + s.Transform.Bounds_elim.retained);
  Alcotest.(check int) "the store was skipped" 1 s.Transform.Bounds_elim.skipped

(* instrument/optimize must agree on the observable footprint — the
   TRN003 differential — and optimize must emit fewer guards. *)
let test_instrument_optimize_agree () =
  let prog, t, s = bounds_summary demo_src in
  let full = Transform.Bounds_elim.instrument prog in
  let opt = Transform.Bounds_elim.optimize (Driver.ranges t) (Driver.ssa t) prog in
  Alcotest.(check bool) "same footprint" true
    (Helpers.array_footprint full = Helpers.array_footprint opt);
  let rec count_ifs stmts =
    List.fold_left
      (fun acc stmt ->
        acc
        +
        match stmt with
        | Ir.Ast.If (_, a, b) -> 1 + count_ifs a + count_ifs b
        | Ir.Ast.For f -> count_ifs f.Ir.Ast.body
        | Ir.Ast.Loop (_, b) -> count_ifs b
        | _ -> 0)
      0 stmts
  in
  Alcotest.(check bool) "optimize drops guards" true
    (count_ifs opt.Ir.Ast.stmts < count_ifs full.Ir.Ast.stmts);
  ignore s

(* ---------- array declaration syntax ---------- *)

let test_decl_parse_roundtrip () =
  let src = "array A(100)\narray B(-5:5, 0:9)\nA(1) = 1\n" in
  let p = Ir.Parser.parse src in
  (match p.Ir.Ast.decls with
   | [ a; b ] ->
     Alcotest.(check string) "A name" "A" (Ir.Ident.name a.Ir.Ast.array);
     Alcotest.(check (list (pair int int))) "A dims" [ (1, 100) ] a.Ir.Ast.dims;
     Alcotest.(check (list (pair int int))) "B dims"
       [ (-5, 5); (0, 9) ]
       b.Ir.Ast.dims
   | l -> Alcotest.failf "expected 2 decls, got %d" (List.length l));
  (* Parse-print-parse is stable. *)
  let printed = Ir.Ast.to_string p in
  Alcotest.(check string) "print-parse stable" printed
    (Ir.Ast.to_string (Ir.Parser.parse printed))

let test_decl_empty_extent_rejected () =
  match Ir.Parser.parse_result "array A(5:1)\n" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error _ -> ()

(* ---------- properties on random programs ---------- *)

(* Widening termination: the fixpoint must land within its stated
   bound on every generated program. *)
let prop_fixpoint_bounded =
  Helpers.qtest ~count:150 "range fixpoint is bounded" Gen.gen_program
    (fun p ->
      let src = Ir.Ast.to_string p in
      let t = Driver.analyze_source src in
      let r = Driver.ranges t in
      let cap =
        3 + Ir.Cfg.num_instrs (Ir.Ssa.cfg (Driver.ssa t)) + 8
      in
      if Range.iterations r > cap then
        QCheck2.Test.fail_reportf "program:\n%s\n%d rounds > cap %d" src
          (Range.iterations r) cap
      else true)

(* Soundness: interpret each random program and assert every concrete
   value lies inside its reported interval — zero violations. *)
let prop_ranges_sound =
  Helpers.qtest ~count:150 "random programs satisfy the range oracle"
    Gen.gen_program (fun p ->
      let src = Ir.Ast.to_string p in
      let t = Driver.analyze_source src in
      let r = Driver.ranges t in
      let state = Random.State.make [| Hashtbl.hash src |] in
      let result =
        Verify.Range_oracle.check ~fuel:200_000 ~max_diags:4
          ~rand:(fun () -> Random.State.bool state)
          t r
      in
      match result.Verify.Range_oracle.diags with
      | [] -> true
      | d :: _ ->
        QCheck2.Test.fail_reportf "program:\n%s\nrange oracle: %s" src
          (Ir.Diag.to_string d))

let suite =
  ( "range",
    [
      Helpers.case "branch join and trip intervals" test_demo_intervals;
      Helpers.case "body interval excludes exit value" test_body_refinement;
      Helpers.case "ranges sharpen dependence testing" test_deps_sharpened;
      Helpers.case "bounds checks eliminated" test_bounds_elim;
      Helpers.case "unprovable checks retained" test_bounds_retained;
      Helpers.case "undeclared arrays skipped" test_bounds_undeclared_skipped;
      Helpers.case "instrument and optimize agree" test_instrument_optimize_agree;
      Helpers.case "array declarations parse" test_decl_parse_roundtrip;
      Helpers.case "empty extent rejected" test_decl_empty_extent_rejected;
      prop_fixpoint_bounded;
      prop_ranges_sound;
    ] )
