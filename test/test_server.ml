(* Service server: the line protocol, request by request, against a
   real engine and real files on disk. *)

module Engine = Service.Engine
module Server = Service.Server

let with_temp_program src f =
  let path = Filename.temp_file "ivtool_test" ".iv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc src;
      close_out oc;
      f path)

let fig1 = "j = n\nL7: loop\n  i = j + c\n  j = i + k\nendloop\n"

let payload = function
  | Server.Ok_payload s -> s
  | Server.Err msg -> Alcotest.fail ("unexpected ERR: " ^ msg)
  | Server.Bye -> Alcotest.fail "unexpected BYE"

let expect_err = function
  | Server.Err msg -> msg
  | Server.Ok_payload s -> Alcotest.fail ("unexpected OK: " ^ s)
  | Server.Bye -> Alcotest.fail "unexpected BYE"

let test_classify_roundtrip () =
  with_temp_program fig1 (fun path ->
      let e = Engine.create () in
      let first = payload (Server.handle e ("CLASSIFY " ^ path)) in
      Alcotest.(check bool) "report mentions the loop" true
        (Helpers.contains first "loop L7");
      let again = payload (Server.handle e ("CLASSIFY " ^ path)) in
      Alcotest.(check string) "second reply identical" first again;
      Alcotest.(check bool) "served from cache" true
        ((Engine.cache_stats e).Service.Cache.hits > 0))

let test_stats_and_reset () =
  with_temp_program fig1 (fun path ->
      let e = Engine.create () in
      ignore (payload (Server.handle e ("TRIP " ^ path)));
      let stats = payload (Server.handle e "STATS") in
      Alcotest.(check bool) "stats name the cache" true
        (Helpers.contains stats "cache:");
      Alcotest.(check bool) "phase timings present" true
        (Helpers.contains stats "phase.parse");
      ignore (payload (Server.handle e "RESET"));
      Alcotest.(check int) "cache emptied" 0 (Engine.cache_stats e).Service.Cache.size)

let test_metrics_verb () =
  with_temp_program fig1 (fun path ->
      let e = Engine.create () in
      ignore (payload (Server.handle e ("CLASSIFY " ^ path)));
      let text = payload (Server.handle e "METRICS") in
      Alcotest.(check bool) "prometheus counters" true
        (Helpers.contains text "# TYPE iv_cache_misses_total counter");
      Alcotest.(check bool) "per-pass labels" true
        (Helpers.contains text "iv_pass_misses_total{pass=\"classify\"}");
      Alcotest.(check bool) "phase histograms" true
        (Helpers.contains text "iv_phase_parse_seconds_count");
      Alcotest.(check bool) "takes no argument" true
        (Helpers.contains
           (expect_err (Server.handle e "METRICS now"))
           "takes no argument"))

let test_errors_and_quit () =
  let e = Engine.create () in
  Alcotest.(check bool) "unknown command" true
    (Helpers.contains (expect_err (Server.handle e "FROB x")) "unknown command");
  Alcotest.(check bool) "missing argument" true
    (Helpers.contains (expect_err (Server.handle e "CLASSIFY")) "file argument");
  Alcotest.(check bool) "missing file" true
    (Result.is_ok
       (match Server.handle e "DEPS /nonexistent/program.iv" with
        | Server.Err _ -> Ok ()
        | _ -> Error ()));
  with_temp_program "x = = 1\n" (fun path ->
      Alcotest.(check bool) "parse diagnostic" true
        (Helpers.contains
           (expect_err (Server.handle e ("CLASSIFY " ^ path)))
           "parse error"));
  (match Server.handle e "QUIT" with
   | Server.Bye -> ()
   | _ -> Alcotest.fail "QUIT should reply BYE")

let test_reply_framing () =
  Alcotest.(check string) "ok frame" "OK 3\nab\n"
    (Server.reply_to_string (Server.Ok_payload "ab\n"));
  Alcotest.(check string) "err frame keeps one line" "ERR a b\n"
    (Server.reply_to_string (Server.Err "a\nb"));
  Alcotest.(check string) "bye frame" "BYE\n" (Server.reply_to_string Server.Bye)

let test_run_loop_over_channels () =
  with_temp_program fig1 (fun path ->
      let requests =
        Printf.sprintf "CLASSIFY %s\nSTATS\nQUIT\nCLASSIFY after-quit\n" path
      in
      let req_path = Filename.temp_file "ivtool_requests" ".txt" in
      let out_path = Filename.temp_file "ivtool_replies" ".txt" in
      Fun.protect
        ~finally:(fun () ->
          Sys.remove req_path;
          Sys.remove out_path)
        (fun () ->
          let oc = open_out_bin req_path in
          output_string oc requests;
          close_out oc;
          let ic = open_in_bin req_path in
          let oc = open_out_bin out_path in
          Server.run (Engine.create ()) ic oc;
          close_in ic;
          close_out oc;
          let ic = open_in_bin out_path in
          let replies = really_input_string ic (in_channel_length ic) in
          close_in ic;
          Alcotest.(check bool) "starts with OK" true (Helpers.contains replies "OK ");
          Alcotest.(check bool) "stats served" true (Helpers.contains replies "cache:");
          Alcotest.(check bool) "stops at QUIT" true
            (not (Helpers.contains replies "after-quit"));
          Alcotest.(check bool) "says BYE" true (Helpers.contains replies "BYE\n")))

let suite =
  ( "service-server",
    [
      Helpers.case "classify round-trip hits cache" test_classify_roundtrip;
      Helpers.case "stats and reset" test_stats_and_reset;
      Helpers.case "METRICS verb" test_metrics_verb;
      Helpers.case "error replies and quit" test_errors_and_quit;
      Helpers.case "reply framing" test_reply_framing;
      Helpers.case "run loop over channels" test_run_loop_over_channels;
    ] )
