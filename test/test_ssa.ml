(* SSA construction: phi placement, renaming, naming, pruning, and the
   well-formedness invariants on random programs. *)

let ssa_of src = Ir.Ssa.of_source src

let phis_in ssa label =
  List.filter
    (fun (i : Ir.Instr.t) -> i.Ir.Instr.op = Ir.Instr.Phi)
    (Ir.Cfg.block (Ir.Ssa.cfg ssa) label).Ir.Cfg.instrs

let test_fig1_names () =
  let ssa = ssa_of "j = n\nL7: loop\n  i = j + c\n  j = i + k\nendloop" in
  (* The names of the paper's Figure 1(b): j2 is the header phi, i2 and
     j3 the body definitions; j2's arguments are n (entry) and j3. *)
  (match Ir.Ssa.def_of_name ssa "j2" with
   | Some id ->
     let instr = Ir.Cfg.find_instr (Ir.Ssa.cfg ssa) id in
     Alcotest.(check bool) "j2 is a phi" true (instr.Ir.Instr.op = Ir.Instr.Phi);
     Alcotest.(check (option string)) "merges variable j" (Some "j")
       (Option.map Ir.Ident.name (Ir.Ssa.phi_var ssa id));
     let args = Array.to_list instr.Ir.Instr.args in
     Alcotest.(check bool) "one arg is the input n" true
       (List.exists
          (fun v ->
            match v with
            | Ir.Instr.Param x -> Ir.Ident.name x = "n"
            | _ -> false)
          args);
     Alcotest.(check bool) "one arg is j3" true
       (match Ir.Ssa.def_of_name ssa "j3" with
        | Some j3 ->
          List.exists
            (fun v -> match v with Ir.Instr.Def a -> a = j3 | _ -> false)
            args
        | None -> false)
   | None -> Alcotest.fail "no j2");
  Alcotest.(check bool) "i1 exists (i's phi is dead and pruned)" true
    (Ir.Ssa.def_of_name ssa "i1" <> None)

let test_if_join_phi () =
  let ssa = ssa_of "x = 0\nif a > 0 then x = 1 else x = 2 endif\ny = x + 1" in
  (* Exactly one phi, at the join, merging x. *)
  let all_phis =
    List.concat_map (fun l -> phis_in ssa l) (Ir.Cfg.labels (Ir.Ssa.cfg ssa))
  in
  Alcotest.(check int) "one phi" 1 (List.length all_phis);
  let phi = List.hd all_phis in
  Alcotest.(check int) "two args" 2 (Array.length phi.Ir.Instr.args);
  Alcotest.(check bool) "args are 1 and 2" true
    (match (phi.Ir.Instr.args.(0), phi.Ir.Instr.args.(1)) with
     | Ir.Instr.Const a, Ir.Instr.Const b -> (a = 1 && b = 2) || (a = 2 && b = 1)
     | _ -> false)

let test_no_phi_for_invariant () =
  (* A variable assigned only before the loop needs no phi. *)
  let ssa = ssa_of "x = 5\nL1: loop\n  y = x + 1\n  if y > 3 exit\nendloop" in
  let loops = Ir.Ssa.loops ssa in
  let header = (Ir.Loops.loop loops 0).Ir.Loops.header in
  let merged =
    List.filter_map (fun (i : Ir.Instr.t) -> Ir.Ssa.phi_var ssa i.Ir.Instr.id)
      (phis_in ssa header)
  in
  Alcotest.(check bool) "no phi for x" false
    (List.exists (fun v -> Ir.Ident.name v = "x") merged)

let test_dead_phi_pruned () =
  (* k, l, t are rotated by pure copies and never otherwise used: the
     whole cycle of phis is dead and must be pruned. *)
  let ssa =
    ssa_of "k = 1\nl = 2\nL1: loop\n  t = k\n  k = l\n  l = t\n  if ?? exit\nendloop"
  in
  let all_phis =
    List.concat_map (fun l -> phis_in ssa l) (Ir.Cfg.labels (Ir.Ssa.cfg ssa))
  in
  Alcotest.(check int) "no phis survive" 0 (List.length all_phis)

let test_load_store_gone () =
  let ssa = ssa_of "x = 1\nL1: loop\n  x = x + 1\n  if x > 9 exit\nendloop\nA(x) = x" in
  Ir.Cfg.iter_instrs (Ir.Ssa.cfg ssa) (fun _ (i : Ir.Instr.t) ->
      match i.Ir.Instr.op with
      | Ir.Instr.Load _ | Ir.Instr.Store _ -> Alcotest.fail "scalar load/store survived"
      | _ -> ())

let test_check_valid_corpus () =
  List.iter
    (fun src ->
      match Ir.Ssa.check (ssa_of src) with
      | [] -> ()
      | errs ->
        Alcotest.failf "invalid SSA for %S: %s" src
          (String.concat "; " (List.map Ir.Diag.to_string errs)))
    [
      "x = 1";
      "j = n\nL7: loop\n  i = j + c\n  j = i + k\nendloop";
      "k = 0\nL16: loop\n  if ?? then\n    k = k + 1\n  else\n    k = k + 2\n  endif\nendloop";
      "j = 0\nL19: for i = 1 to n loop\n  j = j + i\n  L20: for k = 1 to i loop\n    j = j + 1\n  endloop\nendloop";
      "t = 1\nj = 1\nk = 2\nl = 3\nL13: loop\n  t = j\n  j = k\n  k = l\n  l = t\n  A(j) = k\nendloop";
    ]

let test_fig2_ssa_graph () =
  (* The paper's Figure 2: the SSA graph of Fig 1's loop L7. Nodes are
     the loop's instructions; edges run from operations to operands, so
     the strongly connected region {j2, i, j3} is visible as the cycle
     j2 -> j3 -> i -> j2. *)
  let ssa = ssa_of "j = n\nL7: loop\n  i = j + c\n  j = i + k\nendloop" in
  let loops = Ir.Ssa.loops ssa in
  let lp = Option.get (Ir.Loops.find_by_name loops "L7") in
  let g = Analysis.Ssa_graph.build ssa lp in
  let nodes = Analysis.Ssa_graph.nodes g in
  Alcotest.(check int) "three vertices" 3 (List.length nodes);
  let id name = Option.get (Ir.Ssa.def_of_name ssa name) in
  let succs name = Analysis.Ssa_graph.successors g (id name) in
  Alcotest.(check (list int)) "j2 -> j3" [ id "j3" ] (succs "j2");
  Alcotest.(check (list int)) "i1 -> j2" [ id "j2" ] (succs "i1");
  Alcotest.(check (list int)) "j3 -> i1" [ id "i1" ] (succs "j3");
  let vertices, edges = Analysis.Ssa_graph.size g in
  Alcotest.(check (pair int int)) "size" (3, 3) (vertices, edges);
  (* The phi is recognized as the loop-header phi. *)
  let phi = Ir.Cfg.find_instr (Ir.Ssa.cfg ssa) (id "j2") in
  Alcotest.(check bool) "header phi" true (Analysis.Ssa_graph.is_header_phi g phi)

let prop_ssa_valid =
  Helpers.qtest ~count:100 "random programs convert to valid SSA" Gen.gen_program
    (fun p ->
      match Ir.Ssa.check (Ir.Ssa.of_program p) with
      | [] -> true
      | errs ->
        QCheck2.Test.fail_reportf "SSA errors: %s"
          (String.concat "; " (List.map Ir.Diag.to_string errs)))

let prop_phi_args_match_preds =
  Helpers.qtest ~count:60 "phi arity equals predecessor count" Gen.gen_program
    (fun p ->
      let ssa = Ir.Ssa.of_program p in
      let cfg = Ir.Ssa.cfg ssa in
      let preds = Ir.Cfg.pred_table cfg in
      let ok = ref true in
      Ir.Cfg.iter_instrs cfg (fun label (i : Ir.Instr.t) ->
          if i.Ir.Instr.op = Ir.Instr.Phi then
            if Array.length i.Ir.Instr.args <> List.length preds.(label) then ok := false);
      !ok)

let suite =
  ( "ssa",
    [
      Helpers.case "figure 1 names" test_fig1_names;
      Helpers.case "if-join phi" test_if_join_phi;
      Helpers.case "no phi for invariants" test_no_phi_for_invariant;
      Helpers.case "dead phis pruned" test_dead_phi_pruned;
      Helpers.case "loads and stores eliminated" test_load_store_gone;
      Helpers.case "corpus passes the checker" test_check_valid_corpus;
      Helpers.case "figure 2 SSA graph" test_fig2_ssa_graph;
      prop_ssa_valid;
      prop_phi_args_match_preds;
    ] )
