(* ivtool: command-line driver for the Beyond-Induction-Variables
   analyses.

   One-shot analyses (input is the paper's structured loop language;
   see README.md):

     ivtool parse     FILE   — parse and pretty-print the program
     ivtool cfg       FILE   — dump the lowered CFG
     ivtool ssa       FILE   — dump the SSA form
     ivtool classify  FILE   — per-loop variable classification report
     ivtool deps      FILE   — data dependence graph
     ivtool trip      FILE   — per-loop trip counts
     ivtool baseline  FILE   — classical (dragon book) IV detection
     ivtool sccp      FILE   — conditional constant propagation summary
     ivtool normalize FILE   — print the loop-normalized program
     ivtool run       FILE   — interpret (bounded) and dump array state

   Observability (lib/obs):

     ivtool explain FILE [VAR] — per-SCR classification provenance
     ivtool trace-check FILE   — validate a Chrome trace_event file
     ivtool metrics FILES...   — Prometheus text exposition of a run
     ivtool bench-diff OLD NEW — perf-trajectory gate over BENCH json
     classify/deps/trip/batch/check/gc take --trace OUT.json /
     --trace-summary; classify/batch/diff add --profile (per-pass
     wall/alloc/GC table + folded stacks on stderr) and --folded FILE;
     serve always collects and answers TRACE (and METRICS) verbs

   Service mode (lib/service: content-addressed cache + domain pool):

     ivtool batch FILES...   — analyze a corpus in parallel
     ivtool serve            — persistent line protocol on stdin/stdout
     ivtool passes FILE      — the pass DAG with forced/lazy status
     ivtool diff OLD NEW     — incremental re-analysis: which analysis
                               units (loop nests) were reused vs re-run
     ivtool gc --store DIR   — size/age retention over a persistent store

   batch/serve/passes/diff take --store DIR: a crash-safe on-disk
   artifact store layered under the memory cache and shared by any
   number of concurrent processes (docs/STORE.md).

   Exit codes: 0 success; 1 usage error (unknown subcommand, bad flags,
   missing input file); 2 parse or analysis error; 3 bench-diff
   regression. All diagnostics are routed through one reporter on
   stderr. *)

(* --- the one error reporter --- *)

exception Fatal of int * string

(* Parse/analysis failures exit 2; usage problems exit 1 (cmdliner's
   own CLI errors are remapped to 1 in [main] below). *)
let fatal code fmt = Printf.ksprintf (fun msg -> raise (Fatal (code, msg))) fmt

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | src -> src
  | exception Sys_error msg -> fatal 2 "%s" msg

let parse_or_fail src =
  match Ir.Parser.parse_result src with
  | Ok p -> p
  | Error msg -> fatal 2 "%s" msg

let with_source file f = f (parse_or_fail (read_file file))

(* Resolve --store/--no-store into a disk-store handle. A store that
   cannot be opened is a usage error, not a degraded run: silently
   dropping persistence would defeat the point of asking for it. *)
let store_of ~store_dir ~no_store =
  match store_dir with
  | Some dir when not no_store -> (
    match Store.Disk.open_store ~root:dir () with
    | Ok s -> Some s
    | Error msg -> fatal 1 "--store: %s" msg)
  | _ -> None

let engine_of ~no_sccp ?(check_iters = 100) ?(cache_size = 256)
    ?(use_ranges = true) ?store () =
  Service.Engine.create ~capacity:cache_size
    ~options:{ Service.Engine.use_sccp = not no_sccp; check_iters; use_ranges }
    ?store ()

let render_or_fail r = match r with Ok s -> print_string s | Error msg -> fatal 2 "%s" msg

(* Checked mode behind `--check`: diagnostics go to stderr (the primary
   artifact keeps stdout); any error-severity finding exits 2. *)
let run_check engine src =
  match Service.Engine.check engine src with
  | Error msg -> fatal 2 "%s" msg
  | Ok report ->
    List.iter
      (fun (p : Verify.Check.part) ->
        List.iter (fun d -> prerr_endline (Ir.Diag.to_string d)) p.Verify.Check.diags)
      report.Verify.Check.parts;
    let errs = Verify.Check.errors report in
    if errs > 0 then
      fatal 2 "check failed: %d errors, %d warnings" errs
        (Verify.Check.warnings report)

(* --- tracing plumbing (`--trace`, `--trace-summary`, `--profile`) ---

   [traced] runs [f] under a fresh ambient collector when any output
   was requested; the Chrome JSON lands in the given file, the text
   summary (with the engine's metrics appended when available) on
   stderr. [--profile] prints the per-pass wall/alloc/GC table (from
   the engine's Prof counters) plus flamegraph-ready folded stacks;
   [--folded FILE] writes just the folded stacks. Without any flag the
   collector stays uninstalled and the instrumentation costs one atomic
   load per site. *)

let traced ?instruments ?(profile = false) ?folded_file ~trace_file
    ~trace_summary f =
  if
    trace_file = None && not trace_summary && not profile && folded_file = None
  then f ()
  else begin
    let result, t = Obs.Trace.collect f in
    (match trace_file with
     | Some path -> Obs.Export_chrome.write_file path t
     | None -> ());
    if trace_summary then prerr_string (Obs.Export_text.render ?instruments t);
    (match folded_file with
     | Some path -> Obs.Export_folded.write_file path t
     | None -> ());
    if profile then begin
      (match instruments with
       | Some m -> prerr_string (Obs.Prof.phase_table m)
       | None -> ());
      let folded = Obs.Export_folded.render t in
      if folded <> "" then begin
        prerr_string "folded stacks (self-time us, flamegraph-ready):\n";
        prerr_string folded
      end
    end;
    result
  end

(* --- one-shot commands --- *)

let cmd_parse file =
  with_source file (fun p -> print_endline (Ir.Ast.to_string p))

let cmd_cfg file =
  with_source file (fun p -> print_endline (Ir.Cfg.to_string (Ir.Lower.lower p)))

let cmd_ssa file =
  with_source file (fun p ->
      let ssa = Ir.Ssa.of_program p in
      (match Ir.Ssa.check ssa with
       | [] -> ()
       | errs ->
         fatal 2 "%s" (String.concat "\n" (List.map Ir.Diag.to_string errs)));
      print_endline (Ir.Ssa.to_string ssa))

(* classify/deps/trip run through the service engine, so the CLI and
   `ivtool serve` render byte-identical reports from one code path. *)

let cmd_classify no_sccp check trace_file trace_summary profile folded file =
  let engine = engine_of ~no_sccp () in
  let src = read_file file in
  render_or_fail
    (traced ~instruments:(Service.Engine.metrics engine) ~profile
       ?folded_file:folded ~trace_file ~trace_summary
       (fun () -> Service.Engine.classify engine src));
  if check then run_check engine src

let cmd_deps no_ranges trace_file trace_summary file =
  let engine = engine_of ~no_sccp:false ~use_ranges:(not no_ranges) () in
  render_or_fail
    (traced ~instruments:(Service.Engine.metrics engine) ~trace_file ~trace_summary
       (fun () -> Service.Engine.deps engine (read_file file)))

(* --- range: the per-def interval table --- *)

let cmd_range no_sccp json file =
  let engine = engine_of ~no_sccp () in
  let src = read_file file in
  if json then begin
    match Analysis.Pipeline.ranges (Service.Engine.pipeline engine src) with
    | Ok r -> print_string (Analysis.Range.to_json r)
    | Error msg -> fatal 2 "%s" msg
  end
  else render_or_fail (Service.Engine.ranges engine src)

let cmd_trip trace_file trace_summary file =
  let engine = engine_of ~no_sccp:false () in
  render_or_fail
    (traced ~instruments:(Service.Engine.metrics engine) ~trace_file ~trace_summary
       (fun () -> Service.Engine.trip engine (read_file file)))

let cmd_baseline file =
  with_source file (fun p ->
      let cfg = Ir.Lower.lower p in
      List.iter
        (fun ((lp : Ir.Loops.loop), r) ->
          Format.printf "loop %s:@.%a@." lp.Ir.Loops.name Analysis.Baseline.pp r)
        (Analysis.Baseline.find_all cfg))

let cmd_sccp file =
  with_source file (fun p ->
      let ssa = Ir.Ssa.of_program p in
      let r = Analysis.Sccp.run ssa in
      let consts, total, dead = Analysis.Sccp.fold_stats r ssa in
      Printf.printf "constants: %d of %d instructions; dead blocks: %d\n" consts total
        dead)

let cmd_dot_cfg file =
  with_source file (fun p -> print_string (Ir.Dot.cfg_to_dot (Ir.Lower.lower p)))

let cmd_dot_ssa file =
  with_source file (fun p -> print_string (Ir.Dot.ssa_to_dot (Ir.Ssa.of_program p)))

let cmd_normalize file =
  with_source file (fun p ->
      print_endline (Ir.Ast.to_string (Transform.Normalize.normalize p)))

let cmd_peel loop_name file =
  with_source file (fun p ->
      print_endline (Ir.Ast.to_string (Transform.Peel.peel_named loop_name p)))

let cmd_parallel file =
  with_source file (fun p ->
      let t = Analysis.Driver.analyze (Ir.Ssa.of_program p) in
      print_string (Transform.Parallelize.report t))

let cmd_interchange outer inner file =
  with_source file (fun p ->
      let src = Ir.Ast.to_string p in
      match Transform.Interchange.legal_for_source src ~outer_name:outer ~inner_name:inner with
      | Some true ->
        print_endline "interchange: legal";
        print_endline (Ir.Ast.to_string (Transform.Interchange.apply p ~outer_name:outer))
      | Some false -> print_endline "interchange: illegal (blocking dependence)"
      | None -> fatal 2 "interchange: loops %s/%s not found" outer inner)

let cmd_optimize file =
  with_source file (fun p ->
      let ssa = Ir.Ssa.of_program p in
      let t = Analysis.Driver.analyze ssa in
      let hoisted = Transform.Licm.hoist t in
      let reduced = Transform.Strength_reduction.reduce t in
      let removed = Transform.Dce.run (Ir.Ssa.cfg ssa) in
      Printf.printf
        "licm: hoisted %d; strength reduction: %d multiplies; dce: removed %d\n"
        (List.length hoisted) (List.length reduced) removed;
      print_endline (Ir.Ssa.to_string ssa))

let cmd_run fuel seed file =
  with_source file (fun p ->
      let ssa = Ir.Ssa.of_program p in
      let state = Random.State.make [| seed |] in
      let st =
        Ir.Interp.run ~fuel ~rand:(fun () -> Random.State.bool state) ssa
      in
      (match st.Ir.Interp.outcome with
       | Ir.Interp.Halted -> Printf.printf "halted after %d steps\n" st.Ir.Interp.steps
       | Ir.Interp.Out_of_fuel -> Printf.printf "stopped: out of fuel (%d steps)\n" fuel);
      let cells =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.Ir.Interp.arrays []
        |> List.sort compare
      in
      List.iter
        (fun ((a, idx), v) ->
          Printf.printf "%s(%s) = %d\n" (Ir.Ident.name a)
            (String.concat ", " (List.map string_of_int idx))
            v)
        cells)

(* Seeded corpus generation (Corpus.Gen): the CLI face of the engine
   behind the B1 generated corpus and the property tests. *)
let cmd_gen seed count depth max_trip max_block prefix out =
  if count < 1 then fatal 1 "gen: --count must be at least 1";
  let knobs = { Corpus.Gen.depth; max_trip; max_block } in
  let items = Corpus.Gen.corpus ~knobs ~prefix ~seed ~count () in
  match out with
  | Some dir ->
    (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
     with Sys_error msg -> fatal 1 "gen: %s" msg);
    List.iter
      (fun (name, src) ->
        let oc = open_out (Filename.concat dir name) in
        output_string oc src;
        close_out oc)
      items;
    Printf.printf "generated %d programs (seed %d) in %s\n" count seed dir
  | None ->
    List.iter
      (fun (name, src) ->
        if count > 1 then Printf.printf "-- %s --\n" name;
        print_string src)
      items

(* --- checked mode: the whole-pipeline verifier (lib/verify) --- *)

let cmd_check no_sccp no_ranges json iters werror dump_cfg inject trace_file
    trace_summary file =
  let src = read_file file in
  match inject with
  | Some kind_name -> (
    (* Fault injection: corrupt a fresh SSA conversion, run only the
       structural verifiers, and fail with the provoked code — the CI
       smoke test that the verifier actually verifies. *)
    let kind =
      match Verify.Inject.of_string kind_name with
      | Some k -> k
      | None ->
        fatal 1 "unknown fault %S (expected one of: %s)" kind_name
          (String.concat ", " (List.map fst Verify.Inject.kinds))
    in
    let ssa = Ir.Ssa.of_program (parse_or_fail src) in
    match Verify.Inject.apply kind ssa with
    | Error msg -> fatal 2 "cannot inject %s: %s" kind_name msg
    | Ok desc ->
      Printf.eprintf "injected fault (%s): %s\n%!" kind_name desc;
      let diags = Verify.Structural.check_ir ssa in
      List.iter (fun d -> print_endline (Ir.Diag.to_string d)) diags;
      let expected = Verify.Inject.expected_code kind in
      if
        List.exists (fun (d : Ir.Diag.t) -> d.Ir.Diag.code = expected) diags
      then fatal 2 "verification failed as expected (%s)" expected
      else fatal 125 "fault injected but %s was not reported" expected)
  | None ->
    let engine = engine_of ~no_sccp ~check_iters:iters ~use_ranges:(not no_ranges) () in
    if dump_cfg then begin
      match Analysis.Pipeline.lower (Service.Engine.pipeline engine src) with
      | Ok cfg -> print_endline (Ir.Cfg.to_string cfg)
      | Error msg -> fatal 2 "%s" msg
    end;
    (match
       traced ~instruments:(Service.Engine.metrics engine) ~trace_file
         ~trace_summary
         (fun () -> Service.Engine.check engine src)
     with
     | Error msg -> fatal 2 "%s" msg
     | Ok report ->
       print_string
         (if json then Verify.Check.to_json report
          else Verify.Check.to_text report);
       let errs = Verify.Check.errors report in
       let warns = Verify.Check.warnings report in
       if errs > 0 || (werror && warns > 0) then
         fatal 2 "check failed: %d errors, %d warnings%s" errs warns
           (if werror && errs = 0 then " (warnings-as-errors)" else ""))

(* --- service commands --- *)

let parse_artifacts spec =
  let names =
    if spec = "all" then [ "classify"; "deps"; "trip"; "ranges"; "check" ]
    else String.split_on_char ',' spec |> List.map String.trim
         |> List.filter (fun s -> s <> "")
  in
  if names = [] then fatal 1 "no artifacts requested";
  List.map
    (fun name ->
      match Service.Engine.artifact_of_string name with
      | Some a -> a
      | None ->
        fatal 1
          "unknown artifact %S (expected classify, deps, trip, ranges, check or all)"
          name)
    names

let cmd_batch jobs repeat artifacts timeout cache_size no_sccp check stats
    store_dir no_store trace_file trace_summary profile folded files =
  let artifacts = parse_artifacts artifacts in
  let engine =
    engine_of ~no_sccp ~cache_size ?store:(store_of ~store_dir ~no_store) ()
  in
  let items =
    List.map (fun f -> { Service.Batch.name = f; source = read_file f }) files
  in
  let results =
    traced ~instruments:(Service.Engine.metrics engine) ~profile
      ?folded_file:folded ~trace_file ~trace_summary
      (fun () ->
        (* One resident pool across every --repeat pass: the workers are
           spawned once, not once per pass. *)
        if jobs > 1 then begin
          let pool =
            Service.Pool.create ~domains:jobs
              ~metrics:(Service.Engine.metrics engine) ()
          in
          Fun.protect
            ~finally:(fun () -> Service.Pool.shutdown pool)
            (fun () ->
              Service.Batch.run ?timeout_s:timeout ~passes:repeat ~pool
                ~domains:jobs ~engine ~artifacts items)
        end
        else
          Service.Batch.run ?timeout_s:timeout ~passes:repeat ~domains:jobs
            ~engine ~artifacts items)
  in
  let failures = ref 0 in
  List.iter
    (fun ((item : Service.Batch.item), result) ->
      Printf.printf "== %s ==\n" item.Service.Batch.name;
      match result with
      | Ok report -> print_string report
      | Error msg ->
        incr failures;
        Printf.printf "error: %s\n" msg)
    results;
  if check then begin
    let check_failures = ref 0 in
    List.iter
      (fun (item : Service.Batch.item) ->
        match Service.Engine.check engine item.Service.Batch.source with
        | Error msg ->
          incr check_failures;
          Printf.eprintf "check %s: error: %s\n" item.Service.Batch.name msg
        | Ok report ->
          List.iter
            (fun (p : Verify.Check.part) ->
              List.iter
                (fun d ->
                  Printf.eprintf "check %s: %s\n" item.Service.Batch.name
                    (Ir.Diag.to_string d))
                p.Verify.Check.diags)
            report.Verify.Check.parts;
          if Verify.Check.errors report > 0 then incr check_failures)
      items;
    if !check_failures > 0 then begin
      if stats then prerr_string (Service.Engine.stats_report engine);
      fatal 2 "checked mode: %d of %d files failed" !check_failures
        (List.length items)
    end
  end;
  if stats then prerr_string (Service.Engine.stats_report engine);
  if !failures > 0 then
    fatal 2 "%d of %d files failed" !failures (List.length results)

let cmd_serve jobs cache_size no_sccp store_dir no_store =
  let engine =
    engine_of ~no_sccp ~cache_size ?store:(store_of ~store_dir ~no_store) ()
  in
  (* Serve mode always collects: the TRACE verb drains this collector,
     and its record limit bounds memory between drains. *)
  Obs.Trace.install (Obs.Trace.create ());
  if jobs > 1 then begin
    let pool =
      Service.Pool.create ~domains:jobs
        ~metrics:(Service.Engine.metrics engine) ()
    in
    Fun.protect
      ~finally:(fun () -> Service.Pool.shutdown pool)
      (fun () -> Service.Server.run ~pool engine stdin stdout)
  end
  else Service.Server.run engine stdin stdout

(* --- diff: incremental re-analysis of an edited program --- *)

let cmd_diff jobs no_sccp emit trace_file trace_summary profile folded stats
    store_dir no_store old_file new_file =
  let engine = engine_of ~no_sccp ?store:(store_of ~store_dir ~no_store) () in
  let old_src = read_file old_file in
  let new_src = read_file new_file in
  let with_pool f =
    if jobs > 1 then begin
      let pool =
        Service.Pool.create ~domains:jobs
          ~metrics:(Service.Engine.metrics engine) ()
      in
      Fun.protect
        ~finally:(fun () -> Service.Pool.shutdown pool)
        (fun () -> f (Some pool))
    end
    else f None
  in
  with_pool @@ fun pool ->
  render_or_fail
    (traced ~instruments:(Service.Engine.metrics engine) ~profile
       ?folded_file:folded ~trace_file ~trace_summary
       (fun () -> Service.Engine.diff ?pool engine old_src new_src));
  (match emit with
   | None -> ()
   | Some path ->
     (* The incrementally merged reports of NEW, concatenated — CI
        byte-compares this file against a cold whole-program run. *)
     let oc = open_out_bin path in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         List.iter
           (fun a ->
             match Service.Engine.render ?pool engine a new_src with
             | Ok text -> output_string oc text
             | Error msg -> fatal 2 "%s" msg)
           [ Service.Engine.Classify; Service.Engine.Trip; Service.Engine.Deps ]));
  if stats then prerr_string (Service.Engine.stats_report engine)

(* --- passes: the pass DAG with forced/lazy status --- *)

let cmd_passes no_sccp force store_dir no_store file =
  let engine = engine_of ~no_sccp ?store:(store_of ~store_dir ~no_store) () in
  let src = read_file file in
  List.iter
    (fun a ->
      match Service.Engine.render engine a src with
      | Ok _ -> ()
      | Error msg -> fatal 2 "%s" msg)
    (match force with None -> [] | Some spec -> parse_artifacts spec);
  print_string (Service.Engine.passes_report engine src)

(* --- gc: size/age policy over a persistent artifact store --- *)

let cmd_gc store_dir max_age max_mb dry_run trace_file trace_summary =
  let store =
    match Store.Disk.open_store ~root:store_dir () with
    | Ok s -> s
    | Error msg -> fatal 1 "--store: %s" msg
  in
  let report =
    traced ~trace_file ~trace_summary (fun () ->
        Obs.Trace.with_span ~cat:"store" "store.gc" (fun () ->
            let r =
              Store.Disk.gc ~dry_run ?max_age_s:max_age
                ?max_bytes:(Option.map (fun mb -> mb * 1024 * 1024) max_mb)
                store ()
            in
            Obs.Trace.add_attrs
              [ ("scanned", Obs.Trace.Int r.Store.Disk.scanned);
                ("deleted", Obs.Trace.Int r.Store.Disk.deleted) ];
            r))
  in
  Printf.printf "%s%s\n"
    (if dry_run then "dry run: " else "")
    (Store.Disk.gc_report_to_string report)

(* --- explain: classification provenance --- *)

let cmd_explain no_sccp json var file =
  let engine = engine_of ~no_sccp () in
  render_or_fail (Service.Explain.run ?var ~json engine (read_file file))

(* --- metrics: Prometheus text exposition of a run --- *)

(* Run the requested artifacts over the files (warming the engine and
   pool telemetry), then print the whole Prometheus exposition —
   engine tiers, pass counters, phase wall/GC, per-domain pool
   telemetry — to stdout. With no files, expose the (empty) registry
   plus the process GC snapshot: a quick way to see the metric
   families. *)
let cmd_metrics jobs artifacts no_sccp store_dir no_store files =
  let artifacts = parse_artifacts artifacts in
  let engine = engine_of ~no_sccp ?store:(store_of ~store_dir ~no_store) () in
  let items =
    List.map (fun f -> { Service.Batch.name = f; source = read_file f }) files
  in
  let results =
    if items = [] then []
    else if jobs > 1 then begin
      let pool =
        Service.Pool.create ~domains:jobs
          ~metrics:(Service.Engine.metrics engine) ()
      in
      Fun.protect
        ~finally:(fun () -> Service.Pool.shutdown pool)
        (fun () ->
          Service.Batch.run ~pool ~domains:jobs ~engine ~artifacts items)
    end
    else Service.Batch.run ~domains:jobs ~engine ~artifacts items
  in
  let failures = ref 0 in
  List.iter
    (fun ((item : Service.Batch.item), result) ->
      match result with
      | Ok _ -> ()
      | Error msg ->
        incr failures;
        Printf.eprintf "metrics: %s: %s\n" item.Service.Batch.name msg)
    results;
  print_string (Service.Engine.prometheus_report engine);
  if !failures > 0 then
    fatal 2 "%d of %d files failed" !failures (List.length results)

(* --- bench-diff: the perf-trajectory gate --- *)

let cmd_bench_diff threshold old_file new_file =
  match
    Service.Bench_diff.compare ~threshold_pct:threshold
      ~old_json:(read_file old_file) ~new_json:(read_file new_file)
  with
  | Error msg -> fatal 2 "bench-diff: %s" msg
  | Ok report ->
    print_string (Service.Bench_diff.to_string report);
    if report.Service.Bench_diff.regressions > 0 then
      fatal 3 "bench-diff: %d regression(s) beyond %g%%"
        report.Service.Bench_diff.regressions threshold

(* --- trace-check: validate a Chrome trace_event file --- *)

let cmd_trace_check file =
  match Obs.Json.check_trace (read_file file) with
  | Ok (total, complete) ->
    Printf.printf "ok: %d records, %d complete spans\n" total complete
  | Error msg -> fatal 2 "invalid trace %s: %s" file msg

(* --- command line --- *)

open Cmdliner

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Input program.")

let simple name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ file_arg)

let no_sccp_flag =
  Arg.(value & flag & info [ "no-sccp" ] ~doc:"Disable constant propagation.")

let no_ranges_flag =
  Arg.(value & flag
       & info [ "no-ranges" ]
           ~doc:"Disable value-range sharpening (dependence tests fall back to \
                 the classification-only paths; checked mode skips the range \
                 oracle). The B4 baseline.")

let trace_flag =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"OUT.json"
           ~doc:"Write a Chrome trace_event JSON of the run (chrome://tracing, Perfetto).")

let trace_summary_flag =
  Arg.(value & flag
       & info [ "trace-summary" ]
           ~doc:"Print a sorted per-span timing summary to stderr.")

let profile_flag =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Print a per-pass wall/allocation/GC table and folded stacks \
                 (flamegraph collapsed format, self-time) to stderr.")

let folded_flag =
  Arg.(value & opt (some string) None
       & info [ "folded" ] ~docv:"OUT.folded"
           ~doc:"Write folded stacks (flamegraph.pl / speedscope input) \
                 derived from the span tree to $(docv).")

let cache_size_flag =
  Arg.(value & opt int 1024 & info [ "cache-size" ] ~doc:"Artifact cache capacity (entries).")

let store_flag =
  Arg.(value & opt (some string) None
       & info [ "store" ] ~docv:"DIR"
           ~doc:"Persistent artifact store directory (created if missing): \
                 rendered reports are served from and published to it, so \
                 restarts and sibling processes sharing $(docv) start warm.")

let no_store_flag =
  Arg.(value & flag
       & info [ "no-store" ]
           ~doc:"Ignore --store: run with the in-memory cache only.")

let check_flag =
  Arg.(value & flag
       & info [ "check" ]
           ~doc:"Run checked mode after the artifact: structural verifiers, the \
                 classification oracle and the transform validators; any \
                 error-severity finding exits 2 (diagnostics on stderr).")

let classify_cmd =
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify every loop variable (the paper's algorithm).")
    Term.(const cmd_classify $ no_sccp_flag $ check_flag $ trace_flag
          $ trace_summary_flag $ profile_flag $ folded_flag $ file_arg)

let check_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let iters =
    Arg.(value & opt int 100
         & info [ "iters" ] ~docv:"N"
             ~doc:"Oracle bound: compare each loop's first $(docv) iterations.")
  in
  let werror =
    Arg.(value & flag
         & info [ "werror" ] ~doc:"Exit nonzero on warnings too (CI mode).")
  in
  let dump_cfg =
    Arg.(value & flag
         & info [ "dump-cfg" ]
             ~doc:"Print the pristine lowered CFG (the lower pass artifact the \
                   structural verifier consumes) before the report.")
  in
  let inject =
    Arg.(value & opt (some string) None
         & info [ "inject" ] ~docv:"FAULT"
             ~doc:"Corrupt the IR first (phi-arity, dangling-def, bad-edge, \
                   nondom-use) and verify the checker catches it; exits 2 with \
                   the fault's diagnostic code.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Verify the whole pipeline over a file: CFG/SSA/looptree structure, \
             every classification differentially against the interpreter, and \
             each transform against the untransformed program.")
    Term.(const cmd_check $ no_sccp_flag $ no_ranges_flag $ json $ iters
          $ werror $ dump_cfg $ inject $ trace_flag $ trace_summary_flag
          $ file_arg)

let deps_cmd =
  Cmd.v
    (Cmd.info "deps" ~doc:"Dump the data dependence graph.")
    Term.(const cmd_deps $ no_ranges_flag $ trace_flag $ trace_summary_flag
          $ file_arg)

let range_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the interval table as JSON.")
  in
  Cmd.v
    (Cmd.info "range"
       ~doc:"Print the value-range analysis: one interval per SSA def \
             (classification closed forms + SCCP constants, widened fixpoint), \
             with body-refined intervals below counted exit tests.")
    Term.(const cmd_range $ no_sccp_flag $ json $ file_arg)

let trip_cmd =
  Cmd.v
    (Cmd.info "trip" ~doc:"Print every loop's (maximum) trip count.")
    Term.(const cmd_trip $ trace_flag $ trace_summary_flag $ file_arg)

let explain_cmd =
  let var =
    Arg.(value & pos 1 (some string) None
         & info [] ~docv:"VAR"
             ~doc:"Restrict the report to SCRs mentioning this SSA name (e.g. j2).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit one JSON object (scrs, ranges, bounds) instead of text.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show, for each strongly-connected region, which classification rule \
             fired and what every member was classified as, plus the value ranges \
             the analysis proved.")
    Term.(const cmd_explain $ no_sccp_flag $ json $ var $ file_arg)

let trace_check_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.json"
         ~doc:"Chrome trace_event file, e.g. from --trace or the serve TRACE verb.")
  in
  Cmd.v
    (Cmd.info "trace-check" ~doc:"Validate a Chrome trace_event JSON file.")
    Term.(const cmd_trace_check $ file)

let peel_cmd =
  let loop_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LOOP" ~doc:"Loop label.")
  in
  let file2 =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"FILE" ~doc:"Input program.")
  in
  Cmd.v
    (Cmd.info "peel" ~doc:"Peel the first iteration of the named loop.")
    Term.(const cmd_peel $ loop_name $ file2)

let interchange_cmd =
  let outer =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OUTER" ~doc:"Outer loop.")
  in
  let inner =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"INNER" ~doc:"Inner loop.")
  in
  let file2 =
    Arg.(required & pos 2 (some file) None & info [] ~docv:"FILE" ~doc:"Input program.")
  in
  Cmd.v
    (Cmd.info "interchange" ~doc:"Check legality of (and apply) loop interchange.")
    Term.(const cmd_interchange $ outer $ inner $ file2)

let run_cmd =
  let fuel =
    Arg.(value & opt int 100_000 & info [ "fuel" ] ~doc:"Instruction budget.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Seed for '??' conditions.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Interpret the program and dump final array contents.")
    Term.(const cmd_run $ fuel $ seed $ file_arg)

let batch_cmd =
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains (1 = sequential).")
  in
  let repeat =
    Arg.(value & opt int 1
         & info [ "repeat" ] ~docv:"K"
             ~doc:"Run the whole batch $(docv) times; later passes hit the cache.")
  in
  let artifacts =
    Arg.(value & opt string "classify"
         & info [ "artifacts" ] ~docv:"LIST"
             ~doc:"Comma-separated artifacts: classify, deps, trip, ranges, \
                   check, or all.")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Cooperative per-file timeout.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Dump cache and timing stats to stderr.")
  in
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILES" ~doc:"Input programs.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Analyze a corpus of programs in parallel through the caching service.")
    Term.(const cmd_batch $ jobs $ repeat $ artifacts $ timeout $ cache_size_flag
          $ no_sccp_flag $ check_flag $ stats $ store_flag $ no_store_flag
          $ trace_flag $ trace_summary_flag $ profile_flag $ folded_flag
          $ files)

let serve_cmd =
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Resident worker domains for BATCH requests (1 = none).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve CLASSIFY/DEPS/TRIP/BATCH/STATS/PERSIST requests over \
             stdin/stdout (see docs/SERVICE.md).")
    Term.(const cmd_serve $ jobs $ cache_size_flag $ no_sccp_flag $ store_flag
          $ no_store_flag)

let diff_cmd =
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains for re-analyzing changed units in parallel.")
  in
  let emit =
    Arg.(value & opt (some string) None
         & info [ "emit" ] ~docv:"FILE"
             ~doc:"Also write NEW's incrementally merged classify+trip+deps \
                   reports (concatenated) to $(docv) — byte-identical to a \
                   cold run, by construction.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Dump cache and timing stats to stderr.")
  in
  let old_file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"OLD" ~doc:"The program before the edit.")
  in
  let new_file =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"NEW" ~doc:"The program after the edit.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Analyze OLD, then NEW through the per-unit cache, and report which \
             analysis units (loop nests) were reused and which re-analyzed, \
             and why.")
    Term.(const cmd_diff $ jobs $ no_sccp_flag $ emit $ trace_flag
          $ trace_summary_flag $ profile_flag $ folded_flag $ stats
          $ store_flag $ no_store_flag $ old_file $ new_file)

let passes_cmd =
  let force =
    Arg.(value & opt (some string) None
         & info [ "force" ] ~docv:"LIST"
             ~doc:"Force these artifacts first (classify, deps, trip, or all), \
                   then report which passes ran.")
  in
  Cmd.v
    (Cmd.info "passes"
       ~doc:"Print the analysis pass DAG for a file: each pass's inputs, \
             forced/lazy status, owner (pipeline, engine, or store when the \
             artifact came off the persistent tier) and result digest.")
    Term.(const cmd_passes $ no_sccp_flag $ force $ store_flag $ no_store_flag
          $ file_arg)

let gc_cmd =
  let store_dir =
    Arg.(required & opt (some string) None
         & info [ "store" ] ~docv:"DIR" ~doc:"The store directory to collect.")
  in
  let max_age =
    Arg.(value & opt (some float) None
         & info [ "max-age" ] ~docv:"SECONDS"
             ~doc:"Delete entries not republished for $(docv) seconds.")
  in
  let max_mb =
    Arg.(value & opt (some int) None
         & info [ "max-mb" ] ~docv:"MB"
             ~doc:"Then delete oldest entries until at most $(docv) MiB remain.")
  in
  let dry_run =
    Arg.(value & flag
         & info [ "dry-run" ] ~doc:"Report what would be deleted; delete nothing.")
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:"Apply a size/age retention policy to a persistent artifact store \
             (safe to run while serve/batch processes use it; they recompute \
             evicted entries).")
    Term.(const cmd_gc $ store_dir $ max_age $ max_mb $ dry_run $ trace_flag
          $ trace_summary_flag)

let metrics_cmd =
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains (1 = sequential).")
  in
  let artifacts =
    Arg.(value & opt string "classify"
         & info [ "artifacts" ] ~docv:"LIST"
             ~doc:"Comma-separated artifacts to warm: classify, deps, trip, \
                   ranges, check, or all.")
  in
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILES" ~doc:"Input programs.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Analyze the files through the caching service, then print the \
             whole metrics registry — engine cache/store tiers, per-pass \
             hit/miss and wall/GC, per-domain pool telemetry — in Prometheus \
             text exposition format (0.0.4) on stdout. The serve METRICS verb \
             returns the same payload.")
    Term.(const cmd_metrics $ jobs $ artifacts $ no_sccp_flag $ store_flag
          $ no_store_flag $ files)

let gen_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")
  in
  let count =
    Arg.(value & opt int 1
         & info [ "count" ] ~docv:"N" ~doc:"Number of programs to generate.")
  in
  let depth =
    Arg.(value & opt int Corpus.Gen.default_knobs.Corpus.Gen.depth
         & info [ "depth" ] ~docv:"D"
             ~doc:"Max nesting depth of generated if/for statements.")
  in
  let max_trip =
    Arg.(value & opt int Corpus.Gen.default_knobs.Corpus.Gen.max_trip
         & info [ "max-trip" ] ~docv:"T"
             ~doc:"Outer-loop trip-count bound.")
  in
  let max_block =
    Arg.(value & opt int Corpus.Gen.default_knobs.Corpus.Gen.max_block
         & info [ "max-block" ] ~docv:"B"
             ~doc:"Max statements per generated block.")
  in
  let prefix =
    Arg.(value & opt string "gen"
         & info [ "prefix" ] ~docv:"NAME" ~doc:"File-name prefix.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Write programs as $(docv)/<prefix>-<i>.iv instead of stdout.")
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:"Generate random loop programs (seeded, deterministic): the same \
             engine that feeds the B1 benchmark corpus and the property \
             tests. With --out, writes one .iv file per program.")
    Term.(const cmd_gen $ seed $ count $ depth $ max_trip $ max_block $ prefix
          $ out)

let bench_diff_cmd =
  let threshold =
    Arg.(value & opt float 10.0
         & info [ "threshold" ] ~docv:"PCT"
             ~doc:"Fail when a gated measurement (seconds, files_per_sec, \
                   speedup) is worse by more than $(docv) percent.")
  in
  let old_file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"OLD.json" ~doc:"Baseline BENCH_*.json.")
  in
  let new_file =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"NEW.json" ~doc:"Candidate BENCH_*.json.")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:"Compare two bench result files row by row with typed deltas \
             (time, rate, counts); exit 3 when a gated measurement regressed \
             beyond the threshold. The CI perf-trajectory gate.")
    Term.(const cmd_bench_diff $ threshold $ old_file $ new_file)

let () =
  let info =
    Cmd.info "ivtool" ~version:"1.1.0"
      ~doc:"Induction-variable classification beyond linear IVs (Wolfe, PLDI 1992)."
  in
  let cmds =
    [
      simple "parse" "Parse and pretty-print the program." cmd_parse;
      simple "cfg" "Dump the lowered control-flow graph." cmd_cfg;
      simple "ssa" "Dump the SSA form." cmd_ssa;
      classify_cmd;
      check_cmd;
      deps_cmd;
      range_cmd;
      explain_cmd;
      simple "baseline" "Run classical (iterative) IV detection." cmd_baseline;
      simple "sccp" "Run conditional constant propagation." cmd_sccp;
      simple "normalize" "Print the loop-normalized program." cmd_normalize;
      trip_cmd;
      trace_check_cmd;
      simple "dot-cfg" "Emit the CFG in Graphviz DOT format." cmd_dot_cfg;
      simple "dot-ssa" "Emit the SSA def-use graph in Graphviz DOT format." cmd_dot_ssa;
      simple "parallel" "Report which loops have independent iterations." cmd_parallel;
      simple "optimize" "Run LICM, strength reduction and DCE; dump the result."
        cmd_optimize;
      peel_cmd;
      interchange_cmd;
      run_cmd;
      batch_cmd;
      serve_cmd;
      passes_cmd;
      diff_cmd;
      gc_cmd;
      metrics_cmd;
      gen_cmd;
      bench_diff_cmd;
    ]
  in
  let exit_code =
    match Cmd.eval_value ~catch:false (Cmd.group info cmds) with
    | Ok (`Ok ()) | Ok `Version | Ok `Help -> 0
    | Error (`Parse | `Term) -> 1 (* cmdliner already printed the usage error *)
    | Error `Exn -> 125
    | exception Fatal (code, msg) ->
      Printf.eprintf "ivtool: error: %s\n%!" msg;
      code
    | exception e ->
      Printf.eprintf "ivtool: internal error: %s\n%!" (Printexc.to_string e);
      125
  in
  exit exit_code
