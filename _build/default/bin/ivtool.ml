(* ivtool: command-line driver for the Beyond-Induction-Variables
   analyses.

     ivtool parse     FILE   — parse and pretty-print the program
     ivtool cfg       FILE   — dump the lowered CFG
     ivtool ssa       FILE   — dump the SSA form
     ivtool classify  FILE   — per-loop variable classification report
     ivtool deps      FILE   — data dependence graph
     ivtool baseline  FILE   — classical (dragon book) IV detection
     ivtool sccp      FILE   — conditional constant propagation summary
     ivtool normalize FILE   — print the loop-normalized program
     ivtool run       FILE   — interpret (bounded) and dump array state

   Input is the paper's structured loop language; see README.md. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_or_exit src =
  match Ir.Parser.parse_result src with
  | Ok p -> p
  | Error msg ->
    prerr_endline msg;
    exit 1

let with_source file f = f (parse_or_exit (read_file file))

let cmd_parse file =
  with_source file (fun p -> print_endline (Ir.Ast.to_string p))

let cmd_cfg file =
  with_source file (fun p -> print_endline (Ir.Cfg.to_string (Ir.Lower.lower p)))

let cmd_ssa file =
  with_source file (fun p ->
      let ssa = Ir.Ssa.of_program p in
      (match Ir.Ssa.check ssa with
       | [] -> ()
       | errs ->
         List.iter prerr_endline errs;
         exit 2);
      print_endline (Ir.Ssa.to_string ssa))

let cmd_classify no_sccp file =
  with_source file (fun p ->
      let t = Analysis.Driver.analyze ~use_sccp:(not no_sccp) (Ir.Ssa.of_program p) in
      print_string (Analysis.Driver.report t))

let cmd_deps file =
  with_source file (fun p ->
      let t = Analysis.Driver.analyze (Ir.Ssa.of_program p) in
      let g = Dependence.Dep_graph.build t in
      if g = [] then print_endline "no dependences"
      else print_string (Dependence.Dep_graph.to_string t g))

let cmd_baseline file =
  with_source file (fun p ->
      let cfg = Ir.Lower.lower p in
      List.iter
        (fun ((lp : Ir.Loops.loop), r) ->
          Format.printf "loop %s:@.%a@." lp.Ir.Loops.name Analysis.Baseline.pp r)
        (Analysis.Baseline.find_all cfg))

let cmd_sccp file =
  with_source file (fun p ->
      let ssa = Ir.Ssa.of_program p in
      let r = Analysis.Sccp.run ssa in
      let consts, total, dead = Analysis.Sccp.fold_stats r ssa in
      Printf.printf "constants: %d of %d instructions; dead blocks: %d\n" consts total
        dead)

let cmd_dot_cfg file =
  with_source file (fun p -> print_string (Ir.Dot.cfg_to_dot (Ir.Lower.lower p)))

let cmd_dot_ssa file =
  with_source file (fun p -> print_string (Ir.Dot.ssa_to_dot (Ir.Ssa.of_program p)))

let cmd_trip file =
  with_source file (fun p ->
      let t = Analysis.Driver.analyze (Ir.Ssa.of_program p) in
      let ssa = Analysis.Driver.ssa t in
      let loops = Ir.Ssa.loops ssa in
      List.iter
        (fun (lp : Ir.Loops.loop) ->
          let trip = Analysis.Driver.trip_count t lp.Ir.Loops.id in
          Format.printf "loop %-8s trips: %a" lp.Ir.Loops.name
            (Analysis.Trip_count.pp_with (fun id -> Ir.Ssa.primary_name ssa id))
            trip;
          (match Analysis.Trip_count.max_count_int trip with
           | Some n when Analysis.Trip_count.count_int trip = None ->
             Format.printf " (at most %d)" n
           | _ -> ());
          Format.printf "@.")
        (Ir.Loops.postorder loops))

let cmd_normalize file =
  with_source file (fun p ->
      print_endline (Ir.Ast.to_string (Transform.Normalize.normalize p)))

let cmd_peel loop_name file =
  with_source file (fun p ->
      print_endline (Ir.Ast.to_string (Transform.Peel.peel_named loop_name p)))

let cmd_parallel file =
  with_source file (fun p ->
      let t = Analysis.Driver.analyze (Ir.Ssa.of_program p) in
      print_string (Transform.Parallelize.report t))

let cmd_interchange outer inner file =
  with_source file (fun p ->
      let src = Ir.Ast.to_string p in
      match Transform.Interchange.legal_for_source src ~outer_name:outer ~inner_name:inner with
      | Some true ->
        print_endline "interchange: legal";
        print_endline (Ir.Ast.to_string (Transform.Interchange.apply p ~outer_name:outer))
      | Some false -> print_endline "interchange: illegal (blocking dependence)"
      | None -> prerr_endline "interchange: loops not found")

let cmd_optimize file =
  with_source file (fun p ->
      let ssa = Ir.Ssa.of_program p in
      let t = Analysis.Driver.analyze ssa in
      let hoisted = Transform.Licm.hoist t in
      let reduced = Transform.Strength_reduction.reduce t in
      let removed = Transform.Dce.run (Ir.Ssa.cfg ssa) in
      Printf.printf
        "licm: hoisted %d; strength reduction: %d multiplies; dce: removed %d\n"
        (List.length hoisted) (List.length reduced) removed;
      print_endline (Ir.Ssa.to_string ssa))

let cmd_run fuel seed file =
  with_source file (fun p ->
      let ssa = Ir.Ssa.of_program p in
      let state = Random.State.make [| seed |] in
      let st =
        Ir.Interp.run ~fuel ~rand:(fun () -> Random.State.bool state) ssa
      in
      (match st.Ir.Interp.outcome with
       | Ir.Interp.Halted -> Printf.printf "halted after %d steps\n" st.Ir.Interp.steps
       | Ir.Interp.Out_of_fuel -> Printf.printf "stopped: out of fuel (%d steps)\n" fuel);
      let cells =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.Ir.Interp.arrays []
        |> List.sort compare
      in
      List.iter
        (fun ((a, idx), v) ->
          Printf.printf "%s(%s) = %d\n" (Ir.Ident.name a)
            (String.concat ", " (List.map string_of_int idx))
            v)
        cells)

open Cmdliner

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Input program.")

let simple name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ file_arg)

let classify_cmd =
  let no_sccp =
    Arg.(value & flag & info [ "no-sccp" ] ~doc:"Disable constant propagation.")
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify every loop variable (the paper's algorithm).")
    Term.(const cmd_classify $ no_sccp $ file_arg)

let peel_cmd =
  let loop_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LOOP" ~doc:"Loop label.")
  in
  let file2 =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"FILE" ~doc:"Input program.")
  in
  Cmd.v
    (Cmd.info "peel" ~doc:"Peel the first iteration of the named loop.")
    Term.(const cmd_peel $ loop_name $ file2)

let interchange_cmd =
  let outer =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OUTER" ~doc:"Outer loop.")
  in
  let inner =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"INNER" ~doc:"Inner loop.")
  in
  let file2 =
    Arg.(required & pos 2 (some file) None & info [] ~docv:"FILE" ~doc:"Input program.")
  in
  Cmd.v
    (Cmd.info "interchange" ~doc:"Check legality of (and apply) loop interchange.")
    Term.(const cmd_interchange $ outer $ inner $ file2)

let run_cmd =
  let fuel =
    Arg.(value & opt int 100_000 & info [ "fuel" ] ~doc:"Instruction budget.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Seed for '??' conditions.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Interpret the program and dump final array contents.")
    Term.(const cmd_run $ fuel $ seed $ file_arg)

let () =
  let info =
    Cmd.info "ivtool" ~version:"1.0.0"
      ~doc:"Induction-variable classification beyond linear IVs (Wolfe, PLDI 1992)."
  in
  let cmds =
    [
      simple "parse" "Parse and pretty-print the program." cmd_parse;
      simple "cfg" "Dump the lowered control-flow graph." cmd_cfg;
      simple "ssa" "Dump the SSA form." cmd_ssa;
      classify_cmd;
      simple "deps" "Dump the data dependence graph." cmd_deps;
      simple "baseline" "Run classical (iterative) IV detection." cmd_baseline;
      simple "sccp" "Run conditional constant propagation." cmd_sccp;
      simple "normalize" "Print the loop-normalized program." cmd_normalize;
      simple "trip" "Print every loop's (maximum) trip count." cmd_trip;
      simple "dot-cfg" "Emit the CFG in Graphviz DOT format." cmd_dot_cfg;
      simple "dot-ssa" "Emit the SSA def-use graph in Graphviz DOT format." cmd_dot_ssa;
      simple "parallel" "Report which loops have independent iterations." cmd_parallel;
      simple "optimize" "Run LICM, strength reduction and DCE; dump the result."
        cmd_optimize;
      peel_cmd;
      interchange_cmd;
      run_cmd;
    ]
  in
  exit (Cmd.eval (Cmd.group info cmds))
