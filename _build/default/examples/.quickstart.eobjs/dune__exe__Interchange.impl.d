examples/interchange.ml: Analysis Array Dependence Format Hashtbl Ir List Option Printf String Transform
