examples/relaxation.mli:
