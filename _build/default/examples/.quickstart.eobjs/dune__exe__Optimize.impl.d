examples/optimize.ml: Analysis Hashtbl Ir List Printf Transform
