examples/quickstart.mli:
