examples/optimize.mli:
