examples/triangular.ml: Analysis Bignum Ir List Option Printf
