examples/wraparound.ml: Analysis Dependence Hashtbl Ir List Printf Transform
