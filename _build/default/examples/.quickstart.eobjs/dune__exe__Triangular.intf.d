examples/triangular.mli:
