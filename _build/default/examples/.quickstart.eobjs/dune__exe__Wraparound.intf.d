examples/wraparound.mli:
