examples/interchange.mli:
