examples/quickstart.ml: Analysis Bignum Ir List Option Printf
