examples/packing.mli:
