examples/relaxation.ml: Analysis Dependence List Printf
