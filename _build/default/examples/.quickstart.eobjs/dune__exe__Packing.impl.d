examples/packing.ml: Analysis Dependence Hashtbl Ir List Printf String
