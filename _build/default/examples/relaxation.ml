(* Relaxation codes (paper §4.2): generating new matrix values from old
   ones by flipping a plane index between 1 and 2 every outer iteration.
   Both programming styles from the paper appear below:

     - the rotation style (swap via a temporary), which classifies as a
       periodic family, and
     - the arithmetic style (j = 3 - j), which the classifier recognizes
       as a flip-flop, i.e. a periodic variable of period 2.

   "It is extremely important and useful for the compiler to realize
   that for any fixed value of iter, j and jold have different values" —
   the dependence tester proves exactly that: the plane subscripts never
   collide in the same outer iteration, so the writes of one plane and
   the reads of the other are independent within an iteration and the
   relaxation sweep can be optimized (vectorized / parallelized).

   Run with:  dune exec examples/relaxation.exe *)

let rotation_style = {|
j = 1
jold = 2
L11: for iter = 1 to n loop
  L30: for x = 1 to m loop
    A(jold, x) = A(j, x) + 1
  endloop
  jtemp = jold
  jold = j
  j = jtemp
endloop
|}

let arithmetic_style = {|
j = 1
jold = 2
L12: for iter = 1 to n loop
  L31: for x = 1 to m loop
    A(jold, x) = A(j, x) + 1
  endloop
  j = 3 - j
  jold = 3 - jold
endloop
|}

let analyze_and_report title src =
  Printf.printf "=== %s ===\n" title;
  let t = Analysis.Driver.analyze_source src in
  print_string (Analysis.Driver.report t);
  print_endline "--- dependences on A ---";
  let g = Dependence.Dep_graph.build t in
  (match g with
   | [] -> print_endline "(none: planes proved independent)"
   | edges -> print_string (Dependence.Dep_graph.to_string t edges));
  print_newline ()

let () =
  analyze_and_report "rotation style (periodic family)" rotation_style;
  analyze_and_report "arithmetic style (flip-flop)" arithmetic_style;
  (* The payoff: in both styles the same-iteration ('=' direction on the
     outer loop) dependence between the write plane and the read plane is
     disproved, which is what legalizes optimizing the inner sweep. *)
  let t = Analysis.Driver.analyze_source rotation_style in
  let g = Dependence.Dep_graph.build t in
  let same_outer_iter_possible =
    List.exists
      (fun (e : Dependence.Dep_graph.edge) ->
        e.Dependence.Dep_graph.src.Dependence.Dep_graph.instr
        <> e.Dependence.Dep_graph.dst.Dependence.Dep_graph.instr
        &&
        match e.Dependence.Dep_graph.outcome with
        | Dependence.Deptest.Dependent d -> (
          (* The outermost common loop is the relaxation sweep. *)
          match d.Dependence.Deptest.directions with
          | (_, ds) :: _ -> ds.Dependence.Deptest.eq
          | [] -> true)
        | Dependence.Deptest.Independent -> false)
      g
  in
  Printf.printf "same-sweep plane conflict possible: %b\n" same_outer_iter_possible
