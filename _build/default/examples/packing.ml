(* Vector packing (paper §4.4, loop L15): a conditionally incremented
   counter packs selected elements of A into B. The counter is not an
   induction variable, but the classifier proves it *monotonic* — and
   strictly monotonic at the increment — which is enough to know that
   B's cells are written at most once per loop execution (the write
   subscript takes the '=' direction only), so the pack loop can become
   a PACK intrinsic / parallel prefix.

   Run with:  dune exec examples/packing.exe *)

let program = {|
k = 0
L15: for i = 1 to n loop
  if A(i) > 0 then
    k = k + 1
    B(k) = A(i)
  endif
endloop
|}

let () =
  let t = Analysis.Driver.analyze_source program in
  print_string (Analysis.Driver.report t);
  print_endline "--- dependences ---";
  let g = Dependence.Dep_graph.build t in
  if g = [] then print_endline "(none)" else print_string (Dependence.Dep_graph.to_string t g);

  (* The store B(k3) uses the strictly monotonic member: no output
     dependence across iterations; each cell written once. *)
  (match Analysis.Driver.class_of_name t "k3" with
   | Some (Analysis.Ivclass.Monotonic m) ->
     Printf.printf "\nk3 monotonic: increasing=%b strict=%b\n"
       (m.Analysis.Ivclass.dir = Analysis.Ivclass.Increasing)
       m.Analysis.Ivclass.strict
   | Some c ->
     Printf.printf "\nk3: %s\n" (Analysis.Driver.class_to_string t c)
   | None -> print_endline "k3 not found");

  (* Sanity: run the program on concrete data and confirm the packing
     semantics the classifications promise. *)
  let a = Ir.Ident.of_string "A" and b = Ir.Ident.of_string "B" in
  let data = [ 3; -1; 4; 0; 5; -9; 2; -6 ] in
  let arrays = List.mapi (fun i v -> ((a, [ i + 1 ]), v)) data in
  let ssa = Analysis.Driver.ssa t in
  let st =
    Ir.Interp.run ~fuel:10_000 ~arrays
      ~params:(fun x -> if Ir.Ident.name x = "n" then 8 else 0)
      ssa
  in
  let packed =
    List.filter_map
      (fun k -> Hashtbl.find_opt st.Ir.Interp.arrays (b, [ k ]))
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  Printf.printf "\ninput : %s\npacked: %s\n"
    (String.concat " " (List.map string_of_int data))
    (String.concat " " (List.map string_of_int packed))
