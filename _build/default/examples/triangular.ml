(* The triangular-loop example the paper highlights from [EHLP92]
   (Figure 9): the inner loop's bound depends on the outer index, which
   made the generalized induction variable "so difficult" for other
   frameworks — and falls out directly here:

     - the inner loop is countable with a *symbolic* trip count (i),
     - the exit value of j substitutes into the outer cycle,
     - the outer cycle's cumulative effect is to add a linear IV,
     - so j is a *quadratic* family: j2 = (L19, 0, 1, 1), value h^2 + h.

   This example also validates the closed form against the reference
   interpreter for a concrete n.

   Run with:  dune exec examples/triangular.exe *)

let program = {|
j = 0
L19: for i = 1 to n loop
  j = j + i
  L20: for k = 1 to i loop
    j = j + 1
  endloop
endloop
|}

let () =
  let ssa = Ir.Ssa.of_source program in
  let t = Analysis.Driver.analyze ssa in
  print_string (Analysis.Driver.report t);

  (* The quadratic closed form of the outer j. *)
  (match Analysis.Driver.class_of_name t "j2" with
   | Some c -> Printf.printf "\nj2 = %s\n" (Analysis.Driver.class_to_string t c)
   | None -> ());

  (* Validate: observed j2 values vs h^2 + h for n = 12. *)
  let n = 12 in
  let params x = if Ir.Ident.name x = "n" then n else 0 in
  let target =
    match Ir.Ssa.value_of_name ssa "j2" with
    | Some (Ir.Instr.Def id) -> id
    | _ -> failwith "j2 not found"
  in
  let _, traces =
    Ir.Interp.trace_of ~fuel:100_000 ~params ssa (Ir.Instr.Id.Set.singleton target)
  in
  let obs = Ir.Instr.Id.Map.find target traces in
  let cls = Option.get (Analysis.Driver.class_of_name t "j2") in
  let lookup = function
    | Analysis.Sym.Param x -> Some (Bignum.Rat.of_int (params x))
    | Analysis.Sym.Def _ -> None
  in
  let all_match =
    List.for_all
      (fun (h, v) ->
        match Analysis.Ivclass.eval_at lookup cls h with
        | Some p -> Bignum.Rat.equal p (Bignum.Rat.of_int v)
        | None -> false)
      obs
  in
  Printf.printf "closed form matches all %d observations: %b\n" (List.length obs)
    all_match
