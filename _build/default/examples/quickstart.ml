(* Quickstart: parse a loop, build SSA, classify every variable, and ask
   questions about specific SSA names.

   Run with:  dune exec examples/quickstart.exe *)

let program = {|
# The paper's running example (Figure 1, loop L7): a mutually-defined
# pair of linear induction variables.
j = n
L7: loop
  i = j + c
  j = i + k
endloop
|}

let () =
  (* Front end: source -> AST -> CFG -> SSA. *)
  let ssa = Ir.Ssa.of_source program in
  print_endline "--- SSA form ---";
  print_endline (Ir.Ssa.to_string ssa);

  (* The analysis driver classifies every loop, inner to outer. *)
  let t = Analysis.Driver.analyze ssa in
  print_endline "--- classification report ---";
  print_string (Analysis.Driver.report t);

  (* Classifications can be looked up by SSA name (the names in the
     report, matching the paper's subscripted figures). *)
  print_endline "--- individual lookups ---";
  List.iter
    (fun name ->
      match Analysis.Driver.class_of_name t name with
      | Some c ->
        Printf.printf "%-4s : %s\n" name (Analysis.Driver.class_to_string t c)
      | None -> Printf.printf "%-4s : (no such name)\n" name)
    [ "j2"; "i2"; "j3" ];

  (* The classifier's verdicts are closed forms: j2 = n + (c+k)*h.
     Check it against the reference interpreter for n=10, c=2, k=3. *)
  let params x =
    match Ir.Ident.name x with "n" -> 10 | "c" -> 2 | "k" -> 3 | _ -> 0
  in
  let target =
    match Ir.Ssa.value_of_name ssa "j2" with
    | Some (Ir.Instr.Def id) -> id
    | _ -> failwith "j2 not found"
  in
  let _, traces =
    Ir.Interp.trace_of ~fuel:200 ~params ssa (Ir.Instr.Id.Set.singleton target)
  in
  let observed = Ir.Instr.Id.Map.find target traces in
  print_endline "--- j2 observed vs predicted (first 8 iterations) ---";
  let c = Option.get (Analysis.Driver.class_of_name t "j2") in
  List.iteri
    (fun i (h, v) ->
      if i < 8 then begin
        let predicted =
          Analysis.Ivclass.eval_at
            (function
              | Analysis.Sym.Param x -> Some (Bignum.Rat.of_int (params x))
              | Analysis.Sym.Def _ -> None)
            c h
        in
        Printf.printf "h=%d observed=%d predicted=%s\n" h v
          (match predicted with
           | Some p -> Bignum.Rat.to_string p
           | None -> "?")
      end)
    observed
