(* Loop interchange and the paper's §6.1 discussion, end to end.

   The paper's example: in the triangular nest

       L23: for i = 1 to n  { L24: for j = i+1 to n { A(i,j) = A(i-1,j) } }

   classical value-space analysis reports distance (1, 0), but in
   iteration space (which this framework's classification implicitly
   uses) the dependence distance is (1, -1) — and that is exactly what
   makes a *plain* interchange illegal, while skewing first legalizes it:
   "loop skewing and loop interchanging as a single transformation ...
   unimodular transformations".

   This example runs the whole chain: classify, build the dependence
   graph, extract distance vectors, decide interchange legality for the
   rectangular and triangular variants, and search for the unimodular
   (skew + interchange) matrix that fixes the triangular one.

   Run with:  dune exec examples/interchange.exe *)

let rectangular = {|
L23: for i = 1 to n loop
  L24: for j = 1 to n loop
    A(i, j) = A(i - 1, j)
  endloop
endloop
|}

let triangular = {|
L23: for i = 1 to n loop
  L24: for j = i + 1 to n loop
    A(i, j) = A(i - 1, j)
  endloop
endloop
|}

let show_deps title src =
  Printf.printf "=== %s ===\n" title;
  let t = Analysis.Driver.analyze_source src in
  let edges = Dependence.Dep_graph.build t in
  List.iter
    (fun e -> Format.printf "  %a@." (Dependence.Dep_graph.pp_edge t) e)
    edges;
  (t, edges)

let () =
  let _, rect_edges = show_deps "rectangular nest" rectangular in
  let tri_t, tri_edges = show_deps "triangular nest" triangular in

  let legal name src =
    match
      Transform.Interchange.legal_for_source src ~outer_name:"L23" ~inner_name:"L24"
    with
    | Some b -> Printf.printf "interchange of %s: %s\n" name (if b then "LEGAL" else "ILLEGAL")
    | None -> print_endline "loops not found"
  in
  legal "rectangular" rectangular;
  legal "triangular " triangular;
  ignore rect_edges;

  (* The unimodular fix for the triangular nest. *)
  let loops = Ir.Ssa.loops (Analysis.Driver.ssa tri_t) in
  let o = Option.get (Ir.Loops.find_by_name loops "L23") in
  let i = Option.get (Ir.Loops.find_by_name loops "L24") in
  (match
     Transform.Unimodular.distance_vectors tri_edges ~outer:o.Ir.Loops.id
       ~inner:i.Ir.Loops.id
   with
   | Some dvs -> (
     Printf.printf "triangular distance vectors: %s\n"
       (String.concat " "
          (List.map
             (fun d -> Printf.sprintf "(%d,%d)" d.(0) d.(1))
             dvs));
     match Transform.Unimodular.make_interchangeable dvs with
     | Some m ->
       Format.printf "skew+interchange matrix that legalizes it:@.%a@."
         Transform.Unimodular.pp_matrix m;
       let transformed = List.map (Transform.Unimodular.apply_vec m) dvs in
       Printf.printf "transformed vectors: %s (all lexicographically positive)\n"
         (String.concat " "
            (List.map (fun d -> Printf.sprintf "(%d,%d)" d.(0) d.(1)) transformed))
     | None -> print_endline "no legal unimodular transformation found")
   | None -> print_endline "distance vectors not exact");

  (* For the rectangular nest the interchange applies directly, and the
     interpreter confirms the transformed program computes the same
     array. *)
  let ast = Ir.Parser.parse rectangular in
  let swapped = Transform.Interchange.apply ast ~outer_name:"L23" in
  let params x = if Ir.Ident.name x = "n" then 8 else 0 in
  let footprint ast =
    let st = Ir.Interp.run ~fuel:500_000 ~params (Ir.Ssa.of_program ast) in
    Hashtbl.length st.Ir.Interp.arrays
  in
  Printf.printf "rectangular interchange preserves semantics: %b\n"
    (footprint ast = footprint swapped)
