(* Wrap-around variables (paper §4.1, loop L9): iml trails the loop index
   by one iteration, except on the first trip where it holds n — the
   idiom that wraps an array around a cylinder.

   The example shows the whole §4.1 story:

     1. the classifier reports iml as a first-order wrap-around of the
        linear IV family of i;
     2. the dependence tester still builds the linear equation, flagging
        the result as holding only after the first iteration;
     3. peeling the first iteration (Transform.Peel) and re-running the
        classifier promotes iml to a plain induction variable — the
        "standard compiler trick" automated end-to-end.

   Run with:  dune exec examples/wraparound.exe *)

let program = {|
iml = n
L9: for i = 1 to n loop
  A(i) = A(iml) + 1
  iml = i
endloop
|}

let () =
  print_endline "--- before peeling ---";
  let ast = Ir.Parser.parse program in
  let t = Analysis.Driver.analyze (Ir.Ssa.of_program ast) in
  print_string (Analysis.Driver.report t);
  (match Analysis.Driver.class_of_name t "iml2" with
   | Some c -> Printf.printf "iml2 = %s\n" (Analysis.Driver.class_to_string t c)
   | None -> ());
  print_endline "--- dependences (note the wrap-around flag) ---";
  let g = Dependence.Dep_graph.build t in
  print_string (Dependence.Dep_graph.to_string t g);

  print_endline "\n--- after peeling the first iteration ---";
  let peeled = Transform.Peel.peel_named "L9" ast in
  print_endline (Ir.Ast.to_string peeled);
  let t' = Analysis.Driver.analyze (Ir.Ssa.of_program peeled) in
  print_string (Analysis.Driver.report t');

  (* Semantic equivalence of the peel: identical array traffic. *)
  let run ast =
    let st =
      Ir.Interp.run ~fuel:100_000
        ~params:(fun x -> if Ir.Ident.name x = "n" then 10 else 0)
        (Ir.Ssa.of_program ast)
    in
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.Ir.Interp.arrays []
    |> List.sort compare
  in
  Printf.printf "peeling preserves semantics: %b\n" (run ast = run peeled)
