lib/ir/dot.ml: Array Buffer Cfg Format Ident Instr Label List Printf Ssa String
