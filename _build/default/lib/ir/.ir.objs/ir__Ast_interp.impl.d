lib/ir/ast_interp.ml: Ast Hashtbl Ident List Ops Option
