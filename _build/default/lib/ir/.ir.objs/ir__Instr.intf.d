lib/ir/instr.mli: Format Hashtbl Ident Map Ops Set
