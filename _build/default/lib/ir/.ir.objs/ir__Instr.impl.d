lib/ir/instr.ml: Format Hashtbl Ident Int Map Ops Set Stdlib
