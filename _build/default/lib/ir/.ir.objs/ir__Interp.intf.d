lib/ir/interp.mli: Hashtbl Ident Instr Ssa
