lib/ir/ast_interp.mli: Ast Hashtbl Ident
