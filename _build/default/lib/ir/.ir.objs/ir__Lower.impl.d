lib/ir/lower.ml: Array Ast Cfg Ident Instr Label List Ops Parser Printf
