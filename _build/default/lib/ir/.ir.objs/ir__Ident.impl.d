lib/ir/ident.ml: Format Hashtbl Map Set Stdlib
