lib/ir/lexer.mli:
