lib/ir/ops.ml: Format
