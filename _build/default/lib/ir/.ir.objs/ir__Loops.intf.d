lib/ir/loops.mli: Cfg Dom Format Instr Label
