lib/ir/parser.ml: Ast Ident Lexer Ops Printf
