lib/ir/dom.mli: Cfg Format Label
