lib/ir/dom.ml: Array Cfg Format Label List
