lib/ir/ident.mli: Format Map Set
