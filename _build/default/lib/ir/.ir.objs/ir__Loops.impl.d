lib/ir/loops.ml: Array Cfg Dom Format Hashtbl Label List Option String
