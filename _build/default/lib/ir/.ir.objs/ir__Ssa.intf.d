lib/ir/ssa.mli: Ast Cfg Dom Format Ident Instr Loops
