lib/ir/dot.mli: Cfg Ssa
