lib/ir/ast.mli: Format Ident Ops
