lib/ir/interp.ml: Array Cfg Hashtbl Ident Instr Label List Loops Ops Option Ssa
