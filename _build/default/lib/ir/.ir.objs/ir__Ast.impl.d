lib/ir/ast.ml: Format Ident Ops
