lib/ir/cfg.ml: Array Format Instr Label List Option Printf
