lib/ir/ssa.ml: Array Cfg Dom Format Hashtbl Ident Instr Label List Loops Lower Option Printf Queue String
