(** Natural loops and the loop-nesting forest. Loops sharing a header
    are merged; the induction-variable driver walks the forest in
    post-order ("from the inner loops outward", paper §5.3). *)

type loop = {
  id : int;
  header : Label.t;
  name : string;  (** source label when available, else "L@<header>" *)
  blocks : Label.Set.t;
  latches : Label.t list;  (** in-loop sources of back edges *)
  mutable parent : int option;
  mutable loop_children : int list;
  mutable depth : int;  (** 1 for outermost *)
}

type t

val compute : Cfg.t -> Dom.t -> t

val loop : t -> int -> loop
val num_loops : t -> int
val roots : t -> int list
val all : t -> loop list

(** [innermost t label] is the innermost loop containing the block. *)
val innermost : t -> Label.t -> int option

val contains_block : loop -> Label.t -> bool

(** [find_by_name t name] finds a loop by source label (e.g. "L18"). *)
val find_by_name : t -> string -> loop option

(** Post-order over the forest: inner loops before their parents. *)
val postorder : t -> loop list

(** [exit_edges cfg loop] is the list of (from, to) edges leaving the
    loop. *)
val exit_edges : Cfg.t -> loop -> (Label.t * Label.t) list

(** [instrs cfg loop] is every instruction in the loop's blocks. *)
val instrs : Cfg.t -> loop -> Instr.t list

val pp : Format.formatter -> t -> unit
