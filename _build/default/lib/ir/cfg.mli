(** Control-flow graph over the tuple IR.

    The CFG is mutable while being built (by {!Lower}, by SSA
    construction, and by the rewriting transformations); analyses treat
    it as frozen. Block labels and instruction ids are dense integers. *)

type terminator =
  | Jump of Label.t
  | Branch of Instr.value * Label.t * Label.t  (** cond <> 0 ? then : else *)
  | Halt

type block = {
  label : Label.t;
  mutable instrs : Instr.t list;  (** in execution order *)
  mutable term : terminator;
  mutable loop_name : string option;
      (** on loop-header blocks: the source label of the loop *)
}

type t

(** [create ()] is a CFG holding only an empty entry block. *)
val create : unit -> t

val entry : t -> Label.t
val block : t -> Label.t -> block
val num_blocks : t -> int
val labels : t -> Label.t list

(** [add_block t] appends a fresh empty block and returns its label. *)
val add_block : t -> Label.t

val fresh_instr_id : t -> Instr.Id.t

(** [append t label op args] creates an instruction at the end of the
    block (before its terminator). *)
val append : t -> Label.t -> Instr.op -> Instr.value array -> Instr.t

(** [prepend t label op args] creates an instruction at the start of the
    block (phi insertion). *)
val prepend : t -> Label.t -> Instr.op -> Instr.value array -> Instr.t

val set_term : t -> Label.t -> terminator -> unit

val successors : t -> Label.t -> Label.t list

(** [predecessors t label]: deduplicated, sorted by label — the order phi
    arguments follow. *)
val predecessors : t -> Label.t -> Label.t list

(** [pred_table t] is predecessors for every block at once. *)
val pred_table : t -> Label.t list array

(** [index t] is the id -> (block, instruction) cache (rebuilt after
    mutation). *)
val index : t -> (Label.t * Instr.t) Instr.Id.Table.t

(** @raise Not_found if the instruction was deleted or never existed. *)
val find_instr : t -> Instr.Id.t -> Instr.t

val find_instr_opt : t -> Instr.Id.t -> Instr.t option

(** [block_of_instr t id] is the label of the containing block.
    @raise Not_found if the instruction does not exist. *)
val block_of_instr : t -> Instr.Id.t -> Label.t

val iter_instrs : t -> (Label.t -> Instr.t -> unit) -> unit
val fold_instrs : t -> ('a -> Label.t -> Instr.t -> 'a) -> 'a -> 'a
val num_instrs : t -> int

(** [replace_instrs t label f] maps a block's instruction list (used for
    deletion and insertion by the transformation passes). *)
val replace_instrs : t -> Label.t -> (Instr.t list -> Instr.t list) -> unit

(** Reverse postorder over reachable blocks (forward analyses iterate in
    this order). *)
val reverse_postorder : t -> Label.t list

(** [reachable t] marks blocks reachable from the entry. *)
val reachable : t -> bool array

val pp_terminator : Format.formatter -> terminator -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
