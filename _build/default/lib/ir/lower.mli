(** Lowering from the structured AST to the tuple-IR CFG.

    'for' loops desugar per the paper's §5.2 countable-loop shape: the
    bound is evaluated once into a compiler temp, the exit test sits at
    the top of the body, the increment at the bottom. Loop-header blocks
    carry their source label for the analyses' reports. *)

(** [lower p] builds the CFG of a program.
    @raise Failure on an 'exit' outside any loop. *)
val lower : Ast.program -> Cfg.t

(** [lower_source src] parses and lowers. *)
val lower_source : string -> Cfg.t
