(* Direct interpreter for the surface AST.

   This is deliberately an *independent* implementation of the language
   semantics: the property tests run random programs through both this
   interpreter and the SSA-level interpreter (AST -> CFG -> SSA ->
   Interp) and require identical observable behaviour, which validates
   the whole lowering and SSA-construction pipeline against the
   language's direct meaning. *)

type state = {
  env : (Ident.t, int) Hashtbl.t;
  arrays : (Ident.t * int list, int) Hashtbl.t;
  params : Ident.t -> int;
  rand : unit -> bool;
  mutable steps : int;
  fuel : int;
}

type outcome = Halted | Out_of_fuel

exception Stop
exception Exit_loop

let lookup st x =
  match Hashtbl.find_opt st.env x with
  | Some v -> v
  | None -> st.params x

let charge st =
  st.steps <- st.steps + 1;
  if st.steps > st.fuel then raise Stop

let rec eval st (e : Ast.expr) : int =
  charge st;
  match e with
  | Ast.Int n -> n
  | Ast.Var x -> lookup st x
  | Ast.Aref (a, idx) ->
    let idx = List.map (eval st) idx in
    Option.value ~default:0 (Hashtbl.find_opt st.arrays (a, idx))
  | Ast.Binop (op, a, b) ->
    let va = eval st a in
    let vb = eval st b in
    Ops.eval_binop op va vb
  | Ast.Neg a -> -eval st a

let eval_cond st (c : Ast.cond) : bool =
  match c with
  | Ast.Cmp (op, a, b) ->
    let va = eval st a in
    let vb = eval st b in
    Ops.eval_relop op va vb
  | Ast.Unknown -> st.rand ()

let rec exec st (s : Ast.stmt) : unit =
  charge st;
  match s with
  | Ast.Assign (x, e) -> Hashtbl.replace st.env x (eval st e)
  | Ast.Astore (a, idx, e) ->
    let idx = List.map (eval st) idx in
    let v = eval st e in
    Hashtbl.replace st.arrays (a, idx) v
  | Ast.If (c, t, e) -> exec_list st (if eval_cond st c then t else e)
  | Ast.Exit_if c -> if eval_cond st c then raise Exit_loop
  | Ast.Loop (_, body) -> (
    try
      while true do
        exec_list st body
      done
    with Exit_loop -> ())
  | Ast.For { var; lo; hi; step; body; _ } -> (
    (* Matches the lowering in Lower: lo then the bound are evaluated
       once, the exit test runs before the body, the increment after. *)
    let lo_v = eval st lo in
    let limit = eval st hi in
    Hashtbl.replace st.env var lo_v;
    try
      while true do
        let i = lookup st var in
        if (step > 0 && i > limit) || (step < 0 && i < limit) then raise Exit_loop;
        exec_list st body;
        Hashtbl.replace st.env var (lookup st var + step)
      done
    with Exit_loop -> ())

and exec_list st stmts = List.iter (exec st) stmts

(* [run program] executes the whole program. *)
let run ?(fuel = 100_000) ?(params = fun _ -> 0) ?(rand = fun () -> false)
    ?(arrays = []) (p : Ast.program) =
  let st =
    {
      env = Hashtbl.create 32;
      arrays =
        (let h = Hashtbl.create 64 in
         List.iter (fun (key, v) -> Hashtbl.replace h key v) arrays;
         h);
      params;
      rand;
      steps = 0;
      fuel;
    }
  in
  let outcome = try exec_list st p.Ast.stmts; Halted with Stop -> Out_of_fuel in
  (st, outcome)

(* [array_footprint st] is the final array state, sorted, for comparison
   with the SSA interpreter. *)
let array_footprint st =
  Hashtbl.fold (fun (a, idx) v acc -> (Ident.name a, idx, v) :: acc) st.arrays []
  |> List.sort compare
