(* Natural-loop detection and the loop-nesting forest.

   A back edge is an edge t -> h where h dominates t; the natural loop of
   h is h plus every block that can reach some t without passing through
   h. Loops sharing a header are merged. The forest orders loops by block
   containment; the induction-variable driver walks it inner-to-outer
   (paper §5.3: "induction variable recognition proceeds from the inner
   loops outward"). *)

type loop = {
  id : int;
  header : Label.t;
  name : string; (* source label when available, else "L@<header>" *)
  blocks : Label.Set.t;
  latches : Label.t list; (* in-loop sources of back edges to the header *)
  mutable parent : int option;
  mutable loop_children : int list;
  mutable depth : int; (* 1 for outermost *)
}

type t = {
  loops : loop array;
  roots : int list; (* outermost loops *)
  containing : int option array; (* innermost loop containing each block *)
}

let loop t id = t.loops.(id)
let num_loops t = Array.length t.loops
let roots t = t.roots
let all t = Array.to_list t.loops

(* [innermost t l] is the innermost loop containing block [l], if any. *)
let innermost t l = t.containing.(l)

let contains_block loop l = Label.Set.mem l loop.blocks

(* [find_by_name t name] finds a loop by its source label (e.g. "L18"). *)
let find_by_name t name =
  let found = ref None in
  Array.iter (fun lp -> if String.equal lp.name name then found := Some lp) t.loops;
  !found

(* Post-order over the forest: inner loops before their parents. *)
let postorder t =
  let order = ref [] in
  let rec visit id =
    let lp = t.loops.(id) in
    List.iter visit lp.loop_children;
    order := lp :: !order
  in
  List.iter visit t.roots;
  List.rev !order

let compute (cfg : Cfg.t) (dom : Dom.t) : t =
  let preds = Cfg.pred_table cfg in
  (* Collect back edges grouped by header. *)
  let back_edges : (Label.t, Label.t list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun l ->
      List.iter
        (fun s ->
          if Dom.is_reachable dom s && Dom.dominates dom s l then
            Hashtbl.replace back_edges s (l :: (Option.value ~default:[] (Hashtbl.find_opt back_edges s))))
        (Cfg.successors cfg l))
    (Dom.reverse_postorder dom);
  (* Natural loop of each header: reverse reachability from the latches. *)
  let headers = Hashtbl.fold (fun h _ acc -> h :: acc) back_edges [] in
  let headers = List.sort Label.compare headers in
  let loops =
    List.mapi
      (fun id header ->
        let latches = Hashtbl.find back_edges header in
        let blocks = ref (Label.Set.singleton header) in
        let rec pull l =
          if not (Label.Set.mem l !blocks) then begin
            blocks := Label.Set.add l !blocks;
            List.iter pull preds.(l)
          end
        in
        List.iter pull latches;
        let name =
          match (Cfg.block cfg header).Cfg.loop_name with
          | Some n -> n
          | None -> "L@" ^ Label.to_string header
        in
        {
          id;
          header;
          name;
          blocks = !blocks;
          latches = List.sort Label.compare latches;
          parent = None;
          loop_children = [];
          depth = 0;
        })
      headers
  in
  let loops = Array.of_list loops in
  (* Nesting: loop A is inside loop B iff A's header is in B's blocks and
     A <> B. Choose the smallest enclosing loop as parent. *)
  Array.iter
    (fun a ->
      let best = ref None in
      Array.iter
        (fun b ->
          if b.id <> a.id && Label.Set.mem a.header b.blocks then
            match !best with
            | Some c when Label.Set.cardinal c.blocks <= Label.Set.cardinal b.blocks -> ()
            | _ -> best := Some b)
        loops;
      match !best with
      | Some b ->
        a.parent <- Some b.id;
        b.loop_children <- a.id :: b.loop_children
      | None -> ())
    loops;
  Array.iter (fun lp -> lp.loop_children <- List.sort compare lp.loop_children) loops;
  let roots =
    Array.to_list loops
    |> List.filter (fun lp -> lp.parent = None)
    |> List.map (fun lp -> lp.id)
  in
  let rec set_depth d id =
    let lp = loops.(id) in
    lp.depth <- d;
    List.iter (set_depth (d + 1)) lp.loop_children
  in
  List.iter (set_depth 1) roots;
  (* Innermost containing loop per block: deepest loop whose block set
     includes it. *)
  let containing = Array.make (Cfg.num_blocks cfg) None in
  Array.iter
    (fun lp ->
      Label.Set.iter
        (fun l ->
          match containing.(l) with
          | Some other when loops.(other).depth >= lp.depth -> ()
          | _ -> containing.(l) <- Some lp.id)
        lp.blocks)
    loops;
  { loops; roots; containing }

(* [exit_edges cfg loop] is the list of (from, to) edges leaving [loop]. *)
let exit_edges cfg loop =
  Label.Set.fold
    (fun l acc ->
      List.fold_left
        (fun acc s -> if contains_block loop s then acc else (l, s) :: acc)
        acc (Cfg.successors cfg l))
    loop.blocks []

(* [instrs cfg loop] is every instruction in the loop's blocks. *)
let instrs cfg loop =
  Label.Set.fold (fun l acc -> acc @ (Cfg.block cfg l).Cfg.instrs) loop.blocks []

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iter
    (fun lp ->
      Format.fprintf fmt "loop %s: header=%a depth=%d blocks={%a} parent=%s@," lp.name
        Label.pp lp.header lp.depth
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
           Label.pp)
        (Label.Set.elements lp.blocks)
        (match lp.parent with None -> "-" | Some p -> string_of_int p))
    t.loops;
  Format.fprintf fmt "@]"
