(** Basic-block labels: dense integers, so block-indexed side tables can
    be plain arrays. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = int
module Set : Set.S with type elt = int
