(** Reference interpreter for SSA-form programs — the oracle the
    classification tests run against.

    Semantics notes: all phis of a block read their operands on the
    incoming edge simultaneously (so rotation patterns behave); '??'
    conditions read the supplied random stream; arrays are unbounded and
    zero-initialized; execution stops after [fuel] instruction steps. *)

type outcome = Halted | Out_of_fuel

type state = {
  ssa : Ssa.t;
  env : int Instr.Id.Table.t;
  params : Ident.t -> int;
  arrays : (Ident.t * int list, int) Hashtbl.t;
  rand : unit -> bool;
  iters : int array;
  activations : int array;
  mutable steps : int;
  mutable outcome : outcome;
}

(** [value st v] is the runtime value of an operand. *)
val value : state -> Instr.value -> int

(** [loop_iter st loop_id] is the 0-based iteration number of the loop's
    current activation (the paper's counter h). *)
val loop_iter : state -> int -> int

(** [loop_activation st loop_id] counts how many times the loop has been
    entered from outside (1-based once entered); monotonicity claims hold
    within one activation. *)
val loop_activation : state -> int -> int

val array_get : state -> Ident.t -> int list -> int
val array_set : state -> Ident.t -> int list -> int -> unit

(** [run ssa] executes from the entry block. [on_instr] is called after
    every instruction with the state and the computed value; [arrays]
    preloads cells; [params] supplies program inputs. *)
val run :
  ?fuel:int ->
  ?on_instr:(state -> Instr.t -> int -> unit) ->
  ?params:(Ident.t -> int) ->
  ?rand:(unit -> bool) ->
  ?arrays:((Ident.t * int list) * int) list ->
  Ssa.t ->
  state

(** [trace_of ssa targets] runs and collects, per target def, the
    (innermost-loop iteration, value) observations in order. *)
val trace_of :
  ?fuel:int ->
  ?params:(Ident.t -> int) ->
  ?rand:(unit -> bool) ->
  ?arrays:((Ident.t * int list) * int) list ->
  Ssa.t ->
  Instr.Id.Set.t ->
  state * (int * int) list Instr.Id.Map.t
