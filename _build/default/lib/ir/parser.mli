(** Recursive-descent parser for the loop language (grammar in the
    implementation header and README.md). Unlabelled loops receive fresh
    labels L1, L2, ... in source order. *)

exception Parse_error of string * Lexer.pos

(** [parse src] parses a whole program.
    @raise Lexer.Lex_error on lexical errors.
    @raise Parse_error on syntax errors. *)
val parse : string -> Ast.program

val parse_exn : string -> Ast.program

(** [parse_result src] is the error-message-producing variant. *)
val parse_result : string -> (Ast.program, string) result
