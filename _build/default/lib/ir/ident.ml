(* Source-level identifiers: interned strings with O(1) comparison.

   Interning keeps identifier equality cheap in the renaming and
   classification passes, which compare variables constantly. *)

type t = { name : string; id : int }

let table : (string, t) Hashtbl.t = Hashtbl.create 64
let next = ref 0

let of_string name =
  match Hashtbl.find_opt table name with
  | Some t -> t
  | None ->
    let t = { name; id = !next } in
    incr next;
    Hashtbl.add table name t;
    t

let name t = t.name
let compare a b = Stdlib.compare a.id b.id
let equal a b = a.id = b.id
let hash t = t.id
let pp fmt t = Format.pp_print_string fmt t.name

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
