(* Operator vocabulary shared by the surface AST and the tuple IR.

   The set matches the paper's Figure 2 table: AD, SB, MP, DV, EX, NG,
   plus the comparisons used by loop-exit conditions. *)

type binop = Add | Sub | Mul | Div | Exp

type relop = Lt | Le | Gt | Ge | Eq | Ne

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Exp -> "^"

let relop_to_string = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

(* [negate_relop r] is the relation that holds exactly when [r] does not:
   used to normalize loop-exit conditions (paper §5.2 table). *)
let negate_relop = function
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt
  | Eq -> Ne
  | Ne -> Eq

(* [swap_relop r] is the relation with its operands exchanged. *)
let swap_relop = function
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le
  | Eq -> Eq
  | Ne -> Ne

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then raise Division_by_zero else a / b
  | Exp ->
    if b < 0 then 0
    else begin
      let rec go acc a b =
        if b = 0 then acc
        else go (if b land 1 = 1 then acc * a else acc) (a * a) (b lsr 1)
      in
      go 1 a b
    end

let eval_relop op a b =
  match op with
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b
  | Eq -> a = b
  | Ne -> a <> b

let pp_binop fmt op = Format.pp_print_string fmt (binop_to_string op)
let pp_relop fmt op = Format.pp_print_string fmt (relop_to_string op)
