(* The flat tuple IR of the paper's Section 3: every instruction is an
   operation with operand values; an instruction's result is named by its
   id. Scalar variables appear as Load/Store instructions until SSA
   construction promotes them to direct def-use edges (the paper's
   "ssalink" resolution); array accesses stay as Aload/Astore. *)

module Id = struct
  type t = int

  let compare = Stdlib.compare
  let equal (a : t) b = a = b
  let hash (t : t) = t
  let to_string t = "%" ^ string_of_int t
  let pp fmt t = Format.pp_print_string fmt (to_string t)

  module Map = Map.Make (Int)
  module Set = Set.Make (Int)
  module Table = Hashtbl.Make (struct
    type t = int

    let equal (a : int) b = a = b
    let hash (t : int) = t
  end)
end

(* A value is an operand position: the result of another instruction, an
   integer literal (the paper's LT tuples, folded inline), or a symbolic
   program input never assigned before use. *)
type value =
  | Def of Id.t
  | Const of int
  | Param of Ident.t

type op =
  | Binop of Ops.binop (* args: [| a; b |] *)
  | Relop of Ops.relop (* args: [| a; b |]; result is 0/1 *)
  | Neg (* args: [| a |] *)
  | Phi (* args: one per predecessor, in predecessor order *)
  | Load of Ident.t (* scalar load; args: [||]; removed by SSA *)
  | Store of Ident.t (* scalar store; args: [| v |]; removed by SSA *)
  | Aload of Ident.t (* array load; args: indices *)
  | Astore of Ident.t (* array store; args: indices @ [ value ] *)
  | Rand (* opaque boolean source for '??' conditions *)

type t = { id : Id.t; op : op; mutable args : value array }

let value_equal a b =
  match (a, b) with
  | Def x, Def y -> Id.equal x y
  | Const x, Const y -> x = y
  | Param x, Param y -> Ident.equal x y
  | (Def _ | Const _ | Param _), _ -> false

let pp_value fmt = function
  | Def id -> Id.pp fmt id
  | Const n -> Format.pp_print_int fmt n
  | Param x -> Format.fprintf fmt "@@%a" Ident.pp x

let op_name = function
  | Binop Ops.Add -> "AD"
  | Binop Ops.Sub -> "SB"
  | Binop Ops.Mul -> "MP"
  | Binop Ops.Div -> "DV"
  | Binop Ops.Exp -> "EX"
  | Relop r -> "CMP" ^ Ops.relop_to_string r
  | Neg -> "NG"
  | Phi -> "PH"
  | Load _ -> "LD"
  | Store _ -> "ST"
  | Aload _ -> "LDX"
  | Astore _ -> "STX"
  | Rand -> "RAND"

let pp fmt { id; op; args } =
  let pp_args fmt args =
    Format.pp_print_array
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
      pp_value fmt args
  in
  match op with
  | Load x -> Format.fprintf fmt "%a = LD %a" Id.pp id Ident.pp x
  | Store x -> Format.fprintf fmt "%a = ST %a, %a" Id.pp id Ident.pp x pp_args args
  | Aload x -> Format.fprintf fmt "%a = LDX %a[%a]" Id.pp id Ident.pp x pp_args args
  | Astore x -> Format.fprintf fmt "%a = STX %a[%a]" Id.pp id Ident.pp x pp_args args
  | op -> Format.fprintf fmt "%a = %s %a" Id.pp id (op_name op) pp_args args

(* [is_pure op] holds when the instruction has no side effect and can be
   removed if unused. *)
let is_pure = function
  | Binop _ | Relop _ | Neg | Phi | Load _ | Aload _ -> true
  | Store _ | Astore _ | Rand -> false
