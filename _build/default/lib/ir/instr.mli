(** The flat tuple IR of the paper's §3: each instruction is an operation
    over operand values, named by its id. Scalar Load/Store instructions
    exist only between lowering and SSA construction (which promotes them
    to direct def-use edges); array accesses remain. *)

module Id : sig
  type t = int

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit

  module Map : Map.S with type key = int
  module Set : Set.S with type elt = int
  module Table : Hashtbl.S with type key = int
end

(** An operand: another instruction's result, an integer literal (the
    paper's LT tuples, folded inline), or a symbolic program input. *)
type value = Def of Id.t | Const of int | Param of Ident.t

type op =
  | Binop of Ops.binop  (** args: [| a; b |] *)
  | Relop of Ops.relop  (** args: [| a; b |]; result 0/1 *)
  | Neg  (** args: [| a |] *)
  | Phi  (** one arg per predecessor, in predecessor order *)
  | Load of Ident.t  (** scalar load; removed by SSA construction *)
  | Store of Ident.t  (** scalar store; removed by SSA construction *)
  | Aload of Ident.t  (** array load; args are the indices *)
  | Astore of Ident.t  (** array store; args are indices @ [value] *)
  | Rand  (** opaque boolean source backing '??' conditions *)

type t = { id : Id.t; op : op; mutable args : value array }

val value_equal : value -> value -> bool
val pp_value : Format.formatter -> value -> unit

(** [op_name op] is the paper's mnemonic (AD, SB, MP, DV, EX, NG, PH,
    LD, ST, ...). *)
val op_name : op -> string

val pp : Format.formatter -> t -> unit

(** [is_pure op] holds when the instruction has no side effect and may be
    deleted if unused. *)
val is_pure : op -> bool
