(** Source-level identifiers (variable and array names).

    Identifiers are interned: [of_string] returns the same value for the
    same name, so comparisons are integer comparisons. The intern table
    is process-global, which suits a single-compilation tool. *)

type t

(** [of_string name] interns [name]. *)
val of_string : string -> t

(** [name t] is the source spelling. *)
val name : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
