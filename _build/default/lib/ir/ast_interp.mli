(** Direct interpreter for the surface AST — an independent
    implementation of the language semantics used to cross-validate the
    lowering + SSA pipeline (AST semantics must equal SSA-interpreter
    semantics on every program). *)

type state = {
  env : (Ident.t, int) Hashtbl.t;
  arrays : (Ident.t * int list, int) Hashtbl.t;
  params : Ident.t -> int;
  rand : unit -> bool;
  mutable steps : int;
  fuel : int;
}

type outcome = Halted | Out_of_fuel

val run :
  ?fuel:int ->
  ?params:(Ident.t -> int) ->
  ?rand:(unit -> bool) ->
  ?arrays:((Ident.t * int list) * int) list ->
  Ast.program ->
  state * outcome

(** [array_footprint st] is the final array state, sorted, in the same
    shape the SSA interpreter's tests use. *)
val array_footprint : state -> (string * int list * int) list
