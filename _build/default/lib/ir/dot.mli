(** Graphviz (DOT) renderings for debugging and documentation. *)

(** [cfg_to_dot cfg]: blocks as record nodes, branch edges labelled T/F. *)
val cfg_to_dot : Cfg.t -> string

(** [ssa_to_dot ssa]: the def-use graph with the paper's operator
    mnemonics and SSA names, edges from operations to operands (the
    orientation of the paper's Figure 2). *)
val ssa_to_dot : Ssa.t -> string
