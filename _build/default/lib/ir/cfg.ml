(* Control-flow graph over the tuple IR.

   The CFG is mutable while it is being built (by [Lower] and by the SSA
   pass, which inserts and deletes instructions) and is treated as frozen
   by the analyses. Blocks are labelled with dense integers; instruction
   ids are dense too, so side tables are arrays or Hashtbls keyed by int. *)

type terminator =
  | Jump of Label.t
  | Branch of Instr.value * Label.t * Label.t (* cond <> 0 ? then : else *)
  | Halt

type block = {
  label : Label.t;
  mutable instrs : Instr.t list; (* in execution order *)
  mutable term : terminator;
  mutable loop_name : string option;
      (* set on loop-header blocks: the source label of the loop (e.g. "L7") *)
}

type t = {
  mutable blocks : block array; (* indexed by label *)
  entry : Label.t;
  mutable next_instr : int;
  (* Cache: instruction id -> (block, instr); rebuilt on demand. *)
  mutable index : (Label.t * Instr.t) Instr.Id.Table.t option;
}

let create () =
  let entry_block = { label = 0; instrs = []; term = Halt; loop_name = None } in
  { blocks = [| entry_block |]; entry = 0; next_instr = 0; index = None }

let entry t = t.entry
let block t label = t.blocks.(label)
let num_blocks t = Array.length t.blocks
let labels t = List.init (num_blocks t) (fun i -> i)

let invalidate t = t.index <- None

let add_block t =
  let label = Array.length t.blocks in
  let b = { label; instrs = []; term = Halt; loop_name = None } in
  t.blocks <- Array.append t.blocks [| b |];
  label

let fresh_instr_id t =
  let id = t.next_instr in
  t.next_instr <- id + 1;
  id

(* [append t label op args] creates an instruction at the end of [label]. *)
let append t label op args =
  let id = fresh_instr_id t in
  let instr = { Instr.id; op; args } in
  let b = t.blocks.(label) in
  b.instrs <- b.instrs @ [ instr ];
  invalidate t;
  instr

(* [prepend t label op args] creates an instruction at the start of
   [label]; used for phi insertion. *)
let prepend t label op args =
  let id = fresh_instr_id t in
  let instr = { Instr.id; op; args } in
  let b = t.blocks.(label) in
  b.instrs <- instr :: b.instrs;
  invalidate t;
  instr

let set_term t label term = (block t label).term <- term

let successors t label =
  match (block t label).term with
  | Jump l -> [ l ]
  | Branch (_, l1, l2) -> if Label.equal l1 l2 then [ l1 ] else [ l1; l2 ]
  | Halt -> []

(* Predecessors in a deterministic order (by block label, then position);
   phi argument order matches this order. *)
let predecessors t label =
  let preds = ref [] in
  Array.iter
    (fun b ->
      List.iter
        (fun s -> if Label.equal s label then preds := b.label :: !preds)
        (successors t b.label))
    t.blocks;
  List.sort_uniq Label.compare !preds

(* All predecessors, including duplicates when both branch targets are the
   same block (not produced by our lowering, but defensive). *)
let pred_table t =
  let n = num_blocks t in
  let preds = Array.make n [] in
  for l = n - 1 downto 0 do
    List.iter (fun s -> preds.(s) <- l :: preds.(s)) (successors t l)
  done;
  preds

let index t =
  match t.index with
  | Some idx -> idx
  | None ->
    let idx = Instr.Id.Table.create 256 in
    Array.iter
      (fun b ->
        List.iter (fun i -> Instr.Id.Table.replace idx i.Instr.id (b.label, i)) b.instrs)
      t.blocks;
    t.index <- Some idx;
    idx

(* [find_instr t id] is the instruction with the given id.
   @raise Not_found if it was deleted or never existed. *)
let find_instr t id = snd (Instr.Id.Table.find (index t) id)

let find_instr_opt t id =
  Option.map snd (Instr.Id.Table.find_opt (index t) id)

(* [block_of_instr t id] is the label of the block containing [id]. *)
let block_of_instr t id = fst (Instr.Id.Table.find (index t) id)

let iter_instrs t f =
  Array.iter (fun b -> List.iter (fun i -> f b.label i) b.instrs) t.blocks

let fold_instrs t f acc =
  Array.fold_left
    (fun acc b -> List.fold_left (fun acc i -> f acc b.label i) acc b.instrs)
    acc t.blocks

let num_instrs t = fold_instrs t (fun n _ _ -> n + 1) 0

(* [replace_instrs t label f] maps the instruction list of a block. *)
let replace_instrs t label f =
  let b = block t label in
  b.instrs <- f b.instrs;
  invalidate t

(* Reverse postorder over reachable blocks; analyses iterate in this
   order so forward dataflow converges fast. *)
let reverse_postorder t =
  let n = num_blocks t in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs l =
    if not visited.(l) then begin
      visited.(l) <- true;
      List.iter dfs (successors t l);
      order := l :: !order
    end
  in
  dfs t.entry;
  !order

let reachable t =
  let n = num_blocks t in
  let visited = Array.make n false in
  let rec dfs l =
    if not visited.(l) then begin
      visited.(l) <- true;
      List.iter dfs (successors t l)
    end
  in
  dfs t.entry;
  visited

let pp_terminator fmt = function
  | Jump l -> Format.fprintf fmt "jump %a" Label.pp l
  | Branch (v, l1, l2) ->
    Format.fprintf fmt "branch %a ? %a : %a" Instr.pp_value v Label.pp l1 Label.pp l2
  | Halt -> Format.pp_print_string fmt "halt"

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iter
    (fun b ->
      let header =
        match b.loop_name with
        | Some name -> Printf.sprintf " ; loop %s header" name
        | None -> ""
      in
      Format.fprintf fmt "@[<v 2>%a:%s@," Label.pp b.label header;
      List.iter (fun i -> Format.fprintf fmt "%a@," Instr.pp i) b.instrs;
      Format.fprintf fmt "%a@]@," pp_terminator b.term)
    t.blocks;
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t
