(* Dominator tree and dominance frontiers.

   Uses the Cooper–Harvey–Kennedy iterative algorithm on reverse
   postorder: simple, robust, and fast enough for the CFGs this library
   sees. Dominance frontiers follow Cytron et al., which is what the SSA
   phi-placement pass consumes. *)

type t = {
  idom : int array; (* idom.(l) = immediate dominator; entry maps to itself *)
  rpo_index : int array; (* position of each block in reverse postorder *)
  order : Label.t list; (* reverse postorder of reachable blocks *)
  reachable : bool array;
  children : Label.t list array; (* dominator-tree children *)
  frontier : Label.Set.t array;
}

let idom t l = t.idom.(l)
let children t l = t.children.(l)
let frontier t l = t.frontier.(l)
let reverse_postorder t = t.order
let is_reachable t l = t.reachable.(l)

(* [dominates t a b] holds when [a] dominates [b] (reflexively). *)
let dominates t a b =
  let rec walk b = if a = b then true else if b = t.idom.(b) then false else walk t.idom.(b) in
  walk b

let strictly_dominates t a b = a <> b && dominates t a b

let compute (cfg : Cfg.t) : t =
  let n = Cfg.num_blocks cfg in
  let order = Cfg.reverse_postorder cfg in
  let reachable = Cfg.reachable cfg in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i l -> rpo_index.(l) <- i) order;
  let preds = Cfg.pred_table cfg in
  let entry = Cfg.entry cfg in
  let idom = Array.make n (-1) in
  idom.(entry) <- entry;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_index.(!a) > rpo_index.(!b) do
        a := idom.(!a)
      done;
      while rpo_index.(!b) > rpo_index.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> entry then begin
          (* First processed predecessor that already has an idom. *)
          let processed = List.filter (fun p -> idom.(p) >= 0 && reachable.(p)) preds.(l) in
          match processed with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left (fun acc p -> intersect acc p) first rest in
            if idom.(l) <> new_idom then begin
              idom.(l) <- new_idom;
              changed := true
            end
        end)
      order
  done;
  let children = Array.make n [] in
  List.iter
    (fun l -> if l <> entry && idom.(l) >= 0 then children.(idom.(l)) <- l :: children.(idom.(l)))
    order;
  (* Dominance frontiers (Cytron et al. fig. 10): for each join point,
     walk up from each predecessor to the idom. *)
  let frontier = Array.make n Label.Set.empty in
  List.iter
    (fun l ->
      let ps = List.filter (fun p -> reachable.(p)) preds.(l) in
      if List.length ps >= 2 then
        List.iter
          (fun p ->
            let runner = ref p in
            while !runner <> idom.(l) do
              frontier.(!runner) <- Label.Set.add l frontier.(!runner);
              runner := idom.(!runner)
            done)
          ps)
    order;
  { idom; rpo_index; order; reachable; children; frontier }

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun l ->
      Format.fprintf fmt "%a: idom=%a df={%a}@," Label.pp l Label.pp t.idom.(l)
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
           Label.pp)
        (Label.Set.elements t.frontier.(l)))
    t.order;
  Format.fprintf fmt "@]"
