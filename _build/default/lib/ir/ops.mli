(** Operator vocabulary shared by the surface AST and the tuple IR — the
    paper's Figure 2 table (AD, SB, MP, DV, EX, NG) plus the comparisons
    used by loop-exit conditions. *)

type binop = Add | Sub | Mul | Div | Exp

type relop = Lt | Le | Gt | Ge | Eq | Ne

val binop_to_string : binop -> string
val relop_to_string : relop -> string

(** [negate_relop r] holds exactly when [r] does not (used to normalize
    loop-exit conditions, paper §5.2). *)
val negate_relop : relop -> relop

(** [swap_relop r] is the relation with operands exchanged. *)
val swap_relop : relop -> relop

(** Integer semantics: [Div] truncates toward zero and raises
    [Division_by_zero] on zero; [Exp] with a negative exponent is 0. *)
val eval_binop : binop -> int -> int -> int

val eval_relop : relop -> int -> int -> bool

val pp_binop : Format.formatter -> binop -> unit
val pp_relop : Format.formatter -> relop -> unit
