(** Dominator tree (Cooper–Harvey–Kennedy) and dominance frontiers
    (Cytron et al.), the substrate for phi placement and for the
    above/below-the-exit-test reasoning of paper §5.2-5.3. *)

type t

val compute : Cfg.t -> t

(** [idom t l] is the immediate dominator ([l] itself for the entry). *)
val idom : t -> Label.t -> Label.t

val children : t -> Label.t -> Label.t list
val frontier : t -> Label.t -> Label.Set.t
val reverse_postorder : t -> Label.t list
val is_reachable : t -> Label.t -> bool

(** [dominates t a b] — reflexive. *)
val dominates : t -> Label.t -> Label.t -> bool

val strictly_dominates : t -> Label.t -> Label.t -> bool
val pp : Format.formatter -> t -> unit
