(* Graphviz (DOT) renderings of the CFG and of per-loop SSA graphs, for
   `ivtool dot-cfg` / `dot-ssa` and for debugging analyses visually. *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\l"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* [cfg_to_dot cfg] renders blocks as record nodes with their
   instructions, and control edges (branch edges labelled T/F). *)
let cfg_to_dot (cfg : Cfg.t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph cfg {\n  node [shape=box, fontname=\"monospace\"];\n";
  List.iter
    (fun l ->
      let b = Cfg.block cfg l in
      let body =
        String.concat "\n"
          (List.map (fun i -> Format.asprintf "%a" Instr.pp i) b.Cfg.instrs)
      in
      let header =
        match b.Cfg.loop_name with
        | Some name -> Printf.sprintf "%s (loop %s)" (Label.to_string l) name
        | None -> Label.to_string l
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s [label=\"%s\\l%s\\l\"];\n" (Label.to_string l)
           (escape header) (escape body));
      match b.Cfg.term with
      | Cfg.Jump t ->
        Buffer.add_string buf
          (Printf.sprintf "  %s -> %s;\n" (Label.to_string l) (Label.to_string t))
      | Cfg.Branch (_, t1, t2) ->
        Buffer.add_string buf
          (Printf.sprintf "  %s -> %s [label=\"T\"];\n" (Label.to_string l)
             (Label.to_string t1));
        Buffer.add_string buf
          (Printf.sprintf "  %s -> %s [label=\"F\"];\n" (Label.to_string l)
             (Label.to_string t2))
      | Cfg.Halt -> ())
    (Cfg.labels cfg);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* [ssa_to_dot ssa] renders the whole program's def-use graph with the
   paper's operator mnemonics and SSA names; edges run from operations to
   their operands (the paper's Figure 2 orientation). *)
let ssa_to_dot (ssa : Ssa.t) : string =
  let cfg = Ssa.cfg ssa in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "digraph ssa {\n  node [shape=ellipse, fontname=\"monospace\"];\n";
  Cfg.iter_instrs cfg (fun _ (i : Instr.t) ->
      let name = Ssa.primary_name ssa i.Instr.id in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s = %s\"];\n" i.Instr.id (escape name)
           (escape (Instr.op_name i.Instr.op)));
      Array.iter
        (fun (v : Instr.value) ->
          match v with
          | Instr.Def d ->
            Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" i.Instr.id d)
          | Instr.Const c ->
            Buffer.add_string buf
              (Printf.sprintf "  n%d -> c%d_%d; c%d_%d [label=\"%d\", shape=plaintext];\n"
                 i.Instr.id i.Instr.id c i.Instr.id c c)
          | Instr.Param x ->
            Buffer.add_string buf
              (Printf.sprintf
                 "  n%d -> p_%s; p_%s [label=\"%s0\", shape=plaintext];\n" i.Instr.id
                 (Ident.name x) (Ident.name x) (Ident.name x)))
        i.Instr.args);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
