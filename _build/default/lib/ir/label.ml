(* Basic-block labels: dense integers so block-indexed tables are arrays. *)

type t = int

let compare = Stdlib.compare
let equal (a : t) b = a = b
let hash (t : t) = t
let to_string t = "B" ^ string_of_int t
let pp fmt t = Format.pp_print_string fmt (to_string t)

module Map = Map.Make (Int)
module Set = Set.Make (Int)
