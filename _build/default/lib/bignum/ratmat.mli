(** Dense matrices of exact rationals with Gauss–Jordan elimination.

    The paper's §4.3 recovers the closed-form coefficients of polynomial
    and geometric induction variables by "simple matrix inversion with
    rational arithmetic"; this module implements that kernel, plus the
    Vandermonde helpers the recovery uses directly. *)

type t

(** [create rows cols] is the all-zero matrix. *)
val create : int -> int -> t

(** [init rows cols f] fills entry [(i, j)] with [f i j]. *)
val init : int -> int -> (int -> int -> Rat.t) -> t

(** [of_rows rows] builds a matrix from row lists.
    @raise Invalid_argument on ragged or empty input. *)
val of_rows : Rat.t list list -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Rat.t
val set : t -> int -> int -> Rat.t -> unit
val copy : t -> t
val equal : t -> t -> bool

val identity : int -> t
val transpose : t -> t
val add : t -> t -> t
val mul : t -> t -> t
val scale : Rat.t -> t -> t

(** [mul_vec m v] is the matrix–vector product.
    @raise Invalid_argument on dimension mismatch. *)
val mul_vec : t -> Rat.t array -> Rat.t array

(** [inverse m] is [Some m'] with [m * m' = I], or [None] if singular.
    @raise Invalid_argument if [m] is not square. *)
val inverse : t -> t option

(** [solve m b] solves [m x = b] exactly; [None] if [m] is singular.
    @raise Invalid_argument on dimension mismatch or non-square [m]. *)
val solve : t -> Rat.t array -> Rat.t array option

(** [determinant m] by fraction-free-ish Gaussian elimination.
    @raise Invalid_argument if [m] is not square. *)
val determinant : t -> Rat.t

(** [vandermonde n] is the [(n+1) x (n+1)] matrix with entry [(h, k)] equal
    to [h^k] for [h, k] in [0..n] — the system relating the first [n+1]
    values of a degree-[n] polynomial induction variable to its
    coefficients (paper §4.3, matrix [A]). *)
val vandermonde : int -> t

(** [geometric_vandermonde n g] is the [(n+2) x (n+2)] matrix whose row [h]
    is [[h^0; ...; h^n; g^h]]: polynomial part of degree [n] plus one
    exponential column with base [g] (paper §4.3, the matrix inverted for
    [m = 3*m + 2*i + 1]). *)
val geometric_vandermonde : int -> Rat.t -> t

val pp : Format.formatter -> t -> unit
