(* Canonical rationals: den > 0, gcd(num, den) = 1, zero is 0/1. *)

type t = { num : Bigint.t; den : Bigint.t }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let g = Bigint.gcd num den in
    let num = Bigint.div num g and den = Bigint.div den g in
    if Bigint.sign den < 0 then { num = Bigint.neg num; den = Bigint.neg den }
    else { num; den }
  end

let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints n d = make (Bigint.of_int n) (Bigint.of_int d)

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let num t = t.num
let den t = t.den
let sign t = Bigint.sign t.num
let is_zero t = Bigint.is_zero t.num
let is_integer t = Bigint.equal t.den Bigint.one

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den
     (both denominators positive). *)
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den
let hash t = (Bigint.hash t.num * 31) lxor Bigint.hash t.den

let to_bigint t = Bigint.div t.num t.den
let to_bigint_exact t = if is_integer t then Some t.num else None

let to_int_exact t =
  if is_integer t then Bigint.to_int_opt t.num else None

let neg t = { t with num = Bigint.neg t.num }
let abs t = { t with num = Bigint.abs t.num }

let add a b =
  make
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)

let inv t =
  if is_zero t then raise Division_by_zero;
  make t.den t.num

let div a b = mul a (inv b)

let pow t n =
  if n >= 0 then { num = Bigint.pow t.num n; den = Bigint.pow t.den n }
  else inv { num = Bigint.pow t.num (-n); den = Bigint.pow t.den (-n) }

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor t =
  let q, r = Bigint.ediv_rem t.num t.den in
  ignore r;
  q

let ceil t = Bigint.neg (floor (neg t))

let to_string t =
  if is_integer t then Bigint.to_string t.num
  else Bigint.to_string t.num ^ "/" ^ Bigint.to_string t.den

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
