(** Exact rational numbers over {!Bigint}.

    The paper (§4.3) observes that the closed-form coefficients of
    polynomial and geometric induction variables "will always be
    rational"; this module supplies the exact field those coefficients
    live in. Values are kept in canonical form: the denominator is
    positive and coprime with the numerator; zero is [0/1]. *)

type t

val zero : t
val one : t
val minus_one : t

(** [make num den] is the canonical rational [num/den].
    @raise Division_by_zero if [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

val of_bigint : Bigint.t -> t
val of_int : int -> t

(** [of_ints num den] is [num/den]. @raise Division_by_zero if [den = 0]. *)
val of_ints : int -> int -> t

val num : t -> Bigint.t
val den : t -> Bigint.t

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val sign : t -> int
val is_zero : t -> bool

(** [is_integer t] holds when the denominator is 1. *)
val is_integer : t -> bool

(** [to_bigint t] truncates toward zero. *)
val to_bigint : t -> Bigint.t

(** [to_bigint_exact t] is [Some n] iff [t] is the integer [n]. *)
val to_bigint_exact : t -> Bigint.t option

(** [to_int_exact t] is [Some n] iff [t] is an integer fitting native int. *)
val to_int_exact : t -> int option

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero on division by zero. *)
val div : t -> t -> t

(** @raise Division_by_zero on inverting zero. *)
val inv : t -> t

(** [pow t n] for any native [n] (negative exponents invert).
    @raise Division_by_zero on [pow zero n] with [n < 0]. *)
val pow : t -> int -> t

val min : t -> t -> t
val max : t -> t -> t

(** [floor t] and [ceil t] as exact integers. *)
val floor : t -> Bigint.t

val ceil : t -> Bigint.t

(** Renders integers as plain decimals and other values as ["n/d"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
