type t = { rows : int; cols : int; data : Rat.t array }
(* Row-major dense storage. *)

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Ratmat.create";
  { rows; cols; data = Array.make (rows * cols) Rat.zero }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let of_rows = function
  | [] -> invalid_arg "Ratmat.of_rows: empty"
  | first :: _ as rows_l ->
    let cols = List.length first in
    if cols = 0 then invalid_arg "Ratmat.of_rows: empty row";
    let rows = List.length rows_l in
    let m = create rows cols in
    List.iteri
      (fun i row ->
        if List.length row <> cols then invalid_arg "Ratmat.of_rows: ragged";
        List.iteri (fun j v -> m.data.((i * cols) + j) <- v) row)
      rows_l;
    m

let rows m = m.rows
let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Ratmat.get: out of bounds";
  m.data.((i * m.cols) + j)

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Ratmat.set: out of bounds";
  m.data.((i * m.cols) + j) <- v

let copy m = { m with data = Array.copy m.data }

let equal a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 Rat.equal a.data b.data

let identity n = init n n (fun i j -> if i = j then Rat.one else Rat.zero)

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Ratmat.add";
  init a.rows a.cols (fun i j -> Rat.add (get a i j) (get b i j))

let mul a b =
  if a.cols <> b.rows then invalid_arg "Ratmat.mul: dimension mismatch";
  init a.rows b.cols (fun i j ->
      let acc = ref Rat.zero in
      for k = 0 to a.cols - 1 do
        acc := Rat.add !acc (Rat.mul (get a i k) (get b k j))
      done;
      !acc)

let scale c m = init m.rows m.cols (fun i j -> Rat.mul c (get m i j))

let mul_vec m v =
  if Array.length v <> m.cols then invalid_arg "Ratmat.mul_vec";
  Array.init m.rows (fun i ->
      let acc = ref Rat.zero in
      for j = 0 to m.cols - 1 do
        acc := Rat.add !acc (Rat.mul (get m i j) v.(j))
      done;
      !acc)

(* Gauss-Jordan elimination of [m] augmented with [aug] (side effects on
   both copies); returns false when a pivot cannot be found (singular). *)
let gauss_jordan m aug =
  let n = m.rows in
  let ok = ref true in
  let col = ref 0 in
  while !ok && !col < n do
    let c = !col in
    (* Find a pivot row at or below c. *)
    let pivot = ref (-1) in
    let r = ref c in
    while !pivot < 0 && !r < n do
      if not (Rat.is_zero (get m !r c)) then pivot := !r;
      incr r
    done;
    if !pivot < 0 then ok := false
    else begin
      let p = !pivot in
      if p <> c then begin
        (* Swap rows p and c in both matrices. *)
        for j = 0 to m.cols - 1 do
          let tmp = get m c j in
          set m c j (get m p j);
          set m p j tmp
        done;
        for j = 0 to aug.cols - 1 do
          let tmp = get aug c j in
          set aug c j (get aug p j);
          set aug p j tmp
        done
      end;
      let inv_pivot = Rat.inv (get m c c) in
      for j = 0 to m.cols - 1 do
        set m c j (Rat.mul inv_pivot (get m c j))
      done;
      for j = 0 to aug.cols - 1 do
        set aug c j (Rat.mul inv_pivot (get aug c j))
      done;
      for i = 0 to n - 1 do
        if i <> c && not (Rat.is_zero (get m i c)) then begin
          let factor = get m i c in
          for j = 0 to m.cols - 1 do
            set m i j (Rat.sub (get m i j) (Rat.mul factor (get m c j)))
          done;
          for j = 0 to aug.cols - 1 do
            set aug i j (Rat.sub (get aug i j) (Rat.mul factor (get aug c j)))
          done
        end
      done;
      incr col
    end
  done;
  !ok

let inverse m =
  if m.rows <> m.cols then invalid_arg "Ratmat.inverse: not square";
  let work = copy m in
  let aug = identity m.rows in
  if gauss_jordan work aug then Some aug else None

let solve m b =
  if m.rows <> m.cols then invalid_arg "Ratmat.solve: not square";
  if Array.length b <> m.rows then invalid_arg "Ratmat.solve: bad vector";
  let work = copy m in
  let aug = init m.rows 1 (fun i _ -> b.(i)) in
  if gauss_jordan work aug then Some (Array.init m.rows (fun i -> get aug i 0))
  else None

let determinant m =
  if m.rows <> m.cols then invalid_arg "Ratmat.determinant: not square";
  let n = m.rows in
  let work = copy m in
  let det = ref Rat.one in
  (try
     for c = 0 to n - 1 do
       (* Partial pivot. *)
       let pivot = ref (-1) in
       for r = c to n - 1 do
         if !pivot < 0 && not (Rat.is_zero (get work r c)) then pivot := r
       done;
       if !pivot < 0 then begin
         det := Rat.zero;
         raise Exit
       end;
       if !pivot <> c then begin
         for j = 0 to n - 1 do
           let tmp = get work c j in
           set work c j (get work !pivot j);
           set work !pivot j tmp
         done;
         det := Rat.neg !det
       end;
       det := Rat.mul !det (get work c c);
       let inv_pivot = Rat.inv (get work c c) in
       for i = c + 1 to n - 1 do
         let factor = Rat.mul (get work i c) inv_pivot in
         if not (Rat.is_zero factor) then
           for j = c to n - 1 do
             set work i j (Rat.sub (get work i j) (Rat.mul factor (get work c j)))
           done
       done
     done
   with Exit -> ());
  !det

let vandermonde n =
  init (n + 1) (n + 1) (fun h k ->
      if k = 0 then Rat.one else Rat.pow (Rat.of_int h) k)

let geometric_vandermonde n g =
  init (n + 2) (n + 2) (fun h k ->
      if k <= n then
        if k = 0 then Rat.one else Rat.pow (Rat.of_int h) k
      else Rat.pow g h)

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "@[<h>[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf fmt ",@ ";
      Rat.pp fmt (get m i j)
    done;
    Format.fprintf fmt "]@]";
    if i < m.rows - 1 then Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
