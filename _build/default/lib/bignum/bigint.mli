(** Arbitrary-precision signed integers.

    The closed-form recovery of polynomial and geometric induction
    variables (paper §4.3) inverts Vandermonde-style matrices with exact
    rational arithmetic; intermediate determinants overflow native
    integers quickly, so this module provides an exact integer kernel.

    Values are immutable. The representation is sign–magnitude with the
    magnitude stored little-endian in base [2^30]. *)

type t

val zero : t
val one : t
val minus_one : t
val two : t

(** [of_int n] converts an OCaml native integer. *)
val of_int : int -> t

(** [to_int t] converts back to a native integer.
    @raise Failure if the value does not fit in an OCaml [int]. *)
val to_int : t -> int

(** [to_int_opt t] is [Some n] when [t] fits in a native [int]. *)
val to_int_opt : t -> int option

(** [of_string s] parses an optionally-signed decimal literal.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val sign : t -> int (** -1, 0 or 1 *)

val is_zero : t -> bool
val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is [(q, r)] with [a = q*b + r], [|r| < |b|], and [r]
    having the sign of [a] (truncated division, like OCaml's [/] and
    [mod]). @raise Division_by_zero if [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [ediv_rem a b] is Euclidean division: the remainder is always
    non-negative. *)
val ediv_rem : t -> t -> t * t

(** [gcd a b] is the non-negative greatest common divisor; [gcd zero zero]
    is [zero]. *)
val gcd : t -> t -> t

(** [pow base n] raises to a non-negative native exponent.
    @raise Invalid_argument if [n < 0]. *)
val pow : t -> int -> t

val succ : t -> t
val pred : t -> t
val min : t -> t -> t
val max : t -> t -> t

(** Number of decimal digits of the magnitude (at least 1). *)
val decimal_digits : t -> int

val pp : Format.formatter -> t -> unit

(** Infix aliases, intended for local [open Bigint.Infix]. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
