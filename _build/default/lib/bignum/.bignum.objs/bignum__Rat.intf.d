lib/bignum/rat.mli: Bigint Format
