lib/bignum/ratmat.mli: Format Rat
