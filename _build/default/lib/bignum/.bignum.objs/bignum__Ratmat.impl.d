lib/bignum/ratmat.ml: Array Format List Rat
