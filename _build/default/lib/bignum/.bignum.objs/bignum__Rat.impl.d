lib/bignum/rat.ml: Bigint Format
