(** Symbolic values: canonical multivariate polynomials with rational
    coefficients over "region constants" — program inputs and
    loop-invariant instruction results.

    The classifier manipulates initial values and steps symbolically (the
    paper represents an initial value "symbolically if it cannot be
    determined"); canonical forms make symbolic equality a structural
    comparison, which the Fig-3 same-offset rule and the wrap-around
    promotion check rely on. *)

open Bignum

type atom =
  | Param of Ir.Ident.t  (** program input, e.g. "n" *)
  | Def of Ir.Instr.Id.t  (** loop-invariant instruction result *)

(** Parameters order by name (printing is then independent of interning
    order); defs by instruction id. *)
val atom_compare : atom -> atom -> int

val atom_equal : atom -> atom -> bool

(** A monomial: atoms with positive powers, sorted. *)
type mono = (atom * int) list

val mono_compare : mono -> mono -> int

(** Sorted terms with non-zero coefficients; the empty list is zero and
    the empty monomial is the constant term. The representation is exposed
    (the classifier's effect analysis walks terms directly). *)
type t = (mono * Rat.t) list

val zero : t
val one : t
val of_rat : Rat.t -> t
val of_int : int -> t
val atom : atom -> t
val param : Ir.Ident.t -> t
val def : Ir.Instr.Id.t -> t

val is_zero : t -> bool

(** [const t] is [Some c] when [t] is the constant [c]. *)
val const : t -> Rat.t option

val is_const : t -> bool

(** [const_int t] is the value as a native integer, when it is one. *)
val const_int : t -> int option

val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val scale : Rat.t -> t -> t
val neg : t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Invalid_argument on negative exponents. *)
val pow : t -> int -> t

(** [atoms t] lists the distinct atoms of [t]. *)
val atoms : t -> atom list

(** [eval lookup t] evaluates with atom values from [lookup]; [None] if
    any atom is unknown. *)
val eval : (atom -> Rat.t option) -> t -> Rat.t option

(** [subst lookup t] replaces atoms by symbolic values where provided. *)
val subst : (atom -> t option) -> t -> t

(** [degree_in a t] is the highest power of [a] in [t]. *)
val degree_in : atom -> t -> int

val pp_atom : Format.formatter -> atom -> unit

(** [pp_with names] renders [Def] atoms through [names] (so "%14" can
    print as "k2"). *)
val pp_with : (Ir.Instr.Id.t -> string) -> Format.formatter -> t -> unit

val pp : Format.formatter -> t -> unit
val to_string : t -> string
