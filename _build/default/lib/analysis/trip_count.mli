(** Trip counts of countable loops (paper §5.2): the loop-exit comparison
    is normalized to "exit when margin <= 0", the margin classified, and
    for a linear sequence (L, i, s) the count is 0 / ceil(i / -s) /
    infinite by the sign table. *)

open Bignum

type count =
  | Finite of Bigint.t
  | Symbolic of Sym.t  (** exact count, assuming it is positive *)
  | Infinite
  | Unknown_count

type t = {
  count : count;
  max_count : count;
      (** an upper bound on the trips (from the earliest countable exit
          of a multi-exit loop — the paper's "maximum trip count");
          equals [count] when the count is exact *)
  exit_block : Ir.Label.t option;  (** the single counted exit branch *)
  assumes_positive : bool;  (** symbolic count: zero trips not ruled out *)
}

val unknown : t
val pp_count : Format.formatter -> count -> unit
val pp : Format.formatter -> t -> unit

(** [pp_with names] renders symbolic counts through an SSA-name resolver. *)
val pp_with : (Ir.Instr.Id.t -> string) -> Format.formatter -> t -> unit

(** [compute ctx] finds the trip count of [ctx]'s loop from its
    classification table. *)
val compute : Classify.ctx -> t

(** [count_sym t] is the count as a symbolic value, when exact. *)
val count_sym : t -> Sym.t option

(** [count_int t] is the count as a native int, when finite. *)
val count_int : t -> int option

(** [max_count_int t] is a native-int upper bound, when one is known. *)
val max_count_int : t -> int option
