(* The classical induction-variable detection the paper positions itself
   against ([ASU86] §10, [CK77, ACK81]): find *basic* induction variables
   (variables whose only assignments in the loop are i := i +- c with c
   loop invariant), then grow families of *derived* variables j := c*i + d
   by repeated scanning until no change.

   This runs on the pre-SSA CFG (scalar Load/Store still present), which
   is the representation the classical algorithm assumes. Two properties
   matter for the benchmarks:

     - it is *iterative*: a chain of k derived variables announced in
       reverse program order needs k scans (the paper's algorithm is a
       single Tarjan pass);
     - it is *less general*: mutually-defined pairs (loop L2), conditional
       same-offset updates (Fig 3), wrap-around, periodic, monotonic and
       non-linear variables are all missed by construction. *)

type derived = {
  var : Ir.Ident.t;
  base : Ir.Ident.t; (* the induction variable it derives from *)
  scale : int;
  offset : int; (* value = scale * base + offset at its definition *)
}

type result = {
  basic : (Ir.Ident.t * int) list; (* variable, step *)
  derived : derived list;
  passes : int; (* scans over the loop body until fixpoint *)
}

let stores_in_loop cfg (loop : Ir.Loops.loop) =
  Ir.Label.Set.fold
    (fun l acc ->
      List.fold_left
        (fun acc (i : Ir.Instr.t) ->
          match i.Ir.Instr.op with
          | Ir.Instr.Store x -> (x, i) :: acc
          | _ -> acc)
        acc (Ir.Cfg.block cfg l).Ir.Cfg.instrs)
    loop.Ir.Loops.blocks []

(* A value is loop invariant when it depends on no store inside the
   loop: constants, loads of unmodified variables, and arithmetic over
   invariants. *)
let make_invariance cfg (loop : Ir.Loops.loop) modified =
  let memo : bool Ir.Instr.Id.Table.t = Ir.Instr.Id.Table.create 64 in
  let rec value_invariant (v : Ir.Instr.value) =
    match v with
    | Ir.Instr.Const _ | Ir.Instr.Param _ -> true
    | Ir.Instr.Def d -> (
      match Ir.Instr.Id.Table.find_opt memo d with
      | Some b -> b
      | None ->
        Ir.Instr.Id.Table.replace memo d false (* cycles are variant *);
        let b =
          match Ir.Cfg.find_instr_opt cfg d with
          | None -> false
          | Some instr -> (
            let in_loop =
              Ir.Label.Set.mem (Ir.Cfg.block_of_instr cfg d) loop.Ir.Loops.blocks
            in
            if not in_loop then true
            else
              match instr.Ir.Instr.op with
              | Ir.Instr.Load x -> not (Ir.Ident.Set.mem x modified)
              | Ir.Instr.Binop _ | Ir.Instr.Neg | Ir.Instr.Relop _ ->
                Array.for_all value_invariant instr.Ir.Instr.args
              | _ -> false)
        in
        Ir.Instr.Id.Table.replace memo d b;
        b)
  in
  value_invariant

(* Decompose a stored value as  scale * (load of some var) + offset  with
   constant scale/offset — the classical "j := c*i + d" patterns. *)
let rec linear_form cfg invariant (v : Ir.Instr.value) :
    (Ir.Ident.t * int * int) option =
  match v with
  | Ir.Instr.Const _ | Ir.Instr.Param _ -> None
  | Ir.Instr.Def d -> (
    match Ir.Cfg.find_instr_opt cfg d with
    | None -> None
    | Some instr -> (
      let const_of (v : Ir.Instr.value) =
        match v with Ir.Instr.Const c -> Some c | _ -> None
      in
      match instr.Ir.Instr.op with
      | Ir.Instr.Load x -> Some (x, 1, 0)
      | Ir.Instr.Neg -> (
        match linear_form cfg invariant instr.Ir.Instr.args.(0) with
        | Some (x, s, o) -> Some (x, -s, -o)
        | None -> None)
      | Ir.Instr.Binop Ir.Ops.Add -> (
        let a = instr.Ir.Instr.args.(0) and b = instr.Ir.Instr.args.(1) in
        match (linear_form cfg invariant a, const_of b) with
        | Some (x, s, o), Some c -> Some (x, s, o + c)
        | _ -> (
          match (const_of a, linear_form cfg invariant b) with
          | Some c, Some (x, s, o) -> Some (x, s, o + c)
          | _ -> None))
      | Ir.Instr.Binop Ir.Ops.Sub -> (
        let a = instr.Ir.Instr.args.(0) and b = instr.Ir.Instr.args.(1) in
        match (linear_form cfg invariant a, const_of b) with
        | Some (x, s, o), Some c -> Some (x, s, o - c)
        | _ -> (
          match (const_of a, linear_form cfg invariant b) with
          | Some c, Some (x, s, o) -> Some (x, -s, c - o)
          | _ -> None))
      | Ir.Instr.Binop Ir.Ops.Mul -> (
        let a = instr.Ir.Instr.args.(0) and b = instr.Ir.Instr.args.(1) in
        match (linear_form cfg invariant a, const_of b) with
        | Some (x, s, o), Some c -> Some (x, s * c, o * c)
        | _ -> (
          match (const_of a, linear_form cfg invariant b) with
          | Some c, Some (x, s, o) -> Some (x, s * c, o * c)
          | _ -> None))
      | _ -> None))

(* The increment pattern for basic induction variables: x := x + c or
   x := x - c with c a loop-invariant value. *)
let increment_of cfg invariant x (store : Ir.Instr.t) : Ir.Instr.value option =
  let stored = store.Ir.Instr.args.(0) in
  match stored with
  | Ir.Instr.Def d -> (
    match Ir.Cfg.find_instr_opt cfg d with
    | Some { Ir.Instr.op = Ir.Instr.Binop Ir.Ops.Add; args; _ } -> (
      let load_of_x (v : Ir.Instr.value) =
        match v with
        | Ir.Instr.Def d -> (
          match Ir.Cfg.find_instr_opt cfg d with
          | Some { Ir.Instr.op = Ir.Instr.Load y; _ } -> Ir.Ident.equal x y
          | _ -> false)
        | _ -> false
      in
      if load_of_x args.(0) && invariant args.(1) then Some args.(1)
      else if load_of_x args.(1) && invariant args.(0) then Some args.(0)
      else None)
    | Some { Ir.Instr.op = Ir.Instr.Binop Ir.Ops.Sub; args; _ } -> (
      let load_of_x (v : Ir.Instr.value) =
        match v with
        | Ir.Instr.Def d -> (
          match Ir.Cfg.find_instr_opt cfg d with
          | Some { Ir.Instr.op = Ir.Instr.Load y; _ } -> Ir.Ident.equal x y
          | _ -> false)
        | _ -> false
      in
      if load_of_x args.(0) && invariant args.(1) then Some args.(1) else None)
    | _ -> None)
  | Ir.Instr.Const _ | Ir.Instr.Param _ -> None

(* [find cfg loop] runs the classical detection on one loop. *)
let find (cfg : Ir.Cfg.t) (loop : Ir.Loops.loop) : result =
  let stores = stores_in_loop cfg loop in
  let modified =
    List.fold_left (fun acc (x, _) -> Ir.Ident.Set.add x acc) Ir.Ident.Set.empty stores
  in
  let invariant = make_invariance cfg loop modified in
  (* Basic IVs: every store to x is an increment by an invariant. *)
  let by_var : (Ir.Ident.t, Ir.Instr.t list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (x, i) ->
      Hashtbl.replace by_var x (i :: Option.value ~default:[] (Hashtbl.find_opt by_var x)))
    stores;
  let basic = ref [] in
  Hashtbl.iter
    (fun x defs ->
      (* The textbook rule: exactly one assignment in the loop, of the
         form x := x +- c. (Multiple or conditional assignments — e.g.
         the paper's Fig 3 — disqualify the variable classically.) *)
      match defs with
      | [ def ] -> (
        match increment_of cfg invariant x def with
        | Some inc ->
          let step = match inc with Ir.Instr.Const c -> c | _ -> 0 in
          basic := (x, step) :: !basic
        | None -> ())
      | _ -> ())
    by_var;
  let is_iv : (Ir.Ident.t, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (x, _) -> Hashtbl.replace is_iv x ()) !basic;
  (* Derived IVs: iterate scans until fixpoint (the classical family
     growth); record how many passes it took. *)
  let derived = ref [] in
  let passes = ref 0 in
  let changed = ref true in
  let body_instrs =
    Ir.Label.Set.elements loop.Ir.Loops.blocks
    |> List.sort Ir.Label.compare
    |> List.concat_map (fun l -> (Ir.Cfg.block cfg l).Ir.Cfg.instrs)
  in
  while !changed do
    changed := false;
    incr passes;
    List.iter
      (fun (i : Ir.Instr.t) ->
        match i.Ir.Instr.op with
        | Ir.Instr.Store x
          when (not (Hashtbl.mem is_iv x))
               && List.length (Option.value ~default:[] (Hashtbl.find_opt by_var x)) = 1
          -> (
          match linear_form cfg invariant i.Ir.Instr.args.(0) with
          | Some (base, scale, offset)
            when Hashtbl.mem is_iv base && not (Ir.Ident.equal base x) ->
            Hashtbl.replace is_iv x ();
            derived := { var = x; base; scale; offset } :: !derived;
            changed := true
          | _ -> ())
        | _ -> ())
      body_instrs
  done;
  { basic = !basic; derived = !derived; passes = !passes }

(* [find_all cfg] runs the detection on every loop of a (pre-SSA) CFG. *)
let find_all (cfg : Ir.Cfg.t) : (Ir.Loops.loop * result) list =
  let dom = Ir.Dom.compute cfg in
  let loops = Ir.Loops.compute cfg dom in
  List.map (fun lp -> (lp, find cfg lp)) (Ir.Loops.postorder loops)

let iv_count r = List.length r.basic + List.length r.derived

let pp fmt r =
  Format.fprintf fmt "@[<v>basic:";
  List.iter
    (fun (x, step) -> Format.fprintf fmt " %a(step %d)" Ir.Ident.pp x step)
    r.basic;
  Format.fprintf fmt "@,derived:";
  List.iter
    (fun d ->
      Format.fprintf fmt " %a=%d*%a+%d" Ir.Ident.pp d.var d.scale Ir.Ident.pp d.base
        d.offset)
    r.derived;
  Format.fprintf fmt "@,passes: %d@]" r.passes
