lib/analysis/baseline.mli: Format Ir
