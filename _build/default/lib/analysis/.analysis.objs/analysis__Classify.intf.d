lib/analysis/classify.mli: Ir Ivclass Ssa_graph Sym
