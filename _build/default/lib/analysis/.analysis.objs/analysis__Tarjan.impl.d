lib/analysis/tarjan.ml: Hashtbl List Stdlib
