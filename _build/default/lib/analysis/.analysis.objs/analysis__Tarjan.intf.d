lib/analysis/tarjan.mli:
