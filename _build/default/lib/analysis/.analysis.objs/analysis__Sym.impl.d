lib/analysis/sym.ml: Bignum Format Ir List Option Rat Stdlib String
