lib/analysis/algebra.mli: Bigint Bignum Ivclass Rat Sym
