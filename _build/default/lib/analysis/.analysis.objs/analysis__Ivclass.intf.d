lib/analysis/ivclass.mli: Bignum Format Rat Sym
