lib/analysis/sym.mli: Bignum Format Ir Rat
