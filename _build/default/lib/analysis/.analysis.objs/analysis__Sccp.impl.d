lib/analysis/sccp.ml: Array Hashtbl Ir List Option Queue
