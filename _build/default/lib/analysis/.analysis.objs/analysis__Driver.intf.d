lib/analysis/driver.mli: Format Ir Ivclass Sccp Ssa_graph Sym Trip_count
