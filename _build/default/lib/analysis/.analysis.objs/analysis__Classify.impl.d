lib/analysis/classify.ml: Algebra Array Bignum Closed_form Ir Ivclass List Option Rat Ssa_graph Sym Tarjan
