lib/analysis/closed_form.mli: Bignum Ivclass Rat Sym
