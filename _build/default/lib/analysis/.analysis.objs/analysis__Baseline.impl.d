lib/analysis/baseline.ml: Array Format Hashtbl Ir List Option
