lib/analysis/ivclass.ml: Array Bignum Format Ir List Rat Stdlib String Sym
