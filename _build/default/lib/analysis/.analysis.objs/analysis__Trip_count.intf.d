lib/analysis/trip_count.mli: Bigint Bignum Classify Format Ir Sym
