lib/analysis/closed_form.ml: Array Bignum Ivclass List Rat Ratmat Stdlib Sym
