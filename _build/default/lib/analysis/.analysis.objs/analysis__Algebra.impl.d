lib/analysis/algebra.ml: Array Bigint Bignum Fun Ivclass List Option Rat Stdlib Sym
