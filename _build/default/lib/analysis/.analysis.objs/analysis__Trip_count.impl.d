lib/analysis/trip_count.ml: Algebra Array Bigint Bignum Classify Format Ir Ivclass List Rat Sym
