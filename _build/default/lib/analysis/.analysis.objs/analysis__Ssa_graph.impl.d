lib/analysis/ssa_graph.ml: Array Format Ir List Option Sym
