lib/analysis/driver.ml: Algebra Array Bignum Classify Format Ir Ivclass List Option Sccp Ssa_graph Sym Trip_count
