lib/analysis/ssa_graph.mli: Format Ir Sym
