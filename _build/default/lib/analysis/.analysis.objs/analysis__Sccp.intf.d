lib/analysis/sccp.mli: Ir
