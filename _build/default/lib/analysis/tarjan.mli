(** Tarjan's strongly-connected-components algorithm [Tar72], iterative.

    The emission order is the property the classifier relies on: because
    SSA-graph edges point from operations to their operands, a component
    is emitted only after every component it can reach — so when the
    classifier sees a region, all its source operands are classified. *)

type 'a graph = {
  vertices : 'a list;
  edges : 'a -> 'a list;
  key : 'a -> int;  (** injective on the vertices *)
}

(** [sccs g]: components in reverse topological order of the condensation
    (operands first); members in discovery order. *)
val sccs : 'a graph -> 'a list list

(** [is_trivial g comp] holds for single nodes without a self edge. *)
val is_trivial : 'a graph -> 'a list -> bool

(** O(V·E) reference implementation, for the property tests. *)
val sccs_naive : 'a graph -> 'a list list
