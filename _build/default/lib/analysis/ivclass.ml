(* The classification lattice: every integer scalar in a loop is
   classified as one of the paper's variable kinds.

   Iteration numbering convention: [h] counts executions of the loop
   header within one activation of the loop, starting at 0 (the paper's
   "basic loop counter h ... that starts at zero"). A classification
   predicts the value an instruction computes during iteration [h]. *)

open Bignum

type dir = Increasing | Decreasing

type t =
  | Unknown
  | Invariant of Sym.t (* same value on every iteration *)
  | Linear of linear
  | Poly of poly
  | Geometric of geometric
  | Wrap of wrap
  | Periodic of periodic
  | Monotonic of monotonic

and linear = {
  loop : int;
  base : t; (* value at h = 0: [Invariant s], or an outer-loop
               classification for multiloop IVs (paper's nested tuples) *)
  step : Sym.t; (* loop-invariant increment per iteration *)
}

and poly = {
  loop : int;
  coeffs : Sym.t array; (* value(h) = sum coeffs.(k) * h^k; degree >= 2 *)
}

and geometric = {
  loop : int;
  gcoeffs : Sym.t array; (* polynomial part *)
  ratio : Rat.t; (* exponential base, not in {0, 1} *)
  gcoeff : Sym.t; (* value(h) = sum gcoeffs.(k) h^k + gcoeff * ratio^h *)
}

and wrap = {
  loop : int;
  order : int; (* iterations before the underlying class applies *)
  inner : t; (* value(h) = inner(h - order) for h >= order *)
  initials : Sym.t list; (* values during iterations 0 .. order-1 *)
}

and periodic = {
  loop : int;
  period : int;
  values : Sym.t array; (* the rotating tuple, anchored at phase 0 *)
  phase : int; (* value(h) = values.((h + phase) mod period) *)
}

and monotonic = {
  loop : int;
  dir : dir;
  strict : bool;
  family : int; (* instruction id of the region's loop-header phi *)
}

(* Structural equality (with symbolic equality of coefficients). *)
let rec equal a b =
  match (a, b) with
  | Unknown, Unknown -> true
  | Invariant x, Invariant y -> Sym.equal x y
  | Linear x, Linear y ->
    x.loop = y.loop && equal x.base y.base && Sym.equal x.step y.step
  | Poly x, Poly y ->
    x.loop = y.loop
    && Array.length x.coeffs = Array.length y.coeffs
    && Array.for_all2 Sym.equal x.coeffs y.coeffs
  | Geometric x, Geometric y ->
    x.loop = y.loop
    && Array.length x.gcoeffs = Array.length y.gcoeffs
    && Array.for_all2 Sym.equal x.gcoeffs y.gcoeffs
    && Rat.equal x.ratio y.ratio && Sym.equal x.gcoeff y.gcoeff
  | Wrap x, Wrap y ->
    x.loop = y.loop && x.order = y.order && equal x.inner y.inner
    && List.length x.initials = List.length y.initials
    && List.for_all2 Sym.equal x.initials y.initials
  | Periodic x, Periodic y ->
    x.loop = y.loop && x.period = y.period && x.phase = y.phase
    && Array.length x.values = Array.length y.values
    && Array.for_all2 Sym.equal x.values y.values
  | Monotonic x, Monotonic y ->
    x.loop = y.loop && x.dir = y.dir && x.strict = y.strict && x.family = y.family
  | ( ( Unknown | Invariant _ | Linear _ | Poly _ | Geometric _ | Wrap _
      | Periodic _ | Monotonic _ ),
      _ ) ->
    false

(* [linear loop base step] smart-constructs a linear IV; a zero step over
   an invariant base collapses to that invariant. *)
let linear loop base step =
  match base with
  | Invariant s when Sym.is_zero step -> Invariant s
  | _ -> Linear { loop; base; step }

(* [poly loop coeffs] normalizes: drops trailing zero coefficients and
   collapses to Linear / Invariant when the degree allows. *)
let poly loop coeffs =
  let n = Array.length coeffs in
  let rec top i = if i > 0 && Sym.is_zero coeffs.(i - 1) then top (i - 1) else i in
  let n' = top n in
  if n' = 0 then Invariant Sym.zero
  else if n' = 1 then Invariant coeffs.(0)
  else if n' = 2 then Linear { loop; base = Invariant coeffs.(0); step = coeffs.(1) }
  else Poly { loop; coeffs = Array.sub coeffs 0 n' }

(* [geometric loop gcoeffs ratio gcoeff] normalizes degenerate ratios
   and strips trailing zero polynomial coefficients (e.g. the quadratic
   term of the paper's m = 3m + 2i + 1 that solves to zero). *)
let geometric loop gcoeffs ratio gcoeff =
  let gcoeffs =
    let n = Array.length gcoeffs in
    let rec top i = if i > 0 && Sym.is_zero gcoeffs.(i - 1) then top (i - 1) else i in
    let n' = if n = 0 then 0 else Stdlib.max 1 (top n) in
    if n' = n then gcoeffs else Array.sub gcoeffs 0 n'
  in
  if Sym.is_zero gcoeff then poly loop gcoeffs
  else if Rat.equal ratio Rat.one then begin
    (* c * 1^h is invariant: fold into the constant coefficient. *)
    let coeffs = Array.copy gcoeffs in
    let coeffs = if Array.length coeffs = 0 then [| Sym.zero |] else coeffs in
    coeffs.(0) <- Sym.add coeffs.(0) gcoeff;
    poly loop coeffs
  end
  else Geometric { loop; gcoeffs; ratio; gcoeff }

(* Wrap-around orders beyond this are almost certainly accidental (long
   copy chains); giving them up keeps classification linear on such
   programs while losing nothing the paper's examples need (order 2 is
   the deepest it shows). *)
let max_wrap_order = 16

(* [wrap loop inner initial] wraps a classification one more iteration
   around the loop, flattening nested wraps (the paper's cascaded
   wrap-around variables: each extra loop-header phi adds one order). *)
let wrap loop inner initial =
  match inner with
  | Wrap w when w.loop = loop ->
    if w.order + 1 > max_wrap_order then Unknown
    else Wrap { w with order = w.order + 1; initials = initial :: w.initials }
  | Unknown -> Unknown
  | _ -> Wrap { loop; order = 1; inner; initials = [ initial ] }

(* [loop_of t] is the loop a non-invariant classification varies in. *)
let loop_of = function
  | Unknown | Invariant _ -> None
  | Linear { loop; _ } | Poly { loop; _ } | Geometric { loop; _ }
  | Wrap { loop; _ } | Periodic { loop; _ } | Monotonic { loop; _ } ->
    Some loop

(* [is_induction t] holds for classes with an exact closed form. *)
let rec is_induction = function
  | Invariant _ | Linear _ | Poly _ | Geometric _ -> true
  | Wrap { inner; _ } -> is_induction inner
  | Unknown | Periodic _ | Monotonic _ -> false

(* [degree t] of the polynomial part (0 for invariant, 1 for linear). *)
let degree = function
  | Invariant _ -> Some 0
  | Linear _ -> Some 1
  | Poly { coeffs; _ } -> Some (Array.length coeffs - 1)
  | Geometric { gcoeffs; _ } -> Some (Stdlib.max 0 (Array.length gcoeffs - 1))
  | Unknown | Wrap _ | Periodic _ | Monotonic _ -> None

(* [coeff_array t] views an exact polynomial class as its coefficient
   vector (constant first); [None] for other classes or multiloop bases. *)
let coeff_array = function
  | Invariant s -> Some [| s |]
  | Linear { base = Invariant b; step; _ } -> Some [| b; step |]
  | Linear _ -> None
  | Poly { coeffs; _ } -> Some (Array.copy coeffs)
  | Unknown | Geometric _ | Wrap _ | Periodic _ | Monotonic _ -> None

(* [eval_poly lookup coeffs h] evaluates sum coeffs.(k) * h^k. *)
let eval_poly lookup coeffs h =
  let acc = ref (Some Rat.zero) in
  Array.iteri
    (fun k c ->
      match (!acc, Sym.eval lookup c) with
      | Some a, Some c ->
        acc := Some (Rat.add a (Rat.mul c (Rat.pow (Rat.of_int h) k)))
      | _ -> acc := None)
    coeffs;
  !acc

(* [eval_at_nest lookup iter_of t h] is the exact predicted value at
   iteration [h] of [t]'s own loop; a multiloop (nested-base) linear IV
   evaluates its base at [iter_of outer_loop]. The classification oracle
   supplies the interpreter's live per-loop iteration counters. *)
let rec eval_at_nest (lookup : Sym.atom -> Rat.t option) (iter_of : int -> int option)
    (t : t) (h : int) : Rat.t option =
  match t with
  | Invariant s -> Sym.eval lookup s
  | Linear { base; step; _ } -> (
    let base_value =
      match base with
      | Invariant s -> Sym.eval lookup s
      | _ -> (
        match loop_of base with
        | Some outer -> (
          match iter_of outer with
          | Some hb -> eval_at_nest lookup iter_of base hb
          | None -> None)
        | None -> None)
    in
    match (base_value, Sym.eval lookup step) with
    | Some b, Some s -> Some (Rat.add b (Rat.mul s (Rat.of_int h)))
    | _ -> None)
  | Poly { coeffs; _ } -> eval_poly lookup coeffs h
  | Geometric { gcoeffs; ratio; gcoeff; _ } -> (
    match (eval_poly lookup gcoeffs h, Sym.eval lookup gcoeff) with
    | Some p, Some g -> Some (Rat.add p (Rat.mul g (Rat.pow ratio h)))
    | _ -> None)
  | Wrap { order; inner; initials; _ } ->
    if h < order then
      match List.nth_opt initials h with
      | Some s -> Sym.eval lookup s
      | None -> None
    else eval_at_nest lookup iter_of inner (h - order)
  | Periodic { period; values; phase; _ } ->
    Sym.eval lookup values.((h + phase) mod period)
  | Unknown | Monotonic _ -> None

(* [eval_at lookup t h]: as above, without outer-loop context (multiloop
   bases evaluate only when invariant). *)
let eval_at lookup t h = eval_at_nest lookup (fun _ -> None) t h

(* --- Printing (paper-style tuples) --- *)

type namer = { loop_name : int -> string; atom_name : Sym.atom -> string }

let default_namer =
  {
    loop_name = (fun i -> "loop" ^ string_of_int i);
    atom_name =
      (fun a ->
        match a with
        | Sym.Param x -> Ir.Ident.name x
        | Sym.Def id -> Ir.Instr.Id.to_string id);
  }

let rec pp_with namer fmt = function
  | Unknown -> Format.pp_print_string fmt "unknown"
  | Invariant s -> Format.fprintf fmt "inv(%a)" (pp_sym_n namer) s
  | Linear { loop; base; step } ->
    Format.fprintf fmt "(%s, %a, %a)" (namer.loop_name loop) (pp_base namer) base
      (pp_sym_n namer) step
  | Poly { loop; coeffs } ->
    Format.fprintf fmt "(%s, %a)" (namer.loop_name loop)
      (Format.pp_print_seq
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         (pp_sym_n namer))
      (Array.to_seq coeffs)
  | Geometric { loop; gcoeffs; ratio; gcoeff } ->
    (* Parenthesize multi-term coefficients and negative ratios so the
       closed form reads unambiguously. *)
    let coeff_str = Format.asprintf "%a" (pp_sym_n namer) gcoeff in
    let coeff_str =
      match gcoeff with
      | [ _ ] when not (String.contains coeff_str '-') -> coeff_str
      | [ _ ] when String.length coeff_str > 0 && coeff_str.[0] = '-'
                   && not (String.contains_from coeff_str 1 '-')
                   && not (String.contains coeff_str '+') ->
        coeff_str
      | [] -> coeff_str
      | _ -> "(" ^ coeff_str ^ ")"
    in
    let ratio_str =
      if Rat.sign ratio < 0 then Format.asprintf "(%a)" Rat.pp ratio
      else Format.asprintf "%a" Rat.pp ratio
    in
    Format.fprintf fmt "(%s, %a | %s*%s^h)" (namer.loop_name loop)
      (Format.pp_print_seq
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         (pp_sym_n namer))
      (Array.to_seq gcoeffs) coeff_str ratio_str
  | Wrap { loop; order; inner; initials } ->
    Format.fprintf fmt "wrap(%s, order %d, [%a], %a)" (namer.loop_name loop) order
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
         (pp_sym_n namer))
      initials (pp_with namer) inner
  | Periodic { loop; period; values; phase } ->
    Format.fprintf fmt "periodic(%s, period %d, phase %d, [%a])"
      (namer.loop_name loop) period phase
      (Format.pp_print_seq
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
         (pp_sym_n namer))
      (Array.to_seq values)
  | Monotonic { loop; dir; strict } ->
    Format.fprintf fmt "monotonic(%s, %s%s)" (namer.loop_name loop)
      (match dir with Increasing -> "increasing" | Decreasing -> "decreasing")
      (if strict then ", strict" else "")

and pp_base namer fmt = function
  | Invariant s -> pp_sym_n namer fmt s
  | other -> pp_with namer fmt other

and pp_sym_n namer fmt s =
  Sym.pp_with (fun id -> namer.atom_name (Sym.Def id)) fmt s

let pp fmt t = pp_with default_namer fmt t

let to_string t = Format.asprintf "%a" pp t

let to_string_with namer t = Format.asprintf "%a" (pp_with namer) t
