(** The per-loop SSA graph of the paper's §3: vertices are the loop's
    direct instructions (nested inner loops are collapsed to their exit
    values), edges run from operations to operands. *)

type t

(** [direct_blocks ssa loop] is the loop's blocks outside any inner loop. *)
val direct_blocks : Ir.Ssa.t -> Ir.Loops.loop -> Ir.Label.Set.t

(** [build ssa loop ~expand] constructs the graph. [expand] supplies the
    symbolic exit value of inner-loop defs (§5.3): an operand edge into a
    collapsed inner loop is redirected to its exit value's atoms, so
    cycles through inner loops (Fig 9) stay strongly connected. *)
val build : ?expand:(Ir.Instr.Id.t -> Sym.t option) -> Ir.Ssa.t -> Ir.Loops.loop -> t

(** Nodes in program order. *)
val nodes : t -> Ir.Instr.t list

val mem : t -> Ir.Instr.Id.t -> bool
val successors : t -> Ir.Instr.Id.t -> Ir.Instr.Id.t list

(** [is_header_phi t instr]: a phi at the loop header (the merge of
    loop-carried and loop-entry values). *)
val is_header_phi : t -> Ir.Instr.t -> bool

(** (vertices, edges), for the complexity benchmarks. *)
val size : t -> int * int

val pp : Format.formatter -> t -> unit
