(** The paper's core algorithm: classify every strongly connected region
    of a loop's SSA graph at the moment Tarjan's algorithm completes it
    (§3.1, §4) — one non-iterative pass, linear in the size of the SSA
    graph.

    Recognized shapes: the operator algebra on trivial regions (§5.1) and
    wrap-around variables (§4.1); single-header-phi cycles with affine
    cumulative effect v' = m·v + p — linear families incl. Fig 3's
    conditional same-offset updates, polynomial and geometric IVs (§4.3),
    flip-flops (m = -1, p invariant); pure header-phi cycles — periodic
    families (§4.2); and consistently-signed increments — monotonic
    variables with per-member strictness (§4.4). *)

type ctx = {
  ssa : Ir.Ssa.t;
  loop : Ir.Loops.loop;
  graph : Ssa_graph.t;
  table : Ivclass.t Ir.Instr.Id.Table.t;
  outer_const : Ir.Instr.Id.t -> Sym.t option;
      (** known constant/invariant values for defs outside this loop *)
  inner_exit : Ir.Instr.Id.t -> Sym.t option;
      (** exit values of already-processed inner loops (§5.3) *)
}

val loop_id : ctx -> int

(** [class_of_value ctx v] is the classification of an operand in this
    loop's frame (graph nodes from the table; inner-loop defs through
    their exit values; everything outside the loop as invariant). *)
val class_of_value : ctx -> Ir.Instr.value -> Ivclass.t

val class_of_def : ctx -> Ir.Instr.Id.t -> Ivclass.t

(** [class_of_sym ctx s] interprets a symbolic polynomial whose atoms may
    be defs of the current loop, folding the class algebra over terms. *)
val class_of_sym : ctx -> Sym.t -> Ivclass.t

(** [classify_loop ssa loop] classifies every direct instruction of the
    loop; returns the classification table and the loop's SSA graph. *)
val classify_loop :
  ?outer_const:(Ir.Instr.Id.t -> Sym.t option) ->
  ?inner_exit:(Ir.Instr.Id.t -> Sym.t option) ->
  Ir.Ssa.t ->
  Ir.Loops.loop ->
  Ivclass.t Ir.Instr.Id.Table.t * Ssa_graph.t
