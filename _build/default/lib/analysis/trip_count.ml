(* Trip counts of countable loops (paper §5.2).

   The loop-exit comparison is normalized to "exit when m <= 0" for a
   margin expression m built from the paper's relop table; m is then
   classified, and if it is a linear induction sequence (L, i, s) the
   trip count (number of times the exit condition chooses to stay) is

        0            if i <= 0
        ceil(i / -s) if i > 0 and s < 0
        infinite     if i > 0 and s >= 0. *)

open Bignum

type count =
  | Finite of Bigint.t
  | Symbolic of Sym.t (* exact count, assuming it is positive *)
  | Infinite
  | Unknown_count

type t = {
  count : count;
  max_count : count; (* an upper bound; equals [count] when exact *)
  exit_block : Ir.Label.t option; (* the single counted exit branch *)
  assumes_positive : bool; (* symbolic count: 0 iterations not ruled out *)
}

let unknown =
  { count = Unknown_count; max_count = Unknown_count; exit_block = None;
    assumes_positive = false }

let pp_count fmt = function
  | Finite n -> Bigint.pp fmt n
  | Symbolic s -> Sym.pp fmt s
  | Infinite -> Format.pp_print_string fmt "infinite"
  | Unknown_count -> Format.pp_print_string fmt "unknown"

let pp fmt t = pp_count fmt t.count

(* [pp_with names] prints symbolic counts through an SSA-name resolver. *)
let pp_with names fmt t =
  match t.count with
  | Symbolic s -> Sym.pp_with names fmt s
  | c -> pp_count fmt c

(* The margin m with "exit iff m <= 0", given "exit when x R y" (integer
   arithmetic turns strict comparisons into the +-1 adjustments of the
   paper's table). Returns [None] for = and <>, which are not countable
   this way. *)
let margin_parts (r : Ir.Ops.relop) =
  match r with
  | Ir.Ops.Lt -> Some (`Left_minus_right, 1) (* x < y: m = x - y + 1 *)
  | Ir.Ops.Le -> Some (`Left_minus_right, 0) (* x <= y: m = x - y *)
  | Ir.Ops.Gt -> Some (`Right_minus_left, 1) (* x > y: m = y - x + 1 *)
  | Ir.Ops.Ge -> Some (`Right_minus_left, 0) (* x >= y: m = y - x *)
  | Ir.Ops.Eq | Ir.Ops.Ne -> None

(* Count the stay-iterations observed at one exit branch; [None] when the
   branch is not countable. The exit test must execute on every
   iteration (it dominates all latches). *)
let count_via_exit (ctx : Classify.ctx) e : (count * bool) option =
  let ssa = ctx.Classify.ssa in
  let loop = ctx.Classify.loop in
  let cfg = Ir.Ssa.cfg ssa in
  let dom = Ir.Ssa.dom ssa in
  let tests_every_iteration =
    List.for_all (fun latch -> Ir.Dom.dominates dom e latch) loop.Ir.Loops.latches
  in
  if not tests_every_iteration then None
  else begin
    match (Ir.Cfg.block cfg e).Ir.Cfg.term with
    | Ir.Cfg.Branch (cond, l1, l2) -> (
      let exit_on_true = not (Ir.Loops.contains_block loop l1) in
      let exit_on_false = not (Ir.Loops.contains_block loop l2) in
      if exit_on_true && exit_on_false then Some (Finite Bigint.zero, false)
      else begin
        let cond_instr =
          match cond with
          | Ir.Instr.Def d -> Ir.Cfg.find_instr_opt cfg d
          | Ir.Instr.Const _ | Ir.Instr.Param _ -> None
        in
        match cond_instr with
        | Some { Ir.Instr.op = Ir.Instr.Relop r; args; _ } -> (
          let r = if exit_on_true then r else Ir.Ops.negate_relop r in
          match margin_parts r with
          | None -> None
          | Some (side, adjust) -> (
            let cx = Classify.class_of_value ctx args.(0) in
            let cy = Classify.class_of_value ctx args.(1) in
            let diff =
              match side with
              | `Left_minus_right -> Algebra.sub cx cy
              | `Right_minus_left -> Algebra.sub cy cx
            in
            let m = Algebra.add diff (Ivclass.Invariant (Sym.of_int adjust)) in
            match m with
            | Ivclass.Invariant s -> (
              match Sym.const s with
              | Some c ->
                if Rat.sign c <= 0 then Some (Finite Bigint.zero, false)
                else Some (Infinite, false)
              | None -> None)
            | Ivclass.Linear { loop = l; base = Ivclass.Invariant i; step }
              when l = loop.Ir.Loops.id -> (
              match Sym.const step with
              | Some s when Rat.sign s < 0 -> (
                match Sym.const i with
                | Some ic ->
                  if Rat.sign ic <= 0 then Some (Finite Bigint.zero, false)
                  else Some (Finite (Rat.ceil (Rat.div ic (Rat.neg s))), false)
                | None ->
                  (* Symbolic first value: exact division only when the
                     step is -1 (e.g. triangular loops, Fig 9). *)
                  if Rat.equal s Rat.minus_one then Some (Symbolic i, true)
                  else None)
              | Some s when Rat.sign s >= 0 -> (
                match Sym.const i with
                | Some ic when Rat.sign ic <= 0 -> Some (Finite Bigint.zero, false)
                | Some _ -> Some (Infinite, false)
                | None -> None)
              | Some _ | None -> None)
            | _ -> None))
        | Some _ | None -> None
      end)
    | Ir.Cfg.Jump _ | Ir.Cfg.Halt -> None
  end

(* [compute ctx] finds the trip count of [ctx]'s loop using the already
   computed classification table. Single-exit loops get an exact count;
   with several exits the earliest countable one still bounds the trips
   from above (the paper: "it may be able to find a maximum trip count;
   this information is useful for dependence testing"). *)
let compute (ctx : Classify.ctx) : t =
  let ssa = ctx.Classify.ssa in
  let loop = ctx.Classify.loop in
  let cfg = Ir.Ssa.cfg ssa in
  let exits = Ir.Loops.exit_edges cfg loop in
  let exit_blocks = List.sort_uniq Ir.Label.compare (List.map fst exits) in
  match exit_blocks with
  | [] ->
    { count = Infinite; max_count = Infinite; exit_block = None;
      assumes_positive = false }
  | [ e ] -> (
    match count_via_exit ctx e with
    | Some (c, assumes) ->
      { count = c; max_count = c; exit_block = Some e; assumes_positive = assumes }
    | None -> unknown)
  | _ :: _ :: _ ->
    (* Multiple exits: take the smallest countable bound as a maximum. *)
    let candidates = List.filter_map (fun e -> count_via_exit ctx e) exit_blocks in
    let best =
      List.fold_left
        (fun acc (c, _) ->
          match (acc, c) with
          | Unknown_count, c | c, Unknown_count -> c
          | Infinite, c | c, Infinite -> c
          | Finite a, Finite b -> Finite (Bigint.min a b)
          | Symbolic _, Finite b | Finite b, Symbolic _ ->
            (* Cannot compare; prefer the concrete bound. *)
            Finite b
          | Symbolic a, Symbolic _ -> Symbolic a)
        Unknown_count candidates
    in
    let best = match best with Infinite -> Unknown_count | b -> b in
    { unknown with max_count = best }

(* [count_sym t] is the trip count as a symbolic value, when exact. *)
let count_sym t =
  match t.count with
  | Finite n -> Some (Sym.of_rat (Rat.of_bigint n))
  | Symbolic s -> Some s
  | Infinite | Unknown_count -> None

(* [count_int t] is the trip count as a native int, when finite. *)
let count_int t =
  match t.count with
  | Finite n -> Bigint.to_int_opt n
  | Symbolic _ | Infinite | Unknown_count -> None

(* [max_count_int t] is an upper bound on the trips, when one is known
   (equals [count_int] for exactly counted loops). *)
let max_count_int t =
  match t.max_count with
  | Finite n -> Bigint.to_int_opt n
  | Symbolic _ | Infinite | Unknown_count -> None
