(** The classical induction-variable detection the paper is compared
    against ([ASU86] §10, [CK77]): basic IVs (a single "i := i ± c"
    assignment) plus derived families "j := c·i + d" grown by repeated
    scans until fixpoint. Runs on the pre-SSA CFG.

    The two measured properties: it is iterative (a reversed derived
    chain of depth k needs ~k scans), and it misses everything beyond the
    textbook patterns (mutual pairs, conditional same-offset updates,
    wrap-around/periodic/polynomial/monotonic variables). *)

type derived = {
  var : Ir.Ident.t;
  base : Ir.Ident.t;
  scale : int;
  offset : int;  (** value = scale·base + offset at its definition *)
}

type result = {
  basic : (Ir.Ident.t * int) list;  (** variable, constant step *)
  derived : derived list;
  passes : int;  (** scans over the loop body until fixpoint *)
}

(** [find cfg loop] runs the classical detection on one loop. *)
val find : Ir.Cfg.t -> Ir.Loops.loop -> result

(** [find_all cfg] runs on every loop of a pre-SSA CFG, inner first. *)
val find_all : Ir.Cfg.t -> (Ir.Loops.loop * result) list

val iv_count : result -> int
val pp : Format.formatter -> result -> unit
