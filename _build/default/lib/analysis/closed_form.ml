(* Closed-form recovery for non-linear induction variables (paper §4.3).

   A strongly connected region whose cumulative effect on the loop-header
   value is  v(h+1) = m * v(h) + p(h)  (with m a rational constant and p
   the classified additive part) defines a polynomial or geometric
   induction variable. Following the paper, the coefficients of the
   closed form are recovered by computing the first few values of the
   sequence symbolically and inverting the corresponding (geometric)
   Vandermonde matrix with exact rational arithmetic:

     - the matrix entries are integers, so the inverse is rational;
     - the first values are symbolic (they involve the initial value and
       any symbolic coefficients of p), and multiplying the rational
       inverse into the symbolic value vector yields symbolic closed-form
       coefficients. *)

open Bignum

(* [first_values ~init ~mult ~add n] is [v(0); ...; v(n-1)] with
   v(0) = init and v(h+1) = mult*v(h) + add(h), all symbolic. [add h]
   must return the symbolic value of the additive part at iteration h. *)
let first_values ~init ~mult ~(add : int -> Sym.t) n =
  let rec go acc v h =
    if h >= n then List.rev acc
    else begin
      (* v(h) = mult * v(h-1) + add(h-1) *)
      let v' = Sym.add (Sym.scale mult v) (add (h - 1)) in
      go (v' :: acc) v' (h + 1)
    end
  in
  go [ init ] init 1

(* [solve matrix values] computes [matrix^-1 * values] with symbolic
   entries on the right-hand side. *)
let solve matrix values =
  match Ratmat.inverse matrix with
  | None -> None
  | Some inv ->
    let n = Ratmat.rows inv in
    Some
      (Array.init n (fun j ->
           let acc = ref Sym.zero in
           for i = 0 to n - 1 do
             acc := Sym.add !acc (Sym.scale (Ratmat.get inv j i) values.(i))
           done;
           !acc))

(* [sym_poly_at coeffs h] evaluates a symbolic-coefficient polynomial at
   the integer point [h]. *)
let sym_poly_at (coeffs : Sym.t array) h =
  let acc = ref Sym.zero in
  Array.iteri
    (fun k c -> acc := Sym.add !acc (Sym.scale (Rat.pow (Rat.of_int h) k) c))
    coeffs;
  !acc

(* [polynomial ~loop ~init ~add_coeffs] solves v(h+1) = v(h) + p(h) where
   p has coefficient vector [add_coeffs] (degree d): the result is a
   polynomial induction variable of degree d+1 (paper: "incrementing a
   variable by a polynomial induction variable produces an induction
   variable of the next higher order"). *)
let polynomial ~loop ~(init : Sym.t) ~(add_coeffs : Sym.t array) : Ivclass.t =
  let d = Stdlib.max 0 (Array.length add_coeffs - 1) in
  let degree = d + 1 in
  let n = degree + 1 in
  let values =
    Array.of_list
      (first_values ~init ~mult:Rat.one ~add:(fun h -> sym_poly_at add_coeffs h) n)
  in
  match solve (Ratmat.vandermonde degree) values with
  | Some coeffs -> Ivclass.poly loop coeffs
  | None -> Ivclass.Unknown

(* [polynomial_plus_geometric ~loop ~init ~add_coeffs ~gratio ~gcoeff]
   solves v(h+1) = v(h) + p(h) + gcoeff * gratio^h: the sum of a
   geometric series is geometric, so the result keeps the same ratio.
   Requires gratio <> 1 and gcoeff constant-scaled symbolics. *)
let polynomial_plus_geometric ~loop ~(init : Sym.t) ~(add_coeffs : Sym.t array)
    ~(gratio : Rat.t) ~(gcoeff : Sym.t) : Ivclass.t =
  if Rat.equal gratio Rat.one then Ivclass.Unknown
  else begin
    let d = Stdlib.max 0 (Array.length add_coeffs - 1) in
    let degree = d + 1 in
    let n = degree + 2 in
    let add h =
      Sym.add (sym_poly_at add_coeffs h) (Sym.scale (Rat.pow gratio h) gcoeff)
    in
    let values = Array.of_list (first_values ~init ~mult:Rat.one ~add n) in
    match solve (Ratmat.geometric_vandermonde degree gratio) values with
    | Some coeffs ->
      let poly = Array.sub coeffs 0 (n - 1) in
      Ivclass.geometric loop poly gratio coeffs.(n - 1)
    | None -> Ivclass.Unknown
  end

(* [geometric ~loop ~init ~mult ~add_coeffs] solves
   v(h+1) = mult * v(h) + p(h) with mult not in {0, 1}: a geometric
   induction variable with ratio [mult]. The polynomial part is given one
   degree more than p, mirroring the paper's worked example (m = 3*m +
   2*i + 1), where the extra coefficient comes out zero. *)
let geometric ~loop ~(init : Sym.t) ~(mult : Rat.t) ~(add_coeffs : Sym.t array) :
    Ivclass.t =
  if Rat.is_zero mult || Rat.equal mult Rat.one then Ivclass.Unknown
  else begin
    let d = Stdlib.max 0 (Array.length add_coeffs - 1) in
    let degree = d + 1 in
    let n = degree + 2 in
    let values =
      Array.of_list
        (first_values ~init ~mult ~add:(fun h -> sym_poly_at add_coeffs h) n)
    in
    match solve (Ratmat.geometric_vandermonde degree mult) values with
    | Some coeffs ->
      let poly = Array.sub coeffs 0 (n - 1) in
      Ivclass.geometric loop poly mult coeffs.(n - 1)
    | None -> Ivclass.Unknown
  end
