(** The classification lattice: every integer scalar in a loop is one of
    the paper's variable kinds (§2-§4).

    Iteration numbering: [h] counts executions of the loop header within
    one activation, from 0 (the paper's basic loop counter). A
    classification predicts the value an instruction computes during
    iteration [h]. *)

open Bignum

type dir = Increasing | Decreasing

type t =
  | Unknown
  | Invariant of Sym.t  (** same value on every iteration *)
  | Linear of linear
  | Poly of poly
  | Geometric of geometric
  | Wrap of wrap
  | Periodic of periodic
  | Monotonic of monotonic

and linear = {
  loop : int;
  base : t;
      (** value at h = 0: [Invariant s], or an outer-loop classification
          for multiloop IVs — the paper's nested tuples (§2, §5.3) *)
  step : Sym.t;  (** loop-invariant increment per iteration *)
}

and poly = {
  loop : int;
  coeffs : Sym.t array;  (** value(h) = sum coeffs.(k)·h^k; degree >= 2 *)
}

and geometric = {
  loop : int;
  gcoeffs : Sym.t array;  (** polynomial part *)
  ratio : Rat.t;  (** exponential base, not 0 or 1 *)
  gcoeff : Sym.t;  (** value(h) = sum gcoeffs.(k)·h^k + gcoeff·ratio^h *)
}

and wrap = {
  loop : int;
  order : int;  (** iterations before the underlying class applies *)
  inner : t;  (** value(h) = inner(h - order) for h >= order *)
  initials : Sym.t list;  (** values during iterations 0..order-1 *)
}

and periodic = {
  loop : int;
  period : int;
  values : Sym.t array;  (** the rotating tuple, anchored at phase 0 *)
  phase : int;  (** value(h) = values.((h + phase) mod period) *)
}

and monotonic = {
  loop : int;
  dir : dir;
  strict : bool;
  family : int;  (** instruction id of the region's loop-header phi *)
}

(** Structural equality (symbolic equality of coefficients). *)
val equal : t -> t -> bool

(** Smart constructors (normalizing): {!linear} collapses zero steps,
    {!poly} strips trailing zero coefficients and demotes low degrees,
    {!geometric} folds ratio 1 and strips trailing zeros, {!wrap}
    flattens cascades and gives up past {!max_wrap_order}. *)

val linear : int -> t -> Sym.t -> t

val poly : int -> Sym.t array -> t
val geometric : int -> Sym.t array -> Rat.t -> Sym.t -> t
val max_wrap_order : int
val wrap : int -> t -> Sym.t -> t

(** [loop_of t] is the loop a non-invariant classification varies in. *)
val loop_of : t -> int option

(** [is_induction t] holds for classes with an exact closed form. *)
val is_induction : t -> bool

(** [degree t] of the polynomial part (0 invariant, 1 linear, ...). *)
val degree : t -> int option

(** [coeff_array t] views an exact polynomial class as its coefficient
    vector (constant first); [None] for multiloop bases and non-poly
    classes. *)
val coeff_array : t -> Sym.t array option

(** [eval_at_nest lookup iter_of t h] is the predicted value at iteration
    [h] of [t]'s own loop; multiloop bases evaluate at [iter_of outer].
    Used by the classification oracle with the interpreter's live loop
    counters. *)
val eval_at_nest :
  (Sym.atom -> Rat.t option) -> (int -> int option) -> t -> int -> Rat.t option

(** [eval_at lookup t h]: without outer-loop context. *)
val eval_at : (Sym.atom -> Rat.t option) -> t -> int -> Rat.t option

(** {1 Printing (the paper's tuple notation)} *)

type namer = { loop_name : int -> string; atom_name : Sym.atom -> string }

val default_namer : namer
val pp_with : namer -> Format.formatter -> t -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val to_string_with : namer -> t -> string
