(** The algebra of variable classifications (paper §5.1): how each
    arithmetic operator combines operand classes. All operations are
    conservative — combinations outside the table yield [Unknown], never
    a wrong closed form. *)

open Bignum

(** [poly_view t] sees exact polynomial classes (invariant, linear with
    invariant base, polynomial) as (loop, coefficient vector). *)
val poly_view : Ivclass.t -> (int option * Sym.t array) option

(** [geo_view t] additionally admits one exponential term:
    (loop, poly coeffs, (ratio, coefficient) option). *)
val geo_view :
  Ivclass.t -> (int option * Sym.t array * (Rat.t * Sym.t) option) option

(** [growth t] is [Some (direction, strict)] when the class provably
    evolves monotonically with h >= 0 (constant coefficients);
    [Some (None, _)] means constant. *)
val growth : Ivclass.t -> (Ivclass.dir option * bool) option

val add : Ivclass.t -> Ivclass.t -> Ivclass.t
val sub : Ivclass.t -> Ivclass.t -> Ivclass.t
val mul : Ivclass.t -> Ivclass.t -> Ivclass.t
val neg : Ivclass.t -> Ivclass.t

(** [scale c t] multiplies by a rational constant. *)
val scale : Rat.t -> Ivclass.t -> Ivclass.t

(** [add_sym t s] adds a loop-invariant symbolic value. *)
val add_sym : Ivclass.t -> Sym.t -> Ivclass.t

(** [div_const t c] divides by a non-zero integer, only when the result
    provably stays integral on every iteration (integer division is not
    rational division). *)
val div_const : Ivclass.t -> Bigint.t -> Ivclass.t

(** [shift t k] is the class of h -> t(h + k), for exact classes. *)
val shift : Ivclass.t -> int -> Ivclass.t option

(** [sym_at t h] is the symbolic value at the concrete iteration h >= 0,
    when expressible. *)
val sym_at : Ivclass.t -> int -> Sym.t option

(** [sym_at_sym t h] substitutes a symbolic iteration number into a
    polynomial closed form (used for exit values at symbolic trip
    counts). *)
val sym_at_sym : Ivclass.t -> Sym.t -> Sym.t option
