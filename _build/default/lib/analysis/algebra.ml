(* The algebra of variable classifications (paper §5.1): how each
   arithmetic operator combines the classes of its operands. Non-basic
   induction variables — expressions over family members — are classified
   by folding this algebra over the SSA graph.

   The operations are conservative: any combination outside the table
   yields [Unknown], never a wrong closed form. *)

open Bignum
open Ivclass

(* --- coefficient-vector helpers --- *)

let pad coeffs n =
  if Array.length coeffs >= n then coeffs
  else Array.append coeffs (Array.make (n - Array.length coeffs) Sym.zero)

let add_vec a b =
  let n = Stdlib.max (Array.length a) (Array.length b) in
  let a = pad a n and b = pad b n in
  Array.init n (fun i -> Sym.add a.(i) b.(i))

let mul_vec a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb - 1) Sym.zero in
    for i = 0 to la - 1 do
      for j = 0 to lb - 1 do
        r.(i + j) <- Sym.add r.(i + j) (Sym.mul a.(i) b.(j))
      done
    done;
    r
  end

let scale_vec c v = Array.map (fun s -> Sym.scale c s) v

(* Shift a coefficient vector: coefficients of p(h + k). *)
let shift_vec coeffs k =
  let n = Array.length coeffs in
  let r = Array.make n Sym.zero in
  (* binomial.(i).(j) = C(i, j) *)
  let binom = Array.make_matrix n n Rat.zero in
  for i = 0 to n - 1 do
    binom.(i).(0) <- Rat.one;
    for j = 1 to i do
      binom.(i).(j) <-
        Rat.add binom.(i - 1).(j - 1) (if j <= i - 1 then binom.(i - 1).(j) else Rat.zero)
    done
  done;
  let kr = Rat.of_int k in
  for i = 0 to n - 1 do
    (* coeffs.(i) * (h + k)^i contributes C(i, j) k^(i-j) to h^j. *)
    for j = 0 to i do
      let c = Rat.mul binom.(i).(j) (Rat.pow kr (i - j)) in
      r.(j) <- Sym.add r.(j) (Sym.scale c coeffs.(i))
    done
  done;
  r

(* --- views --- *)

(* [poly_view t] sees exact polynomial classes (invariant, linear with
   invariant base, polynomial) as (loop option, coefficient vector). *)
let poly_view = function
  | Invariant s -> Some (None, [| s |])
  | Linear { loop; base = Invariant b; step } -> Some (Some loop, [| b; step |])
  | Poly { loop; coeffs } -> Some (Some loop, Array.copy coeffs)
  | Linear _ | Unknown | Geometric _ | Wrap _ | Periodic _ | Monotonic _ -> None

(* [geo_view t] sees exact classes with at most one exponential term as
   (loop option, poly coeffs, (ratio, gcoeff) option). *)
let geo_view t =
  match t with
  | Geometric { loop; gcoeffs; ratio; gcoeff } ->
    Some (Some loop, Array.copy gcoeffs, Some (ratio, gcoeff))
  | _ -> (
    match poly_view t with
    | Some (loop, coeffs) -> Some (loop, coeffs, None)
    | None -> None)

let join_loop a b =
  match (a, b) with
  | None, l | l, None -> Ok l
  | Some x, Some y -> if x = y then Ok (Some x) else Error ()

let of_geo_view loop coeffs geo =
  match (loop, geo) with
  | None, None -> Ivclass.poly (-1) coeffs (* loop unused at degree 0 *)
  | Some loop, None -> Ivclass.poly loop coeffs
  | Some loop, Some (ratio, gcoeff) -> Ivclass.geometric loop coeffs ratio gcoeff
  | None, Some _ -> Unknown

(* --- sign/growth helpers for the monotonic rules --- *)

(* [growth t] is [Some (dir option, strict)] describing how [t] evolves
   with the iteration number, when that is knowable from constant
   coefficients: [dir = None] means constant. *)
let growth t =
  match t with
  | Invariant _ -> Some (None, false)
  | Linear { step; _ } -> (
    match Sym.const step with
    | Some c ->
      if Rat.is_zero c then Some (None, false)
      else if Rat.sign c > 0 then Some (Some Increasing, true)
      else Some (Some Decreasing, true)
    | None -> None)
  | Poly { coeffs; _ } -> (
    (* Nondecreasing on h >= 0 when all non-constant coefficients are
       nonnegative constants; strictly when one is positive. *)
    let consts =
      Array.to_list coeffs |> List.tl |> List.map Sym.const
    in
    if List.exists Option.is_none consts then None
    else begin
      let consts = List.filter_map Fun.id consts in
      if List.for_all (fun c -> Rat.sign c >= 0) consts then
        Some
          ( (if List.exists (fun c -> Rat.sign c > 0) consts then Some Increasing
             else None),
            List.exists (fun c -> Rat.sign c > 0) consts )
      else if List.for_all (fun c -> Rat.sign c <= 0) consts then
        Some
          ( (if List.exists (fun c -> Rat.sign c < 0) consts then Some Decreasing
             else None),
            List.exists (fun c -> Rat.sign c < 0) consts )
      else None
    end)
  | Monotonic { dir; strict; _ } -> Some (Some dir, strict)
  | Unknown | Geometric _ | Wrap _ | Periodic _ -> None

(* --- the operator table --- *)

let rec add a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> Unknown
  | Invariant x, Invariant y -> Invariant (Sym.add x y)
  (* Multiloop linear IVs (nested base): constants fold into the base. *)
  | Linear ({ base; _ } as l), Invariant s | Invariant s, Linear ({ base; _ } as l)
    when (match base with Invariant _ -> false | _ -> true) -> (
    match add base (Invariant s) with
    | Unknown -> Unknown
    | base -> Linear { l with base })
  (* Wrap absorbs: w + c applies c shifted past the wrap order. *)
  | Wrap w, other when wrap_absorbs other w.loop -> wrap_add w other
  | other, Wrap w when wrap_absorbs other w.loop -> wrap_add w other
  | Periodic p, Invariant s | Invariant s, Periodic p ->
    Periodic { p with values = Array.map (fun v -> Sym.add v s) p.values }
  | Periodic p, Periodic q when p.loop = q.loop -> periodic_add p q
  | Monotonic m, other | other, Monotonic m -> mono_add m other
  | _ -> (
    (* Exact classes with at most one exponential term. *)
    match (geo_view a, geo_view b) with
    | Some (la, ca, ga), Some (lb, cb, gb) -> (
      match join_loop la lb with
      | Error () -> Unknown
      | Ok loop -> (
        let coeffs = add_vec ca cb in
        match (ga, gb) with
        | None, None -> of_geo_view loop coeffs None
        | Some g, None | None, Some g -> of_geo_view loop coeffs (Some g)
        | Some (r1, c1), Some (r2, c2) ->
          if Rat.equal r1 r2 then
            of_geo_view loop coeffs (Some (r1, Sym.add c1 c2))
          else Unknown))
    | _ -> Unknown)

and wrap_absorbs other loop =
  match other with
  | Invariant _ -> true
  | _ -> (
    match (Ivclass.loop_of other, other) with
    | Some l, (Linear _ | Poly _ | Geometric _) -> l = loop
    | _ -> false)

and wrap_add w other =
  (* (wrap of inner) + c: for h >= order the sum is inner(h-order) +
     c(h) = (inner + c shifted by order)(h-order); the first [order]
     values add c(i) when it has a closed form. *)
  match shift other w.order with
  | None -> Unknown
  | Some shifted -> (
    let inner = add w.inner shifted in
    if inner = Unknown then Unknown
    else begin
      let initials =
        List.mapi
          (fun i s ->
            match sym_at other i with
            | Some v -> Some (Sym.add s v)
            | None -> None)
          w.initials
      in
      match
        List.fold_right
          (fun x acc ->
            match (x, acc) with
            | Some v, Some l -> Some (v :: l)
            | _ -> None)
          initials (Some [])
      with
      | Some initials -> Wrap { w with inner; initials }
      | None -> Unknown
    end)

and periodic_add p q =
  let lcm =
    let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
    p.period * q.period / gcd p.period q.period
  in
  if lcm > 64 then Unknown
  else begin
    let values =
      Array.init lcm (fun h ->
          Sym.add
            p.values.((h + p.phase) mod p.period)
            q.values.((h + q.phase) mod q.period))
    in
    Periodic { loop = p.loop; period = lcm; values; phase = 0 }
  end

and mono_add m other =
  match growth other with
  | Some (None, _) -> Monotonic m
  | Some (Some dir, strict) when dir = m.dir ->
    Monotonic { m with strict = m.strict || strict }
  | Some (Some _, _) | None -> Unknown

(* [shift t k] is the class of h -> t(h + k) for exact classes. *)
and shift t k =
  match t with
  | Invariant _ -> Some t
  | Linear { loop; base = Invariant b; step } ->
    Some
      (Ivclass.linear loop
         (Invariant (Sym.add b (Sym.scale (Rat.of_int k) step)))
         step)
  | Poly { loop; coeffs } -> Some (Ivclass.poly loop (shift_vec coeffs k))
  | Geometric { loop; gcoeffs; ratio; gcoeff } ->
    (* ratio^(h+k) = ratio^k * ratio^h *)
    Some
      (Ivclass.geometric loop (shift_vec gcoeffs k) ratio
         (Sym.scale (Rat.pow ratio k) gcoeff))
  | Periodic p ->
    Some (Periodic { p with phase = ((p.phase + k) mod p.period + p.period) mod p.period })
  | Linear _ | Unknown | Wrap _ | Monotonic _ -> None

(* [sym_at t h] is the symbolic value of [t] at the concrete iteration
   [h >= 0], when expressible. *)
and sym_at t h =
  match t with
  | Invariant s -> Some s
  | Linear { base = Invariant b; step; _ } ->
    Some (Sym.add b (Sym.scale (Rat.of_int h) step))
  | Poly { coeffs; _ } ->
    Some
      (Array.to_list coeffs
      |> List.mapi (fun k c -> Sym.scale (Rat.pow (Rat.of_int h) k) c)
      |> List.fold_left Sym.add Sym.zero)
  | Geometric { gcoeffs; ratio; gcoeff; _ } ->
    let p =
      Array.to_list gcoeffs
      |> List.mapi (fun k c -> Sym.scale (Rat.pow (Rat.of_int h) k) c)
      |> List.fold_left Sym.add Sym.zero
    in
    Some (Sym.add p (Sym.scale (Rat.pow ratio h) gcoeff))
  | Periodic { period; values; phase; _ } -> Some values.((h + phase) mod period)
  | Wrap { order; inner; initials; _ } ->
    if h < order then List.nth_opt initials h else sym_at inner (h - order)
  | Linear _ | Unknown | Monotonic _ -> None

(* [sym_at_sym t h] substitutes a *symbolic* iteration number into the
   closed form; defined for polynomial classes (used for loop exit
   values, where h is the symbolic trip count). *)
let sym_at_sym t (h : Sym.t) =
  match poly_view t with
  | Some (_, coeffs) ->
    Some
      (Array.to_list coeffs
      |> List.mapi (fun k c -> Sym.mul c (Sym.pow h k))
      |> List.fold_left Sym.add Sym.zero)
  | None -> None

let rec neg t =
  match t with
  | Unknown -> Unknown
  | Invariant s -> Invariant (Sym.neg s)
  | Linear { loop; base; step } -> (
    match base with
    | Invariant b -> Ivclass.linear loop (Invariant (Sym.neg b)) (Sym.neg step)
    | _ -> Unknown)
  | Poly { loop; coeffs } -> Ivclass.poly loop (Array.map Sym.neg coeffs)
  | Geometric { loop; gcoeffs; ratio; gcoeff } ->
    Ivclass.geometric loop (Array.map Sym.neg gcoeffs) ratio (Sym.neg gcoeff)
  | Wrap { loop; order; inner; initials } -> (
    match neg inner with
    | Unknown -> Unknown
    | inner -> Wrap { loop; order; inner; initials = List.map Sym.neg initials })
  | Periodic p -> Periodic { p with values = Array.map Sym.neg p.values }
  | Monotonic m ->
    Monotonic
      {
        m with
        dir = (match m.dir with Increasing -> Decreasing | Decreasing -> Increasing);
      }

let sub a b = add a (neg b)

let rec mul a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> Unknown
  | Invariant x, Invariant y -> Invariant (Sym.mul x y)
  (* Identities keep multiloop (nested-base) classes intact. *)
  | Invariant s, other when Sym.equal s Sym.one -> other
  | other, Invariant s when Sym.equal s Sym.one -> other
  | Invariant s, _ when Sym.is_zero s -> Invariant Sym.zero
  | _, Invariant s when Sym.is_zero s -> Invariant Sym.zero
  (* Scaling a multiloop linear IV by a constant scales base and step. *)
  | Linear ({ base; step; _ } as l), Invariant s
  | Invariant s, Linear ({ base; step; _ } as l)
    when (match base with Invariant _ -> false | _ -> true)
         && Option.is_some (Sym.const s) -> (
    match mul base (Invariant s) with
    | Unknown -> Unknown
    | base -> Linear { l with base; step = Sym.mul step s })
  | Periodic p, Invariant s | Invariant s, Periodic p ->
    Periodic { p with values = Array.map (fun v -> Sym.mul v s) p.values }
  | Wrap w, Invariant s | Invariant s, Wrap w -> (
    match mul w.inner (Invariant s) with
    | Unknown -> Unknown
    | inner ->
      Wrap { w with inner; initials = List.map (fun v -> Sym.mul v s) w.initials })
  | Monotonic m, Invariant s | Invariant s, Monotonic m -> (
    (* Multiplying by a constant of known sign preserves or flips. *)
    match Sym.const s with
    | Some c when Rat.sign c > 0 -> Monotonic m
    | Some c when Rat.sign c < 0 -> neg (Monotonic m)
    | Some _ -> Invariant Sym.zero
    | None -> Unknown)
  | _ -> (
    match (geo_view a, geo_view b) with
    | Some (la, ca, ga), Some (lb, cb, gb) -> (
      match join_loop la lb with
      | Error () -> Unknown
      | Ok loop -> (
        match (ga, gb) with
        | None, None -> of_geo_view loop (mul_vec ca cb) None
        | Some (r, c), None | None, Some (r, c) ->
          (* (p + c r^h)(q) = pq + (cq) r^h: needs q constant (degree 0)
             or the product has h^k r^h terms we cannot represent. *)
          let q = if ga = None then ca else cb in
          let p = if ga = None then cb else ca in
          if Array.length q <= 1 then begin
            let q0 = if Array.length q = 0 then Sym.zero else q.(0) in
            of_geo_view loop (scale_vec_sym q0 p) (Some (r, Sym.mul c q0))
          end
          else Unknown
        | Some (r1, c1), Some (r2, c2) ->
          (* Pure exponentials multiply; anything else needs h^k r^h. *)
          let pure v = Array.for_all Sym.is_zero v in
          if pure ca && pure cb then
            of_geo_view loop [| Sym.zero |] (Some (Rat.mul r1 r2, Sym.mul c1 c2))
          else Unknown))
    | _ -> Unknown)

and scale_vec_sym s v = Array.map (fun c -> Sym.mul s c) v

(* [scale c t] multiplies by a rational constant. *)
let scale c t = mul (Invariant (Sym.of_rat c)) t

(* [add_sym t s] adds a loop-invariant symbolic value. *)
let add_sym t s = add t (Invariant s)

(* [div_const t c] divides by a nonzero integer constant, only when the
   result provably stays integral on every iteration (all coefficients
   integer and divisible); integer division is not rational division. *)
let div_const t (c : Bigint.t) =
  if Bigint.is_zero c then Unknown
  else begin
    let divisible (s : Sym.t) =
      (* Conservative: only constant integer coefficients divisible by c. *)
      match Sym.const s with
      | Some r -> (
        match Rat.to_bigint_exact r with
        | Some n -> Bigint.is_zero (Bigint.rem n c)
        | None -> false)
      | None -> false
    in
    match geo_view t with
    | Some (loop, coeffs, geo) ->
      let ok =
        Array.for_all divisible coeffs
        && match geo with Some (_, g) -> divisible g | None -> true
      in
      if not ok then Unknown
      else begin
        let inv_c = Rat.make Bigint.one c in
        let coeffs = scale_vec inv_c coeffs in
        match (loop, geo) with
        | _, None -> of_geo_view loop coeffs None
        | Some _, Some (r, g) -> of_geo_view loop coeffs (Some (r, Sym.scale inv_c g))
        | None, Some _ -> Unknown
      end
    | None -> Unknown
  end
