(* The per-loop SSA graph of the paper's Section 3: vertices are the
   instructions of the loop body (excluding blocks of nested inner loops,
   which the nested driver has already collapsed to their exit values),
   and edges run from each instruction to its operands, so Tarjan's
   algorithm visits operands before the regions that use them. *)

type t = {
  ssa : Ir.Ssa.t;
  loop : Ir.Loops.loop;
  nodes : Ir.Instr.t list; (* directly in this loop, program order *)
  node_set : Ir.Instr.Id.Set.t;
  succs : Ir.Instr.Id.t list Ir.Instr.Id.Table.t; (* operand edges within the graph *)
}

(* [direct_blocks ssa loop] is the blocks of [loop] that are not inside
   any nested inner loop. *)
let direct_blocks (ssa : Ir.Ssa.t) (loop : Ir.Loops.loop) =
  let loops = Ir.Ssa.loops ssa in
  Ir.Label.Set.filter
    (fun l ->
      match Ir.Loops.innermost loops l with
      | Some id -> id = loop.Ir.Loops.id
      | None -> false)
    loop.Ir.Loops.blocks

(* [build ssa loop ~expand] constructs the loop's SSA graph. [expand]
   supplies the symbolic exit value of defs belonging to nested inner
   loops (paper §5.3): an operand edge into a collapsed inner loop is
   redirected to the atoms of its exit value, so cycles that pass through
   an inner loop (e.g. the triangular-loop example, Fig 9) are still
   strongly connected in the outer loop's graph. *)
let build ?(expand = fun _ -> None) (ssa : Ir.Ssa.t) (loop : Ir.Loops.loop) : t =
  let cfg = Ir.Ssa.cfg ssa in
  let blocks = direct_blocks ssa loop in
  let nodes =
    Ir.Label.Set.elements blocks
    |> List.sort Ir.Label.compare
    |> List.concat_map (fun l -> (Ir.Cfg.block cfg l).Ir.Cfg.instrs)
  in
  let node_set =
    List.fold_left
      (fun acc (i : Ir.Instr.t) -> Ir.Instr.Id.Set.add i.Ir.Instr.id acc)
      Ir.Instr.Id.Set.empty nodes
  in
  let in_loop d =
    Ir.Label.Set.mem (Ir.Cfg.block_of_instr cfg d) loop.Ir.Loops.blocks
  in
  let succs = Ir.Instr.Id.Table.create 64 in
  List.iter
    (fun (i : Ir.Instr.t) ->
      let edges_of_value (v : Ir.Instr.value) =
        match v with
        | Ir.Instr.Def d when Ir.Instr.Id.Set.mem d node_set -> [ d ]
        | Ir.Instr.Def d when in_loop d -> (
          (* Inner-loop def: redirect through its exit value's atoms. *)
          match expand d with
          | Some sym ->
            Sym.atoms sym
            |> List.filter_map (fun a ->
                   match a with
                   | Sym.Def d' when Ir.Instr.Id.Set.mem d' node_set -> Some d'
                   | Sym.Def _ | Sym.Param _ -> None)
          | None -> [])
        | Ir.Instr.Def _ | Ir.Instr.Const _ | Ir.Instr.Param _ -> []
      in
      let out =
        Array.to_list i.Ir.Instr.args |> List.concat_map edges_of_value
      in
      Ir.Instr.Id.Table.replace succs i.Ir.Instr.id out)
    nodes;
  { ssa; loop; nodes; node_set; succs }

let nodes t = t.nodes
let mem t id = Ir.Instr.Id.Set.mem id t.node_set

let successors t id =
  Option.value ~default:[] (Ir.Instr.Id.Table.find_opt t.succs id)

(* [is_header_phi t instr] holds for phi instructions placed at the loop
   header — the merge of the loop-carried and loop-entry values. *)
let is_header_phi t (instr : Ir.Instr.t) =
  instr.Ir.Instr.op = Ir.Instr.Phi
  && Ir.Label.equal
       (Ir.Cfg.block_of_instr (Ir.Ssa.cfg t.ssa) instr.Ir.Instr.id)
       t.loop.Ir.Loops.header

(* Counts for the complexity benchmarks: vertices and edges. *)
let size t =
  let edges =
    List.fold_left (fun acc (i : Ir.Instr.t) -> acc + List.length (successors t i.Ir.Instr.id)) 0 t.nodes
  in
  (List.length t.nodes, edges)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (i : Ir.Instr.t) ->
      Format.fprintf fmt "%s -> {%a}@,"
        (Ir.Ssa.primary_name t.ssa i.Ir.Instr.id)
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           (fun fmt d -> Format.pp_print_string fmt (Ir.Ssa.primary_name t.ssa d)))
        (successors t i.Ir.Instr.id))
    t.nodes;
  Format.fprintf fmt "@]"
