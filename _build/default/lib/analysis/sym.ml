(* Symbolic values: canonical multivariate polynomials with rational
   coefficients over "region constants" — program inputs and instruction
   results that are invariant in the loop under analysis.

   The classifier manipulates initial values and steps symbolically (the
   paper represents an initial value "symbolically if it cannot be
   determined"), so this module provides a small exact polynomial algebra
   with a canonical form: equality of symbolic expressions is structural
   equality of the normal form. Operations the algebra cannot normalize
   (division by a symbol, symbolic exponentiation) are represented by the
   classifier as opaque atoms instead. *)

open Bignum

type atom =
  | Param of Ir.Ident.t (* program input, e.g. "n" *)
  | Def of Ir.Instr.Id.t (* loop-invariant instruction result *)

(* Parameters order by name (so canonical forms — and printing — do not
   depend on global interning order); defs order by instruction id. *)
let atom_compare a b =
  match (a, b) with
  | Param x, Param y -> String.compare (Ir.Ident.name x) (Ir.Ident.name y)
  | Def x, Def y -> Ir.Instr.Id.compare x y
  | Param _, Def _ -> -1
  | Def _, Param _ -> 1

let atom_equal a b = atom_compare a b = 0

(* A monomial maps atoms to positive powers; sorted by atom. *)
type mono = (atom * int) list

let mono_compare (a : mono) (b : mono) =
  let rec go a b =
    match (a, b) with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | (xa, pa) :: ra, (xb, pb) :: rb ->
      let c = atom_compare xa xb in
      if c <> 0 then c
      else begin
        let c = Stdlib.compare pa pb in
        if c <> 0 then c else go ra rb
      end
  in
  go a b

(* Terms sorted by monomial, all coefficients nonzero; [] is zero; the
   constant term has the empty monomial. *)
type t = (mono * Rat.t) list

let zero : t = []

let of_rat (c : Rat.t) : t = if Rat.is_zero c then [] else [ ([], c) ]

let of_int n = of_rat (Rat.of_int n)
let one = of_int 1

let atom a : t = [ ([ (a, 1) ], Rat.one) ]
let param x = atom (Param x)
let def id = atom (Def id)

let is_zero (t : t) = t = []

(* [const t] is [Some c] when [t] is the constant [c]. *)
let const (t : t) =
  match t with
  | [] -> Some Rat.zero
  | [ ([], c) ] -> Some c
  | _ -> None

let is_const t = Option.is_some (const t)

(* [const_int t] is [Some n] when [t] is the integer constant [n]
   (fitting a native int). *)
let const_int t =
  match const t with
  | Some c -> Rat.to_int_exact c
  | None -> None

let equal (a : t) (b : t) =
  let rec go a b =
    match (a, b) with
    | [], [] -> true
    | (ma, ca) :: ra, (mb, cb) :: rb ->
      mono_compare ma mb = 0 && Rat.equal ca cb && go ra rb
    | _ -> false
  in
  go a b

let compare (a : t) (b : t) =
  let rec go a b =
    match (a, b) with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | (ma, ca) :: ra, (mb, cb) :: rb ->
      let c = mono_compare ma mb in
      if c <> 0 then c
      else begin
        let c = Rat.compare ca cb in
        if c <> 0 then c else go ra rb
      end
  in
  go a b

(* Merge two sorted term lists, combining equal monomials. *)
let add (a : t) (b : t) : t =
  let rec go a b =
    match (a, b) with
    | [], r | r, [] -> r
    | (ma, ca) :: ra, (mb, cb) :: rb ->
      let c = mono_compare ma mb in
      if c < 0 then (ma, ca) :: go ra b
      else if c > 0 then (mb, cb) :: go a rb
      else begin
        let s = Rat.add ca cb in
        if Rat.is_zero s then go ra rb else (ma, s) :: go ra rb
      end
  in
  go a b

let scale (c : Rat.t) (t : t) : t =
  if Rat.is_zero c then [] else List.map (fun (m, k) -> (m, Rat.mul c k)) t

let neg t = scale Rat.minus_one t
let sub a b = add a (neg b)

let mono_mul (a : mono) (b : mono) : mono =
  let rec go a b =
    match (a, b) with
    | [], r | r, [] -> r
    | (xa, pa) :: ra, (xb, pb) :: rb ->
      let c = atom_compare xa xb in
      if c < 0 then (xa, pa) :: go ra b
      else if c > 0 then (xb, pb) :: go a rb
      else (xa, pa + pb) :: go ra rb
  in
  go a b

let mul (a : t) (b : t) : t =
  List.fold_left
    (fun acc (ma, ca) ->
      add acc (List.map (fun (mb, cb) -> (mono_mul ma mb, Rat.mul ca cb)) b
               |> List.sort (fun (m1, _) (m2, _) -> mono_compare m1 m2)))
    zero a

let pow (t : t) n =
  if n < 0 then invalid_arg "Sym.pow: negative exponent";
  let rec go acc t n =
    if n = 0 then acc
    else go (if n land 1 = 1 then mul acc t else acc) (mul t t) (n lsr 1)
  in
  go one t n

(* [atoms t] is every atom appearing in [t], without duplicates. *)
let atoms (t : t) =
  List.fold_left
    (fun acc (m, _) ->
      List.fold_left
        (fun acc (a, _) -> if List.exists (atom_equal a) acc then acc else a :: acc)
        acc m)
    [] t
  |> List.rev

(* [eval lookup t] evaluates [t] with atom values from [lookup]; [None]
   if any atom is unknown. *)
let eval (lookup : atom -> Rat.t option) (t : t) : Rat.t option =
  let exception Unknown in
  try
    Some
      (List.fold_left
         (fun acc (m, c) ->
           let term =
             List.fold_left
               (fun acc (a, p) ->
                 match lookup a with
                 | Some v -> Rat.mul acc (Rat.pow v p)
                 | None -> raise Unknown)
               c m
           in
           Rat.add acc term)
         Rat.zero t)
  with Unknown -> None

(* [subst lookup t] replaces atoms by symbolic values where [lookup]
   provides one; other atoms stay. *)
let subst (lookup : atom -> t option) (t : t) : t =
  List.fold_left
    (fun acc (m, c) ->
      let term =
        List.fold_left
          (fun acc (a, p) ->
            let base = match lookup a with Some s -> s | None -> atom a in
            mul acc (pow base p))
          (of_rat c) m
      in
      add acc term)
    zero t

(* [degree_in a t] is the highest power of atom [a] in [t]. *)
let degree_in a (t : t) =
  List.fold_left
    (fun acc (m, _) ->
      List.fold_left
        (fun acc (x, p) -> if atom_equal x a then Stdlib.max acc p else acc)
        acc m)
    0 t

(* --- Printing --- *)

let pp_atom fmt = function
  | Param x -> Ir.Ident.pp fmt x
  | Def id -> Ir.Instr.Id.pp fmt id

(* [pp_atom_with names] prints Def atoms through a naming function, so
   "%14" renders as "k2" in classification output. *)
let pp_atom_with names fmt = function
  | Param x -> Ir.Ident.pp fmt x
  | Def id -> Format.pp_print_string fmt (names id)

let pp_mono pp_a fmt (m : mono) =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "*")
    (fun fmt (a, p) ->
      if p = 1 then pp_a fmt a else Format.fprintf fmt "%a^%d" pp_a a p)
    fmt m

let pp_with names fmt (t : t) =
  let pp_a = pp_atom_with names in
  match t with
  | [] -> Format.pp_print_string fmt "0"
  | terms ->
    List.iteri
      (fun i (m, c) ->
        let neg = Rat.sign c < 0 in
        if i = 0 then begin
          if neg then Format.pp_print_string fmt "-"
        end
        else Format.pp_print_string fmt (if neg then " - " else " + ");
        let c = Rat.abs c in
        match m with
        | [] -> Rat.pp fmt c
        | _ ->
          if Rat.equal c Rat.one then pp_mono pp_a fmt m
          else Format.fprintf fmt "%a*%a" Rat.pp c (pp_mono pp_a) m)
      terms

let pp fmt t = pp_with Ir.Instr.Id.to_string fmt t

let to_string t = Format.asprintf "%a" pp t
