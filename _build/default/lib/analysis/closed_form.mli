(** Closed-form recovery for non-linear induction variables (paper §4.3)
    by the paper's method: compute the first few values of the recurrence
    symbolically and invert the corresponding (geometric) Vandermonde
    matrix with exact rational arithmetic. *)

open Bignum

(** [polynomial ~loop ~init ~add_coeffs] solves v(h+1) = v(h) + p(h) for
    a polynomial p given by its coefficient vector: a polynomial IV one
    degree higher. *)
val polynomial : loop:int -> init:Sym.t -> add_coeffs:Sym.t array -> Ivclass.t

(** [polynomial_plus_geometric] solves v(h+1) = v(h) + p(h) +
    gcoeff·gratio^h (the sum keeps the ratio); [Unknown] when gratio is 1. *)
val polynomial_plus_geometric :
  loop:int ->
  init:Sym.t ->
  add_coeffs:Sym.t array ->
  gratio:Rat.t ->
  gcoeff:Sym.t ->
  Ivclass.t

(** [geometric ~loop ~init ~mult ~add_coeffs] solves v(h+1) = mult·v(h) +
    p(h) with mult not 0 or 1: a geometric IV with ratio [mult]. The
    polynomial part gets one degree more than p, mirroring the paper's
    worked example (the extra coefficient solves to zero). *)
val geometric :
  loop:int -> init:Sym.t -> mult:Rat.t -> add_coeffs:Sym.t array -> Ivclass.t
