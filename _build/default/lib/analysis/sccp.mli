(** Sparse conditional constant propagation (Wegman–Zadeck [WZ91]) on the
    SSA-form CFG — the substrate the paper cites for resolving the
    initial values of induction variables. *)

type lattice = Top | Const of int | Bottom

val meet : lattice -> lattice -> lattice
val lattice_equal : lattice -> lattice -> bool

type result = {
  values : lattice Ir.Instr.Id.Table.t;
  executable_blocks : bool array;
}

val value_of : result -> Ir.Instr.Id.t -> lattice

(** [const_of r id] is [Some n] when the def is a proven constant. *)
val const_of : result -> Ir.Instr.Id.t -> int option

val block_executable : result -> Ir.Label.t -> bool

val run : Ir.Ssa.t -> result

(** [fold_stats r ssa] is (constant instructions, total live instructions,
    dead blocks). *)
val fold_stats : result -> Ir.Ssa.t -> int * int * int
