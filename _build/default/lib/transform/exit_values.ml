(* Exit-value materialization: the literal transformation of the paper's
   Figure 8. When an inner loop is countable, each induction variable's
   value after the loop has a closed form (init + tc·step + the early
   increments); the paper rewrites

       kl = 0                          kl = 0
       L17: loop                       L17: loop
         il = 1                          il = 1
         L18: loop ... endloop           L18: loop ... endloop
         k5 = k4 + 2                     k6 = k2 + 101*2
       endloop                           i4 = i1 + 100*1
                                         k5 = k6 + 2
                                       endloop

   — introducing new names (k6, i4) holding the exit values so that
   references after the inner loop read closed forms instead of the
   loop-carried defs. This pass does exactly that: for every countable
   loop, every classified def with a symbolic exit value and at least one
   use outside the loop gets its exit value computed into the loop's
   (single-predecessor) exit target, and the outside uses are redirected.

   The paper's §5.4 remarks that gated SSA's loop-exit eta functions
   would provide these names for free; this pass is the "proper
   engineering ... low-cost insertion" alternative it mentions. *)

module Sym = Analysis.Sym
module Driver = Analysis.Driver

type materialization = {
  original : Ir.Instr.Id.t; (* the loop-carried def *)
  replacement : Ir.Instr.value; (* the closed-form exit value *)
  loop : int;
}

(* The uses of [d] lexically outside [loop]. *)
let has_outside_use cfg (loop : Ir.Loops.loop) d =
  let found = ref false in
  Ir.Cfg.iter_instrs cfg (fun label instr ->
      if not (Ir.Label.Set.mem label loop.Ir.Loops.blocks) then
        Array.iter
          (fun (v : Ir.Instr.value) ->
            match v with
            | Ir.Instr.Def x when Ir.Instr.Id.equal x d -> found := true
            | _ -> ())
          instr.Ir.Instr.args);
  List.iter
    (fun l ->
      if not (Ir.Label.Set.mem l loop.Ir.Loops.blocks) then
        match (Ir.Cfg.block cfg l).Ir.Cfg.term with
        | Ir.Cfg.Branch (Ir.Instr.Def x, _, _) when Ir.Instr.Id.equal x d ->
          found := true
        | _ -> ())
    (Ir.Cfg.labels cfg);
  !found

(* The single block outside the loop that its counted exit jumps to,
   when it has no other predecessors (no edge splitting needed). *)
let exit_target cfg (loop : Ir.Loops.loop) exit_block =
  match (Ir.Cfg.block cfg exit_block).Ir.Cfg.term with
  | Ir.Cfg.Branch (_, t1, t2) -> (
    let outside = List.filter (fun l -> not (Ir.Loops.contains_block loop l)) [ t1; t2 ] in
    match outside with
    | [ target ] -> (
      match Ir.Cfg.predecessors cfg target with
      | [ p ] when Ir.Label.equal p exit_block -> Some target
      | _ -> None)
    | _ -> None)
  | _ -> None

(* [materialize_loop t loop_id] rewrites one countable loop. *)
let materialize_loop (t : Driver.t) loop_id : materialization list =
  let ssa = Driver.ssa t in
  let cfg = Ir.Ssa.cfg ssa in
  let loop = Ir.Loops.loop (Ir.Ssa.loops ssa) loop_id in
  let trip = Driver.trip_count t loop_id in
  match trip.Analysis.Trip_count.exit_block with
  | None -> []
  | Some exit_block -> (
    match exit_target cfg loop exit_block with
    | None -> []
    | Some target ->
      let candidates =
        match Driver.loop_result t loop_id with
        | None -> []
        | Some r ->
          List.filter_map
            (fun (instr : Ir.Instr.t) ->
              let d = instr.Ir.Instr.id in
              match Driver.exit_value t d with
              | Some sym
                when Codegen.integral sym
                     && has_outside_use cfg loop d
                     (* Atoms must be available outside the loop. *)
                     && List.for_all
                          (fun (a : Sym.atom) ->
                            match a with
                            | Sym.Param _ -> true
                            | Sym.Def a ->
                              not
                                (Ir.Label.Set.mem
                                   (Ir.Cfg.block_of_instr cfg a)
                                   loop.Ir.Loops.blocks))
                          (Sym.atoms sym) ->
                Some (d, sym)
              | _ -> None)
            (Analysis.Ssa_graph.nodes r.Driver.graph)
      in
      List.filter_map
        (fun (d, sym) ->
          (* emit_sym appends; the uses being replaced may already live in
             the target block, so move the freshly emitted instructions to
             the block's front (it has a single predecessor and no phis). *)
          let before = List.length (Ir.Cfg.block cfg target).Ir.Cfg.instrs in
          match Codegen.emit_sym cfg target sym with
          | Some v ->
            Ir.Cfg.replace_instrs cfg target (fun instrs ->
                let rec split i acc = function
                  | rest when i = 0 -> (List.rev acc, rest)
                  | x :: rest -> split (i - 1) (x :: acc) rest
                  | [] -> (List.rev acc, [])
                in
                let original, emitted = split before [] instrs in
                emitted @ original);
            Codegen.rewrite_uses_outside cfg loop d v;
            Some { original = d; replacement = v; loop = loop_id }
          | None -> None)
        candidates)

(* [materialize t] rewrites every countable loop, inner first. *)
let materialize (t : Driver.t) : materialization list =
  let loops = Ir.Ssa.loops (Driver.ssa t) in
  List.concat_map
    (fun (lp : Ir.Loops.loop) -> materialize_loop t lp.Ir.Loops.id)
    (Ir.Loops.postorder loops)
