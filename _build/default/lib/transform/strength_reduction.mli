(** Strength reduction driven by the classification (the transformation
    classically tied to induction variable analysis, paper §1): every
    multiply proved [Linear] with integer-coefficient base and step is
    replaced by a fresh phi + add chain, justified directly by the closed
    form. The CFG is rewritten in place. *)

type reduction = {
  original : Ir.Instr.Id.t;  (** the replaced multiply *)
  phi : Ir.Instr.Id.t;  (** the new induction variable *)
  loop : int;
}

(** [reduce_loop t loop_id] rewrites one loop. *)
val reduce_loop : Analysis.Driver.t -> int -> reduction list

(** [reduce t] rewrites every loop, inner first. The analysis in [t]
    refers to the pre-rewrite CFG; re-analyze for further passes. *)
val reduce : Analysis.Driver.t -> reduction list
