(** Loop-invariant code motion driven by the classification: pure,
    speculation-safe instructions classified [Invariant] move to the
    loop preheader (division and array loads never move). *)

(** [hoist_loop t loop_id] hoists in one loop; returns the moved ids. *)
val hoist_loop : Analysis.Driver.t -> int -> Ir.Instr.Id.t list

(** [hoist t] hoists in every loop, innermost first. *)
val hoist : Analysis.Driver.t -> Ir.Instr.Id.t list
