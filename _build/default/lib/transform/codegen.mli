(** Shared code generation for the rewriting passes. *)

module Sym = Analysis.Sym

(** [emit_sym cfg block s] appends instructions computing the symbolic
    polynomial [s] at the end of [block]; [None] when a coefficient is
    not an integer. The atoms must dominate [block]. *)
val emit_sym : Ir.Cfg.t -> Ir.Label.t -> Sym.t -> Ir.Instr.value option

(** [integral s]: every coefficient is an integer. *)
val integral : Sym.t -> bool

(** [rewrite_uses cfg old_id v] redirects every use (instruction operands
    and branch conditions). *)
val rewrite_uses : Ir.Cfg.t -> Ir.Instr.Id.t -> Ir.Instr.value -> unit

(** [rewrite_uses_outside cfg loop old_id v] redirects only uses lexically
    outside [loop]. *)
val rewrite_uses_outside :
  Ir.Cfg.t -> Ir.Loops.loop -> Ir.Instr.Id.t -> Ir.Instr.value -> unit
