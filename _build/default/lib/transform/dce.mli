(** Dead code elimination on the SSA-form CFG: mark-and-sweep from the
    observable roots (array stores, the random source, branch
    conditions). *)

(** [run cfg] deletes unused pure instructions; returns how many. *)
val run : Ir.Cfg.t -> int
