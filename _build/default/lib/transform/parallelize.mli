(** Parallelization legality from the dependence graph: a loop's
    iterations are independent (w.r.t. array traffic) when no dependence
    is carried by it — the optimization the paper's dependence
    translations unlock (§4.2 relaxation sweeps, §4.4 pack loops). Scalar
    reductions are outside this check's scope. *)

val edge_carried_by : int -> Dependence.Dep_graph.edge -> bool

(** [carried_edges edges l] lists the dependences keeping loop [l]
    serial. *)
val carried_edges :
  Dependence.Dep_graph.edge list -> int -> Dependence.Dep_graph.edge list

(** [parallel_loops t] decides for every loop of the program. *)
val parallel_loops : Analysis.Driver.t -> (Ir.Loops.loop * bool) list

val report : Analysis.Driver.t -> string
