(** Loop normalization (paper §6.1): rewrite every 'for' loop to run from
    0 with step 1, substituting i := i'·step + lo in the body. Provided to
    reproduce the paper's L23/L24 distance-vector discussion; the SSA
    classification itself is insensitive to the loop's textual shape. *)

(** [normalize p] rewrites all 'for' loops.
    @raise Invalid_argument when a body assigns its own index. *)
val normalize : Ir.Ast.program -> Ir.Ast.program
