(** Loop interchange for perfect 2-deep nests, with legality decided by
    the dependence graph (paper §6.1: the triangular nest's
    iteration-space distance (1, -1) is exactly what blocks it). *)

(** A direction vector (outer <, inner >) blocks interchange. *)
val edge_blocks_interchange :
  outer:int -> inner:int -> Dependence.Dep_graph.edge -> bool

(** [legal edges ~outer ~inner] from an already-built dependence graph. *)
val legal : Dependence.Dep_graph.edge list -> outer:int -> inner:int -> bool

(** [apply p ~outer_name] swaps the named perfect nest.
    @raise Invalid_argument if the nest is not perfect or the inner
    bounds depend on the outer index (skew first). *)
val apply : Ir.Ast.program -> outer_name:string -> Ir.Ast.program

(** [legal_for_source src ~outer_name ~inner_name] is the whole check;
    [None] when the loops are not found. *)
val legal_for_source :
  string -> outer_name:string -> inner_name:string -> bool option
