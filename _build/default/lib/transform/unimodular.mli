(** Unimodular loop transformations over distance vectors (paper §6.1:
    "loop skewing and loop interchanging as a single transformation ...
    currently in vogue as unimodular transformations"). A transformation
    T with |det T| = 1 is legal iff it keeps every carried distance
    vector lexicographically positive. *)

type matrix = int array array  (** row-major, square *)

val identity : int -> matrix
val interchange_2d : matrix

(** [skew_2d f] skews the inner loop by [f]·outer. *)
val skew_2d : int -> matrix

val multiply : matrix -> matrix -> matrix
val apply_vec : matrix -> int array -> int array
val determinant_2d : matrix -> int
val is_unimodular_2d : matrix -> bool
val lex_positive : int array -> bool
val lex_nonnegative : int array -> bool

(** [legal t dvs]: every carried vector stays lexicographically positive. *)
val legal : matrix -> int array list -> bool

(** [make_interchangeable dvs] searches skew factors f for a legal
    interchange∘skew(f) — the paper's triangular example needs f >= 1. *)
val make_interchangeable : ?max_skew:int -> int array list -> matrix option

(** [distance_vectors edges ~outer ~inner] extracts exact 2-D distance
    vectors; [None] when some dependence lacks them. *)
val distance_vectors :
  Dependence.Dep_graph.edge list -> outer:int -> inner:int -> int array list option

val pp_matrix : Format.formatter -> matrix -> unit
