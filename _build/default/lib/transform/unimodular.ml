(* Unimodular loop transformations over distance vectors (paper §6.1:
   "It may also force compilers to implement loop skewing and loop
   interchanging as a single transformation ... currently in vogue as
   unimodular transformations [WL91, Ban91]").

   A transformation T (an integer matrix with |det T| = 1) applied to the
   iteration space maps each dependence distance vector d to T·d; it is
   legal iff every transformed vector stays lexicographically positive.
   This module provides the legality check, the classic generator
   matrices, and the search the paper alludes to: make a nest
   interchangeable by skewing first. *)

type matrix = int array array (* row-major, square *)

let identity n = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1 else 0))

let interchange_2d : matrix = [| [| 0; 1 |]; [| 1; 0 |] |]

(* Skew the inner loop by [f] times the outer index. *)
let skew_2d f : matrix = [| [| 1; 0 |]; [| f; 1 |] |]

let multiply (a : matrix) (b : matrix) : matrix =
  let n = Array.length a in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let acc = ref 0 in
          for k = 0 to n - 1 do
            acc := !acc + (a.(i).(k) * b.(k).(j))
          done;
          !acc))

let apply_vec (t : matrix) (d : int array) : int array =
  Array.init (Array.length t) (fun i ->
      let acc = ref 0 in
      Array.iteri (fun j dj -> acc := !acc + (t.(i).(j) * dj)) d;
      !acc)

let determinant_2d (t : matrix) = (t.(0).(0) * t.(1).(1)) - (t.(0).(1) * t.(1).(0))

let is_unimodular_2d t = abs (determinant_2d t) = 1

let lex_positive (d : int array) =
  let rec go i =
    if i >= Array.length d then false (* the zero vector is not a carried dep *)
    else if d.(i) > 0 then true
    else if d.(i) < 0 then false
    else go (i + 1)
  in
  go 0

let lex_nonnegative (d : int array) = Array.for_all (fun x -> x = 0) d || lex_positive d

(* [legal t dvs] holds when every (carried) distance vector stays
   lexicographically positive under [t]. *)
let legal (t : matrix) (dvs : int array list) =
  List.for_all
    (fun d -> (not (lex_positive d)) || lex_positive (apply_vec t d))
    dvs

(* [make_interchangeable dvs] searches for a skew factor f such that
   skewing then interchanging is legal: the compound transformation
   interchange * skew(f). Returns the compound matrix. This is the
   paper's "loop skewing and loop interchanging as a single
   transformation" on the triangular example: distance (1, -1) needs
   f >= 1. *)
let make_interchangeable ?(max_skew = 8) (dvs : int array list) : matrix option =
  let rec try_f f =
    if f > max_skew then None
    else begin
      let t = multiply interchange_2d (skew_2d f) in
      if legal t dvs then Some t else try_f (f + 1)
    end
  in
  try_f 0

(* [distance_vectors edges ~outer ~inner] extracts the 2-D distance
   vectors the legality checks consume; [None] when some dependence has
   no exact distances (conservative callers should refuse). *)
let distance_vectors (edges : Dependence.Dep_graph.edge list) ~outer ~inner =
  let module Deptest = Dependence.Deptest in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | (e : Dependence.Dep_graph.edge) :: rest -> (
      match e.Dependence.Dep_graph.outcome with
      | Deptest.Independent -> go acc rest
      | Deptest.Dependent d -> (
        match d.Deptest.distance with
        | Some dists ->
          let v =
            [|
              Option.value ~default:0 (List.assoc_opt outer dists);
              Option.value ~default:0 (List.assoc_opt inner dists);
            |]
          in
          go (v :: acc) rest
        | None -> None))
  in
  go [] edges

let pp_matrix fmt (t : matrix) =
  Format.fprintf fmt "@[<v>";
  Array.iter
    (fun row ->
      Format.fprintf fmt "[%s]@,"
        (String.concat " " (Array.to_list (Array.map string_of_int row))))
    t;
  Format.fprintf fmt "@]"
