(* Strength reduction driven by the classification — the transformation
   classically tied to induction variable analysis (paper §1).

   Every multiplication in a loop that the classifier proved to be a
   linear induction variable (value = b + s*h with integer-coefficient
   symbolic b, s) is replaced by an addition chain:

     preheader:  t0 = <code for b>
                 ts = <code for s>
     header:     t  = phi(t0, t')
     latches:    t' = t + ts

   and every use of the multiplication reads the phi instead. The
   correctness argument is the classification itself: the multiply's
   value during iteration h equals b + s*h, which is exactly the phi's
   value. The tests validate the rewrite by running the reference
   interpreter on both versions and comparing the full array traffic. *)

module Sym = Analysis.Sym
module Ivclass = Analysis.Ivclass
module Driver = Analysis.Driver

type reduction = {
  original : Ir.Instr.Id.t; (* the multiply that was replaced *)
  phi : Ir.Instr.Id.t; (* the new induction variable *)
  loop : int;
}

(* The unique block outside the loop jumping to its header. *)
let preheader_of cfg (loop : Ir.Loops.loop) =
  let preds = Ir.Cfg.predecessors cfg loop.Ir.Loops.header in
  match List.filter (fun p -> not (Ir.Label.Set.mem p loop.Ir.Loops.blocks)) preds with
  | [ p ] -> Some p
  | _ -> None

(* [reduce_loop t loop_id] strength-reduces one loop; returns the list of
   reductions performed. The CFG is modified in place. *)
let reduce_loop (t : Driver.t) loop_id : reduction list =
  let ssa = Driver.ssa t in
  let cfg = Ir.Ssa.cfg ssa in
  let loops = Ir.Ssa.loops ssa in
  let loop = Ir.Loops.loop loops loop_id in
  match (Driver.loop_result t loop_id, preheader_of cfg loop) with
  | Some r, Some preheader ->
    (* Candidate multiplies: classified linear, with integral base and
       step, and genuinely varying (non-invariant). *)
    let candidates =
      List.filter_map
        (fun (instr : Ir.Instr.t) ->
          match instr.Ir.Instr.op with
          | Ir.Instr.Binop Ir.Ops.Mul -> (
            match Ir.Instr.Id.Table.find_opt r.Driver.table instr.Ir.Instr.id with
            | Some (Ivclass.Linear { base = Ivclass.Invariant b; step; loop = l })
              when l = loop_id && Codegen.integral b && Codegen.integral step
                   && not (Sym.is_zero step) ->
              Some (instr, b, step)
            | _ -> None)
          | _ -> None)
        (Analysis.Ssa_graph.nodes r.Driver.graph)
    in
    List.filter_map
      (fun ((instr : Ir.Instr.t), b, step) ->
        match (Codegen.emit_sym cfg preheader b, Codegen.emit_sym cfg preheader step) with
        | Some init_v, Some step_v ->
          (* phi at the header; increment at each latch. *)
          let header_preds = Ir.Cfg.predecessors cfg loop.Ir.Loops.header in
          let phi =
            Ir.Cfg.prepend cfg loop.Ir.Loops.header Ir.Instr.Phi
              (Array.make (List.length header_preds) (Ir.Instr.Const 0))
          in
          let incr_of : (Ir.Label.t, Ir.Instr.value) Hashtbl.t = Hashtbl.create 4 in
          List.iter
            (fun latch ->
              let add =
                Ir.Cfg.append cfg latch (Ir.Instr.Binop Ir.Ops.Add)
                  [| Ir.Instr.Def phi.Ir.Instr.id; step_v |]
              in
              Hashtbl.replace incr_of latch (Ir.Instr.Def add.Ir.Instr.id))
            loop.Ir.Loops.latches;
          List.iteri
            (fun i p ->
              phi.Ir.Instr.args.(i) <-
                (if Ir.Label.Set.mem p loop.Ir.Loops.blocks then
                   Option.value ~default:(Ir.Instr.Const 0) (Hashtbl.find_opt incr_of p)
                 else init_v))
            header_preds;
          Codegen.rewrite_uses cfg instr.Ir.Instr.id (Ir.Instr.Def phi.Ir.Instr.id);
          (* Drop the multiply itself. *)
          let mul_block = Ir.Cfg.block_of_instr cfg instr.Ir.Instr.id in
          Ir.Cfg.replace_instrs cfg mul_block (fun instrs ->
              List.filter
                (fun (i : Ir.Instr.t) ->
                  not (Ir.Instr.Id.equal i.Ir.Instr.id instr.Ir.Instr.id))
                instrs);
          Some { original = instr.Ir.Instr.id; phi = phi.Ir.Instr.id; loop = loop_id }
        | _ -> None)
      candidates
  | _ -> []

(* [reduce t] strength-reduces every loop (inner loops first); returns
   all reductions. Note: [t]'s classification tables refer to the CFG
   before rewriting; re-analyze if classifications are needed after. *)
let reduce (t : Driver.t) : reduction list =
  let loops = Ir.Ssa.loops (Driver.ssa t) in
  List.concat_map
    (fun (lp : Ir.Loops.loop) -> reduce_loop t lp.Ir.Loops.id)
    (Ir.Loops.postorder loops)
