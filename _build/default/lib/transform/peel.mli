(** First-iteration loop peeling (paper §4.1): the "standard compiler
    trick" that turns a wrap-around variable into a plain induction
    variable — after peeling, the classifier's promotion rule fires. *)

(** [peel_loop name body] peels one iteration off an infinite loop (the
    peeled copy's exits skip the remaining loop). *)
val peel_loop : string -> Ir.Ast.stmt list -> Ir.Ast.stmt

(** [peel_for f] peels the first iteration of a 'for' loop (guarded by
    the entry condition). *)
val peel_for : Ir.Ast.for_loop -> Ir.Ast.stmt list

(** [peel_named name p] peels the loop labelled [name] wherever it
    occurs. *)
val peel_named : string -> Ir.Ast.program -> Ir.Ast.program
