(* Shared code generation: materialize a symbolic polynomial as
   straight-line tuple IR at the end of a block. Used by strength
   reduction (initial values and steps) and by exit-value
   materialization (the paper's Fig 8 k6/i4 insertions). *)

module Sym = Analysis.Sym
open Bignum

(* [emit_sym cfg block s] appends instructions computing [s]; [None] when
   a coefficient is not an integer (fractional closed forms have no
   integer-arithmetic program). Atoms must dominate [block]. *)
let emit_sym (cfg : Ir.Cfg.t) block (s : Sym.t) : Ir.Instr.value option =
  let emit op args = Ir.Instr.Def (Ir.Cfg.append cfg block op args).Ir.Instr.id in
  let atom_value (a : Sym.atom) =
    match a with
    | Sym.Param x -> Ir.Instr.Param x
    | Sym.Def d -> Ir.Instr.Def d
  in
  let term (mono, coeff) =
    match Rat.to_int_exact coeff with
    | None -> None
    | Some c ->
      let factors =
        List.concat_map (fun (a, p) -> List.init p (fun _ -> atom_value a)) mono
      in
      let product =
        match factors with
        | [] -> Ir.Instr.Const c
        | first :: rest ->
          let m =
            List.fold_left
              (fun acc v -> emit (Ir.Instr.Binop Ir.Ops.Mul) [| acc; v |])
              first rest
          in
          if c = 1 then m else emit (Ir.Instr.Binop Ir.Ops.Mul) [| Ir.Instr.Const c; m |]
      in
      Some product
  in
  let rec sum acc = function
    | [] -> Some acc
    | t :: rest -> (
      match term t with
      | None -> None
      | Some v -> sum (emit (Ir.Instr.Binop Ir.Ops.Add) [| acc; v |]) rest)
  in
  match (s : (Sym.mono * Rat.t) list) with
  | [] -> Some (Ir.Instr.Const 0)
  | first :: rest -> (
    match term first with
    | None -> None
    | Some v -> sum v rest)

(* [integral s] holds when every coefficient is an integer. *)
let integral (s : Sym.t) =
  List.for_all
    (fun ((_, c) : Sym.mono * Rat.t) -> Option.is_some (Rat.to_int_exact c))
    (s : (Sym.mono * Rat.t) list)

(* [rewrite_uses cfg old_id new_v] redirects every use (instructions and
   branch conditions). *)
let rewrite_uses cfg old_id new_v =
  Ir.Cfg.iter_instrs cfg (fun _ instr ->
      instr.Ir.Instr.args <-
        Array.map
          (fun (v : Ir.Instr.value) ->
            match v with
            | Ir.Instr.Def d when Ir.Instr.Id.equal d old_id -> new_v
            | v -> v)
          instr.Ir.Instr.args);
  List.iter
    (fun l ->
      let b = Ir.Cfg.block cfg l in
      match b.Ir.Cfg.term with
      | Ir.Cfg.Branch (Ir.Instr.Def d, t1, t2) when Ir.Instr.Id.equal d old_id ->
        b.Ir.Cfg.term <- Ir.Cfg.Branch (new_v, t1, t2)
      | _ -> ())
    (Ir.Cfg.labels cfg)

(* [rewrite_uses_outside cfg loop old_id new_v] redirects only the uses
   lexically outside [loop] (exit-value substitution). *)
let rewrite_uses_outside cfg (loop : Ir.Loops.loop) old_id new_v =
  Ir.Cfg.iter_instrs cfg (fun label instr ->
      if not (Ir.Label.Set.mem label loop.Ir.Loops.blocks) then
        instr.Ir.Instr.args <-
          Array.map
            (fun (v : Ir.Instr.value) ->
              match v with
              | Ir.Instr.Def d when Ir.Instr.Id.equal d old_id -> new_v
              | v -> v)
            instr.Ir.Instr.args);
  List.iter
    (fun l ->
      if not (Ir.Label.Set.mem l loop.Ir.Loops.blocks) then begin
        let b = Ir.Cfg.block cfg l in
        match b.Ir.Cfg.term with
        | Ir.Cfg.Branch (Ir.Instr.Def d, t1, t2) when Ir.Instr.Id.equal d old_id ->
          b.Ir.Cfg.term <- Ir.Cfg.Branch (new_v, t1, t2)
        | _ -> ()
      end)
    (Ir.Cfg.labels cfg)
