lib/transform/normalize.mli: Ir
