lib/transform/parallelize.ml: Analysis Buffer Dependence Ir List Printf
