lib/transform/interchange.mli: Dependence Ir
