lib/transform/exit_values.ml: Analysis Array Codegen Ir List
