lib/transform/dce.ml: Array Ir List Queue
