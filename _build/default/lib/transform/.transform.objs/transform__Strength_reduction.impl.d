lib/transform/strength_reduction.ml: Analysis Array Codegen Hashtbl Ir List Option
