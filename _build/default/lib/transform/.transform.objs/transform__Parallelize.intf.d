lib/transform/parallelize.mli: Analysis Dependence Ir
