lib/transform/peel.ml: Ir List String
