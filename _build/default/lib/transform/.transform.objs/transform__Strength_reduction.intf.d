lib/transform/strength_reduction.mli: Analysis Ir
