lib/transform/dce.mli: Ir
