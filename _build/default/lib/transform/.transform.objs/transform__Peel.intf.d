lib/transform/peel.mli: Ir
