lib/transform/codegen.ml: Analysis Array Bignum Ir List Option Rat
