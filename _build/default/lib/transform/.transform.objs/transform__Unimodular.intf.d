lib/transform/unimodular.mli: Dependence Format
