lib/transform/licm.mli: Analysis Ir
