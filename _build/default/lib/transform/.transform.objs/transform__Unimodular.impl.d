lib/transform/unimodular.ml: Array Dependence Format List Option String
