lib/transform/exit_values.mli: Analysis Ir
