lib/transform/codegen.mli: Analysis Ir
