lib/transform/licm.ml: Analysis Array Ir List
