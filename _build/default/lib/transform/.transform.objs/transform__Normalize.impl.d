lib/transform/normalize.ml: Ir List Printf
