lib/transform/interchange.ml: Analysis Dependence Ir List Option String
