(* Loop-invariant code motion, driven by the classification: an
   instruction whose class is [Invariant] computes the same value on
   every iteration, so if it is pure, safe to speculate, and its operands
   are available at the preheader, it can be hoisted there.

   Safety notes:
     - division is not hoisted (a guard may be protecting a zero
       divisor);
     - array loads are not hoisted (stores in the loop may change them;
       the classifier already reports them Unknown);
     - operand availability is checked by requiring every [Def] operand
       to be defined outside the loop or hoisted by this same pass. *)

module Ivclass = Analysis.Ivclass
module Driver = Analysis.Driver

let hoistable_op (op : Ir.Instr.op) =
  match op with
  | Ir.Instr.Binop (Ir.Ops.Add | Ir.Ops.Sub | Ir.Ops.Mul) | Ir.Instr.Neg
  | Ir.Instr.Relop _ ->
    true
  | Ir.Instr.Binop (Ir.Ops.Div | Ir.Ops.Exp)
  | Ir.Instr.Phi | Ir.Instr.Aload _ | Ir.Instr.Astore _ | Ir.Instr.Rand
  | Ir.Instr.Load _ | Ir.Instr.Store _ ->
    false

let preheader_of cfg (loop : Ir.Loops.loop) =
  let preds = Ir.Cfg.predecessors cfg loop.Ir.Loops.header in
  match List.filter (fun p -> not (Ir.Label.Set.mem p loop.Ir.Loops.blocks)) preds with
  | [ p ] -> Some p
  | _ -> None

(* [hoist_loop t loop_id] moves invariant instructions of one loop to its
   preheader; returns the hoisted instruction ids. *)
let hoist_loop (t : Driver.t) loop_id : Ir.Instr.Id.t list =
  let ssa = Driver.ssa t in
  let cfg = Ir.Ssa.cfg ssa in
  let loop = Ir.Loops.loop (Ir.Ssa.loops ssa) loop_id in
  match (Driver.loop_result t loop_id, preheader_of cfg loop) with
  | Some r, Some preheader ->
    let hoisted : unit Ir.Instr.Id.Table.t = Ir.Instr.Id.Table.create 8 in
    let available (v : Ir.Instr.value) =
      match v with
      | Ir.Instr.Const _ | Ir.Instr.Param _ -> true
      | Ir.Instr.Def d ->
        Ir.Instr.Id.Table.mem hoisted d
        || not (Ir.Label.Set.mem (Ir.Cfg.block_of_instr cfg d) loop.Ir.Loops.blocks)
    in
    let moved = ref [] in
    (* Process in program order so operand chains hoist together. *)
    List.iter
      (fun (instr : Ir.Instr.t) ->
        let invariant =
          match Ir.Instr.Id.Table.find_opt r.Driver.table instr.Ir.Instr.id with
          | Some (Ivclass.Invariant _) -> true
          | _ -> false
        in
        if
          invariant
          && hoistable_op instr.Ir.Instr.op
          && Array.for_all available instr.Ir.Instr.args
        then begin
          (* Remove from its block, append to the preheader. *)
          let from_block = Ir.Cfg.block_of_instr cfg instr.Ir.Instr.id in
          Ir.Cfg.replace_instrs cfg from_block (fun instrs ->
              List.filter
                (fun (i : Ir.Instr.t) ->
                  not (Ir.Instr.Id.equal i.Ir.Instr.id instr.Ir.Instr.id))
                instrs);
          Ir.Cfg.replace_instrs cfg preheader (fun instrs -> instrs @ [ instr ]);
          Ir.Instr.Id.Table.replace hoisted instr.Ir.Instr.id ();
          moved := instr.Ir.Instr.id :: !moved
        end)
      (Analysis.Ssa_graph.nodes r.Driver.graph);
    List.rev !moved
  | _ -> []

(* [hoist t] hoists in every loop, innermost first (so inner-hoisted code
   can cascade out of enclosing loops on a re-analysis). *)
let hoist (t : Driver.t) : Ir.Instr.Id.t list =
  let loops = Ir.Ssa.loops (Driver.ssa t) in
  List.concat_map
    (fun (lp : Ir.Loops.loop) -> hoist_loop t lp.Ir.Loops.id)
    (Ir.Loops.postorder loops)
