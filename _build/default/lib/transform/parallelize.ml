(* Parallelization/vectorization legality from the dependence graph: a
   loop can run its iterations in parallel when no dependence is carried
   by it — the optimization the paper's dependence translations unlock
   (e.g. the relaxation sweep of §4.2 once '=' is disproved on the plane
   subscripts, and the pack loop of §4.4 once the write subscript is
   strictly monotonic). *)

module Deptest = Dependence.Deptest
module Dep_graph = Dependence.Dep_graph
module Driver = Analysis.Driver

(* A dependence is carried by loop [l] when source and sink can be in
   different iterations of [l] (direction < or > feasible). *)
let edge_carried_by l (e : Dep_graph.edge) =
  match e.Dep_graph.outcome with
  | Deptest.Independent -> false
  | Deptest.Dependent d -> (
    match List.assoc_opt l d.Deptest.directions with
    | Some ds -> ds.Deptest.lt || ds.Deptest.gt
    | None ->
      (* The loop does not enclose both references: not carried by it. *)
      false)

(* [carried_edges t edges l] lists the dependences preventing loop [l]
   from running in parallel. *)
let carried_edges (edges : Dep_graph.edge list) l =
  List.filter (edge_carried_by l) edges

(* [parallel_loops t] analyzes the program and returns, for every loop,
   whether its iterations are independent. *)
let parallel_loops (t : Driver.t) : (Ir.Loops.loop * bool) list =
  let edges = Dep_graph.build t in
  let loops = Ir.Ssa.loops (Driver.ssa t) in
  List.map
    (fun (lp : Ir.Loops.loop) ->
      (lp, carried_edges edges lp.Ir.Loops.id = []))
    (Ir.Loops.postorder loops)

let report t =
  let buf = Buffer.create 256 in
  List.iter
    (fun ((lp : Ir.Loops.loop), ok) ->
      Buffer.add_string buf
        (Printf.sprintf "loop %s: %s\n" lp.Ir.Loops.name
           (if ok then "parallelizable (no carried dependences)"
            else "serial (carried dependences)")))
    (parallel_loops t);
  Buffer.contents buf
