(** Exit-value materialization — the literal transformation of the
    paper's Figure 8: for every countable loop, classified definitions
    with closed-form exit values and uses after the loop get those exit
    values computed into the loop's exit block (the paper's new names k6,
    i4), and the outside uses are redirected. §5.4's loop-exit eta
    functions would provide these names for free; this is the "proper
    engineering" alternative the paper mentions. *)

type materialization = {
  original : Ir.Instr.Id.t;  (** the loop-carried def *)
  replacement : Ir.Instr.value;  (** the closed-form exit value *)
  loop : int;
}

val materialize_loop : Analysis.Driver.t -> int -> materialization list

(** [materialize t] rewrites every countable loop, inner first. The CFG
    is modified in place; re-analyze for further passes. *)
val materialize : Analysis.Driver.t -> materialization list
