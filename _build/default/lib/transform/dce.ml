(* Dead code elimination on the SSA-form CFG: mark-and-sweep from the
   observable roots (array stores, branch conditions, the random source,
   whose consumption order is observable through '??').

   Used after strength reduction to sweep the replaced multiplies' now
   dead operand chains, and as a standalone pass. *)

let is_root (i : Ir.Instr.t) =
  match i.Ir.Instr.op with
  | Ir.Instr.Astore _ | Ir.Instr.Rand -> true
  | _ -> false

(* [run cfg] deletes unused pure instructions; returns how many. *)
let run (cfg : Ir.Cfg.t) : int =
  let live : unit Ir.Instr.Id.Table.t = Ir.Instr.Id.Table.create 256 in
  let work : Ir.Instr.t Queue.t = Queue.create () in
  let mark_value (v : Ir.Instr.value) =
    match v with
    | Ir.Instr.Def d when not (Ir.Instr.Id.Table.mem live d) -> (
      match Ir.Cfg.find_instr_opt cfg d with
      | Some instr ->
        Ir.Instr.Id.Table.replace live d ();
        Queue.push instr work
      | None -> ())
    | _ -> ()
  in
  Ir.Cfg.iter_instrs cfg (fun _ i ->
      if is_root i then begin
        Ir.Instr.Id.Table.replace live i.Ir.Instr.id ();
        Queue.push i work
      end);
  List.iter
    (fun l ->
      match (Ir.Cfg.block cfg l).Ir.Cfg.term with
      | Ir.Cfg.Branch (v, _, _) -> mark_value v
      | Ir.Cfg.Jump _ | Ir.Cfg.Halt -> ())
    (Ir.Cfg.labels cfg);
  while not (Queue.is_empty work) do
    let i = Queue.pop work in
    Array.iter mark_value i.Ir.Instr.args
  done;
  let removed = ref 0 in
  List.iter
    (fun l ->
      Ir.Cfg.replace_instrs cfg l (fun instrs ->
          List.filter
            (fun (i : Ir.Instr.t) ->
              let keep = Ir.Instr.Id.Table.mem live i.Ir.Instr.id in
              if not keep then incr removed;
              keep)
            instrs))
    (Ir.Cfg.labels cfg);
  !removed
