(** Affine view of a subscript classification:
    value = const + sum over loops of step_L·h_L, valid from iteration
    [holds_after] on (the §6 wrap-around translation). Multiloop linear
    IVs flatten to one term per loop. *)

module Sym = Analysis.Sym
module Ivclass = Analysis.Ivclass

type t = {
  terms : (int * Sym.t) list;  (** loop id -> per-iteration step *)
  const : Sym.t;  (** value at the all-zeros iteration vector *)
  holds_after : int;  (** wrap-around order *)
  wrap_loop : int option;  (** the loop the first values belong to *)
  initials : Sym.t list;  (** values at h = 0 .. holds_after-1 *)
}

val invariant : Sym.t -> t

(** [of_class c] is the affine view, when the class has one (polynomial,
    geometric, periodic and monotonic classes do not). *)
val of_class : Ivclass.t -> t option

(** [coeff t loop] is the step in [loop] (zero when absent). *)
val coeff : t -> int -> Sym.t

(** [loops t] lists the loops the subscript varies in. *)
val loops : t -> int list

val pp : Format.formatter -> t -> unit
