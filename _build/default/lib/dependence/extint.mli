(** Integers extended with infinities, for Banerjee-style bounds where a
    loop bound may be unknown or unbounded. *)

type t = Neg_inf | Fin of int | Pos_inf

val zero : t
val of_int : int -> t

(** @raise Invalid_argument on adding opposite infinities. *)
val add : t -> t -> t

(** [mul_scalar c x] multiplies by a finite integer. *)
val mul_scalar : int -> t -> t

val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t
val le : t -> t -> bool
val pp : Format.formatter -> t -> unit
