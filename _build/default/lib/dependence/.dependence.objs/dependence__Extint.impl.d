lib/dependence/extint.ml: Format Stdlib
