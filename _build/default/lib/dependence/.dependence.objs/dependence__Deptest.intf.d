lib/dependence/deptest.mli: Affine Analysis Format Ir
