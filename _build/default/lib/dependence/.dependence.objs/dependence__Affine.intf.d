lib/dependence/affine.mli: Analysis Format
