lib/dependence/deptest.ml: Affine Analysis Array Bignum Extint Format Fun Ir List Option Printf Rat Stdlib
