lib/dependence/affine.ml: Analysis Bignum Format List Option Rat Stdlib
