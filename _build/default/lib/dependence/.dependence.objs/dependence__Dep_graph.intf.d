lib/dependence/dep_graph.mli: Analysis Deptest Format Ir
