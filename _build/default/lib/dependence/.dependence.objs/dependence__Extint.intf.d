lib/dependence/extint.mli: Format
