lib/dependence/dep_graph.ml: Affine Analysis Array Deptest Format Fun Hashtbl Ir List Option Stdlib
