(* Integers extended with infinities, for Banerjee-style bound
   computations where a loop bound may be unknown or infinite. *)

type t = Neg_inf | Fin of int | Pos_inf

let zero = Fin 0
let of_int n = Fin n

let add a b =
  match (a, b) with
  | Fin x, Fin y -> Fin (x + y)
  | Pos_inf, Neg_inf | Neg_inf, Pos_inf ->
    invalid_arg "Extint.add: opposite infinities"
  | Pos_inf, _ | _, Pos_inf -> Pos_inf
  | Neg_inf, _ | _, Neg_inf -> Neg_inf

(* [mul_scalar c x] multiplies by a finite integer. *)
let mul_scalar c x =
  match x with
  | Fin v -> Fin (c * v)
  | Pos_inf -> if c > 0 then Pos_inf else if c < 0 then Neg_inf else Fin 0
  | Neg_inf -> if c > 0 then Neg_inf else if c < 0 then Pos_inf else Fin 0

let compare a b =
  match (a, b) with
  | Neg_inf, Neg_inf | Pos_inf, Pos_inf -> 0
  | Neg_inf, _ -> -1
  | _, Neg_inf -> 1
  | Pos_inf, _ -> 1
  | _, Pos_inf -> -1
  | Fin x, Fin y -> Stdlib.compare x y

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let le a b = compare a b <= 0

let pp fmt = function
  | Neg_inf -> Format.pp_print_string fmt "-inf"
  | Pos_inf -> Format.pp_print_string fmt "+inf"
  | Fin n -> Format.pp_print_int fmt n
