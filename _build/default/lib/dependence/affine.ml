(* Affine view of a subscript classification: value = const + sum over
   loops of step_L * h_L, valid from iteration [holds_after] on (the
   wrap-around translation of paper §6: the dependence relation holds
   only after the first k iterations).

   Multiloop induction variables (nested linear tuples) flatten to one
   term per loop; polynomial/geometric classes are not affine and are
   reported as such so the driver can fall back to weaker conclusions. *)

module Sym = Analysis.Sym
module Ivclass = Analysis.Ivclass
open Bignum

type t = {
  terms : (int * Sym.t) list; (* loop id -> per-iteration step; no dups *)
  const : Sym.t; (* value at the all-zeros iteration vector *)
  holds_after : int; (* wrap-around order *)
  wrap_loop : int option; (* the loop the first values belong to *)
  initials : Sym.t list; (* values at h = 0 .. holds_after-1 *)
}

let invariant s =
  { terms = []; const = s; holds_after = 0; wrap_loop = None; initials = [] }

let add_term t loop step =
  let rec go = function
    | [] -> [ (loop, step) ]
    | (l, s) :: rest when l = loop -> (l, Sym.add s step) :: rest
    | x :: rest -> x :: go rest
  in
  { t with terms = go t.terms }

(* [of_class c] is the affine view of a classification, when it has one. *)
let rec of_class (c : Ivclass.t) : t option =
  match c with
  | Ivclass.Invariant s -> Some (invariant s)
  | Ivclass.Linear { loop; base; step } -> (
    match of_class base with
    | Some b -> Some (add_term b loop step)
    | None -> None)
  | Ivclass.Wrap { loop; order; inner; initials } -> (
    (* value(h_L) = inner(h_L - order): shift the constant term; the
       first [order] iterations take the recorded initial values. *)
    match of_class inner with
    | Some a ->
      let step_l =
        Option.value ~default:Sym.zero (List.assoc_opt loop a.terms)
      in
      Some
        {
          a with
          const = Sym.sub a.const (Sym.scale (Rat.of_int order) step_l);
          holds_after = Stdlib.max order a.holds_after;
          wrap_loop = Some loop;
          initials;
        }
    | None -> None)
  | Ivclass.Unknown | Ivclass.Poly _ | Ivclass.Geometric _ | Ivclass.Periodic _
  | Ivclass.Monotonic _ ->
    None

(* [coeff t loop] is the step of [t] in [loop] (zero when absent). *)
let coeff t loop = Option.value ~default:Sym.zero (List.assoc_opt loop t.terms)

(* [loops t] lists the loops the subscript varies in. *)
let loops t = List.map fst t.terms

let pp fmt t =
  Format.fprintf fmt "%a" Sym.pp t.const;
  List.iter (fun (l, s) -> Format.fprintf fmt " + (%a)*h%d" Sym.pp s l) t.terms;
  if t.holds_after > 0 then Format.fprintf fmt " [after %d]" t.holds_after
