(* The classification soundness oracle: every non-Unknown classification
   must agree with what the reference interpreter observes, on the whole
   paper corpus and on randomly generated programs. *)

let corpus =
  [
    ( "fig1",
      "j = n\nL7: loop\n  i = j + c\n  j = i + k\n  if ?? exit\nendloop\nA(j) = i" );
    ( "fig3",
      "i = 1\nL8: loop\n  if ?? then\n    i = i + 2\n  else\n    i = i + 2\n  endif\n  if ?? exit\nendloop\nA(i) = 1" );
    ( "fig4",
      "k = 9\nj = 8\ni = 1\nL10: loop\n  A(k) = A(j) + A(i)\n  k = j\n  j = i\n  i = i + 1\n  if i > 30 exit\nendloop" );
    ( "fig5",
      "j = 1\nk = 2\nl = 3\nt = 0\nL13: loop\n  A(t) = 1\n  t = j\n  j = k\n  k = l\n  l = t\n  B(j) = A(k)\n  if ?? exit\nendloop" );
    ( "fig6",
      "k = 0\nL16: loop\n  if ?? then\n    k = k + 1\n  else\n    k = k + 2\n  endif\n  if k > 40 exit\nendloop\nA(k) = 1" );
    ( "fig10",
      "k = 0\nL15: for i = 1 to 25 loop\n  F(k) = A(i)\n  if ?? then\n    C(k) = D(i)\n    k = k + 1\n    B(k) = A(i)\n    E(i) = B(k)\n  endif\n  G(i) = F(k)\nendloop" );
    ( "l14",
      "j = 1\nk = 1\nl = 1\nm = 0\nL14: for i = 1 to 12 loop\n  j = j + i\n  k = k + j + 1\n  l = l * 2 + 1\n  m = 3 * m + 2 * i + 1\nendloop\nA(j) = k + l + m" );
    ( "l12",
      "j = 1\njold = 2\nL12: for iter = 1 to 9 loop\n  j = 3 - j\n  jold = 3 - jold\n  A(j) = jold\nendloop" );
    ( "fig78",
      "k = 0\nL17: loop\n  i = 1\n  L18: loop\n    k = k + 2\n    if i > 20 exit\n    i = i + 1\n  endloop\n  k = k + 2\n  if k > 500 exit\nendloop\nA(k) = 1" );
    ( "fig9",
      "j = 0\nL19: for i = 1 to 10 loop\n  j = j + i\n  L20: for k = 1 to i loop\n    j = j + 1\n  endloop\nendloop\nA(j) = 1" );
    ( "wrap-promotion",
      "k = -1\nj = 0\ni = 1\nL10: loop\n  A(k) = A(j)\n  k = j\n  j = i\n  i = i + 1\n  if i > 25 exit\nendloop" );
    ( "geometric-exp",
      "p = 1\nL1: for i = 0 to 8 loop\n  p = 2 ^ i\n  A(p) = 1\nendloop" );
    ( "decreasing",
      "k = 100\nL1: loop\n  if ?? then\n    k = k - 1\n  else\n    k = k - 3\n  endif\n  if k < 5 exit\nendloop\nA(k) = 1" );
    ( "multi-step",
      "x = 0\nL1: for i = 1 to 15 loop\n  x = x + 2\n  x = x + 3\nendloop\nA(x) = 1" );
    ( "neg-flip",
      "v = 7\nL1: for i = 1 to 9 loop\n  v = 0 - v\n  A(v) = i\nendloop" );
    ( "exact-division",
      "L1: for i = 0 to 20 loop\n  x = i * 6 / 3\n  A(x) = 1\nendloop" );
    ( "three-deep",
      "s = 0\nL1: for i = 1 to 4 loop\n  L2: for j = 1 to 3 loop\n    L3: for k = 1 to 2 loop\n      s = s + 1\n    endloop\n  endloop\nendloop\nA(0) = s" );
    ( "symbolic-steps",
      "i = 0\nL3: loop\n  i = i + 1\n  j = i\n  L4: for x = 1 to 5 loop\n    j = j + i\n  endloop\n  A(j) = 1\n  if i > 12 exit\nendloop" );
    ( "multi-exit-bounded",
      "i = 0\nT: loop\n  i = i + 1\n  if i > 30 exit\n  if ?? exit\n  A(i) = i\nendloop" );
    ( "mixed-strided",
      "a = 0\nb = 100\nL1: for i = 1 to 20 loop\n  a = a + 3\n  b = b - 7\n  A(a) = b\nendloop" );
  ]

let test_corpus () =
  let state = Random.State.make [| 7 |] in
  let rand () = Random.State.bool state in
  let params x =
    match Ir.Ident.name x with "n" -> 17 | "c" -> 3 | "k" -> 5 | _ -> 1
  in
  List.iter
    (fun (name, src) ->
      let checked, failures = Helpers.oracle_check ~params ~rand src in
      (match failures with
       | [] -> ()
       | f :: _ ->
         Alcotest.failf "%s: %d oracle failures, first: %s" name (List.length failures) f);
      if checked = 0 then Alcotest.failf "%s: oracle made no checks" name)
    corpus

let test_corpus_many_seeds () =
  (* Opaque '??' conditions take different paths under different seeds;
     monotonic classifications must hold under all of them. *)
  List.iter
    (fun seed ->
      let state = Random.State.make [| seed |] in
      let rand () = Random.State.bool state in
      List.iter
        (fun (name, src) ->
          let _, failures = Helpers.oracle_check ~rand ~params:(fun _ -> 6) src in
          match failures with
          | [] -> ()
          | f :: _ -> Alcotest.failf "%s (seed %d): %s" name seed f)
        corpus)
    [ 1; 2; 3; 4; 5 ]

let prop_random_programs =
  Helpers.qtest ~count:150 "random programs satisfy the oracle" Gen.gen_program
    (fun p ->
      let src = Ir.Ast.to_string p in
      let state = Random.State.make [| Hashtbl.hash src |] in
      let rand () = Random.State.bool state in
      let _, failures = Helpers.oracle_check ~fuel:200_000 ~rand src in
      match failures with
      | [] -> true
      | f :: _ -> QCheck2.Test.fail_reportf "program:\n%s\noracle: %s" src f)

let prop_random_programs_check_coverage =
  (* Guard against the oracle silently checking nothing: across many
     random programs, most must produce at least one checked prediction. *)
  let covered = ref 0 in
  let total = ref 0 in
  let t =
    Helpers.qtest ~count:100 "oracle coverage on random programs" Gen.gen_program
      (fun p ->
        let src = Ir.Ast.to_string p in
        let checked, _ = Helpers.oracle_check ~fuel:200_000 src in
        incr total;
        if checked > 0 then incr covered;
        true)
  in
  let finale =
    Helpers.case "oracle coverage ratio" (fun () ->
        if !total > 0 && !covered * 10 < !total * 5 then
          Alcotest.failf "only %d/%d random programs produced checks" !covered !total)
  in
  (t, finale)

let suite =
  let coverage_prop, coverage_check = prop_random_programs_check_coverage in
  ( "oracle",
    [
      Helpers.case "paper corpus" test_corpus;
      Helpers.case "paper corpus, many seeds" test_corpus_many_seeds;
      prop_random_programs;
      coverage_prop;
      coverage_check;
    ] )
