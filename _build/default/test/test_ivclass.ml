(* The classification lattice: smart constructors, evaluation, printing. *)

module Ivclass = Analysis.Ivclass
module Sym = Analysis.Sym
open Bignum

let s = Sym.of_int
let no_atoms : Sym.atom -> Rat.t option = fun _ -> None

let test_linear_constructor () =
  (* Zero step over an invariant base collapses. *)
  Alcotest.(check string) "zero step" "inv(5)"
    (Ivclass.to_string (Ivclass.linear 0 (Ivclass.Invariant (s 5)) Sym.zero));
  Alcotest.(check string) "real step" "(loop0, 5, 2)"
    (Ivclass.to_string (Ivclass.linear 0 (Ivclass.Invariant (s 5)) (s 2)))

let test_poly_constructor () =
  Alcotest.(check string) "degree collapse" "(loop0, 1, 2)"
    (Ivclass.to_string (Ivclass.poly 0 [| s 1; s 2; Sym.zero; Sym.zero |]));
  Alcotest.(check string) "constant collapse" "inv(7)"
    (Ivclass.to_string (Ivclass.poly 0 [| s 7; Sym.zero |]));
  Alcotest.(check string) "empty is zero" "inv(0)"
    (Ivclass.to_string (Ivclass.poly 0 [||]));
  Alcotest.(check string) "true quadratic" "(loop0, 0, 0, 1)"
    (Ivclass.to_string (Ivclass.poly 0 [| Sym.zero; Sym.zero; s 1 |]))

let test_geometric_constructor () =
  (* Ratio 1 folds into the constant term. *)
  Alcotest.(check string) "ratio 1" "(loop0, 5, 2)"
    (Ivclass.to_string (Ivclass.geometric 0 [| s 2; s 2 |] Rat.one (s 3)));
  (* Zero coefficient degrades to the polynomial part. *)
  Alcotest.(check string) "zero gcoeff" "(loop0, 2, 2)"
    (Ivclass.to_string (Ivclass.geometric 0 [| s 2; s 2 |] (Rat.of_int 2) Sym.zero));
  (* Trailing zero polynomial coefficients strip. *)
  Alcotest.(check string) "stripped" "(loop0, 2 | 3*2^h)"
    (Ivclass.to_string
       (Ivclass.geometric 0 [| s 2; Sym.zero; Sym.zero |] (Rat.of_int 2) (s 3)))

let test_wrap_constructor () =
  let lin = Ivclass.linear 0 (Ivclass.Invariant (s 0)) (s 1) in
  let w1 = Ivclass.wrap 0 lin (s 9) in
  let w2 = Ivclass.wrap 0 w1 (s 8) in
  (match w2 with
   | Ivclass.Wrap { order = 2; initials = [ i8; i9 ]; _ } ->
     Alcotest.(check bool) "initials ordered" true
       (Sym.equal i8 (s 8) && Sym.equal i9 (s 9))
   | _ -> Alcotest.fail "expected flattened order-2 wrap");
  (* The order cap turns pathological cascades into Unknown. *)
  let deep = ref lin in
  for i = 0 to Ivclass.max_wrap_order + 1 do
    deep := Ivclass.wrap 0 !deep (s i)
  done;
  Alcotest.(check bool) "cap reached" true (!deep = Ivclass.Unknown)

let test_eval_at () =
  let quad = Ivclass.poly 0 [| s 4; s 3; s 1 |] in
  List.iter
    (fun (h, expected) ->
      match Ivclass.eval_at no_atoms quad h with
      | Some v -> Alcotest.(check string) (Printf.sprintf "h=%d" h) expected (Rat.to_string v)
      | None -> Alcotest.fail "eval failed")
    [ (0, "4"); (1, "8"); (2, "14"); (3, "22") ];
  let geo = Ivclass.geometric 0 [| s (-1) |] (Rat.of_int 2) (s 4) in
  (match Ivclass.eval_at no_atoms geo 3 with
   | Some v -> Alcotest.(check string) "4*2^3 - 1" "31" (Rat.to_string v)
   | None -> Alcotest.fail "geo eval failed");
  let per =
    Ivclass.Periodic { loop = 0; period = 3; values = [| s 7; s 8; s 9 |]; phase = 1 }
  in
  (match Ivclass.eval_at no_atoms per 4 with
   | Some v -> Alcotest.(check string) "values[(4+1) mod 3]" "9" (Rat.to_string v)
   | None -> Alcotest.fail "periodic eval failed");
  let wrapped = Ivclass.wrap 0 (Ivclass.linear 0 (Ivclass.Invariant (s 0)) (s 10)) (s 99) in
  (match (Ivclass.eval_at no_atoms wrapped 0, Ivclass.eval_at no_atoms wrapped 3) with
   | Some v0, Some v3 ->
     Alcotest.(check string) "initial" "99" (Rat.to_string v0);
     Alcotest.(check string) "inner(h-1)" "20" (Rat.to_string v3)
   | _ -> Alcotest.fail "wrap eval failed")

let test_eval_at_nest () =
  (* Multiloop: inner base = outer linear (L0, 10, 100). *)
  let outer = Ivclass.linear 0 (Ivclass.Invariant (s 10)) (s 100) in
  let inner = Ivclass.Linear { loop = 1; base = outer; step = s 2 } in
  let iter_of = function 0 -> Some 3 | _ -> None in
  (match Ivclass.eval_at_nest no_atoms iter_of inner 5 with
   | Some v ->
     (* base at outer h=3: 310; + 2*5. *)
     Alcotest.(check string) "nested" "320" (Rat.to_string v)
   | None -> Alcotest.fail "nested eval failed");
  (* Without outer context the nested base cannot evaluate. *)
  Alcotest.(check bool) "no context" true (Ivclass.eval_at no_atoms inner 5 = None)

let test_equal () =
  let a = Ivclass.linear 0 (Ivclass.Invariant (s 1)) (s 2) in
  let b = Ivclass.linear 0 (Ivclass.Invariant (s 1)) (s 2) in
  let c = Ivclass.linear 1 (Ivclass.Invariant (s 1)) (s 2) in
  Alcotest.(check bool) "equal" true (Ivclass.equal a b);
  Alcotest.(check bool) "loop differs" false (Ivclass.equal a c);
  Alcotest.(check bool) "unknown = unknown" true (Ivclass.equal Ivclass.Unknown Ivclass.Unknown)

let test_degree_and_views () =
  Alcotest.(check (option int)) "inv" (Some 0) (Ivclass.degree (Ivclass.Invariant (s 1)));
  Alcotest.(check (option int)) "lin" (Some 1)
    (Ivclass.degree (Ivclass.linear 0 (Ivclass.Invariant (s 1)) (s 2)));
  Alcotest.(check (option int)) "quad" (Some 2)
    (Ivclass.degree (Ivclass.poly 0 [| s 0; s 0; s 1 |]));
  Alcotest.(check bool) "coeff_array of multiloop is None" true
    (Ivclass.coeff_array
       (Ivclass.Linear
          { loop = 1; base = Ivclass.linear 0 (Ivclass.Invariant (s 1)) (s 2); step = s 1 })
     = None)

let test_is_induction () =
  Alcotest.(check bool) "linear" true
    (Ivclass.is_induction (Ivclass.linear 0 (Ivclass.Invariant (s 1)) (s 2)));
  Alcotest.(check bool) "wrap of linear" true
    (Ivclass.is_induction (Ivclass.wrap 0 (Ivclass.linear 0 (Ivclass.Invariant (s 1)) (s 2)) (s 9)));
  Alcotest.(check bool) "monotonic" false
    (Ivclass.is_induction
       (Ivclass.Monotonic { loop = 0; dir = Ivclass.Increasing; strict = true; family = 0 }));
  Alcotest.(check bool) "unknown" false (Ivclass.is_induction Ivclass.Unknown)

let suite =
  ( "ivclass",
    [
      Helpers.case "linear constructor" test_linear_constructor;
      Helpers.case "poly constructor" test_poly_constructor;
      Helpers.case "geometric constructor" test_geometric_constructor;
      Helpers.case "wrap constructor and cap" test_wrap_constructor;
      Helpers.case "eval_at" test_eval_at;
      Helpers.case "eval_at_nest" test_eval_at_nest;
      Helpers.case "structural equality" test_equal;
      Helpers.case "degrees and views" test_degree_and_views;
      Helpers.case "is_induction" test_is_induction;
    ] )
