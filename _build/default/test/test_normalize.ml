(* Loop normalization (paper §6.1): semantics preserved, and the
   SSA-based classification is identical before and after — the paper's
   point that this framework "implicitly normalizes all loops". *)

module Driver = Analysis.Driver

let l23_l24 = {|
L23: for i = 1 to n loop
  L24: for j = i + 1 to n loop
    A(i, j) = A(i - 1, j) + 1
  endloop
endloop
|}

let test_semantics_preserved () =
  let ast = Ir.Parser.parse l23_l24 in
  let normalized = Transform.Normalize.normalize ast in
  let params x = if Ir.Ident.name x = "n" then 7 else 0 in
  Alcotest.(check bool) "same array footprint" true
    (Helpers.array_footprint ~params ast = Helpers.array_footprint ~params normalized)

let test_semantics_preserved_strided () =
  let src = "for i = 2 to 17 by 3 loop\n  A(i) = i * 2\nendloop" in
  let ast = Ir.Parser.parse src in
  let normalized = Transform.Normalize.normalize ast in
  Alcotest.(check bool) "same array footprint" true
    (Helpers.array_footprint ast = Helpers.array_footprint normalized)

let test_negative_step () =
  let src = "for i = 10 to 1 by -2 loop\n  A(i) = i\nendloop" in
  let ast = Ir.Parser.parse src in
  let normalized = Transform.Normalize.normalize ast in
  Alcotest.(check bool) "same array footprint" true
    (Helpers.array_footprint ast = Helpers.array_footprint normalized)

(* Classifications of the array subscripts, as rendered global classes,
   for both versions of the loop nest. *)
let subscript_classes src =
  let t = Helpers.analyze src in
  let g = Dependence.Dep_graph.collect_refs t in
  List.concat_map
    (fun (r : Dependence.Dep_graph.array_ref) ->
      List.map
        (fun c ->
          (* Render with anonymous loop names so ids can differ. *)
          Analysis.Ivclass.to_string_with
            {
              Analysis.Ivclass.loop_name = (fun _ -> "L");
              atom_name = (fun _ -> "s");
            }
            c)
        r.Dependence.Dep_graph.subscripts)
    g

let test_classification_insensitive_to_shape () =
  (* The subscript classifications of the unnormalized and normalized
     nests are the same tuples (the paper's §6.1 conclusion). *)
  let normalized_src =
    Ir.Ast.to_string (Transform.Normalize.normalize (Ir.Parser.parse l23_l24))
  in
  Alcotest.(check (list string))
    "same subscript tuples"
    (subscript_classes l23_l24)
    (subscript_classes normalized_src)

let test_dependence_insensitive_to_shape () =
  let t1 = Helpers.analyze l23_l24 in
  let normalized_src =
    Ir.Ast.to_string (Transform.Normalize.normalize (Ir.Parser.parse l23_l24))
  in
  let t2 = Helpers.analyze normalized_src in
  let dists t =
    List.filter_map
      (fun (e : Dependence.Dep_graph.edge) ->
        match e.Dependence.Dep_graph.outcome with
        | Dependence.Deptest.Dependent d ->
          Option.map (List.map snd) d.Dependence.Deptest.distance
        | Dependence.Deptest.Independent -> None)
      (Dependence.Dep_graph.build t)
  in
  (* Both give the same iteration-space distance vector (1, -1). *)
  Alcotest.(check (list (list int))) "same distances" (dists t1) (dists t2);
  Alcotest.(check (list (list int))) "the triangular vector" [ [ 1; -1 ] ] (dists t1)

let test_index_rewritten () =
  (* After normalization the loop runs from 0 with step 1, and the body
     references i through the affine substitution. *)
  let normalized = Transform.Normalize.normalize (Ir.Parser.parse "for i = 3 to 20 by 2 loop\n  A(i) = 1\nendloop") in
  match normalized.Ir.Ast.stmts with
  | [ Ir.Ast.For { lo = Ir.Ast.Int 0; step = 1; _ } ] -> ()
  | _ -> Alcotest.fail "not normalized"

let test_body_assigning_index_rejected () =
  let ast = Ir.Parser.parse "for i = 1 to 5 loop\n  i = i + 1\nendloop" in
  Alcotest.(check bool) "rejected" true
    (match Transform.Normalize.normalize ast with
     | exception Invalid_argument _ -> true
     | _ -> false)

let prop_random_normalization_preserves_semantics =
  Helpers.qtest ~count:60 "normalization preserves semantics" Gen.gen_program (fun p ->
      (* Deterministic branches only: fix the random stream per program. *)
      let seed = Hashtbl.hash (Ir.Ast.to_string p) in
      let footprint ast =
        let state = Random.State.make [| seed |] in
        Helpers.array_footprint ~rand:(fun () -> Random.State.bool state) ast
      in
      match Transform.Normalize.normalize p with
      | normalized -> footprint p = footprint normalized
      | exception Invalid_argument _ -> true (* body assigns its index *))

let suite =
  ( "normalize",
    [
      Helpers.case "semantics preserved" test_semantics_preserved;
      Helpers.case "strided loop" test_semantics_preserved_strided;
      Helpers.case "negative step" test_negative_step;
      Helpers.case "classification is shape-insensitive" test_classification_insensitive_to_shape;
      Helpers.case "dependences are shape-insensitive" test_dependence_insensitive_to_shape;
      Helpers.case "index rewritten" test_index_rewritten;
      Helpers.case "index assignment rejected" test_body_assigning_index_rejected;
      prop_random_normalization_preserves_semantics;
    ] )
