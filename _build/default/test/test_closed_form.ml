(* Closed-form recovery by rational matrix inversion (paper §4.3). *)

module Sym = Analysis.Sym
module Ivclass = Analysis.Ivclass
module Closed_form = Analysis.Closed_form
open Bignum

let s = Sym.of_int
let no_atoms : Sym.atom -> Rat.t option = fun _ -> None

let eval cls h =
  match Ivclass.eval_at no_atoms cls h with
  | Some v -> v
  | None -> Alcotest.failf "closed form not evaluable at %d" h

let check_sequence name cls ~init ~next n =
  (* Simulate the recurrence and compare every value with the class. *)
  let v = ref init in
  for h = 0 to n do
    Alcotest.(check string)
      (Printf.sprintf "%s at h=%d" name h)
      (string_of_int !v)
      (Rat.to_string (eval cls h));
    v := next h !v
  done

let test_second_order () =
  (* v' = v + (1 + h): v(h) = triangular numbers + v0. *)
  let cls = Closed_form.polynomial ~loop:0 ~init:(s 4) ~add_coeffs:[| s 1; s 1 |] in
  check_sequence "triangular" cls ~init:4 ~next:(fun h v -> v + 1 + h) 10

let test_third_order () =
  (* The paper's k: k' = k + j + 1 where j(h) = (h^2+3h+4)/2. With the
     additive part expressed directly as a polynomial. *)
  let add = [| Sym.of_rat (Rat.of_ints 6 2); Sym.of_rat (Rat.of_ints 3 2); Sym.of_rat (Rat.of_ints 1 2) |] in
  let cls = Closed_form.polynomial ~loop:0 ~init:(s 1) ~add_coeffs:add in
  check_sequence "cubic" cls ~init:1
    ~next:(fun h v -> v + ((h * h) + (3 * h) + 4) / 2 + 1)
    10

let test_geometric_simple () =
  (* l' = 2l + 1 from l0 = 1: l(h) = 2^(h+1) - 1. *)
  let cls = Closed_form.geometric ~loop:0 ~init:(s 1) ~mult:(Rat.of_int 2) ~add_coeffs:[| s 1 |] in
  check_sequence "2l+1" cls ~init:1 ~next:(fun _ v -> (2 * v) + 1) 15

let test_geometric_paper_m () =
  (* m' = 3m + 2i + 1 with i(h) = h+1 (the paper's worked example):
     m(h) = 6*3^h - h - 3... for the value *before* the h-th update
     m(0)=0: closed form has no quadratic term. *)
  let cls =
    Closed_form.geometric ~loop:0 ~init:(s 0) ~mult:(Rat.of_int 3)
      ~add_coeffs:[| s 3; s 2 |]
  in
  (match cls with
   | Ivclass.Geometric g ->
     Alcotest.(check string) "ratio" "3" (Rat.to_string g.Ivclass.ratio);
     (* The quadratic coefficient must have come out zero, collapsing
        the polynomial part to degree 1. *)
     Alcotest.(check int) "poly degree" 2 (Array.length g.Ivclass.gcoeffs)
   | _ -> Alcotest.fail "expected geometric");
  check_sequence "3m+2i+1" cls ~init:0 ~next:(fun h v -> (3 * v) + (2 * (h + 1)) + 1) 12

let test_negative_ratio () =
  (* v' = -2v + 1. *)
  let cls =
    Closed_form.geometric ~loop:0 ~init:(s 5) ~mult:(Rat.of_int (-2)) ~add_coeffs:[| s 1 |]
  in
  check_sequence "-2v+1" cls ~init:5 ~next:(fun _ v -> (-2 * v) + 1) 12

let test_polynomial_plus_geometric () =
  (* v' = v + h + 2^h. *)
  let cls =
    Closed_form.polynomial_plus_geometric ~loop:0 ~init:(s 0)
      ~add_coeffs:[| s 0; s 1 |] ~gratio:(Rat.of_int 2) ~gcoeff:(s 1)
  in
  let pow2 = ref 1 in
  let v = ref 0 in
  for h = 0 to 12 do
    Alcotest.(check string)
      (Printf.sprintf "h=%d" h)
      (string_of_int !v)
      (Rat.to_string (eval cls h));
    v := !v + h + !pow2;
    pow2 := !pow2 * 2
  done

let test_symbolic_init () =
  (* Symbolic initial value flows into the constant coefficient only. *)
  let b = Sym.param (Ir.Ident.of_string "binit") in
  let cls = Closed_form.polynomial ~loop:0 ~init:b ~add_coeffs:[| s 0; s 1 |] in
  match cls with
  | Ivclass.Poly { coeffs; _ } ->
    Alcotest.(check bool) "c0 contains the symbol" true
      (List.length (Sym.atoms coeffs.(0)) = 1);
    Alcotest.(check bool) "c1 constant" true (Sym.is_const coeffs.(1));
    Alcotest.(check bool) "c2 constant" true (Sym.is_const coeffs.(2))
  | _ -> Alcotest.fail "expected quadratic"

let test_degenerate_ratios () =
  Alcotest.(check bool) "mult = 1 rejected" true
    (Closed_form.geometric ~loop:0 ~init:(s 0) ~mult:Rat.one ~add_coeffs:[| s 1 |]
     = Ivclass.Unknown);
  Alcotest.(check bool) "mult = 0 rejected" true
    (Closed_form.geometric ~loop:0 ~init:(s 0) ~mult:Rat.zero ~add_coeffs:[| s 1 |]
     = Ivclass.Unknown)

(* Property: for random small polynomial additive parts and initial
   values, the recovered closed form reproduces the simulated sequence. *)
let prop_polynomial_matches_simulation =
  Helpers.qtest ~count:150 "polynomial recurrences match simulation"
    QCheck2.Gen.(
      pair (int_range (-10) 10) (list_size (int_range 1 4) (int_range (-6) 6)))
    (fun (init, add) ->
      let add_coeffs = Array.of_list (List.map s add) in
      let cls = Closed_form.polynomial ~loop:0 ~init:(s init) ~add_coeffs in
      let padd h =
        List.fold_left (fun (acc, p) c -> (acc + (c * p), p * h)) (0, 1) add |> fst
      in
      let v = ref init in
      let ok = ref true in
      for h = 0 to 12 do
        (match Ivclass.eval_at no_atoms cls h with
         | Some r -> if not (Rat.equal r (Rat.of_int !v)) then ok := false
         | None -> ok := false);
        v := !v + padd h
      done;
      !ok)

let prop_geometric_matches_simulation =
  Helpers.qtest ~count:150 "geometric recurrences match simulation"
    QCheck2.Gen.(
      triple (int_range (-8) 8)
        (oneofl [ -3; -2; 2; 3; 4 ])
        (list_size (int_range 1 3) (int_range (-5) 5)))
    (fun (init, mult, add) ->
      let add_coeffs = Array.of_list (List.map s add) in
      let cls = Closed_form.geometric ~loop:0 ~init:(s init) ~mult:(Rat.of_int mult) ~add_coeffs in
      let padd h =
        List.fold_left (fun (acc, p) c -> (acc + (c * p), p * h)) (0, 1) add |> fst
      in
      let v = ref init in
      let ok = ref true in
      for h = 0 to 10 do
        (match Ivclass.eval_at no_atoms cls h with
         | Some r -> if not (Rat.equal r (Rat.of_int !v)) then ok := false
         | None -> ok := false);
        v := (mult * !v) + padd h
      done;
      !ok)

let suite =
  ( "closed-form",
    [
      Helpers.case "second order" test_second_order;
      Helpers.case "third order (paper k)" test_third_order;
      Helpers.case "geometric 2l+1" test_geometric_simple;
      Helpers.case "paper m = 3m+2i+1" test_geometric_paper_m;
      Helpers.case "negative ratio" test_negative_ratio;
      Helpers.case "polynomial plus geometric" test_polynomial_plus_geometric;
      Helpers.case "symbolic initial value" test_symbolic_init;
      Helpers.case "degenerate ratios" test_degenerate_ratios;
      prop_polynomial_matches_simulation;
      prop_geometric_matches_simulation;
    ] )
