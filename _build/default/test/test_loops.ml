(* Natural loop detection and the nesting forest. *)

let loops_of src =
  let cfg = Ir.Lower.lower_source src in
  let dom = Ir.Dom.compute cfg in
  (cfg, Ir.Loops.compute cfg dom)

let test_single_loop () =
  let _, loops = loops_of "L1: loop\n  x = x + 1\n  if x > 3 exit\nendloop" in
  Alcotest.(check int) "one loop" 1 (Ir.Loops.num_loops loops);
  let lp = Ir.Loops.loop loops 0 in
  Alcotest.(check string) "name" "L1" lp.Ir.Loops.name;
  Alcotest.(check int) "depth" 1 lp.Ir.Loops.depth;
  Alcotest.(check int) "one latch" 1 (List.length lp.Ir.Loops.latches)

let test_nesting () =
  let _, loops =
    loops_of
      {|
L1: for i = 1 to 3 loop
  L2: for j = 1 to 3 loop
    L3: for k = 1 to 3 loop
      x = x + 1
    endloop
  endloop
  L4: for j2 = 1 to 3 loop
    y = y + 1
  endloop
endloop
|}
  in
  Alcotest.(check int) "four loops" 4 (Ir.Loops.num_loops loops);
  let by_name n = Option.get (Ir.Loops.find_by_name loops n) in
  Alcotest.(check int) "L1 depth" 1 (by_name "L1").Ir.Loops.depth;
  Alcotest.(check int) "L2 depth" 2 (by_name "L2").Ir.Loops.depth;
  Alcotest.(check int) "L3 depth" 3 (by_name "L3").Ir.Loops.depth;
  Alcotest.(check int) "L4 depth" 2 (by_name "L4").Ir.Loops.depth;
  Alcotest.(check (option int)) "L3 parent" (Some (by_name "L2").Ir.Loops.id)
    (by_name "L3").Ir.Loops.parent;
  Alcotest.(check (option int)) "L4 parent" (Some (by_name "L1").Ir.Loops.id)
    (by_name "L4").Ir.Loops.parent;
  (* Containment: L1's blocks include all of L3's. *)
  Alcotest.(check bool) "L1 contains L3" true
    (Ir.Label.Set.subset (by_name "L3").Ir.Loops.blocks (by_name "L1").Ir.Loops.blocks);
  (* Post-order puts children before parents. *)
  let order = List.map (fun lp -> lp.Ir.Loops.name) (Ir.Loops.postorder loops) in
  let pos n = Option.get (List.find_index (String.equal n) order) in
  Alcotest.(check bool) "L3 before L2" true (pos "L3" < pos "L2");
  Alcotest.(check bool) "L2 before L1" true (pos "L2" < pos "L1");
  Alcotest.(check bool) "L4 before L1" true (pos "L4" < pos "L1")

let test_innermost () =
  let cfg, loops =
    loops_of
      "L1: for i = 1 to 3 loop\n  x = x + 1\n  L2: for j = 1 to 3 loop\n    y = y + 1\n  endloop\nendloop"
  in
  let by_name n = Option.get (Ir.Loops.find_by_name loops n) in
  let l2 = by_name "L2" in
  Ir.Label.Set.iter
    (fun b ->
      Alcotest.(check (option int)) "innermost in L2" (Some l2.Ir.Loops.id)
        (Ir.Loops.innermost loops b))
    l2.Ir.Loops.blocks;
  ignore cfg

let test_exit_edges () =
  let cfg, loops =
    loops_of "L1: loop\n  x = x + 1\n  if x > 3 exit\n  if ?? exit\nendloop"
  in
  let lp = Ir.Loops.loop loops 0 in
  let exits = Ir.Loops.exit_edges cfg lp in
  Alcotest.(check int) "two exits" 2 (List.length exits);
  List.iter
    (fun (f, t) ->
      Alcotest.(check bool) "from inside" true (Ir.Loops.contains_block lp f);
      Alcotest.(check bool) "to outside" false (Ir.Loops.contains_block lp t))
    exits

let prop_loops_wellformed =
  Helpers.qtest ~count:60 "loop forest well-formed" Gen.gen_program (fun p ->
      let cfg = Ir.Lower.lower p in
      let dom = Ir.Dom.compute cfg in
      let loops = Ir.Loops.compute cfg dom in
      List.for_all
        (fun (lp : Ir.Loops.loop) ->
          (* Header dominates every block of its loop. *)
          Ir.Label.Set.for_all
            (fun b -> Ir.Dom.dominates dom lp.Ir.Loops.header b)
            lp.Ir.Loops.blocks
          (* Latches are in the loop and branch to the header. *)
          && List.for_all
               (fun latch ->
                 Ir.Label.Set.mem latch lp.Ir.Loops.blocks
                 && List.mem lp.Ir.Loops.header (Ir.Cfg.successors cfg latch))
               lp.Ir.Loops.latches
          (* Parent (when present) strictly contains the loop. *)
          &&
          match lp.Ir.Loops.parent with
          | None -> true
          | Some pid ->
            let parent = Ir.Loops.loop loops pid in
            Ir.Label.Set.subset lp.Ir.Loops.blocks parent.Ir.Loops.blocks
            && parent.Ir.Loops.depth = lp.Ir.Loops.depth - 1)
        (Ir.Loops.all loops))

let suite =
  ( "loops",
    [
      Helpers.case "single loop" test_single_loop;
      Helpers.case "nesting forest" test_nesting;
      Helpers.case "innermost lookup" test_innermost;
      Helpers.case "exit edges" test_exit_edges;
      prop_loops_wellformed;
    ] )
