(* The classification algebra (paper §5.1): operator combinations of
   variable classes. *)

module A = Analysis.Algebra
module Ivclass = Analysis.Ivclass
module Sym = Analysis.Sym
open Bignum

let s = Sym.of_int
let inv n = Ivclass.Invariant (s n)
let lin base step = Ivclass.Linear { loop = 0; base = inv base; step = s step }

let show = Ivclass.to_string

let check name expected actual = Alcotest.(check string) name expected (show actual)

let test_linear_rules () =
  check "lin + inv" "(loop0, 3, 2)" (A.add (lin 1 2) (inv 2));
  check "lin + lin" "(loop0, 4, 6)" (A.add (lin 1 2) (lin 3 4));
  check "lin - lin same step" "inv(-2)" (A.sub (lin 1 2) (lin 3 2));
  check "lin * const" "(loop0, 3, 6)" (A.mul (lin 1 2) (inv 3));
  check "neg lin" "(loop0, -1, -2)" (A.neg (lin 1 2))

let test_polynomial_rules () =
  (* (h+1) * (2h+3) = 2h^2 + 5h + 3. *)
  check "lin * lin" "(loop0, 3, 5, 2)" (A.mul (lin 1 1) (lin 3 2));
  (* Degree addition. *)
  let quad = A.mul (lin 0 1) (lin 0 1) in
  check "h^2" "(loop0, 0, 0, 1)" quad;
  check "h^2 * h^2" "(loop0, 0, 0, 0, 0, 1)" (A.mul quad quad);
  check "h^2 + lin" "(loop0, 5, 1, 1)" (A.add quad (lin 5 1))

let test_geometric_rules () =
  let geo = Ivclass.Geometric { loop = 0; gcoeffs = [| s 1 |]; ratio = Rat.of_int 2; gcoeff = s 3 } in
  check "geo + inv" "(loop0, 5 | 3*2^h)" (A.add geo (inv 4));
  check "geo * const" "(loop0, 2 | 6*2^h)" (A.mul geo (inv 2));
  check "geo + geo same ratio" "(loop0, 2 | 6*2^h)" (A.add geo geo);
  (* Different ratios are unrepresentable. *)
  let geo3 = Ivclass.Geometric { loop = 0; gcoeffs = [| s 0 |]; ratio = Rat.of_int 3; gcoeff = s 1 } in
  check "geo + geo different ratio" "unknown" (A.add geo geo3);
  (* Pure exponentials multiply. *)
  let pure r c = Ivclass.Geometric { loop = 0; gcoeffs = [| s 0 |]; ratio = Rat.of_int r; gcoeff = s c } in
  check "2^h * 3^h" "(loop0, 0 | 2*6^h)" (A.mul (pure 2 1) (pure 3 2));
  (* Mixed poly * exponential is out of the representation. *)
  check "lin * geo" "unknown" (A.mul (lin 0 1) geo)

let test_wrap_rules () =
  let w = Ivclass.wrap 0 (lin 1 1) (s 9) in
  check "wrap + inv" "wrap(loop0, order 1, [10], (loop0, 2, 1))" (A.add w (inv 1));
  (* wrap + linear: the linear part shifts past the wrap order. *)
  check "wrap + lin" "wrap(loop0, order 1, [14], (loop0, 8, 3))"
    (A.add w (lin 5 2));
  check "neg wrap" "wrap(loop0, order 1, [-9], (loop0, -1, -1))" (A.neg w)

let test_periodic_rules () =
  let p = Ivclass.Periodic { loop = 0; period = 2; values = [| s 1; s 2 |]; phase = 0 } in
  check "periodic + inv" "periodic(loop0, period 2, phase 0, [11; 12])" (A.add p (inv 10));
  check "periodic * const" "periodic(loop0, period 2, phase 0, [3; 6])" (A.mul p (inv 3));
  let q = Ivclass.Periodic { loop = 0; period = 2; values = [| s 10; s 20 |]; phase = 1 } in
  (* Pointwise with phase alignment: (1,2) + (20,10) = (21,12). *)
  check "periodic + periodic" "periodic(loop0, period 2, phase 0, [21; 12])" (A.add p q);
  (* Different periods extend to the lcm. *)
  let r3 = Ivclass.Periodic { loop = 0; period = 3; values = [| s 0; s 1; s 2 |]; phase = 0 } in
  (match A.add p r3 with
   | Ivclass.Periodic { period = 6; _ } -> ()
   | c -> Alcotest.failf "expected period 6, got %s" (show c))

let test_monotonic_rules () =
  let m strict = Ivclass.Monotonic { loop = 0; dir = Ivclass.Increasing; strict; family = 0 } in
  (match A.add (m false) (inv 5) with
   | Ivclass.Monotonic { strict = false; dir = Ivclass.Increasing; _ } -> ()
   | c -> Alcotest.failf "mono + inv: %s" (show c));
  (* Adding a strictly increasing linear IV makes it strict. *)
  (match A.add (m false) (lin 0 2) with
   | Ivclass.Monotonic { strict = true; _ } -> ()
   | c -> Alcotest.failf "mono + increasing lin: %s" (show c));
  (* Adding a decreasing one is unknown. *)
  check "mono + decreasing" "unknown" (A.add (m true) (lin 0 (-1)));
  (* Negation flips direction. *)
  (match A.neg (m true) with
   | Ivclass.Monotonic { dir = Ivclass.Decreasing; strict = true; _ } -> ()
   | c -> Alcotest.failf "neg mono: %s" (show c));
  (* Scaling by a negative constant flips too. *)
  (match A.mul (m true) (inv (-2)) with
   | Ivclass.Monotonic { dir = Ivclass.Decreasing; _ } -> ()
   | c -> Alcotest.failf "mono * -2: %s" (show c))

let test_unknown_absorbs () =
  List.iter
    (fun c ->
      check "unknown + c" "unknown" (A.add Ivclass.Unknown c);
      check "c * unknown" "unknown" (A.mul c Ivclass.Unknown))
    [ inv 1; lin 1 2; Ivclass.Unknown ]

let test_div_const () =
  check "divisible" "(loop0, 2, 3)" (A.div_const (lin 4 6) (Bigint.of_int 2));
  check "not divisible" "unknown" (A.div_const (lin 3 6) (Bigint.of_int 2));
  check "by zero" "unknown" (A.div_const (lin 4 6) Bigint.zero)

let test_shift_and_sym_at () =
  (match A.shift (lin 5 3) 2 with
   | Some c -> check "shift lin" "(loop0, 11, 3)" c
   | None -> Alcotest.fail "shift failed");
  (match A.shift (lin 5 3) (-1) with
   | Some c -> check "shift back" "(loop0, 2, 3)" c
   | None -> Alcotest.fail "shift -1 failed");
  (* Shifting a quadratic uses binomial re-expansion. *)
  let quad = Ivclass.poly 0 [| s 0; s 0; s 1 |] in
  (match A.shift quad 1 with
   | Some c -> check "shift h^2" "(loop0, 1, 2, 1)" c
   | None -> Alcotest.fail "shift quad failed");
  Alcotest.(check (option string)) "sym_at quad" (Some "9")
    (Option.map Sym.to_string (A.sym_at quad 3));
  (* sym_at_sym substitutes a symbolic iteration count. *)
  let n = Sym.param (Ir.Ident.of_string "nsym") in
  Alcotest.(check (option string)) "sym_at_sym" (Some "5 + 3*nsym")
    (Option.map Sym.to_string (A.sym_at_sym (lin 5 3) n))

let test_growth () =
  Alcotest.(check bool) "lin inc" true
    (A.growth (lin 0 2) = Some (Some Ivclass.Increasing, true));
  Alcotest.(check bool) "lin const" true (A.growth (lin 7 0) = Some (None, false));
  Alcotest.(check bool) "symbolic step" true
    (A.growth (Ivclass.Linear { loop = 0; base = inv 0; step = Sym.param (Ir.Ident.of_string "st") })
     = None)

let suite =
  ( "algebra",
    [
      Helpers.case "linear rules" test_linear_rules;
      Helpers.case "polynomial rules" test_polynomial_rules;
      Helpers.case "geometric rules" test_geometric_rules;
      Helpers.case "wrap-around rules" test_wrap_rules;
      Helpers.case "periodic rules" test_periodic_rules;
      Helpers.case "monotonic rules" test_monotonic_rules;
      Helpers.case "unknown absorbs" test_unknown_absorbs;
      Helpers.case "exact integer division" test_div_const;
      Helpers.case "shift and symbolic evaluation" test_shift_and_sym_at;
      Helpers.case "growth" test_growth;
    ] )
