(* The reference interpreter: semantics of phis (parallel reads on the
   incoming edge), loop iteration counters, arrays, fuel, and parameters. *)

let run ?params ?rand ?arrays ?fuel src =
  Ir.Interp.run ?params ?rand ?arrays ?fuel (Ir.Ssa.of_source src)

let value_of_name st name =
  let ssa = st.Ir.Interp.ssa in
  match Ir.Ssa.value_of_name ssa name with
  | Some v -> Ir.Interp.value st v
  | None -> Alcotest.failf "no value named %s" name

let test_arith () =
  let st = run "x = 2 + 3 * 4\ny = (2 + 3) * 4\nz = 2 ^ 10\nw = -7 / 2\nv = 7 - 2 - 1" in
  Alcotest.(check int) "x" 14 (value_of_name st "x1");
  Alcotest.(check int) "y" 20 (value_of_name st "y1");
  Alcotest.(check int) "z" 1024 (value_of_name st "z1");
  Alcotest.(check int) "w" (-3) (value_of_name st "w1");
  Alcotest.(check int) "v" 4 (value_of_name st "v1")

let test_for_loop_sum () =
  let st = run "s = 0\nfor i = 1 to 10 loop\n  s = s + i\nendloop\nA(0) = s" in
  let a = Ir.Ident.of_string "A" in
  Alcotest.(check (option int)) "sum 1..10" (Some 55)
    (Hashtbl.find_opt st.Ir.Interp.arrays (a, [ 0 ]))

let test_rotation_semantics () =
  (* The L13 rotation: after h iterations, j holds the (h mod 3)-th of
     (1,2,3); phis must read old values in parallel. *)
  let src = {|
j = 1
k = 2
l = 3
t = 0
for it = 1 to 4 loop
  t = j
  j = k
  k = l
  l = t
  A(it) = j
endloop
|} in
  let st = run src in
  let a = Ir.Ident.of_string "A" in
  let got = List.map (fun i -> Hashtbl.find st.Ir.Interp.arrays (a, [ i ])) [ 1; 2; 3; 4 ] in
  Alcotest.(check (list int)) "rotation" [ 2; 3; 1; 2 ] got

let test_flip_flop_semantics () =
  let st = run "j = 1\nfor it = 1 to 5 loop\n  j = 3 - j\n  A(it) = j\nendloop" in
  let a = Ir.Ident.of_string "A" in
  let got = List.map (fun i -> Hashtbl.find st.Ir.Interp.arrays (a, [ i ])) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "flip flop" [ 2; 1; 2; 1; 2 ] got

let test_params () =
  let st =
    run ~params:(fun x -> if Ir.Ident.name x = "n" then 21 else 0) "y = n * 2"
  in
  Alcotest.(check int) "param" 42 (value_of_name st "y1")

let test_arrays_preload_and_negative_index () =
  let a = Ir.Ident.of_string "A" in
  let st =
    run ~arrays:[ ((a, [ -3 ]), 99) ] "x = A(-3)\nB(x) = 1"
  in
  Alcotest.(check int) "negative index read" 99 (value_of_name st "x1")

let test_fuel () =
  let st = run ~fuel:50 "loop\n  x = x + 1\nendloop" in
  Alcotest.(check bool) "out of fuel" true (st.Ir.Interp.outcome = Ir.Interp.Out_of_fuel)

let test_loop_iter_counter () =
  (* loop_iter is 0-based and resets on re-entry. *)
  let src = "for i = 1 to 3 loop\n  for j = 1 to 2 loop\n    A(i, j) = 1\n  endloop\nendloop" in
  let ssa = Ir.Ssa.of_source src in
  let loops = Ir.Ssa.loops ssa in
  let inner =
    List.find (fun (lp : Ir.Loops.loop) -> lp.Ir.Loops.depth = 2) (Ir.Loops.all loops)
  in
  let max_h = ref (-1) in
  let resets = ref 0 in
  let last = ref 999 in
  let on_instr st (instr : Ir.Instr.t) _ =
    match instr.Ir.Instr.op with
    | Ir.Instr.Astore _ ->
      let h = Ir.Interp.loop_iter st inner.Ir.Loops.id in
      if h > !max_h then max_h := h;
      if h < !last then incr resets;
      last := h
    | _ -> ()
  in
  let _ = Ir.Interp.run ~on_instr ssa in
  Alcotest.(check int) "max inner h" 1 !max_h;
  Alcotest.(check int) "three activations" 3 !resets

let test_conditional_rand () =
  (* The '??' condition consumes the provided random stream. *)
  let flips = ref [ true; false; true ] in
  let rand () =
    match !flips with
    | [] -> false
    | b :: rest ->
      flips := rest;
      b
  in
  let st =
    run ~rand "k = 0\nfor i = 1 to 3 loop\n  if ?? then\n    k = k + 1\n  endif\nendloop\nA(0) = k"
  in
  let a = Ir.Ident.of_string "A" in
  Alcotest.(check (option int)) "two increments" (Some 2)
    (Hashtbl.find_opt st.Ir.Interp.arrays (a, [ 0 ]))

let test_division_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (run "x = 1 / 0"))

let suite =
  ( "interp",
    [
      Helpers.case "arithmetic" test_arith;
      Helpers.case "for-loop sum" test_for_loop_sum;
      Helpers.case "rotation (parallel phis)" test_rotation_semantics;
      Helpers.case "flip-flop" test_flip_flop_semantics;
      Helpers.case "parameters" test_params;
      Helpers.case "array preload" test_arrays_preload_and_negative_index;
      Helpers.case "fuel" test_fuel;
      Helpers.case "loop iteration counters" test_loop_iter_counter;
      Helpers.case "random conditions" test_conditional_rand;
      Helpers.case "division by zero" test_division_by_zero;
    ] )
