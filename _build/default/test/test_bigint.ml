(* Unit and property tests for the arbitrary-precision integer kernel. *)

open Bignum

let bi = Bigint.of_int
let s = Bigint.to_string

let check_str name expected actual = Alcotest.(check string) name expected actual

let test_of_int_roundtrip () =
  List.iter
    (fun n -> Alcotest.(check int) (string_of_int n) n (Bigint.to_int (bi n)))
    [ 0; 1; -1; 42; -42; 1 lsl 30; -(1 lsl 30); max_int; min_int; max_int - 1 ]

let test_to_string () =
  check_str "zero" "0" (s Bigint.zero);
  check_str "one" "1" (s Bigint.one);
  check_str "neg" "-17" (s (bi (-17)));
  check_str "big" "4611686018427387904" (s (Bigint.pow (bi 2) 62));
  check_str "max_int" (string_of_int max_int) (s (bi max_int));
  check_str "min_int" (string_of_int min_int) (s (bi min_int))

let test_of_string () =
  check_str "parse" "123456789012345678901234567890"
    (s (Bigint.of_string "123456789012345678901234567890"));
  check_str "parse neg" "-987654321098765432109876543210"
    (s (Bigint.of_string "-987654321098765432109876543210"));
  check_str "parse plus" "17" (s (Bigint.of_string "+17"));
  check_str "leading zeros" "42" (s (Bigint.of_string "0042"));
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty string")
    (fun () -> ignore (Bigint.of_string ""));
  Alcotest.check_raises "bad char" (Invalid_argument "Bigint.of_string: bad character 'x'")
    (fun () -> ignore (Bigint.of_string "12x4"))

let test_add_carry () =
  (* Carries across several limbs. *)
  let near = Bigint.of_string "1152921504606846975" (* 2^60 - 1 *) in
  check_str "2^60" "1152921504606846976" (s (Bigint.succ near));
  let big = Bigint.pow (bi 2) 300 in
  check_str "2^300 + 2^300 = 2^301"
    (s (Bigint.pow (bi 2) 301))
    (s (Bigint.add big big))

let test_mul_known () =
  check_str "fact 30" "265252859812191058636308480000000"
    (s (List.fold_left (fun acc i -> Bigint.mul acc (bi i)) Bigint.one
          (List.init 30 (fun i -> i + 1))));
  check_str "2^100" "1267650600228229401496703205376" (s (Bigint.pow (bi 2) 100))

let test_divmod_known () =
  let q, r = Bigint.divmod (Bigint.of_string "1000000000000000000000") (bi 7) in
  check_str "q" "142857142857142857142" (s q);
  check_str "r" "6" (s r);
  (* Truncated division signs, like OCaml's / and mod. *)
  let check a b =
    let q, r = Bigint.divmod (bi a) (bi b) in
    Alcotest.(check int) (Printf.sprintf "%d/%d" a b) (a / b) (Bigint.to_int q);
    Alcotest.(check int) (Printf.sprintf "%d mod %d" a b) (a mod b) (Bigint.to_int r)
  in
  List.iter
    (fun (a, b) -> check a b)
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (0, 5); (6, 3); (-6, 3) ];
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bigint.divmod Bigint.one Bigint.zero))

let test_ediv () =
  let q, r = Bigint.ediv_rem (bi (-7)) (bi 2) in
  Alcotest.(check int) "eq" (-4) (Bigint.to_int q);
  Alcotest.(check int) "er" 1 (Bigint.to_int r);
  let q, r = Bigint.ediv_rem (bi (-7)) (bi (-2)) in
  Alcotest.(check int) "eq neg" 4 (Bigint.to_int q);
  Alcotest.(check int) "er neg" 1 (Bigint.to_int r)

let test_gcd () =
  Alcotest.(check int) "gcd" 6 (Bigint.to_int (Bigint.gcd (bi 54) (bi (-24))));
  Alcotest.(check int) "gcd 0" 7 (Bigint.to_int (Bigint.gcd (bi 0) (bi 7)));
  Alcotest.(check bool) "gcd 0 0" true (Bigint.is_zero (Bigint.gcd Bigint.zero Bigint.zero))

let test_compare () =
  let l = List.map bi [ -100; -1; 0; 1; 5; 1 lsl 40 ] in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          Alcotest.(check int)
            (Printf.sprintf "cmp %d %d" i j)
            (compare i j)
            (Bigint.compare a b))
        l)
    l

let test_to_int_bounds () =
  Alcotest.(check (option int)) "fits" (Some max_int) (Bigint.to_int_opt (bi max_int));
  Alcotest.(check (option int)) "min_int" (Some min_int) (Bigint.to_int_opt (bi min_int));
  Alcotest.(check (option int)) "overflow" None
    (Bigint.to_int_opt (Bigint.succ (bi max_int)));
  Alcotest.(check (option int)) "underflow" None
    (Bigint.to_int_opt (Bigint.pred (bi min_int)))

let test_decimal_digits () =
  Alcotest.(check int) "0" 1 (Bigint.decimal_digits Bigint.zero);
  Alcotest.(check int) "999" 3 (Bigint.decimal_digits (bi 999));
  Alcotest.(check int) "1000" 4 (Bigint.decimal_digits (bi (-1000)))

(* --- properties --- *)

let gen_bigint =
  (* Mix small ints and products of large ones for multi-limb coverage. *)
  QCheck2.Gen.(
    oneof
      [
        map Bigint.of_int small_signed_int;
        map Bigint.of_int int;
        map2 (fun a b -> Bigint.mul (Bigint.of_int a) (Bigint.of_int b)) int int;
        map3
          (fun a b c ->
            Bigint.add
              (Bigint.mul (Bigint.mul (Bigint.of_int a) (Bigint.of_int b)) (Bigint.of_int c))
              (Bigint.of_int a))
          int int int;
      ])

let prop_add_commutative =
  Helpers.qtest "add commutative" QCheck2.Gen.(pair gen_bigint gen_bigint)
    (fun (a, b) -> Bigint.equal (Bigint.add a b) (Bigint.add b a))

let prop_add_associative =
  Helpers.qtest "add associative" QCheck2.Gen.(triple gen_bigint gen_bigint gen_bigint)
    (fun (a, b, c) ->
      Bigint.equal (Bigint.add a (Bigint.add b c)) (Bigint.add (Bigint.add a b) c))

let prop_mul_commutative =
  Helpers.qtest "mul commutative" QCheck2.Gen.(pair gen_bigint gen_bigint)
    (fun (a, b) -> Bigint.equal (Bigint.mul a b) (Bigint.mul b a))

let prop_distributive =
  Helpers.qtest "mul distributes" QCheck2.Gen.(triple gen_bigint gen_bigint gen_bigint)
    (fun (a, b, c) ->
      Bigint.equal
        (Bigint.mul a (Bigint.add b c))
        (Bigint.add (Bigint.mul a b) (Bigint.mul a c)))

let prop_sub_inverse =
  Helpers.qtest "a - a = 0" gen_bigint (fun a -> Bigint.is_zero (Bigint.sub a a))

let prop_divmod =
  Helpers.qtest "divmod reconstructs" QCheck2.Gen.(pair gen_bigint gen_bigint)
    (fun (a, b) ->
      if Bigint.is_zero b then true
      else begin
        let q, r = Bigint.divmod a b in
        Bigint.equal a (Bigint.add (Bigint.mul q b) r)
        && Bigint.compare (Bigint.abs r) (Bigint.abs b) < 0
        && (Bigint.is_zero r || Bigint.sign r = Bigint.sign a)
      end)

let prop_string_roundtrip =
  Helpers.qtest "string roundtrip" gen_bigint (fun a ->
      Bigint.equal a (Bigint.of_string (Bigint.to_string a)))

let prop_gcd_divides =
  Helpers.qtest "gcd divides both" QCheck2.Gen.(pair gen_bigint gen_bigint)
    (fun (a, b) ->
      let g = Bigint.gcd a b in
      if Bigint.is_zero g then Bigint.is_zero a && Bigint.is_zero b
      else Bigint.is_zero (Bigint.rem a g) && Bigint.is_zero (Bigint.rem b g))

let prop_compare_total =
  Helpers.qtest "compare antisymmetric" QCheck2.Gen.(pair gen_bigint gen_bigint)
    (fun (a, b) -> Bigint.compare a b = -Bigint.compare b a)

let suite =
  ( "bigint",
    [
      Helpers.case "of_int/to_int roundtrip" test_of_int_roundtrip;
      Helpers.case "to_string" test_to_string;
      Helpers.case "of_string" test_of_string;
      Helpers.case "add carries" test_add_carry;
      Helpers.case "mul known values" test_mul_known;
      Helpers.case "divmod known values" test_divmod_known;
      Helpers.case "euclidean division" test_ediv;
      Helpers.case "gcd" test_gcd;
      Helpers.case "compare" test_compare;
      Helpers.case "to_int bounds" test_to_int_bounds;
      Helpers.case "decimal digits" test_decimal_digits;
      prop_add_commutative;
      prop_add_associative;
      prop_mul_commutative;
      prop_distributive;
      prop_sub_inverse;
      prop_divmod;
      prop_string_roundtrip;
      prop_gcd_divides;
      prop_compare_total;
    ] )
