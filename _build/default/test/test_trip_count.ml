(* Trip counts (paper §5.2): the relop normalization table, the
   three-case count formula, and agreement with the interpreter. *)

module Driver = Analysis.Driver
module Trip_count = Analysis.Trip_count

let trip_of src name =
  let t = Helpers.analyze src in
  let loops = Ir.Ssa.loops (Driver.ssa t) in
  match Ir.Loops.find_by_name loops name with
  | Some lp -> Driver.trip_count t lp.Ir.Loops.id
  | None -> Alcotest.failf "loop %s not found" name

let check_count src name expected =
  Alcotest.(check (option int)) (src ^ " count") expected
    (Trip_count.count_int (trip_of src name))

(* The exit-condition table: every relop, exit on the true branch. *)
let test_relop_table () =
  (* "if i OP k exit" after increment; i counts 1,2,3,... *)
  let make op k =
    Printf.sprintf "i = 0\nT: loop\n  i = i + 1\n  if i %s %d exit\nendloop" op k
  in
  (* Stays while NOT (i OP k). *)
  check_count (make ">" 10) "T" (Some 10); (* stays for i=1..10 *)
  check_count (make ">=" 10) "T" (Some 9);
  check_count (make "==" 5) "T" None; (* = is not countable this way *)
  (* i < k exits immediately (i=1 < 10). *)
  check_count (make "<" 10) "T" (Some 0);
  check_count (make "<=" 10) "T" (Some 0);
  (* Decreasing variable against a lower bound. *)
  let dec = "i = 10\nT: loop\n  i = i - 2\n  if i < 3 exit\nendloop" in
  check_count dec "T" (Some 3) (* i = 8, 6, 4 stay; 2 exits *)

let test_exit_on_false_branch () =
  (* 'for' desugars to exit-on-true, but an if/else shape exercises the
     negation row: loop while i <= n. *)
  let src = "i = 1\nT: loop\n  if i <= 5 then\n    i = i + 1\n  else\n    exit\n  endif\nendloop" in
  (* The exit is conditional inside an arm; multiple blocks: count via
     the general machinery only if single exit. *)
  let tc = trip_of src "T" in
  ignore tc (* structure-dependent; just ensure no crash *)

let test_for_loop_counts () =
  check_count "for i = 1 to 10 loop\n  x = x + i\nendloop\nA(0) = x" "L1" (Some 10);
  check_count "for i = 1 to 10 by 3 loop\n  x = x + i\nendloop\nA(0) = x" "L1" (Some 4);
  check_count "for i = 10 to 1 by -2 loop\n  x = x + i\nendloop\nA(0) = x" "L1" (Some 5);
  check_count "for i = 5 to 1 loop\n  x = x + i\nendloop\nA(0) = x" "L1" (Some 0);
  check_count "for i = 3 to 3 loop\n  x = x + i\nendloop\nA(0) = x" "L1" (Some 1)

let test_infinite_and_unknown () =
  let t = trip_of "T: loop\n  x = x + 1\nendloop" "T" in
  Alcotest.(check bool) "no exit = infinite" true
    (t.Trip_count.count = Trip_count.Infinite);
  let t = trip_of "T: loop\n  x = x + 1\n  if ?? exit\nendloop" "T" in
  Alcotest.(check bool) "opaque exit = unknown" true
    (t.Trip_count.count = Trip_count.Unknown_count);
  (* Wrong-direction step runs forever. *)
  let t = trip_of "i = 1\nT: loop\n  i = i + 1\n  if i < 0 exit\nendloop" "T" in
  Alcotest.(check bool) "diverging condition" true
    (t.Trip_count.count = Trip_count.Infinite)

let test_multiple_exits_unknown () =
  let t =
    trip_of "i = 0\nT: loop\n  i = i + 1\n  if i > 10 exit\n  if i > 5 exit\nendloop" "T"
  in
  Alcotest.(check bool) "multi-exit unknown" true
    (t.Trip_count.count = Trip_count.Unknown_count)

let test_symbolic () =
  let t = trip_of "for i = 1 to n loop\n  x = x + 1\nendloop\nA(0) = x" "L1" in
  (match t.Trip_count.count with
   | Trip_count.Symbolic s ->
     Alcotest.(check bool) "count is n" true
       (Analysis.Sym.equal s (Analysis.Sym.param (Ir.Ident.of_string "n")))
   | _ -> Alcotest.fail "expected symbolic count");
  (* Symbolic lower bound too: n .. m. *)
  let t = trip_of "for i = n to m loop\n  x = x + 1\nendloop\nA(0) = x" "L1" in
  match t.Trip_count.count with
  | Trip_count.Symbolic _ -> ()
  | _ -> Alcotest.fail "expected symbolic count for n..m"

(* Property: on randomly chosen constant bounds, the computed count
   matches the interpreter. *)
let prop_counts_match_interpreter =
  Helpers.qtest ~count:120 "trip counts match execution"
    QCheck2.Gen.(triple (int_range (-5) 12) (int_range (-5) 12) (oneofl [ 1; 2; 3; -1; -2 ]))
    (fun (lo, hi, step) ->
      let src =
        Printf.sprintf "s = 0\nT: for i = %d to %d by %d loop\n  s = s + 1\nendloop\nA(0) = s" lo
          hi step
      in
      let computed = Trip_count.count_int (trip_of src "T") in
      let executed =
        let footprint = Helpers.array_footprint (Ir.Parser.parse src) in
        match footprint with
        | [ ("A", [ 0 ], v) ] -> v
        | _ -> 0
      in
      computed = Some executed)

let suite =
  ( "trip-count",
    [
      Helpers.case "relop table" test_relop_table;
      Helpers.case "exit on false branch" test_exit_on_false_branch;
      Helpers.case "for-loop counts" test_for_loop_counts;
      Helpers.case "infinite and unknown" test_infinite_and_unknown;
      Helpers.case "multiple exits" test_multiple_exits_unknown;
      Helpers.case "symbolic counts" test_symbolic;
      prop_counts_match_interpreter;
    ] )
