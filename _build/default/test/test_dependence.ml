(* Dependence testing (paper §6): GCD and Banerjee machinery, direction
   refinement, distances, and the wrap-around / periodic / monotonic
   translations. *)

module Deptest = Dependence.Deptest
module Dep_graph = Dependence.Dep_graph
module Driver = Analysis.Driver

let edges src = Dep_graph.build (Helpers.analyze src)

let edge_strings src =
  let t = Helpers.analyze src in
  List.map
    (fun (e : Dep_graph.edge) ->
      Format.asprintf "%s %s->%s %a"
        (Dep_graph.kind_to_string e.Dep_graph.kind)
        (Ir.Ident.name e.Dep_graph.src.Dep_graph.array)
        (Ir.Ident.name e.Dep_graph.dst.Dep_graph.array)
        Deptest.pp_outcome e.Dep_graph.outcome)
    (Dep_graph.build t)

let check_edges name src expected =
  Alcotest.(check (list string)) name expected (edge_strings src)

let test_flow_distance_one () =
  check_edges "A(i) = A(i-1)" "L1: for i = 1 to 100 loop\n  A(i) = A(i - 1) + 1\nendloop"
    [ "flow A->A dependent (L0:<) distance (L0:1)" ]

let test_independent_parity () =
  (* Even writes never meet odd reads: the GCD test disproves all. *)
  check_edges "A(2i) vs A(2i+1)" "L1: for i = 1 to 100 loop\n  A(2 * i) = A(2 * i + 1)\nendloop"
    []

let test_same_subscript () =
  (* A(i) read then written in the same iteration only: a same-iteration
     anti dependence, and no loop-carried dependence at all. *)
  check_edges "A(i) = A(i) + 1" "L1: for i = 1 to 100 loop\n  A(i) = A(i) + 1\nendloop"
    [ "anti A->A dependent (L0:=) distance (L0:0)" ]

let test_bounded_distance_exceeds_range () =
  (* Distance 50 inside a 10-iteration loop: independent. *)
  check_edges "far apart" "L1: for i = 1 to 10 loop\n  A(i) = A(i + 50)\nendloop" []

let test_symbolic_bound_conservative () =
  (* With an unknown trip count the same test stays dependent. *)
  let es = edges "L1: for i = 1 to n loop\n  A(i) = A(i + 50)\nendloop" in
  Alcotest.(check bool) "conservative" true (es <> [])

let test_l21_equation () =
  (* The §6 example: subscripts i+... and j-i; our classifier gives the
     lhs (L21,1,1) and rhs (L21,2,1): dependence with distance -1 is
     time-infeasible forward, so only the backward (anti) edge remains. *)
  let src = "i = 0\nj = 3\nL21: loop\n  i = i + 1\n  A(i) = A(j - i)\n  j = j + 2\n  if i > 50 exit\nendloop" in
  let es = edge_strings src in
  Alcotest.(check (list string)) "L21"
    [ "anti A->A dependent (L0:<) distance (L0:1)" ]
    es

let test_l22_periodic_translation () =
  (* '=' on family members becomes '<>' on iterations; with the time
     filter only strictly-forward edges survive. *)
  let src = {|
j = 1
k = 2
l = 3
L22: loop
  A(2 * j) = A(2 * k)
  temp = j
  j = k
  k = l
  l = temp
  if ?? exit
endloop
|} in
  let t = Helpers.analyze src in
  let es = Dep_graph.build t in
  (* write<->read both ways plus the write's own periodic self-output *)
  Alcotest.(check int) "three directed edges" 3 (List.length es);
  List.iter
    (fun (e : Dep_graph.edge) ->
      match e.Dep_graph.outcome with
      | Deptest.Dependent d ->
        let _, ds = List.hd d.Deptest.directions in
        Alcotest.(check bool) "no same-iteration dependence" false ds.Deptest.eq
      | Deptest.Independent -> Alcotest.fail "edge should be dependent")
    es

let test_periodic_same_member () =
  (* Same member on both sides: dependence only at h = h' (mod p), which
     includes '='. *)
  let src = {|
j = 1
k = 2
L22: loop
  A(j) = A(j) + 1
  t = j
  j = k
  k = t
  if ?? exit
endloop
|} in
  let t = Helpers.analyze src in
  let es = Dep_graph.build t in
  Alcotest.(check bool) "has an eq-direction edge" true
    (List.exists
       (fun (e : Dep_graph.edge) ->
         match e.Dep_graph.outcome with
         | Deptest.Dependent d ->
           List.exists (fun (_, ds) -> ds.Deptest.eq) d.Deptest.directions
         | Deptest.Independent -> false)
       es)

let test_fig10_monotonic_translation () =
  let src = {|
k = 0
L15: for i = 1 to n loop
  F(k) = A(i)
  if ?? then
    k = k + 1
    B(k) = A(i)
    E(i) = B(k)
  endif
  G(i) = F(k)
endloop
|} in
  let t = Helpers.analyze src in
  let es = Dep_graph.build t in
  let find array kind =
    List.find_opt
      (fun (e : Dep_graph.edge) ->
        Ir.Ident.name e.Dep_graph.src.Dep_graph.array = array
        && e.Dep_graph.kind = kind)
      es
  in
  (* B: strictly monotonic subscript -> '=' only. *)
  (match find "B" Dep_graph.Flow with
   | Some { outcome = Deptest.Dependent d; _ } ->
     let _, ds = List.hd d.Deptest.directions in
     Alcotest.(check bool) "B eq" true ds.Deptest.eq;
     Alcotest.(check bool) "B no lt" false ds.Deptest.lt
   | _ -> Alcotest.fail "no B flow edge");
  (* F flow: '<='; F anti: '<'. *)
  (match find "F" Dep_graph.Flow with
   | Some { outcome = Deptest.Dependent d; _ } ->
     let _, ds = List.hd d.Deptest.directions in
     Alcotest.(check bool) "F flow le" true (ds.Deptest.eq && ds.Deptest.lt && not ds.Deptest.gt)
   | _ -> Alcotest.fail "no F flow edge");
  match find "F" Dep_graph.Anti with
  | Some { outcome = Deptest.Dependent d; _ } ->
    let _, ds = List.hd d.Deptest.directions in
    Alcotest.(check bool) "F anti lt" true (ds.Deptest.lt && not ds.Deptest.eq)
  | _ -> Alcotest.fail "no F anti edge"

let test_fig10_strict_region_and_self_output () =
  (* §5.4's refinement: C(k2) sits inside the conditional, post-dominated
     by the strict update k = k + 1, so its subscript cannot repeat and
     the output self-dependence on C disappears; F(k2) at the top of the
     body keeps its self-output dependence (direction <). *)
  let src = {|
k = 0
L15: for i = 1 to n loop
  F(k) = A(i)
  if ?? then
    C(k) = D(i)
    k = k + 1
    B(k) = A(i)
  endif
endloop
|} in
  let t = Helpers.analyze src in
  let es = Dep_graph.build t in
  let self_output array =
    List.find_opt
      (fun (e : Dep_graph.edge) ->
        e.Dep_graph.kind = Dep_graph.Output
        && e.Dep_graph.src.Dep_graph.instr = e.Dep_graph.dst.Dep_graph.instr
        && Ir.Ident.name e.Dep_graph.src.Dep_graph.array = array)
      es
  in
  Alcotest.(check bool) "C cells written at most once" true (self_output "C" = None);
  Alcotest.(check bool) "B cells written at most once" true (self_output "B" = None);
  (match self_output "F" with
   | Some { outcome = Deptest.Dependent d; _ } ->
     let _, ds = List.hd d.Deptest.directions in
     Alcotest.(check bool) "F rewrites later cells" true (ds.Deptest.lt && not ds.Deptest.eq)
   | _ -> Alcotest.fail "F self-output edge expected")

let test_strict_region_shape () =
  (* The region is exactly the conditional body (the block holding the
     strict update), not the top of the loop. *)
  let src = {|
k = 0
L15: for i = 1 to n loop
  F(k) = A(i)
  if ?? then
    C(k) = D(i)
    k = k + 1
  endif
endloop
|} in
  let t = Helpers.analyze src in
  let ssa = Driver.ssa t in
  let loops = Ir.Ssa.loops ssa in
  let lp = Option.get (Ir.Loops.find_by_name loops "L15") in
  (* Find the monotonic family (the header phi). *)
  let family = ref None in
  Ir.Cfg.iter_instrs (Ir.Ssa.cfg ssa) (fun _ (i : Ir.Instr.t) ->
      match Driver.class_of t i.Ir.Instr.id with
      | Analysis.Ivclass.Monotonic m -> family := Some m.Analysis.Ivclass.family
      | _ -> ());
  match !family with
  | None -> Alcotest.fail "no monotonic family"
  | Some f ->
    let region = Dep_graph.strict_region t lp.Ir.Loops.id f in
    Alcotest.(check bool) "region nonempty" true (not (Ir.Label.Set.is_empty region));
    (* The loop header (where F's store reads k) is not in the region:
       the then-branch may be skipped. *)
    Alcotest.(check bool) "header outside region" false
      (Ir.Label.Set.mem lp.Ir.Loops.header region)

let test_wraparound_flag () =
  let src = "iml = n\nL9: for i = 1 to n loop\n  A(i) = A(iml) + 1\n  iml = i\nendloop" in
  let t = Helpers.analyze src in
  let es = Dep_graph.build t in
  Alcotest.(check bool) "wrap order recorded" true
    (List.exists
       (fun (e : Dep_graph.edge) ->
         match e.Dep_graph.outcome with
         | Deptest.Dependent d -> d.Deptest.holds_after = 1
         | Deptest.Independent -> false)
       es)

let test_2d_distance_vector () =
  let src = {|
L23: for i = 1 to n loop
  L24: for j = i + 1 to n loop
    A(i, j) = A(i - 1, j)
  endloop
endloop
|} in
  let t = Helpers.analyze src in
  match Dep_graph.build t with
  | [ { kind = Dep_graph.Flow; outcome = Deptest.Dependent d; _ } ] ->
    (* Iteration-space distances: (1, -1) for the triangular nest (the
       paper's §6.1: our representation implicitly normalizes). *)
    Alcotest.(check (option (list (pair int int)))) "distance vector"
      (Some [ (0, 1); (1, -1) ])
      d.Deptest.distance
  | es -> Alcotest.failf "expected one flow edge, got %d" (List.length es)

let test_2d_rectangular () =
  let src = {|
L23: for i = 1 to n loop
  L24: for j = 1 to n loop
    A(i, j) = A(i - 1, j)
  endloop
endloop
|} in
  let t = Helpers.analyze src in
  match Dep_graph.build t with
  | [ { kind = Dep_graph.Flow; outcome = Deptest.Dependent d; _ } ] ->
    Alcotest.(check (option (list (pair int int)))) "distance vector"
      (Some [ (0, 1); (1, 0) ])
      d.Deptest.distance
  | es -> Alcotest.failf "expected one flow edge, got %d" (List.length es)

let test_inconsistent_system_independent () =
  (* Dim 1 forces distance 1, dim 2 forces distance 0 on the same loop:
     no solution. *)
  check_edges "coupled contradiction"
    "L1: for i = 1 to 100 loop\n  A(i, i) = A(i - 1, i)\nendloop" []

let test_multidim_same_loop_consistent () =
  check_edges "coupled consistent"
    "L1: for i = 1 to 100 loop\n  A(i, i + 5) = A(i - 1, i + 4)\nendloop"
    [ "flow A->A dependent (L0:<) distance (L0:1)" ]

let test_different_arrays_no_edge () =
  check_edges "different arrays" "L1: for i = 1 to 9 loop\n  A(i) = B(i)\nendloop" []

let test_reads_only_no_edge () =
  check_edges "reads only" "L1: for i = 1 to 9 loop\n  x = A(i) + A(i - 1)\n  C(i) = x\nendloop"
    []

(* --- unit-level checks of the solver pieces --- *)

let test_solve_distance_system () =
  (* d_i = 1; d_i + d_j = 0  ->  d_j = -1. *)
  (match Deptest.solve_distance_system [ ([ (0, 1) ], 1); ([ (0, 1); (1, 1) ], 0) ] with
   | Some ds -> Alcotest.(check (list (pair int int))) "solved" [ (0, 1); (1, -1) ] ds
   | None -> Alcotest.fail "system should be consistent");
  (* Contradiction. *)
  (match Deptest.solve_distance_system [ ([ (0, 1) ], 1); ([ (0, 1) ], 0) ] with
   | None -> ()
   | Some _ -> Alcotest.fail "system should be inconsistent");
  (* Underdetermined: d_i + d_j = 3 pins nothing. *)
  match Deptest.solve_distance_system [ ([ (0, 1); (1, 1) ], 3) ] with
  | Some [] -> ()
  | Some ds -> Alcotest.failf "expected no determined distances, got %d" (List.length ds)
  | None -> Alcotest.fail "consistent system"

let suite =
  ( "dependence",
    [
      Helpers.case "flow distance 1" test_flow_distance_one;
      Helpers.case "gcd independence" test_independent_parity;
      Helpers.case "same subscript" test_same_subscript;
      Helpers.case "distance beyond bounds" test_bounded_distance_exceeds_range;
      Helpers.case "symbolic bounds conservative" test_symbolic_bound_conservative;
      Helpers.case "L21 equation" test_l21_equation;
      Helpers.case "L22 periodic translation" test_l22_periodic_translation;
      Helpers.case "periodic same member" test_periodic_same_member;
      Helpers.case "Fig 10 monotonic translation" test_fig10_monotonic_translation;
      Helpers.case "Fig 10 strict region and self-output" test_fig10_strict_region_and_self_output;
      Helpers.case "strict region shape" test_strict_region_shape;
      Helpers.case "wrap-around flag" test_wraparound_flag;
      Helpers.case "2D triangular distance vector" test_2d_distance_vector;
      Helpers.case "2D rectangular distance vector" test_2d_rectangular;
      Helpers.case "inconsistent coupled system" test_inconsistent_system_independent;
      Helpers.case "consistent coupled system" test_multidim_same_loop_consistent;
      Helpers.case "different arrays" test_different_arrays_no_edge;
      Helpers.case "reads only" test_reads_only_no_edge;
      Helpers.case "distance system solver" test_solve_distance_system;
    ] )
