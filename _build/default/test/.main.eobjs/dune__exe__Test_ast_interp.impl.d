test/test_ast_interp.ml: Alcotest Gen Hashtbl Helpers Ir List QCheck2 Random
