test/test_sccp.ml: Alcotest Analysis Helpers Ir
