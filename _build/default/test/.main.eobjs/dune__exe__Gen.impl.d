test/gen.ml: Ir List Printf QCheck2
