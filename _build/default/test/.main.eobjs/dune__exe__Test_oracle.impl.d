test/test_oracle.ml: Alcotest Gen Hashtbl Helpers Ir List QCheck2 Random
