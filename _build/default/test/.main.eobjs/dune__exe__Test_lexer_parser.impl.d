test/test_lexer_parser.ml: Alcotest Helpers Ir List QCheck2 String
