test/test_banerjee.ml: Analysis Dependence Helpers List QCheck2
