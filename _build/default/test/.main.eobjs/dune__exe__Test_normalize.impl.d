test/test_normalize.ml: Alcotest Analysis Dependence Gen Hashtbl Helpers Ir List Option Random Transform
