test/test_rat.ml: Alcotest Bigint Bignum Helpers QCheck2 Rat
