test/test_bigint.ml: Alcotest Bigint Bignum Helpers List Printf QCheck2
