test/test_transforms.ml: Alcotest Analysis Dependence Gen Hashtbl Helpers Ir List Option Random Transform
