test/test_dom.ml: Alcotest Array Gen Helpers Ir List Printf
