test/test_cfg.ml: Alcotest Hashtbl Helpers Ir List String
