test/test_peel.ml: Alcotest Analysis Gen Hashtbl Helpers Ir List Option Printf Random Transform
