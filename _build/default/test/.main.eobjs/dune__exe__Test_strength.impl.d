test/test_strength.ml: Alcotest Analysis Gen Hashtbl Helpers Ir List QCheck2 Random String Transform
