test/helpers.ml: Alcotest Analysis Bignum Hashtbl Ir List Printf QCheck2 QCheck_alcotest String
