test/test_closed_form.ml: Alcotest Analysis Array Bignum Helpers Ir List Printf QCheck2 Rat
