test/test_ivclass.ml: Alcotest Analysis Bignum Helpers List Printf Rat
