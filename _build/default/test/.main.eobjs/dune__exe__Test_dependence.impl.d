test/test_dependence.ml: Alcotest Analysis Dependence Format Helpers Ir List Option
