test/test_dep_oracle.ml: Alcotest Analysis Array Dependence Gen Hashtbl Helpers Ir List Printf QCheck2 Random String
