test/test_affine.ml: Alcotest Analysis Dependence Helpers Ir
