test/test_tarjan.ml: Alcotest Analysis Array Fun Hashtbl Helpers List Printf QCheck2
