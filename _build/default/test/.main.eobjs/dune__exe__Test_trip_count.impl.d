test/test_trip_count.ml: Alcotest Analysis Helpers Ir Printf QCheck2
