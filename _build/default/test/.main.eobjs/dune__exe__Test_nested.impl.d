test/test_nested.ml: Alcotest Analysis Helpers Ir Option Printf
