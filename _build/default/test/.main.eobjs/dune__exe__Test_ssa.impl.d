test/test_ssa.ml: Alcotest Analysis Array Gen Helpers Ir List Option QCheck2 String
