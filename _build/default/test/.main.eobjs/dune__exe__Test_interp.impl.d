test/test_interp.ml: Alcotest Hashtbl Helpers Ir List
