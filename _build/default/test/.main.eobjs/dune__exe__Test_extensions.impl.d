test/test_extensions.ml: Alcotest Analysis Dependence Gen Hashtbl Helpers Ir List Option Random String Transform
