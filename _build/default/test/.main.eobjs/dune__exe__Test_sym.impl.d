test/test_sym.ml: Alcotest Analysis Bignum Helpers Ir List QCheck2 Rat
