test/test_algebra.ml: Alcotest Analysis Bigint Bignum Helpers Ir List Option Rat
