test/test_baseline.ml: Alcotest Analysis Helpers Ir List Printf String
