test/test_monotonic_mul.ml: Alcotest Analysis Helpers List Option
