test/test_figures.ml: Alcotest Analysis Bignum Helpers List Option
