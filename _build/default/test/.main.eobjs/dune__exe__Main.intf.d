test/main.mli:
