test/test_loops.ml: Alcotest Gen Helpers Ir List Option String
