test/test_ratmat.ml: Alcotest Array Bignum Helpers List Printf QCheck2 Rat Ratmat
