test/test_driver.ml: Alcotest Analysis Dependence Helpers Ir List String
