(* Nested loops (paper §5.3): exit values, multiloop induction variables,
   and the triangular example of Figure 9. *)

module Driver = Analysis.Driver
module Ivclass = Analysis.Ivclass

let fig78 = {|
k = 0
L17: loop
  i = 1
  L18: loop
    k = k + 2
    if i > 100 exit
    i = i + 1
  endloop
  k = k + 2
endloop
|}

let test_fig78_classification () =
  Helpers.check_classes fig78
    [
      (* Inner loop: multiloop IVs with the outer classification nested
         in the initial value slot (the paper's Fig 8 result). *)
      ("k3", "(L18, (L17, 0, 204), 2)");
      ("k4", "(L18, (L17, 2, 204), 2)");
      ("i2", "(L18, 1, 1)");
      ("i3", "(L18, 2, 1)");
      (* Outer loop: k2 = (L17, 0, 204) and k5 = (L17, 204, 204). *)
      ("k2", "(L17, 0, 204)");
      ("k5", "(L17, 204, 204)");
    ]

let test_fig78_trip_and_exit_values () =
  let t = Helpers.analyze fig78 in
  let ssa = Driver.ssa t in
  let loops = Ir.Ssa.loops ssa in
  let l18 = Option.get (Ir.Loops.find_by_name loops "L18") in
  (* Trip count 100 (the exit test is below k's increment). *)
  Alcotest.(check (option int)) "trip count" (Some 100)
    (Analysis.Trip_count.count_int (Driver.trip_count t l18.Ir.Loops.id));
  (* Exit value of k4 is k2 + 202 (k4 executes 101 times, paper's kG);
     exit value of i3 is 101. *)
  let exit_of name =
    match Ir.Ssa.def_of_name ssa name with
    | Some id -> Option.map Analysis.Sym.to_string (Driver.exit_value t id)
    | None -> None
  in
  (match Ir.Ssa.def_of_name ssa "k2" with
   | Some k2 ->
     Alcotest.(check (option string)) "k4 exit" (Some (Printf.sprintf "202 + %%%d" k2))
       (exit_of "k4")
   | None -> Alcotest.fail "k2 missing");
  Alcotest.(check (option string)) "i3 exit" (Some "101") (exit_of "i3")

let fig9 = {|
j = 0
L19: for i = 1 to n loop
  j = j + i
  L20: for k = 1 to i loop
    j = j + 1
  endloop
endloop
|}

let test_fig9_quadratic () =
  Helpers.check_classes fig9
    [
      ("j2", "(L19, 0, 1, 1)");
      ("j3", "(L19, 1, 2, 1)");
      ("i2", "(L19, 1, 1)");
      (* Inner loop: linear IVs whose base is the outer quadratic (the
         paper's j4 = (L20, (L19, 1, ...), 1)). *)
      ("j4", "(L20, (L19, 1, 2, 1), 1)");
      ("j5", "(L20, (L19, 2, 2, 1), 1)");
      ("k2", "(L20, 1, 1)");
    ]

let test_fig9_symbolic_trip () =
  let t = Helpers.analyze fig9 in
  let loops = Ir.Ssa.loops (Driver.ssa t) in
  let l20 = Option.get (Ir.Loops.find_by_name loops "L20") in
  let trip = Driver.trip_count t l20.Ir.Loops.id in
  (match trip.Analysis.Trip_count.count with
   | Analysis.Trip_count.Symbolic _ -> ()
   | _ -> Alcotest.fail "expected symbolic trip count");
  Alcotest.(check bool) "assumes positive" true trip.Analysis.Trip_count.assumes_positive

let test_three_deep () =
  (* Three levels: the innermost step cascades out to a cubic... here we
     keep all bounds constant so the totals are exact linear nests. *)
  let src = {|
s = 0
L1: for i = 1 to 4 loop
  L2: for j = 1 to 3 loop
    L3: for k = 1 to 2 loop
      s = s + 1
    endloop
  endloop
endloop
A(0) = s
|} in
  let t = Helpers.analyze src in
  (* s increments 2 per L3 activation -> 6 per L2 activation -> 24 total:
     outer classification (L1, 0, 6). *)
  Helpers.check_class t "s2" "(L1, 0, 6)";
  (* And the innermost phi is a multiloop IV nested two deep. *)
  match Driver.class_of_name t "s4" with
  | Some (Ivclass.Linear { base = Ivclass.Linear { base = Ivclass.Linear _; _ }; _ }) -> ()
  | Some c -> Alcotest.failf "expected doubly nested linear, got %s" (Driver.class_to_string t c)
  | None -> Alcotest.fail "s4 not found"

let test_inner_unknown_poisons_outer () =
  (* A non-countable inner loop makes the outer accumulation unknown. *)
  let src = {|
k = 0
L1: loop
  L2: loop
    k = k + 1
    if ?? exit
  endloop
  A(k) = 1
  if ?? exit
endloop
|} in
  let t = Helpers.analyze src in
  Alcotest.(check (option string)) "outer k unknown" (Some "unknown")
    (Option.map (Driver.class_to_string t) (Driver.class_of_name t "k2"))

let test_countable_inner_with_outer_invariant_bound () =
  let src = {|
s = 0
L1: for i = 1 to n loop
  L2: for j = 1 to 5 loop
    s = s + 2
  endloop
endloop
A(0) = s
|} in
  Helpers.check_classes src [ ("s2", "(L1, 0, 10)") ]

let test_exit_value_of_conditional_def_absent () =
  (* Defs that do not execute on every iteration have no exit value. *)
  let src = {|
k = 0
L1: loop
  L2: for i = 1 to 10 loop
    if ?? then
      k = i * 2
    endif
  endloop
  A(k) = 1
  if ?? exit
endloop
|} in
  let t = Helpers.analyze src in
  let ssa = Driver.ssa t in
  (* The store inside the conditional is classified (it is i*2, linear in
     L2) but executes on some iterations only: no exit value. *)
  let conditional_def =
    let found = ref None in
    Ir.Cfg.iter_instrs (Ir.Ssa.cfg ssa) (fun _ (i : Ir.Instr.t) ->
        match i.Ir.Instr.op with
        | Ir.Instr.Binop Ir.Ops.Mul -> found := Some i.Ir.Instr.id
        | _ -> ());
    !found
  in
  match conditional_def with
  | Some id ->
    (match Driver.class_of t id with
     | Ivclass.Linear _ -> ()
     | c -> Alcotest.failf "expected linear, got %s" (Driver.class_to_string t c));
    Alcotest.(check bool) "no exit value" true (Driver.exit_value t id = None)
  | None -> Alcotest.fail "multiply not found"

let suite =
  ( "nested",
    [
      Helpers.case "Fig 7/8 classification" test_fig78_classification;
      Helpers.case "Fig 7/8 trip count and exit values" test_fig78_trip_and_exit_values;
      Helpers.case "Fig 9 quadratic family" test_fig9_quadratic;
      Helpers.case "Fig 9 symbolic trip count" test_fig9_symbolic_trip;
      Helpers.case "three-deep nest" test_three_deep;
      Helpers.case "uncountable inner loop" test_inner_unknown_poisons_outer;
      Helpers.case "countable inner, symbolic outer" test_countable_inner_with_outer_invariant_bound;
      Helpers.case "conditional defs have no exit value" test_exit_value_of_conditional_def_absent;
    ] )
