(* The symbolic polynomial algebra used for initial values and steps. *)

module Sym = Analysis.Sym
open Bignum

(* Fresh names interned here in this order, so the canonical atom order
   (and hence printing) is aa < bb < cc. *)
let aa = Sym.param (Ir.Ident.of_string "aa")
let bb = Sym.param (Ir.Ident.of_string "bb")
let cc = Sym.param (Ir.Ident.of_string "cc")

let check name expected actual =
  Alcotest.(check string) name expected (Sym.to_string actual)

let test_basic () =
  check "const" "7" (Sym.of_int 7);
  check "zero" "0" Sym.zero;
  check "atom" "aa" aa;
  check "sum" "aa + bb" (Sym.add aa bb);
  check "constant first" "1 + aa" (Sym.add aa Sym.one);
  check "cancel" "0" (Sym.sub (Sym.add aa bb) (Sym.add bb aa));
  check "scale" "2 + 2*aa" (Sym.scale (Rat.of_int 2) (Sym.add aa Sym.one));
  check "neg" "-1 - aa" (Sym.neg (Sym.add aa Sym.one));
  check "rational coeff" "1/2*aa" (Sym.scale (Rat.of_ints 1 2) aa)

let test_mul () =
  check "product" "aa*bb" (Sym.mul aa bb);
  check "square" "aa^2" (Sym.mul aa aa);
  check "binomial" "1 + 2*aa + aa^2" (Sym.mul (Sym.add aa Sym.one) (Sym.add aa Sym.one));
  check "diff of squares" "-1 + aa^2" (Sym.mul (Sym.add aa Sym.one) (Sym.sub aa Sym.one));
  check "pow" "1 + 3*aa + 3*aa^2 + aa^3" (Sym.pow (Sym.add aa Sym.one) 3);
  check "mul by zero" "0" (Sym.mul aa Sym.zero)

let test_const_view () =
  Alcotest.(check (option int)) "const int" (Some 5) (Sym.const_int (Sym.of_int 5));
  Alcotest.(check (option int)) "non const" None (Sym.const_int aa);
  Alcotest.(check bool) "is_const" true (Sym.is_const (Sym.of_rat (Rat.of_ints 1 2)));
  Alcotest.(check (option int)) "half is not an int" None
    (Sym.const_int (Sym.of_rat (Rat.of_ints 1 2)))

let test_eval () =
  let lookup = function
    | Sym.Param x when Ir.Ident.name x = "aa" -> Some (Rat.of_int 10)
    | Sym.Param x when Ir.Ident.name x = "bb" -> Some (Rat.of_int 3)
    | _ -> None
  in
  let e = Sym.add (Sym.mul aa aa) (Sym.scale (Rat.of_int 2) bb) in
  (match Sym.eval lookup e with
   | Some v -> Alcotest.(check string) "eval" "106" (Rat.to_string v)
   | None -> Alcotest.fail "eval failed");
  Alcotest.(check bool) "unknown atom" true (Sym.eval lookup (Sym.add e cc) = None)

let test_subst () =
  (* aa := bb + 1 in aa^2 gives bb^2 + 2bb + 1. *)
  let lookup = function
    | Sym.Param x when Ir.Ident.name x = "aa" -> Some (Sym.add bb Sym.one)
    | _ -> None
  in
  check "subst" "1 + 2*bb + bb^2" (Sym.subst lookup (Sym.mul aa aa))

let test_atoms_degree () =
  let e = Sym.add (Sym.mul aa (Sym.mul bb bb)) cc in
  Alcotest.(check int) "atom count" 3 (List.length (Sym.atoms e));
  let batom = List.hd (Sym.atoms bb) in
  Alcotest.(check int) "degree in bb" 2 (Sym.degree_in batom e);
  let aatom = List.hd (Sym.atoms aa) in
  Alcotest.(check int) "degree in aa" 1 (Sym.degree_in aatom e)

(* --- properties --- *)

let gen_sym =
  let open QCheck2.Gen in
  let atom = oneofl [ aa; bb; cc ] in
  let rec expr depth =
    if depth = 0 then oneof [ atom; map Sym.of_int (int_range (-5) 5) ]
    else
      oneof
        [
          atom;
          map Sym.of_int (int_range (-5) 5);
          map2 Sym.add (expr (depth - 1)) (expr (depth - 1));
          map2 Sym.mul (expr (depth - 1)) (expr (depth - 1));
          map Sym.neg (expr (depth - 1));
        ]
  in
  expr 3

let prop_add_comm =
  Helpers.qtest "add commutes" QCheck2.Gen.(pair gen_sym gen_sym) (fun (a, b) ->
      Sym.equal (Sym.add a b) (Sym.add b a))

let prop_mul_comm =
  Helpers.qtest "mul commutes" QCheck2.Gen.(pair gen_sym gen_sym) (fun (a, b) ->
      Sym.equal (Sym.mul a b) (Sym.mul b a))

let prop_distrib =
  Helpers.qtest ~count:100 "distributivity" QCheck2.Gen.(triple gen_sym gen_sym gen_sym)
    (fun (a, b, sc) ->
      Sym.equal (Sym.mul a (Sym.add b sc)) (Sym.add (Sym.mul a b) (Sym.mul a sc)))

let prop_eval_homomorphic =
  (* Evaluating after an operation = operating on evaluations. *)
  Helpers.qtest ~count:150 "eval is a homomorphism"
    QCheck2.Gen.(
      triple gen_sym gen_sym
        (triple (int_range (-9) 9) (int_range (-9) 9) (int_range (-9) 9)))
    (fun (a, b, (va_, vb_, vc_)) ->
      let lookup = function
        | Sym.Param x when Ir.Ident.name x = "aa" -> Some (Rat.of_int va_)
        | Sym.Param x when Ir.Ident.name x = "bb" -> Some (Rat.of_int vb_)
        | Sym.Param x when Ir.Ident.name x = "cc" -> Some (Rat.of_int vc_)
        | _ -> None
      in
      match (Sym.eval lookup a, Sym.eval lookup b) with
      | Some va, Some vb ->
        Sym.eval lookup (Sym.add a b) = Some (Rat.add va vb)
        && Sym.eval lookup (Sym.mul a b) = Some (Rat.mul va vb)
      | _ -> false)

let prop_canonical_equal =
  (* Structural equality is semantic equality for our generators: two
     different association orders normalize identically. *)
  Helpers.qtest "associativity normalizes" QCheck2.Gen.(triple gen_sym gen_sym gen_sym)
    (fun (a, b, sc) ->
      Sym.equal (Sym.add a (Sym.add b sc)) (Sym.add (Sym.add a b) sc)
      && Sym.equal (Sym.mul a (Sym.mul b sc)) (Sym.mul (Sym.mul a b) sc))

let suite =
  ( "sym",
    [
      Helpers.case "basics" test_basic;
      Helpers.case "multiplication" test_mul;
      Helpers.case "constant views" test_const_view;
      Helpers.case "evaluation" test_eval;
      Helpers.case "substitution" test_subst;
      Helpers.case "atoms and degrees" test_atoms_degree;
      prop_add_comm;
      prop_mul_comm;
      prop_distrib;
      prop_eval_homomorphic;
      prop_canonical_equal;
    ] )
