(* The loop-language front end. *)

module Lexer = Ir.Lexer
module Parser = Ir.Parser
module Ast = Ir.Ast
module Ops = Ir.Ops

let tokens src =
  List.map (fun (t : Lexer.located) -> t.Lexer.token) (Lexer.tokenize src)

let test_tokens () =
  let open Lexer in
  Alcotest.(check bool) "arith" true
    (tokens "x = a + 2*b - c/d ^ e"
    = [
        IDENT "x"; ASSIGN; IDENT "a"; PLUS; INT 2; STAR; IDENT "b"; MINUS; IDENT "c";
        SLASH; IDENT "d"; CARET; IDENT "e"; EOF;
      ]);
  Alcotest.(check bool) "relops" true
    (tokens "< <= > >= == != <> ??"
    = [ LT; LE; GT; GE; EQ; NE; NE; UNKNOWN_COND; EOF ]);
  Alcotest.(check bool) "keywords case-insensitive" true
    (tokens "LOOP EndLoop FOR to BY if THEN else endif exit"
    = [
        KW_LOOP; KW_ENDLOOP; KW_FOR; KW_TO; KW_BY; KW_IF; KW_THEN; KW_ELSE; KW_ENDIF;
        KW_EXIT; EOF;
      ]);
  Alcotest.(check bool) "comments" true
    (tokens "a = 1 # comment here\nb = 2 // another"
    = [ IDENT "a"; ASSIGN; INT 1; IDENT "b"; ASSIGN; INT 2; EOF ])

let test_positions () =
  match Lexer.tokenize "a = 1\n  b = 2" with
  | [ _; _; _; b; _; _; _ ] ->
    Alcotest.(check int) "line" 2 b.Lexer.pos.Lexer.line;
    Alcotest.(check int) "col" 3 b.Lexer.pos.Lexer.col
  | _ -> Alcotest.fail "unexpected token count"

let test_lex_errors () =
  Alcotest.(check bool) "bad char" true
    (match Lexer.tokenize "a = $" with
     | exception Lexer.Lex_error (_, pos) -> pos.Lexer.col = 5
     | _ -> false)

let parse src = Parser.parse src

let test_precedence () =
  (* a + b * c parses as a + (b * c). *)
  let p = parse "x = a + b * c" in
  (match p.Ast.stmts with
   | [ Ast.Assign (_, Ast.Binop (Ops.Add, Ast.Var _, Ast.Binop (Ops.Mul, _, _))) ] -> ()
   | _ -> Alcotest.fail "precedence add/mul");
  let p = parse "x = a * b + c" in
  (match p.Ast.stmts with
   | [ Ast.Assign (_, Ast.Binop (Ops.Add, Ast.Binop (Ops.Mul, _, _), Ast.Var _)) ] -> ()
   | _ -> Alcotest.fail "precedence mul/add");
  (* Left associativity of subtraction. *)
  let p = parse "x = a - b - c" in
  (match p.Ast.stmts with
   | [ Ast.Assign (_, Ast.Binop (Ops.Sub, Ast.Binop (Ops.Sub, _, _), _)) ] -> ()
   | _ -> Alcotest.fail "sub associativity");
  (* Exponentiation binds tighter and is right-associative. *)
  let p = parse "x = a ^ b ^ c" in
  (match p.Ast.stmts with
   | [ Ast.Assign (_, Ast.Binop (Ops.Exp, Ast.Var _, Ast.Binop (Ops.Exp, _, _))) ] -> ()
   | _ -> Alcotest.fail "exp associativity");
  (* Unary minus. *)
  let p = parse "x = -a * b" in
  (match p.Ast.stmts with
   | [ Ast.Assign (_, Ast.Binop (Ops.Mul, Ast.Neg _, _)) ] -> ()
   | _ -> Alcotest.fail "unary minus binds to factor")

let test_structures () =
  let p = parse {|
L1: loop
  if x < 10 then
    x = x + 1
  else
    x = 0
  endif
  if x > 5 exit
endloop
A(i, j) = B(i) + 1
|} in
  match p.Ast.stmts with
  | [ Ast.Loop ("L1", [ Ast.If _; Ast.Exit_if _ ]); Ast.Astore (_, [ _; _ ], _) ] -> ()
  | _ -> Alcotest.fail "structure mismatch"

let test_for_forms () =
  (match (parse "for i = 1 to n loop endloop").Ast.stmts with
   | [ Ast.For { step = 1; lo = Ast.Int 1; _ } ] -> ()
   | _ -> Alcotest.fail "default step");
  (match (parse "for i = n to 1 by -2 loop endloop").Ast.stmts with
   | [ Ast.For { step = -2; _ } ] -> ()
   | _ -> Alcotest.fail "negative step");
  (match (parse "L9: for i = 1 to n loop endloop").Ast.stmts with
   | [ Ast.For { name = "L9"; _ } ] -> ()
   | _ -> Alcotest.fail "labelled for");
  (* Unlabelled loops get fresh names. *)
  match (parse "loop endloop loop endloop").Ast.stmts with
  | [ Ast.Loop (a, _); Ast.Loop (b, _) ] ->
    Alcotest.(check bool) "distinct" true (a <> b)
  | _ -> Alcotest.fail "two loops"

let test_parse_errors () =
  let fails src =
    match Parser.parse_result src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %S" src
  in
  fails "x = ";
  fails "loop";
  fails "if x then y = 1";
  fails "for i = 1 loop endloop";
  fails "for i = 1 to 2 by 0 loop endloop";
  fails "x = (1 + 2";
  fails "endloop";
  fails "if ?? y = 1 endif"

let test_roundtrip () =
  (* parse |> pretty-print |> parse is stable. *)
  let sources =
    [
      "j = n\nL7: loop\n  i = j + c\n  j = i + k\nendloop";
      "for i = 1 to n loop\n  A(i) = A(i - 1) + 1\nendloop";
      "if ?? then\n  x = 1\nelse\n  x = 2\nendif";
      "k = 0\nloop\n  k = k + 2\n  if k > 10 exit\nendloop";
    ]
  in
  List.iter
    (fun src ->
      let p1 = parse src in
      let printed = Ast.to_string p1 in
      let p2 = parse printed in
      Alcotest.(check string) "stable print" printed (Ast.to_string p2))
    sources

let prop_parser_total =
  (* Arbitrary input only ever raises the two documented exceptions. *)
  Helpers.qtest ~count:500 "parser is total" QCheck2.Gen.(string_size (int_range 0 60))
    (fun s ->
      match Parser.parse s with
      | _ -> true
      | exception Lexer.Lex_error _ -> true
      | exception Parser.Parse_error _ -> true)

let prop_token_soup =
  (* Sequences of valid tokens never crash either. *)
  Helpers.qtest ~count:300 "token soup"
    QCheck2.Gen.(
      list_size (int_range 0 30)
        (oneofl
           [ "loop"; "endloop"; "for"; "to"; "by"; "if"; "then"; "else"; "endif";
             "exit"; "+"; "-"; "*"; "/"; "^"; "("; ")"; ","; ":"; "="; "=="; "!=";
             "<"; "<="; ">"; ">="; "??"; "x"; "A"; "0"; "42" ]))
    (fun toks ->
      let s = String.concat " " toks in
      match Parser.parse s with
      | _ -> true
      | exception Lexer.Lex_error _ -> true
      | exception Parser.Parse_error _ -> true)

let suite =
  ( "lexer-parser",
    [
      Helpers.case "tokens" test_tokens;
      Helpers.case "positions" test_positions;
      Helpers.case "lexical errors" test_lex_errors;
      Helpers.case "precedence" test_precedence;
      Helpers.case "structured statements" test_structures;
      Helpers.case "for loop forms" test_for_forms;
      Helpers.case "parse errors" test_parse_errors;
      Helpers.case "print/parse roundtrip" test_roundtrip;
      prop_parser_total;
      prop_token_soup;
    ] )
