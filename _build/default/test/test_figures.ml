(* Every worked example of the paper, checked against its stated
   classification (DESIGN.md rows F1-F10 and the inline loops). *)

let check = Helpers.check_classes

let test_l1_basic () =
  (* "i = i + k" with invariant k: the canonical basic IV. *)
  check "i = i0\nL1: loop\n  i = i + k\nendloop\nA(i) = 1"
    [ ("i2", "(L1, i0, k)"); ("i3", "(L1, i0 + k, k)") ]

let test_l2_mutual () =
  (* Mutually-defined pair (paper loop L2). *)
  check "j = n\nL2: loop\n  i = j + c\n  j = i + k\nendloop"
    [
      ("j2", "(L2, n, c + k)");
      ("i1", "(L2, c + n, c + k)");
      ("j3", "(L2, c + k + n, c + k)");
    ]

let test_l3_l4_variant_step () =
  (* Inner IV whose step varies in the outer loop (paper L3/L4): still a
     linear IV of the inner loop, with symbolic step i. *)
  let t = Helpers.analyze {|
i = 0
L3: loop
  i = i + 1
  j = i
  L4: loop
    j = j + i
    if ?? exit
  endloop
  if ?? exit
endloop
|} in
  match Analysis.Driver.class_of_name t "j3" with
  | Some (Analysis.Ivclass.Linear { step; _ }) ->
    Alcotest.(check bool) "symbolic step" true (not (Analysis.Sym.is_const step))
  | Some c ->
    Alcotest.failf "expected linear, got %s" (Analysis.Driver.class_to_string t c)
  | None -> Alcotest.fail "j3 not found"

let test_fig1 () =
  check "j = n\nL7: loop\n  i = j + c\n  j = i + k\nendloop"
    [ ("j2", "(L7, n, c + k)"); ("i1", "(L7, c + n, c + k)") ]

let test_fig3_conditional_same_offset () =
  (* Fig 3: both arms add 2; the endif phi still defines a linear IV. *)
  check
    "i = 1\nL8: loop\n  if ?? then\n    i = i + 2\n  else\n    i = i + 2\n  endif\nendloop\nA(i) = 1"
    [ ("i2", "(L8, 1, 2)"); ("i3", "(L8, 3, 2)"); ("i4", "(L8, 3, 2)"); ("i5", "(L8, 3, 2)") ]

let test_fig3_different_offsets_not_linear () =
  (* Different increments per arm: not an IV (monotonic instead). *)
  let t =
    Helpers.analyze
      "i = 1\nL8: loop\n  if ?? then\n    i = i + 2\n  else\n    i = i + 3\n  endif\nendloop\nA(i) = 1"
  in
  match Analysis.Driver.class_of_name t "i2" with
  | Some (Analysis.Ivclass.Monotonic m) ->
    Alcotest.(check bool) "increasing" true (m.Analysis.Ivclass.dir = Analysis.Ivclass.Increasing);
    Alcotest.(check bool) "strict" true m.Analysis.Ivclass.strict
  | Some c -> Alcotest.failf "expected monotonic, got %s" (Analysis.Driver.class_to_string t c)
  | None -> Alcotest.fail "i2 not found"

let test_fig4_wraparound () =
  (* k = j; j = i; i = i + 1: j is first-order, k second-order wrap. *)
  check
    "k = 9\nj = 8\ni = 1\nL10: loop\n  A(k) = A(j) + A(i)\n  k = j\n  j = i\n  i = i + 1\nendloop"
    [
      ("i2", "(L10, 1, 1)");
      ("j2", "wrap(L10, order 1, [8], (L10, 1, 1))");
      ("k2", "wrap(L10, order 2, [9; 8], (L10, 1, 1))");
    ]

let test_fig4_promotion () =
  (* With initial values matching the sequence, wrap-arounds promote to
     plain IVs (the paper's jl = 0 remark). *)
  check
    "k = -1\nj = 0\ni = 1\nL10: loop\n  A(k) = A(j) + A(i)\n  k = j\n  j = i\n  i = i + 1\nendloop"
    [ ("i2", "(L10, 1, 1)"); ("j2", "(L10, 0, 1)"); ("k2", "(L10, -1, 1)") ]

let test_fig5_periodic () =
  check
    "j = 1\nk = 2\nl = 3\nL13: loop\n  t = j\n  j = k\n  k = l\n  l = t\n  A(j) = A(k)\nendloop"
    [
      ("j2", "periodic(L13, period 3, phase 0, [1; 2; 3])");
      ("k2", "periodic(L13, period 3, phase 1, [1; 2; 3])");
      ("l2", "periodic(L13, period 3, phase 2, [1; 2; 3])");
    ]

let test_fig5_wrap_of_periodic () =
  (* t2 is not in the family: it is a wrap-around of a periodic value. *)
  let t =
    Helpers.analyze
      "t = 0\nj = 1\nk = 2\nl = 3\nL13: loop\n  A(t) = 1\n  t = j\n  j = k\n  k = l\n  l = t\nendloop"
  in
  match Analysis.Driver.class_of_name t "t2" with
  | Some (Analysis.Ivclass.Wrap { order = 1; inner = Analysis.Ivclass.Periodic _; _ }) -> ()
  | Some c -> Alcotest.failf "expected wrap of periodic, got %s" (Analysis.Driver.class_to_string t c)
  | None -> Alcotest.fail "t2 not found"

let test_fig6_monotonic_strict () =
  let t =
    Helpers.analyze
      "k = 0\nL16: loop\n  if ?? then\n    k = k + 1\n  else\n    k = k + 2\n  endif\nendloop\nA(k) = 1"
  in
  List.iter
    (fun name ->
      match Analysis.Driver.class_of_name t name with
      | Some (Analysis.Ivclass.Monotonic m) ->
        Alcotest.(check bool) (name ^ " increasing") true
          (m.Analysis.Ivclass.dir = Analysis.Ivclass.Increasing);
        Alcotest.(check bool) (name ^ " strict") true m.Analysis.Ivclass.strict
      | Some c -> Alcotest.failf "%s: expected monotonic, got %s" name (Analysis.Driver.class_to_string t c)
      | None -> Alcotest.failf "%s not found" name)
    [ "k2"; "k3"; "k4"; "k5" ]

let test_fig10_mixed_strictness () =
  let t =
    Helpers.analyze
      {|
k = 0
L15: for i = 1 to n loop
  F(k) = A(i)
  if ?? then
    k = k + 1
    B(k) = A(i)
  endif
  G(i) = F(k)
endloop
|}
  in
  let strictness name =
    match Analysis.Driver.class_of_name t name with
    | Some (Analysis.Ivclass.Monotonic m) -> Some m.Analysis.Ivclass.strict
    | _ -> None
  in
  Alcotest.(check (option bool)) "k2 nonstrict" (Some false) (strictness "k2");
  Alcotest.(check (option bool)) "k3 strict" (Some true) (strictness "k3");
  Alcotest.(check (option bool)) "k4 nonstrict" (Some false) (strictness "k4")

let test_monotonic_decreasing () =
  let t =
    Helpers.analyze
      "k = 100\nL1: loop\n  if ?? then\n    k = k - 1\n  else\n    k = k - 3\n  endif\nendloop\nA(k) = 1"
  in
  match Analysis.Driver.class_of_name t "k2" with
  | Some (Analysis.Ivclass.Monotonic m) ->
    Alcotest.(check bool) "decreasing" true (m.Analysis.Ivclass.dir = Analysis.Ivclass.Decreasing);
    Alcotest.(check bool) "strict" true m.Analysis.Ivclass.strict
  | Some c -> Alcotest.failf "expected monotonic, got %s" (Analysis.Driver.class_to_string t c)
  | None -> Alcotest.fail "k2 not found"

let test_mixed_sign_not_monotonic () =
  let t =
    Helpers.analyze
      "k = 0\nL1: loop\n  if ?? then\n    k = k + 1\n  else\n    k = k - 1\n  endif\nendloop\nA(k) = 1"
  in
  Alcotest.(check (option string)) "unknown" (Some "unknown")
    (Option.map (Analysis.Driver.class_to_string t) (Analysis.Driver.class_of_name t "k2"))

let test_l14_polynomials () =
  (* Loop L14 with the paper's initial values: the table of closed
     forms. j = (h^2+3h+4)/2, k = (h^3+6h^2+23h+24)/6, l = 2^(h+2)-1,
     m = 6*3^h - h - 3 (values of the post-increment definitions). *)
  check
    {|
j = 1
k = 1
l = 1
m = 0
L14: for i = 1 to n loop
  j = j + i
  k = k + j + 1
  l = l * 2 + 1
  m = 3 * m + 2 * i + 1
endloop
|}
    [
      ("i2", "(L14, 1, 1)");
      ("j3", "(L14, 2, 3/2, 1/2)");
      ("k3", "(L14, 4, 23/6, 1, 1/6)");
      ("l3", "(L14, -1 | 4*2^h)");
      ("m3", "(L14, -3, -1 | 6*3^h)");
    ]

let test_l12_flip_flop () =
  check "j = 1\njold = 2\nL12: for iter = 1 to n loop\n  j = 3 - j\n  jold = 3 - jold\nendloop\nA(j) = jold"
    [
      ("j2", "periodic(L12, period 2, phase 0, [1; 2])");
      ("jold2", "periodic(L12, period 2, phase 0, [2; 1])");
      ("j3", "periodic(L12, period 2, phase 0, [2; 1])");
      ("jold3", "periodic(L12, period 2, phase 0, [1; 2])");
    ]

let test_negative_ratio_flip () =
  (* i = -i is periodic with period 2 through the m = -1 rule. *)
  check "i = 5\nL1: for it = 1 to n loop\n  i = 0 - i\nendloop\nA(i) = 1"
    [ ("i2", "periodic(L1, period 2, phase 0, [5; -5])") ]

let test_geometric_exponent () =
  (* 2^i for linear i is a geometric induction variable (our EX rule);
     the loop-carried phi for p is then a wrap-around of it. *)
  let t = Helpers.analyze "p = 0\nL1: for i = 0 to n loop\n  p = 2 ^ i\nendloop\nA(p) = 1" in
  (match Analysis.Driver.class_of_name t "p3" with
   | Some (Analysis.Ivclass.Geometric g) ->
     Alcotest.(check string) "ratio" "2" (Bignum.Rat.to_string g.Analysis.Ivclass.ratio)
   | Some c -> Alcotest.failf "expected geometric, got %s" (Analysis.Driver.class_to_string t c)
   | None -> Alcotest.fail "p3 not found");
  match Analysis.Driver.class_of_name t "p2" with
  | Some (Analysis.Ivclass.Wrap { inner = Analysis.Ivclass.Geometric _; order = 1; _ }) -> ()
  | Some c -> Alcotest.failf "expected wrap of geometric, got %s" (Analysis.Driver.class_to_string t c)
  | None -> Alcotest.fail "p2 not found"

let test_division_invariant_only () =
  (* Integer division of an IV is classified only when provably exact. *)
  let t1 = Helpers.analyze "L1: for i = 0 to n loop\n  x = i * 4 / 2\n  A(x) = 1\nendloop" in
  Alcotest.(check (option string)) "exact division halves the step" (Some "(L1, 0, 2)")
    (Option.map (Analysis.Driver.class_to_string t1) (Analysis.Driver.class_of_name t1 "x1"));
  let t2 = Helpers.analyze "L1: for i = 0 to n loop\n  x = i / 2\n  A(x) = 1\nendloop" in
  Alcotest.(check (option string)) "inexact division unknown" (Some "unknown")
    (Option.map (Analysis.Driver.class_to_string t2) (Analysis.Driver.class_of_name t2 "x1"))

let test_invariant_classification () =
  let t = Helpers.analyze "c = n + 1\nL1: loop\n  x = c * 2\n  A(x) = 1\n  if ?? exit\nendloop" in
  match Analysis.Driver.class_of_name t "x1" with
  | Some (Analysis.Ivclass.Invariant _) -> ()
  | Some c -> Alcotest.failf "expected invariant, got %s" (Analysis.Driver.class_to_string t c)
  | None -> Alcotest.fail "x1 not found"

let test_aload_unknown () =
  let t = Helpers.analyze "L1: for i = 1 to n loop\n  x = A(i)\n  B(x) = 1\nendloop" in
  Alcotest.(check (option string)) "array load unknown" (Some "unknown")
    (Option.map (Analysis.Driver.class_to_string t) (Analysis.Driver.class_of_name t "x1"))

let test_step_zero_collapses () =
  (* An SCC whose net increment is zero is invariant after entry. *)
  check "x = 7\nL1: loop\n  x = x + 1\n  x = x - 1\n  if ?? exit\nendloop\nA(x) = 1"
    [ ("x2", "inv(7)") ]

let suite =
  ( "figures",
    [
      Helpers.case "L1 basic IV" test_l1_basic;
      Helpers.case "L2 mutual pair" test_l2_mutual;
      Helpers.case "L3/L4 variant step" test_l3_l4_variant_step;
      Helpers.case "Fig 1" test_fig1;
      Helpers.case "Fig 3 same offsets" test_fig3_conditional_same_offset;
      Helpers.case "Fig 3 different offsets" test_fig3_different_offsets_not_linear;
      Helpers.case "Fig 4 wrap-around" test_fig4_wraparound;
      Helpers.case "Fig 4 promotion" test_fig4_promotion;
      Helpers.case "Fig 5 periodic" test_fig5_periodic;
      Helpers.case "Fig 5 wrap of periodic" test_fig5_wrap_of_periodic;
      Helpers.case "Fig 6 strict monotonic" test_fig6_monotonic_strict;
      Helpers.case "Fig 10 mixed strictness" test_fig10_mixed_strictness;
      Helpers.case "monotonic decreasing" test_monotonic_decreasing;
      Helpers.case "mixed signs not monotonic" test_mixed_sign_not_monotonic;
      Helpers.case "L14 polynomial/geometric" test_l14_polynomials;
      Helpers.case "L12 flip-flop" test_l12_flip_flop;
      Helpers.case "negation flip-flop" test_negative_ratio_flip;
      Helpers.case "2^i geometric" test_geometric_exponent;
      Helpers.case "integer division" test_division_invariant_only;
      Helpers.case "invariant expressions" test_invariant_classification;
      Helpers.case "array loads unknown" test_aload_unknown;
      Helpers.case "zero net step" test_step_zero_collapses;
    ] )
