(* The dependence-layer soundness oracle: run the program, record every
   array access with its address, time stamp and loop iteration vector,
   compute the *real* dependences from the trace, and require the static
   dependence graph to cover every one of them — including the observed
   direction on the outermost common loop. *)

module Driver = Analysis.Driver
module Dep_graph = Dependence.Dep_graph
module Deptest = Dependence.Deptest

type event = {
  time : int;
  ref_id : Ir.Instr.Id.t;
  write : bool;
  address : string * int list;
  iters : (int * int) list; (* enclosing loops, outer first: (loop, h) *)
}

let trace ?(params = fun _ -> 0) ?(rand = fun () -> false) ssa =
  let loops = Ir.Ssa.loops ssa in
  let cfg = Ir.Ssa.cfg ssa in
  let events = ref [] in
  let time = ref 0 in
  let enclosing label =
    let rec up acc = function
      | None -> acc
      | Some id -> up (id :: acc) (Ir.Loops.loop loops id).Ir.Loops.parent
    in
    up [] (Ir.Loops.innermost loops label)
  in
  let on_instr st (instr : Ir.Instr.t) _v =
    let record write array idx_count =
      incr time;
      let idx =
        List.init idx_count (fun i -> Ir.Interp.value st instr.Ir.Instr.args.(i))
      in
      let label = Ir.Cfg.block_of_instr cfg instr.Ir.Instr.id in
      events :=
        {
          time = !time;
          ref_id = instr.Ir.Instr.id;
          write;
          address = (Ir.Ident.name array, idx);
          iters = List.map (fun l -> (l, Ir.Interp.loop_iter st l)) (enclosing label);
        }
        :: !events
    in
    match instr.Ir.Instr.op with
    | Ir.Instr.Aload a -> record false a (Array.length instr.Ir.Instr.args)
    | Ir.Instr.Astore a -> record true a (Array.length instr.Ir.Instr.args - 1)
    | _ -> ()
  in
  let st = Ir.Interp.run ~fuel:300_000 ~on_instr ~params ~rand ssa in
  (st.Ir.Interp.outcome, List.rev !events)

(* The observed direction at the outermost loop common to both refs. *)
let outer_direction (e1 : event) (e2 : event) common =
  match common with
  | [] -> None
  | outer :: _ -> (
    match (List.assoc_opt outer e1.iters, List.assoc_opt outer e2.iters) with
    | Some h1, Some h2 ->
      Some (if h1 < h2 then `Lt else if h1 = h2 then `Eq else `Gt)
    | _ -> None)

let check_program ?(rand = fun () -> false) src =
  let ssa = Ir.Ssa.of_source src in
  let t = Driver.analyze ssa in
  let outcome, events = trace ~rand ssa in
  if outcome <> Ir.Interp.Halted then []
  else begin
    let edges = Dep_graph.build t in
    let edge_for src_id dst_id =
      List.find_opt
        (fun (e : Dep_graph.edge) ->
          e.Dep_graph.src.Dep_graph.instr = src_id
          && e.Dep_graph.dst.Dep_graph.instr = dst_id)
        edges
    in
    let refs_by_id =
      List.fold_left
        (fun acc (r : Dep_graph.array_ref) -> (r.Dep_graph.instr, r) :: acc)
        []
        (Dep_graph.collect_refs t)
    in
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
    (* All ordered event pairs touching the same cell with >= 1 write. *)
    let arr = Array.of_list events in
    let n = Array.length arr in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let e1 = arr.(i) and e2 = arr.(j) in
        if e1.address = e2.address && (e1.write || e2.write) then begin
          (* e1 executed first, so the (e1.ref -> e2.ref) edge must have
             survived the tests. *)
          match edge_for e1.ref_id e2.ref_id with
          | None ->
            fail "missing edge for real dependence on %s(%s)" (fst e1.address)
              (String.concat "," (List.map string_of_int (snd e1.address)))
          | Some edge -> (
            match edge.Dep_graph.outcome with
            | Deptest.Independent ->
              fail "edge claims independence but %s(%s) repeats" (fst e1.address)
                (String.concat "," (List.map string_of_int (snd e1.address)))
            | Deptest.Dependent d -> (
              (* The observed outermost-loop direction must be allowed. *)
              let r1 = List.assoc e1.ref_id refs_by_id in
              let r2 = List.assoc e2.ref_id refs_by_id in
              let common = Dep_graph.common_loops r1 r2 in
              match outer_direction e1 e2 common with
              | None -> ()
              | Some dir -> (
                match List.assoc_opt (List.hd common) d.Deptest.directions with
                | None -> ()
                | Some ds ->
                  let allowed =
                    match dir with
                    | `Lt -> ds.Deptest.lt
                    | `Eq -> ds.Deptest.eq
                    | `Gt -> ds.Deptest.gt
                  in
                  if not allowed then
                    fail "direction %s not allowed on %s"
                      (match dir with `Lt -> "<" | `Eq -> "=" | `Gt -> ">")
                      (fst e1.address))))
        end
      done
    done;
    List.rev !failures
  end

(* Handwritten corpus with tricky subscripts. *)
let corpus =
  [
    "L1: for i = 1 to 12 loop\n  A(i) = A(i - 1) + 1\nendloop";
    "L1: for i = 1 to 12 loop\n  A(2 * i) = A(2 * i + 1)\nendloop";
    "L1: for i = 1 to 12 loop\n  A(i) = A(13 - i)\nendloop";
    "L1: for i = 1 to 6 loop\n  L2: for j = 1 to 6 loop\n    A(i, j) = A(i - 1, j + 1)\n  endloop\nendloop";
    "L1: for i = 1 to 6 loop\n  L2: for j = i + 1 to 6 loop\n    A(i, j) = A(i - 1, j)\n  endloop\nendloop";
    "iml = 9\nL9: for i = 1 to 9 loop\n  A(i) = A(iml) + 1\n  iml = i\nendloop";
    "j = 1\nk = 2\nl = 3\nL22: for it = 1 to 9 loop\n  A(2 * j) = A(2 * k)\n  tt = j\n  j = k\n  k = l\n  l = tt\nendloop";
    "k = 0\nL15: for i = 1 to 12 loop\n  F(k) = A(i)\n  if ?? then\n    C(k) = D(i)\n    k = k + 1\n    B(k) = A(i)\n  endif\n  G(i) = F(k)\nendloop";
    "s = 0\nL1: for i = 1 to 8 loop\n  A(s) = i\n  s = s + 2\nendloop";
    "L1: for i = 1 to 10 loop\n  A(5) = A(5) + i\nendloop";
  ]

let test_corpus () =
  List.iteri
    (fun n src ->
      List.iter
        (fun seed ->
          let state = Random.State.make [| seed |] in
          match check_program ~rand:(fun () -> Random.State.bool state) src with
          | [] -> ()
          | f :: _ -> Alcotest.failf "corpus %d (seed %d): %s" n seed f)
        [ 1; 2; 3 ])
    corpus

let prop_random_programs_sound =
  Helpers.qtest ~count:80 "dependence graph covers the real dependences"
    Gen.gen_program (fun p ->
      let src = Ir.Ast.to_string p in
      let state = Random.State.make [| Hashtbl.hash src |] in
      match check_program ~rand:(fun () -> Random.State.bool state) src with
      | [] -> true
      | f :: _ -> QCheck2.Test.fail_reportf "program:\n%s\n%s" src f)

let suite =
  ( "dep-oracle",
    [
      Helpers.case "corpus" test_corpus;
      prop_random_programs_sound;
    ] )
