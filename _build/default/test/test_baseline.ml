(* The classical iterative baseline: it finds the textbook cases, misses
   everything the paper's algorithm adds, and needs multiple passes on
   derived chains — the facts the comparison benchmarks rest on. *)

module Baseline = Analysis.Baseline

let run src =
  let cfg = Ir.Lower.lower_source src in
  Baseline.find_all cfg

let result_for src name =
  match List.find_opt (fun ((lp : Ir.Loops.loop), _) -> lp.Ir.Loops.name = name) (run src) with
  | Some (_, r) -> r
  | None -> Alcotest.failf "loop %s not found" name

let has_basic r name =
  List.exists (fun (x, _) -> Ir.Ident.name x = name) r.Baseline.basic

let has_derived r name =
  List.exists (fun (d : Baseline.derived) -> Ir.Ident.name d.Baseline.var = name) r.Baseline.derived

let test_textbook_basic () =
  let r = result_for "i = 0\nT: loop\n  i = i + 4\n  if i > 100 exit\nendloop" "T" in
  Alcotest.(check bool) "finds i" true (has_basic r "i");
  match List.find_opt (fun (x, _) -> Ir.Ident.name x = "i") r.Baseline.basic with
  | Some (_, step) -> Alcotest.(check int) "step" 4 step
  | None -> Alcotest.fail "no i"

let test_textbook_derived () =
  let r =
    result_for "i = 0\nT: loop\n  i = i + 1\n  j = i * 4\n  k = j + 2\n  if i > 9 exit\nendloop" "T"
  in
  Alcotest.(check bool) "finds i" true (has_basic r "i");
  Alcotest.(check bool) "derived j" true (has_derived r "j");
  Alcotest.(check bool) "derived k" true (has_derived r "k");
  (match List.find_opt (fun (d : Baseline.derived) -> Ir.Ident.name d.Baseline.var = "j") r.Baseline.derived with
   | Some d ->
     Alcotest.(check int) "scale" 4 d.Baseline.scale;
     Alcotest.(check int) "offset" 0 d.Baseline.offset
   | None -> Alcotest.fail "no j")

let test_misses_mutual_pair () =
  (* Loop L2 (i = j + c; j = i + k): neither variable is a textbook
     basic IV, so the classical algorithm finds nothing — while the
     SSA-based classifier proves both linear. *)
  let src = "j = 0\nT: loop\n  i = j + 1\n  j = i + 2\n  if j > 50 exit\nendloop" in
  let r = result_for src "T" in
  Alcotest.(check int) "classical finds nothing" 0 (Baseline.iv_count r);
  let t = Helpers.analyze src in
  match Analysis.Driver.class_of_name t "j2" with
  | Some (Analysis.Ivclass.Linear _) -> ()
  | _ -> Alcotest.fail "SSA classifier should find the pair"

let test_misses_conditional_same_offset () =
  (* Fig 3: two stores to i disqualify it classically. *)
  let src =
    "i = 1\nT: loop\n  if ?? then\n    i = i + 2\n  else\n    i = i + 2\n  endif\n  if i > 40 exit\nendloop"
  in
  let r = result_for src "T" in
  Alcotest.(check bool) "classical misses i" false (has_basic r "i");
  let t = Helpers.analyze src in
  match Analysis.Driver.class_of_name t "i2" with
  | Some (Analysis.Ivclass.Linear _) -> ()
  | _ -> Alcotest.fail "SSA classifier should find Fig 3"

let test_misses_everything_else () =
  (* Wrap-around, periodic, polynomial: all invisible classically. *)
  let src = {|
j = 1
k = 2
p = 0
i = 0
T: loop
  i = i + 1
  p = p + i
  t = j
  j = k
  k = t
  if i > 10 exit
endloop
|} in
  let r = result_for src "T" in
  Alcotest.(check bool) "finds the basic i" true (has_basic r "i");
  Alcotest.(check bool) "misses polynomial p" false (has_basic r "p" || has_derived r "p");
  Alcotest.(check bool) "misses periodic j" false (has_basic r "j" || has_derived r "j")

let test_iterative_passes_grow_with_chain () =
  (* A reversed chain j5 = j4+1; ...; j1 = i+1 needs one pass per link
     (plus the final no-change pass). *)
  let chain n =
    let body =
      List.init n (fun idx ->
          let k = n - idx in
          if k = 1 then "  j1 = i * 2"
          else Printf.sprintf "  j%d = j%d + 1" k (k - 1))
    in
    Printf.sprintf "i = 0\nT: loop\n  i = i + 1\n%s\n  if i > 5 exit\nendloop"
      (String.concat "\n" body)
  in
  let passes n = (result_for (chain n) "T").Baseline.passes in
  Alcotest.(check bool) "passes grow linearly with the chain" true
    (passes 8 >= 8 && passes 4 >= 4 && passes 8 > passes 4);
  (* All chain members are found eventually. *)
  let r = result_for (chain 6) "T" in
  List.iter
    (fun k ->
      Alcotest.(check bool) (Printf.sprintf "j%d found" k) true
        (has_derived r (Printf.sprintf "j%d" k)))
    [ 1; 2; 3; 4; 5; 6 ]

let test_invariance_detection () =
  (* j = i * c with c loop-invariant but symbolic: still derived. *)
  let src = "i = 0\nT: loop\n  i = i + 1\n  j = i + 7\n  if i > 5 exit\nendloop" in
  let r = result_for src "T" in
  Alcotest.(check bool) "derived with const offset" true (has_derived r "j")

let test_generality_gap_quantified () =
  (* On Fig 3 + mutual pair + wrap-around combined, count variables each
     analysis proves linear. *)
  let src = {|
j = n
w = 0
T: loop
  i = j + 1
  j = i + 2
  if ?? then
    x = x + 3
  else
    x = x + 3
  endif
  A(w) = x
  w = i
  if ?? exit
endloop
|} in
  let r = result_for src "T" in
  let classical = Baseline.iv_count r in
  let t = Helpers.analyze src in
  let ssa = Analysis.Driver.ssa t in
  let ours = ref 0 in
  Ir.Cfg.iter_instrs (Ir.Ssa.cfg ssa) (fun _ (ins : Ir.Instr.t) ->
      match Analysis.Driver.class_of t ins.Ir.Instr.id with
      | Analysis.Ivclass.Linear _ | Analysis.Ivclass.Wrap _ -> incr ours
      | _ -> ());
  Alcotest.(check int) "classical finds none here" 0 classical;
  Alcotest.(check bool) "ssa classifier finds many" true (!ours >= 5)

let suite =
  ( "baseline",
    [
      Helpers.case "textbook basic IVs" test_textbook_basic;
      Helpers.case "textbook derived IVs" test_textbook_derived;
      Helpers.case "misses mutual pairs" test_misses_mutual_pair;
      Helpers.case "misses Fig 3" test_misses_conditional_same_offset;
      Helpers.case "misses non-linear classes" test_misses_everything_else;
      Helpers.case "iterative pass count" test_iterative_passes_grow_with_chain;
      Helpers.case "invariant offsets" test_invariance_detection;
      Helpers.case "generality gap" test_generality_gap_quantified;
    ] )
