(* Small-model soundness and exactness of the Banerjee-style bounds: the
   single-loop feasibility test must agree with brute-force enumeration
   of all iteration pairs for every direction. *)

module Deptest = Dependence.Deptest
module Affine = Dependence.Affine
module Sym = Analysis.Sym

let affine loop ~const ~coeff =
  {
    Affine.terms = (if coeff = 0 then [] else [ (loop, Sym.of_int coeff) ]);
    const = Sym.of_int const;
    holds_after = 0;
    wrap_loop = None;
    initials = [];
  }

(* Brute force: does a*h + c1 = b*h' + c2 have a solution with
   0 <= h, h' < u and h R h'? *)
let brute ~u ~a ~c1 ~b ~c2 dir =
  let ok = ref false in
  for h = 0 to u - 1 do
    for h' = 0 to u - 1 do
      let rel =
        match dir with
        | `Lt -> h < h'
        | `Eq -> h = h'
        | `Gt -> h > h'
        | `Any -> true
      in
      if rel && (a * h) + c1 = (b * h') + c2 then ok := true
    done
  done;
  !ok

let directions_of (outcome : Deptest.outcome) =
  match outcome with
  | Deptest.Independent -> None
  | Deptest.Dependent d -> Some (List.assoc 0 d.Deptest.directions)

let prop_single_loop_exact =
  Helpers.qtest ~count:800 "affine test = brute force (single loop)"
    QCheck2.Gen.(
      let* u = int_range 1 9 in
      let* a = int_range (-4) 4 in
      let* b = int_range (-4) 4 in
      let* c1 = int_range (-10) 10 in
      let* c2 = int_range (-10) 10 in
      return (u, a, b, c1, c2))
    (fun (u, a, b, c1, c2) ->
      let src = affine 0 ~const:c1 ~coeff:a in
      let dst = affine 0 ~const:c2 ~coeff:b in
      let outcome = Deptest.affine_test ~bounds:(fun _ -> Some u) ~common:[ 0 ] src dst in
      let any = brute ~u ~a ~c1 ~b ~c2 `Any in
      match directions_of outcome with
      | None ->
        (* Independence must be real. *)
        if any then QCheck2.Test.fail_reportf "missed dependence" else true
      | Some ds ->
        (* Soundness: every real direction must be allowed. *)
        let sound =
          ((not (brute ~u ~a ~c1 ~b ~c2 `Lt)) || ds.Deptest.lt)
          && ((not (brute ~u ~a ~c1 ~b ~c2 `Eq)) || ds.Deptest.eq)
          && ((not (brute ~u ~a ~c1 ~b ~c2 `Gt)) || ds.Deptest.gt)
        in
        if not sound then QCheck2.Test.fail_reportf "unsound direction set"
        else if a = b && a <> 0 then begin
          (* Strong SIV (equal coefficients): the distance logic makes
             the direction set exact, not just sound. *)
          let exact =
            ((not ds.Deptest.lt) || brute ~u ~a ~c1 ~b ~c2 `Lt)
            && ((not ds.Deptest.eq) || brute ~u ~a ~c1 ~b ~c2 `Eq)
            && ((not ds.Deptest.gt) || brute ~u ~a ~c1 ~b ~c2 `Gt)
          in
          if not exact then QCheck2.Test.fail_reportf "inexact strong-SIV directions"
          else true
        end
        else true)

(* Direction-vector enumeration agrees with brute force on two loops. *)
let brute_2d ~u1 ~u2 ~(f : int -> int -> int) ~(g : int -> int -> int) v =
  let ok = ref false in
  for h1 = 0 to u1 - 1 do
    for h2 = 0 to u2 - 1 do
      for h1' = 0 to u1 - 1 do
        for h2' = 0 to u2 - 1 do
          let rel d x y =
            match d with `Lt -> x < y | `Eq -> x = y | `Gt -> x > y
          in
          match v with
          | [ d1; d2 ] ->
            if rel d1 h1 h1' && rel d2 h2 h2' && f h1 h2 = g h1' h2' then ok := true
          | _ -> ()
        done
      done
    done
  done;
  !ok

let prop_vectors_exact_2d =
  Helpers.qtest ~count:150 "vector enumeration = brute force (two loops)"
    QCheck2.Gen.(
      let* u1 = int_range 1 5 in
      let* u2 = int_range 1 5 in
      let* a1 = int_range (-3) 3 in
      let* a2 = int_range (-3) 3 in
      let* b1 = int_range (-3) 3 in
      let* b2 = int_range (-3) 3 in
      let* c = int_range (-6) 6 in
      return (u1, u2, a1, a2, b1, b2, c))
    (fun (u1, u2, a1, a2, b1, b2, c) ->
      let src =
        {
          Affine.terms =
            List.filter (fun (_, s) -> not (Sym.is_zero s))
              [ (0, Sym.of_int a1); (1, Sym.of_int a2) ];
          const = Sym.zero;
          holds_after = 0;
          wrap_loop = None;
          initials = [];
        }
      in
      let dst =
        {
          Affine.terms =
            List.filter (fun (_, s) -> not (Sym.is_zero s))
              [ (0, Sym.of_int b1); (1, Sym.of_int b2) ];
          const = Sym.of_int c;
          holds_after = 0;
          wrap_loop = None;
          initials = [];
        }
      in
      let bounds = function 0 -> Some u1 | 1 -> Some u2 | _ -> None in
      match Deptest.direction_vectors ~bounds ~common:[ 0; 1 ] src dst with
      | None -> true
      | Some vectors ->
        let f h1 h2 = (a1 * h1) + (a2 * h2) in
        let g h1 h2 = (b1 * h1) + (b2 * h2) + c in
        let all =
          List.concat_map
            (fun d1 -> List.map (fun d2 -> [ d1; d2 ]) [ `Lt; `Eq; `Gt ])
            [ `Lt; `Eq; `Gt ]
        in
        List.for_all
          (fun v ->
            let real = brute_2d ~u1 ~u2 ~f ~g v in
            let claimed = List.mem v vectors in
            (* Soundness: real vectors must be claimed. The reverse need
               not hold (Banerjee bounds are a relaxation), but flag it
               if a claimed vector is refutable by brute force — for
               these small single-subscript systems the test is exact. *)
            (not real) || claimed)
          all)

let suite =
  ( "banerjee",
    [
      prop_single_loop_exact;
      prop_vectors_exact_2d;
    ] )
