(* The §4.4 multiplication extension: "Multiply operations can also be
   allowed, such as 2*i+i, as long as the initial value of i is known." *)

module Driver = Analysis.Driver
module Ivclass = Analysis.Ivclass

let mono t name =
  match Driver.class_of_name t name with
  | Some (Ivclass.Monotonic m) -> Some (m.Ivclass.dir, m.Ivclass.strict)
  | _ -> None

let test_factorial () =
  (* k = k * i with i = 1, 2, 3, ...: the paper's factorial remark. The
     multiplier's lower bound is 1, so nondecreasing but not strict. *)
  let t =
    Helpers.analyze "k = 1\nL1: for i = 1 to 10 loop\n  k = k * i\nendloop\nA(k) = 1"
  in
  Alcotest.(check (option (pair bool bool))) "factorial monotonic"
    (Some (true, false))
    (Option.map (fun (d, s) -> (d = Ivclass.Increasing, s)) (mono t "k2"))

let test_doubling_positive () =
  (* k = k * 2 under a condition: conditional geometric growth is not an
     IV, but with k0 = 1 > 0 it is strictly increasing. *)
  let t =
    Helpers.analyze
      "k = 1\nL1: loop\n  if ?? then\n    k = k * 2\n  endif\n  A(k) = 1\n  if ?? exit\nendloop"
  in
  Alcotest.(check (option (pair bool bool))) "conditional doubling"
    (Some (true, false))
    (Option.map (fun (d, s) -> (d = Ivclass.Increasing, s)) (mono t "k2"))

let test_doubling_strict_inside () =
  (* Unconditional k = k * 3 + 1 is geometric (the affine path), not
     merely monotonic — the stronger class wins. *)
  let t =
    Helpers.analyze "k = 1\nL1: for i = 1 to 9 loop\n  k = k * 3 + 1\nendloop\nA(k) = 1"
  in
  match Driver.class_of_name t "k2" with
  | Some (Ivclass.Geometric _) -> ()
  | Some c -> Alcotest.failf "expected geometric, got %s" (Driver.class_to_string t c)
  | None -> Alcotest.fail "k2 missing"

let test_mul_with_add () =
  (* Mixed conditional arms: one multiplies by 2, one adds 5; k0 = 2 > 0:
     strictly increasing. *)
  let t =
    Helpers.analyze
      "k = 2\nL1: loop\n  if ?? then\n    k = k * 2\n  else\n    k = k + 5\n  endif\n  A(k) = 1\n  if k > 500 exit\nendloop"
  in
  Alcotest.(check (option (pair bool bool))) "mul/add arms"
    (Some (true, true))
    (Option.map (fun (d, s) -> (d = Ivclass.Increasing, s)) (mono t "k2"))

let test_zero_init_not_strict () =
  (* k0 = 0: multiplying never moves it, so only nonstrict. *)
  let t =
    Helpers.analyze
      "k = 0\nL1: loop\n  if ?? then\n    k = k * 2\n  else\n    k = k + 1\n  endif\n  A(k) = 1\n  if ?? exit\nendloop"
  in
  Alcotest.(check (option (pair bool bool))) "zero init"
    (Some (true, false))
    (Option.map (fun (d, s) -> (d = Ivclass.Increasing, s)) (mono t "k2"))

let test_negative_init_rejected () =
  (* Multiplying a negative value by 2 decreases it: must stay unknown. *)
  let t =
    Helpers.analyze
      "k = 0 - 5\nL1: loop\n  if ?? then\n    k = k * 2\n  else\n    k = k + 1\n  endif\n  A(k) = 1\n  if ?? exit\nendloop"
  in
  Alcotest.(check (option string)) "negative init" (Some "unknown")
    (Option.map (Driver.class_to_string t) (Driver.class_of_name t "k2"))

let test_negative_multiplier_rejected () =
  let t =
    Helpers.analyze
      "k = 1\nL1: loop\n  if ?? then\n    k = k * -2\n  else\n    k = k + 1\n  endif\n  A(k) = 1\n  if ?? exit\nendloop"
  in
  Alcotest.(check (option string)) "negative multiplier" (Some "unknown")
    (Option.map (Driver.class_to_string t) (Driver.class_of_name t "k2"))

let test_oracle_validates () =
  (* The interpreter confirms the monotonicity claims on real runs. *)
  List.iter
    (fun (src, params) -> Helpers.oracle_min ~params src 1)
    [
      ("k = 1\nL1: for i = 1 to 10 loop\n  k = k * i\nendloop\nA(k) = 1", fun _ -> 0);
      ( "k = 2\nL1: loop\n  if ?? then\n    k = k * 2\n  else\n    k = k + 5\n  endif\n  A(k) = 1\n  if k > 500 exit\nendloop",
        fun _ -> 0 );
    ]

let suite =
  ( "monotonic-mul",
    [
      Helpers.case "factorial" test_factorial;
      Helpers.case "conditional doubling" test_doubling_positive;
      Helpers.case "unconditional stays geometric" test_doubling_strict_inside;
      Helpers.case "mul and add arms" test_mul_with_add;
      Helpers.case "zero init nonstrict" test_zero_init_not_strict;
      Helpers.case "negative init rejected" test_negative_init_rejected;
      Helpers.case "negative multiplier rejected" test_negative_multiplier_rejected;
      Helpers.case "oracle validates" test_oracle_validates;
    ] )
