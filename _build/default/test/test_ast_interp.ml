(* Cross-validation of the two interpreters: the direct AST interpreter
   and the SSA-level interpreter must observe identical array footprints
   on the same programs — validating lowering + SSA construction against
   the language's direct semantics. *)

let footprints ?(params = fun _ -> 0) ?(seed = 0) src =
  let ast = Ir.Parser.parse src in
  let rand_stream () =
    let state = Random.State.make [| seed |] in
    fun () -> Random.State.bool state
  in
  let st_ast, outcome_ast =
    Ir.Ast_interp.run ~fuel:300_000 ~params ~rand:(rand_stream ()) ast
  in
  let ssa = Ir.Ssa.of_program ast in
  let st_ssa = Ir.Interp.run ~fuel:600_000 ~params ~rand:(rand_stream ()) ssa in
  let ssa_footprint =
    Hashtbl.fold
      (fun (a, idx) v acc -> (Ir.Ident.name a, idx, v) :: acc)
      st_ssa.Ir.Interp.arrays []
    |> List.sort compare
  in
  (Ir.Ast_interp.array_footprint st_ast, outcome_ast, ssa_footprint,
   st_ssa.Ir.Interp.outcome)

let check_equiv ?params ?seed src =
  let ast_fp, ast_out, ssa_fp, ssa_out = footprints ?params ?seed src in
  (match (ast_out, ssa_out) with
   | Ir.Ast_interp.Halted, Ir.Interp.Halted -> ()
   | Ir.Ast_interp.Out_of_fuel, Ir.Interp.Out_of_fuel -> ()
   | _ -> Alcotest.failf "different termination for %S" src);
  if ast_out = Ir.Ast_interp.Halted then
    Alcotest.(check bool) ("same footprint: " ^ src) true (ast_fp = ssa_fp)

let test_corpus () =
  List.iter check_equiv
    [
      "A(0) = 1 + 2 * 3";
      "x = 5\nif x > 3 then A(0) = 1 else A(0) = 2 endif";
      "s = 0\nfor i = 1 to 10 loop\n  s = s + i\nendloop\nA(0) = s";
      "s = 0\nfor i = 10 to 1 by -3 loop\n  s = s + i\nendloop\nA(0) = s";
      "k = 0\nloop\n  k = k + 1\n  A(k) = k * k\n  if k > 6 exit\nendloop";
      "j = 1\nk = 2\nl = 3\nfor it = 1 to 5 loop\n  t = j\n  j = k\n  k = l\n  l = t\n  A(it) = j\nendloop";
      "s = 0\nfor i = 1 to 4 loop\n  for j = 1 to i loop\n    s = s + 1\n  endloop\nendloop\nA(0) = s";
      "A(3) = 7\nx = A(3)\nB(x) = x";
      "iml = n\nfor i = 1 to 6 loop\n  A(i) = A(iml) + 1\n  iml = i\nendloop";
    ]

let test_params_and_seeds () =
  let src =
    "k = 0\nfor i = 1 to n loop\n  if ?? then\n    k = k + 1\n    B(k) = A(i)\n  endif\nendloop\nC(0) = k"
  in
  List.iter
    (fun seed ->
      check_equiv ~params:(fun x -> if Ir.Ident.name x = "n" then 12 else 0) ~seed src)
    [ 1; 2; 3; 4 ]

let test_exit_semantics () =
  (* exit leaves only the innermost loop. *)
  check_equiv
    "s = 0\nfor i = 1 to 3 loop\n  L2: loop\n    s = s + 1\n    if s > i exit\n  endloop\n  A(i) = s\nendloop"

let prop_interpreters_agree =
  Helpers.qtest ~count:120 "AST and SSA interpreters agree" Gen.gen_program (fun p ->
      let src = Ir.Ast.to_string p in
      let seed = Hashtbl.hash src in
      let ast_fp, ast_out, ssa_fp, _ = footprints ~seed src in
      if ast_out <> Ir.Ast_interp.Halted then true
      else if ast_fp = ssa_fp then true
      else QCheck2.Test.fail_reportf "footprints differ for:\n%s" src)

let suite =
  ( "ast-interp",
    [
      Helpers.case "corpus equivalence" test_corpus;
      Helpers.case "params and random seeds" test_params_and_seeds;
      Helpers.case "exit semantics" test_exit_semantics;
      prop_interpreters_agree;
    ] )
