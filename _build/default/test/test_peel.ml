(* First-iteration peeling (paper §4.1) and the wrap-around promotion it
   enables. *)

module Driver = Analysis.Driver

let l9 = "iml = n\nL9: for i = 1 to n loop\n  A(i) = A(iml) + 1\n  iml = i\nendloop"

let test_semantics_for () =
  let ast = Ir.Parser.parse l9 in
  let peeled = Transform.Peel.peel_named "L9" ast in
  List.iter
    (fun n ->
      let params x = if Ir.Ident.name x = "n" then n else 0 in
      Alcotest.(check bool)
        (Printf.sprintf "footprint n=%d" n)
        true
        (Helpers.array_footprint ~params ast = Helpers.array_footprint ~params peeled))
    [ 0; 1; 2; 10 ]

let test_semantics_infinite_loop () =
  let src = "k = 0\nL1: loop\n  k = k + 1\n  A(k) = k\n  if k > 7 exit\nendloop\nB(0) = k" in
  let ast = Ir.Parser.parse src in
  let peeled = Transform.Peel.peel_named "L1" ast in
  Alcotest.(check bool) "footprint equal" true
    (Helpers.array_footprint ast = Helpers.array_footprint peeled)

let test_exit_in_first_iteration () =
  (* An exit that fires during the peeled copy must skip the rest. *)
  let src = "k = 9\nL1: loop\n  if k > 5 exit\n  k = k + 1\n  A(k) = 1\nendloop\nB(0) = k" in
  let ast = Ir.Parser.parse src in
  let peeled = Transform.Peel.peel_named "L1" ast in
  Alcotest.(check bool) "footprint equal" true
    (Helpers.array_footprint ast = Helpers.array_footprint peeled)

let test_promotion_after_peel () =
  (* Before peeling iml is a wrap-around; after, it is promoted to a
     plain IV in the remaining loop (the paper's standard trick). *)
  let t = Helpers.analyze l9 in
  (match Driver.class_of_name t "iml2" with
   | Some (Analysis.Ivclass.Wrap { order = 1; _ }) -> ()
   | Some c -> Alcotest.failf "expected wrap before peel, got %s" (Driver.class_to_string t c)
   | None -> Alcotest.fail "iml2 missing");
  let peeled = Transform.Peel.peel_named "L9" (Ir.Parser.parse l9) in
  let t' = Driver.analyze (Ir.Ssa.of_program peeled) in
  (* In the peeled program the remaining loop's iml phi is linear. *)
  let found_linear = ref false in
  let ssa = Driver.ssa t' in
  Ir.Cfg.iter_instrs (Ir.Ssa.cfg ssa) (fun _ (i : Ir.Instr.t) ->
      if
        Ir.Ssa.phi_var ssa i.Ir.Instr.id
        |> Option.map Ir.Ident.name
        |> ( = ) (Some "iml")
      then
        match Driver.class_of t' i.Ir.Instr.id with
        | Analysis.Ivclass.Linear _ -> found_linear := true
        | _ -> ());
  Alcotest.(check bool) "iml promoted to linear IV" true !found_linear

let test_peel_oracle () =
  (* The peeled program still satisfies the classification oracle. *)
  let peeled = Transform.Peel.peel_named "L9" (Ir.Parser.parse l9) in
  let src = Ir.Ast.to_string peeled in
  ignore
    (Helpers.oracle ~params:(fun x -> if Ir.Ident.name x = "n" then 11 else 0) src)

let test_peel_nested_target () =
  (* Peeling an inner loop of a nest. *)
  let src = "s = 0\nL1: for i = 1 to 4 loop\n  L2: for j = 1 to 3 loop\n    s = s + j\n  endloop\nendloop\nA(0) = s" in
  let ast = Ir.Parser.parse src in
  let peeled = Transform.Peel.peel_named "L2" ast in
  Alcotest.(check bool) "footprint equal" true
    (Helpers.array_footprint ast = Helpers.array_footprint peeled)

let prop_peel_preserves_semantics =
  Helpers.qtest ~count:60 "peeling the outer loop preserves semantics" Gen.gen_program
    (fun p ->
      let peeled = Transform.Peel.peel_named "GOUTER" p in
      let seed = Hashtbl.hash (Ir.Ast.to_string p) in
      let footprint ast =
        let state = Random.State.make [| seed |] in
        Helpers.array_footprint ~rand:(fun () -> Random.State.bool state) ast
      in
      footprint p = footprint peeled)

let suite =
  ( "peel",
    [
      Helpers.case "for-loop semantics" test_semantics_for;
      Helpers.case "infinite-loop semantics" test_semantics_infinite_loop;
      Helpers.case "exit in first iteration" test_exit_in_first_iteration;
      Helpers.case "wrap-around promotion" test_promotion_after_peel;
      Helpers.case "peeled program satisfies oracle" test_peel_oracle;
      Helpers.case "peeling nested loops" test_peel_nested_target;
      prop_peel_preserves_semantics;
    ] )
