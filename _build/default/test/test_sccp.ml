(* Sparse conditional constant propagation ([WZ91]). *)

module Sccp = Analysis.Sccp

let run src =
  let ssa = Ir.Ssa.of_source src in
  (ssa, Sccp.run ssa)

let const_of_name ssa r name =
  match Ir.Ssa.def_of_name ssa name with
  | Some id -> Sccp.const_of r id
  | None -> (
    (* The name may resolve to a constant directly. *)
    match Ir.Ssa.value_of_name ssa name with
    | Some (Ir.Instr.Const c) -> Some c
    | _ -> None)

let test_straightline () =
  let ssa, r = run "x = 2 + 3\ny = x * x\nz = y - 20" in
  Alcotest.(check (option int)) "x" (Some 5) (const_of_name ssa r "x1");
  Alcotest.(check (option int)) "y" (Some 25) (const_of_name ssa r "y1");
  Alcotest.(check (option int)) "z" (Some 5) (const_of_name ssa r "z1")

let test_dead_branch () =
  (* The condition is constant, so only one arm executes and the join
     phi is constant. *)
  let ssa, r = run "c = 1\nif c > 0 then x = 10 else x = 20 endif\ny = x + 1" in
  Alcotest.(check (option int)) "y through dead branch" (Some 11)
    (const_of_name ssa r "y1");
  let _, _, dead = Sccp.fold_stats r ssa in
  Alcotest.(check bool) "some block is dead" true (dead >= 1)

let test_merge_same () =
  (* Both arms assign the same constant: the phi stays constant. *)
  let ssa, r = run "if ?? then x = 7 else x = 7 endif\ny = x\nA(0) = y" in
  Alcotest.(check (option int)) "same-constant merge" (Some 7)
    (const_of_name ssa r "y1" |> fun o ->
     match o with
     | Some v -> Some v
     | None -> (
       match Ir.Ssa.value_of_name ssa "y1" with
       | Some (Ir.Instr.Def d) -> Sccp.const_of r d
       | Some (Ir.Instr.Const c) -> Some c
       | _ -> None))

let test_merge_different () =
  let ssa, r = run "if ?? then x = 1 else x = 2 endif\ny = x\nA(0) = y" in
  (match Ir.Ssa.value_of_name ssa "y1" with
   | Some (Ir.Instr.Def d) ->
     Alcotest.(check (option int)) "different constants" None (Sccp.const_of r d)
   | _ -> Alcotest.fail "y1 should be the phi")

let test_param_bottom () =
  let ssa, r = run "y = n + 1" in
  (match Ir.Ssa.def_of_name ssa "y1" with
   | Some id -> Alcotest.(check (option int)) "param is unknown" None (Sccp.const_of r id)
   | None -> Alcotest.fail "y1 missing")

let test_mul_by_zero () =
  (* 0 * unknown = 0 even when the other operand is unknown. *)
  let ssa, r = run "y = 0 * n\nz = y + 1" in
  Alcotest.(check (option int)) "0*n" (Some 1) (const_of_name ssa r "z1")

let test_loop_invariant_constant () =
  (* After scalar promotion, constants live in *instructions* only when
     some arithmetic folds: 2 + 2 is an AD instruction proved Const 4,
     while the loop-variant sum stays Bottom. *)
  let ssa, r =
    run "c = 2 + 2\ns = 0\nL1: loop\n  s = s + c\n  if s > 100 exit\nendloop\nA(0) = s"
  in
  ignore ssa;
  let consts, total, _ = Sccp.fold_stats r ssa in
  Alcotest.(check bool) "some constants, not all" true (consts > 0 && consts < total)

let test_loop_variant_not_constant () =
  let ssa, r = run "x = 0\nL1: loop\n  x = x + 1\n  if x > 3 exit\nendloop\nA(0) = x" in
  (match Ir.Ssa.def_of_name ssa "x2" with
   | Some id -> Alcotest.(check (option int)) "loop phi varies" None (Sccp.const_of r id)
   | None -> Alcotest.fail "x2 missing")

let test_constant_exit_condition () =
  (* A loop whose exit condition folds to "always exit" makes the body
     execute exactly once and everything after is reachable. *)
  let ssa, r = run "x = 5\nL1: loop\n  if x > 0 exit\n  x = x + 1\nendloop\ny = x + 1" in
  Alcotest.(check (option int)) "after-loop value" (Some 6) (const_of_name ssa r "y1");
  ignore ssa;
  ignore r

let suite =
  ( "sccp",
    [
      Helpers.case "straight line folding" test_straightline;
      Helpers.case "dead branch" test_dead_branch;
      Helpers.case "same-constant merge" test_merge_same;
      Helpers.case "different-constant merge" test_merge_different;
      Helpers.case "parameters are unknown" test_param_bottom;
      Helpers.case "multiply by zero" test_mul_by_zero;
      Helpers.case "loop constants" test_loop_invariant_constant;
      Helpers.case "loop variant" test_loop_variant_not_constant;
      Helpers.case "constant exit condition" test_constant_exit_condition;
    ] )
