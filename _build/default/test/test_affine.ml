(* Affine subscript views: flattening multiloop classes, wrap shifting. *)

module Affine = Dependence.Affine
module Ivclass = Analysis.Ivclass
module Sym = Analysis.Sym

let s = Sym.of_int
let lin loop base step = Ivclass.Linear { loop; base; step }

let test_invariant () =
  match Affine.of_class (Ivclass.Invariant (s 7)) with
  | Some a ->
    Alcotest.(check bool) "no terms" true (a.Affine.terms = []);
    Alcotest.(check (option int)) "const" (Some 7) (Sym.const_int a.Affine.const)
  | None -> Alcotest.fail "invariant should be affine"

let test_simple_linear () =
  match Affine.of_class (lin 3 (Ivclass.Invariant (s 5)) (s 2)) with
  | Some a ->
    Alcotest.(check (option int)) "coeff" (Some 2) (Sym.const_int (Affine.coeff a 3));
    Alcotest.(check (option int)) "const" (Some 5) (Sym.const_int a.Affine.const);
    Alcotest.(check (list int)) "loops" [ 3 ] (Affine.loops a)
  | None -> Alcotest.fail "linear should be affine"

let test_multiloop_flatten () =
  (* (L1, (L0, 4, 10), 2): value = 4 + 10*h0 + 2*h1. *)
  let nested = lin 1 (lin 0 (Ivclass.Invariant (s 4)) (s 10)) (s 2) in
  match Affine.of_class nested with
  | Some a ->
    Alcotest.(check (option int)) "outer coeff" (Some 10) (Sym.const_int (Affine.coeff a 0));
    Alcotest.(check (option int)) "inner coeff" (Some 2) (Sym.const_int (Affine.coeff a 1));
    Alcotest.(check (option int)) "const" (Some 4) (Sym.const_int a.Affine.const);
    Alcotest.(check (option int)) "absent loop" (Some 0) (Sym.const_int (Affine.coeff a 9))
  | None -> Alcotest.fail "multiloop should flatten"

let test_wrap_shift () =
  (* wrap(order 1) of (L0, 0, 3): for h >= 1 the value is 3(h-1), i.e.
     -3 + 3h, and the view records holds_after = 1. *)
  let w = Ivclass.wrap 0 (lin 0 (Ivclass.Invariant (s 0)) (s 3)) (s 99) in
  match Affine.of_class w with
  | Some a ->
    Alcotest.(check (option int)) "shifted const" (Some (-3)) (Sym.const_int a.Affine.const);
    Alcotest.(check (option int)) "coeff" (Some 3) (Sym.const_int (Affine.coeff a 0));
    Alcotest.(check int) "holds after" 1 a.Affine.holds_after
  | None -> Alcotest.fail "wrap of linear should be affine"

let test_non_affine () =
  Alcotest.(check bool) "poly" true
    (Affine.of_class (Ivclass.poly 0 [| s 0; s 0; s 1 |]) = None);
  Alcotest.(check bool) "unknown" true (Affine.of_class Ivclass.Unknown = None);
  Alcotest.(check bool) "monotonic" true
    (Affine.of_class
       (Ivclass.Monotonic { loop = 0; dir = Ivclass.Increasing; strict = false; family = 0 })
     = None);
  Alcotest.(check bool) "periodic" true
    (Affine.of_class
       (Ivclass.Periodic { loop = 0; period = 2; values = [| s 1; s 2 |]; phase = 0 })
     = None)

let test_symbolic_coeffs () =
  let n = Sym.param (Ir.Ident.of_string "nn") in
  match Affine.of_class (lin 0 (Ivclass.Invariant n) (s 1)) with
  | Some a ->
    Alcotest.(check bool) "symbolic const kept" true (Sym.equal a.Affine.const n)
  | None -> Alcotest.fail "symbolic base is still affine"

let suite =
  ( "affine",
    [
      Helpers.case "invariant" test_invariant;
      Helpers.case "simple linear" test_simple_linear;
      Helpers.case "multiloop flattening" test_multiloop_flatten;
      Helpers.case "wrap shifting" test_wrap_shift;
      Helpers.case "non-affine classes" test_non_affine;
      Helpers.case "symbolic coefficients" test_symbolic_coeffs;
    ] )
