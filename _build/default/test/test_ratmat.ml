(* Rational matrices: inversion, solving, determinants, and the
   Vandermonde helpers used by closed-form recovery (paper §4.3). *)

open Bignum

let ri = Rat.of_int

let of_int_rows rows = Ratmat.of_rows (List.map (List.map ri) rows)

let test_identity_inverse () =
  let i3 = Ratmat.identity 3 in
  match Ratmat.inverse i3 with
  | Some inv -> Alcotest.(check bool) "I^-1 = I" true (Ratmat.equal inv i3)
  | None -> Alcotest.fail "identity is singular?"

let test_known_inverse () =
  (* The paper's 4x4 Vandermonde for the cubic k in loop L14. *)
  let a = of_int_rows [ [ 1; 0; 0; 0 ]; [ 1; 1; 1; 1 ]; [ 1; 2; 4; 8 ]; [ 1; 3; 9; 27 ] ] in
  match Ratmat.inverse a with
  | None -> Alcotest.fail "vandermonde singular"
  | Some inv ->
    Alcotest.(check bool) "A * A^-1 = I" true
      (Ratmat.equal (Ratmat.mul a inv) (Ratmat.identity 4));
    (* Multiplying the inverse by the first four values of k
       (4, 9, 17, 29) gives the paper's coefficients (4, 23/6, 1, 1/6). *)
    let coeffs = Ratmat.mul_vec inv [| ri 4; ri 9; ri 17; ri 29 |] in
    let expect = [| ri 4; Rat.of_ints 23 6; ri 1; Rat.of_ints 1 6 |] in
    Array.iteri
      (fun i c ->
        Alcotest.(check string)
          (Printf.sprintf "coeff %d" i)
          (Rat.to_string expect.(i))
          (Rat.to_string c))
      coeffs

let test_paper_geometric_matrix () =
  (* The paper's m = 3*m + 2*i + 1 example: geometric base 3 with a
     quadratic polynomial part; matrix rows [1, h, h^2, 3^h]. *)
  let a = Ratmat.geometric_vandermonde 2 (ri 3) in
  let expected =
    of_int_rows
      [ [ 1; 0; 0; 1 ]; [ 1; 1; 1; 3 ]; [ 1; 2; 4; 9 ]; [ 1; 3; 9; 27 ] ]
  in
  Alcotest.(check bool) "matrix shape" true (Ratmat.equal a expected);
  (* The first four computed values of m (3, 14, 49, 156) give
     m(h) = 6*3^h - h - 3, with no quadratic term (the paper's "note
     there is no quadratic term after all"). *)
  match Ratmat.inverse a with
  | None -> Alcotest.fail "singular"
  | Some inv ->
    let coeffs = Ratmat.mul_vec inv [| ri 3; ri 14; ri 49; ri 156 |] in
    let expect = [| ri (-3); ri (-1); ri 0; ri 6 |] in
    Array.iteri
      (fun i c ->
        Alcotest.(check string)
          (Printf.sprintf "m coeff %d" i)
          (Rat.to_string expect.(i))
          (Rat.to_string c))
      coeffs

let test_singular () =
  let m = of_int_rows [ [ 1; 2 ]; [ 2; 4 ] ] in
  Alcotest.(check bool) "singular" true (Ratmat.inverse m = None);
  Alcotest.(check string) "det 0" "0" (Rat.to_string (Ratmat.determinant m))

let test_solve () =
  let m = of_int_rows [ [ 2; 1 ]; [ 1; 3 ] ] in
  match Ratmat.solve m [| ri 5; ri 10 |] with
  | None -> Alcotest.fail "solve failed"
  | Some x ->
    Alcotest.(check string) "x0" "1" (Rat.to_string x.(0));
    Alcotest.(check string) "x1" "3" (Rat.to_string x.(1))

let test_determinant () =
  let m = of_int_rows [ [ 1; 2; 3 ]; [ 4; 5; 6 ]; [ 7; 8; 10 ] ] in
  Alcotest.(check string) "det" "-3" (Rat.to_string (Ratmat.determinant m))

let test_transpose_mul () =
  let a = of_int_rows [ [ 1; 2 ]; [ 3; 4 ]; [ 5; 6 ] ] in
  let at = Ratmat.transpose a in
  Alcotest.(check int) "rows" 2 (Ratmat.rows at);
  Alcotest.(check int) "cols" 3 (Ratmat.cols at);
  let p = Ratmat.mul at a in
  Alcotest.(check string) "p00" "35" (Rat.to_string (Ratmat.get p 0 0));
  Alcotest.(check string) "p01" "44" (Rat.to_string (Ratmat.get p 0 1))

(* --- properties --- *)

let gen_matrix n =
  QCheck2.Gen.(
    map
      (fun entries -> Ratmat.init n n (fun i j -> ri (List.nth entries ((i * n) + j))))
      (list_size (return (n * n)) (int_range (-9) 9)))

let prop_inverse_correct =
  Helpers.qtest ~count:100 "A * A^-1 = I (3x3)" (gen_matrix 3) (fun m ->
      match Ratmat.inverse m with
      | None -> Rat.is_zero (Ratmat.determinant m)
      | Some inv ->
        Ratmat.equal (Ratmat.mul m inv) (Ratmat.identity 3)
        && Ratmat.equal (Ratmat.mul inv m) (Ratmat.identity 3))

let prop_det_product =
  Helpers.qtest ~count:60 "det(AB) = det A det B (3x3)"
    QCheck2.Gen.(pair (gen_matrix 3) (gen_matrix 3))
    (fun (a, b) ->
      Rat.equal
        (Ratmat.determinant (Ratmat.mul a b))
        (Rat.mul (Ratmat.determinant a) (Ratmat.determinant b)))

let prop_solve_consistent =
  Helpers.qtest ~count:100 "solve then multiply"
    QCheck2.Gen.(
      pair (gen_matrix 3) (list_size (return 3) (int_range (-20) 20)))
    (fun (m, b) ->
      let b = Array.of_list (List.map ri b) in
      match Ratmat.solve m b with
      | None -> Rat.is_zero (Ratmat.determinant m)
      | Some x ->
        let b' = Ratmat.mul_vec m x in
        Array.for_all2 Rat.equal b b')

let prop_vandermonde_fits_polynomial =
  (* Solving the Vandermonde system against the first values of a random
     polynomial recovers exactly its coefficients. *)
  Helpers.qtest ~count:100 "vandermonde recovers polynomials"
    QCheck2.Gen.(list_size (int_range 1 5) (int_range (-10) 10))
    (fun coeffs ->
      let deg = List.length coeffs - 1 in
      let eval h =
        List.fold_left
          (fun (acc, p) c -> (acc + (c * p), p * h))
          (0, 1) coeffs
        |> fst
      in
      let values = Array.init (deg + 1) (fun h -> ri (eval h)) in
      match Ratmat.inverse (Ratmat.vandermonde deg) with
      | None -> false
      | Some inv ->
        let solved = Ratmat.mul_vec inv values in
        List.for_all2
          (fun c s -> Rat.equal (ri c) s)
          coeffs (Array.to_list solved))

let suite =
  ( "ratmat",
    [
      Helpers.case "identity inverse" test_identity_inverse;
      Helpers.case "paper cubic Vandermonde" test_known_inverse;
      Helpers.case "paper geometric matrix" test_paper_geometric_matrix;
      Helpers.case "singular matrices" test_singular;
      Helpers.case "solve" test_solve;
      Helpers.case "determinant" test_determinant;
      Helpers.case "transpose and multiply" test_transpose_mul;
      prop_inverse_correct;
      prop_det_product;
      prop_solve_consistent;
      prop_vandermonde_fits_polynomial;
    ] )
