(* Unit and property tests for exact rationals. *)

open Bignum

let r = Rat.of_ints
let check_str name expected actual = Alcotest.(check string) name expected (Rat.to_string actual)

let test_canonical () =
  check_str "reduce" "2/3" (r 4 6);
  check_str "sign in num" "-2/3" (r 4 (-6));
  check_str "double neg" "2/3" (r (-4) (-6));
  check_str "zero" "0" (r 0 17);
  check_str "integer" "5" (r 10 2);
  Alcotest.check_raises "zero den" Division_by_zero (fun () -> ignore (r 1 0))

let test_arith () =
  check_str "add" "5/6" (Rat.add (r 1 2) (r 1 3));
  check_str "sub" "1/6" (Rat.sub (r 1 2) (r 1 3));
  check_str "mul" "1/6" (Rat.mul (r 1 2) (r 1 3));
  check_str "div" "3/2" (Rat.div (r 1 2) (r 1 3));
  check_str "pow" "8/27" (Rat.pow (r 2 3) 3);
  check_str "pow neg" "27/8" (Rat.pow (r 2 3) (-3));
  check_str "pow zero" "1" (Rat.pow (r 2 3) 0);
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Rat.inv Rat.zero))

let test_floor_ceil () =
  let check name v expected_floor expected_ceil =
    Alcotest.(check int) (name ^ " floor") expected_floor (Bigint.to_int (Rat.floor v));
    Alcotest.(check int) (name ^ " ceil") expected_ceil (Bigint.to_int (Rat.ceil v))
  in
  check "7/2" (r 7 2) 3 4;
  check "-7/2" (r (-7) 2) (-4) (-3);
  check "3" (r 3 1) 3 3;
  check "-3" (r (-3) 1) (-3) (-3);
  check "1/3" (r 1 3) 0 1;
  check "-1/3" (r (-1) 3) (-1) 0

let test_compare () =
  Alcotest.(check bool) "1/2 < 2/3" true (Rat.compare (r 1 2) (r 2 3) < 0);
  Alcotest.(check bool) "-1/2 > -2/3" true (Rat.compare (r (-1) 2) (r (-2) 3) > 0);
  Alcotest.(check bool) "equal" true (Rat.equal (r 2 4) (r 1 2))

let test_exactness () =
  Alcotest.(check (option int)) "int exact" (Some 4) (Rat.to_int_exact (r 8 2));
  Alcotest.(check (option int)) "not int" None (Rat.to_int_exact (r 7 2));
  Alcotest.(check bool) "is_integer" true (Rat.is_integer (r 8 2))

let gen_rat =
  QCheck2.Gen.(
    map2
      (fun n d -> Rat.of_ints n (if d = 0 then 1 else d))
      (int_range (-10000) 10000)
      (int_range (-100) 100))

let prop_field_add_inv =
  Helpers.qtest "x + (-x) = 0" gen_rat (fun x -> Rat.is_zero (Rat.add x (Rat.neg x)))

let prop_field_mul_inv =
  Helpers.qtest "x * 1/x = 1" gen_rat (fun x ->
      Rat.is_zero x || Rat.equal Rat.one (Rat.mul x (Rat.inv x)))

let prop_distributive =
  Helpers.qtest "distributivity" QCheck2.Gen.(triple gen_rat gen_rat gen_rat)
    (fun (a, b, c) ->
      Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)))

let prop_canonical =
  Helpers.qtest "canonical form" gen_rat (fun x ->
      Bigint.sign (Rat.den x) > 0
      &&
      if Rat.is_zero x then Bigint.equal (Rat.den x) Bigint.one
      else Bigint.equal (Bigint.gcd (Rat.num x) (Rat.den x)) Bigint.one)

let prop_floor_le =
  Helpers.qtest "floor <= x <= ceil" gen_rat (fun x ->
      Rat.compare (Rat.of_bigint (Rat.floor x)) x <= 0
      && Rat.compare x (Rat.of_bigint (Rat.ceil x)) <= 0
      && Rat.compare
           (Rat.sub (Rat.of_bigint (Rat.ceil x)) (Rat.of_bigint (Rat.floor x)))
           Rat.one
         <= 0)

let prop_compare_consistent =
  Helpers.qtest "compare vs sub" QCheck2.Gen.(pair gen_rat gen_rat) (fun (a, b) ->
      let c = Rat.compare a b in
      let s = Rat.sign (Rat.sub a b) in
      (c > 0) = (s > 0) && (c = 0) = (s = 0))

let suite =
  ( "rat",
    [
      Helpers.case "canonical form" test_canonical;
      Helpers.case "arithmetic" test_arith;
      Helpers.case "floor/ceil" test_floor_ceil;
      Helpers.case "compare" test_compare;
      Helpers.case "exactness" test_exactness;
      prop_field_add_inv;
      prop_field_mul_inv;
      prop_distributive;
      prop_canonical;
      prop_floor_le;
      prop_compare_consistent;
    ] )
