(* The later-stage features: exit-value materialization (Fig 8),
   direction-vector enumeration, multi-exit maximum trip counts, and the
   DOT renderers. *)

module Driver = Analysis.Driver
module Trip_count = Analysis.Trip_count
module Deptest = Dependence.Deptest
module Dep_graph = Dependence.Dep_graph

(* --- exit-value materialization (Fig 8) --- *)

let fig78 = {|
k = 0
L17: loop
  i = 1
  L18: loop
    k = k + 2
    if i > 100 exit
    i = i + 1
  endloop
  k = k + 2
  if k > 5000 exit
endloop
A(k) = 1
|}

let footprint ssa =
  let st = Ir.Interp.run ~fuel:2_000_000 ssa in
  (match st.Ir.Interp.outcome with
   | Ir.Interp.Halted -> ()
   | Ir.Interp.Out_of_fuel -> Alcotest.fail "out of fuel");
  Hashtbl.fold
    (fun (a, idx) v acc -> (Ir.Ident.name a, idx, v) :: acc)
    st.Ir.Interp.arrays []
  |> List.sort compare

let test_materialize_fig8 () =
  let before = footprint (Ir.Ssa.of_source fig78) in
  let ssa = Ir.Ssa.of_source fig78 in
  let t = Driver.analyze ssa in
  let ms = Transform.Exit_values.materialize t in
  (* The inner loop's k and i have outside uses; at least k must be
     materialized (the paper's k6 = k2 + 202). *)
  Alcotest.(check bool) "materialized something" true (List.length ms >= 1);
  Alcotest.(check bool) "valid SSA" true (Ir.Ssa.check ssa = []);
  Alcotest.(check bool) "semantics preserved" true (footprint ssa = before);
  (* After the rewrite, the outer loop's uses of the inner k are gone:
     re-analysis still classifies the outer accumulation. *)
  let t2 = Driver.analyze ssa in
  let found_outer_linear = ref false in
  Ir.Cfg.iter_instrs (Ir.Ssa.cfg ssa) (fun _ (i : Ir.Instr.t) ->
      match Driver.class_of t2 i.Ir.Instr.id with
      | Analysis.Ivclass.Linear { step; _ } -> (
        match Analysis.Sym.const_int step with
        | Some 204 -> found_outer_linear := true
        | _ -> ())
      | _ -> ());
  Alcotest.(check bool) "outer (L17, _, 204) family survives" true !found_outer_linear

let test_materialize_simple_sum () =
  let src = "s = 0\nL1: for i = 1 to 10 loop\n  s = s + 2\nendloop\nA(s) = 1" in
  let before = footprint (Ir.Ssa.of_source src) in
  let ssa = Ir.Ssa.of_source src in
  let t = Driver.analyze ssa in
  let ms = Transform.Exit_values.materialize t in
  Alcotest.(check bool) "materialized" true (ms <> []);
  Alcotest.(check bool) "semantics" true (footprint ssa = before);
  (* The store A(s) now reads a closed form, not the loop phi. *)
  Alcotest.(check bool) "A subscript rewritten" true
    (List.for_all
       (fun (m : Transform.Exit_values.materialization) ->
         match m.Transform.Exit_values.replacement with
         | Ir.Instr.Def _ | Ir.Instr.Const _ -> true
         | Ir.Instr.Param _ -> false)
       ms)

let prop_materialize_preserves =
  Helpers.qtest ~count:50 "materialization preserves semantics" Gen.gen_program
    (fun p ->
      let src = Ir.Ast.to_string p in
      let seed = Hashtbl.hash src in
      let run ssa =
        let state = Random.State.make [| seed |] in
        let st =
          Ir.Interp.run ~fuel:500_000 ~rand:(fun () -> Random.State.bool state) ssa
        in
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.Ir.Interp.arrays []
        |> List.sort compare
      in
      let before = run (Ir.Ssa.of_source src) in
      let ssa = Ir.Ssa.of_source src in
      let t = Driver.analyze ssa in
      let _ = Transform.Exit_values.materialize t in
      Ir.Ssa.check ssa = [] && run ssa = before)

(* --- direction-vector enumeration --- *)

let vectors src =
  let t = Helpers.analyze src in
  let edges = Dep_graph.build t in
  let bounds l = Trip_count.count_int (Driver.trip_count t l) in
  (* Self-output edges legitimately enumerate the all-equal vector (it is
     excluded at the edge level, not by the enumerator); look at proper
     pairs only. *)
  edges
  |> List.filter (fun (e : Dep_graph.edge) ->
         e.Dep_graph.src.Dep_graph.instr <> e.Dep_graph.dst.Dep_graph.instr)
  |> List.filter_map (fun e -> Dep_graph.direction_vectors_of ~bounds e)

let test_direction_vectors_2d () =
  (* Rectangular A(i,j) = A(i-1,j): the only flow vector is (<, =). *)
  let vs =
    vectors
      "L23: for i = 1 to 50 loop\n  L24: for j = 1 to 50 loop\n    A(i, j) = A(i - 1, j)\n  endloop\nendloop"
  in
  Alcotest.(check bool) "one edge with vectors" true (vs <> []);
  List.iter
    (fun v -> Alcotest.(check bool) "(<, =)" true (v = [ [ `Lt; `Eq ] ]))
    vs

let test_direction_vectors_prune () =
  (* A(i) = A(i): only (=). *)
  let vs = vectors "L1: for i = 1 to 50 loop\n  A(i) = A(i) + 1\nendloop" in
  List.iter (fun v -> Alcotest.(check bool) "(=)" true (v = [ [ `Eq ] ])) vs;
  Alcotest.(check bool) "nonempty" true (vs <> [])

let test_direction_vectors_coupled () =
  (* Skewed access A(i+j) = A(i+j-1): many feasible vectors, including
     (=, <) and (<, >). *)
  let vs =
    vectors
      "L1: for i = 1 to 20 loop\n  L2: for j = 1 to 20 loop\n    A(i + j) = A(i + j - 1)\n  endloop\nendloop"
  in
  Alcotest.(check bool) "has (=, <)" true
    (List.exists (fun v -> List.mem [ `Eq; `Lt ] v) vs);
  Alcotest.(check bool) "has (<, >)" true
    (List.exists (fun v -> List.mem [ `Lt; `Gt ] v) vs);
  Alcotest.(check bool) "never (=, =)" true
    (List.for_all (fun v -> not (List.mem [ `Eq; `Eq ] v)) vs)

(* --- multi-exit maximum trip counts --- *)

let test_max_trip_count () =
  let src =
    "i = 0\nT: loop\n  i = i + 1\n  if i > 100 exit\n  if ?? exit\nendloop\nA(i) = 1"
  in
  let t = Helpers.analyze src in
  let loops = Ir.Ssa.loops (Driver.ssa t) in
  let lp = Option.get (Ir.Loops.find_by_name loops "T") in
  let trip = Driver.trip_count t lp.Ir.Loops.id in
  Alcotest.(check (option int)) "exact unknown" None (Trip_count.count_int trip);
  Alcotest.(check (option int)) "bounded by the counted exit" (Some 100)
    (Trip_count.max_count_int trip)

let test_max_trip_feeds_dependence () =
  (* With only an upper bound of 10 iterations, A(i) and A(i+50) still
     cannot collide. *)
  let src =
    "i = 0\nT: loop\n  i = i + 1\n  if i > 10 exit\n  if ?? exit\n  A(i) = A(i + 50)\nendloop"
  in
  let t = Helpers.analyze src in
  Alcotest.(check int) "independent via the bound" 0
    (List.length (Dep_graph.build t))

(* --- DOT output --- *)

let test_dot_renders () =
  let ssa = Ir.Ssa.of_source "j = n\nL7: loop\n  i = j + c\n  j = i + k\nendloop" in
  let cfg_dot = Ir.Dot.cfg_to_dot (Ir.Ssa.cfg ssa) in
  let ssa_dot = Ir.Dot.ssa_to_dot ssa in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "cfg digraph" true (contains cfg_dot "digraph cfg");
  Alcotest.(check bool) "cfg loop marker" true (contains cfg_dot "loop L7");
  Alcotest.(check bool) "ssa digraph" true (contains ssa_dot "digraph ssa");
  Alcotest.(check bool) "ssa names" true (contains ssa_dot "j2 = PH");
  Alcotest.(check bool) "param leaf" true (contains ssa_dot "n0")

let suite =
  ( "extensions",
    [
      Helpers.case "materialize Fig 8" test_materialize_fig8;
      Helpers.case "materialize a simple sum" test_materialize_simple_sum;
      prop_materialize_preserves;
      Helpers.case "direction vectors (2D)" test_direction_vectors_2d;
      Helpers.case "direction vectors prune" test_direction_vectors_prune;
      Helpers.case "direction vectors coupled" test_direction_vectors_coupled;
      Helpers.case "maximum trip count" test_max_trip_count;
      Helpers.case "maximum trip count feeds dependence" test_max_trip_feeds_dependence;
      Helpers.case "DOT renderers" test_dot_renders;
    ] )
