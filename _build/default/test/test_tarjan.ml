(* Tarjan SCC: correctness versus a naive reference, and the emission
   order the classifier relies on. *)

module Tarjan = Analysis.Tarjan

let graph_of_edges n edges =
  let succ = Array.make n [] in
  List.iter (fun (a, b) -> succ.(a) <- b :: succ.(a)) edges;
  { Tarjan.vertices = List.init n (fun i -> i); edges = (fun v -> succ.(v)); key = Fun.id }

let norm comps = List.sort compare (List.map (List.sort compare) comps)

let test_known () =
  (* Two 2-cycles and a bridge. *)
  let g = graph_of_edges 5 [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2); (3, 4) ] in
  Alcotest.(check (list (list int)))
    "components" [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ]
    (norm (Tarjan.sccs g))

let test_self_loop () =
  let g = graph_of_edges 2 [ (0, 0); (0, 1) ] in
  Alcotest.(check (list (list int))) "self loop" [ [ 0 ]; [ 1 ] ] (norm (Tarjan.sccs g));
  Alcotest.(check bool) "0 not trivial" false (Tarjan.is_trivial g [ 0 ]);
  Alcotest.(check bool) "1 trivial" true (Tarjan.is_trivial g [ 1 ])

let test_emission_order () =
  (* Edges point to operands: when an SCC is emitted, every SCC it can
     reach must already have been emitted. *)
  let g =
    graph_of_edges 7 [ (0, 1); (1, 2); (2, 0); (0, 3); (3, 4); (4, 3); (2, 5); (5, 6) ]
  in
  let comps = Tarjan.sccs g in
  let emitted = Hashtbl.create 8 in
  List.iter
    (fun comp ->
      List.iter
        (fun v ->
          List.iter
            (fun s ->
              if not (List.mem s comp) then
                Alcotest.(check bool)
                  (Printf.sprintf "successor %d of %d emitted first" s v)
                  true (Hashtbl.mem emitted s))
            (g.Tarjan.edges v))
        comp;
      List.iter (fun v -> Hashtbl.replace emitted v ()) comp)
    comps

let gen_graph =
  QCheck2.Gen.(
    let* n = int_range 1 15 in
    let* edges =
      list_size (int_range 0 40) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    in
    return (n, edges))

let prop_matches_naive =
  Helpers.qtest ~count:200 "matches naive SCC" gen_graph (fun (n, edges) ->
      let g = graph_of_edges n edges in
      norm (Tarjan.sccs g) = norm (Tarjan.sccs_naive g))

let prop_partition =
  Helpers.qtest ~count:200 "components partition the vertices" gen_graph
    (fun (n, edges) ->
      let g = graph_of_edges n edges in
      let all = List.concat (Tarjan.sccs g) in
      List.sort compare all = List.init n Fun.id)

let prop_emission_topological =
  Helpers.qtest ~count:200 "emission is operands-first" gen_graph (fun (n, edges) ->
      let g = graph_of_edges n edges in
      let comps = Tarjan.sccs g in
      let emitted = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun comp ->
          List.iter
            (fun v ->
              List.iter
                (fun s ->
                  if (not (List.mem s comp)) && not (Hashtbl.mem emitted s) then
                    ok := false)
                (g.Tarjan.edges v))
            comp;
          List.iter (fun v -> Hashtbl.replace emitted v ()) comp)
        comps;
      !ok)

let suite =
  ( "tarjan",
    [
      Helpers.case "known graph" test_known;
      Helpers.case "self loops" test_self_loop;
      Helpers.case "emission order" test_emission_order;
      prop_matches_naive;
      prop_partition;
      prop_emission_topological;
    ] )
