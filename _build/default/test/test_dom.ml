(* Dominator computation, checked on known shapes and against a naive
   O(n^2) dataflow reference on random programs. *)

let lower src = Ir.Lower.lower_source src

(* Reference: iterative set-based dominators. *)
let naive_dominators cfg =
  let n = Ir.Cfg.num_blocks cfg in
  let entry = Ir.Cfg.entry cfg in
  let reach = Ir.Cfg.reachable cfg in
  let preds = Ir.Cfg.pred_table cfg in
  let all = List.init n (fun i -> i) |> List.filter (fun l -> reach.(l)) in
  let doms = Array.make n [] in
  List.iter (fun l -> doms.(l) <- (if l = entry then [ entry ] else all)) all;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> entry then begin
          let ps = List.filter (fun p -> reach.(p)) preds.(l) in
          let inter =
            match ps with
            | [] -> []
            | first :: rest ->
              List.fold_left
                (fun acc p -> List.filter (fun d -> List.mem d doms.(p)) acc)
                doms.(first) rest
          in
          let next = l :: List.filter (fun d -> d <> l) inter in
          let next = List.sort_uniq compare next in
          if next <> List.sort_uniq compare doms.(l) then begin
            doms.(l) <- next;
            changed := true
          end
        end)
      all
  done;
  doms

let check_against_naive cfg =
  let dom = Ir.Dom.compute cfg in
  let naive = naive_dominators cfg in
  let reach = Ir.Cfg.reachable cfg in
  List.iter
    (fun l ->
      if reach.(l) then
        List.iter
          (fun d ->
            if reach.(d) then
              Alcotest.(check bool)
                (Printf.sprintf "dominates %d %d" d l)
                (List.mem d naive.(l))
                (Ir.Dom.dominates dom d l))
          (Ir.Cfg.labels cfg))
    (Ir.Cfg.labels cfg)

let test_diamond () =
  let cfg = lower "if a > 0 then x = 1 else x = 2 endif\ny = x" in
  let dom = Ir.Dom.compute cfg in
  let entry = Ir.Cfg.entry cfg in
  (* Entry dominates everything; neither branch dominates the join. *)
  List.iter
    (fun l -> Alcotest.(check bool) "entry dominates" true (Ir.Dom.dominates dom entry l))
    (Ir.Cfg.labels cfg);
  match (Ir.Cfg.block cfg entry).Ir.Cfg.term with
  | Ir.Cfg.Branch (_, t, e) ->
    let join = List.hd (Ir.Cfg.successors cfg t) in
    Alcotest.(check bool) "then !dom join" false (Ir.Dom.strictly_dominates dom t join);
    Alcotest.(check bool) "idom join = entry" true (Ir.Dom.idom dom join = entry);
    (* Both branch blocks have the join in their dominance frontier. *)
    Alcotest.(check bool) "df then" true (Ir.Label.Set.mem join (Ir.Dom.frontier dom t));
    Alcotest.(check bool) "df else" true (Ir.Label.Set.mem join (Ir.Dom.frontier dom e))
  | _ -> Alcotest.fail "expected branch"

let test_loop_frontier () =
  let cfg = lower "L1: loop\n  x = x + 1\n  if x > 3 exit\nendloop" in
  let dom = Ir.Dom.compute cfg in
  let header =
    List.find
      (fun l -> (Ir.Cfg.block cfg l).Ir.Cfg.loop_name = Some "L1")
      (Ir.Cfg.labels cfg)
  in
  (* A loop latch has the header in its dominance frontier. *)
  let latch =
    List.find
      (fun p -> Ir.Dom.dominates dom header p)
      (Ir.Cfg.predecessors cfg header)
  in
  Alcotest.(check bool) "header in df(latch)" true
    (Ir.Label.Set.mem header (Ir.Dom.frontier dom latch));
  (* The header is in its own frontier (it dominates its latch). *)
  Alcotest.(check bool) "header in df(header)" true
    (Ir.Label.Set.mem header (Ir.Dom.frontier dom header))

let test_known_shapes_vs_naive () =
  List.iter
    (fun src -> check_against_naive (lower src))
    [
      "x = 1";
      "if a > 0 then x = 1 endif\ny = 2";
      "L1: loop\n  if x > 1 exit\n  x = x + 1\nendloop";
      "for i = 1 to 3 loop\n  for j = 1 to 2 loop\n    x = x + 1\n  endloop\nendloop";
      "loop\n  if ?? then\n    if x > 2 exit\n  endif\n  x = x + 1\nendloop\ny = 1";
    ]

let prop_random_vs_naive =
  Helpers.qtest ~count:60 "dominators match naive reference" Gen.gen_program
    (fun p ->
      check_against_naive (Ir.Lower.lower p);
      true)

let suite =
  ( "dominators",
    [
      Helpers.case "diamond" test_diamond;
      Helpers.case "loop frontier" test_loop_frontier;
      Helpers.case "known shapes vs naive" test_known_shapes_vs_naive;
      prop_random_vs_naive;
    ] )
