(* Lowering: AST -> CFG structure. *)

let lower src = Ir.Lower.lower_source src

let test_straightline () =
  let cfg = lower "x = 1\ny = x + 2" in
  Alcotest.(check int) "one block + none extra" 1 (Ir.Cfg.num_blocks cfg);
  let b = Ir.Cfg.block cfg (Ir.Cfg.entry cfg) in
  Alcotest.(check bool) "halts" true (b.Ir.Cfg.term = Ir.Cfg.Halt);
  (* x = 1: one store; y = x + 2: load, add, store. *)
  Alcotest.(check int) "instr count" 4 (List.length b.Ir.Cfg.instrs)

let test_if_shape () =
  let cfg = lower "if a < b then x = 1 else x = 2 endif\ny = x" in
  (* entry, then, else, join. *)
  Alcotest.(check int) "blocks" 4 (Ir.Cfg.num_blocks cfg);
  let entry = Ir.Cfg.entry cfg in
  (match (Ir.Cfg.block cfg entry).Ir.Cfg.term with
   | Ir.Cfg.Branch (_, t, e) ->
     Alcotest.(check bool) "then jumps to join" true
       (Ir.Cfg.successors cfg t = Ir.Cfg.successors cfg e)
   | _ -> Alcotest.fail "expected branch");
  let join =
    match (Ir.Cfg.block cfg entry).Ir.Cfg.term with
    | Ir.Cfg.Branch (_, t, _) -> List.hd (Ir.Cfg.successors cfg t)
    | _ -> assert false
  in
  Alcotest.(check int) "join preds" 2 (List.length (Ir.Cfg.predecessors cfg join))

let test_loop_shape () =
  let cfg = lower "L1: loop\n  x = x + 1\n  if x > 10 exit\nendloop\ny = 1" in
  (* Find the loop header (marked with its source name). *)
  let header =
    List.find
      (fun l -> (Ir.Cfg.block cfg l).Ir.Cfg.loop_name = Some "L1")
      (Ir.Cfg.labels cfg)
  in
  let preds = Ir.Cfg.predecessors cfg header in
  Alcotest.(check int) "header has entry + latch preds" 2 (List.length preds)

let test_for_desugar () =
  let cfg = lower "for i = 1 to 3 loop\n  A(i) = i\nendloop" in
  (* The bound is evaluated once, before the loop: the entry block stores
     both i and the limit temp. *)
  let entry = Ir.Cfg.block cfg (Ir.Cfg.entry cfg) in
  let stores =
    List.filter_map
      (fun (i : Ir.Instr.t) ->
        match i.Ir.Instr.op with Ir.Instr.Store x -> Some (Ir.Ident.name x) | _ -> None)
      entry.Ir.Cfg.instrs
  in
  Alcotest.(check int) "two stores before loop" 2 (List.length stores);
  Alcotest.(check bool) "a limit temp exists" true
    (List.exists (fun s -> String.length s > 5 && String.sub s 0 3 = "L1$") stores
     || List.exists (fun s -> String.contains s '$') stores)

let test_exit_outside_loop_fails () =
  Alcotest.(check bool) "exit outside loop" true
    (match lower "exit" with
     | exception Failure _ -> true
     | _ -> false)

let test_reverse_postorder () =
  let cfg = lower "if a > 0 then x = 1 endif\ny = 2" in
  let order = Ir.Cfg.reverse_postorder cfg in
  Alcotest.(check int) "entry first" (Ir.Cfg.entry cfg) (List.hd order);
  (* RPO visits a block before its (non-back-edge) successors. *)
  let pos = Hashtbl.create 8 in
  List.iteri (fun i l -> Hashtbl.replace pos l i) order;
  List.iter
    (fun l ->
      List.iter
        (fun s ->
          if Hashtbl.mem pos l && Hashtbl.mem pos s then
            Alcotest.(check bool) "topological for acyclic" true
              (Hashtbl.find pos l < Hashtbl.find pos s))
        (Ir.Cfg.successors cfg l))
    order

let test_unreachable_after_exit () =
  (* Statements after an unconditional exit are dropped quietly. *)
  let cfg = lower "loop\n  exit\n  x = 1\nendloop" in
  Alcotest.(check bool) "builds" true (Ir.Cfg.num_blocks cfg > 0)

let test_index_lookup () =
  let cfg = lower "x = 1\ny = x + 2" in
  Ir.Cfg.iter_instrs cfg (fun label (i : Ir.Instr.t) ->
      Alcotest.(check int) "block_of_instr" label
        (Ir.Cfg.block_of_instr cfg i.Ir.Instr.id));
  Alcotest.(check bool) "missing instr" true (Ir.Cfg.find_instr_opt cfg 9999 = None)

let suite =
  ( "cfg-lowering",
    [
      Helpers.case "straight line" test_straightline;
      Helpers.case "if shape" test_if_shape;
      Helpers.case "loop shape" test_loop_shape;
      Helpers.case "for desugaring" test_for_desugar;
      Helpers.case "exit outside loop" test_exit_outside_loop_fails;
      Helpers.case "reverse postorder" test_reverse_postorder;
      Helpers.case "unreachable after exit" test_unreachable_after_exit;
      Helpers.case "instruction index" test_index_lookup;
    ] )
