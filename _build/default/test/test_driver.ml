(* The analysis driver: SCCP integration (ablation), global class
   resolution, exit-value bookkeeping, and report stability. *)

module Driver = Analysis.Driver
module Ivclass = Analysis.Ivclass
module Sym = Analysis.Sym

let test_sccp_ablation () =
  (* With constant propagation the computed bound folds and the step is
     the constant 5; without, the step stays symbolic. *)
  let src = "c = 2 + 3\nk = 0\nL1: loop\n  k = k + c\n  if k > 100 exit\nendloop\nA(k) = 1" in
  let with_sccp = Driver.analyze_source ~use_sccp:true src in
  (match Driver.class_of_name with_sccp "k2" with
   | Some (Ivclass.Linear { step; _ }) ->
     Alcotest.(check (option int)) "constant step" (Some 5) (Sym.const_int step)
   | Some c -> Alcotest.failf "expected linear, got %s" (Driver.class_to_string with_sccp c)
   | None -> Alcotest.fail "k2 missing");
  let without = Driver.analyze_source ~use_sccp:false src in
  match Driver.class_of_name without "k2" with
  | Some (Ivclass.Linear { step; _ }) ->
    Alcotest.(check bool) "symbolic step" true (Sym.const_int step = None)
  | Some c -> Alcotest.failf "expected linear, got %s" (Driver.class_to_string without c)
  | None -> Alcotest.fail "k2 missing"

let test_sccp_dead_branch_feeds_init () =
  (* SCCP proves the else-branch dead, so the phi's initial value is the
     constant 1 and the loop IV gets a constant base. *)
  let src = {|
flag = 1
if flag > 0 then
  k = 1
else
  k = 999
endif
L1: loop
  k = k + 1
  if k > 50 exit
endloop
A(k) = 1
|} in
  let t = Driver.analyze_source src in
  match Driver.class_of_name t "k4" with
  | Some (Ivclass.Linear { base = Ivclass.Invariant b; _ }) ->
    Alcotest.(check (option int)) "constant base via dead-branch pruning" (Some 1)
      (Sym.const_int b)
  | Some c -> Alcotest.failf "expected linear, got %s" (Driver.class_to_string t c)
  | None -> Alcotest.fail "k4 missing (naming changed?)"

let test_class_of_outside_loops () =
  let src = "x = n + 1\nA(x) = x" in
  let t = Driver.analyze_source src in
  let ssa = Driver.ssa t in
  match Ir.Ssa.def_of_name ssa "x1" with
  | Some id -> (
    match Driver.class_of t id with
    | Ivclass.Invariant _ -> ()
    | c -> Alcotest.failf "expected invariant, got %s" (Driver.class_to_string t c))
  | None -> Alcotest.fail "x1 missing"

let test_global_class_resolution () =
  (* i - 1 computed inside the inner loop resolves to an outer-loop
     linear IV in the global frame. *)
  let src = {|
L1: for i = 1 to n loop
  L2: for j = 1 to n loop
    A(i - 1, j) = 1
  endloop
endloop
|} in
  let t = Driver.analyze_source src in
  let refs = Dependence.Dep_graph.collect_refs t in
  match refs with
  | [ r ] -> (
    match r.Dependence.Dep_graph.subscripts with
    | [ dim1; _ ] -> (
      match dim1 with
      | Ivclass.Linear { base = Ivclass.Invariant b; step; _ } ->
        Alcotest.(check (option int)) "base 0" (Some 0) (Sym.const_int b);
        Alcotest.(check (option int)) "step 1" (Some 1) (Sym.const_int step)
      | c -> Alcotest.failf "expected linear, got %s" (Driver.class_to_string t c))
    | _ -> Alcotest.fail "expected two dimensions")
  | _ -> Alcotest.fail "expected one reference"

let test_exit_values_propagate () =
  let src = {|
total = 0
L1: loop
  s = 0
  L2: for i = 1 to 7 loop
    s = s + 3
  endloop
  total = total + s
  if total > 1000 exit
endloop
A(total) = 1
|} in
  let t = Driver.analyze_source src in
  (* s's exit value is 21, so total is a linear IV of step 21. *)
  match Driver.class_of_name t "total2" with
  | Some (Ivclass.Linear { step; _ }) ->
    Alcotest.(check (option int)) "outer step from inner exit" (Some 21)
      (Sym.const_int step)
  | Some c -> Alcotest.failf "expected linear, got %s" (Driver.class_to_string t c)
  | None -> Alcotest.fail "total2 missing"

let test_report_contains_names_and_trips () =
  let t =
    Driver.analyze_source
      "j = 0\nL19: for i = 1 to n loop\n  j = j + i\nendloop\nA(j) = 1"
  in
  let report = Driver.report t in
  let contains needle =
    let nl = String.length needle and rl = String.length report in
    let rec go i = i + nl <= rl && (String.sub report i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("report mentions " ^ needle) true (contains needle))
    [ "L19"; "j2"; "trip count n" ]

let suite =
  ( "driver",
    [
      Helpers.case "SCCP ablation" test_sccp_ablation;
      Helpers.case "SCCP dead branches feed initial values" test_sccp_dead_branch_feeds_init;
      Helpers.case "defs outside loops" test_class_of_outside_loops;
      Helpers.case "global class resolution" test_global_class_resolution;
      Helpers.case "inner exit values drive outer steps" test_exit_values_propagate;
      Helpers.case "report format" test_report_contains_names_and_trips;
    ] )
