(* The transformation clients: DCE, LICM, loop interchange, unimodular
   legality, and parallelization legality. *)

module Driver = Analysis.Driver

let footprint_of_ssa ?(params = fun _ -> 0) ?(seed = 0) ssa =
  let state = Random.State.make [| seed |] in
  let st =
    Ir.Interp.run ~fuel:500_000 ~params ~rand:(fun () -> Random.State.bool state) ssa
  in
  Hashtbl.fold
    (fun (a, idx) v acc -> (Ir.Ident.name a, idx, v) :: acc)
    st.Ir.Interp.arrays []
  |> List.sort compare

(* --- DCE --- *)

let test_dce_removes_dead () =
  let src = "x = 1 + 2\ny = x * 3\nA(0) = 5" in
  let ssa = Ir.Ssa.of_source src in
  let removed = Transform.Dce.run (Ir.Ssa.cfg ssa) in
  Alcotest.(check bool) "removed the dead chain" true (removed >= 2);
  Alcotest.(check bool) "still valid SSA" true (Ir.Ssa.check ssa = []);
  Alcotest.(check bool) "semantics" true
    (footprint_of_ssa ssa = [ ("A", [ 0 ], 5) ])

let test_dce_keeps_live () =
  let src = "x = 1 + 2\nA(x) = x" in
  let ssa = Ir.Ssa.of_source src in
  let before = footprint_of_ssa (Ir.Ssa.of_source src) in
  let _ = Transform.Dce.run (Ir.Ssa.cfg ssa) in
  Alcotest.(check bool) "semantics" true (footprint_of_ssa ssa = before)

let test_dce_keeps_rand () =
  (* Rand has an observable consumption order: never deleted. *)
  let src = "if ?? then\n  A(0) = 1\nendif\nif ?? then\n  A(1) = 1\nendif" in
  let ssa = Ir.Ssa.of_source src in
  let before = footprint_of_ssa ~seed:5 (Ir.Ssa.of_source src) in
  let _ = Transform.Dce.run (Ir.Ssa.cfg ssa) in
  Alcotest.(check bool) "same random path" true (footprint_of_ssa ~seed:5 ssa = before)

let prop_dce_preserves =
  Helpers.qtest ~count:60 "DCE preserves semantics" Gen.gen_program (fun p ->
      let src = Ir.Ast.to_string p in
      let seed = Hashtbl.hash src in
      let before = footprint_of_ssa ~seed (Ir.Ssa.of_source src) in
      let ssa = Ir.Ssa.of_source src in
      let _ = Transform.Dce.run (Ir.Ssa.cfg ssa) in
      Ir.Ssa.check ssa = [] && footprint_of_ssa ~seed ssa = before)

(* --- LICM --- *)

let test_licm_hoists () =
  let src = "L1: for i = 1 to 50 loop\n  x = n * 4 + 2\n  A(i) = x + i\nendloop" in
  let params v = if Ir.Ident.name v = "n" then 3 else 0 in
  let before = footprint_of_ssa ~params (Ir.Ssa.of_source src) in
  let ssa = Ir.Ssa.of_source src in
  let t = Driver.analyze ssa in
  let hoisted = Transform.Licm.hoist t in
  Alcotest.(check bool) "hoisted the invariant chain" true (List.length hoisted >= 2);
  Alcotest.(check bool) "valid SSA" true (Ir.Ssa.check ssa = []);
  Alcotest.(check bool) "semantics" true (footprint_of_ssa ~params ssa = before);
  (* The hoisted instructions now live outside the loop. *)
  let loops = Ir.Ssa.loops ssa in
  let lp = Option.get (Ir.Loops.find_by_name loops "L1") in
  List.iter
    (fun id ->
      Alcotest.(check bool) "outside the loop" false
        (Ir.Label.Set.mem (Ir.Cfg.block_of_instr (Ir.Ssa.cfg ssa) id) lp.Ir.Loops.blocks))
    hoisted

let test_licm_leaves_variant () =
  let src = "L1: for i = 1 to 9 loop\n  A(i) = i * 2\nendloop" in
  let ssa = Ir.Ssa.of_source src in
  let t = Driver.analyze ssa in
  Alcotest.(check int) "nothing hoisted" 0 (List.length (Transform.Licm.hoist t))

let test_licm_no_division () =
  (* A guarded division must not be speculated out of the loop. *)
  let src =
    "L1: for i = 1 to 9 loop\n  if n != 0 then\n    x = 100 / n\n    A(i) = x\n  endif\nendloop"
  in
  let ssa = Ir.Ssa.of_source src in
  let t = Driver.analyze ssa in
  let hoisted = Transform.Licm.hoist t in
  (* With n = 0 the division must never execute. *)
  let _ = footprint_of_ssa ~params:(fun _ -> 0) ssa in
  Ir.Cfg.iter_instrs (Ir.Ssa.cfg ssa) (fun _ (i : Ir.Instr.t) ->
      match i.Ir.Instr.op with
      | Ir.Instr.Binop Ir.Ops.Div ->
        Alcotest.(check bool) "division not hoisted" false
          (List.exists (Ir.Instr.Id.equal i.Ir.Instr.id) hoisted)
      | _ -> ())

let prop_licm_preserves =
  Helpers.qtest ~count:60 "LICM preserves semantics" Gen.gen_program (fun p ->
      let src = Ir.Ast.to_string p in
      let seed = Hashtbl.hash src in
      let before = footprint_of_ssa ~seed (Ir.Ssa.of_source src) in
      let ssa = Ir.Ssa.of_source src in
      let t = Driver.analyze ssa in
      let _ = Transform.Licm.hoist t in
      Ir.Ssa.check ssa = [] && footprint_of_ssa ~seed ssa = before)

(* --- interchange --- *)

let triangular = {|
L23: for i = 1 to n loop
  L24: for j = i + 1 to n loop
    A(i, j) = A(i - 1, j)
  endloop
endloop
|}

let rectangular = {|
L23: for i = 1 to n loop
  L24: for j = 1 to n loop
    A(i, j) = A(i - 1, j)
  endloop
endloop
|}

let anti_diagonal = {|
L23: for i = 1 to n loop
  L24: for j = 1 to n loop
    A(i, j) = A(i - 1, j + 1)
  endloop
endloop
|}

let test_interchange_legality () =
  (* Rectangular (1,0): legal. Triangular in iteration space (1,-1):
     illegal — the paper's §6.1 example. Anti-diagonal (1,-1): illegal. *)
  Alcotest.(check (option bool)) "rectangular legal" (Some true)
    (Transform.Interchange.legal_for_source rectangular ~outer_name:"L23"
       ~inner_name:"L24");
  Alcotest.(check (option bool)) "triangular illegal" (Some false)
    (Transform.Interchange.legal_for_source triangular ~outer_name:"L23"
       ~inner_name:"L24");
  Alcotest.(check (option bool)) "anti-diagonal illegal" (Some false)
    (Transform.Interchange.legal_for_source anti_diagonal ~outer_name:"L23"
       ~inner_name:"L24")

let test_interchange_apply () =
  let ast = Ir.Parser.parse rectangular in
  let swapped = Transform.Interchange.apply ast ~outer_name:"L23" in
  (* The interchanged program computes the same values. *)
  let params x = if Ir.Ident.name x = "n" then 6 else 0 in
  Alcotest.(check bool) "same footprint" true
    (Helpers.array_footprint ~params ast = Helpers.array_footprint ~params swapped);
  (* And the loop order actually changed. *)
  match swapped.Ir.Ast.stmts with
  | [ Ir.Ast.For { name = "L24"; body = [ Ir.Ast.For { name = "L23"; _ } ]; _ } ] -> ()
  | _ -> Alcotest.fail "loops not swapped"

let test_interchange_rejects_triangular_bounds () =
  let ast = Ir.Parser.parse triangular in
  Alcotest.(check bool) "refuses dependent bounds" true
    (match Transform.Interchange.apply ast ~outer_name:"L23" with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* --- unimodular --- *)

let test_unimodular_legality () =
  let module U = Transform.Unimodular in
  Alcotest.(check bool) "interchange legal on (1,0)" true
    (U.legal U.interchange_2d [ [| 1; 0 |] ]);
  Alcotest.(check bool) "interchange illegal on (1,-1)" false
    (U.legal U.interchange_2d [ [| 1; -1 |] ]);
  (* Skewing by 1 fixes (1,-1): T = interchange * skew(1). *)
  (match U.make_interchangeable [ [| 1; -1 |] ] with
   | Some t ->
     Alcotest.(check bool) "unimodular" true (U.is_unimodular_2d t);
     Alcotest.(check bool) "transformed vector lex-positive" true
       (U.lex_positive (U.apply_vec t [| 1; -1 |]))
   | None -> Alcotest.fail "no skew factor found");
  (* A pure interchange already works for (1,0) so f = 0 suffices and
     the compound matrix is the interchange itself. *)
  match U.make_interchangeable [ [| 1; 0 |] ] with
  | Some t -> Alcotest.(check bool) "no skew needed" true (t = U.interchange_2d)
  | None -> Alcotest.fail "should be transformable"

let test_unimodular_from_dependences () =
  (* End-to-end: distance vectors from the dependence graph of the
     triangular nest feed the unimodular search. *)
  let t = Driver.analyze_source triangular in
  let loops = Ir.Ssa.loops (Driver.ssa t) in
  let o = Option.get (Ir.Loops.find_by_name loops "L23") in
  let i = Option.get (Ir.Loops.find_by_name loops "L24") in
  let edges = Dependence.Dep_graph.build t in
  match
    Transform.Unimodular.distance_vectors edges ~outer:o.Ir.Loops.id ~inner:i.Ir.Loops.id
  with
  | Some dvs -> (
    Alcotest.(check bool) "plain interchange illegal" false
      (Transform.Unimodular.legal Transform.Unimodular.interchange_2d dvs);
    match Transform.Unimodular.make_interchangeable dvs with
    | Some _ -> ()
    | None -> Alcotest.fail "skew+interchange should be legal")
  | None -> Alcotest.fail "expected exact distance vectors"

(* --- parallelization --- *)

let test_parallel_relaxation () =
  (* The §4.2 payoff: the inner sweep of the relaxation has no carried
     dependence once the planes are proved disjoint per iteration. *)
  let src = {|
j = 1
jold = 2
L11: for iter = 1 to n loop
  L30: for x = 1 to m loop
    A(jold, x) = A(j, x) + 1
  endloop
  jtemp = jold
  jold = j
  j = jtemp
endloop
|} in
  let t = Driver.analyze_source src in
  let results = Transform.Parallelize.parallel_loops t in
  let status name =
    List.find_map
      (fun ((lp : Ir.Loops.loop), ok) ->
        if lp.Ir.Loops.name = name then Some ok else None)
      results
  in
  Alcotest.(check (option bool)) "inner sweep parallel" (Some true) (status "L30");
  Alcotest.(check (option bool)) "outer sweep serial" (Some false) (status "L11")

let test_parallel_pack () =
  (* The §4.4 pack loop: B written through a strictly monotonic
     subscript; A only read. The loop still has the write-read order on
     B in the same iteration, but no carried dependence. *)
  let src = "k = 0\nL15: for i = 1 to n loop\n  if A(i) > 0 then\n    k = k + 1\n    B(k) = A(i)\n  endif\nendloop" in
  let t = Driver.analyze_source src in
  let results = Transform.Parallelize.parallel_loops t in
  match results with
  | [ (_, ok) ] -> Alcotest.(check bool) "pack loop parallel" true ok
  | _ -> Alcotest.fail "expected one loop"

let test_serial_recurrence () =
  let src = "L1: for i = 1 to n loop\n  A(i) = A(i - 1) + 1\nendloop" in
  let t = Driver.analyze_source src in
  match Transform.Parallelize.parallel_loops t with
  | [ (_, ok) ] -> Alcotest.(check bool) "true recurrence is serial" false ok
  | _ -> Alcotest.fail "expected one loop"

let suite =
  ( "transforms",
    [
      Helpers.case "DCE removes dead code" test_dce_removes_dead;
      Helpers.case "DCE keeps live code" test_dce_keeps_live;
      Helpers.case "DCE keeps the random source" test_dce_keeps_rand;
      prop_dce_preserves;
      Helpers.case "LICM hoists invariants" test_licm_hoists;
      Helpers.case "LICM leaves variants" test_licm_leaves_variant;
      Helpers.case "LICM never speculates division" test_licm_no_division;
      prop_licm_preserves;
      Helpers.case "interchange legality" test_interchange_legality;
      Helpers.case "interchange application" test_interchange_apply;
      Helpers.case "interchange bound check" test_interchange_rejects_triangular_bounds;
      Helpers.case "unimodular legality" test_unimodular_legality;
      Helpers.case "unimodular from dependences" test_unimodular_from_dependences;
      Helpers.case "parallel relaxation sweep" test_parallel_relaxation;
      Helpers.case "parallel pack loop" test_parallel_pack;
      Helpers.case "serial recurrence" test_serial_recurrence;
    ] )
