(* Structured diagnostics: one record type shared by every checker. *)

type severity = Error | Warning | Info

type location =
  | Program
  | Block of Label.t
  | Instr of Instr.Id.t
  | Edge of Label.t * Label.t
  | Loop of string
  | Var of string

type t = {
  code : string;
  severity : severity;
  origin : string;
  loc : location;
  message : string;
}

let v ?(severity = Error) ?(loc = Program) ~code ~origin fmt =
  Format.kasprintf (fun message -> { code; severity; origin; loc; message }) fmt

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let location_to_string = function
  | Program -> "program"
  | Block l -> Printf.sprintf "block %d" l
  | Instr id -> Printf.sprintf "instr %%%d" id
  | Edge (a, b) -> Printf.sprintf "edge %d->%d" a b
  | Loop name -> Printf.sprintf "loop %s" name
  | Var name -> Printf.sprintf "var %s" name

let is_error d = d.severity = Error

let count diags =
  List.fold_left
    (fun (e, w) d ->
      match d.severity with
      | Error -> (e + 1, w)
      | Warning -> (e, w + 1)
      | Info -> (e, w))
    (0, 0) diags

let to_string d =
  match d.loc with
  | Program ->
    Printf.sprintf "%s[%s] %s: %s" (severity_to_string d.severity) d.code d.origin
      d.message
  | loc ->
    Printf.sprintf "%s[%s] %s (%s): %s" (severity_to_string d.severity) d.code
      d.origin (location_to_string loc) d.message

let pp fmt d = Format.pp_print_string fmt (to_string d)
