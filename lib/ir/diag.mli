(** Structured diagnostics for the whole-pipeline verifier.

    Every checker in the system — SSA well-formedness, CFG structure,
    looptree consistency, the classification oracle, the transform
    validators — reports through this one type, so the CLI, the serve
    protocol and the test suite all render and filter findings the same
    way. A diagnostic carries a stable machine-readable code (the thing
    CI and golden tests match on), a severity, the pass that produced
    it, and a location inside the program under analysis. *)

type severity = Error | Warning | Info

(** Where in the program a finding points. [Program] is a whole-program
    finding with no better anchor. *)
type location =
  | Program
  | Block of Label.t
  | Instr of Instr.Id.t
  | Edge of Label.t * Label.t  (** source block -> target block *)
  | Loop of string  (** loop name, e.g. "L19" *)
  | Var of string  (** an SSA name, e.g. "j2" *)

type t = {
  code : string;  (** stable code, e.g. "SSA001" — never reworded *)
  severity : severity;
  origin : string;  (** checker / pass of origin, e.g. "ssa", "oracle" *)
  loc : location;
  message : string;
}

(** [v ~code ~origin fmt ...] builds a diagnostic with a formatted
    message. Severity defaults to [Error], location to [Program]. *)
val v :
  ?severity:severity ->
  ?loc:location ->
  code:string ->
  origin:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val severity_to_string : severity -> string
val location_to_string : location -> string
val is_error : t -> bool

(** [count diags] is [(errors, warnings)]. *)
val count : t list -> int * int

(** One line: [error[SSA001] ssa (instr 14): phi has 2 args but 3 preds].
    The rendering is stable — golden tests depend on it. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
