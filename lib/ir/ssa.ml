(* SSA construction over the tuple IR (Cytron et al.).

   Scalar Load/Store instructions are promoted to direct def-use edges:
   phi instructions are placed on the iterated dominance frontier of each
   variable's definition blocks, then a dominator-tree walk renames every
   use to its unique reaching definition. After the pass, Load/Store of
   scalars are gone; array Aload/Astore remain.

   The pass also records human-readable SSA names ("j2", "k3", ...) in the
   style of the paper's figures: version k of variable x is the k-th
   definition of x in renaming order, and the value flowing in from
   outside the program (never assigned before use) is "x0", represented
   as [Param x]. *)

type t = {
  cfg : Cfg.t;
  dom : Dom.t;
  loops : Loops.t;
  (* phi id -> the source variable it merges *)
  phi_var : Ident.t Instr.Id.Table.t;
  (* def id -> SSA names assigned to it (a def can be stored to several
     variables; each store names it) *)
  names_of : string list Instr.Id.Table.t;
  (* SSA name -> value, e.g. "j2" -> Def 14, "n0" -> Param n *)
  name_env : (string, Instr.value) Hashtbl.t;
}

let cfg t = t.cfg
let dom t = t.dom
let loops t = t.loops

let phi_var t id = Instr.Id.Table.find_opt t.phi_var id

let names_of t id =
  Option.value ~default:[] (Instr.Id.Table.find_opt t.names_of id)

(* [value_of_name t name] looks up an SSA name like "j2"; bare variable
   names ("n") resolve to the program input [Param n]. *)
let value_of_name t name =
  match Hashtbl.find_opt t.name_env name with
  | Some v -> Some v
  | None ->
    let n = String.length name in
    let is_digit c = c >= '0' && c <= '9' in
    if n > 0 && not (is_digit name.[n - 1]) then
      (* A bare variable name denotes the program input. *)
      Some (Instr.Param (Ident.of_string name))
    else if n > 1 && name.[n - 1] = '0' && not (is_digit name.[n - 2]) then
      (* "x0" is the program input for x. *)
      Some (Instr.Param (Ident.of_string (String.sub name 0 (n - 1))))
    else None

(* [def_of_name t name] is the instruction id for an SSA name, when the
   name denotes an instruction result. *)
let def_of_name t name =
  match Hashtbl.find_opt t.name_env name with
  | Some (Instr.Def id) -> Some id
  | Some (Instr.Const _ | Instr.Param _) | None -> None

(* [primary_name t id] is the first SSA name of a def, or its raw id. *)
let primary_name t id =
  match names_of t id with
  | name :: _ -> name
  | [] -> Instr.Id.to_string id

let pp_value t fmt (v : Instr.value) =
  match v with
  | Instr.Def id -> Format.pp_print_string fmt (primary_name t id)
  | Instr.Const n -> Format.pp_print_int fmt n
  | Instr.Param x -> Format.fprintf fmt "%a0" Ident.pp x

let is_scalar_op = function
  | Instr.Load _ | Instr.Store _ -> true
  | _ -> false

(* --- Construction --- *)

let convert (cfg : Cfg.t) : t =
  let dom = Obs.Trace.with_span "pipeline.dominators" (fun () -> Dom.compute cfg) in
  let preds = Cfg.pred_table cfg in
  let nblocks = Cfg.num_blocks cfg in
  (* 1. Definition blocks per scalar variable, keeping the variables in
     first-definition order so phi placement (and hence instruction ids,
     anchor choices and report order) is deterministic. *)
  let def_blocks : (Ident.t, Label.Set.t) Hashtbl.t = Hashtbl.create 16 in
  let vars_in_order : Ident.t list ref = ref [] in
  Cfg.iter_instrs cfg (fun label instr ->
      match instr.Instr.op with
      | Instr.Store x ->
        if not (Hashtbl.mem def_blocks x) then vars_in_order := x :: !vars_in_order;
        let cur = Option.value ~default:Label.Set.empty (Hashtbl.find_opt def_blocks x) in
        Hashtbl.replace def_blocks x (Label.Set.add label cur)
      | _ -> ());
  let vars_in_order = List.rev !vars_in_order in
  (* 2. Phi placement on iterated dominance frontiers. *)
  let phi_var : Ident.t Instr.Id.Table.t = Instr.Id.Table.create 32 in
  let phis_at : Instr.t list array = Array.make nblocks [] in
  List.iter
    (fun x ->
      let defs = Hashtbl.find def_blocks x in
      let has_phi = Array.make nblocks false in
      let in_work = Array.make nblocks false in
      let work = Queue.create () in
      Label.Set.iter
        (fun l ->
          Queue.push l work;
          in_work.(l) <- true)
        defs;
      while not (Queue.is_empty work) do
        let l = Queue.pop work in
        Label.Set.iter
          (fun y ->
            if Dom.is_reachable dom y && not has_phi.(y) then begin
              has_phi.(y) <- true;
              let arity = List.length preds.(y) in
              let phi = Cfg.prepend cfg y Instr.Phi (Array.make arity (Instr.Const 0)) in
              Instr.Id.Table.replace phi_var phi.Instr.id x;
              phis_at.(y) <- phi :: phis_at.(y);
              if not in_work.(y) then begin
                Queue.push y work;
                in_work.(y) <- true
              end
            end)
          (Dom.frontier dom l)
      done)
    vars_in_order;
  (* 3. Renaming via dominator-tree walk. *)
  let stacks : (Ident.t, Instr.value list ref) Hashtbl.t = Hashtbl.create 16 in
  let stack_of x =
    match Hashtbl.find_opt stacks x with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks x s;
      s
  in
  let current x =
    match !(stack_of x) with
    | v :: _ -> v
    | [] -> Instr.Param x
  in
  (* Naming happens after dead-phi pruning (so version numbers stay
     dense and match the paper's figures); the walk only records events
     in renaming order. *)
  let naming_events : (Ident.t * Instr.value) list ref = ref [] in
  let assign_name x (v : Instr.value) = naming_events := (x, v) :: !naming_events in
  (* Substitution for deleted Load instructions. *)
  let subst : Instr.value Instr.Id.Table.t = Instr.Id.Table.create 64 in
  let rec resolve (v : Instr.value) =
    match v with
    | Instr.Def id -> (
      match Instr.Id.Table.find_opt subst id with
      | Some v' -> resolve v'
      | None -> v)
    | Instr.Const _ | Instr.Param _ -> v
  in
  (* Children sorted by reverse-postorder position, so renaming visits
     blocks in program order and version numbers match the figures. *)
  let rpo_pos = Array.make nblocks max_int in
  List.iteri (fun i l -> rpo_pos.(l) <- i) (Dom.reverse_postorder dom);
  let rec walk label =
    let block = Cfg.block cfg label in
    let pushed = ref [] in
    let push x v =
      let s = stack_of x in
      s := v :: !s;
      pushed := x :: !pushed
    in
    List.iter
      (fun (instr : Instr.t) ->
        match instr.Instr.op with
        | Instr.Phi -> (
          match Instr.Id.Table.find_opt phi_var instr.Instr.id with
          | Some x ->
            let v = Instr.Def instr.Instr.id in
            push x v;
            assign_name x v
          | None -> ())
        | Instr.Load x ->
          Instr.Id.Table.replace subst instr.Instr.id (resolve (current x))
        | Instr.Store x ->
          let v = resolve instr.Instr.args.(0) in
          push x v;
          assign_name x v
        | _ ->
          (* Rewrite operand loads eagerly; they were already processed
             (operands of straight-line code dominate their uses). *)
          instr.Instr.args <- Array.map resolve instr.Instr.args)
      block.Cfg.instrs;
    (match block.Cfg.term with
     | Cfg.Branch (v, l1, l2) -> block.Cfg.term <- Cfg.Branch (resolve v, l1, l2)
     | Cfg.Jump _ | Cfg.Halt -> ());
    (* Fill phi arguments in successors. *)
    List.iter
      (fun s ->
        let pred_index =
          let rec find i = function
            | [] -> invalid_arg "Ssa.convert: successor without pred edge"
            | p :: _ when Label.equal p label -> i
            | _ :: rest -> find (i + 1) rest
          in
          find 0 preds.(s)
        in
        List.iter
          (fun (phi : Instr.t) ->
            match Instr.Id.Table.find_opt phi_var phi.Instr.id with
            | Some x -> phi.Instr.args.(pred_index) <- resolve (current x)
            | None -> ())
          phis_at.(s))
      (Cfg.successors cfg label);
    let children =
      List.sort (fun a b -> compare rpo_pos.(a) rpo_pos.(b)) (Dom.children dom label)
    in
    List.iter walk children;
    List.iter
      (fun x ->
        let s = stack_of x in
        match !s with
        | _ :: rest -> s := rest
        | [] -> assert false)
      !pushed
  in
  walk (Cfg.entry cfg);
  (* 4. Delete the promoted Load/Store instructions and apply any
     remaining substitutions (e.g. phi args pointing at loads). *)
  List.iter
    (fun label ->
      Cfg.replace_instrs cfg label (fun instrs ->
          List.filter_map
            (fun (instr : Instr.t) ->
              if is_scalar_op instr.Instr.op then None
              else begin
                instr.Instr.args <- Array.map resolve instr.Instr.args;
                Some instr
              end)
            instrs);
      let block = Cfg.block cfg label in
      match block.Cfg.term with
      | Cfg.Branch (v, l1, l2) -> block.Cfg.term <- Cfg.Branch (resolve v, l1, l2)
      | Cfg.Jump _ | Cfg.Halt -> ())
    (Cfg.labels cfg);
  (* 5. Prune dead phis (the paper's figures use pruned SSA): keep only
     phis transitively reachable from a non-phi use or a branch. *)
  let used : unit Instr.Id.Table.t = Instr.Id.Table.create 64 in
  let is_phi id =
    match Instr.Id.Table.find_opt (Cfg.index cfg) id with
    | Some (_, { Instr.op = Instr.Phi; _ }) -> true
    | _ -> false
  in
  let rec mark (v : Instr.value) =
    match v with
    | Instr.Def id when is_phi id && not (Instr.Id.Table.mem used id) ->
      Instr.Id.Table.replace used id ();
      let _, phi = Instr.Id.Table.find (Cfg.index cfg) id in
      Array.iter mark phi.Instr.args
    | Instr.Def _ | Instr.Const _ | Instr.Param _ -> ()
  in
  Cfg.iter_instrs cfg (fun _ instr ->
      if instr.Instr.op <> Instr.Phi then Array.iter mark instr.Instr.args);
  List.iter
    (fun label ->
      match (Cfg.block cfg label).Cfg.term with
      | Cfg.Branch (v, _, _) -> mark v
      | Cfg.Jump _ | Cfg.Halt -> ())
    (Cfg.labels cfg);
  let pruned : unit Instr.Id.Table.t = Instr.Id.Table.create 16 in
  List.iter
    (fun label ->
      Cfg.replace_instrs cfg label (fun instrs ->
          List.filter
            (fun (instr : Instr.t) ->
              let keep =
                instr.Instr.op <> Instr.Phi || Instr.Id.Table.mem used instr.Instr.id
              in
              if not keep then Instr.Id.Table.replace pruned instr.Instr.id ();
              keep)
            instrs))
    (Cfg.labels cfg);
  (* 6. Assign SSA names ("j2", ...) by replaying the naming events,
     skipping defs that were pruned, so version numbers are dense. *)
  let versions : (Ident.t, int) Hashtbl.t = Hashtbl.create 16 in
  let names_of : string list Instr.Id.Table.t = Instr.Id.Table.create 64 in
  let name_env : (string, Instr.value) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (x, (v : Instr.value)) ->
      let dangling =
        match v with Instr.Def id -> Instr.Id.Table.mem pruned id | _ -> false
      in
      if not dangling then begin
        let k = 1 + Option.value ~default:0 (Hashtbl.find_opt versions x) in
        Hashtbl.replace versions x k;
        let name = Printf.sprintf "%s%d" (Ident.name x) k in
        (match v with
         | Instr.Def id ->
           let existing =
             Option.value ~default:[] (Instr.Id.Table.find_opt names_of id)
           in
           Instr.Id.Table.replace names_of id (existing @ [ name ])
         | Instr.Const _ | Instr.Param _ -> ());
        Hashtbl.replace name_env name v
      end)
    (List.rev !naming_events);
  let loops = Obs.Trace.with_span "pipeline.looptree" (fun () -> Loops.compute cfg dom) in
  { cfg; dom; loops; phi_var; names_of; name_env }

let convert cfg = Obs.Trace.with_span "pipeline.ssa" (fun () -> convert cfg)

(* [of_source src] parses, lowers and converts to SSA in one step. *)
let of_source src =
  convert (Obs.Trace.with_span "pipeline.lower" (fun () -> Lower.lower_source src))

(* [of_program ast] lowers and converts a constructed AST. *)
let of_program p =
  convert (Obs.Trace.with_span "pipeline.lower" (fun () -> Lower.lower p))

(* --- Validation (used by property tests) --- *)

(* [check t] verifies SSA well-formedness; returns the list of violations
   (empty when valid): every phi has one argument per predecessor, every
   non-phi use is dominated by its definition, and every phi argument's
   definition dominates the corresponding predecessor block exit. *)
let check t =
  let cfg = t.cfg in
  let dom = t.dom in
  let preds = Cfg.pred_table cfg in
  let errors = ref [] in
  let err ?loc code fmt =
    Format.kasprintf
      (fun s -> errors := Diag.v ?loc ~code ~origin:"ssa" "%s" s :: !errors)
      fmt
  in
  let block_of id =
    match Instr.Id.Table.find_opt (Cfg.index cfg) id with
    | Some (l, _) -> Some l
    | None -> None
  in
  Cfg.iter_instrs cfg (fun label instr ->
      if not (Dom.is_reachable dom label) then ()
      else
        match instr.Instr.op with
        | Instr.Phi ->
          let loc = Diag.Instr instr.Instr.id in
          let arity = Array.length instr.Instr.args in
          let npreds = List.length preds.(label) in
          if arity <> npreds then
            err ~loc "SSA001" "phi %a in %a has %d args but %d preds" Instr.Id.pp
              instr.Instr.id Label.pp label arity npreds
          else
            List.iteri
              (fun i p ->
                match instr.Instr.args.(i) with
                | Instr.Def d -> (
                  match block_of d with
                  | Some db ->
                    if Dom.is_reachable dom p && not (Dom.dominates dom db p) then
                      err ~loc "SSA002"
                        "phi %a arg %d: def %a does not dominate pred %a"
                        Instr.Id.pp instr.Instr.id i Instr.Id.pp d Label.pp p
                  | None ->
                    err ~loc "SSA003" "phi %a arg %d: dangling def %a" Instr.Id.pp
                      instr.Instr.id i Instr.Id.pp d)
                | Instr.Const _ | Instr.Param _ -> ())
              preds.(label)
        | _ ->
          Array.iter
            (fun (v : Instr.value) ->
              let loc = Diag.Instr instr.Instr.id in
              match v with
              | Instr.Def d -> (
                match block_of d with
                | Some db ->
                  if not (Dom.dominates dom db label) then
                    err ~loc "SSA004" "use of %a in %a not dominated by its def in %a"
                      Instr.Id.pp d Label.pp label Label.pp db
                | None ->
                  err ~loc "SSA005" "dangling operand %a in %a" Instr.Id.pp d
                    Label.pp label)
              | Instr.Const _ | Instr.Param _ -> ())
            instr.Instr.args);
  List.rev !errors

(* --- Printing --- *)

let pp fmt t =
  let cfg = t.cfg in
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun label ->
      let b = Cfg.block cfg label in
      let header =
        match b.Cfg.loop_name with
        | Some name -> Printf.sprintf " ; loop %s" name
        | None -> ""
      in
      Format.fprintf fmt "@[<v 2>%a:%s@," Label.pp label header;
      List.iter
        (fun (instr : Instr.t) ->
          let name = primary_name t instr.Instr.id in
          let pp_args fmt args =
            Format.pp_print_array
              ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
              (pp_value t) fmt args
          in
          (match instr.Instr.op with
           | Instr.Aload x ->
             Format.fprintf fmt "%s = %a(%a)" name Ident.pp x pp_args instr.Instr.args
           | Instr.Astore x ->
             Format.fprintf fmt "%s = store %a(...) %a" name Ident.pp x pp_args
               instr.Instr.args
           | op ->
             Format.fprintf fmt "%s = %s %a" name (Instr.op_name op) pp_args
               instr.Instr.args);
          Format.pp_print_cut fmt ())
        b.Cfg.instrs;
      (match b.Cfg.term with
       | Cfg.Branch (v, l1, l2) ->
         Format.fprintf fmt "branch %a ? %a : %a" (pp_value t) v Label.pp l1 Label.pp l2
       | Cfg.Jump l -> Format.fprintf fmt "jump %a" Label.pp l
       | Cfg.Halt -> Format.pp_print_string fmt "halt");
      Format.fprintf fmt "@]@,")
    (Cfg.labels cfg);
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t
