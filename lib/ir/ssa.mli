(** SSA construction over the tuple IR (Cytron et al.): phi placement on
    iterated dominance frontiers, renaming by a dominator-tree walk,
    dead-phi pruning, and the human-readable SSA names ("j2", "k3", ...)
    that match the paper's figures.

    After conversion, scalar Load/Store instructions are gone: every use
    refers directly to its unique reaching definition, a literal, or a
    symbolic program input [Param x] (a variable read before any
    assignment, rendered "x0"). *)

type t

val cfg : t -> Cfg.t
val dom : t -> Dom.t
val loops : t -> Loops.t

(** [phi_var t id] is the source variable a phi merges. *)
val phi_var : t -> Instr.Id.t -> Ident.t option

(** [names_of t id] is the SSA names assigned to a def (a def stored to
    several variables carries several names). *)
val names_of : t -> Instr.Id.t -> string list

(** [value_of_name t name] resolves an SSA name ("j2"), a bare variable
    name ("n" — the program input), or "x0" (input for x). *)
val value_of_name : t -> string -> Instr.value option

(** [def_of_name t name] is the instruction id behind an SSA name, when
    the name denotes an instruction result. *)
val def_of_name : t -> string -> Instr.Id.t option

(** [primary_name t id] is the first SSA name of a def, or "%id". *)
val primary_name : t -> Instr.Id.t -> string

val pp_value : t -> Format.formatter -> Instr.value -> unit

(** [convert cfg] converts in place (the CFG is mutated) and returns the
    SSA view. *)
val convert : Cfg.t -> t

val of_source : string -> t
val of_program : Ast.program -> t

(** [check t] verifies SSA well-formedness (phi arity = predecessor
    count; every use dominated by its definition; phi arguments dominate
    their predecessor edges); returns structured violations ([SSA001]..
    [SSA005]), empty when valid. *)
val check : t -> Diag.t list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
