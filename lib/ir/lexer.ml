(* Hand-written lexer for the loop language (no menhir/ocamllex in the
   sealed environment). Tracks line/column for error reporting. *)

type token =
  | INT of int
  | IDENT of string
  | KW_LOOP
  | KW_ENDLOOP
  | KW_FOR
  | KW_TO
  | KW_BY
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_ENDIF
  | KW_EXIT
  | KW_ARRAY
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CARET
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | ASSIGN (* = *)
  | EQ (* == *)
  | NE (* != *)
  | LT
  | LE
  | GT
  | GE
  | UNKNOWN_COND (* ?? *)
  | EOF

type pos = { line : int; col : int }

type located = { token : token; pos : pos }

exception Lex_error of string * pos

let token_to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KW_LOOP -> "loop"
  | KW_ENDLOOP -> "endloop"
  | KW_FOR -> "for"
  | KW_TO -> "to"
  | KW_BY -> "by"
  | KW_IF -> "if"
  | KW_THEN -> "then"
  | KW_ELSE -> "else"
  | KW_ENDIF -> "endif"
  | KW_EXIT -> "exit"
  | KW_ARRAY -> "array"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | CARET -> "^"
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | COLON -> ":"
  | ASSIGN -> "="
  | EQ -> "=="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | UNKNOWN_COND -> "??"
  | EOF -> "<eof>"

let keyword_of_string = function
  | "loop" -> Some KW_LOOP
  | "endloop" -> Some KW_ENDLOOP
  | "for" -> Some KW_FOR
  | "to" -> Some KW_TO
  | "by" -> Some KW_BY
  | "if" -> Some KW_IF
  | "then" -> Some KW_THEN
  | "else" -> Some KW_ELSE
  | "endif" -> Some KW_ENDIF
  | "exit" -> Some KW_EXIT
  | "array" -> Some KW_ARRAY
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

(* [tokenize src] is the token list for [src], each with its position.
   Comments run from '#' (or "//") to end of line. *)
let tokenize src =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let tokens = ref [] in
  let here () = { line = !line; col = !col } in
  let advance () =
    if !i < n && src.[!i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col;
    incr i
  in
  let emit token pos = tokens := { token; pos } :: !tokens in
  while !i < n do
    let c = src.[!i] in
    let pos = here () in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '#' || (c = '/' && !i + 1 < n && src.[!i + 1] = '/') then begin
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        advance ()
      done;
      let text = String.sub src start (!i - start) in
      match int_of_string_opt text with
      | Some v -> emit (INT v) pos
      | None -> raise (Lex_error ("integer literal too large: " ^ text, pos))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      let text = String.sub src start (!i - start) in
      match keyword_of_string (String.lowercase_ascii text) with
      | Some kw -> emit kw pos
      | None -> emit (IDENT text) pos
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some "==" ->
        advance ();
        advance ();
        emit EQ pos
      | Some "!=" | Some "<>" ->
        advance ();
        advance ();
        emit NE pos
      | Some "<=" ->
        advance ();
        advance ();
        emit LE pos
      | Some ">=" ->
        advance ();
        advance ();
        emit GE pos
      | Some "??" ->
        advance ();
        advance ();
        emit UNKNOWN_COND pos
      | _ ->
        let simple =
          match c with
          | '+' -> Some PLUS
          | '-' -> Some MINUS
          | '*' -> Some STAR
          | '/' -> Some SLASH
          | '^' -> Some CARET
          | '(' -> Some LPAREN
          | ')' -> Some RPAREN
          | ',' -> Some COMMA
          | ':' -> Some COLON
          | '=' -> Some ASSIGN
          | '<' -> Some LT
          | '>' -> Some GT
          | _ -> None
        in
        (match simple with
         | Some t ->
           advance ();
           emit t pos
         | None ->
           raise (Lex_error (Printf.sprintf "unexpected character %C" c, pos)))
    end
  done;
  emit EOF (here ());
  List.rev !tokens
