(* Analysis units: the partition of a program's top-level statement list
   into loop nests and residual straight-line runs.

   The paper's classification walk is already per-loop; the service
   layer's incremental re-analysis needs a stable notion of "the piece
   of the program a cached artifact covers". A unit is either one
   top-level statement that contains a loop (a [Nest] — usually a
   single `L: loop ... endloop` nest, but an `if` wrapping loops counts
   too and may carry several outermost loops), or a maximal run of
   loop-free top-level statements (a [Straight] unit). Units partition
   the statement list in order, so unit k's loops are exactly the next
   [outer_loops] roots of the loop forest. *)

type kind = Nest | Straight

type unit_ = {
  index : int;
  kind : kind;
  first : int; (* index of the first top-level stmt (0-based) *)
  last : int; (* inclusive *)
  stmts : Ast.stmt list;
  outer_loops : int; (* syntactic count of outermost loops in the slice *)
  free : string list; (* scalars read before any local write, sorted *)
  defined : string list; (* scalars written, sorted *)
  arrays : string list; (* arrays loaded or stored, sorted *)
}

let kind_to_string = function Nest -> "nest" | Straight -> "straight"

(* -- syntactic loop counting (outermost only) -- *)

let rec stmt_outer_loops = function
  | Ast.Loop _ | Ast.For _ -> 1
  | Ast.If (_, t, e) ->
    List.fold_left (fun n s -> n + stmt_outer_loops s) 0 (t @ e)
  | Ast.Assign _ | Ast.Astore _ | Ast.Exit_if _ -> 0

let stmt_has_loop s = stmt_outer_loops s > 0

(* -- the variable interface -- *)

module S = Set.Make (String)

type iface = { mutable reads : S.t; mutable writes : S.t; mutable arrs : S.t }

let rec expr_reads i = function
  | Ast.Int _ -> ()
  | Ast.Var x -> if not (S.mem (Ident.name x) i.writes) then i.reads <- S.add (Ident.name x) i.reads
  | Ast.Aref (a, idx) ->
    i.arrs <- S.add (Ident.name a) i.arrs;
    List.iter (expr_reads i) idx
  | Ast.Binop (_, a, b) ->
    expr_reads i a;
    expr_reads i b
  | Ast.Neg a -> expr_reads i a

let cond_reads i = function
  | Ast.Cmp (_, a, b) ->
    expr_reads i a;
    expr_reads i b
  | Ast.Unknown -> ()

(* A loop body's reads all happen "before" its writes from the outside:
   a loop-carried variable needs an incoming value, so every variable
   read anywhere in the body that the unit has not yet written counts as
   free. [collect_reads] gathers reads ignoring write order; writes are
   folded in afterwards. *)
let rec collect_reads i = function
  | Ast.Assign (_, e) -> expr_reads i e
  | Ast.Astore (a, idx, e) ->
    i.arrs <- S.add (Ident.name a) i.arrs;
    List.iter (expr_reads i) idx;
    expr_reads i e
  | Ast.If (c, t, e) ->
    cond_reads i c;
    List.iter (collect_reads i) (t @ e)
  | Ast.Loop (_, body) -> List.iter (collect_reads i) body
  | Ast.For { lo; hi; body; _ } ->
    expr_reads i lo;
    expr_reads i hi;
    List.iter (collect_reads i) body
  | Ast.Exit_if c -> cond_reads i c

let rec collect_writes i = function
  | Ast.Assign (x, _) -> i.writes <- S.add (Ident.name x) i.writes
  | Ast.Astore (a, _, _) -> i.arrs <- S.add (Ident.name a) i.arrs
  | Ast.If (_, t, e) -> List.iter (collect_writes i) (t @ e)
  | Ast.Loop (_, body) -> List.iter (collect_writes i) body
  | Ast.For { var; body; _ } ->
    i.writes <- S.add (Ident.name var) i.writes;
    List.iter (collect_writes i) body
  | Ast.Exit_if _ -> ()

let rec walk_stmt i s =
  match s with
  | Ast.Assign (x, e) ->
    expr_reads i e;
    i.writes <- S.add (Ident.name x) i.writes
  | Ast.Astore _ -> collect_reads i s
  | Ast.If (c, t, e) ->
    cond_reads i c;
    (* Both branches see the same incoming writes; their own writes
       merge afterwards (flow-insensitive but read-before-write exact
       for straight-line code). *)
    List.iter (walk_stmt i) t;
    List.iter (walk_stmt i) e
  | Ast.Loop _ | Ast.For _ ->
    collect_reads i s;
    collect_writes i s
  | Ast.Exit_if c -> cond_reads i c

let interface stmts =
  let i = { reads = S.empty; writes = S.empty; arrs = S.empty } in
  List.iter (walk_stmt i) stmts;
  (S.elements i.reads, S.elements i.writes, S.elements i.arrs)

(* -- the partition -- *)

let make_unit ~index ~kind ~first ~last stmts =
  let free, defined, arrays = interface stmts in
  {
    index;
    kind;
    first;
    last;
    stmts;
    outer_loops = List.fold_left (fun n s -> n + stmt_outer_loops s) 0 stmts;
    free;
    defined;
    arrays;
  }

let partition (p : Ast.program) : unit_ list =
  let units = ref [] in
  let straight = ref [] (* reversed, with indices *) in
  let next_index () = List.length !units in
  let flush_straight () =
    match List.rev !straight with
    | [] -> ()
    | (first_idx, _) :: _ as run ->
      let stmts = List.map snd run in
      let last_idx = fst (List.hd !straight) in
      units :=
        make_unit ~index:(next_index ()) ~kind:Straight ~first:first_idx
          ~last:last_idx stmts
        :: !units;
      straight := []
  in
  List.iteri
    (fun idx s ->
      if stmt_has_loop s then begin
        flush_straight ();
        units :=
          make_unit ~index:(next_index ()) ~kind:Nest ~first:idx ~last:idx [ s ]
          :: !units
      end
      else straight := (idx, s) :: !straight)
    p.Ast.stmts;
  flush_straight ();
  List.rev !units

(* The unit's slice of the source, in the parser's canonical rendering
   (parse–print–parse stable), so two textually different but
   structurally identical slices digest equally. *)
(* Unit digests exclude declarations: they never affect a nest's
   classification. *)
let source_slice u = Ast.to_string { Ast.decls = []; stmts = u.stmts }

let pp fmt u =
  Format.fprintf fmt "unit %d %-8s stmts %d-%d loops=%d" u.index
    (kind_to_string u.kind) u.first u.last u.outer_loops;
  if u.free <> [] then Format.fprintf fmt " free=%s" (String.concat "," u.free);
  if u.defined <> [] then
    Format.fprintf fmt " defines=%s" (String.concat "," u.defined);
  if u.arrays <> [] then
    Format.fprintf fmt " arrays=%s" (String.concat "," u.arrays)

let to_string u = Format.asprintf "%a" pp u
