(* Recursive-descent parser for the loop language.

   Grammar (labels on loops are optional; unlabeled loops get L1, L2, ...
   in source order):

     program  ::= decl* stmt*
     decl     ::= 'array' IDENT '(' extent (',' extent)* ')'
     extent   ::= ['-'] INT [':' ['-'] INT]      (a bare "n" means 1:n)
     stmt     ::= [IDENT ':'] loopstmt | simple
     loopstmt ::= 'loop' stmt* 'endloop'
               |  'for' IDENT '=' expr 'to' expr ['by' ['-'] INT] 'loop'
                    stmt* 'endloop'
     simple   ::= IDENT '=' expr
               |  IDENT '(' exprs ')' '=' expr
               |  'if' cond 'then' stmt* ['else' stmt*] 'endif'
               |  'if' cond 'exit'
               |  'exit'
     cond     ::= expr relop expr | '??'
     expr     ::= term (('+'|'-') term)*
     term     ::= unary (('*'|'/') unary)*
     unary    ::= '-' unary | power
     power    ::= atom ['^' unary]
     atom     ::= INT | IDENT | IDENT '(' exprs ')' | '(' expr ')' *)

exception Parse_error of string * Lexer.pos

type state = { mutable toks : Lexer.located list }

let peek st =
  match st.toks with
  | [] -> { Lexer.token = Lexer.EOF; pos = { line = 0; col = 0 } }
  | t :: _ -> t

let advance st =
  match st.toks with
  | [] -> ()
  | _ :: rest -> st.toks <- rest

let error st msg = raise (Parse_error (msg, (peek st).pos))

let expect st token =
  let t = peek st in
  if t.token = token then advance st
  else
    error st
      (Printf.sprintf "expected '%s' but found '%s'"
         (Lexer.token_to_string token)
         (Lexer.token_to_string t.token))

let expect_ident st =
  match (peek st).token with
  | Lexer.IDENT s ->
    advance st;
    s
  | t -> error st (Printf.sprintf "expected identifier, found '%s'" (Lexer.token_to_string t))

let fresh_label =
  let make counter () =
    incr counter;
    "L" ^ string_of_int !counter
  in
  make

let rec parse_expr st =
  let lhs = parse_term st in
  parse_expr_rest st lhs

and parse_expr_rest st lhs =
  match (peek st).token with
  | Lexer.PLUS ->
    advance st;
    let rhs = parse_term st in
    parse_expr_rest st (Ast.Binop (Ops.Add, lhs, rhs))
  | Lexer.MINUS ->
    advance st;
    let rhs = parse_term st in
    parse_expr_rest st (Ast.Binop (Ops.Sub, lhs, rhs))
  | _ -> lhs

and parse_term st =
  let lhs = parse_unary st in
  parse_term_rest st lhs

and parse_term_rest st lhs =
  match (peek st).token with
  | Lexer.STAR ->
    advance st;
    let rhs = parse_unary st in
    parse_term_rest st (Ast.Binop (Ops.Mul, lhs, rhs))
  | Lexer.SLASH ->
    advance st;
    let rhs = parse_unary st in
    parse_term_rest st (Ast.Binop (Ops.Div, lhs, rhs))
  | _ -> lhs

and parse_unary st =
  match (peek st).token with
  | Lexer.MINUS ->
    advance st;
    Ast.Neg (parse_unary st)
  | _ -> parse_power st

and parse_power st =
  let base = parse_atom st in
  match (peek st).token with
  | Lexer.CARET ->
    advance st;
    let e = parse_unary st in
    Ast.Binop (Ops.Exp, base, e)
  | _ -> base

and parse_atom st =
  match (peek st).token with
  | Lexer.INT n ->
    advance st;
    Ast.Int n
  | Lexer.IDENT name ->
    advance st;
    (match (peek st).token with
     | Lexer.LPAREN ->
       advance st;
       let idx = parse_exprs st in
       expect st Lexer.RPAREN;
       Ast.Aref (Ident.of_string name, idx)
     | _ -> Ast.Var (Ident.of_string name))
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    e
  | t -> error st (Printf.sprintf "expected expression, found '%s'" (Lexer.token_to_string t))

and parse_exprs st =
  let first = parse_expr st in
  match (peek st).token with
  | Lexer.COMMA ->
    advance st;
    first :: parse_exprs st
  | _ -> [ first ]

let parse_cond st =
  match (peek st).token with
  | Lexer.UNKNOWN_COND ->
    advance st;
    Ast.Unknown
  | _ ->
    let lhs = parse_expr st in
    let op =
      match (peek st).token with
      | Lexer.LT -> Ops.Lt
      | Lexer.LE -> Ops.Le
      | Lexer.GT -> Ops.Gt
      | Lexer.GE -> Ops.Ge
      | Lexer.EQ -> Ops.Eq
      | Lexer.NE -> Ops.Ne
      | t ->
        error st
          (Printf.sprintf "expected comparison operator, found '%s'"
             (Lexer.token_to_string t))
    in
    advance st;
    let rhs = parse_expr st in
    Ast.Cmp (op, lhs, rhs)

(* Statements that end a statement list. *)
let ends_block = function
  | Lexer.KW_ENDLOOP | Lexer.KW_ENDIF | Lexer.KW_ELSE | Lexer.EOF -> true
  | _ -> false

let always_true = Ast.Cmp (Ops.Eq, Ast.Int 0, Ast.Int 0)

let rec parse_stmts st next_label =
  if ends_block (peek st).token then []
  else begin
    let s = parse_stmt st next_label in
    s :: parse_stmts st next_label
  end

and parse_stmt st next_label =
  match (peek st).token with
  | Lexer.IDENT name -> begin
    advance st;
    match (peek st).token with
    | Lexer.COLON ->
      (* A loop label: "L7: loop ..." or "L9: for ...". *)
      advance st;
      parse_labeled_loop st next_label (Some name)
    | Lexer.ASSIGN ->
      advance st;
      let e = parse_expr st in
      Ast.Assign (Ident.of_string name, e)
    | Lexer.LPAREN ->
      advance st;
      let idx = parse_exprs st in
      expect st Lexer.RPAREN;
      expect st Lexer.ASSIGN;
      let e = parse_expr st in
      Ast.Astore (Ident.of_string name, idx, e)
    | t ->
      error st
        (Printf.sprintf "expected ':', '=' or '(' after identifier, found '%s'"
           (Lexer.token_to_string t))
  end
  | Lexer.KW_LOOP | Lexer.KW_FOR -> parse_labeled_loop st next_label None
  | Lexer.KW_IF -> begin
    advance st;
    let c = parse_cond st in
    match (peek st).token with
    | Lexer.KW_EXIT ->
      advance st;
      Ast.Exit_if c
    | Lexer.KW_THEN ->
      advance st;
      let then_branch = parse_stmts st next_label in
      let else_branch =
        match (peek st).token with
        | Lexer.KW_ELSE ->
          advance st;
          parse_stmts st next_label
        | _ -> []
      in
      expect st Lexer.KW_ENDIF;
      Ast.If (c, then_branch, else_branch)
    | t ->
      error st
        (Printf.sprintf "expected 'then' or 'exit' after condition, found '%s'"
           (Lexer.token_to_string t))
  end
  | Lexer.KW_EXIT ->
    advance st;
    Ast.Exit_if always_true
  | t -> error st (Printf.sprintf "expected statement, found '%s'" (Lexer.token_to_string t))

and parse_labeled_loop st next_label label =
  let name = match label with Some n -> n | None -> next_label () in
  match (peek st).token with
  | Lexer.KW_LOOP ->
    advance st;
    let body = parse_stmts st next_label in
    expect st Lexer.KW_ENDLOOP;
    Ast.Loop (name, body)
  | Lexer.KW_FOR ->
    advance st;
    let var = expect_ident st in
    expect st Lexer.ASSIGN;
    let lo = parse_expr st in
    expect st Lexer.KW_TO;
    let hi = parse_expr st in
    let step =
      match (peek st).token with
      | Lexer.KW_BY -> begin
        advance st;
        let sign =
          match (peek st).token with
          | Lexer.MINUS ->
            advance st;
            -1
          | _ -> 1
        in
        match (peek st).token with
        | Lexer.INT n when n <> 0 ->
          advance st;
          sign * n
        | Lexer.INT _ -> error st "loop step must be non-zero"
        | t ->
          error st
            (Printf.sprintf "expected integer step, found '%s'"
               (Lexer.token_to_string t))
      end
      | _ -> 1
    in
    expect st Lexer.KW_LOOP;
    let body = parse_stmts st next_label in
    expect st Lexer.KW_ENDLOOP;
    Ast.For { name; var = Ident.of_string var; lo; hi; step; body }
  | t ->
    error st
      (Printf.sprintf "expected 'loop' or 'for' after label, found '%s'"
         (Lexer.token_to_string t))

(* [parse src] parses a whole program.
   @raise Lexer.Lex_error or Parse_error on malformed input. *)
(* One inclusive extent: INT, -INT, INT:INT, ... A bare "n" is 1:n. *)
let parse_extent st =
  let parse_int () =
    let sign =
      match (peek st).token with
      | Lexer.MINUS ->
        advance st;
        -1
      | _ -> 1
    in
    match (peek st).token with
    | Lexer.INT n ->
      advance st;
      sign * n
    | t ->
      error st
        (Printf.sprintf "expected integer extent, found '%s'"
           (Lexer.token_to_string t))
  in
  let a = parse_int () in
  match (peek st).token with
  | Lexer.COLON ->
    advance st;
    let b = parse_int () in
    if a > b then error st (Printf.sprintf "empty extent %d:%d" a b);
    (a, b)
  | _ ->
    if a < 1 then error st (Printf.sprintf "empty extent 1:%d" a);
    (1, a)

let parse_decl st =
  expect st Lexer.KW_ARRAY;
  let name = expect_ident st in
  expect st Lexer.LPAREN;
  let rec dims () =
    let d = parse_extent st in
    match (peek st).token with
    | Lexer.COMMA ->
      advance st;
      d :: dims ()
    | _ -> [ d ]
  in
  let dims = dims () in
  expect st Lexer.RPAREN;
  { Ast.array = Ident.of_string name; dims }

let rec parse_decls st =
  match (peek st).token with
  | Lexer.KW_ARRAY ->
    let d = parse_decl st in
    d :: parse_decls st
  | _ -> []

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let counter = ref 0 in
  let next_label = fresh_label counter in
  let decls = parse_decls st in
  let stmts = parse_stmts st next_label in
  expect st Lexer.EOF;
  { Ast.decls; stmts }

let parse_exn = parse

(* [parse_result src] is a [result]-returning variant for CLI use. *)
let parse_result src =
  match parse src with
  | p -> Ok p
  | exception Lexer.Lex_error (msg, pos) ->
    Error (Printf.sprintf "%d:%d: lexical error: %s" pos.line pos.col msg)
  | exception Parse_error (msg, pos) ->
    Error (Printf.sprintf "%d:%d: parse error: %s" pos.line pos.col msg)
