(** Hand-written lexer for the loop language.

    Comments run from ['#'] or ["//"] to end of line; keywords are
    case-insensitive; ["<>"] is accepted as a synonym for ["!="]. *)

type token =
  | INT of int
  | IDENT of string
  | KW_LOOP
  | KW_ENDLOOP
  | KW_FOR
  | KW_TO
  | KW_BY
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_ENDIF
  | KW_EXIT
  | KW_ARRAY
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CARET
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | ASSIGN  (** [=] *)
  | EQ  (** [==] *)
  | NE  (** [!=] or [<>] *)
  | LT
  | LE
  | GT
  | GE
  | UNKNOWN_COND  (** [??] *)
  | EOF

type pos = { line : int; col : int }

type located = { token : token; pos : pos }

exception Lex_error of string * pos

val token_to_string : token -> string

(** [tokenize src] is the token stream, ending with [EOF].
    @raise Lex_error on malformed input. *)
val tokenize : string -> located list
