(* Lowering from the structured AST to the tuple-IR CFG.

   Statements lower in source order. Loops produce:

     preheader:  (code before the loop)         jump header
     header:     (start of loop body; phis will be placed here)
     ...body...
     latch:      (end of body)                  jump header
     after:      (code after the loop)

   'for' loops desugar per the paper's §5.2 shape: the bound is evaluated
   once into a compiler temp, the exit test sits at the top of the body,
   and the increment at the bottom, so the loop is countable:

     i = lo; limit = hi
     loop
       if i > limit exit      (or '<' for negative step)
       ...body...
       i = i + step
     endloop *)

type ctx = {
  cfg : Cfg.t;
  mutable current : Label.t option; (* None when the block was terminated *)
  mutable exits : Label.t list; (* innermost-first loop exit targets *)
  mutable limits : int; (* 'for'-loop bound temps minted so far *)
}

let emit ctx op args =
  match ctx.current with
  | None ->
    (* Unreachable code (after an unconditional exit): drop it. *)
    Instr.Const 0
  | Some label -> Instr.Def (Cfg.append ctx.cfg label op args).Instr.id

let rec lower_expr ctx (e : Ast.expr) : Instr.value =
  match e with
  | Ast.Int n -> Instr.Const n
  | Ast.Var x -> emit ctx (Instr.Load x) [||]
  | Ast.Aref (a, idx) ->
    let idx = List.map (lower_expr ctx) idx in
    emit ctx (Instr.Aload a) (Array.of_list idx)
  | Ast.Binop (op, a, b) ->
    let va = lower_expr ctx a in
    let vb = lower_expr ctx b in
    emit ctx (Instr.Binop op) [| va; vb |]
  | Ast.Neg a ->
    let va = lower_expr ctx a in
    emit ctx Instr.Neg [| va |]

let lower_cond ctx (c : Ast.cond) : Instr.value =
  match c with
  | Ast.Cmp (op, a, b) ->
    let va = lower_expr ctx a in
    let vb = lower_expr ctx b in
    emit ctx (Instr.Relop op) [| va; vb |]
  | Ast.Unknown -> emit ctx Instr.Rand [||]

let terminate ctx term =
  match ctx.current with
  | None -> ()
  | Some label ->
    Cfg.set_term ctx.cfg label term;
    ctx.current <- None

let start_block ctx label = ctx.current <- Some label

(* Fresh compiler temps for 'for'-loop bounds; '$' cannot appear in source
   identifiers so there is no capture. The counter lives in the lowering
   context: two lowerings of the same program mint identical names, so
   reports are reproducible however many times a process re-lowers. *)
let limit_temp ctx name =
  ctx.limits <- ctx.limits + 1;
  Ident.of_string (Printf.sprintf "%s$limit%d" name ctx.limits)

let rec lower_stmt ctx (s : Ast.stmt) =
  match s with
  | Ast.Assign (x, e) ->
    let v = lower_expr ctx e in
    ignore (emit ctx (Instr.Store x) [| v |])
  | Ast.Astore (a, idx, e) ->
    let idx = List.map (lower_expr ctx) idx in
    let v = lower_expr ctx e in
    ignore (emit ctx (Instr.Astore a) (Array.of_list (idx @ [ v ])))
  | Ast.If (c, then_s, else_s) ->
    let cond = lower_cond ctx c in
    let bt = Cfg.add_block ctx.cfg in
    let be = Cfg.add_block ctx.cfg in
    let join = Cfg.add_block ctx.cfg in
    terminate ctx (Cfg.Branch (cond, bt, be));
    start_block ctx bt;
    lower_stmts ctx then_s;
    terminate ctx (Cfg.Jump join);
    start_block ctx be;
    lower_stmts ctx else_s;
    terminate ctx (Cfg.Jump join);
    start_block ctx join
  | Ast.Exit_if c ->
    let cond = lower_cond ctx c in
    (match ctx.exits with
     | [] -> failwith "Lower: 'exit' outside of any loop"
     | exit_target :: _ ->
       let cont = Cfg.add_block ctx.cfg in
       terminate ctx (Cfg.Branch (cond, exit_target, cont));
       start_block ctx cont)
  | Ast.Loop (name, body) ->
    let header = Cfg.add_block ctx.cfg in
    (Cfg.block ctx.cfg header).Cfg.loop_name <- Some name;
    let after = Cfg.add_block ctx.cfg in
    terminate ctx (Cfg.Jump header);
    start_block ctx header;
    ctx.exits <- after :: ctx.exits;
    lower_stmts ctx body;
    ctx.exits <- List.tl ctx.exits;
    terminate ctx (Cfg.Jump header);
    start_block ctx after
  | Ast.For { name; var; lo; hi; step; body } ->
    let vlo = lower_expr ctx lo in
    ignore (emit ctx (Instr.Store var) [| vlo |]);
    let limit = limit_temp ctx name in
    let vhi = lower_expr ctx hi in
    ignore (emit ctx (Instr.Store limit) [| vhi |]);
    let exit_op = if step > 0 then Ops.Gt else Ops.Lt in
    let desugared_body =
      Ast.Exit_if (Ast.Cmp (exit_op, Ast.Var var, Ast.Var limit))
      :: body
      @ [ Ast.Assign (var, Ast.Binop (Ops.Add, Ast.Var var, Ast.Int step)) ]
    in
    lower_stmt ctx (Ast.Loop (name, desugared_body))

and lower_stmts ctx stmts = List.iter (lower_stmt ctx) stmts

(* [lower program] builds the CFG for a whole program. *)
let lower (p : Ast.program) : Cfg.t =
  let cfg = Cfg.create () in
  let ctx = { cfg; current = Some (Cfg.entry cfg); exits = []; limits = 0 } in
  lower_stmts ctx p.Ast.stmts;
  terminate ctx Cfg.Halt;
  cfg

(* [lower_source src] parses and lowers in one step. *)
let lower_source src = lower (Parser.parse src)
