(* Surface abstract syntax for the small structured loop language used
   throughout the paper's examples (L1..L24, Figures 1-10).

   The language is deliberately tiny: integer scalars, one-dimensional
   arrays, structured loops, and conditionals. An opaque boolean [Unknown]
   condition ("??" in the concrete syntax) models the paper's "if exp
   then" branches whose predicate the analysis must not look into. *)

type expr =
  | Int of int
  | Var of Ident.t
  | Aref of Ident.t * expr list (* A(e) or A(e1, e2, ...) *)
  | Binop of Ops.binop * expr * expr
  | Neg of expr

type cond =
  | Cmp of Ops.relop * expr * expr
  | Unknown (* an opaque predicate: "??" *)

type stmt =
  | Assign of Ident.t * expr
  | Astore of Ident.t * expr list * expr (* A(e1,...) = e *)
  | If of cond * stmt list * stmt list
  | Loop of string * stmt list (* loop <name> ... endloop *)
  | For of for_loop
  | Exit_if of cond (* if cond exit: exits the innermost loop *)

and for_loop = {
  name : string; (* loop label, e.g. "L18" *)
  var : Ident.t;
  lo : expr;
  hi : expr;
  step : int; (* constant, non-zero; default 1 *)
  body : stmt list;
}

(* A declared array extent: per-dimension inclusive bounds. A bare
   extent "n" in the concrete syntax means 1..n. *)
type decl = { array : Ident.t; dims : (int * int) list }

type program = { decls : decl list; stmts : stmt list }

let rec pp_expr fmt = function
  | Int n -> Format.pp_print_int fmt n
  | Var v -> Ident.pp fmt v
  | Aref (a, idx) ->
    Format.fprintf fmt "%a(%a)" Ident.pp a
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_expr)
      idx
  | Binop (op, a, b) ->
    Format.fprintf fmt "(%a %s %a)" pp_expr a (Ops.binop_to_string op) pp_expr b
  | Neg e -> Format.fprintf fmt "(-%a)" pp_expr e

let pp_cond fmt = function
  | Cmp (op, a, b) ->
    Format.fprintf fmt "%a %s %a" pp_expr a (Ops.relop_to_string op) pp_expr b
  | Unknown -> Format.pp_print_string fmt "??"

let rec pp_stmt fmt = function
  | Assign (v, e) -> Format.fprintf fmt "@[<h>%a = %a@]" Ident.pp v pp_expr e
  | Astore (a, idx, e) ->
    Format.fprintf fmt "@[<h>%a(%a) = %a@]" Ident.pp a
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_expr)
      idx pp_expr e
  | If (c, t, []) ->
    Format.fprintf fmt "@[<v 2>if %a then@,%a@]@,endif" pp_cond c pp_stmts t
  | If (c, t, e) ->
    Format.fprintf fmt "@[<v 2>if %a then@,%a@]@,@[<v 2>else@,%a@]@,endif"
      pp_cond c pp_stmts t pp_stmts e
  | Loop (name, body) ->
    Format.fprintf fmt "@[<v 2>%s: loop@,%a@]@,endloop" name pp_stmts body
  | For { name; var; lo; hi; step; body } ->
    if step = 1 then
      Format.fprintf fmt "@[<v 2>%s: for %a = %a to %a loop@,%a@]@,endloop" name
        Ident.pp var pp_expr lo pp_expr hi pp_stmts body
    else
      Format.fprintf fmt "@[<v 2>%s: for %a = %a to %a by %d loop@,%a@]@,endloop"
        name Ident.pp var pp_expr lo pp_expr hi step pp_stmts body
  | Exit_if c -> Format.fprintf fmt "@[<h>if %a exit@]" pp_cond c

and pp_stmts fmt stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt fmt stmts

let pp_dim fmt (lo, hi) =
  if lo = 1 then Format.pp_print_int fmt hi
  else Format.fprintf fmt "%d:%d" lo hi

let pp_decl fmt { array; dims } =
  Format.fprintf fmt "@[<h>array %a(%a)@]" Ident.pp array
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_dim)
    dims

let pp_program fmt { decls; stmts } =
  match decls with
  | [] -> Format.fprintf fmt "@[<v>%a@]" pp_stmts stmts
  | _ ->
    Format.fprintf fmt "@[<v>%a@,%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_decl)
      decls pp_stmts stmts

let to_string p = Format.asprintf "%a" pp_program p

(* Convenience constructors for building paper examples in OCaml code. *)
let v name = Var (Ident.of_string name)
let i n = Int n
let ( + ) a b = Binop (Ops.Add, a, b)
let ( - ) a b = Binop (Ops.Sub, a, b)
let ( * ) a b = Binop (Ops.Mul, a, b)
let assign name e = Assign (Ident.of_string name, e)
let aref name idx = Aref (Ident.of_string name, idx)
let astore name idx e = Astore (Ident.of_string name, idx, e)

let for_ name var lo hi ?(step = 1) body =
  For { name; var = Ident.of_string var; lo; hi; step; body }

let decl name dims = { array = Ident.of_string name; dims }
let program ?(decls = []) stmts = { decls; stmts }
