(** Surface abstract syntax for the structured loop language used by the
    paper's examples: integer scalars, multi-dimensional arrays,
    structured loops and conditionals, and an opaque boolean condition
    ("??") that models the paper's "if exp then" branches. *)

type expr =
  | Int of int
  | Var of Ident.t
  | Aref of Ident.t * expr list  (** array read [A(e1, ..., en)] *)
  | Binop of Ops.binop * expr * expr
  | Neg of expr

type cond =
  | Cmp of Ops.relop * expr * expr
  | Unknown  (** the opaque predicate "??" *)

type stmt =
  | Assign of Ident.t * expr
  | Astore of Ident.t * expr list * expr  (** [A(e1,...) = e] *)
  | If of cond * stmt list * stmt list
  | Loop of string * stmt list  (** labelled infinite loop *)
  | For of for_loop
  | Exit_if of cond  (** [if cond exit]: leaves the innermost loop *)

and for_loop = {
  name : string;  (** loop label, e.g. "L18" *)
  var : Ident.t;
  lo : expr;
  hi : expr;
  step : int;  (** constant and non-zero; 1 by default *)
  body : stmt list;
}

type decl = { array : Ident.t; dims : (int * int) list }
(** A declared array: one inclusive [(lo, hi)] bound per dimension.
    Declarations are optional — undeclared arrays are unbounded, and
    bounds-check elimination only reasons about declared ones. *)

type program = { decls : decl list; stmts : stmt list }

val pp_expr : Format.formatter -> expr -> unit
val pp_cond : Format.formatter -> cond -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_stmts : Format.formatter -> stmt list -> unit
val pp_decl : Format.formatter -> decl -> unit
val pp_program : Format.formatter -> program -> unit

(** [to_string p] pretty-prints in the concrete syntax accepted by
    {!Parser.parse} (parse-print-parse is stable). *)
val to_string : program -> string

(** {1 Construction helpers}

    Convenience constructors for building paper examples directly in
    OCaml (used by the test generators). *)

val v : string -> expr
val i : int -> expr
val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val assign : string -> expr -> stmt
val aref : string -> expr list -> expr
val astore : string -> expr list -> expr -> stmt
val for_ : string -> string -> expr -> expr -> ?step:int -> stmt list -> stmt

val decl : string -> (int * int) list -> decl
val program : ?decls:decl list -> stmt list -> program
