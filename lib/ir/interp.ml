(* Reference interpreter for SSA-form programs.

   The interpreter is the testing oracle for the classification passes:
   it executes the CFG directly (phis read their operands on the incoming
   edge, all at once, so rotation patterns like the paper's periodic
   variables behave correctly) and reports every instruction execution to
   an optional listener together with the current iteration number of
   each enclosing loop. Tests compare the listener's observations with
   the closed forms predicted by the classifier. *)

type outcome = Halted | Out_of_fuel

type state = {
  ssa : Ssa.t;
  env : int Instr.Id.Table.t;
  params : Ident.t -> int;
  arrays : (Ident.t * int list, int) Hashtbl.t;
  rand : unit -> bool;
  iters : int array; (* per loop id: 0-based iteration of the header *)
  activations : int array; (* per loop id: how many times it was entered *)
  mutable steps : int;
  mutable outcome : outcome;
}

exception Stop

(* [value st v] is the runtime value of an operand. Instruction results
   must have been computed already (SSA guarantees defs dominate uses). *)
let value st (v : Instr.value) =
  match v with
  | Instr.Const n -> n
  | Instr.Param x -> st.params x
  | Instr.Def id -> (
    match Instr.Id.Table.find_opt st.env id with
    | Some n -> n
    | None -> 0 (* only possible along never-executed phi edges *))

(* [loop_iter st loop_id] is the 0-based iteration count of the loop:
   how many times its header has executed in the current activation,
   minus one. *)
let loop_iter st loop_id = st.iters.(loop_id)

(* [loop_activation st loop_id] counts the loop's activations: entries
   from outside the loop (1-based once entered). *)
let loop_activation st loop_id = st.activations.(loop_id)

let array_get st a idx =
  Option.value ~default:0 (Hashtbl.find_opt st.arrays (a, idx))

let array_set st a idx v = Hashtbl.replace st.arrays (a, idx) v

let exec_instr st (instr : Instr.t) =
  let arg i = value st instr.Instr.args.(i) in
  match instr.Instr.op with
  | Instr.Binop op -> Ops.eval_binop op (arg 0) (arg 1)
  | Instr.Relop op -> if Ops.eval_relop op (arg 0) (arg 1) then 1 else 0
  | Instr.Neg -> -(arg 0)
  | Instr.Rand -> if st.rand () then 1 else 0
  | Instr.Aload a ->
    let idx = Array.to_list (Array.map (value st) instr.Instr.args) in
    array_get st a idx
  | Instr.Astore a ->
    let n = Array.length instr.Instr.args in
    let idx = List.init (n - 1) arg in
    let v = arg (n - 1) in
    array_set st a idx v;
    v
  | Instr.Phi -> invalid_arg "Interp.exec_instr: phi handled at block entry"
  | Instr.Load _ | Instr.Store _ ->
    invalid_arg "Interp.exec_instr: program is not in SSA form"

let run ?(fuel = 100_000) ?(on_instr = fun _ _ _ -> ()) ?(params = fun _ -> 0)
    ?(rand = fun () -> false) ?(arrays = []) (ssa : Ssa.t) =
  let cfg = Ssa.cfg ssa in
  let loops = Ssa.loops ssa in
  let preds = Cfg.pred_table cfg in
  let st =
    {
      ssa;
      env = Instr.Id.Table.create 256;
      params;
      arrays =
        (let h = Hashtbl.create 64 in
         List.iter (fun (key, v) -> Hashtbl.replace h key v) arrays;
         h);
      rand;
      iters = Array.make (Loops.num_loops loops) (-1);
      activations = Array.make (Loops.num_loops loops) 0;
      steps = 0;
      outcome = Halted;
    }
  in
  let charge () =
    st.steps <- st.steps + 1;
    if st.steps > fuel then begin
      st.outcome <- Out_of_fuel;
      raise Stop
    end
  in
  let current = ref (Cfg.entry cfg) in
  let prev = ref None in
  (try
     let continue = ref true in
     while !continue do
       let label = !current in
       let block = Cfg.block cfg label in
       (* Maintain loop iteration counters at loop headers. *)
       (match Loops.innermost loops label with
        | Some lp_id when Label.equal (Loops.loop loops lp_id).Loops.header label ->
          let lp = Loops.loop loops lp_id in
          let from_inside =
            match !prev with
            | Some p -> Label.Set.mem p lp.Loops.blocks
            | None -> false
          in
          if from_inside then st.iters.(lp_id) <- st.iters.(lp_id) + 1
          else begin
            st.iters.(lp_id) <- 0;
            st.activations.(lp_id) <- st.activations.(lp_id) + 1
          end
        | Some _ | None -> ());
       (* Phis first, in parallel, reading edge values. *)
       let phis, rest =
         List.partition (fun i -> i.Instr.op = Instr.Phi) block.Cfg.instrs
       in
       (* A block with no instructions still burns fuel: DCE can empty
          an unobservable infinite loop's body, and fuel charged only
          per instruction would never run out in it. *)
       if phis = [] && rest = [] then charge ();
       (match phis with
        | [] -> ()
        | _ ->
          let pred_index =
            match !prev with
            | None -> invalid_arg "Interp.run: phi in entry block"
            | Some p ->
              let rec find i = function
                | [] -> invalid_arg "Interp.run: phi pred not found"
                | q :: _ when Label.equal q p -> i
                | _ :: rest -> find (i + 1) rest
              in
              find 0 preds.(label)
          in
          let staged =
            List.map
              (fun (phi : Instr.t) ->
                charge ();
                (phi, value st phi.Instr.args.(pred_index)))
              phis
          in
          List.iter
            (fun ((phi : Instr.t), v) ->
              Instr.Id.Table.replace st.env phi.Instr.id v;
              on_instr st phi v)
            staged);
       List.iter
         (fun (instr : Instr.t) ->
           charge ();
           let v = exec_instr st instr in
           Instr.Id.Table.replace st.env instr.Instr.id v;
           on_instr st instr v)
         rest;
       (match block.Cfg.term with
        | Cfg.Jump l ->
          prev := Some label;
          current := l
        | Cfg.Branch (c, l1, l2) ->
          prev := Some label;
          current := (if value st c <> 0 then l1 else l2)
        | Cfg.Halt -> continue := false)
     done
   with Stop -> ());
  st

(* [trace_of ssa ~fuel ~params ~rand targets] runs the program and
   returns, for each target def, the list of (innermost-loop iteration,
   value) observations in execution order. *)
let trace_of ?(fuel = 100_000) ?(params = fun _ -> 0) ?(rand = fun () -> false)
    ?(arrays = []) (ssa : Ssa.t) (targets : Instr.Id.Set.t) =
  let observations : (int * int) list Instr.Id.Table.t = Instr.Id.Table.create 16 in
  let loops = Ssa.loops ssa in
  let cfg = Ssa.cfg ssa in
  let on_instr st (instr : Instr.t) v =
    if Instr.Id.Set.mem instr.Instr.id targets then begin
      let label = Cfg.block_of_instr cfg instr.Instr.id in
      let h =
        match Loops.innermost loops label with
        | Some lp -> loop_iter st lp
        | None -> -1
      in
      let cur =
        Option.value ~default:[] (Instr.Id.Table.find_opt observations instr.Instr.id)
      in
      Instr.Id.Table.replace observations instr.Instr.id ((h, v) :: cur)
    end
  in
  let st = run ~fuel ~on_instr ~params ~rand ~arrays ssa in
  let result =
    Instr.Id.Set.fold
      (fun id acc ->
        let obs =
          List.rev (Option.value ~default:[] (Instr.Id.Table.find_opt observations id))
        in
        Instr.Id.Map.add id obs acc)
      targets Instr.Id.Map.empty
  in
  (st, result)
