(** Analysis units: the partition of a program's top-level statement
    list into loop nests and residual straight-line runs.

    A [Nest] unit is one top-level statement containing at least one
    loop (an [if] wrapping loops counts, and may carry several outermost
    loops); a [Straight] unit is a maximal run of loop-free top-level
    statements. Units partition the statement list in order, so the
    k-th nest unit's outermost loops are exactly the next [outer_loops]
    roots of the loop forest — the property the incremental pipeline
    layer uses to map units onto loop ids (see [Analysis.Pipeline] and
    docs/INCREMENTAL.md). *)

type kind = Nest | Straight

type unit_ = {
  index : int;  (** position in the partition, 0-based *)
  kind : kind;
  first : int;  (** index of the first top-level stmt (0-based) *)
  last : int;  (** inclusive *)
  stmts : Ast.stmt list;  (** the slice itself *)
  outer_loops : int;  (** syntactic count of outermost loops *)
  free : string list;  (** scalars read before any local write, sorted *)
  defined : string list;  (** scalars written by the unit, sorted *)
  arrays : string list;  (** arrays loaded or stored, sorted *)
}

val kind_to_string : kind -> string

(** [partition p] splits [p]'s top-level statements into units, in
    program order. Every statement belongs to exactly one unit. *)
val partition : Ast.program -> unit_ list

(** The unit's slice of the source in the parser's canonical rendering
    (parse–print–parse stable). *)
val source_slice : unit_ -> string

(** [stmt_outer_loops s] counts the outermost loops of one statement
    (loops nested inside other loops are not counted). *)
val stmt_outer_loops : Ast.stmt -> int

val pp : Format.formatter -> unit_ -> unit
val to_string : unit_ -> string
