(* Sign-magnitude arbitrary-precision integers in base 2^30.

   Invariants of the representation:
   - [mag] is little-endian, each limb in [0, base);
   - [mag] has no trailing zero limb (so zero is the empty array);
   - [sign] is 0 iff [mag] is empty, otherwise -1 or 1. *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* Strip trailing zero limbs and normalize the sign of a raw magnitude. *)
let make sign mag =
  let n = Array.length mag in
  let rec top i = if i > 0 && mag.(i - 1) = 0 then top (i - 1) else i in
  let n' = top n in
  if n' = 0 then zero
  else if n' = n then { sign; mag }
  else { sign; mag = Array.sub mag 0 n' }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n < 0 then -1 else 1 in
    (* min_int negation overflows; go through the magnitude limb by limb
       using the still-negative value. *)
    let rec limbs acc n =
      if n = 0 then acc
      else limbs (Stdlib.abs (n mod base) :: acc) (n / base)
    in
    (* [limbs] builds most-significant first; reverse into the array. *)
    let l = limbs [] n in
    let l = List.rev l in
    { sign; mag = Array.of_list l }
  end

let is_zero t = t.sign = 0
let sign t = t.sign

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then mag_compare a.mag b.mag
  else mag_compare b.mag a.mag

let equal a b = compare a b = 0

let hash t =
  Array.fold_left (fun acc limb -> (acc * 31) lxor limb) (t.sign + 7) t.mag

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

(* Magnitude addition: |a| + |b|. *)
let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + Stdlib.max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      !carry + (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0)
    in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  assert (!carry = 0);
  r

(* Magnitude subtraction: |a| - |b|, requires |a| >= |b|. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = (if i < la then a.(i) else 0) - !borrow - (if i < lb then b.(i) else 0) in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (mag_add a.mag b.mag)
  else begin
    match mag_compare a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> make a.sign (mag_sub a.mag b.mag)
    | _ -> make b.sign (mag_sub b.mag a.mag)
  end

let sub a b = add a (neg b)

(* Schoolbook multiplication; limb products fit: (2^30-1)^2 + carries < 2^62. *)
let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let carry = ref 0 in
    let ai = a.(i) in
    for j = 0 to lb - 1 do
      let s = r.(i + j) + (ai * b.(j)) + !carry in
      r.(i + j) <- s land base_mask;
      carry := s lsr base_bits
    done;
    let k = ref (i + lb) in
    while !carry <> 0 do
      let s = r.(!k) + !carry in
      r.(!k) <- s land base_mask;
      carry := s lsr base_bits;
      incr k
    done
  done;
  r

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mag_mul a.mag b.mag)

(* Multiply a magnitude by a single limb (0 <= m < base), in place of a
   general multiply during long division. *)
let mag_mul_limb a m =
  if m = 0 then [||]
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let s = (a.(i) * m) + !carry in
      r.(i) <- s land base_mask;
      carry := s lsr base_bits
    done;
    r.(la) <- !carry;
    r
  end

(* Compare |a| (a slice of length [n] seen as the top of the running
   remainder) against magnitude [b]. *)

(* Long division of magnitudes: returns (quotient, remainder).
   Knuth algorithm D is overkill here; we use a simple base-2^30
   shift-and-subtract refined with a per-step quotient-digit estimate,
   which is O(n*m) like schoolbook and exact. *)
let mag_divmod a b =
  let lb = Array.length b in
  if lb = 0 then raise Division_by_zero;
  if mag_compare a b < 0 then ([||], Array.copy a)
  else if lb = 1 then begin
    (* Fast path: single-limb divisor. *)
    let d = b.(0) in
    let la = Array.length a in
    let q = Array.make la 0 in
    let r = ref 0 in
    for i = la - 1 downto 0 do
      let cur = (!r lsl base_bits) lor a.(i) in
      q.(i) <- cur / d;
      r := cur mod d
    done;
    (q, if !r = 0 then [||] else [| !r |])
  end
  else begin
    let la = Array.length a in
    let q = Array.make (la - lb + 1) 0 in
    (* Running remainder, little-endian, at most lb+1 significant limbs. *)
    let rem = Array.make (lb + 1) 0 in
    let rem_len = ref 0 in
    (* rem := rem * base + limb *)
    let rem_push limb =
      for i = !rem_len downto 1 do
        rem.(i) <- rem.(i - 1)
      done;
      rem.(0) <- limb;
      incr rem_len;
      while !rem_len > 0 && rem.(!rem_len - 1) = 0 do
        decr rem_len
      done
    in
    let rem_compare_b () =
      if !rem_len <> lb then Stdlib.compare !rem_len lb
      else begin
        let rec go i =
          if i < 0 then 0
          else if rem.(i) <> b.(i) then Stdlib.compare rem.(i) b.(i)
          else go (i - 1)
        in
        go (lb - 1)
      end
    in
    (* The divisor is not normalized (its top limb may be as small as 1),
       so the classic top-limb estimate [top2 / b_top] can overshoot the
       true quotient digit by a factor of up to [base / b_top] — a
       decrement-by-one correction is O(base) in the worst case, not
       O(1). Binary-search the exact digit under that upper bound
       instead: O(base_bits) probes, one limb-multiply each. *)
    let b_top = b.(lb - 1) in
    for i = la - 1 downto 0 do
      rem_push a.(i);
      if rem_compare_b () >= 0 then begin
        let top2 =
          if !rem_len > lb then ((rem.(lb) lsl base_bits) lor rem.(lb - 1))
          else rem.(lb - 1)
        in
        (* Is d * b <= rem ? *)
        let fits d =
          let prod = mag_mul_limb b d in
          let lp =
            let n = Array.length prod in
            let rec top i = if i > 0 && prod.(i - 1) = 0 then top (i - 1) else i in
            top n
          in
          if lp <> !rem_len then lp < !rem_len
          else begin
            let rec go i =
              if i < 0 then true
              else if prod.(i) <> rem.(i) then prod.(i) < rem.(i)
              else go (i - 1)
            in
            go (lp - 1)
          end
        in
        (* rem >= b, so digit 1 always fits; top2/b_top + 1 bounds it
           above (and the digit is < base since rem < b * base). *)
        let lo = ref 1
        and hi = ref (Stdlib.max 1 (Stdlib.min base_mask ((top2 / b_top) + 1))) in
        while !lo < !hi do
          let mid = !lo + ((!hi - !lo + 1) / 2) in
          if fits mid then lo := mid else hi := mid - 1
        done;
        let est = !lo in
        (* rem := rem - est * b *)
        let prod = mag_mul_limb b est in
        let borrow = ref 0 in
        for j = 0 to !rem_len - 1 do
          let pj = if j < Array.length prod then prod.(j) else 0 in
          let s = rem.(j) - !borrow - pj in
          if s < 0 then begin
            rem.(j) <- s + base;
            borrow := 1
          end else begin
            rem.(j) <- s;
            borrow := 0
          end
        done;
        assert (!borrow = 0);
        while !rem_len > 0 && rem.(!rem_len - 1) = 0 do
          decr rem_len
        done;
        (* One final correction upward if rem is still >= b. *)
        let est = ref est in
        while rem_compare_b () >= 0 do
          let borrow = ref 0 in
          for j = 0 to !rem_len - 1 do
            let bj = if j < lb then b.(j) else 0 in
            let s = rem.(j) - !borrow - bj in
            if s < 0 then begin
              rem.(j) <- s + base;
              borrow := 1
            end else begin
              rem.(j) <- s;
              borrow := 0
            end
          done;
          assert (!borrow = 0);
          while !rem_len > 0 && rem.(!rem_len - 1) = 0 do
            decr rem_len
          done;
          incr est
        done;
        if i < Array.length q then q.(i) <- !est
      end
    done;
    (q, Array.sub rem 0 !rem_len)
  end

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let q_mag, r_mag = mag_divmod a.mag b.mag in
    let q = make (a.sign * b.sign) q_mag in
    let r = make a.sign r_mag in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv_rem a b =
  let q, r = divmod a b in
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (sub q (of_int 1), add r b)
  else (add q (of_int 1), sub r b)

let one = of_int 1
let minus_one = of_int (-1)
let two = of_int 2

let rec gcd a b = if is_zero b then abs a else gcd b (rem a b)

let pow b n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b n =
    if n = 0 then acc
    else begin
      let acc = if n land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (n lsr 1)
    end
  in
  go one b n

let succ t = add t one
let pred t = sub t one
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_int_opt t =
  match t.sign with
  | 0 -> Some 0
  | s ->
    (* Accumulate most-significant first; bail out on overflow. *)
    let n = Array.length t.mag in
    let rec go acc i =
      if i < 0 then Some (if s < 0 then -acc else acc)
      else if acc > (max_int - t.mag.(i)) / base then None
      else go ((acc * base) + t.mag.(i)) (i - 1)
    in
    (* A separate check for exactly min_int: |min_int| overflows as a
       positive int, so handle it by comparing against of_int min_int. *)
    (match go 0 (n - 1) with
     | Some v -> Some v
     | None ->
       if s < 0 && equal t (of_int Stdlib.min_int) then Some Stdlib.min_int
       else None)

let to_int t =
  match to_int_opt t with
  | Some n -> n
  | None -> failwith "Bigint.to_int: value out of native int range"

let ten = of_int 10

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    (* Repeated division by 10^9 to peel decimal chunks. *)
    let chunk = of_int 1_000_000_000 in
    let rec go v acc =
      if is_zero v then acc
      else begin
        let q, r = divmod v chunk in
        go q (to_int r :: acc)
      end
    in
    let chunks = go (abs t) [] in
    if t.sign < 0 then Buffer.add_char buf '-';
    (match chunks with
     | [] -> Buffer.add_char buf '0'
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  for i = start to n - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then
      invalid_arg (Printf.sprintf "Bigint.of_string: bad character %C" c);
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if sign < 0 then neg !acc else !acc

let decimal_digits t =
  if is_zero t then 1 else String.length (to_string (abs t))

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
