(* Sharded content-addressed directory tree with atomic-rename
   publication. Nothing here raises on I/O: reads degrade to misses,
   writes to counted errors — a broken disk slows the fleet down, it
   does not take it down. *)

(* Temp-name uniqueness must hold across every handle in the process —
   concurrent domains may open the same store independently — so the
   sequence is module-global, not per-handle. Distinct processes are
   separated by the pid in the temp name. *)
let tmp_seq = Atomic.make 0

type t = {
  root : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  puts : int Atomic.t;
  put_errors : int Atomic.t;
  rej_corrupt : int Atomic.t;
  rej_version : int Atomic.t;
  rej_foreign : int Atomic.t;
}

type stats = {
  hits : int;
  misses : int;
  puts : int;
  put_errors : int;
  rejects_corrupt : int;
  rejects_version : int;
  rejects_foreign : int;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> () (* racing creator won *)
  end

let open_store ~root () =
  match mkdir_p root with
  | () ->
    if Sys.is_directory root then
      Ok
        {
          root;
          hits = Atomic.make 0;
          misses = Atomic.make 0;
          puts = Atomic.make 0;
          put_errors = Atomic.make 0;
          rej_corrupt = Atomic.make 0;
          rej_version = Atomic.make 0;
          rej_foreign = Atomic.make 0;
        }
    else Error (Printf.sprintf "%s exists and is not a directory" root)
  | exception (Unix.Unix_error _ | Sys_error _) ->
    Error (Printf.sprintf "cannot create store directory %s" root)

let root t = t.root

(* [ab/cdef0123456789.kind]: the first two hex digits shard, the rest
   name the entry. Kinds are short [a-z] names ("classify", "deps", …)
   fixed by the engine, never user input. *)
let shard_dir t key = Filename.concat t.root (String.sub (Hash.Fnv.to_hex key) 0 2)

let entry_path t ~kind key =
  let hex = Hash.Fnv.to_hex key in
  Filename.concat
    (Filename.concat t.root (String.sub hex 0 2))
    (String.sub hex 2 (String.length hex - 2) ^ "." ^ kind)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let get t ~kind key =
  let path = entry_path t ~kind key in
  match read_all path with
  | exception (Sys_error _ | End_of_file) ->
    Atomic.incr t.misses;
    None
  | bytes -> (
    match Frame.decode ~kind bytes with
    | Ok payload ->
      Atomic.incr t.hits;
      Some payload
    | Error e ->
      (let c =
         match e with
         | Frame.Truncated | Frame.Trailing _ | Frame.Bad_checksum ->
           t.rej_corrupt
         | Frame.Bad_version _ -> t.rej_version
         | Frame.Foreign | Frame.Bad_kind _ -> t.rej_foreign
       in
       Atomic.incr c);
      Atomic.incr t.misses;
      None)

let write_all path bytes =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc bytes)

(* Publish = write the frame to a hidden per-writer temp in the entry's
   own shard (same filesystem), then rename over the final name. A
   reader never observes a partial entry; a crash leaves only a temp
   for [gc] to sweep. *)
let put t ~kind key payload =
  match
    let dir = shard_dir t key in
    mkdir_p dir;
    let tmp =
      Filename.concat dir
        (Printf.sprintf ".tmp.%d.%d" (Unix.getpid ())
           (Atomic.fetch_and_add tmp_seq 1))
    in
    write_all tmp (Frame.encode ~kind payload);
    Sys.rename tmp (entry_path t ~kind key)
  with
  | () -> Atomic.incr t.puts
  | exception (Sys_error _ | Unix.Unix_error _) -> Atomic.incr t.put_errors

let stats (t : t) : stats =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    puts = Atomic.get t.puts;
    put_errors = Atomic.get t.put_errors;
    rejects_corrupt = Atomic.get t.rej_corrupt;
    rejects_version = Atomic.get t.rej_version;
    rejects_foreign = Atomic.get t.rej_foreign;
  }

let stats_to_string (s : stats) =
  let total = s.hits + s.misses in
  let rate = if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total in
  Printf.sprintf "hits=%d misses=%d hit_rate=%.2f puts=%d put_errors=%d rejects=%d"
    s.hits s.misses rate s.puts s.put_errors
    (s.rejects_corrupt + s.rejects_version + s.rejects_foreign)

(* -- the directory walk shared by [usage] and [gc] -- *)

let is_hex2 s =
  String.length s = 2
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let is_temp name = String.length name >= 4 && String.sub name 0 4 = ".tmp"

type walked = { w_path : string; w_bytes : int; w_mtime : float; w_temp : bool }

let walk t =
  let acc = ref [] in
  let shards = try Sys.readdir t.root with Sys_error _ -> [||] in
  Array.iter
    (fun shard ->
      if is_hex2 shard then begin
        let dir = Filename.concat t.root shard in
        let files = try Sys.readdir dir with Sys_error _ -> [||] in
        Array.iter
          (fun name ->
            let path = Filename.concat dir name in
            match Unix.stat path with
            | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
              acc :=
                {
                  w_path = path;
                  w_bytes = st_size;
                  w_mtime = st_mtime;
                  w_temp = is_temp name;
                }
                :: !acc
            | _ | (exception Unix.Unix_error _) -> ())
          files
      end)
    shards;
  !acc

let usage t =
  List.fold_left
    (fun (n, b) w -> if w.w_temp then (n, b) else (n + 1, b + w.w_bytes))
    (0, 0) (walk t)

type gc_report = {
  scanned : int;
  scanned_bytes : int;
  deleted : int;
  deleted_bytes : int;
  kept : int;
  kept_bytes : int;
  stale_temps : int;
}

(* A temp file a crashed writer left behind: sweep it once it is
   clearly not a publication in flight. *)
let temp_grace_s = 600.0

let gc ?(dry_run = false) ?max_age_s ?max_bytes t () =
  let now = Unix.gettimeofday () in
  let entries, temps = List.partition (fun w -> not w.w_temp) (walk t) in
  let stale_temps =
    List.filter (fun w -> now -. w.w_mtime > temp_grace_s) temps
  in
  let expired, fresh =
    match max_age_s with
    | None -> ([], entries)
    | Some age ->
      List.partition (fun w -> now -. w.w_mtime > age) entries
  in
  (* Oldest-first until under budget: the store is its own LRU
     approximation (mtime = publication time; re-publication of a hot
     key refreshes it). *)
  let over_budget, kept =
    match max_bytes with
    | None -> ([], fresh)
    | Some budget ->
      let by_age =
        List.sort (fun a b -> compare a.w_mtime b.w_mtime) fresh
      in
      let total = List.fold_left (fun acc w -> acc + w.w_bytes) 0 by_age in
      let rec drop total = function
        | w :: rest when total > budget ->
          let dropped, kept = drop (total - w.w_bytes) rest in
          (w :: dropped, kept)
        | rest -> ([], rest)
      in
      drop total by_age
  in
  let victims = expired @ over_budget in
  if not dry_run then
    List.iter
      (fun w -> try Sys.remove w.w_path with Sys_error _ -> ())
      (victims @ stale_temps);
  let bytes l = List.fold_left (fun acc w -> acc + w.w_bytes) 0 l in
  {
    scanned = List.length entries;
    scanned_bytes = bytes entries;
    deleted = List.length victims;
    deleted_bytes = bytes victims;
    kept = List.length kept;
    kept_bytes = bytes kept;
    stale_temps = List.length stale_temps;
  }

let gc_report_to_string r =
  Printf.sprintf
    "scanned %d entries (%d bytes): deleted %d (%d bytes), kept %d (%d bytes), swept %d stale temps"
    r.scanned r.scanned_bytes r.deleted r.deleted_bytes r.kept r.kept_bytes
    r.stale_temps
