(** Versioned binary framing for one on-disk artifact entry.

    Every entry the {!Disk} store publishes is one file holding one
    frame: a fixed magic, a format version, the artifact kind the writer
    stored under, the payload's length, and an FNV-64 checksum of the
    payload, followed by the payload bytes. The reader validates all of
    it and {e rejects} — returns a typed error instead of raising — on
    anything unexpected: a foreign file dropped into the store, an entry
    written by a future format version, a truncated write that survived
    a crash, a flipped bit, or an entry of the wrong kind reached
    through a key collision. A store read can therefore never crash the
    process or hand back bad bytes; the worst case is a recompute.

    Layout (integers little-endian):

    {v
    offset        size  field
    0             4     magic "IVST"
    4             1     format version (currently 1)
    5             1     kind length K
    6             K     kind bytes (e.g. "classify")
    6+K           8     payload length N
    14+K          8     FNV-64 checksum of the payload
    22+K          N     payload (the frame must end exactly here)
    v} *)

(** The current format version. Bump on any layout change; readers
    reject entries from any other version. *)
val version : int

type error =
  | Foreign  (** too short for, or not carrying, the magic *)
  | Bad_version of int  (** a valid entry of another format version *)
  | Bad_kind of string  (** a valid entry stored under another kind *)
  | Truncated  (** header or payload cut short (torn write) *)
  | Trailing of int  (** [n] bytes past the declared payload end *)
  | Bad_checksum  (** payload bytes do not match their checksum *)

val error_to_string : error -> string

(** [encode ~kind payload] is the framed entry as raw bytes.
    @raise Invalid_argument when [kind] is empty or longer than 255
    bytes (kinds are short fixed names like ["classify"]). *)
val encode : kind:string -> string -> string

(** [decode ~kind bytes] validates a frame read back from disk and
    returns its payload. Every failure mode is an [Error], never an
    exception. *)
val decode : kind:string -> string -> (string, error) result
