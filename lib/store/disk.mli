(** The persistent, content-addressed artifact store.

    One store is a directory tree shared by any number of concurrent
    readers and writers — N [ivtool serve] processes, batch runs and CI
    jobs all pointed at the same [--store] root. Entries are keyed by a
    stable {!Hash.Fnv} content digest and an artifact [kind]; the entry
    for digest [abcdef…] lives at [root/ab/cdef….kind] — a two-hex-digit
    shard directory keeps any one directory small when a fleet shares
    one store.

    Publication is crash-safe and racy-writer-safe: an entry is written
    in full to a hidden temp file in its shard and then [rename]d into
    place, so readers only ever see absent or complete files. Two
    writers racing on one key both publish deterministically identical
    bytes; the last rename wins. Entries are {!Frame}-framed, so a read
    that does find garbage (torn by an unclean filesystem, corrupted,
    foreign, or written by another format version) is {e rejected} and
    counted, never propagated: the caller recomputes.

    All operations are non-raising: I/O failures surface as misses
    (reads) or counted errors (writes). Counters are atomics, safe
    across the domains of a pool. *)

type t

type stats = {
  hits : int;  (** reads that returned a validated payload *)
  misses : int;  (** reads that found nothing usable (includes rejects) *)
  puts : int;  (** entries published *)
  put_errors : int;  (** writes that failed (disk full, permissions …) *)
  rejects_corrupt : int;  (** truncated / trailing / checksum failures *)
  rejects_version : int;  (** entries from another format version *)
  rejects_foreign : int;  (** bad magic or wrong-kind entries *)
}

(** [open_store ~root ()] creates [root] (and missing parents) if
    needed and returns a handle. [Error] when [root] exists but is not
    a directory, or cannot be created. *)
val open_store : root:string -> unit -> (t, string) result

val root : t -> string

(** [entry_path t ~kind key] — where [key]'s entry lives ([ab/cdef….kind]
    under the root). Exposed for tests and tooling. *)
val entry_path : t -> kind:string -> Hash.Fnv.t -> string

(** [get t ~kind key] reads and validates one entry. [None] on absent,
    unreadable, or rejected entries (rejects are counted by category in
    {!stats}). *)
val get : t -> kind:string -> Hash.Fnv.t -> string option

(** [put t ~kind key payload] publishes one entry atomically
    (write-to-temp + rename). Failures are counted, not raised. *)
val put : t -> kind:string -> Hash.Fnv.t -> string -> unit

val stats : t -> stats

(** One line, [hits=… misses=… hit_rate=… puts=… put_errors=… rejects=…]
    (rejects summed over the three categories) — the [STATS] store
    line. *)
val stats_to_string : stats -> string

(** [usage t] scans the tree: [(entries, payload_file_bytes)]. Stale
    temp files are not counted as entries. *)
val usage : t -> int * int

type gc_report = {
  scanned : int;  (** entries examined *)
  scanned_bytes : int;
  deleted : int;  (** entries removed (or, dry run, would-be removed) *)
  deleted_bytes : int;
  kept : int;
  kept_bytes : int;
  stale_temps : int;  (** leftover temp files from crashed writers removed *)
}

(** [gc ?dry_run ?max_age_s ?max_bytes t ()] applies the size/age
    policy: entries older than [max_age_s] (by mtime) are deleted, then
    the oldest surviving entries are deleted until the store holds at
    most [max_bytes]. Omitted bounds don't apply. Temp files older than
    ten minutes are always swept (crashed writers). With [dry_run]
    nothing is removed; the report says what would have been. Safe to
    run concurrently with readers and writers: deletion of an entry a
    reader is mid-open on is an ordinary miss on their side. *)
val gc :
  ?dry_run:bool -> ?max_age_s:float -> ?max_bytes:int -> t -> unit -> gc_report

val gc_report_to_string : gc_report -> string
