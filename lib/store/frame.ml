(* One artifact entry = magic, version, kind, length, checksum, payload.
   Reads validate everything and return typed errors: a store read must
   degrade to a recompute, never crash or serve bad bytes. *)

let magic = "IVST"
let version = 1

type error =
  | Foreign
  | Bad_version of int
  | Bad_kind of string
  | Truncated
  | Trailing of int
  | Bad_checksum

let error_to_string = function
  | Foreign -> "not a store entry (bad magic)"
  | Bad_version v -> Printf.sprintf "format version %d (expected %d)" v version
  | Bad_kind k -> Printf.sprintf "entry kind %S does not match" k
  | Truncated -> "truncated entry"
  | Trailing n -> Printf.sprintf "%d trailing bytes past the payload" n
  | Bad_checksum -> "payload checksum mismatch"

let checksum payload = Hash.Fnv.feed_string Hash.Fnv.empty payload

let put_u64_le buf (v : int64) =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (i * 8)) 0xffL)))
  done

let get_u64_le s off =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + i]))
  done;
  !v

let encode ~kind payload =
  let klen = String.length kind in
  if klen = 0 || klen > 255 then invalid_arg "Store.Frame.encode: bad kind";
  let buf = Buffer.create (22 + klen + String.length payload) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  Buffer.add_char buf (Char.chr klen);
  Buffer.add_string buf kind;
  put_u64_le buf (Int64.of_int (String.length payload));
  put_u64_le buf (checksum payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let decode ~kind bytes =
  let len = String.length bytes in
  if len < 4 then Error Truncated
  else if String.sub bytes 0 4 <> magic then Error Foreign
  else if len < 6 then Error Truncated
  else
    let v = Char.code bytes.[4] in
    if v <> version then Error (Bad_version v)
    else
      let klen = Char.code bytes.[5] in
      if len < 22 + klen then Error Truncated
      else
        let k = String.sub bytes 6 klen in
        if k <> kind then Error (Bad_kind k)
        else
          let header = 22 + klen in
          let plen64 = get_u64_le bytes (6 + klen) in
          if Int64.compare plen64 0L < 0
             || Int64.compare plen64 (Int64.of_int (len - header)) > 0
          then Error Truncated
          else
            let plen = Int64.to_int plen64 in
            if len > header + plen then Error (Trailing (len - header - plen))
            else
              let payload = String.sub bytes header plen in
              let sum = get_u64_le bytes (6 + klen + 8) in
              if not (Int64.equal sum (checksum payload)) then Error Bad_checksum
              else Ok payload
