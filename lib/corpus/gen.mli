(** Seeded random loop-program generation.

    One engine behind `ivtool gen`, the B1 generated benchmark corpus,
    and the property tests (test/gen.ml adapts it to QCheck2). Fully
    deterministic: the same seed and knobs produce the same program on
    every host, so CI can diff -j1 vs -j4 batch output byte-for-byte
    over a generated corpus. *)

(** Size/shape knobs. *)
type knobs = {
  depth : int;  (** max nesting depth of if/for templates *)
  max_trip : int;  (** outer-loop trip-count bound *)
  max_block : int;  (** statements per generated block *)
}

(** [{ depth = 2; max_trip = 8; max_block = 4 }] — the historical
    property-test shape. *)
val default_knobs : knobs

(** One random program drawn from [st]. *)
val program : ?knobs:knobs -> Random.State.t -> Ir.Ast.program

(** {!program}, rendered to concrete syntax. *)
val source : ?knobs:knobs -> Random.State.t -> string

(** [corpus ~seed ~count ()] — [count] [(name, source)] programs named
    ["<prefix>-%05d.iv"]. Program [i] depends only on [(seed, i)], so
    it is stable under changes to [count]. *)
val corpus :
  ?knobs:knobs ->
  ?prefix:string ->
  seed:int ->
  count:int ->
  unit ->
  (string * string) list
