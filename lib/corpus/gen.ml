(* Seeded random loop-program generation — the corpus engine behind
   `ivtool gen`, the B1 10k-program benchmark corpus, and (through a
   thin QCheck2 adapter in test/gen.ml) the property tests.

   The statement mix is biased toward the paper's recurrence shapes
   (increments, copies/rotations, flip-flops, geometric updates,
   conditional updates, affine array subscripts) so the classifier and
   the dependence tester actually fire; all loops are counted so the
   interpreter terminates without fuel pressure.

   Everything is driven by an explicit [Random.State.t]: the same seed
   and knobs produce the same program on every host, which is what
   lets CI gate byte-identity of -j1 vs -j4 batch output over a
   generated corpus. *)

type knobs = {
  depth : int; (* max nesting depth of if/for templates *)
  max_trip : int; (* outer-loop trip-count bound *)
  max_block : int; (* statements per generated block *)
}

let default_knobs = { depth = 2; max_trip = 8; max_block = 4 }

let var_names = [ "va"; "vb"; "vc"; "vd" ]

let ident name = Ir.Ident.of_string name
let var name = Ir.Ast.Var (ident name)

(* [range st lo hi] — uniform in [lo, hi] inclusive. *)
let range st lo hi = lo + Random.State.int st (hi - lo + 1)
let pick st xs = List.nth xs (Random.State.int st (List.length xs))

let gen_var st = pick st var_names
let gen_const st = range st (-4) 6

(* Simple right-hand sides over the current variables. *)
let gen_expr st =
  match Random.State.int st 7 with
  | 0 -> Ir.Ast.Int (gen_const st)
  | 1 -> var (gen_var st)
  | 2 ->
    let v = gen_var st in
    Ir.Ast.Binop (Ir.Ops.Add, var v, Ir.Ast.Int (gen_const st))
  | 3 ->
    let a = gen_var st in
    let b = gen_var st in
    Ir.Ast.Binop (Ir.Ops.Add, var a, var b)
  | 4 ->
    let v = gen_var st in
    Ir.Ast.Binop (Ir.Ops.Mul, var v, Ir.Ast.Int (range st (-3) 3))
  | 5 ->
    let a = gen_var st in
    let b = gen_var st in
    Ir.Ast.Binop (Ir.Ops.Sub, var a, var b)
  | _ -> Ir.Ast.Neg (var (gen_var st))

let gen_cond st =
  if Random.State.bool st then Ir.Ast.Unknown
  else
    let op =
      pick st [ Ir.Ops.Lt; Ir.Ops.Le; Ir.Ops.Gt; Ir.Ops.Ge; Ir.Ops.Eq; Ir.Ops.Ne ]
    in
    let a = gen_var st in
    Ir.Ast.Cmp (op, var a, Ir.Ast.Int (gen_const st))

(* An affine subscript k*v + c, the shape the dependence tests solve. *)
let gen_affine_subscript st =
  let v = gen_var st in
  let k = range st 1 3 in
  let c = range st (-2) 4 in
  Ir.Ast.Binop
    (Ir.Ops.Add, Ir.Ast.Binop (Ir.Ops.Mul, var v, Ir.Ast.Int k), Ir.Ast.Int c)

(* Statement templates biased toward classifiable recurrences. *)
let rec gen_stmt knobs st depth =
  let leaf () =
    match Random.State.int st 9 with
    | 0 ->
      (* v += c (linear) *)
      let v = gen_var st in
      let c = gen_const st in
      Ir.Ast.Assign
        ( ident v,
          Ir.Ast.Binop (Ir.Ops.Add, var v, Ir.Ast.Int (if c = 0 then 1 else c))
        )
    | 1 ->
      (* v += w (polynomial chains) *)
      let v = gen_var st in
      let w = gen_var st in
      Ir.Ast.Assign (ident v, Ir.Ast.Binop (Ir.Ops.Add, var v, var w))
    | 2 ->
      (* copy: v = w (rotations / wrap-arounds) *)
      let v = gen_var st in
      let w = gen_var st in
      Ir.Ast.Assign (ident v, var w)
    | 3 ->
      (* flip-flop: v = c - v *)
      let v = gen_var st in
      let c = gen_const st in
      Ir.Ast.Assign (ident v, Ir.Ast.Binop (Ir.Ops.Sub, Ir.Ast.Int c, var v))
    | 4 ->
      (* geometric: v = v*k + c *)
      let v = gen_var st in
      let k = range st 2 3 in
      let c = gen_const st in
      Ir.Ast.Assign
        ( ident v,
          Ir.Ast.Binop
            ( Ir.Ops.Add,
              Ir.Ast.Binop (Ir.Ops.Mul, var v, Ir.Ast.Int k),
              Ir.Ast.Int c ) )
    | 5 ->
      (* general assignment *)
      let v = gen_var st in
      Ir.Ast.Assign (ident v, gen_expr st)
    | 6 ->
      (* array store, subscripted by a variable *)
      let v = gen_var st in
      Ir.Ast.Astore (ident "arr", [ var v ], gen_expr st)
    | 7 ->
      (* array store with an affine subscript (exercises the
         dependence-graph oracle) *)
      let sub = gen_affine_subscript st in
      Ir.Ast.Astore (ident "arr", [ sub ], gen_expr st)
    | _ ->
      (* array read through an affine subscript *)
      let w = gen_var st in
      let sub = gen_affine_subscript st in
      Ir.Ast.Assign (ident w, Ir.Ast.Aref (ident "arr", [ sub ]))
  in
  if depth = 0 then [ leaf () ]
  else begin
    (* frequency 4 leaf : 2 conditional : 2 nested loop *)
    match Random.State.int st 8 with
    | 0 | 1 | 2 | 3 -> [ leaf () ]
    | 4 | 5 ->
      let c = gen_cond st in
      let t = gen_stmts knobs st (depth - 1) in
      let e =
        if Random.State.bool st then [] else gen_stmts knobs st (depth - 1)
      in
      [ Ir.Ast.If (c, t, e) ]
    | _ ->
      let idx = Printf.sprintf "ix%d" depth in
      let hi = range st 1 5 in
      let body = gen_stmts knobs st (depth - 1) in
      [
        Ir.Ast.For
          {
            Ir.Ast.name = Printf.sprintf "GL%d" depth;
            var = ident idx;
            lo = Ir.Ast.Int 1;
            hi = Ir.Ast.Int hi;
            step = 1;
            body;
          };
      ]
  end

and gen_stmts knobs st depth =
  let n = range st 1 knobs.max_block in
  List.concat (List.init n (fun _ -> gen_stmt knobs st depth))

(* A whole program: initialize every variable, then run a counted outer
   loop around a random body. *)
let program ?(knobs = default_knobs) st =
  let inits =
    List.map (fun v -> Ir.Ast.Assign (ident v, Ir.Ast.Int (gen_const st))) var_names
  in
  let trips = range st 1 knobs.max_trip in
  let body = gen_stmts knobs st knobs.depth in
  {
    Ir.Ast.decls = [];
    stmts =
      inits
      @ [
          Ir.Ast.For
            {
              Ir.Ast.name = "GOUTER";
              var = ident "go";
              lo = Ir.Ast.Int 1;
              hi = Ir.Ast.Int trips;
              step = 1;
              body;
            };
        ];
  }

let source ?knobs st = Ir.Ast.to_string (program ?knobs st)

(* [corpus ~seed ~count] — [count] named programs. Each program gets
   its own state seeded [| seed; i |], so program [i] is stable under
   changes to [count] (and generation could fan out if it ever becomes
   the bottleneck). *)
let corpus ?knobs ?(prefix = "gen") ~seed ~count () =
  List.init count (fun i ->
      let st = Random.State.make [| seed; i |] in
      (Printf.sprintf "%s-%05d.iv" prefix i, source ?knobs st))
