(* 64-bit FNV-1a. Each absorbed string is framed by its length so that
   multi-part keys cannot collide by re-splitting the same bytes. *)

type t = int64

let empty = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let feed_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let feed_bytes h s =
  let h = ref h in
  String.iter (fun c -> h := feed_byte !h (Char.code c)) s;
  !h

let feed_int h n =
  let h = ref h in
  for i = 0 to 7 do
    h := feed_byte !h ((n lsr (i * 8)) land 0xff)
  done;
  !h

let feed_string h s = feed_bytes (feed_int h (String.length s)) s
let feed_bool h b = feed_byte h (if b then 1 else 0)
let of_strings parts = List.fold_left feed_string empty parts
let equal = Int64.equal
let compare = Int64.compare
let hash d = Int64.to_int d land max_int
let to_hex d = Printf.sprintf "%016Lx" d
