(** Content hashes for cache keys.

    A 64-bit FNV-1a hash over an explicit, length-framed sequence of
    strings. Framing each part with its length keeps [of_strings] free
    of concatenation ambiguity: [["ab"; "c"]] and [["a"; "bc"]] digest
    differently. This is a fast, non-cryptographic hash: fine for
    content-addressing an in-process cache, not for untrusted inputs. *)

type t = int64

(** The FNV-1a offset basis — the empty digest. *)
val empty : t

(** [feed_string h s] absorbs [s]'s length, then its bytes. *)
val feed_string : t -> string -> t

(** [feed_int h n] absorbs an integer (as 8 little-endian bytes). *)
val feed_int : t -> int -> t

(** [feed_bool h b] absorbs a boolean. *)
val feed_bool : t -> bool -> t

(** [of_strings parts] digests a sequence of length-framed parts. *)
val of_strings : string list -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Sixteen lowercase hex digits. *)
val to_hex : t -> string
