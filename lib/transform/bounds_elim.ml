(* Range-driven bounds-check elimination (see bounds_elim.mli). *)

module Ast = Ir.Ast
module Interval = Analysis.Interval
module Extint = Analysis.Extint
module Range = Analysis.Range

type status = Eliminated | Retained

type dim = {
  index : int;
  status : status;
  interval : Interval.t;
  extent : int * int;
}

type site = {
  array : Ir.Ident.t;
  kind : [ `Load | `Store ];
  block : Ir.Label.t;
  dims : dim list;
}

type summary = {
  sites : site list;
  eliminated : int;
  retained : int;
  skipped : int;
}

let extents_of (p : Ast.program) (a : Ir.Ident.t) : (int * int) list option =
  List.find_map
    (fun (d : Ast.decl) ->
      if Ir.Ident.equal d.Ast.array a then Some d.Ast.dims else None)
    p.Ast.decls

let classify_dim r ~block index (sub : Ir.Instr.value) (lo, hi) : dim =
  let interval = Range.value_interval_at r ~block sub in
  let ext = Interval.make (Extint.of_int lo) (Extint.of_int hi) in
  let status = if Interval.subset interval ext then Eliminated else Retained in
  { index; status; interval; extent = (lo, hi) }

let analyze (r : Range.t) (ssa : Ir.Ssa.t) (p : Ast.program) : summary =
  let cfg = Ir.Ssa.cfg ssa in
  let sites = ref [] in
  let skipped = ref 0 in
  let visit label (instr : Ir.Instr.t) array kind subs =
    match extents_of p array with
    | Some exts when List.length exts = List.length subs ->
      let dims = List.mapi (fun i (s, e) -> classify_dim r ~block:label i s e)
          (List.combine subs exts)
      in
      sites := (instr.Ir.Instr.id, { array; kind; block = label; dims }) :: !sites
    | _ -> incr skipped
  in
  List.iter
    (fun label ->
      List.iter
        (fun (instr : Ir.Instr.t) ->
          match instr.Ir.Instr.op with
          | Ir.Instr.Aload a ->
            visit label instr a `Load (Array.to_list instr.Ir.Instr.args)
          | Ir.Instr.Astore a ->
            let n = Array.length instr.Ir.Instr.args in
            visit label instr a `Store
              (Array.to_list (Array.sub instr.Ir.Instr.args 0 (n - 1)))
          | _ -> ())
        (Ir.Cfg.block cfg label).Ir.Cfg.instrs)
    (Ir.Cfg.labels cfg);
  (* Instruction ids follow lowering order, i.e. the program's textual
     order — [optimize] pairs these sites with an AST walk. *)
  let sites =
    List.sort (fun (a, _) (b, _) -> compare a b) !sites |> List.map snd
  in
  let count st =
    List.fold_left
      (fun acc s ->
        acc + List.length (List.filter (fun d -> d.status = st) s.dims))
      0 sites
  in
  {
    sites;
    eliminated = count Eliminated;
    retained = count Retained;
    skipped = !skipped;
  }

let report (s : summary) : string =
  let buf = Buffer.create 256 in
  List.iter
    (fun site ->
      List.iter
        (fun d ->
          let lo, hi = d.extent in
          Buffer.add_string buf
            (Printf.sprintf "  %s %s dim %d: %s within %d:%d -> %s\n"
               (Ir.Ident.name site.array)
               (match site.kind with `Load -> "load" | `Store -> "store")
               d.index
               (Interval.to_string d.interval)
               lo hi
               (match d.status with
                | Eliminated -> "eliminated"
                | Retained -> "retained")))
        site.dims)
    s.sites;
  Buffer.add_string buf
    (Printf.sprintf "bounds checks: %d eliminated, %d retained%s\n"
       s.eliminated s.retained
       (if s.skipped = 0 then ""
        else Printf.sprintf " (%d undeclared accesses skipped)" s.skipped));
  Buffer.contents buf

(* Wrap one store in its per-dimension guards (outermost = dim 0). A
   [false] in [keep] drops that dimension's guard. *)
let rec guard keeps exts idx inner =
  match (keeps, exts, idx) with
  | [], [], [] -> inner
  | k :: kt, (lo, hi) :: et, e :: it ->
    let rest = guard kt et it inner in
    if k then
      [
        Ast.If
          ( Ast.Cmp (Ir.Ops.Ge, e, Ast.Int lo),
            [ Ast.If (Ast.Cmp (Ir.Ops.Le, e, Ast.Int hi), rest, []) ],
            [] );
      ]
    else rest
  | _ -> inner

(* [keep_of] decides, per store site in program order, which dimensions
   keep their guards. The AST walk below visits stores in the same
   order lowering emits them (statements in sequence, then-branch
   before else-branch), so a simple queue pairs the two. *)
let rewrite_stores (p : Ast.program) ~(keep_of : Ir.Ident.t -> int -> bool list option) :
    Ast.program =
  let counter = ref 0 in
  let rec stmt s =
    match s with
    | Ast.Assign _ | Ast.Exit_if _ -> [ s ]
    | Ast.Astore (a, idx, _) -> (
      match extents_of p a with
      | Some exts when List.length exts = List.length idx -> (
        let n = !counter in
        incr counter;
        match keep_of a n with
        | Some keeps -> guard keeps exts idx [ s ]
        | None -> [ s ])
      | _ -> [ s ])
    | Ast.If (c, t, e) -> [ Ast.If (c, stmts t, stmts e) ]
    | Ast.Loop (name, body) -> [ Ast.Loop (name, stmts body) ]
    | Ast.For f -> [ Ast.For { f with Ast.body = stmts f.Ast.body } ]
  and stmts l = List.concat_map stmt l in
  { p with Ast.stmts = stmts p.Ast.stmts }

let instrument (p : Ast.program) : Ast.program =
  rewrite_stores p ~keep_of:(fun a _ ->
      match extents_of p a with
      | Some exts -> Some (List.map (fun _ -> true) exts)
      | None -> None)

let optimize (r : Range.t) (ssa : Ir.Ssa.t) (p : Ast.program) : Ast.program =
  let s = analyze r ssa p in
  let stores =
    Array.of_list (List.filter (fun site -> site.kind = `Store) s.sites)
  in
  rewrite_stores p ~keep_of:(fun a n ->
      if n < Array.length stores && Ir.Ident.equal stores.(n).array a then
        Some (List.map (fun d -> d.status = Retained) stores.(n).dims)
      else
        (* Pairing drifted (should not happen): keep every guard. *)
        match extents_of p a with
        | Some exts -> Some (List.map (fun _ -> true) exts)
        | None -> None)
