(* First-iteration loop peeling (paper §4.1): "the standard compiler
   trick, once a wrap-around variable is found, is to peel off the first
   iteration of the loop and replace the wrap-around variable with the
   appropriate induction variable."

   After peeling, the wrap-around variable's initial value matches the
   carried sequence, so re-running the classifier promotes it to a plain
   induction variable — the promotion rule of Classify.classify_wraparound
   fires. The tests check exactly that, plus semantic equivalence via the
   reference interpreter. *)

let always = Ir.Ast.Cmp (Ir.Ops.Eq, Ir.Ast.Int 0, Ir.Ast.Int 0)

(* [peel_loop name body] peels one iteration off "loop name body".

   The peeled copy runs inside a wrapper loop that exits unconditionally
   after the remaining loop finishes, so that 'exit's in the peeled first
   iteration leave the whole construct (skipping the remaining loop), and
   'exit's in later iterations leave the inner loop and then the wrapper:

     loop name_peel
       <body>            (first iteration; its exits skip everything)
       loop name <body> endloop
       exit
     endloop *)
let peel_loop name body =
  Ir.Ast.Loop
    (name ^ "_peel", body @ [ Ir.Ast.Loop (name, body); Ir.Ast.Exit_if always ])

(* [peel_for f] peels the first iteration of a 'for' loop:

     i = lo
     if i <= hi then      (or >= for negative step)
       <body>
       for i = lo+step to hi loop <body> endloop
     endif *)
let peel_for (f : Ir.Ast.for_loop) : Ir.Ast.stmt list =
  let enter_op = if f.Ir.Ast.step > 0 then Ir.Ops.Le else Ir.Ops.Ge in
  [
    Ir.Ast.Assign (f.Ir.Ast.var, f.Ir.Ast.lo);
    Ir.Ast.If
      ( Ir.Ast.Cmp (enter_op, Ir.Ast.Var f.Ir.Ast.var, f.Ir.Ast.hi),
        f.Ir.Ast.body
        @ [
            Ir.Ast.For
              {
                f with
                Ir.Ast.lo =
                  Ir.Ast.Binop (Ir.Ops.Add, f.Ir.Ast.lo, Ir.Ast.Int f.Ir.Ast.step);
              };
          ],
        [] );
  ]

(* [peel_named name p] peels the first iteration of the loop labelled
   [name] wherever it occurs in the program. *)
let peel_named name (p : Ir.Ast.program) : Ir.Ast.program =
  let rec stmt (s : Ir.Ast.stmt) : Ir.Ast.stmt list =
    match s with
    | Ir.Ast.Loop (n, body) when String.equal n name ->
      [ peel_loop n (List.concat_map stmt body) ]
    | Ir.Ast.Loop (n, body) -> [ Ir.Ast.Loop (n, List.concat_map stmt body) ]
    | Ir.Ast.For f when String.equal f.Ir.Ast.name name ->
      peel_for { f with Ir.Ast.body = List.concat_map stmt f.Ir.Ast.body }
    | Ir.Ast.For f ->
      [ Ir.Ast.For { f with Ir.Ast.body = List.concat_map stmt f.Ir.Ast.body } ]
    | Ir.Ast.If (c, t, e) ->
      [ Ir.Ast.If (c, List.concat_map stmt t, List.concat_map stmt e) ]
    | Ir.Ast.Assign _ | Ir.Ast.Astore _ | Ir.Ast.Exit_if _ -> [ s ]
  in
  { p with Ir.Ast.stmts = List.concat_map stmt p.Ir.Ast.stmts }
