(* Loop normalization (paper §6.1): rewrite every 'for' loop to run from
   0 with step 1, substituting [i := i' * step + lo] in the body.

   The paper uses this transformation to show an artifact it critiques:
   normalizing L24 changes the distance vector of

       for i = 1 to n { for j = i+1 to n { A(i,j) = A(i-1,j) } }

   from (1, 0) to (1, -1), which blocks loop interchange — while the
   SSA-based classification is insensitive to the loop's textual shape.
   Normalization is provided so the experiment can be reproduced. *)

let counter = ref 0

let fresh_var base =
  incr counter;
  Ir.Ident.of_string (Printf.sprintf "%s_n%d" (Ir.Ident.name base) !counter)

let rec subst_expr var replacement (e : Ir.Ast.expr) : Ir.Ast.expr =
  match e with
  | Ir.Ast.Int _ -> e
  | Ir.Ast.Var x -> if Ir.Ident.equal x var then replacement else e
  | Ir.Ast.Aref (a, idx) -> Ir.Ast.Aref (a, List.map (subst_expr var replacement) idx)
  | Ir.Ast.Binop (op, a, b) ->
    Ir.Ast.Binop (op, subst_expr var replacement a, subst_expr var replacement b)
  | Ir.Ast.Neg a -> Ir.Ast.Neg (subst_expr var replacement a)

let subst_cond var replacement (c : Ir.Ast.cond) : Ir.Ast.cond =
  match c with
  | Ir.Ast.Cmp (op, a, b) ->
    Ir.Ast.Cmp (op, subst_expr var replacement a, subst_expr var replacement b)
  | Ir.Ast.Unknown -> Ir.Ast.Unknown

let rec subst_stmt var replacement (s : Ir.Ast.stmt) : Ir.Ast.stmt =
  match s with
  | Ir.Ast.Assign (x, e) ->
    (* A write to the index inside the body would invalidate the
       substitution; for-loop bodies in this language do not assign their
       index (enforced here). *)
    if Ir.Ident.equal x var then
      invalid_arg "Normalize: loop body assigns its own index";
    Ir.Ast.Assign (x, subst_expr var replacement e)
  | Ir.Ast.Astore (a, idx, e) ->
    Ir.Ast.Astore
      (a, List.map (subst_expr var replacement) idx, subst_expr var replacement e)
  | Ir.Ast.If (c, t, e) ->
    Ir.Ast.If
      ( subst_cond var replacement c,
        List.map (subst_stmt var replacement) t,
        List.map (subst_stmt var replacement) e )
  | Ir.Ast.Loop (name, body) ->
    Ir.Ast.Loop (name, List.map (subst_stmt var replacement) body)
  | Ir.Ast.For f ->
    if Ir.Ident.equal f.Ir.Ast.var var then s
    else
      Ir.Ast.For
        {
          f with
          Ir.Ast.lo = subst_expr var replacement f.Ir.Ast.lo;
          hi = subst_expr var replacement f.Ir.Ast.hi;
          body = List.map (subst_stmt var replacement) f.Ir.Ast.body;
        }
  | Ir.Ast.Exit_if c -> Ir.Ast.Exit_if (subst_cond var replacement c)

(* [normalize_stmt s] normalizes all for loops in [s], innermost last. *)
let rec normalize_stmt (s : Ir.Ast.stmt) : Ir.Ast.stmt =
  match s with
  | Ir.Ast.For { name; var; lo; hi; step; body } ->
    let body = List.map normalize_stmt body in
    let nv = fresh_var var in
    (* i = i' * step + lo *)
    let replacement =
      Ir.Ast.Binop
        (Ir.Ops.Add, Ir.Ast.Binop (Ir.Ops.Mul, Ir.Ast.Var nv, Ir.Ast.Int step), lo)
    in
    let body = List.map (subst_stmt var replacement) body in
    (* The new bound is floor((hi - lo) / step); with the language's
       truncating division that is (hi - lo + step)/step - 1, which is
       also correct for empty loops and negative steps. *)
    let bound =
      Ir.Ast.Binop
        ( Ir.Ops.Sub,
          Ir.Ast.Binop
            ( Ir.Ops.Div,
              Ir.Ast.Binop (Ir.Ops.Add, Ir.Ast.Binop (Ir.Ops.Sub, hi, lo), Ir.Ast.Int step),
              Ir.Ast.Int step ),
          Ir.Ast.Int 1 )
    in
    Ir.Ast.For { name; var = nv; lo = Ir.Ast.Int 0; hi = bound; step = 1; body }
  | Ir.Ast.Loop (name, body) -> Ir.Ast.Loop (name, List.map normalize_stmt body)
  | Ir.Ast.If (c, t, e) ->
    Ir.Ast.If (c, List.map normalize_stmt t, List.map normalize_stmt e)
  | Ir.Ast.Assign _ | Ir.Ast.Astore _ | Ir.Ast.Exit_if _ -> s

let normalize (p : Ir.Ast.program) : Ir.Ast.program =
  { p with Ir.Ast.stmts = List.map normalize_stmt p.Ir.Ast.stmts }
