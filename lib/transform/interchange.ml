(* Loop interchange for perfect 2-deep nests, with legality decided by
   the dependence graph (paper §6.1: the triangular example's
   iteration-space distance (1, -1) is exactly what makes interchange
   illegal there, while the rectangular variant's (1, 0) permits it). *)

module Deptest = Dependence.Deptest
module Dep_graph = Dependence.Dep_graph
module Driver = Analysis.Driver

(* A dependence direction vector (outer, inner) blocks interchange when
   it is (<, >): swapping would make the sink run before the source. *)
let edge_blocks_interchange ~outer ~inner (e : Dep_graph.edge) =
  match e.Dep_graph.outcome with
  | Deptest.Independent -> false
  | Deptest.Dependent d -> (
    (* Exact distances decide precisely. *)
    match d.Deptest.distance with
    | Some dists when List.mem_assoc outer dists && List.mem_assoc inner dists ->
      List.assoc outer dists > 0 && List.assoc inner dists < 0
    | _ -> (
      (* Fall back to the direction sets (conservative: a possible (<,>)
         combination blocks). *)
      let dir l =
        Option.value ~default:Deptest.all_dirs (List.assoc_opt l d.Deptest.directions)
      in
      ((dir outer).Deptest.lt && (dir inner).Deptest.gt)))

(* [legal t edges ~outer ~inner] decides interchange legality for the
   loop pair from an already-built dependence graph. *)
let legal (edges : Dep_graph.edge list) ~outer ~inner =
  not (List.exists (edge_blocks_interchange ~outer ~inner) edges)

(* [apply p ~outer_name] swaps the named perfect nest in the AST.
   @raise Invalid_argument if the nest is not perfect or its bounds are
   not independent of each other's index. *)
let apply (p : Ir.Ast.program) ~outer_name : Ir.Ast.program =
  let rec uses_var var (e : Ir.Ast.expr) =
    match e with
    | Ir.Ast.Int _ -> false
    | Ir.Ast.Var x -> Ir.Ident.equal x var
    | Ir.Ast.Aref (_, idx) -> List.exists (uses_var var) idx
    | Ir.Ast.Binop (_, a, b) -> uses_var var a || uses_var var b
    | Ir.Ast.Neg a -> uses_var var a
  in
  let rec stmt (s : Ir.Ast.stmt) : Ir.Ast.stmt =
    match s with
    | Ir.Ast.For ({ name; body = [ Ir.Ast.For inner ]; _ } as outer)
      when String.equal name outer_name ->
      if
        uses_var outer.Ir.Ast.var inner.Ir.Ast.lo
        || uses_var outer.Ir.Ast.var inner.Ir.Ast.hi
      then
        invalid_arg
          "Interchange.apply: inner bounds depend on the outer index (skew first)";
      Ir.Ast.For
        {
          inner with
          Ir.Ast.body =
            [ Ir.Ast.For { outer with Ir.Ast.body = inner.Ir.Ast.body } ];
        }
    | Ir.Ast.For f -> Ir.Ast.For { f with Ir.Ast.body = List.map stmt f.Ir.Ast.body }
    | Ir.Ast.Loop (n, body) -> Ir.Ast.Loop (n, List.map stmt body)
    | Ir.Ast.If (c, t, e) -> Ir.Ast.If (c, List.map stmt t, List.map stmt e)
    | Ir.Ast.Assign _ | Ir.Ast.Astore _ | Ir.Ast.Exit_if _ -> s
  in
  { p with Ir.Ast.stmts = List.map stmt p.Ir.Ast.stmts }

(* [legal_for_program src ~outer_name ~inner_name] is the whole check:
   analyze, build the dependence graph, decide. *)
let legal_for_source src ~outer_name ~inner_name =
  let t = Driver.analyze_source src in
  let loops = Ir.Ssa.loops (Driver.ssa t) in
  match
    (Ir.Loops.find_by_name loops outer_name, Ir.Loops.find_by_name loops inner_name)
  with
  | Some o, Some i ->
    let edges = Dep_graph.build t in
    Some (legal edges ~outer:o.Ir.Loops.id ~inner:i.Ir.Loops.id)
  | _ -> None
