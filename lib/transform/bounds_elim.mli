(** Bounds-check elimination driven by the value-range analysis.

    A program may declare array extents ([array A(1:100)]); every access
    to a declared array conceptually carries one bounds check per
    dimension. [analyze] classifies each check: {e eliminated} when the
    range analysis proves the subscript's use-site interval is contained
    in the declared extent, {e retained} otherwise. Accesses to
    undeclared arrays (or with a rank mismatch) are skipped — they are
    unbounded.

    [instrument] materializes every store-side check as nested guard
    [if]s around the store — the fully-checked program. [optimize] does
    the same but omits the eliminated checks. Running both and diffing
    their array footprints is the transform's soundness oracle
    ({!Verify.Transforms}, TRN003): if elimination ever dropped a check
    that would have fired, the optimized footprint gains a store the
    fully-checked program suppressed. Load-side checks are classified
    and counted but never materialized (loads sit inside expressions). *)

type status = Eliminated | Retained

type dim = {
  index : int;  (** 0-based dimension *)
  status : status;
  interval : Analysis.Interval.t;  (** subscript's use-site interval *)
  extent : int * int;  (** declared inclusive bounds *)
}

type site = {
  array : Ir.Ident.t;
  kind : [ `Load | `Store ];
  block : Ir.Label.t;
  dims : dim list;
}

type summary = {
  sites : site list;  (** in program (lowering) order *)
  eliminated : int;
  retained : int;
  skipped : int;  (** accesses to undeclared / rank-mismatched arrays *)
}

val analyze :
  Analysis.Range.t -> Ir.Ssa.t -> Ir.Ast.program -> summary

val report : summary -> string

(** Guard every store to a declared array with all its checks. *)
val instrument : Ir.Ast.program -> Ir.Ast.program

(** Guard every store to a declared array with only the checks
    [analyze] retains. The [ssa] must be built from this same [p]. *)
val optimize :
  Analysis.Range.t -> Ir.Ssa.t -> Ir.Ast.program -> Ir.Ast.program
