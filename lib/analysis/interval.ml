(* Intervals over extended integers — the value domain of the range
   analysis.

   An interval bounds the *machine* values a def can take, so the
   transfer functions must respect native wrap-around: whenever an
   operation could overflow for some operands inside the inputs, the
   result degrades to [top] (a wrapped value can land anywhere). The
   closed-form seeds computed by [Range] instead use the mathematical
   ([sat_*]) operations: classification closed forms are built from
   small strides where the fuel bound keeps the exact value inside the
   native range (see docs/RANGES.md for the caveat).

   Invariant: [lo <= hi], [lo <> Pos_inf], [hi <> Neg_inf]. Bottom is
   not represented — the analysis keeps unvisited defs out of its
   tables instead. *)

type t = { lo : Extint.t; hi : Extint.t }

let make lo hi =
  if not (Extint.le lo hi) || lo = Extint.Pos_inf || hi = Extint.Neg_inf then
    invalid_arg "Interval.make: malformed bounds";
  { lo; hi }

let top = { lo = Extint.Neg_inf; hi = Extint.Pos_inf }
let const n = { lo = Extint.Fin n; hi = Extint.Fin n }
let bool_range = { lo = Extint.Fin 0; hi = Extint.Fin 1 }

let lo t = t.lo
let hi t = t.hi
let is_top t = t.lo = Extint.Neg_inf && t.hi = Extint.Pos_inf

let singleton t =
  match (t.lo, t.hi) with
  | Extint.Fin a, Extint.Fin b when a = b -> Some a
  | _ -> None

let equal a b = Extint.equal a.lo b.lo && Extint.equal a.hi b.hi
let mem n t = Extint.le t.lo (Extint.Fin n) && Extint.le (Extint.Fin n) t.hi
let subset a b = Extint.le b.lo a.lo && Extint.le a.hi b.hi

let join a b = { lo = Extint.min a.lo b.lo; hi = Extint.max a.hi b.hi }

let meet a b =
  let lo = Extint.max a.lo b.lo and hi = Extint.min a.hi b.hi in
  if Extint.le lo hi then Some { lo; hi } else None

(* Standard interval widening: an unstable bound jumps to its
   infinity. *)
let widen ~old ~next =
  {
    lo = (if Extint.compare next.lo old.lo < 0 then Extint.Neg_inf else old.lo);
    hi = (if Extint.compare next.hi old.hi > 0 then Extint.Pos_inf else old.hi);
  }

(* --- machine-safe transfer functions (wrap-aware) --- *)

let fin2 a b =
  match (a, b) with
  | Extint.Fin x, Extint.Fin y -> Some (x, y)
  | _ -> None

(* Addition: exact when both inputs are bounded and neither endpoint
   sum overflows; any infinity or overflow means some concrete sum can
   wrap, so the result is top. *)
let add a b =
  match (fin2 a.lo b.lo, fin2 a.hi b.hi) with
  | Some (l1, l2), Some (h1, h2) -> (
    match (Extint.add_int_opt l1 l2, Extint.add_int_opt h1 h2) with
    | Some lo, Some hi -> { lo = Extint.Fin lo; hi = Extint.Fin hi }
    | _ -> top)
  | _ -> top

(* Negation: exact unless the input can be [min_int] (whose machine
   negation is itself). *)
let neg a =
  if mem min_int a then top
  else { lo = Extint.neg a.hi; hi = Extint.neg a.lo }

let sub a b = if is_top a || is_top b then top else add a (neg b)

(* Multiplication: exact when all four endpoint products fit; a zero
   singleton annihilates anything. *)
let mul a b =
  match (singleton a, singleton b) with
  | Some 0, _ | _, Some 0 -> const 0
  | _ -> (
    match (fin2 a.lo a.hi, fin2 b.lo b.hi) with
    | Some (al, ah), Some (bl, bh) -> (
      let products =
        [
          Extint.mul_int_opt al bl;
          Extint.mul_int_opt al bh;
          Extint.mul_int_opt ah bl;
          Extint.mul_int_opt ah bh;
        ]
      in
      match
        List.fold_left
          (fun acc p ->
            match (acc, p) with
            | Some (lo, hi), Some p -> Some (Stdlib.min lo p, Stdlib.max hi p)
            | _ -> None)
          (Some (max_int, min_int))
          products
      with
      | Some (lo, hi) -> { lo = Extint.Fin lo; hi = Extint.Fin hi }
      | None -> top)
    | _ -> top)

(* Division by a non-zero constant. Truncating division is monotone
   non-decreasing in the dividend for positive divisors and
   non-increasing for negative ones; the only wrapping case is
   [min_int / -1], excluded by falling back to [neg]'s rule. *)
let div_const a c =
  if c = 0 then top
  else if c = -1 then neg a
  else if c > 0 then
    { lo = Extint.div_scalar a.lo c; hi = Extint.div_scalar a.hi c }
  else { lo = Extint.div_scalar a.hi c; hi = Extint.div_scalar a.lo c }

let div a b =
  match singleton b with Some c when c <> 0 -> div_const a c | _ -> top

(* --- mathematical (saturating) operations, for closed-form seeds --- *)

let sat_add a b =
  { lo = Extint.sat_add a.lo b.lo; hi = Extint.sat_add a.hi b.hi }

(* [mul_scalar s t] scales by an exact integer (saturating). *)
let mul_scalar s t =
  if s = 0 then const 0
  else begin
    let p1 = Extint.mul (Extint.Fin s) t.lo
    and p2 = Extint.mul (Extint.Fin s) t.hi in
    { lo = Extint.min p1 p2; hi = Extint.max p1 p2 }
  end

let pp fmt t =
  Format.fprintf fmt "[%a, %a]" Extint.pp t.lo Extint.pp t.hi

let to_string t = Format.asprintf "%a" pp t
