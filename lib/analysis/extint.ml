(* Integers extended with infinities.

   Two families of operations share the representation:

   - the exact Banerjee-style bound arithmetic used by dependence
     testing ([add], [mul_scalar]), which treats opposite infinities as
     a program error;
   - the saturating arithmetic the range analysis needs ([sat_add],
     [mul], [neg]): finite overflow rounds away from zero to the
     matching infinity, so a saturated bound always contains the exact
     mathematical value. *)

type t = Neg_inf | Fin of int | Pos_inf

let zero = Fin 0
let of_int n = Fin n

let to_int = function Fin n -> Some n | Neg_inf | Pos_inf -> None
let is_finite = function Fin _ -> true | Neg_inf | Pos_inf -> false

let add a b =
  match (a, b) with
  | Fin x, Fin y -> Fin (x + y)
  | Pos_inf, Neg_inf | Neg_inf, Pos_inf ->
    invalid_arg "Extint.add: opposite infinities"
  | Pos_inf, _ | _, Pos_inf -> Pos_inf
  | Neg_inf, _ | _, Neg_inf -> Neg_inf

(* Overflow-checked native sums: [None] when x + y leaves the native
   range (the sign of the true result is then the shared sign of the
   operands). *)
let add_int_opt x y =
  let s = x + y in
  if (x >= 0) = (y >= 0) && (s >= 0) <> (x >= 0) then None else Some s

(* Saturating addition: finite overflow becomes the infinity of the
   operands' shared sign, so the result still bounds the exact sum.
   Opposite infinities remain a program error (a well-formed bound
   computation never mixes them). *)
let sat_add a b =
  match (a, b) with
  | Fin x, Fin y -> (
    match add_int_opt x y with
    | Some s -> Fin s
    | None -> if x >= 0 then Pos_inf else Neg_inf)
  | Pos_inf, Neg_inf | Neg_inf, Pos_inf ->
    invalid_arg "Extint.sat_add: opposite infinities"
  | Pos_inf, _ | _, Pos_inf -> Pos_inf
  | Neg_inf, _ | _, Neg_inf -> Neg_inf

(* Overflow-checked native product. The [min_int] corner cases matter:
   [min_int * -1] wraps (and [min_int / -1] traps), so they are handled
   before the division-based check. *)
let mul_int_opt x y =
  if x = 0 || y = 0 then Some 0
  else if x = 1 then Some y
  else if y = 1 then Some x
  else if x = -1 then if y = min_int then None else Some (-y)
  else if y = -1 then if x = min_int then None else Some (-x)
  else if x = min_int || y = min_int then None
  else begin
    let p = x * y in
    if p / y = x then Some p else None
  end

(* [mul_scalar c x] multiplies by a finite integer, exactly when the
   product fits (the Banerjee tests' coefficients are small); on native
   overflow it saturates to the correctly signed infinity rather than
   wrapping — [mul_scalar (-1) (Fin min_int)] is [Pos_inf]. *)
let mul_scalar c x =
  match x with
  | Fin v -> (
    match mul_int_opt c v with
    | Some p -> Fin p
    | None -> if (c > 0) = (v > 0) then Pos_inf else Neg_inf)
  | Pos_inf -> if c > 0 then Pos_inf else if c < 0 then Neg_inf else Fin 0
  | Neg_inf -> if c > 0 then Neg_inf else if c < 0 then Pos_inf else Fin 0

(* Saturating negation: [neg (Fin min_int)] has no finite counterpart
   and saturates to [Pos_inf]. *)
let neg = function
  | Fin n -> if n = min_int then Pos_inf else Fin (-n)
  | Pos_inf -> Neg_inf
  | Neg_inf -> Pos_inf

let sign = function
  | Fin n -> Stdlib.compare n 0
  | Pos_inf -> 1
  | Neg_inf -> -1

(* Saturating multiplication. Conventions: finite overflow saturates to
   the infinity matching the sign of the true product, and [0 * ±inf]
   is [0] — the interval-arithmetic convention, where the zero factor
   is exact and annihilates however large the other side is. *)
let mul a b =
  match (a, b) with
  | Fin 0, _ | _, Fin 0 -> Fin 0
  | Fin x, Fin y -> (
    match mul_int_opt x y with
    | Some p -> Fin p
    | None -> if (x > 0) = (y > 0) then Pos_inf else Neg_inf)
  | _ -> if sign a * sign b > 0 then Pos_inf else Neg_inf

(* [div_scalar x c] divides by a finite non-zero integer (truncating,
   like the interpreter); the single wrapping case [min_int / -1]
   saturates. *)
let div_scalar x c =
  if c = 0 then invalid_arg "Extint.div_scalar: zero divisor";
  match x with
  | Fin n ->
    if n = min_int && c = -1 then Pos_inf else Fin (n / c)
  | Pos_inf -> if c > 0 then Pos_inf else Neg_inf
  | Neg_inf -> if c > 0 then Neg_inf else Pos_inf

let compare a b =
  match (a, b) with
  | Neg_inf, Neg_inf | Pos_inf, Pos_inf -> 0
  | Neg_inf, _ -> -1
  | _, Neg_inf -> 1
  | Pos_inf, _ -> 1
  | _, Pos_inf -> -1
  | Fin x, Fin y -> Stdlib.compare x y

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let le a b = compare a b <= 0

let pp fmt = function
  | Neg_inf -> Format.pp_print_string fmt "-inf"
  | Pos_inf -> Format.pp_print_string fmt "+inf"
  | Fin n -> Format.pp_print_int fmt n

let to_string = function
  | Neg_inf -> "-inf"
  | Pos_inf -> "+inf"
  | Fin n -> string_of_int n
