(** Integers extended with infinities: the exact arithmetic Banerjee
    bounds use, plus the saturating arithmetic of the range domain. *)

type t = Neg_inf | Fin of int | Pos_inf

val zero : t
val of_int : int -> t

(** [to_int x] is the finite payload, [None] for infinities. *)
val to_int : t -> int option

val is_finite : t -> bool

(** Exact addition. @raise Invalid_argument on opposite infinities. *)
val add : t -> t -> t

(** Overflow-checked native addition ([None] when [x + y] wraps). *)
val add_int_opt : int -> int -> int option

(** Saturating addition: finite overflow becomes the infinity of the
    operands' shared sign (the result still bounds the exact sum).
    @raise Invalid_argument on opposite infinities. *)
val sat_add : t -> t -> t

(** Overflow-checked native product, handling the [min_int] corners. *)
val mul_int_opt : int -> int -> int option

(** [mul_scalar c x] multiplies by a finite integer, exactly when the
    product fits; native overflow saturates to the correctly signed
    infinity ([mul_scalar (-1) (Fin min_int) = Pos_inf]). *)
val mul_scalar : int -> t -> t

(** Saturating negation: [neg (Fin min_int) = Pos_inf]. *)
val neg : t -> t

(** Saturating multiplication; [0 * ±inf = 0] (interval convention). *)
val mul : t -> t -> t

(** [div_scalar x c] truncating division by a finite non-zero integer;
    [min_int / -1] saturates to [Pos_inf].
    @raise Invalid_argument when [c = 0]. *)
val div_scalar : t -> int -> t

(** Sign of the extended integer (-1, 0 or 1). *)
val sign : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val le : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
