(** Intervals over extended integers — the value domain of the range
    analysis. Bounds are on *machine* values: the wrap-aware transfer
    functions ([add], [sub], [mul], [neg], [div]) degrade to [top]
    whenever an operation could overflow inside the inputs, while the
    saturating operations ([sat_add], [mul_scalar]) follow exact
    mathematical semantics for classification closed-form seeds. *)

type t

(** @raise Invalid_argument when [lo > hi] or a bound uses the wrong
    infinity. *)
val make : Extint.t -> Extint.t -> t

val top : t
val const : int -> t

(** The [0, 1] interval (relational and random operators). *)
val bool_range : t

val lo : t -> Extint.t
val hi : t -> Extint.t
val is_top : t -> bool
val singleton : t -> int option
val equal : t -> t -> bool
val mem : int -> t -> bool

(** [subset a b]: every value of [a] lies in [b]. *)
val subset : t -> t -> bool

val join : t -> t -> t

(** [None] when the intersection is empty. *)
val meet : t -> t -> t option

(** Standard widening: an unstable bound jumps to its infinity. *)
val widen : old:t -> next:t -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

(** Division by a singleton non-zero divisor; [top] otherwise. *)
val div : t -> t -> t

val div_const : t -> int -> t

(** Saturating (mathematical) addition, for closed-form seeds. *)
val sat_add : t -> t -> t

(** Saturating scale by an exact integer, for closed-form seeds. *)
val mul_scalar : int -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
