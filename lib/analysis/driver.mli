(** The whole-program analysis driver (paper §5.3): classify loops inner
    to outer with trip counts and symbolic exit values collapsing each
    countable inner loop, then promote inner initial values that are
    outer-loop IVs into the paper's nested multiloop tuples. *)

type loop_result = Pipeline.loop_result = {
  loop : Ir.Loops.loop;
  table : Ivclass.t Ir.Instr.Id.Table.t;
  graph : Ssa_graph.t;
  trip : Trip_count.t;
}

type t

(** View a {!Pipeline.analysis} through the driver's query surface (the
    two are the same data; the driver is a façade over the pipeline). *)
val of_analysis : Pipeline.analysis -> t

val ssa : t -> Ir.Ssa.t

(** The constant-propagation results, when [use_sccp] ran. *)
val sccp : t -> Sccp.result option

val loop_result : t -> int -> loop_result option
val trip_count : t -> int -> Trip_count.t

(** [exit_value t id] is the symbolic value of a def after its loop
    exits, when the loop is countable and the def unconditional (§5.3). *)
val exit_value : t -> Ir.Instr.Id.t -> Sym.t option

(** [class_of t id] is the classification of a def in its innermost loop
    (invariant for defs outside all loops). *)
val class_of : t -> Ir.Instr.Id.t -> Ivclass.t

(** [class_of_name t name] looks up by SSA name ("j2"). *)
val class_of_name : t -> string -> Ivclass.t option

(** [global_class_of t v] expresses a value's classification in the frame
    of the whole nest: invariant symbols over defs that vary in outer
    loops are expanded through those defs' classifications (what
    dependence testing needs for subscripts like "i - 1" computed in an
    inner loop). *)
val global_class_of : t -> Ir.Instr.value -> Ivclass.t

val resolve_global : t -> Ivclass.t -> Ivclass.t

(** [analyze ssa] runs the whole pipeline. [use_sccp] (default true)
    feeds conditional-constant-propagation results into initial values. *)
val analyze : ?use_sccp:bool -> Ir.Ssa.t -> t

(** [ranges t] is the value-range analysis over the promoted
    classification (fresh each call; the pipeline/engine layer caches). *)
val ranges : t -> Range.t

val analyze_source : ?use_sccp:bool -> string -> t

(** A namer rendering loop names ("L18") and def atoms ("k2") for the
    paper-style tuple printer. *)
val namer : t -> Ivclass.namer

val class_to_string : t -> Ivclass.t -> string
val pp_report : Format.formatter -> t -> unit

(** [report t] is the per-loop classification dump (see README). *)
val report : t -> string
