(* The whole-program analysis driver (paper §5.3): classify loops from
   the innermost out, computing trip counts and symbolic exit values as
   each countable loop completes so that enclosing loops see inner loops
   as closed-form updates; finally, walk back outer-to-inner and rewrite
   inner initial values that are outer-loop induction variables into the
   paper's nested multiloop tuples. *)


type loop_result = {
  loop : Ir.Loops.loop;
  table : Ivclass.t Ir.Instr.Id.Table.t;
  graph : Ssa_graph.t;
  trip : Trip_count.t;
}

type t = {
  ssa : Ir.Ssa.t;
  sccp : Sccp.result option;
  by_loop : loop_result option array; (* indexed by loop id *)
  exit_values : Sym.t Ir.Instr.Id.Table.t;
}

let ssa t = t.ssa
let sccp t = t.sccp

let loop_result t loop_id = t.by_loop.(loop_id)

let trip_count t loop_id =
  match t.by_loop.(loop_id) with
  | Some r -> r.trip
  | None -> Trip_count.unknown

let exit_value t id = Ir.Instr.Id.Table.find_opt t.exit_values id

(* [class_of t id] is the classification of a def in its innermost loop;
   defs outside all loops are invariant. *)
let class_of t id : Ivclass.t =
  let loops = Ir.Ssa.loops t.ssa in
  let label = Ir.Cfg.block_of_instr (Ir.Ssa.cfg t.ssa) id in
  match Ir.Loops.innermost loops label with
  | Some lp -> (
    match t.by_loop.(lp) with
    | Some r ->
      Option.value ~default:Ivclass.Unknown (Ir.Instr.Id.Table.find_opt r.table id)
    | None -> Ivclass.Unknown)
  | None -> Invariant (Sym.def id)

(* [class_of_name t name] looks a classification up by SSA name ("j2"). *)
let class_of_name t name : Ivclass.t option =
  match Ir.Ssa.value_of_name t.ssa name with
  | Some (Ir.Instr.Def id) -> Some (class_of t id)
  | Some (Ir.Instr.Const c) -> Some (Invariant (Sym.of_int c))
  | Some (Ir.Instr.Param x) -> Some (Invariant (Sym.param x))
  | None -> None

(* [global_class_of t v] expresses a value's classification in the frame
   of the whole loop nest: invariant symbols whose atoms are defs that
   vary in *outer* loops are expanded through those defs' classifications
   (so a subscript like "i - 1" computed in an inner loop resolves to a
   linear IV of the outer loop, as dependence testing needs). *)
let rec global_class_of t (v : Ir.Instr.value) : Ivclass.t =
  match v with
  | Ir.Instr.Const c -> Invariant (Sym.of_int c)
  | Ir.Instr.Param x -> Invariant (Sym.param x)
  | Ir.Instr.Def d -> (
    match class_of t d with
    (* Opaque invariants are their own atom; expanding would loop. *)
    | Ivclass.Invariant s when Sym.equal s (Sym.def d) -> Ivclass.Invariant s
    | c -> resolve_global t c)

and resolve_global t (c : Ivclass.t) : Ivclass.t =
  match c with
  | Ivclass.Invariant s -> global_class_of_sym t s
  | Ivclass.Linear l -> (
    match resolve_global t l.Ivclass.base with
    | Ivclass.Unknown -> Ivclass.Unknown
    | base -> Ivclass.Linear { l with base })
  | c -> c

and global_class_of_sym t (s : Sym.t) : Ivclass.t =
  let atom_class = function
    | Sym.Param x -> Ivclass.Invariant (Sym.param x)
    | Sym.Def d -> (
      match global_class_of t (Ir.Instr.Def d) with
      | Ivclass.Unknown ->
        (* An unknown-classified def is not provably invariant anywhere:
           stay conservative. *)
        Ivclass.Unknown
      | c -> c)
  in
  List.fold_left
    (fun acc ((mono, coeff) : Sym.mono * Bignum.Rat.t) ->
      let term =
        List.fold_left
          (fun acc (a, p) ->
            let rec pow acc n =
              if n = 0 then acc else pow (Algebra.mul acc (atom_class a)) (n - 1)
            in
            pow acc p)
          (Ivclass.Invariant (Sym.of_rat coeff))
          mono
      in
      Algebra.add acc term)
    (Ivclass.Invariant Sym.zero)
    (s : (Sym.mono * Bignum.Rat.t) list)

(* --- exit values (§5.3) --- *)

let compute_exit_values (t : t) (r : loop_result) =
  match (Trip_count.count_sym r.trip, r.trip.Trip_count.exit_block) with
  | Some tc, Some exit_block ->
    let cfg = Ir.Ssa.cfg t.ssa in
    let dom = Ir.Ssa.dom t.ssa in
    let tc_int =
      match Trip_count.count_int r.trip with Some n -> Some n | None -> None
    in
    List.iter
      (fun (instr : Ir.Instr.t) ->
        let d = instr.Ir.Instr.id in
        match Ir.Instr.Id.Table.find_opt r.table d with
        | None | Some Ivclass.Unknown | Some (Ivclass.Monotonic _) -> ()
        | Some c ->
          let block = Ir.Cfg.block_of_instr cfg d in
          (* Code not dominated by the exit test runs tc+1 times (last
             iteration index tc); code dominated by it and executed every
             stay-iteration runs tc times (last index tc-1). *)
          let above = Ir.Dom.dominates dom block exit_block in
          let below =
            (not (Ir.Label.equal block exit_block))
            && Ir.Dom.dominates dom exit_block block
            && List.for_all
                 (fun latch -> Ir.Dom.dominates dom block latch)
                 r.loop.Ir.Loops.latches
          in
          let h_sym =
            if above then Some tc
            else if below then begin
              match tc_int with
              | Some 0 -> None (* the body below the test never ran *)
              | _ -> Some (Sym.sub tc Sym.one)
            end
            else None
          in
          let exit_sym =
            match h_sym with
            | None -> None
            | Some h -> (
              match Algebra.sym_at_sym c h with
              | Some s -> Some s
              | None -> (
                (* Non-polynomial closed forms still evaluate at a
                   concrete trip count. *)
                match tc_int with
                | Some n ->
                  let h_int = if above then n else n - 1 in
                  if h_int < 0 then None else Algebra.sym_at c h_int
                | None -> None))
          in
          (match exit_sym with
           | Some s -> Ir.Instr.Id.Table.replace t.exit_values d s
           | None -> ()))
      (Ssa_graph.nodes r.graph)
  | _ -> ()

(* --- multiloop promotion (§5.3 and Figs 8-9) --- *)

let promote (t : t) =
  let loops = Ir.Ssa.loops t.ssa in
  (* Outer loops first, so inner promotions can nest through them. *)
  let rec preorder id acc =
    let lp = Ir.Loops.loop loops id in
    List.fold_left (fun acc c -> preorder c acc) (id :: acc) lp.Ir.Loops.loop_children
  in
  let order = List.rev (List.fold_left (fun acc r -> preorder r acc) [] (Ir.Loops.roots loops)) in
  List.iter
    (fun id ->
      let lp = Ir.Loops.loop loops id in
      match (lp.Ir.Loops.parent, t.by_loop.(id)) with
      | Some parent_id, Some r -> (
        match t.by_loop.(parent_id) with
        | None -> ()
        | Some parent_r ->
          let parent_ctx =
            {
              Classify.ssa = t.ssa;
              loop = parent_r.loop;
              graph = parent_r.graph;
              table = parent_r.table;
              outer_const = (fun _ -> None);
              inner_exit = (fun d -> Ir.Instr.Id.Table.find_opt t.exit_values d);
            }
          in
          let entries =
            Ir.Instr.Id.Table.fold (fun d c acc -> (d, c) :: acc) r.table []
          in
          List.iter
            (fun (d, c) ->
              match c with
              | Ivclass.Linear { loop; base = Ivclass.Invariant s; step }
                when not (Sym.is_const s) -> (
                let base_class = Classify.class_of_sym parent_ctx s in
                let step_inv =
                  match Classify.class_of_sym parent_ctx step with
                  | Ivclass.Invariant _ -> true
                  | _ -> false
                in
                match base_class with
                | Ivclass.Linear _ | Ivclass.Poly _ | Ivclass.Geometric _
                  when step_inv ->
                  Ir.Instr.Id.Table.replace r.table d
                    (Ivclass.Linear { loop; base = base_class; step })
                | _ -> ())
              | _ -> ())
            entries)
      | _ -> ())
    order

(* --- entry point --- *)

(* [analyze ssa] classifies every loop of the program. [use_sccp]
   (default true) runs conditional constant propagation first and feeds
   proven constants into symbolic initial values. *)
let analyze ?(use_sccp = true) (ssa : Ir.Ssa.t) : t =
  Obs.Trace.with_span ~cat:"pipeline" "pipeline.analyze" @@ fun () ->
  let sccp =
    if use_sccp then
      Some (Obs.Trace.with_span ~cat:"pipeline" "pipeline.sccp" (fun () -> Sccp.run ssa))
    else None
  in
  let outer_const =
    match sccp with
    | Some r -> fun d -> Option.map Sym.of_int (Sccp.const_of r d)
    | None -> fun _ -> None
  in
  let loops = Ir.Ssa.loops ssa in
  let t =
    {
      ssa;
      sccp;
      by_loop = Array.make (Ir.Loops.num_loops loops) None;
      exit_values = Ir.Instr.Id.Table.create 64;
    }
  in
  let inner_exit d = Ir.Instr.Id.Table.find_opt t.exit_values d in
  List.iter
    (fun (lp : Ir.Loops.loop) ->
      Obs.Trace.with_span ~cat:"pipeline"
        ~attrs:
          [ ("loop", Obs.Trace.Str lp.Ir.Loops.name);
            ("depth", Obs.Trace.Int lp.Ir.Loops.depth) ]
        "pipeline.classify_loop"
      @@ fun () ->
      let table, graph = Classify.classify_loop ~outer_const ~inner_exit ssa lp in
      let ctx =
        { Classify.ssa; loop = lp; graph; table; outer_const; inner_exit }
      in
      let trip =
        Obs.Trace.with_span ~cat:"pipeline"
          ~attrs:[ ("loop", Obs.Trace.Str lp.Ir.Loops.name) ]
          "pipeline.trip_count"
          (fun () -> Trip_count.compute ctx)
      in
      let r = { loop = lp; table; graph; trip } in
      t.by_loop.(lp.Ir.Loops.id) <- Some r;
      Obs.Trace.with_span ~cat:"pipeline"
        ~attrs:[ ("loop", Obs.Trace.Str lp.Ir.Loops.name) ]
        "pipeline.exit_values"
        (fun () -> compute_exit_values t r))
    (Ir.Loops.postorder loops);
  Obs.Trace.with_span ~cat:"pipeline" "pipeline.promote" (fun () -> promote t);
  t

(* --- reporting --- *)

let namer t : Ivclass.namer =
  let loops = Ir.Ssa.loops t.ssa in
  {
    Ivclass.loop_name =
      (fun id ->
        if id >= 0 && id < Ir.Loops.num_loops loops then
          (Ir.Loops.loop loops id).Ir.Loops.name
        else "L?");
    atom_name =
      (fun a ->
        match a with
        | Sym.Param x -> Ir.Ident.name x
        | Sym.Def id -> Ir.Ssa.primary_name t.ssa id);
  }

let class_to_string t c = Ivclass.to_string_with (namer t) c

let pp_report fmt t =
  let nm = namer t in
  let loops = Ir.Ssa.loops t.ssa in
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (lp : Ir.Loops.loop) ->
      match t.by_loop.(lp.Ir.Loops.id) with
      | None -> ()
      | Some r ->
        Format.fprintf fmt "@[<v 2>loop %s (depth %d, trip count %a):@,"
          lp.Ir.Loops.name lp.Ir.Loops.depth
          (Trip_count.pp_with (fun id -> Ir.Ssa.primary_name t.ssa id))
          r.trip;
        List.iter
          (fun (instr : Ir.Instr.t) ->
            let name = Ir.Ssa.primary_name t.ssa instr.Ir.Instr.id in
            let c =
              Option.value ~default:Ivclass.Unknown
                (Ir.Instr.Id.Table.find_opt r.table instr.Ir.Instr.id)
            in
            Format.fprintf fmt "%-8s %a@," name (Ivclass.pp_with nm) c)
          (Ssa_graph.nodes r.graph);
        Format.fprintf fmt "@]@,")
    (Ir.Loops.postorder loops);
  Format.fprintf fmt "@]"

let report t = Format.asprintf "%a" pp_report t

(* [analyze_source src] parses, lowers, converts to SSA and analyzes. *)
let analyze_source ?use_sccp src = analyze ?use_sccp (Ir.Ssa.of_source src)
