(* The whole-program analysis driver — a thin façade over
   Analysis.Pipeline, which owns the staged algorithm (the inner-to-
   outer classification walk, trip counts, exit values, multiloop
   promotion). The driver keeps the query surface: classification
   lookups by def / SSA name and the global (whole-nest) resolution
   that dependence testing needs. *)

type loop_result = Pipeline.loop_result = {
  loop : Ir.Loops.loop;
  table : Ivclass.t Ir.Instr.Id.Table.t;
  graph : Ssa_graph.t;
  trip : Trip_count.t;
}

type t = Pipeline.analysis = {
  ssa : Ir.Ssa.t;
  sccp : Sccp.result option;
  by_loop : loop_result option array; (* indexed by loop id *)
  exit_values : Sym.t Ir.Instr.Id.Table.t;
}

let of_analysis (a : Pipeline.analysis) : t = a

let ssa t = t.ssa
let sccp t = t.sccp

let loop_result t loop_id = t.by_loop.(loop_id)

let trip_count t loop_id =
  match t.by_loop.(loop_id) with
  | Some r -> r.trip
  | None -> Trip_count.unknown

let exit_value t id = Ir.Instr.Id.Table.find_opt t.exit_values id

(* [class_of t id] is the classification of a def in its innermost loop;
   defs outside all loops are invariant. *)
let class_of t id : Ivclass.t =
  let loops = Ir.Ssa.loops t.ssa in
  let label = Ir.Cfg.block_of_instr (Ir.Ssa.cfg t.ssa) id in
  match Ir.Loops.innermost loops label with
  | Some lp -> (
    match t.by_loop.(lp) with
    | Some r ->
      Option.value ~default:Ivclass.Unknown (Ir.Instr.Id.Table.find_opt r.table id)
    | None -> Ivclass.Unknown)
  | None -> Invariant (Sym.def id)

(* [class_of_name t name] looks a classification up by SSA name ("j2"). *)
let class_of_name t name : Ivclass.t option =
  match Ir.Ssa.value_of_name t.ssa name with
  | Some (Ir.Instr.Def id) -> Some (class_of t id)
  | Some (Ir.Instr.Const c) -> Some (Invariant (Sym.of_int c))
  | Some (Ir.Instr.Param x) -> Some (Invariant (Sym.param x))
  | None -> None

(* [global_class_of t v] expresses a value's classification in the frame
   of the whole loop nest: invariant symbols whose atoms are defs that
   vary in *outer* loops are expanded through those defs' classifications
   (so a subscript like "i - 1" computed in an inner loop resolves to a
   linear IV of the outer loop, as dependence testing needs). *)
let rec global_class_of t (v : Ir.Instr.value) : Ivclass.t =
  match v with
  | Ir.Instr.Const c -> Invariant (Sym.of_int c)
  | Ir.Instr.Param x -> Invariant (Sym.param x)
  | Ir.Instr.Def d -> (
    match class_of t d with
    (* Opaque invariants are their own atom; expanding would loop. *)
    | Ivclass.Invariant s when Sym.equal s (Sym.def d) -> Ivclass.Invariant s
    | c -> resolve_global t c)

and resolve_global t (c : Ivclass.t) : Ivclass.t =
  match c with
  | Ivclass.Invariant s -> global_class_of_sym t s
  | Ivclass.Linear l -> (
    match resolve_global t l.Ivclass.base with
    | Ivclass.Unknown -> Ivclass.Unknown
    | base -> Ivclass.Linear { l with base })
  | c -> c

and global_class_of_sym t (s : Sym.t) : Ivclass.t =
  let atom_class = function
    | Sym.Param x -> Ivclass.Invariant (Sym.param x)
    | Sym.Def d -> (
      match global_class_of t (Ir.Instr.Def d) with
      | Ivclass.Unknown ->
        (* An unknown-classified def is not provably invariant anywhere:
           stay conservative. *)
        Ivclass.Unknown
      | c -> c)
  in
  List.fold_left
    (fun acc ((mono, coeff) : Sym.mono * Bignum.Rat.t) ->
      let term =
        List.fold_left
          (fun acc (a, p) ->
            let rec pow acc n =
              if n = 0 then acc else pow (Algebra.mul acc (atom_class a)) (n - 1)
            in
            pow acc p)
          (Ivclass.Invariant (Sym.of_rat coeff))
          mono
      in
      Algebra.add acc term)
    (Ivclass.Invariant Sym.zero)
    (s : (Sym.mono * Bignum.Rat.t) list)

(* --- entry point (delegates to the staged pipeline) --- *)

let analyze ?use_sccp (ssa : Ir.Ssa.t) : t = Pipeline.run ?use_sccp ssa

(* [ranges t] runs the value-range analysis over the (promoted)
   classification — a fresh computation; cached access goes through the
   pipeline instance / engine. *)
let ranges (t : t) : Range.t = Pipeline.range_of t

(* --- reporting --- *)

let namer t : Ivclass.namer = Pipeline.namer_of t
let class_to_string t c = Ivclass.to_string_with (namer t) c
let pp_report fmt t = Pipeline.pp_report fmt t
let report t = Pipeline.report_of t

(* [analyze_source src] parses, lowers, converts to SSA and analyzes. *)
let analyze_source ?use_sccp src = analyze ?use_sccp (Ir.Ssa.of_source src)
