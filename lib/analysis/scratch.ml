(* Per-domain reusable scratch buffers for the analysis hot paths.

   PR 7's GC attribution showed cold multi-domain runs promoting ~3×
   the major-heap words of a 1-domain run: every per-task working set
   (Tarjan's bookkeeping tables, SCCP's def-use worklists, the
   dependence tester's distance merges) was allocated fresh per call,
   and under several domains the interleaved lifetimes pushed them out
   of the minor heap. The fix is allocation discipline, not a faster
   allocator: each domain keeps one capsule of grow-only buffers
   ([Hashtbl.clear] and [Queue.clear] keep their backing capacity), a
   consumer borrows a group for the duration of one call, and the
   buffers are emptied on release so no analysis data outlives the
   borrow.

   Borrowing is strictly per-domain (the capsule lives in domain-local
   storage — no locks, no sharing) and reentrant-safe: a nested borrow
   of an already-borrowed group falls back to fresh throwaway buffers
   rather than corrupting the outer user. *)

type tarjan = {
  index : (int, int) Hashtbl.t;
  lowlink : (int, int) Hashtbl.t;
  on_stack : (int, unit) Hashtbl.t;
}

type sccp = {
  users : Ir.Instr.t list Ir.Instr.Id.Table.t;
  branch_users : Ir.Label.t list Ir.Instr.Id.Table.t;
  edge_exec : (Ir.Label.t * Ir.Label.t, unit) Hashtbl.t;
  flow_work : (Ir.Label.t * Ir.Label.t) Queue.t;
  ssa_work : Ir.Instr.t Queue.t;
}

let fresh_tarjan () =
  {
    index = Hashtbl.create 64;
    lowlink = Hashtbl.create 64;
    on_stack = Hashtbl.create 64;
  }

let fresh_sccp () =
  {
    users = Ir.Instr.Id.Table.create 256;
    branch_users = Ir.Instr.Id.Table.create 16;
    edge_exec = Hashtbl.create 64;
    flow_work = Queue.create ();
    ssa_work = Queue.create ();
  }

let clear_tarjan t =
  Hashtbl.clear t.index;
  Hashtbl.clear t.lowlink;
  Hashtbl.clear t.on_stack

let clear_sccp s =
  Ir.Instr.Id.Table.clear s.users;
  Ir.Instr.Id.Table.clear s.branch_users;
  Hashtbl.clear s.edge_exec;
  Queue.clear s.flow_work;
  Queue.clear s.ssa_work

(* [None] marks a group as currently borrowed. *)
type capsule = {
  mutable c_tarjan : tarjan option;
  mutable c_sccp : sccp option;
  mutable c_dist : (int, int) Hashtbl.t option;
}

let capsule : capsule Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        c_tarjan = Some (fresh_tarjan ());
        c_sccp = Some (fresh_sccp ());
        c_dist = Some (Hashtbl.create 16);
      })

let borrow get set clear fresh f =
  let c = Domain.DLS.get capsule in
  match get c with
  | None -> f (fresh ()) (* nested borrow: fresh throwaway buffers *)
  | Some buf ->
    set c None;
    Fun.protect
      ~finally:(fun () ->
        clear buf;
        set c (Some buf))
      (fun () -> f buf)

let with_tarjan f =
  borrow
    (fun c -> c.c_tarjan)
    (fun c v -> c.c_tarjan <- v)
    clear_tarjan fresh_tarjan f

let with_sccp f =
  borrow (fun c -> c.c_sccp) (fun c v -> c.c_sccp <- v) clear_sccp fresh_sccp f

let with_distances f =
  borrow
    (fun c -> c.c_dist)
    (fun c v -> c.c_dist <- v)
    Hashtbl.clear
    (fun () -> Hashtbl.create 16)
    f
