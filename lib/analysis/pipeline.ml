(* The demand-driven analysis pipeline.

   The staged algorithm (loopwalk / promote / run) is the former
   Driver.analyze, moved here verbatim so the driver can become a thin
   façade; the lazy instance below adds per-pass memoization with
   stable result digests for the service layer's cache keys. *)

(* -- the pass DAG -- *)

type pass =
  | Parse
  | Lower
  | Ssa
  | Looptree
  | Sccp
  | Units
  | Unitclassify
  | Classify
  | Trip
  | Promote
  | Ranges
  | Depgraph
  | VerifyIr
  | VerifyClass
  | VerifyRanges
  | VerifyTrans

let all =
  [
    Parse;
    Lower;
    Ssa;
    VerifyIr;
    Looptree;
    Sccp;
    Units;
    Unitclassify;
    Classify;
    Trip;
    Promote;
    Ranges;
    Depgraph;
    VerifyClass;
    VerifyRanges;
    VerifyTrans;
  ]

let name = function
  | Parse -> "parse"
  | Lower -> "lower"
  | Ssa -> "ssa"
  | Looptree -> "looptree"
  | Sccp -> "sccp"
  | Units -> "units"
  | Unitclassify -> "unit_classify"
  | Classify -> "classify"
  | Trip -> "trip"
  | Promote -> "promote"
  | Ranges -> "range"
  | Depgraph -> "depgraph"
  | VerifyIr -> "verify_ir"
  | VerifyClass -> "verify_class"
  | VerifyRanges -> "verify_ranges"
  | VerifyTrans -> "verify_trans"

let of_name = function
  | "parse" -> Some Parse
  | "lower" -> Some Lower
  | "ssa" -> Some Ssa
  | "looptree" -> Some Looptree
  | "sccp" -> Some Sccp
  | "units" -> Some Units
  | "unit_classify" -> Some Unitclassify
  | "classify" -> Some Classify
  | "trip" -> Some Trip
  | "promote" -> Some Promote
  | "range" -> Some Ranges
  | "depgraph" -> Some Depgraph
  | "verify_ir" -> Some VerifyIr
  | "verify_class" -> Some VerifyClass
  | "verify_ranges" -> Some VerifyRanges
  | "verify_trans" -> Some VerifyTrans
  | _ -> None

(* Ssa depends on Parse, not Lower: SSA conversion mutates the CFG it
   consumes, so the Lower pass keeps the pristine pre-SSA view and the
   SSA pass lowers its own copy from the AST. *)
let inputs = function
  | Parse -> []
  | Lower -> [ Parse ]
  | Ssa -> [ Parse ]
  | Looptree -> [ Ssa ]
  | Sccp -> [ Ssa ]
  | Units -> [ Looptree; Sccp ]
  | Unitclassify -> [ Units ]
  | Classify -> [ Looptree; Sccp ]
  | Trip -> [ Classify ]
  | Promote -> [ Classify ]
  | Ranges -> [ Promote ]
  | Depgraph -> [ Promote ]
  | VerifyIr -> [ Lower; Ssa ]
  | VerifyClass -> [ Promote ]
  | VerifyRanges -> [ Ranges ]
  | VerifyTrans -> [ Parse; Promote ]

let description = function
  | Parse -> "source text -> AST"
  | Lower -> "AST -> pre-SSA control-flow graph"
  | Ssa -> "AST -> SSA form (CFG, dominators, loop forest)"
  | Looptree -> "SSA -> loop-nesting forest"
  | Sccp -> "conditional constant propagation"
  | Units -> "analysis-unit partition: loop nests + straight runs, per-unit digests"
  | Unitclassify -> "per-unit classification walk through the unit cache (service layer)"
  | Classify -> "per-loop IV classification, trip counts, exit values"
  | Trip -> "trip-count report"
  | Promote -> "multiloop promotion (nested IV tuples)"
  | Ranges -> "per-def value intervals (classification + SCCP seeds, widened fixpoint)"
  | Depgraph -> "dependence graph (service layer)"
  | VerifyIr -> "structural IR verification: CFG, SSA, looptree (service layer)"
  | VerifyClass -> "classification oracle vs the interpreter (service layer)"
  | VerifyRanges -> "range-interval oracle vs the interpreter (service layer)"
  | VerifyTrans -> "transform validation, structural + differential (service layer)"

(* Passes whose results the pipeline cannot compute itself: the engine
   forces them (dependence testing lives in lib/dependence, checked mode
   in lib/verify, and the unit walk needs the engine's shared artifact
   cache) and records completion with [note]. *)
let engine_forced = function
  | Depgraph | VerifyIr | VerifyClass | VerifyRanges | VerifyTrans
  | Unitclassify ->
    true
  | Parse | Lower | Ssa | Looptree | Sccp | Units | Classify | Trip | Promote
  | Ranges ->
    false

(* -- options -- *)

type options = { use_sccp : bool }

let default_options = { use_sccp = true }

(* -- the analysis payload -- *)

type loop_result = {
  loop : Ir.Loops.loop;
  table : Ivclass.t Ir.Instr.Id.Table.t;
  graph : Ssa_graph.t;
  trip : Trip_count.t;
}

type analysis = {
  ssa : Ir.Ssa.t;
  sccp : Sccp.result option;
  by_loop : loop_result option array; (* indexed by loop id *)
  exit_values : Sym.t Ir.Instr.Id.Table.t;
}

(* -- exit values (paper §5.3) -- *)

let compute_exit_values (t : analysis) (r : loop_result) =
  match (Trip_count.count_sym r.trip, r.trip.Trip_count.exit_block) with
  | Some tc, Some exit_block ->
    let cfg = Ir.Ssa.cfg t.ssa in
    let dom = Ir.Ssa.dom t.ssa in
    let tc_int =
      match Trip_count.count_int r.trip with Some n -> Some n | None -> None
    in
    List.iter
      (fun (instr : Ir.Instr.t) ->
        let d = instr.Ir.Instr.id in
        match Ir.Instr.Id.Table.find_opt r.table d with
        | None | Some Ivclass.Unknown | Some (Ivclass.Monotonic _) -> ()
        | Some c ->
          let block = Ir.Cfg.block_of_instr cfg d in
          (* Code not dominated by the exit test runs tc+1 times (last
             iteration index tc); code dominated by it and executed every
             stay-iteration runs tc times (last index tc-1). *)
          let above = Ir.Dom.dominates dom block exit_block in
          let below =
            (not (Ir.Label.equal block exit_block))
            && Ir.Dom.dominates dom exit_block block
            && List.for_all
                 (fun latch -> Ir.Dom.dominates dom block latch)
                 r.loop.Ir.Loops.latches
          in
          let h_sym =
            if above then Some tc
            else if below then begin
              match tc_int with
              | Some 0 -> None (* the body below the test never ran *)
              | _ -> Some (Sym.sub tc Sym.one)
            end
            else None
          in
          let exit_sym =
            match h_sym with
            | None -> None
            | Some h -> (
              match Algebra.sym_at_sym c h with
              | Some s -> Some s
              | None -> (
                (* Non-polynomial closed forms still evaluate at a
                   concrete trip count. *)
                match tc_int with
                | Some n ->
                  let h_int = if above then n else n - 1 in
                  if h_int < 0 then None else Algebra.sym_at c h_int
                | None -> None))
          in
          (match exit_sym with
           | Some s -> Ir.Instr.Id.Table.replace t.exit_values d s
           | None -> ()))
      (Ssa_graph.nodes r.graph)
  | _ -> ()

(* -- the inner-to-outer classification walk (§5.2–5.3) -- *)

let outer_const_of sccp =
  match sccp with
  | Some r -> fun d -> Option.map Sym.of_int (Sccp.const_of r d)
  | None -> fun _ -> None

let empty_analysis ?sccp (ssa : Ir.Ssa.t) =
  {
    ssa;
    sccp;
    by_loop = Array.make (Ir.Loops.num_loops (Ir.Ssa.loops ssa)) None;
    exit_values = Ir.Instr.Id.Table.create 64;
  }

(* Classify one loop (its SCRs, trip count and exit values) into [t].
   Inner loops of the same nest must already be classified — nothing
   else: exit values never cross a nest boundary (the [inner_exit]
   lookup is guarded by loop membership in [Classify.class_of_def]), so
   walking one nest at a time is equivalent to the whole-program walk. *)
let classify_one (t : analysis) ~outer_const ~inner_exit (lp : Ir.Loops.loop) =
  Obs.Trace.with_span ~cat:"pipeline"
    ~attrs:
      [ ("loop", Obs.Trace.Str lp.Ir.Loops.name);
        ("depth", Obs.Trace.Int lp.Ir.Loops.depth) ]
    "pipeline.classify_loop"
  @@ fun () ->
  let table, graph =
    Classify.classify_loop ~outer_const ~inner_exit t.ssa lp
  in
  let ctx =
    { Classify.ssa = t.ssa; loop = lp; graph; table; outer_const; inner_exit }
  in
  let trip =
    Obs.Trace.with_span ~cat:"pipeline"
      ~attrs:[ ("loop", Obs.Trace.Str lp.Ir.Loops.name) ]
      "pipeline.trip_count"
      (fun () -> Trip_count.compute ctx)
  in
  let r = { loop = lp; table; graph; trip } in
  t.by_loop.(lp.Ir.Loops.id) <- Some r;
  Obs.Trace.with_span ~cat:"pipeline"
    ~attrs:[ ("loop", Obs.Trace.Str lp.Ir.Loops.name) ]
    "pipeline.exit_values"
    (fun () -> compute_exit_values t r)

let loopwalk ?sccp (ssa : Ir.Ssa.t) : analysis =
  let outer_const = outer_const_of sccp in
  let t = empty_analysis ?sccp ssa in
  let inner_exit d = Ir.Instr.Id.Table.find_opt t.exit_values d in
  List.iter
    (fun lp -> classify_one t ~outer_const ~inner_exit lp)
    (Ir.Loops.postorder (Ir.Ssa.loops ssa));
  t

(* -- multiloop promotion (§5.3 and Figs 8-9) -- *)

(* Promotion relates a loop only to its ancestors in the same nest, so
   promoting one nest's roots at a time is equivalent to the whole
   forest ([promote] below). *)
let promote_roots (t : analysis) roots =
  let loops = Ir.Ssa.loops t.ssa in
  (* Outer loops first, so inner promotions can nest through them. *)
  let rec preorder id acc =
    let lp = Ir.Loops.loop loops id in
    List.fold_left (fun acc c -> preorder c acc) (id :: acc) lp.Ir.Loops.loop_children
  in
  let order = List.rev (List.fold_left (fun acc r -> preorder r acc) [] roots) in
  List.iter
    (fun id ->
      let lp = Ir.Loops.loop loops id in
      match (lp.Ir.Loops.parent, t.by_loop.(id)) with
      | Some parent_id, Some r -> (
        match t.by_loop.(parent_id) with
        | None -> ()
        | Some parent_r ->
          let parent_ctx =
            {
              Classify.ssa = t.ssa;
              loop = parent_r.loop;
              graph = parent_r.graph;
              table = parent_r.table;
              outer_const = (fun _ -> None);
              inner_exit = (fun d -> Ir.Instr.Id.Table.find_opt t.exit_values d);
            }
          in
          let entries =
            Ir.Instr.Id.Table.fold (fun d c acc -> (d, c) :: acc) r.table []
          in
          List.iter
            (fun (d, c) ->
              match c with
              | Ivclass.Linear { loop; base = Ivclass.Invariant s; step }
                when not (Sym.is_const s) -> (
                let base_class = Classify.class_of_sym parent_ctx s in
                let step_inv =
                  match Classify.class_of_sym parent_ctx step with
                  | Ivclass.Invariant _ -> true
                  | _ -> false
                in
                match base_class with
                | Ivclass.Linear _ | Ivclass.Poly _ | Ivclass.Geometric _
                  when step_inv ->
                  Ir.Instr.Id.Table.replace r.table d
                    (Ivclass.Linear { loop; base = base_class; step })
                | _ -> ())
              | _ -> ())
            entries)
      | _ -> ())
    order

let promote (t : analysis) =
  promote_roots t (Ir.Loops.roots (Ir.Ssa.loops t.ssa))

(* -- the whole chain (the former Driver.analyze) -- *)

let run ?(use_sccp = true) (ssa : Ir.Ssa.t) : analysis =
  Obs.Trace.with_span ~cat:"pipeline" "pipeline.analyze" @@ fun () ->
  let sccp =
    if use_sccp then
      Some (Obs.Trace.with_span ~cat:"pipeline" "pipeline.sccp" (fun () -> Sccp.run ssa))
    else None
  in
  let t = loopwalk ?sccp ssa in
  Obs.Trace.with_span ~cat:"pipeline" "pipeline.promote" (fun () -> promote t);
  t

(* -- report renderers -- *)

let namer_of (t : analysis) : Ivclass.namer =
  let loops = Ir.Ssa.loops t.ssa in
  {
    Ivclass.loop_name =
      (fun id ->
        if id >= 0 && id < Ir.Loops.num_loops loops then
          (Ir.Loops.loop loops id).Ir.Loops.name
        else "L?");
    atom_name =
      (fun a ->
        match a with
        | Sym.Param x -> Ir.Ident.name x
        | Sym.Def id -> Ir.Ssa.primary_name t.ssa id);
  }

let pp_report fmt (t : analysis) =
  let nm = namer_of t in
  let loops = Ir.Ssa.loops t.ssa in
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (lp : Ir.Loops.loop) ->
      match t.by_loop.(lp.Ir.Loops.id) with
      | None -> ()
      | Some r ->
        Format.fprintf fmt "@[<v 2>loop %s (depth %d, trip count %a):@,"
          lp.Ir.Loops.name lp.Ir.Loops.depth
          (Trip_count.pp_with (fun id -> Ir.Ssa.primary_name t.ssa id))
          r.trip;
        List.iter
          (fun (instr : Ir.Instr.t) ->
            let name = Ir.Ssa.primary_name t.ssa instr.Ir.Instr.id in
            let c =
              Option.value ~default:Ivclass.Unknown
                (Ir.Instr.Id.Table.find_opt r.table instr.Ir.Instr.id)
            in
            Format.fprintf fmt "%-8s %a@," name (Ivclass.pp_with nm) c)
          (Ssa_graph.nodes r.graph);
        Format.fprintf fmt "@]@,")
    (Ir.Loops.postorder loops);
  Format.fprintf fmt "@]"

let report_of (t : analysis) = Format.asprintf "%a" pp_report t

let trip_report_of (t : analysis) =
  let loops = Ir.Ssa.loops t.ssa in
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  List.iter
    (fun (lp : Ir.Loops.loop) ->
      let trip =
        match t.by_loop.(lp.Ir.Loops.id) with
        | Some r -> r.trip
        | None -> Trip_count.unknown
      in
      Format.fprintf fmt "loop %-8s trips: %a" lp.Ir.Loops.name
        (Trip_count.pp_with (fun id -> Ir.Ssa.primary_name t.ssa id))
        trip;
      (match Trip_count.max_count_int trip with
       | Some n when Trip_count.count_int trip = None ->
         Format.fprintf fmt " (at most %d)" n
       | _ -> ());
      Format.fprintf fmt "@.")
    (Ir.Loops.postorder loops);
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(* -- analysis units (incremental re-analysis) -- *)

type unit_info = {
  region : Ir.Region.unit_;
  uroots : int list; (* root loop ids of the unit's nests, program order *)
  uloops : int list; (* every loop id of the unit, inner-to-outer *)
  udigest : Hash.Fnv.t; (* exact key over the unit's slice of the program *)
}

type unit_artifact = {
  ua_results : loop_result list; (* promoted; aligned with [uloops] *)
  ua_exits : (Ir.Instr.Id.t * Sym.t) list; (* the unit's exit values *)
}

type unit_outcome = {
  u_index : int; (* Region unit index *)
  u_loops : string list; (* the unit's outermost loop names *)
  u_hit : bool; (* the artifact came from the unit cache *)
}

(* Loop ids are assigned in program order of headers, so the k-th nest
   unit's outermost loops are the next [outer_loops] roots of the
   forest. [map_units] pairs them up; a count mismatch (e.g. a loop the
   CFG dropped as unreachable) returns None and callers fall back to
   the whole-program walk. *)
let map_units loops (regions : Ir.Region.unit_ list) =
  let rec take n xs =
    if n = 0 then Some ([], xs)
    else
      match xs with
      | [] -> None
      | x :: tl ->
        Option.map (fun (taken, rest) -> (x :: taken, rest)) (take (n - 1) tl)
  in
  let rec go regions roots acc =
    match regions with
    | [] -> if roots = [] then Some (List.rev acc) else None
    | (r : Ir.Region.unit_) :: tl -> (
      match take r.Ir.Region.outer_loops roots with
      | None -> None
      | Some (mine, rest) -> go tl rest ((r, mine) :: acc))
  in
  go regions (Ir.Loops.roots loops) []

module Int_set = Set.Make (Int)

(* All loops of the given nests, inner-to-outer (the whole-program
   postorder restricted to the nests' descendants). *)
let unit_loop_ids loops uroots =
  let rec add acc id =
    let lp = Ir.Loops.loop loops id in
    List.fold_left add (Int_set.add id acc) lp.Ir.Loops.loop_children
  in
  let mine = List.fold_left add Int_set.empty uroots in
  List.filter_map
    (fun (lp : Ir.Loops.loop) ->
      if Int_set.mem lp.Ir.Loops.id mine then Some lp.Ir.Loops.id else None)
    (Ir.Loops.postorder loops)

let feed_value d (v : Ir.Instr.value) =
  match v with
  | Ir.Instr.Const n -> Hash.Fnv.feed_int (Hash.Fnv.feed_string d "c") n
  | Ir.Instr.Def id -> Hash.Fnv.feed_int (Hash.Fnv.feed_string d "d") id
  | Ir.Instr.Param x ->
    Hash.Fnv.feed_string (Hash.Fnv.feed_string d "p") (Ir.Ident.name x)

let feed_op d (op : Ir.Instr.op) =
  let d = Hash.Fnv.feed_string d (Ir.Instr.op_name op) in
  match op with
  | Ir.Instr.Load x | Ir.Instr.Store x | Ir.Instr.Aload x | Ir.Instr.Astore x
    ->
    Hash.Fnv.feed_string d (Ir.Ident.name x)
  | Ir.Instr.Binop _ | Ir.Instr.Relop _ | Ir.Instr.Neg | Ir.Instr.Phi
  | Ir.Instr.Rand ->
    d

let feed_term d (term : Ir.Cfg.terminator) =
  match term with
  | Ir.Cfg.Jump l -> Hash.Fnv.feed_int (Hash.Fnv.feed_string d "jmp") l
  | Ir.Cfg.Branch (v, a, b) ->
    Hash.Fnv.feed_int
      (Hash.Fnv.feed_int (feed_value (Hash.Fnv.feed_string d "br") v) a)
      b
  | Ir.Cfg.Halt -> Hash.Fnv.feed_string d "halt"

(* The unit key: an exact digest of everything the per-unit walk can
   observe. The canonical source slice and options; the unit's loops
   (ids, headers, forest shape); every in-loop instruction with its id,
   operation and operands; block terminators (in-nest control flow
   determines dominance and exit structure); and, for every def the
   unit defines or reads, its SSA primary name and SCCP constant fact
   (this covers defs flowing in from outside the unit, such as
   initializers). A key hit therefore guarantees the cached
   instruction-id-keyed tables are valid verbatim in the new program. *)
let unit_digest ~use_sccp ssa sccp (region : Ir.Region.unit_) uloops =
  let loops = Ir.Ssa.loops ssa in
  let cfg = Ir.Ssa.cfg ssa in
  let d = ref (Hash.Fnv.of_strings [ "unit"; Ir.Region.source_slice region ]) in
  let feed f x = d := f !d x in
  d := Hash.Fnv.feed_bool !d use_sccp;
  let mentioned = ref Ir.Instr.Id.Set.empty in
  let mention id = mentioned := Ir.Instr.Id.Set.add id !mentioned in
  let blocks = ref Ir.Label.Set.empty in
  List.iter
    (fun lid ->
      let lp = Ir.Loops.loop loops lid in
      feed Hash.Fnv.feed_int lp.Ir.Loops.id;
      feed Hash.Fnv.feed_string lp.Ir.Loops.name;
      feed Hash.Fnv.feed_int lp.Ir.Loops.header;
      feed Hash.Fnv.feed_int lp.Ir.Loops.depth;
      feed Hash.Fnv.feed_int (Option.value ~default:(-1) lp.Ir.Loops.parent);
      List.iter (feed Hash.Fnv.feed_int) lp.Ir.Loops.loop_children;
      List.iter (feed Hash.Fnv.feed_int) lp.Ir.Loops.latches;
      blocks := Ir.Label.Set.union !blocks lp.Ir.Loops.blocks)
    uloops;
  Ir.Label.Set.iter
    (fun label ->
      let b = Ir.Cfg.block cfg label in
      feed Hash.Fnv.feed_int label;
      (match b.Ir.Cfg.loop_name with
       | Some n -> feed Hash.Fnv.feed_string n
       | None -> ());
      List.iter
        (fun (instr : Ir.Instr.t) ->
          mention instr.Ir.Instr.id;
          feed Hash.Fnv.feed_int instr.Ir.Instr.id;
          d := feed_op !d instr.Ir.Instr.op;
          Array.iter
            (fun v ->
              (match v with Ir.Instr.Def id -> mention id | _ -> ());
              d := feed_value !d v)
            instr.Ir.Instr.args)
        b.Ir.Cfg.instrs;
      (match b.Ir.Cfg.term with
       | Ir.Cfg.Branch (Ir.Instr.Def id, _, _) -> mention id
       | _ -> ());
      d := feed_term !d b.Ir.Cfg.term)
    !blocks;
  Ir.Instr.Id.Set.iter
    (fun id ->
      feed Hash.Fnv.feed_int id;
      feed Hash.Fnv.feed_string (Ir.Ssa.primary_name ssa id);
      feed Hash.Fnv.feed_int
        (match sccp with
         | Some r -> Option.value ~default:min_int (Sccp.const_of r id)
         | None -> min_int))
    !mentioned;
  !d

(* Analyze one unit in isolation: classify its loops inner-to-outer,
   then promote within its nests, exactly as the whole-program walk
   would (see [classify_one] and [promote_roots] for why the
   restriction is equivalence-preserving). Promotion happens here,
   before the artifact reaches the shared cache: a cached table must
   never be mutated again. *)
let analyze_unit ?sccp (ssa : Ir.Ssa.t) (info : unit_info) : unit_artifact =
  Obs.Trace.with_span ~cat:"pipeline"
    ~attrs:[ ("unit", Obs.Trace.Int info.region.Ir.Region.index) ]
    "pipeline.unit"
  @@ fun () ->
  let t = empty_analysis ?sccp ssa in
  let outer_const = outer_const_of sccp in
  let inner_exit d = Ir.Instr.Id.Table.find_opt t.exit_values d in
  let loops = Ir.Ssa.loops ssa in
  List.iter
    (fun id -> classify_one t ~outer_const ~inner_exit (Ir.Loops.loop loops id))
    info.uloops;
  promote_roots t info.uroots;
  {
    ua_results = List.filter_map (fun id -> t.by_loop.(id)) info.uloops;
    ua_exits =
      Ir.Instr.Id.Table.fold (fun d s acc -> (d, s) :: acc) t.exit_values [];
  }

(* Reassemble the whole-program analysis from per-unit artifacts. The
   report renderers and the dependence pass run on the merged record
   unchanged, so incremental output is byte-identical to a cold run by
   construction. *)
let merge_units ?sccp ssa (artifacts : unit_artifact list) : analysis =
  let t = empty_analysis ?sccp ssa in
  List.iter
    (fun ua ->
      List.iter
        (fun r -> t.by_loop.(r.loop.Ir.Loops.id) <- Some r)
        ua.ua_results;
      List.iter
        (fun (d, s) -> Ir.Instr.Id.Table.replace t.exit_values d s)
        ua.ua_exits)
    artifacts;
  t

(* -- the lazy per-source instance -- *)

type t = {
  src : string;
  opts : options;
  base : Hash.Fnv.t;
  lock : Mutex.t;
  (* Memoized pass results. v_classify and v_promote share the same
     analysis record: promotion mutates the classification tables in
     place (idempotently), so after Promote is forced the "classified"
     view reflects promoted classes too. Trip counts and exit values
     are computed before promotion and never change. *)
  mutable v_parse : (Ir.Ast.program, string) result option;
  mutable v_lower : (Ir.Cfg.t, string) result option;
  mutable v_ssa : (Ir.Ssa.t, string) result option;
  mutable v_looptree : (Ir.Loops.t, string) result option;
  mutable v_sccp : (Sccp.result option, string) result option;
  mutable v_units : (unit_info list option, string) result option;
  mutable v_classify : (analysis, string) result option;
  mutable v_trip : (string, string) result option;
  mutable v_promote : (string, string) result option; (* rendered report *)
  mutable v_range : (Range.t * string, string) result option;
  digests : (pass, Hash.Fnv.t) Hashtbl.t;
}

let create ?(options = default_options) src =
  {
    src;
    opts = options;
    base = Hash.Fnv.feed_bool (Hash.Fnv.of_strings [ src ]) options.use_sccp;
    lock = Mutex.create ();
    v_parse = None;
    v_lower = None;
    v_ssa = None;
    v_looptree = None;
    v_sccp = None;
    v_units = None;
    v_classify = None;
    v_trip = None;
    v_promote = None;
    v_range = None;
    digests = Hashtbl.create 11;
  }

let options t = t.opts
let source_digest t = t.base

let set_digest t pass s = Hashtbl.replace t.digests pass (Hash.Fnv.of_strings [ s ])

(* Each stage runs under a "pipeline.<pass>" span on first forcing.
   Callers hold [t.lock]. *)
let staged pass compute =
  Obs.Trace.with_span ~cat:"pipeline"
    ~attrs:[ ("pass", Obs.Trace.Str (name pass)) ]
    ("pipeline." ^ name pass)
    compute

let ensure_parse t =
  match t.v_parse with
  | Some v -> v
  | None ->
    let v =
      staged Parse (fun () -> Ir.Parser.parse_result t.src)
    in
    (match v with
     | Ok prog -> set_digest t Parse (Ir.Ast.to_string prog)
     | Error _ -> ());
    t.v_parse <- Some v;
    v

let ensure_lower t =
  match t.v_lower with
  | Some v -> v
  | None ->
    let v =
      match ensure_parse t with
      | Error e -> Error e
      | Ok prog ->
        let cfg = staged Lower (fun () -> Ir.Lower.lower prog) in
        set_digest t Lower (Ir.Cfg.to_string cfg);
        Ok cfg
    in
    t.v_lower <- Some v;
    v

let ensure_ssa t =
  match t.v_ssa with
  | Some v -> v
  | None ->
    let v =
      match ensure_parse t with
      | Error e -> Error e
      | Ok prog -> (
        let ssa = staged Ssa (fun () -> Ir.Ssa.of_program prog) in
        match Ir.Ssa.check ssa with
        | [] ->
          set_digest t Ssa (Ir.Ssa.to_string ssa);
          Ok ssa
        | errs ->
          Error (String.concat "\n" (List.map Ir.Diag.to_string errs)))
    in
    t.v_ssa <- Some v;
    v

let ensure_looptree t =
  match t.v_looptree with
  | Some v -> v
  | None ->
    let v =
      match ensure_ssa t with
      | Error e -> Error e
      | Ok ssa ->
        let loops = staged Looptree (fun () -> Ir.Ssa.loops ssa) in
        set_digest t Looptree (Format.asprintf "%a" Ir.Loops.pp loops);
        Ok loops
    in
    t.v_looptree <- Some v;
    v

(* The SCCP digest feeds every def's proven constant (in instruction
   order), so two sources with the same constant facts share a digest. *)
let sccp_digest ssa (r : Sccp.result) =
  let d = ref (Hash.Fnv.of_strings [ "sccp" ]) in
  Ir.Cfg.iter_instrs (Ir.Ssa.cfg ssa) (fun _ instr ->
      let id = instr.Ir.Instr.id in
      match Sccp.const_of r id with
      | Some c -> d := Hash.Fnv.feed_int (Hash.Fnv.feed_int !d id) c
      | None -> ());
  !d

let ensure_sccp t =
  match t.v_sccp with
  | Some v -> v
  | None ->
    let v =
      match ensure_ssa t with
      | Error e -> Error e
      | Ok ssa ->
        if not t.opts.use_sccp then begin
          set_digest t Sccp "sccp:off";
          Ok None
        end
        else begin
          let r = staged Sccp (fun () -> Sccp.run ssa) in
          Hashtbl.replace t.digests Sccp (sccp_digest ssa r);
          Ok (Some r)
        end
    in
    t.v_sccp <- Some v;
    v

let ensure_units t =
  match t.v_units with
  | Some v -> v
  | None ->
    let v =
      match
        (ensure_parse t, ensure_looptree t, ensure_sccp t, ensure_ssa t)
      with
      | Ok prog, Ok loops, Ok sccp, Ok ssa ->
        staged Units (fun () ->
            match map_units loops (Ir.Region.partition prog) with
            | None ->
              set_digest t Units "units:unmapped";
              Ok None
            | Some mapped ->
              let infos =
                List.map
                  (fun ((region : Ir.Region.unit_), uroots) ->
                    let uloops = unit_loop_ids loops uroots in
                    {
                      region;
                      uroots;
                      uloops;
                      udigest =
                        unit_digest ~use_sccp:t.opts.use_sccp ssa sccp region
                          uloops;
                    })
                  mapped
              in
              Hashtbl.replace t.digests Units
                (Hash.Fnv.of_strings
                   ("units"
                   :: List.map (fun i -> Hash.Fnv.to_hex i.udigest) infos));
              Ok (Some infos))
      | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _ | _, _, _, Error e
        ->
        Error e
    in
    t.v_units <- Some v;
    v

let ensure_classify t =
  match t.v_classify with
  | Some v -> v
  | None ->
    let v =
      match ensure_looptree t with
      | Error e -> Error e
      | Ok _ -> (
        match ensure_sccp t with
        | Error e -> Error e
        | Ok sccp -> (
          match ensure_ssa t with
          | Error e -> Error e
          | Ok ssa ->
            let a = staged Classify (fun () -> loopwalk ?sccp ssa) in
            (* Digest the un-promoted tables and trip counts through
               their stable renderings. *)
            set_digest t Classify (report_of a ^ "\x00" ^ trip_report_of a);
            Ok a))
    in
    t.v_classify <- Some v;
    v

let ensure_trip t =
  match t.v_trip with
  | Some v -> v
  | None ->
    let v =
      match ensure_classify t with
      | Error e -> Error e
      | Ok a ->
        let text = staged Trip (fun () -> trip_report_of a) in
        set_digest t Trip text;
        Ok text
    in
    t.v_trip <- Some v;
    v

let ensure_promote t =
  match t.v_promote with
  | Some v -> v
  | None ->
    let v =
      match ensure_classify t with
      | Error e -> Error e
      | Ok a ->
        let text =
          staged Promote (fun () ->
              promote a;
              report_of a)
        in
        set_digest t Promote text;
        Ok text
    in
    t.v_promote <- Some v;
    v

(* The range analysis consumes the promoted classification tables; the
   closures keep [Range] free of a dependency on this module. *)
let range_of (a : analysis) : Range.t =
  let loops = Ir.Ssa.loops a.ssa in
  let cfg = Ir.Ssa.cfg a.ssa in
  let class_of id =
    match Ir.Loops.innermost loops (Ir.Cfg.block_of_instr cfg id) with
    | Some lp -> (
      match a.by_loop.(lp) with
      | Some r -> Ir.Instr.Id.Table.find_opt r.table id
      | None -> None)
    | None -> None
    | exception Not_found -> None
  in
  let trip_of l = Option.map (fun r -> r.trip) a.by_loop.(l) in
  Range.compute ?sccp:a.sccp ~class_of ~trip_of a.ssa

let ensure_range t =
  match t.v_range with
  | Some v -> v
  | None ->
    let v =
      match ensure_promote t with
      | Error e -> Error e
      | Ok _ -> (
        match t.v_classify with
        | Some (Ok a) ->
          let r, text =
            staged Ranges (fun () ->
                let r = range_of a in
                (r, Range.report r))
          in
          set_digest t Ranges text;
          Ok (r, text)
        | _ -> assert false)
    in
    t.v_range <- Some v;
    v

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let parse t = locked t (fun () -> ensure_parse t)
let lower t = locked t (fun () -> ensure_lower t)
let ssa t = locked t (fun () -> ensure_ssa t)
let looptree t = locked t (fun () -> ensure_looptree t)
let sccp t = locked t (fun () -> ensure_sccp t)
let classified t = locked t (fun () -> ensure_classify t)
let trip_report t = locked t (fun () -> ensure_trip t)

let promoted t =
  locked t (fun () ->
      match ensure_promote t with
      | Error e -> Error e
      | Ok _ -> (
        match t.v_classify with
        | Some (Ok a) -> Ok a
        | _ -> assert false))

let report t = locked t (fun () -> ensure_promote t)
let units t = locked t (fun () -> ensure_units t)
let ranges t = locked t (fun () -> Result.map fst (ensure_range t))
let range_report t = locked t (fun () -> Result.map snd (ensure_range t))

(* The unit-granular classification walk (the Unitclassify pass). The
   engine drives it on a Classify miss: [lookup]/[store] are the shared
   unit-artifact cache, [pool_run] optionally fans the missing units out
   across domains. On success the pipeline holds the merged analysis
   with Classify *and* Promote satisfied (unit artifacts are promoted
   before caching — see [analyze_unit]), and the outcome list reports
   one hit/miss per nest unit. Falls back to the whole-program walk
   when no unit mapping exists. *)
let classify_with_units ?pool_run ~lookup ~store t =
  locked t @@ fun () ->
  match t.v_classify with
  | Some (Error e) -> Error e
  | Some (Ok _) -> Ok []
  | None -> (
    match ensure_units t with
    | Error e -> Error e
    | Ok None -> (
      match ensure_promote t with
      | Error e -> Error e
      | Ok _ ->
        Hashtbl.replace t.digests Unitclassify
          (Hash.Fnv.of_strings [ "unit_classify:fallback" ]);
        Ok [])
    | Ok (Some infos) -> (
      match (ensure_sccp t, ensure_ssa t) with
      | Ok sccp, Ok ssa ->
        staged Unitclassify (fun () ->
            let loops = Ir.Ssa.loops ssa in
            let probed =
              List.filter_map
                (fun i ->
                  if i.uroots = [] then None else Some (i, lookup i.udigest))
                infos
            in
            let misses =
              List.filter_map
                (fun (i, probe) -> if probe = None then Some i else None)
                probed
            in
            (* Lazily built per-SSA state (dominators, the instruction
               index) must exist before a parallel walk can share it. *)
            if misses <> [] then begin
              ignore (Ir.Ssa.dom ssa);
              ignore (Ir.Cfg.find_instr_opt (Ir.Ssa.cfg ssa) 0)
            end;
            let computed =
              let thunks =
                Array.of_list
                  (List.map (fun i () -> analyze_unit ?sccp ssa i) misses)
              in
              match pool_run with
              | Some run when Array.length thunks > 1 -> run thunks
              | _ -> Array.map (fun f -> f ()) thunks
            in
            let results =
              let next = ref 0 in
              List.map
                (fun (i, probe) ->
                  match probe with
                  | Some a -> (i, a, true)
                  | None ->
                    let a = computed.(!next) in
                    incr next;
                    store i.udigest a;
                    (i, a, false))
                probed
            in
            let merged =
              merge_units ?sccp ssa (List.map (fun (_, a, _) -> a) results)
            in
            t.v_classify <- Some (Ok merged);
            let rendered = report_of merged in
            set_digest t Classify (rendered ^ "\x00" ^ trip_report_of merged);
            t.v_promote <- Some (Ok rendered);
            set_digest t Promote rendered;
            Hashtbl.replace t.digests Unitclassify
              (Hash.Fnv.of_strings
                 ("unit_classify"
                 :: List.map
                      (fun (i, _, _) -> Hash.Fnv.to_hex i.udigest)
                      results));
            Ok
              (List.map
                 (fun (i, _, hit) ->
                   {
                     u_index = i.region.Ir.Region.index;
                     u_loops =
                       List.map
                         (fun id -> (Ir.Loops.loop loops id).Ir.Loops.name)
                         i.uroots;
                     u_hit = hit;
                   })
                 results))
      | Error e, _ | _, Error e -> Error e))

let discard : _ -> (unit, string) result = function
  | Ok _ -> Ok ()
  | Error e -> Error e

let force t pass =
  locked t (fun () ->
      match pass with
      | Parse -> discard (ensure_parse t)
      | Lower -> discard (ensure_lower t)
      | Ssa -> discard (ensure_ssa t)
      | Looptree -> discard (ensure_looptree t)
      | Sccp -> discard (ensure_sccp t)
      | Units -> discard (ensure_units t)
      | Classify -> discard (ensure_classify t)
      | Trip -> discard (ensure_trip t)
      | Promote -> discard (ensure_promote t)
      | Ranges -> discard (ensure_range t)
      | Depgraph -> Error "pass depgraph is forced by the service layer"
      | Unitclassify | VerifyIr | VerifyClass | VerifyRanges | VerifyTrans ->
        Error ("pass " ^ name pass ^ " is forced by the service layer"))

let forced t pass =
  locked t (fun () ->
      match pass with
      | Parse -> Option.is_some t.v_parse
      | Lower -> Option.is_some t.v_lower
      | Ssa -> Option.is_some t.v_ssa
      | Looptree -> Option.is_some t.v_looptree
      | Sccp -> Option.is_some t.v_sccp
      | Units -> Option.is_some t.v_units
      | Classify -> Option.is_some t.v_classify
      | Trip -> Option.is_some t.v_trip
      | Promote -> Option.is_some t.v_promote
      | Ranges -> Option.is_some t.v_range
      | ( Depgraph | Unitclassify | VerifyIr | VerifyClass | VerifyRanges
        | VerifyTrans ) as p ->
        Hashtbl.mem t.digests p)

let digest t pass = locked t (fun () -> Hashtbl.find_opt t.digests pass)

let note t pass d = locked t (fun () -> Hashtbl.replace t.digests pass d)
