(** Value-range analysis: a sound interval per SSA def, computed by an
    optimistic fixpoint with widening at loop-header phis, clamped by
    SCCP constants and by classification closed forms over trip-counted
    iteration spaces (see docs/RANGES.md). *)

type t

(** [compute ?sccp ~class_of ~trip_of ssa] runs the analysis. [class_of]
    resolves a def's (promoted) classification, [trip_of] a loop's trip
    count; both normally come from the pipeline's classification layer
    (see {!Pipeline.range_of} / [Driver.ranges]). *)
val compute :
  ?sccp:Sccp.result ->
  class_of:(Ir.Instr.Id.t -> Ivclass.t option) ->
  trip_of:(int -> Trip_count.t option) ->
  Ir.Ssa.t ->
  t

(** Fixpoint rounds used (bounded; see the widening policy). *)
val iterations : t -> int

(** [interval_of t id] bounds every value the def ever computes — for a
    for-loop header phi this includes the final exit-test value. *)
val interval_of : t -> Ir.Instr.Id.t -> Interval.t

(** [interval_at t ~block id] refines [interval_of] at a use site: at
    blocks of the def's loop dominated by the counted exit block, the
    final exit-test iteration is excluded (h <= U - 1). *)
val interval_at : t -> block:Ir.Label.t -> Ir.Instr.Id.t -> Interval.t

(** [value_interval_at] lifts {!interval_at} to operands (constants are
    singletons, params are unbounded). *)
val value_interval_at : t -> block:Ir.Label.t -> Ir.Instr.value -> Interval.t

(** [sym_interval t s] bounds a symbolic polynomial by interval
    evaluation over its atoms' full intervals; [None] when a coefficient
    is fractional. *)
val sym_interval : t -> Sym.t -> Interval.t option

(** Human-readable table: one line per def, full interval plus the
    below-the-exit-test refinement when one exists. Deterministic; used
    as the pass digest. *)
val report : t -> string

(** Machine-readable rendering of the same table. *)
val to_json : t -> string
