(* Sparse conditional constant propagation (Wegman–Zadeck [WZ91]) on the
   SSA-form CFG.

   The paper uses constant propagation to resolve the initial values of
   induction variables ("the initial value coming in from outside the
   loop can often be evaluated and substituted, using an algorithm such
   as constant propagation"); the classification driver feeds this pass's
   results into the symbolic atoms of initial values.

   Standard three-level lattice: Top (no evidence yet), Const n, Bottom
   (overdefined). Phi meets only over executable incoming edges; branch
   conditions with constant values keep the untaken edge dead. *)

type lattice = Top | Const of int | Bottom

let meet a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | Const x, Const y -> if x = y then Const x else Bottom
  | Bottom, _ | _, Bottom -> Bottom

let lattice_equal a b =
  match (a, b) with
  | Top, Top | Bottom, Bottom -> true
  | Const x, Const y -> x = y
  | (Top | Const _ | Bottom), _ -> false

type result = {
  values : lattice Ir.Instr.Id.Table.t;
  executable_blocks : bool array;
}

(* [value_of result id] is the lattice value of a def. *)
let value_of r id =
  Option.value ~default:Top (Ir.Instr.Id.Table.find_opt r.values id)

(* [const_of result id] is [Some n] when the def is a known constant. *)
let const_of r id =
  match value_of r id with Const n -> Some n | Top | Bottom -> None

let block_executable r l = r.executable_blocks.(l)

let run (ssa : Ir.Ssa.t) : result =
  (* The def-use chains, edge-executability set and worklists are pure
     working state — borrowed from the domain's scratch capsule so a
     batch over many programs reuses one allocation. [values] escapes
     in the result and stays fresh. *)
  Scratch.with_sccp @@ fun scratch ->
  let cfg = Ir.Ssa.cfg ssa in
  let nblocks = Ir.Cfg.num_blocks cfg in
  let preds = Ir.Cfg.pred_table cfg in
  let values : lattice Ir.Instr.Id.Table.t = Ir.Instr.Id.Table.create 256 in
  let get id = Option.value ~default:Top (Ir.Instr.Id.Table.find_opt values id) in
  let value_of_operand (v : Ir.Instr.value) =
    match v with
    | Ir.Instr.Const n -> Const n
    | Ir.Instr.Param _ -> Bottom (* unknown program input *)
    | Ir.Instr.Def d -> get d
  in
  (* Def-use chains: users of each def, plus blocks whose terminator uses
     the def. *)
  let users = scratch.Scratch.users in
  let branch_users = scratch.Scratch.branch_users in
  let add_user d (i : Ir.Instr.t) =
    let cur = Option.value ~default:[] (Ir.Instr.Id.Table.find_opt users d) in
    Ir.Instr.Id.Table.replace users d (i :: cur)
  in
  Ir.Cfg.iter_instrs cfg (fun _ instr ->
      Array.iter
        (fun (v : Ir.Instr.value) ->
          match v with Ir.Instr.Def d -> add_user d instr | _ -> ())
        instr.Ir.Instr.args);
  List.iter
    (fun l ->
      match (Ir.Cfg.block cfg l).Ir.Cfg.term with
      | Ir.Cfg.Branch (Ir.Instr.Def d, _, _) ->
        let cur = Option.value ~default:[] (Ir.Instr.Id.Table.find_opt branch_users d) in
        Ir.Instr.Id.Table.replace branch_users d (l :: cur)
      | _ -> ())
    (Ir.Cfg.labels cfg);
  (* Edge executability, keyed (from, to). *)
  let edge_exec = scratch.Scratch.edge_exec in
  let block_exec = Array.make nblocks false in
  let flow_work = scratch.Scratch.flow_work in
  let ssa_work = scratch.Scratch.ssa_work in
  let block_of (i : Ir.Instr.t) = Ir.Cfg.block_of_instr cfg i.Ir.Instr.id in
  let rec set_value (i : Ir.Instr.t) v =
    if not (lattice_equal (get i.Ir.Instr.id) v) then begin
      Ir.Instr.Id.Table.replace values i.Ir.Instr.id v;
      List.iter
        (fun u -> Queue.push u ssa_work)
        (Option.value ~default:[] (Ir.Instr.Id.Table.find_opt users i.Ir.Instr.id));
      (* Re-examine branches controlled by this def. *)
      List.iter
        (fun l -> if block_exec.(l) then examine_terminator l)
        (Option.value ~default:[]
           (Ir.Instr.Id.Table.find_opt branch_users i.Ir.Instr.id))
    end
  and examine_terminator l =
    match (Ir.Cfg.block cfg l).Ir.Cfg.term with
    | Ir.Cfg.Jump t -> Queue.push (l, t) flow_work
    | Ir.Cfg.Branch (c, t1, t2) -> (
      match value_of_operand c with
      | Const 0 -> Queue.push (l, t2) flow_work
      | Const _ -> Queue.push (l, t1) flow_work
      | Bottom ->
        Queue.push (l, t1) flow_work;
        Queue.push (l, t2) flow_work
      | Top -> ())
    | Ir.Cfg.Halt -> ()
  in
  let eval_instr (i : Ir.Instr.t) =
    let arg k = value_of_operand i.Ir.Instr.args.(k) in
    match i.Ir.Instr.op with
    | Ir.Instr.Binop op -> (
      (* 0 * x = 0 first (monotone: a Const 0 operand can only fall to
         Bottom, which takes the result to Bottom too). *)
      match (op, arg 0, arg 1) with
      | Ir.Ops.Mul, Const 0, _ | Ir.Ops.Mul, _, Const 0 -> Const 0
      | Ir.Ops.Div, _, Const 0 -> Bottom
      | _, Const a, Const b -> Const (Ir.Ops.eval_binop op a b)
      | _, Top, _ | _, _, Top -> Top
      | _, Bottom, _ | _, _, Bottom -> Bottom)
    | Ir.Instr.Relop op -> (
      match (arg 0, arg 1) with
      | Const a, Const b -> Const (if Ir.Ops.eval_relop op a b then 1 else 0)
      | Bottom, _ | _, Bottom -> Bottom
      | Top, _ | _, Top -> Top)
    | Ir.Instr.Neg -> (
      match arg 0 with Const a -> Const (-a) | x -> x)
    | Ir.Instr.Phi ->
      let l = block_of i in
      let ps = preds.(l) in
      List.fold_left
        (fun acc (k, p) ->
          if Hashtbl.mem edge_exec (p, l) then meet acc (arg k) else acc)
        Top
        (List.mapi (fun k p -> (k, p)) ps)
    | Ir.Instr.Astore _ -> arg (Array.length i.Ir.Instr.args - 1)
    | Ir.Instr.Aload _ | Ir.Instr.Rand -> Bottom
    | Ir.Instr.Load _ | Ir.Instr.Store _ ->
      invalid_arg "Sccp.run: program not in SSA form"
  in
  let visit_block l =
    List.iter (fun (i : Ir.Instr.t) -> set_value i (eval_instr i)) (Ir.Cfg.block cfg l).Ir.Cfg.instrs;
    examine_terminator l
  in
  Queue.push (-1, Ir.Cfg.entry cfg) flow_work;
  let continue = ref true in
  while !continue do
    if not (Queue.is_empty flow_work) then begin
      let from, dest = Queue.pop flow_work in
      let edge_new = from >= 0 && not (Hashtbl.mem edge_exec (from, dest)) in
      if from >= 0 then Hashtbl.replace edge_exec (from, dest) ();
      if not block_exec.(dest) then begin
        block_exec.(dest) <- true;
        visit_block dest
      end
      else if edge_new then
        (* New incoming edge: phis in [dest] may change. *)
        List.iter
          (fun (i : Ir.Instr.t) ->
            if i.Ir.Instr.op = Ir.Instr.Phi then set_value i (eval_instr i))
          (Ir.Cfg.block cfg dest).Ir.Cfg.instrs
    end
    else if not (Queue.is_empty ssa_work) then begin
      let i = Queue.pop ssa_work in
      if block_exec.(block_of i) then set_value i (eval_instr i)
    end
    else continue := false
  done;
  { values; executable_blocks = block_exec }

(* [fold_stats r ssa] counts instructions proved constant and blocks
   proved dead — the headline numbers a compiler would report. *)
let fold_stats r (ssa : Ir.Ssa.t) =
  let cfg = Ir.Ssa.cfg ssa in
  let consts = ref 0 and total = ref 0 in
  Ir.Cfg.iter_instrs cfg (fun l i ->
      if r.executable_blocks.(l) then begin
        incr total;
        match value_of r i.Ir.Instr.id with Const _ -> incr consts | _ -> ()
      end);
  let dead =
    Array.to_list r.executable_blocks |> List.filter (fun x -> not x) |> List.length
  in
  (!consts, !total, dead)
