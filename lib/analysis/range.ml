(* Value-range analysis: one interval per SSA def.

   An optimistic forward fixpoint over the SSA graph, with three seed
   sources folded in:

   - SCCP constants become exact singletons (and are never recomputed);
   - IV classifications become closed-form clamps: a class predicts the
     value at iteration [h], and the trip count bounds [h], so e.g. a
     linear IV with constant base and step gets base + step·[0, U];
   - plain interval arithmetic propagates through straight-line code and
     phi joins, with standard widening at loop-header phis once the
     iteration count passes [widen_start].

   Clamping during the iteration (a meet with a constant, independently
   sound interval) is monotone, so the fixpoint is still a sound
   post-fixpoint of the concrete semantics.

   Every def carries a [full] interval covering all its executions —
   including a for-loop header phi's final exit-test value (h = U). Uses
   strictly *below* the counted exit test only observe h <= U - 1; the
   [body] table holds that sharper interval, valid at blocks of the loop
   dominated by the exit block (any path from the header passes the exit
   test, so the current activation decided to stay). Bounds-check
   elimination and subscript disjointness query use sites and take the
   refinement; the oracle checks defs and uses [full]. *)

module Table = Ir.Instr.Id.Table

type t = {
  ssa : Ir.Ssa.t;
  full : Interval.t Table.t;
  body : (int * Ir.Label.t * Interval.t) Table.t;
      (** def -> (loop, counted exit block, below-the-test interval) *)
  iterations : int;  (** fixpoint rounds used *)
}

let widen_start = 3

(* --- classification closed forms as intervals --- *)

let sym_const_interval s =
  match Sym.const s with
  | Some r -> Option.map Interval.const (Bignum.Rat.to_int_exact r)
  | None -> None

(* The iteration-number interval of loop [l]: [0, U] where U is the trip
   count (the header runs once more than the body, observing the
   exit-test value), or [0, U-1] for the loop named by [sub1_loop]
   (below-the-exit-test refinement). Unknown counts give [0, +inf). *)
let h_range ~trip_of ~sub1_loop l =
  let u =
    match trip_of l with Some tr -> Trip_count.max_count_int tr | None -> None
  in
  let u =
    match u with
    | Some u when sub1_loop = Some l -> Some (u - 1)
    | x -> x
  in
  match u with
  | Some u -> Interval.make (Extint.Fin 0) (Extint.Fin (max u 0))
  | None -> Interval.make (Extint.Fin 0) Extint.Pos_inf

(* [class_interval] turns a classification into an interval over every
   iteration of its loop nest, when the closed form is constant enough:
   constant invariants, linear forms with constant steps over bounded
   (or one-sided) iteration spaces — recursing into outer-loop bases —
   constant periodic tuples, and wrap-arounds with constant initials.
   Polynomial, geometric and monotonic classes fall back to the
   dataflow ([None]); closed-form arithmetic is mathematical
   (saturating), see docs/RANGES.md for the overflow caveat. *)
let rec class_interval ~trip_of ~sub1_loop (cls : Ivclass.t) :
    Interval.t option =
  match cls with
  | Ivclass.Unknown -> None
  | Ivclass.Invariant s -> sym_const_interval s
  | Ivclass.Linear { loop; base; step } -> (
    match
      (class_interval ~trip_of ~sub1_loop base, Sym.const step)
    with
    | Some bi, Some step -> (
      match Bignum.Rat.to_int_exact step with
      | Some s ->
        let h = h_range ~trip_of ~sub1_loop loop in
        Some (Interval.sat_add bi (Interval.mul_scalar s h))
      | None -> None)
    | _ -> None)
  | Ivclass.Periodic { values; _ } ->
    Array.fold_left
      (fun acc v ->
        match (acc, sym_const_interval v) with
        | Some acc, Some iv -> Some (Interval.join acc iv)
        | _, _ -> None)
      (sym_const_interval values.(0))
      (Array.sub values 1 (Array.length values - 1))
  | Ivclass.Wrap { inner; initials; _ } ->
    List.fold_left
      (fun acc v ->
        match (acc, sym_const_interval v) with
        | Some acc, Some iv -> Some (Interval.join acc iv)
        | _, _ -> None)
      (class_interval ~trip_of ~sub1_loop inner)
      initials
  | Ivclass.Poly _ | Ivclass.Geometric _ | Ivclass.Monotonic _ -> None

(* --- the fixpoint --- *)

let compute ?(sccp : Sccp.result option)
    ~(class_of : Ir.Instr.Id.t -> Ivclass.t option)
    ~(trip_of : int -> Trip_count.t option) (ssa : Ir.Ssa.t) : t =
  let cfg = Ir.Ssa.cfg ssa in
  let loops = Ir.Ssa.loops ssa in
  let preds = Ir.Cfg.pred_table cfg in
  let executable l =
    match sccp with
    | Some r -> Sccp.block_executable r l
    | None -> true
  in
  let headers =
    List.fold_left
      (fun s lp -> Ir.Label.Set.add lp.Ir.Loops.header s)
      Ir.Label.Set.empty (Ir.Loops.all loops)
  in
  (* Exact constants and closed-form clamps, computed once. *)
  let exact = Table.create 64 in
  let seeds = Table.create 64 in
  Ir.Cfg.iter_instrs cfg (fun _ instr ->
      let id = instr.Ir.Instr.id in
      (match sccp with
      | Some r -> (
        match Sccp.const_of r id with
        | Some n -> Table.replace exact id (Interval.const n)
        | None -> ())
      | None -> ());
      match class_of id with
      | Some cls -> (
        match class_interval ~trip_of ~sub1_loop:None cls with
        | Some iv -> Table.replace seeds id iv
        | None -> ())
      | None -> ());
  let full = Table.create 64 in
  Table.iter (fun id iv -> Table.replace full id iv) exact;
  let clamp id iv =
    match Table.find_opt seeds id with
    | Some seed -> (
      match Interval.meet iv seed with Some m -> m | None -> iv)
    | None -> iv
  in
  let value_iv = function
    | Ir.Instr.Const n -> Some (Interval.const n)
    | Ir.Instr.Param _ -> Some Interval.top
    | Ir.Instr.Def id -> Table.find_opt full id
  in
  let transfer label (instr : Ir.Instr.t) : Interval.t option =
    let args = instr.Ir.Instr.args in
    let all_args f =
      let rec go i acc =
        if i >= Array.length args then Some (List.rev acc)
        else
          match value_iv args.(i) with
          | Some iv -> go (i + 1) (iv :: acc)
          | None -> None
      in
      Option.map f (go 0 [])
    in
    match instr.Ir.Instr.op with
    | Ir.Instr.Phi ->
      (* Join the arguments flowing along executable edges; a bottom
         (unvisited) argument contributes nothing yet. *)
      let ps = preds.(label) in
      let acc = ref None in
      List.iteri
        (fun i p ->
          if executable p && i < Array.length args then
            match value_iv args.(i) with
            | Some iv ->
              acc :=
                Some
                  (match !acc with
                  | Some a -> Interval.join a iv
                  | None -> iv)
            | None -> ())
        ps;
      !acc
    | Ir.Instr.Binop op ->
      all_args (function
        | [ a; b ] -> (
          match op with
          | Ir.Ops.Add -> Interval.add a b
          | Ir.Ops.Sub -> Interval.sub a b
          | Ir.Ops.Mul -> Interval.mul a b
          | Ir.Ops.Div -> Interval.div a b
          | Ir.Ops.Exp -> Interval.top)
        | _ -> Interval.top)
    | Ir.Instr.Relop _ -> all_args (fun _ -> Interval.bool_range)
    | Ir.Instr.Neg ->
      all_args (function [ a ] -> Interval.neg a | _ -> Interval.top)
    | Ir.Instr.Rand -> Some Interval.bool_range
    | Ir.Instr.Aload _ -> all_args (fun _ -> Interval.top)
    | Ir.Instr.Astore _ ->
      (* The instruction's value is the stored operand (last arg). *)
      if Array.length args = 0 then Some Interval.top
      else value_iv args.(Array.length args - 1)
    | Ir.Instr.Load _ | Ir.Instr.Store _ -> Some Interval.top
  in
  let order =
    List.filter executable (Ir.Cfg.reverse_postorder cfg)
  in
  let num_defs = Ir.Cfg.num_instrs cfg in
  let cap = widen_start + num_defs + 8 in
  let rounds = ref 0 in
  let changed = ref true in
  while !changed && !rounds < cap do
    incr rounds;
    changed := false;
    List.iter
      (fun label ->
        let block = Ir.Cfg.block cfg label in
        List.iter
          (fun (instr : Ir.Instr.t) ->
            let id = instr.Ir.Instr.id in
            if not (Table.mem exact id) then begin
              match transfer label instr with
              | None -> ()
              | Some cand -> (
                let cand = clamp id cand in
                match Table.find_opt full id with
                | None ->
                  Table.replace full id cand;
                  changed := true
                | Some old ->
                  let next = Interval.join old cand in
                  let next =
                    if
                      instr.Ir.Instr.op = Ir.Instr.Phi
                      && Ir.Label.Set.mem label headers
                      && !rounds > widen_start
                      && not (Interval.equal old next)
                    then clamp id (Interval.widen ~old ~next)
                    else next
                  in
                  if not (Interval.equal old next) then begin
                    Table.replace full id next;
                    changed := true
                  end)
            end)
          block.Ir.Cfg.instrs)
      order
  done;
  if !changed then
    (* Safety net (never expected): discard the unconverged dataflow and
       keep only the independently sound seeds. *)
    Ir.Cfg.iter_instrs cfg (fun _ instr ->
        let id = instr.Ir.Instr.id in
        if not (Table.mem exact id) then
          Table.replace full id (clamp id Interval.top));
  (* Below-the-exit-test refinements: recompute classified defs with the
     def's own loop capped at U - 1, valid where the counted exit block
     dominates the use. *)
  let body = Table.create 16 in
  Ir.Cfg.iter_instrs cfg (fun _ instr ->
      let id = instr.Ir.Instr.id in
      match class_of id with
      | Some cls -> (
        match Ivclass.loop_of cls with
        | Some l -> (
          match trip_of l with
          | Some tr -> (
            match (tr.Trip_count.exit_block, Trip_count.max_count_int tr) with
            | Some exit_block, Some _ -> (
              match class_interval ~trip_of ~sub1_loop:(Some l) cls with
              | Some seed -> (
                let fl =
                  Option.value ~default:Interval.top (Table.find_opt full id)
                in
                let iv =
                  match Interval.meet fl seed with Some m -> m | None -> fl
                in
                if not (Interval.equal iv fl) then
                  Table.replace body id (l, exit_block, iv))
              | None -> ())
            | _ -> ())
          | None -> ())
        | None -> ())
      | None -> ());
  { ssa; full; body; iterations = !rounds }

(* --- queries --- *)

let iterations t = t.iterations

let interval_of t id =
  Option.value ~default:Interval.top (Table.find_opt t.full id)

(* [interval_at t ~block id] refines the def's interval at a use site:
   inside the def's loop and dominated by the counted exit block, the
   current activation has already decided to stay, so h <= U - 1. *)
let interval_at t ~block id =
  match Table.find_opt t.body id with
  | Some (l, exit_block, iv) ->
    let loops = Ir.Ssa.loops t.ssa in
    let dom = Ir.Ssa.dom t.ssa in
    let lp = Ir.Loops.loop loops l in
    if
      Ir.Loops.contains_block lp block
      && (not (Ir.Label.equal block exit_block))
      && Ir.Dom.dominates dom exit_block block
    then iv
    else interval_of t id
  | None -> interval_of t id

let value_interval_at t ~block = function
  | Ir.Instr.Const n -> Interval.const n
  | Ir.Instr.Param _ -> Interval.top
  | Ir.Instr.Def id -> interval_at t ~block id

(* [sym_interval t s] bounds a symbolic polynomial by interval-evaluating
   each monomial over the atoms' full intervals (mathematical semantics:
   symbolic values live in the classifier's exact algebra). Restricted
   to integer coefficients. *)
let sym_interval t (s : Sym.t) : Interval.t option =
  let atom_iv = function
    | Sym.Param _ -> Interval.top
    | Sym.Def id -> interval_of t id
  in
  let rec power iv n =
    if n <= 0 then Interval.const 1
    else if n = 1 then iv
    else Interval.mul iv (power iv (n - 1))
  in
  let term (mono, coeff) =
    match Bignum.Rat.to_int_exact coeff with
    | None -> None
    | Some c ->
      let iv =
        List.fold_left
          (fun acc (a, p) -> Interval.mul acc (power (atom_iv a) p))
          (Interval.const 1) mono
      in
      Some (Interval.mul_scalar c iv)
  in
  List.fold_left
    (fun acc tm ->
      match (acc, term tm) with
      | Some acc, Some iv -> Some (Interval.sat_add acc iv)
      | _, _ -> None)
    (Some (Interval.const 0))
    s

(* --- rendering --- *)

let defs_in_order t =
  let cfg = Ir.Ssa.cfg t.ssa in
  Ir.Cfg.fold_instrs cfg
    (fun acc block instr -> (block, instr) :: acc)
    []
  |> List.sort (fun (_, a) (_, b) ->
         Ir.Instr.Id.compare a.Ir.Instr.id b.Ir.Instr.id)

let report t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "ranges: fixpoint after %d rounds\n" t.iterations;
  List.iter
    (fun (_, (instr : Ir.Instr.t)) ->
      let id = instr.Ir.Instr.id in
      let name = Ir.Ssa.primary_name t.ssa id in
      Printf.bprintf buf "  %-8s %s" name
        (Interval.to_string (interval_of t id));
      (match Table.find_opt t.body id with
      | Some (_, _, iv) ->
        Printf.bprintf buf "  body %s" (Interval.to_string iv)
      | None -> ());
      Buffer.add_char buf '\n')
    (defs_in_order t);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "{\"iterations\":%d,\"values\":[" t.iterations;
  let first = ref true in
  List.iter
    (fun (_, (instr : Ir.Instr.t)) ->
      let id = instr.Ir.Instr.id in
      let iv = interval_of t id in
      if !first then first := false else Buffer.add_char buf ',';
      Printf.bprintf buf "{\"name\":\"%s\",\"lo\":\"%s\",\"hi\":\"%s\""
        (json_escape (Ir.Ssa.primary_name t.ssa id))
        (Extint.to_string (Interval.lo iv))
        (Extint.to_string (Interval.hi iv));
      (match Table.find_opt t.body id with
      | Some (_, _, b) ->
        Printf.bprintf buf ",\"body_lo\":\"%s\",\"body_hi\":\"%s\""
          (Extint.to_string (Interval.lo b))
          (Extint.to_string (Interval.hi b))
      | None -> ());
      Buffer.add_char buf '}')
    (defs_in_order t);
  Buffer.add_string buf "]}";
  Buffer.contents buf
