(** Per-domain reusable scratch buffers for the analysis hot paths.

    Each domain owns one capsule of grow-only buffers (backing
    capacity survives [clear]); a consumer borrows one group for the
    duration of a call via the [with_*] functions below. The buffers
    are handed over empty and emptied again on release (normal return
    or exception), so no analysis data outlives a borrow and per-task
    working sets die in the minor heap instead of promoting — the
    allocation-discipline contract described in docs/SERVICE.md.

    Safe under the worker pool: the capsule is domain-local storage,
    never shared. Nested borrows of the same group fall back to fresh
    throwaway buffers, so reentrancy cannot corrupt an outer user. *)

(** Tarjan SCC bookkeeping, keyed by the graph's node key. *)
type tarjan = {
  index : (int, int) Hashtbl.t;
  lowlink : (int, int) Hashtbl.t;
  on_stack : (int, unit) Hashtbl.t;
}

(** SCCP def-use chains, edge executability, and worklists. The values
    table is {e not} here — it escapes in the result. *)
type sccp = {
  users : Ir.Instr.t list Ir.Instr.Id.Table.t;
  branch_users : Ir.Label.t list Ir.Instr.Id.Table.t;
  edge_exec : (Ir.Label.t * Ir.Label.t, unit) Hashtbl.t;
  flow_work : (Ir.Label.t * Ir.Label.t) Queue.t;
  ssa_work : Ir.Instr.t Queue.t;
}

val with_tarjan : (tarjan -> 'a) -> 'a
val with_sccp : (sccp -> 'a) -> 'a

(** Per-loop distance accumulation for the dependence tester's
    per-pair outcome merge. *)
val with_distances : ((int, int) Hashtbl.t -> 'a) -> 'a
