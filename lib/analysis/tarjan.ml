(* Tarjan's strongly-connected-components algorithm [Tar72], iterative.

   The emission order is the property the paper's classifier relies on:
   because SSA-graph edges point from operations to their operands, an
   SCC is emitted only after every SCC it can reach — so when the
   classifier sees a region, all its source operands are classified.

   The implementation is generic over the node and edge representation so
   both the classifier (SSA graphs) and the property tests (random
   graphs) use the same code. *)

type 'a graph = { vertices : 'a list; edges : 'a -> 'a list; key : 'a -> int }

(* [sccs g] is the list of strongly connected components in reverse
   topological order of the condensation (callees/operands first). Each
   component lists its members in discovery order. *)
let sccs (g : 'a graph) : 'a list list =
  Scratch.with_tarjan @@ fun sc ->
  let { Scratch.index; lowlink; on_stack } = sc in
  let stack : 'a list ref = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  (* Explicit work stack: (node, remaining successors) frames. *)
  let visit v =
    let frames = ref [ (v, ref (g.edges v)) ] in
    let kv = g.key v in
    Hashtbl.replace index kv !counter;
    Hashtbl.replace lowlink kv !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack kv ();
    while !frames <> [] do
      match !frames with
      | [] -> ()
      | (node, succs) :: rest -> (
        let kn = g.key node in
        match !succs with
        | [] ->
          frames := rest;
          (* Pop: update parent's lowlink, emit component at roots. *)
          (match rest with
           | (parent, _) :: _ ->
             let kp = g.key parent in
             let ll = Stdlib.min (Hashtbl.find lowlink kp) (Hashtbl.find lowlink kn) in
             Hashtbl.replace lowlink kp ll
           | [] -> ());
          if Hashtbl.find lowlink kn = Hashtbl.find index kn then begin
            (* node is a root: pop its component off the stack. *)
            let rec pop acc =
              match !stack with
              | [] -> acc
              | w :: rest ->
                stack := rest;
                Hashtbl.remove on_stack (g.key w);
                let acc = w :: acc in
                if g.key w = kn then acc else pop acc
            in
            out := pop [] :: !out
          end
        | s :: more -> (
          succs := more;
          let ks = g.key s in
          match Hashtbl.find_opt index ks with
          | None ->
            Hashtbl.replace index ks !counter;
            Hashtbl.replace lowlink ks !counter;
            incr counter;
            stack := s :: !stack;
            Hashtbl.replace on_stack ks ();
            frames := (s, ref (g.edges s)) :: !frames
          | Some is ->
            if Hashtbl.mem on_stack ks then begin
              let ll = Stdlib.min (Hashtbl.find lowlink kn) is in
              Hashtbl.replace lowlink kn ll
            end))
    done
  in
  List.iter (fun v -> if not (Hashtbl.mem index (g.key v)) then visit v) g.vertices;
  List.rev !out

(* [is_trivial g comp] holds for single-node components with no self
   edge — nodes that are not part of any cycle. *)
let is_trivial (g : 'a graph) = function
  | [ v ] -> not (List.exists (fun s -> g.key s = g.key v) (g.edges v))
  | _ -> false

(* Reference implementation for property tests: O(V * E) reachability
   check. Two nodes are in the same SCC iff they reach each other. *)
let sccs_naive (g : 'a graph) : 'a list list =
  let reach_from v =
    let seen = Hashtbl.create 16 in
    let rec dfs u =
      if not (Hashtbl.mem seen (g.key u)) then begin
        Hashtbl.replace seen (g.key u) ();
        List.iter dfs (g.edges u)
      end
    in
    dfs v;
    seen
  in
  let tables = List.map (fun v -> (v, reach_from v)) g.vertices in
  let same ta b tb a = Hashtbl.mem ta (g.key b) && Hashtbl.mem tb (g.key a) in
  let comps = ref [] in
  List.iter
    (fun (v, tv) ->
      let placed =
        List.exists
          (fun comp ->
            match !comp with
            | (w, tw) :: _ when same tv w tw v ->
              comp := !comp @ [ (v, tv) ];
              true
            | _ -> false)
          !comps
      in
      if not placed then comps := !comps @ [ ref [ (v, tv) ] ])
    tables;
  List.map (fun comp -> List.map fst !comp) !comps
