(* The paper's core algorithm: classify every strongly connected region
   of a loop's SSA graph at the moment Tarjan's algorithm completes it
   (§3.1, §4). Because SSA-graph edges point at operands, every operand
   of a region is already classified when the region is emitted, so the
   whole classification is a single non-iterative pass, linear in the
   size of the SSA graph.

   Shapes recognized, in the order they are tried:
     - trivial regions: the operator algebra (§5.1) and wrap-around
       variables (§4.1, a loop-header phi alone in its region);
     - cycles through a single loop-header phi whose cumulative effect is
       v' = m*v + p: linear families (§3.1, incl. the same-offset
       conditional increments of Fig 3), polynomial and geometric
       induction variables (§4.3), and flip-flops (m = -1, p invariant);
     - cycles of loop-header phis only: periodic families (§4.2);
     - anything else with consistently signed increments: monotonic
       variables (§4.4), with per-member strictness. *)

open Bignum

type ctx = {
  ssa : Ir.Ssa.t;
  loop : Ir.Loops.loop;
  graph : Ssa_graph.t;
  table : Ivclass.t Ir.Instr.Id.Table.t;
  outer_const : Ir.Instr.Id.t -> Sym.t option;
      (* constant/invariant values for defs outside this loop *)
  inner_exit : Ir.Instr.Id.t -> Sym.t option;
      (* exit values of already-processed inner loops (§5.3) *)
}

let loop_id ctx = ctx.loop.Ir.Loops.id

(* --- classification provenance (lib/obs) ---

   Every SCR emits one event naming its members, the shape that was
   tried, and the rule that fired — the record `ivtool explain` and the
   trace exporters render. Events cost nothing unless a collector is
   installed. *)

let namer ctx : Ivclass.namer =
  let loops = Ir.Ssa.loops ctx.ssa in
  {
    Ivclass.loop_name =
      (fun id ->
        if id >= 0 && id < Ir.Loops.num_loops loops then
          (Ir.Loops.loop loops id).Ir.Loops.name
        else "L?");
    atom_name =
      (fun a ->
        match a with
        | Sym.Param x -> Ir.Ident.name x
        | Sym.Def id -> Ir.Ssa.primary_name ctx.ssa id);
  }

(* [prov ctx scc ~shape ~rule] — call after the SCR's table entries are
   written, so the event can record each member's final class. *)
let prov ctx (scc : Ir.Instr.t list) ~shape ~rule =
  if Obs.Trace.enabled () then begin
    let nm = namer ctx in
    let name_of (i : Ir.Instr.t) = Ir.Ssa.primary_name ctx.ssa i.Ir.Instr.id in
    let class_of (i : Ir.Instr.t) =
      Ivclass.to_string_with nm
        (Option.value ~default:Ivclass.Unknown
           (Ir.Instr.Id.Table.find_opt ctx.table i.Ir.Instr.id))
    in
    Obs.Trace.event ~cat:"provenance" "classify.scr"
      ~attrs:
        ([
           ("loop", Obs.Trace.Str ctx.loop.Ir.Loops.name);
           ("members", Obs.Trace.Str (String.concat "," (List.map name_of scc)));
           ("size", Obs.Trace.Int (List.length scc));
           ("shape", Obs.Trace.Str shape);
           ("rule", Obs.Trace.Str rule);
         ]
        @ List.map
            (fun i -> ("class." ^ name_of i, Obs.Trace.Str (class_of i)))
            scc)
  end

(* Is this def lexically inside the current loop? *)
let in_loop ctx id =
  Ir.Label.Set.mem (Ir.Cfg.block_of_instr (Ir.Ssa.cfg ctx.ssa) id) ctx.loop.Ir.Loops.blocks

(* --- classification of operand values (non-cycle path) --- *)

let rec class_of_value ctx (v : Ir.Instr.value) : Ivclass.t =
  match v with
  | Ir.Instr.Const c -> Invariant (Sym.of_int c)
  | Ir.Instr.Param x -> Invariant (Sym.param x)
  | Ir.Instr.Def d -> class_of_def ctx d

and class_of_def ctx d : Ivclass.t =
  if Ssa_graph.mem ctx.graph d then
    Option.value ~default:Ivclass.Unknown (Ir.Instr.Id.Table.find_opt ctx.table d)
  else if in_loop ctx d then begin
    (* A def belonging to a nested inner loop: use its exit value if the
       inner loop was countable (paper §5.3), otherwise unknown. *)
    match ctx.inner_exit d with
    | Some sym -> class_of_sym ctx sym
    | None -> Unknown
  end
  else begin
    (* Outside the loop: loop invariant; chase constants when known. *)
    match ctx.outer_const d with
    | Some sym -> Invariant sym
    | None -> Invariant (Sym.def d)
  end

(* Interpret a symbolic polynomial whose atoms may be defs of the current
   loop, by folding the class algebra over its terms. *)
and class_of_sym ctx (s : Sym.t) : Ivclass.t =
  let atom_class = function
    | Sym.Param x -> Ivclass.Invariant (Sym.param x)
    | Sym.Def d -> class_of_def ctx d
  in
  List.fold_left
    (fun acc (mono, coeff) ->
      let term =
        List.fold_left
          (fun acc (a, p) ->
            let rec pow acc n =
              if n = 0 then acc else pow (Algebra.mul acc (atom_class a)) (n - 1)
            in
            pow acc p)
          (Ivclass.Invariant (Sym.of_rat coeff))
          mono
      in
      Algebra.add acc term)
    (Ivclass.Invariant Sym.zero)
    (s : (Sym.mono * Rat.t) list)

(* --- affine effect analysis for cycles (single header phi) --- *)

(* The cumulative effect of a region member on the loop-header value:
   value = mult * phi + add, with [mult] a rational constant and [add]
   a classification of everything else feeding in. *)
type effect = { mult : Rat.t; add : Ivclass.t }

exception Not_affine

let invariant_const (c : Ivclass.t) =
  match c with Ivclass.Invariant s -> Sym.const s | _ -> None

let effect_analysis ctx scc_set header_phi =
  let memo : effect Ir.Instr.Id.Table.t = Ir.Instr.Id.Table.create 16 in
  let in_progress : unit Ir.Instr.Id.Table.t = Ir.Instr.Id.Table.create 16 in
  let cfg = Ir.Ssa.cfg ctx.ssa in
  let rec of_value (v : Ir.Instr.value) : effect =
    match v with
    | Ir.Instr.Def d when Ir.Instr.Id.Set.mem d scc_set -> of_node d
    | Ir.Instr.Def d when (not (Ssa_graph.mem ctx.graph d)) && in_loop ctx d -> (
      (* Inner-loop def: expand its exit value; the exit value may feed
         back into this SCC through atoms that are SCC members. *)
      match ctx.inner_exit d with
      | Some sym -> of_sym sym
      | None -> raise Not_affine)
    | v -> (
      match class_of_value ctx v with
      | Ivclass.Unknown -> raise Not_affine
      | c -> { mult = Rat.zero; add = c })
  and of_sym (s : Sym.t) : effect =
    List.fold_left
      (fun acc (mono, coeff) ->
        let term =
          match mono with
          | [] -> { mult = Rat.zero; add = Ivclass.Invariant (Sym.of_rat coeff) }
          | [ (Sym.Def d, 1) ] when Ir.Instr.Id.Set.mem d scc_set ->
            let e = of_node d in
            {
              mult = Rat.mul coeff e.mult;
              add = Algebra.scale coeff e.add;
            }
          | mono ->
            (* No SCC member may appear in a non-linear position. *)
            if
              List.exists
                (fun (a, _) ->
                  match a with
                  | Sym.Def d -> Ir.Instr.Id.Set.mem d scc_set
                  | Sym.Param _ -> false)
                mono
            then raise Not_affine
            else begin
              match class_of_sym ctx [ (mono, coeff) ] with
              | Ivclass.Unknown -> raise Not_affine
              | c -> { mult = Rat.zero; add = c }
            end
        in
        { mult = Rat.add acc.mult term.mult; add = Algebra.add acc.add term.add })
      { mult = Rat.zero; add = Ivclass.Invariant Sym.zero }
      (s : (Sym.mono * Rat.t) list)
  and of_node d : effect =
    if Ir.Instr.Id.equal d header_phi then { mult = Rat.one; add = Ivclass.Invariant Sym.zero }
    else begin
      match Ir.Instr.Id.Table.find_opt memo d with
      | Some e -> e
      | None ->
        if Ir.Instr.Id.Table.mem in_progress d then raise Not_affine;
        Ir.Instr.Id.Table.replace in_progress d ();
        let instr = Ir.Cfg.find_instr cfg d in
        let e = of_instr instr in
        Ir.Instr.Id.Table.remove in_progress d;
        Ir.Instr.Id.Table.replace memo d e;
        e
    end
  and of_instr (instr : Ir.Instr.t) : effect =
    let arg i = of_value instr.Ir.Instr.args.(i) in
    match instr.Ir.Instr.op with
    | Ir.Instr.Binop Ir.Ops.Add ->
      let a = arg 0 and b = arg 1 in
      check { mult = Rat.add a.mult b.mult; add = Algebra.add a.add b.add }
    | Ir.Instr.Binop Ir.Ops.Sub ->
      let a = arg 0 and b = arg 1 in
      check { mult = Rat.sub a.mult b.mult; add = Algebra.sub a.add b.add }
    | Ir.Instr.Neg ->
      let a = arg 0 in
      check { mult = Rat.neg a.mult; add = Algebra.neg a.add }
    | Ir.Instr.Binop Ir.Ops.Mul -> (
      let a = arg 0 and b = arg 1 in
      match (Rat.is_zero a.mult, Rat.is_zero b.mult) with
      | true, true -> check { mult = Rat.zero; add = Algebra.mul a.add b.add }
      | true, false -> mul_const a b
      | false, true -> mul_const b a
      | false, false -> raise Not_affine)
    | Ir.Instr.Binop (Ir.Ops.Div | Ir.Ops.Exp) | Ir.Instr.Relop _ | Ir.Instr.Aload _
    | Ir.Instr.Rand ->
      raise Not_affine
    | Ir.Instr.Astore _ ->
      of_value instr.Ir.Instr.args.(Array.length instr.Ir.Instr.args - 1)
    | Ir.Instr.Phi ->
      (* A non-header phi inside the cycle (endif merge): every incoming
         path must carry the same effect (Fig 3's same-offset rule). *)
      let effects = Array.to_list (Array.map of_value instr.Ir.Instr.args) in
      (match effects with
       | [] -> raise Not_affine
       | first :: rest ->
         if
           List.for_all
             (fun e -> Rat.equal e.mult first.mult && Ivclass.equal e.add first.add)
             rest
         then first
         else raise Not_affine)
    | Ir.Instr.Load _ | Ir.Instr.Store _ ->
      invalid_arg "Classify: program not in SSA form"
  and mul_const const_side phi_side =
    (* (0*phi + a) * (m*phi + b) = (c*m)*phi + a*b, requiring a to be a
       rational constant (the paper's "known integer" multiplier). *)
    match invariant_const const_side.add with
    | Some c ->
      check
        {
          mult = Rat.mul c phi_side.mult;
          add = Algebra.mul const_side.add phi_side.add;
        }
    | None -> raise Not_affine
  and check e = if e.add = Ivclass.Unknown then raise Not_affine else e in
  (of_node, of_value)

(* --- monotonic analysis (§4.4) --- *)

(* Intervals with optional bounds; [None] is the corresponding infinity. *)
type interval = { lo : Rat.t option; hi : Rat.t option }

exception Not_monotonic

let ival_const c = { lo = Some c; hi = Some c }
let ival_add a b =
  let f x y = match (x, y) with Some x, Some y -> Some (Rat.add x y) | _ -> None in
  { lo = f a.lo b.lo; hi = f a.hi b.hi }

let ival_neg a =
  { lo = Option.map Rat.neg a.hi; hi = Option.map Rat.neg a.lo }

let ival_hull a b =
  let mn x y =
    match (x, y) with Some x, Some y -> Some (Rat.min x y) | _ -> None
  in
  let mx x y =
    match (x, y) with Some x, Some y -> Some (Rat.max x y) | _ -> None
  in
  { lo = mn a.lo b.lo; hi = mx a.hi b.hi }

(* Value range of a classification over h >= 0, for constant shapes. *)
let interval_of_class (c : Ivclass.t) : interval =
  match c with
  | Ivclass.Invariant s -> (
    match Sym.const s with Some c -> ival_const c | None -> raise Not_monotonic)
  | Ivclass.Linear { base = Ivclass.Invariant b; step; _ } -> (
    match (Sym.const b, Sym.const step) with
    | Some b, Some s ->
      if Rat.sign s >= 0 then { lo = Some b; hi = None }
      else { lo = None; hi = Some b }
    | _ -> raise Not_monotonic)
  | Ivclass.Periodic { values; _ } -> (
    let cs =
      Array.to_list values
      |> List.map (fun v ->
             match Sym.const v with Some c -> c | None -> raise Not_monotonic)
    in
    match cs with
    | [] -> raise Not_monotonic
    | first :: _ ->
      {
        lo = Some (List.fold_left Rat.min first cs);
        hi = Some (List.fold_left Rat.max first cs);
      })
  | _ -> raise Not_monotonic

let monotonic_analysis ctx scc header_phi =
  let scc_set =
    List.fold_left
      (fun acc (i : Ir.Instr.t) -> Ir.Instr.Id.Set.add i.Ir.Instr.id acc)
      Ir.Instr.Id.Set.empty scc
  in
  let cfg = Ir.Ssa.cfg ctx.ssa in
  let offsets : interval Ir.Instr.Id.Table.t = Ir.Instr.Id.Table.create 16 in
  let in_progress : unit Ir.Instr.Id.Table.t = Ir.Instr.Id.Table.create 16 in
  (* Offset of each member from the header phi, as an interval over all
     in-iteration paths. *)
  let rec offset_of_value (v : Ir.Instr.value) : interval =
    match v with
    | Ir.Instr.Def d when Ir.Instr.Id.Set.mem d scc_set -> offset_of d
    | Ir.Instr.Def _ | Ir.Instr.Const _ | Ir.Instr.Param _ -> raise Not_monotonic
  and class_interval (v : Ir.Instr.value) : interval =
    match v with
    | Ir.Instr.Def d when Ir.Instr.Id.Set.mem d scc_set -> raise Not_monotonic
    | v -> interval_of_class (class_of_value ctx v)
  and offset_of d : interval =
    if Ir.Instr.Id.equal d header_phi then ival_const Rat.zero
    else begin
      match Ir.Instr.Id.Table.find_opt offsets d with
      | Some i -> i
      | None ->
        if Ir.Instr.Id.Table.mem in_progress d then raise Not_monotonic;
        Ir.Instr.Id.Table.replace in_progress d ();
        let instr = Ir.Cfg.find_instr cfg d in
        let i = offset_of_instr instr in
        Ir.Instr.Id.Table.remove in_progress d;
        Ir.Instr.Id.Table.replace offsets d i;
        i
    end
  and offset_of_instr (instr : Ir.Instr.t) : interval =
    let args = instr.Ir.Instr.args in
    let in_scc (v : Ir.Instr.value) =
      match v with
      | Ir.Instr.Def d -> Ir.Instr.Id.Set.mem d scc_set
      | _ -> false
    in
    match instr.Ir.Instr.op with
    | Ir.Instr.Binop Ir.Ops.Add -> (
      match (in_scc args.(0), in_scc args.(1)) with
      | true, false -> ival_add (offset_of_value args.(0)) (class_interval args.(1))
      | false, true -> ival_add (class_interval args.(0)) (offset_of_value args.(1))
      | _ -> raise Not_monotonic)
    | Ir.Instr.Binop Ir.Ops.Sub ->
      if in_scc args.(0) && not (in_scc args.(1)) then
        ival_add (offset_of_value args.(0)) (ival_neg (class_interval args.(1)))
      else raise Not_monotonic
    | Ir.Instr.Phi ->
      Array.to_list args
      |> List.map offset_of_value
      |> List.fold_left
           (fun acc i -> match acc with None -> Some i | Some a -> Some (ival_hull a i))
           None
      |> (function Some i -> i | None -> raise Not_monotonic)
    | Ir.Instr.Astore _ -> offset_of_value args.(Array.length args - 1)
    | _ -> raise Not_monotonic
  in
  (* delta: the extra increment accumulated from a member to the back
     edge, minimized (for increasing) or maximized (for decreasing). *)
  let users : Ir.Instr.t list Ir.Instr.Id.Table.t = Ir.Instr.Id.Table.create 16 in
  List.iter
    (fun (u : Ir.Instr.t) ->
      if not (Ir.Instr.Id.equal u.Ir.Instr.id header_phi) then
        Array.iter
          (fun (v : Ir.Instr.value) ->
            match v with
            | Ir.Instr.Def d when Ir.Instr.Id.Set.mem d scc_set ->
              let cur = Option.value ~default:[] (Ir.Instr.Id.Table.find_opt users d) in
              Ir.Instr.Id.Table.replace users d (u :: cur)
            | _ -> ())
          u.Ir.Instr.args)
    scc;
  (* Which members feed the header phi's back edges directly? *)
  let back_args =
    let preds = Ir.Cfg.predecessors cfg ctx.loop.Ir.Loops.header in
    let phi = Ir.Cfg.find_instr cfg header_phi in
    List.concat
      (List.mapi
         (fun i p ->
           if Ir.Label.Set.mem p ctx.loop.Ir.Loops.blocks then [ phi.Ir.Instr.args.(i) ]
           else [])
         preds)
  in
  let is_back_arg d =
    List.exists
      (fun (v : Ir.Instr.value) ->
        match v with Ir.Instr.Def b -> Ir.Instr.Id.equal b d | _ -> false)
      back_args
  in
  let delta_memo : interval Ir.Instr.Id.Table.t = Ir.Instr.Id.Table.create 16 in
  let rec delta_of d : interval =
    match Ir.Instr.Id.Table.find_opt delta_memo d with
    | Some i -> i
    | None ->
      Ir.Instr.Id.Table.replace delta_memo d { lo = None; hi = None };
      let base = if is_back_arg d then Some (ival_const Rat.zero) else None in
      let through_users =
        Option.value ~default:[] (Ir.Instr.Id.Table.find_opt users d)
        |> List.filter_map (fun (u : Ir.Instr.t) ->
               let du = delta_of u.Ir.Instr.id in
               match u.Ir.Instr.op with
               | Ir.Instr.Binop Ir.Ops.Add ->
                 (* The other operand's class interval adds on the way. *)
                 let other =
                   if
                     match u.Ir.Instr.args.(0) with
                     | Ir.Instr.Def x -> Ir.Instr.Id.equal x d
                     | _ -> false
                   then u.Ir.Instr.args.(1)
                   else u.Ir.Instr.args.(0)
                 in
                 Some (ival_add du (class_interval other))
               | Ir.Instr.Binop Ir.Ops.Sub ->
                 Some (ival_add du (ival_neg (class_interval u.Ir.Instr.args.(1))))
               | Ir.Instr.Phi | Ir.Instr.Astore _ -> Some du
               | _ -> None)
      in
      let all = match base with Some b -> b :: through_users | None -> through_users in
      let result =
        match all with
        | [] -> { lo = None; hi = None }
        | first :: rest -> List.fold_left ival_hull first rest
      in
      Ir.Instr.Id.Table.replace delta_memo d result;
      result
  in
  (* Direction from the hull of back-edge offsets. *)
  let back_offsets = List.map offset_of_value back_args in
  let hull =
    match back_offsets with
    | [] -> raise Not_monotonic
    | first :: rest -> List.fold_left ival_hull first rest
  in
  let dir =
    match (hull.lo, hull.hi) with
    | Some lo, _ when Rat.sign lo >= 0 -> Ivclass.Increasing
    | _, Some hi when Rat.sign hi <= 0 -> Ivclass.Decreasing
    | _ -> raise Not_monotonic
  in
  (* Per-member strictness. *)
  List.iter
    (fun (m : Ir.Instr.t) ->
      let d = m.Ir.Instr.id in
      let off = offset_of d in
      let delta = delta_of d in
      let strict =
        match dir with
        | Ivclass.Increasing -> (
          match (off.lo, delta.lo) with
          | Some a, Some b -> Rat.sign (Rat.add a b) > 0
          | _ -> false)
        | Ivclass.Decreasing -> (
          match (off.hi, delta.hi) with
          | Some a, Some b -> Rat.sign (Rat.add a b) < 0
          | _ -> false)
      in
      Ir.Instr.Id.Table.replace ctx.table d
        (Ivclass.Monotonic { loop = loop_id ctx; dir; strict; family = header_phi }))
    scc

(* Monotonic regions with multiplication (§4.4: "Multiply operations can
   also be allowed, such as 2*i+i, as long as the initial value of i is
   known"): when the header's initial value is a known non-negative
   constant and every operation maps non-negative values upward (adding a
   provably non-negative amount, or multiplying by a constant >= 1), the
   whole region is monotonically increasing; strictly when every path
   adds a positive amount or multiplies a positive value by >= 2. *)
let monotonic_mul_analysis ctx scc header_phi =
  let cfg = Ir.Ssa.cfg ctx.ssa in
  let scc_set =
    List.fold_left
      (fun acc (i : Ir.Instr.t) -> Ir.Instr.Id.Set.add i.Ir.Instr.id acc)
      Ir.Instr.Id.Set.empty scc
  in
  let phi = Ir.Cfg.find_instr cfg header_phi in
  (* Initial value: a known constant >= 0 (> 0 enables strictness under
     multiplication). *)
  let init_positive =
    let entry =
      let preds = Ir.Cfg.predecessors cfg ctx.loop.Ir.Loops.header in
      List.filteri
        (fun i _ -> not (Ir.Label.Set.mem (List.nth preds i) ctx.loop.Ir.Loops.blocks))
        (Array.to_list phi.Ir.Instr.args)
    in
    List.fold_left
      (fun acc v ->
        match (acc, class_of_value ctx v) with
        | Some so_far, Ivclass.Invariant s -> (
          match Sym.const s with
          | Some c when Rat.sign c > 0 -> Some so_far
          | Some c when Rat.sign c = 0 -> Some false
          | _ -> None)
        | _ -> None)
      (Some true) entry
  in
  (* Every loop-carried value must be a checked member of the region —
     a phi fed through e.g. an inner loop's exit value is not. *)
  let back_args =
    let preds = Ir.Cfg.predecessors cfg ctx.loop.Ir.Loops.header in
    List.concat
      (List.mapi
         (fun i p ->
           if Ir.Label.Set.mem p ctx.loop.Ir.Loops.blocks then
             [ phi.Ir.Instr.args.(i) ]
           else [])
         preds)
  in
  List.iter
    (fun (v : Ir.Instr.value) ->
      match v with
      | Ir.Instr.Def d when Ir.Instr.Id.Set.mem d scc_set -> ()
      | _ -> raise Not_monotonic)
    back_args;
  match init_positive with
  | None -> raise Not_monotonic
  | Some init_strictly_positive ->
    (* Each member must keep values moving up from a non-negative
       start. [grows d] is true when the member's operation strictly
       increases positive inputs on every path. *)
    let in_scc (v : Ir.Instr.value) =
      match v with
      | Ir.Instr.Def d -> Ir.Instr.Id.Set.mem d scc_set
      | _ -> false
    in
    (* Constant lower bound of a non-SCC operand. *)
    let const_lo (v : Ir.Instr.value) =
      match class_of_value ctx v with
      | Ivclass.Invariant s -> (
        match Sym.const s with Some c -> Some c | None -> None)
      | Ivclass.Linear { base = Ivclass.Invariant b; step; _ } -> (
        match (Sym.const b, Sym.const step) with
        | Some b, Some s when Rat.sign s >= 0 -> Some b
        | _ -> None)
      | _ -> None
    in
    let strict_update = ref true in
    List.iter
      (fun (m : Ir.Instr.t) ->
        if Ir.Instr.Id.equal m.Ir.Instr.id header_phi then ()
        else begin
          match m.Ir.Instr.op with
          | Ir.Instr.Phi ->
            if not (Array.for_all in_scc m.Ir.Instr.args) then raise Not_monotonic
          | Ir.Instr.Binop Ir.Ops.Add -> (
            match
              ( in_scc m.Ir.Instr.args.(0),
                in_scc m.Ir.Instr.args.(1),
                m.Ir.Instr.args )
            with
            | true, true, _ ->
              (* v + v = 2v: >= v for v >= 0; strict only for v > 0. *)
              if not init_strictly_positive then strict_update := false
            | true, false, args -> (
              match const_lo args.(1) with
              | Some c when Rat.sign c > 0 -> ()
              | Some c when Rat.sign c = 0 -> strict_update := false
              | _ -> raise Not_monotonic)
            | false, true, args -> (
              match const_lo args.(0) with
              | Some c when Rat.sign c > 0 -> ()
              | Some c when Rat.sign c = 0 -> strict_update := false
              | _ -> raise Not_monotonic)
            | false, false, _ -> raise Not_monotonic)
          | Ir.Instr.Binop Ir.Ops.Mul -> (
            let scc_side, other =
              if in_scc m.Ir.Instr.args.(0) then (true, m.Ir.Instr.args.(1))
              else if in_scc m.Ir.Instr.args.(1) then (true, m.Ir.Instr.args.(0))
              else (false, m.Ir.Instr.args.(0))
            in
            if not scc_side then raise Not_monotonic;
            match const_lo other with
            | Some c when Rat.compare c (Rat.of_int 2) >= 0 ->
              if not init_strictly_positive then strict_update := false
            | Some c when Rat.compare c Rat.one >= 0 -> strict_update := false
            | _ -> raise Not_monotonic)
          | Ir.Instr.Astore _ -> ()
          | _ -> raise Not_monotonic
        end)
      scc;
    (* A value that can flow from the header phi back to the latch through
       pass-through nodes only (endif phis, stores) survives an iteration
       unchanged: the region is then at most non-strict. *)
    let passthrough_reach =
      let reach = Ir.Instr.Id.Table.create 8 in
      Ir.Instr.Id.Table.replace reach header_phi ();
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (m : Ir.Instr.t) ->
            match m.Ir.Instr.op with
            | Ir.Instr.Phi | Ir.Instr.Astore _ ->
              if
                (not (Ir.Instr.Id.Table.mem reach m.Ir.Instr.id))
                && Array.exists
                     (fun (v : Ir.Instr.value) ->
                       match v with
                       | Ir.Instr.Def d -> Ir.Instr.Id.Table.mem reach d
                       | _ -> false)
                     m.Ir.Instr.args
              then begin
                Ir.Instr.Id.Table.replace reach m.Ir.Instr.id ();
                changed := true
              end
            | _ -> ())
          scc
      done;
      reach
    in
    List.iter
      (fun (v : Ir.Instr.value) ->
        match v with
        | Ir.Instr.Def d when Ir.Instr.Id.Table.mem passthrough_reach d ->
          strict_update := false
        | _ -> ())
      back_args;
    List.iter
      (fun (m : Ir.Instr.t) ->
        Ir.Instr.Id.Table.replace ctx.table m.Ir.Instr.id
          (Ivclass.Monotonic
             {
               loop = loop_id ctx;
               dir = Ivclass.Increasing;
               strict = !strict_update;
               family = header_phi;
             }))
      scc

(* --- cycle classification --- *)

(* Entry and back arguments of a header phi, determined by whether the
   corresponding predecessor is inside the loop. *)
let split_phi_args ctx (phi : Ir.Instr.t) =
  let cfg = Ir.Ssa.cfg ctx.ssa in
  let preds = Ir.Cfg.predecessors cfg ctx.loop.Ir.Loops.header in
  let entry = ref [] and back = ref [] in
  List.iteri
    (fun i p ->
      let v = phi.Ir.Instr.args.(i) in
      if Ir.Label.Set.mem p ctx.loop.Ir.Loops.blocks then back := v :: !back
      else entry := v :: !entry)
    preds;
  (List.rev !entry, List.rev !back)

(* The invariant initial value flowing into a header phi from outside. *)
let init_sym ctx (phi : Ir.Instr.t) : Sym.t option =
  let entry, _ = split_phi_args ctx phi in
  let syms =
    List.map
      (fun v ->
        match class_of_value ctx v with
        | Ivclass.Invariant s -> Some s
        | _ -> None)
      entry
  in
  match syms with
  | [] -> None
  | first :: rest ->
    if List.for_all (fun s -> Option.is_some s && Option.is_some first
                              && Sym.equal (Option.get s) (Option.get first)) rest
    then first
    else None

let classify_periodic ctx scc =
  (* All members are loop-header phis; follow the carried edges to build
     the rotation (§4.2). *)
  let period = List.length scc in
  let member_ids =
    List.fold_left
      (fun acc (i : Ir.Instr.t) -> Ir.Instr.Id.Set.add i.Ir.Instr.id acc)
      Ir.Instr.Id.Set.empty scc
  in
  let carried_of (phi : Ir.Instr.t) =
    match split_phi_args ctx phi with
    | _, [ Ir.Instr.Def d ] when Ir.Instr.Id.Set.mem d member_ids -> Some d
    | _ -> None
  in
  let entry_of (phi : Ir.Instr.t) =
    match split_phi_args ctx phi with
    | [ v ], _ -> (
      match class_of_value ctx v with Ivclass.Invariant s -> Some s | _ -> None)
    | _ -> None
  in
  let find_instr id = List.find (fun (i : Ir.Instr.t) -> Ir.Instr.Id.equal i.Ir.Instr.id id) scc in
  (* Anchor the rotation at the first phi in program order, so the
     output is deterministic (j2 gets phase 0 in Fig 5). *)
  let scc_sorted =
    List.sort (fun (a : Ir.Instr.t) b -> Ir.Instr.Id.compare a.Ir.Instr.id b.Ir.Instr.id) scc
  in
  match scc_sorted with
  | [] -> ()
  | anchor :: _ ->
    let ok = ref true in
    (* Chain of members starting at the anchor, following carried args. *)
    let chain = Array.make period anchor in
    let cur = ref anchor in
    (try
       for k = 1 to period - 1 do
         match carried_of !cur with
         | Some next ->
           chain.(k) <- find_instr next;
           cur := find_instr next
         | None ->
           ok := false;
           raise Exit
       done;
       (* The chain must close back to the anchor. *)
       (match carried_of !cur with
        | Some d when Ir.Instr.Id.equal d anchor.Ir.Instr.id -> ()
        | _ -> ok := false)
     with Exit -> ());
    let values =
      if !ok then
        Array.map
          (fun (m : Ir.Instr.t) -> entry_of m)
          chain
      else Array.make period None
    in
    if !ok && Array.for_all Option.is_some values then begin
      let values = Array.map Option.get values in
      Array.iteri
        (fun k (m : Ir.Instr.t) ->
          Ir.Instr.Id.Table.replace ctx.table m.Ir.Instr.id
            (Ivclass.Periodic { loop = loop_id ctx; period; values; phase = k }))
        chain;
      prov ctx scc ~shape:"phi-cycle"
        ~rule:
          (Printf.sprintf
             "cycle of %d loop-header phis, carried edges close a rotation \
              with invariant entries => periodic family, period %d (sec 4.2)"
             period period)
    end
    else begin
      List.iter
        (fun (m : Ir.Instr.t) ->
          Ir.Instr.Id.Table.replace ctx.table m.Ir.Instr.id Ivclass.Unknown)
        scc;
      prov ctx scc ~shape:"phi-cycle"
        ~rule:
          "cycle of loop-header phis but the carried edges do not close a \
           rotation of invariant values => unknown"
    end

let classify_single_phi_cycle ctx scc (phi : Ir.Instr.t) =
  let scc_set =
    List.fold_left
      (fun acc (i : Ir.Instr.t) -> Ir.Instr.Id.Set.add i.Ir.Instr.id acc)
      Ir.Instr.Id.Set.empty scc
  in
  let shape = "single-phi-cycle" in
  let cycle_len = List.length scc in
  match init_sym ctx phi with
  | None ->
    List.iter
      (fun (m : Ir.Instr.t) -> Ir.Instr.Id.Table.replace ctx.table m.Ir.Instr.id Ivclass.Unknown)
      scc;
    prov ctx scc ~shape
      ~rule:"initial value flowing into the header phi is not loop-invariant => unknown"
  | Some init -> (
    try
      let of_node, of_value = effect_analysis ctx scc_set phi.Ir.Instr.id in
      let _, back = split_phi_args ctx phi in
      let back_effects = List.map of_value back in
      let effect =
        match back_effects with
        | [] -> raise Not_affine
        | first :: rest ->
          if
            List.for_all
              (fun e -> Rat.equal e.mult first.mult && Ivclass.equal e.add first.add)
              rest
          then first
          else raise Not_affine
      in
      let loop = loop_id ctx in
      let phi_class, rule =
        if Rat.equal effect.mult Rat.one then begin
          match effect.add with
          | Ivclass.Invariant step ->
            (* Basic linear family (§3.1). *)
            ( Ivclass.linear loop (Ivclass.Invariant init) step,
              Printf.sprintf
                "cycle length %d through a single phi, cumulative effect \
                 v' = v + d with d loop-invariant => basic IV family (sec 3.1)"
                cycle_len )
          | Ivclass.Geometric { gcoeffs; ratio; gcoeff; _ } ->
            ( Closed_form.polynomial_plus_geometric ~loop ~init ~add_coeffs:gcoeffs
                ~gratio:ratio ~gcoeff,
              Printf.sprintf
                "cumulative effect v' = v + p(h) + c*%s^h => polynomial plus \
                 geometric closed form (sec 4.3)"
                (Rat.to_string ratio) )
          | add -> (
            match Algebra.poly_view add with
            | Some (_, coeffs) ->
              ( Closed_form.polynomial ~loop ~init ~add_coeffs:coeffs,
                Printf.sprintf
                  "cumulative effect v' = v + p(h) with deg p = %d, matrix \
                   inverted (rank %d) => polynomial degree %d (sec 4.3)"
                  (Array.length coeffs - 1)
                  (Array.length coeffs + 1)
                  (Array.length coeffs) )
            | None -> (Ivclass.Unknown, ""))
        end
        else if Rat.equal effect.mult Rat.minus_one then begin
          match effect.add with
          | Ivclass.Invariant s ->
            (* Flip-flop: v' = s - v is periodic with period 2 (§4.2/§4.3). *)
            ( Ivclass.Periodic
                { loop; period = 2; values = [| init; Sym.sub s init |]; phase = 0 },
              Printf.sprintf
                "cycle length %d, cumulative effect v' = s - v (no \
                 self-update) => flip-flop, periodic with period 2 (sec 4.2)"
                cycle_len )
          | _ -> (Ivclass.Unknown, "")
        end
        else if Rat.is_zero effect.mult then (Ivclass.Unknown, "")
        else begin
          match Algebra.poly_view effect.add with
          | Some (_, coeffs) ->
            ( Closed_form.geometric ~loop ~init ~mult:effect.mult ~add_coeffs:coeffs,
              Printf.sprintf
                "cumulative effect v' = %s*v + p(h) => geometric with ratio \
                 %s (sec 4.3)"
                (Rat.to_string effect.mult) (Rat.to_string effect.mult) )
          | None -> (Ivclass.Unknown, "")
        end
      in
      if phi_class = Ivclass.Unknown then raise Not_affine;
      (* Each member's class follows from its effect on the phi value. *)
      List.iter
        (fun (m : Ir.Instr.t) ->
          let e = of_node m.Ir.Instr.id in
          let c = Algebra.add (Algebra.scale e.mult phi_class) e.add in
          Ir.Instr.Id.Table.replace ctx.table m.Ir.Instr.id c)
        scc;
      prov ctx scc ~shape ~rule
    with Not_affine -> (
      try
        monotonic_analysis ctx scc phi.Ir.Instr.id;
        prov ctx scc ~shape
          ~rule:
            "not affine in the phi, but every back-edge path accumulates a \
             consistently signed increment => monotonic family (sec 4.4)"
      with Not_monotonic -> (
        try
          monotonic_mul_analysis ctx scc phi.Ir.Instr.id;
          prov ctx scc ~shape
            ~rule:
              "not affine, but the initial value is a known non-negative \
               constant and every operation (add >= 0, multiply by >= 1) \
               moves non-negative values upward => monotonic increasing \
               (sec 4.4, multiply extension)"
        with Not_monotonic ->
          List.iter
            (fun (m : Ir.Instr.t) ->
              Ir.Instr.Id.Table.replace ctx.table m.Ir.Instr.id Ivclass.Unknown)
            scc;
          prov ctx scc ~shape
            ~rule:
              "no shape matched (not affine in the phi, increments not \
               consistently signed) => unknown")))

(* --- trivial regions: the operator algebra (§5.1) --- *)

let opaque_invariant id = Ivclass.Invariant (Sym.def id)

let classify_exp ctx id a b =
  let ca = class_of_value ctx a and cb = class_of_value ctx b in
  match (ca, cb) with
  | Ivclass.Invariant _, Ivclass.Invariant _ -> opaque_invariant id
  | Ivclass.Invariant base, exp -> (
    (* c ^ (b0 + b1*h) = c^b0 * (c^b1)^h: geometric (an extension the
       paper's framework admits directly). *)
    match (Sym.const base, Algebra.poly_view exp) with
    | Some c, Some (Some loop, [| b0; b1 |]) -> (
      match (Sym.const b0, Sym.const b1) with
      | Some b0c, Some b1c -> (
        match (Rat.to_int_exact b0c, Rat.to_int_exact b1c) with
        | Some e0, Some e1 when not (Rat.is_zero c) ->
          let ratio = Rat.pow c e1 in
          if Rat.is_zero ratio || Rat.equal ratio Rat.one then opaque_invariant id
          else
            Ivclass.geometric loop [| Sym.zero |] ratio (Sym.of_rat (Rat.pow c e0))
        | _ -> Ivclass.Unknown)
      | _ -> Ivclass.Unknown)
    | _ -> Ivclass.Unknown)
  | _ -> Ivclass.Unknown

let classify_div ctx id a b =
  let ca = class_of_value ctx a and cb = class_of_value ctx b in
  match (ca, cb) with
  | Ivclass.Invariant _, Ivclass.Invariant _ -> opaque_invariant id
  | _, Ivclass.Invariant s -> (
    match Sym.const s with
    | Some c when not (Rat.is_zero c) -> (
      match Rat.to_bigint_exact c with
      | Some n -> Algebra.div_const ca n
      | None -> Ivclass.Unknown)
    | _ -> Ivclass.Unknown)
  | _ -> Ivclass.Unknown

let classify_wraparound ctx (phi : Ir.Instr.t) =
  (* A loop-header phi alone in its region (§4.1): the carried value's
     class, delayed by one iteration. If the initial value happens to fit
     the carried sequence shifted back one step, promote to the plain
     class (paper: jl = 0 makes j2 the IV (L10, 0, 1)).

     Returns the class and the provenance rule that produced it. *)
  match (init_sym ctx phi, split_phi_args ctx phi) with
  | Some init, (_, back) -> (
    let carried_classes = List.map (class_of_value ctx) back in
    match carried_classes with
    | [] -> (Ivclass.Unknown, "header phi with no carried value")
    | first :: rest ->
      if not (List.for_all (Ivclass.equal first) rest) then
        (Ivclass.Unknown, "header phi alone in region, carried classes disagree")
      else if first = Ivclass.Unknown then
        (Ivclass.Unknown, "header phi alone in region, carried value unclassified")
      else begin
        match Algebra.shift first (-1) with
        | Some shifted when
            (match Algebra.sym_at shifted 0 with
             | Some v0 -> Sym.equal v0 init
             | None -> false) ->
          ( shifted,
            "header phi alone in region, initial value fits the carried \
             sequence shifted back one step => promoted to the underlying \
             class (sec 4.1)" )
        | Some _ | None ->
          ( Ivclass.wrap (loop_id ctx) first init,
            "header phi alone in its region, carried value classified => \
             wrap-around of the carried class, delayed one iteration (sec 4.1)"
          )
      end)
  | None, _ -> (Ivclass.Unknown, "header phi with non-invariant initial value")

let classify_trivial ctx (instr : Ir.Instr.t) =
  let id = instr.Ir.Instr.id in
  let arg i = class_of_value ctx instr.Ir.Instr.args.(i) in
  let algebra op = Printf.sprintf "operator algebra on %s of classified operands (sec 5.1)" op in
  let result, rule =
    match instr.Ir.Instr.op with
    | Ir.Instr.Binop Ir.Ops.Add -> (Algebra.add (arg 0) (arg 1), algebra "add")
    | Ir.Instr.Binop Ir.Ops.Sub -> (Algebra.sub (arg 0) (arg 1), algebra "sub")
    | Ir.Instr.Binop Ir.Ops.Mul -> (Algebra.mul (arg 0) (arg 1), algebra "mul")
    | Ir.Instr.Binop Ir.Ops.Div ->
      ( classify_div ctx id instr.Ir.Instr.args.(0) instr.Ir.Instr.args.(1),
        algebra "div (invariant divisor)" )
    | Ir.Instr.Binop Ir.Ops.Exp ->
      ( classify_exp ctx id instr.Ir.Instr.args.(0) instr.Ir.Instr.args.(1),
        algebra "exp (invariant base ^ linear exponent => geometric)" )
    | Ir.Instr.Neg -> (Algebra.neg (arg 0), algebra "neg")
    | Ir.Instr.Relop _ -> (Ivclass.Unknown, "relational result is not an integer sequence")
    | Ir.Instr.Rand -> (Ivclass.Unknown, "random value: unknowable")
    | Ir.Instr.Aload _ -> (Ivclass.Unknown, "array load: value not tracked")
    | Ir.Instr.Astore _ ->
      (arg (Array.length instr.Ir.Instr.args - 1), "store passes its value through")
    | Ir.Instr.Phi ->
      if Ssa_graph.is_header_phi ctx.graph instr then classify_wraparound ctx instr
      else begin
        (* An if-join outside any cycle: all inputs agree or unknown. *)
        let args = Array.to_list (Array.map (class_of_value ctx) instr.Ir.Instr.args) in
        match args with
        | [] -> (Ivclass.Unknown, "empty phi")
        | first :: rest ->
          if List.for_all (Ivclass.equal first) rest then
            (first, "if-join outside any cycle, all inputs agree (sec 5.1)")
          else (Ivclass.Unknown, "if-join with disagreeing inputs")
      end
    | Ir.Instr.Load _ | Ir.Instr.Store _ ->
      invalid_arg "Classify: program not in SSA form"
  in
  Ir.Instr.Id.Table.replace ctx.table id result;
  let shape =
    match instr.Ir.Instr.op with
    | Ir.Instr.Phi when Ssa_graph.is_header_phi ctx.graph instr -> "lone-header-phi"
    | _ -> "singleton"
  in
  prov ctx [ instr ] ~shape ~rule

(* --- entry point --- *)

let classify_scc ctx (scc : Ir.Instr.t list) =
  let graph_edges (i : Ir.Instr.t) =
    Ssa_graph.successors ctx.graph i.Ir.Instr.id
  in
  let trivial =
    match scc with
    | [ i ] -> not (List.exists (Ir.Instr.Id.equal i.Ir.Instr.id) (graph_edges i))
    | _ -> false
  in
  if trivial then classify_trivial ctx (List.hd scc)
  else begin
    let header_phis = List.filter (Ssa_graph.is_header_phi ctx.graph) scc in
    let all_header_phis = List.length header_phis = List.length scc in
    match header_phis with
    | [] ->
      List.iter
        (fun (m : Ir.Instr.t) -> Ir.Instr.Id.Table.replace ctx.table m.Ir.Instr.id Ivclass.Unknown)
        scc;
      prov ctx scc ~shape:"cycle"
        ~rule:"cycle contains no loop-header phi => unknown"
    | [ phi ] -> classify_single_phi_cycle ctx scc phi
    | _ ->
      if all_header_phis then classify_periodic ctx scc
      else begin
        List.iter
          (fun (m : Ir.Instr.t) -> Ir.Instr.Id.Table.replace ctx.table m.Ir.Instr.id Ivclass.Unknown)
          scc;
        prov ctx scc ~shape:"cycle"
          ~rule:
            "cycle mixes several loop-header phis with other operations => \
             unknown"
      end
  end

let classify_scc ctx (scc : Ir.Instr.t list) =
  if Obs.Trace.enabled () then
    Obs.Trace.with_span ~cat:"classify"
      ~attrs:[ ("scr_size", Obs.Trace.Int (List.length scc)) ]
      "classify.scr"
      (fun () -> classify_scc ctx scc)
  else classify_scc ctx scc

(* [classify_loop ssa loop] classifies every instruction of [loop]'s
   direct body. [outer_const] supplies known values for defs outside the
   loop (e.g. from constant propagation); [inner_exit] supplies exit
   values of already-processed inner loops. *)
let classify_loop ?(outer_const = fun _ -> None) ?(inner_exit = fun _ -> None)
    (ssa : Ir.Ssa.t) (loop : Ir.Loops.loop) =
  let graph = Ssa_graph.build ~expand:inner_exit ssa loop in
  let ctx =
    {
      ssa;
      loop;
      graph;
      table = Ir.Instr.Id.Table.create 64;
      outer_const;
      inner_exit;
    }
  in
  let g =
    {
      Tarjan.vertices = Ssa_graph.nodes graph;
      edges =
        (fun (i : Ir.Instr.t) ->
          Ssa_graph.successors graph i.Ir.Instr.id
          |> List.map (fun d ->
                 match Ir.Cfg.find_instr_opt (Ir.Ssa.cfg ssa) d with
                 | Some instr -> instr
                 | None -> invalid_arg "Classify: dangling SSA edge"));
      key = (fun (i : Ir.Instr.t) -> i.Ir.Instr.id);
    }
  in
  let sccs =
    Obs.Trace.with_span ~cat:"classify"
      ~attrs:[ ("loop", Obs.Trace.Str loop.Ir.Loops.name) ]
      "classify.tarjan"
      (fun () -> Tarjan.sccs g)
  in
  List.iter (classify_scc ctx) sccs;
  (ctx.table, graph)
