(** The demand-driven analysis pipeline.

    The paper's algorithm is naturally staged — parse, lowering,
    CFG/dominators, SSA, the loop forest, SCCP, the inner-to-outer
    per-loop classification walk (with trip counts and exit values,
    §5.2–5.3), multiloop promotion, and finally dependence testing (§6).
    This module makes the staging explicit: a {!pass} is a typed node of
    a static DAG; a pipeline instance ({!t}) forces passes lazily on
    demand, remembers each forced pass's value, and exposes a stable
    {!Hash.Fnv} digest of every result so downstream cache keys compose
    (the service engine keys its per-pass artifacts off these digests).

    Two layers:

    - {e staged algorithm entry points} ({!loopwalk}, {!promote},
      {!run}) — the whole-program analysis moved here from
      {!Driver}, which is now a thin façade; reports stay
      byte-identical.
    - {e the lazy instance} ({!create} and the per-pass accessors) —
      one pipeline per source text, thread-safe (a mutex serializes
      stage forcing per instance; distinct sources never contend).

    The [Depgraph] pass is declared in the DAG (so the pass listing and
    key composition cover it) but is {e forced} by the service layer:
    dependence testing lives in [lib/dependence], above this library.
    The engine records its completion with {!note}. The three verify
    passes ([VerifyIr], [VerifyClass], [VerifyTrans]) follow the same
    pattern: declared here, computed by [lib/verify] through the
    engine's checked mode. *)

(* -- the pass DAG -- *)

type pass =
  | Parse  (** source text → AST *)
  | Lower  (** AST → pre-SSA CFG (the [ivtool cfg] view) *)
  | Ssa  (** AST → SSA form (CFG, dominators, loop forest inside) *)
  | Looptree  (** SSA → the loop-nesting forest *)
  | Sccp  (** SSA → conditional constant propagation (per options) *)
  | Units
      (** the analysis-unit partition: top-level loop nests plus
          residual straight-line runs ({!Ir.Region}), each with an
          exact per-unit digest — the incremental cache key *)
  | Unitclassify
      (** the unit-granular classification walk — forced by the service
          layer, which owns the shared unit-artifact cache
          ({!classify_with_units}) *)
  | Classify
      (** the inner-to-outer walk: per-loop classification tables,
          trip counts and exit values (§5.2–5.3) *)
  | Trip  (** per-loop trip-count report (projection of Classify) *)
  | Promote  (** multiloop promotion (§5.3); final classification *)
  | Ranges
      (** per-def value intervals: classification closed forms + SCCP
          constants seed a widened interval fixpoint ({!Range}) *)
  | Depgraph  (** dependence graph (§6) — forced by the service layer *)
  | VerifyIr
      (** structural verification of the lowered CFG, the SSA form and
          the loop forest — forced by the service layer (lib/verify) *)
  | VerifyClass
      (** the classification soundness oracle (differential against the
          interpreter) — forced by the service layer *)
  | VerifyRanges
      (** the range-interval oracle: every concrete valuation inside its
          reported interval — forced by the service layer *)
  | VerifyTrans
      (** transform validation (structural + differential after
          DCE/LICM/strength-reduction/normalize) — forced by the
          service layer *)

(** Every pass, in topological order. *)
val all : pass list

val name : pass -> string
val of_name : string -> pass option

(** Direct inputs of a pass (the static DAG). [Ssa] declares [Parse],
    not [Lower]: SSA conversion consumes (mutates) the CFG it lowers,
    so the [Lower] pass keeps the pristine pre-SSA view and the SSA
    pass lowers its own copy. *)
val inputs : pass -> pass list

val description : pass -> string

(** Passes the pipeline cannot compute by itself — the service layer
    forces them and records completion with {!note}: [Depgraph] (lives
    in [lib/dependence]), the three verify passes ([lib/verify]) and
    [Unitclassify] (needs the engine's shared unit-artifact cache). *)
val engine_forced : pass -> bool

(* -- options -- *)

type options = { use_sccp : bool }

val default_options : options

(* -- the analysis payload (what Driver.t wraps) -- *)

type loop_result = {
  loop : Ir.Loops.loop;
  table : Ivclass.t Ir.Instr.Id.Table.t;
  graph : Ssa_graph.t;
  trip : Trip_count.t;
}

type analysis = {
  ssa : Ir.Ssa.t;
  sccp : Sccp.result option;
  by_loop : loop_result option array;  (** indexed by loop id *)
  exit_values : Sym.t Ir.Instr.Id.Table.t;
}

(* -- staged algorithm entry points (the former Driver.analyze) -- *)

(** [loopwalk ?sccp ssa] classifies every loop from the innermost out,
    computing trip counts and symbolic exit values as each countable
    loop completes (§5.2–5.3). Does {e not} promote. *)
val loopwalk : ?sccp:Sccp.result -> Ir.Ssa.t -> analysis

(** [promote t] rewrites inner initial values that are outer-loop IVs
    into the paper's nested multiloop tuples (§5.3, Figs 8–9).
    In place and idempotent. *)
val promote : analysis -> unit

(** [run ssa] is the whole chain — SCCP (per [use_sccp], default true),
    {!loopwalk}, {!promote} — under the same trace spans the monolithic
    driver emitted. [Driver.analyze] delegates here. *)
val run : ?use_sccp:bool -> Ir.Ssa.t -> analysis

(* -- analysis units (incremental re-analysis) -- *)

(** One analysis unit, mapped onto the loop forest. Nest units carry
    their root loop ids ([uroots], program order) and every descendant
    loop inner-to-outer ([uloops]); straight-line units have both
    empty. [udigest] is an exact digest of everything the per-unit walk
    can observe — the unit's canonical source slice, options, loop
    forest shape, in-loop instructions and terminators (with ids), and
    the SSA name + SCCP constant fact of every def the unit defines or
    reads — so a digest hit guarantees a cached artifact's
    instruction-id-keyed tables are valid verbatim. *)
type unit_info = {
  region : Ir.Region.unit_;
  uroots : int list;
  uloops : int list;
  udigest : Hash.Fnv.t;
}

(** The cached per-unit result: promoted per-loop classification
    results (aligned with [uloops]) and the unit's exit values.
    Artifacts are shared across pipeline instances and domains — never
    mutated after creation. *)
type unit_artifact = {
  ua_results : loop_result list;
  ua_exits : (Ir.Instr.Id.t * Sym.t) list;
}

(** What happened to one nest unit during {!classify_with_units}. *)
type unit_outcome = {
  u_index : int;  (** {!Ir.Region.unit_} index *)
  u_loops : string list;  (** the unit's outermost loop names *)
  u_hit : bool;  (** the artifact came from the unit cache *)
}

(** [analyze_unit ?sccp ssa info] classifies and promotes one unit in
    isolation — equivalent to the unit's slice of the whole-program
    walk (exit values never cross a nest boundary, promotion relates
    only loops of one nest). *)
val analyze_unit : ?sccp:Sccp.result -> Ir.Ssa.t -> unit_info -> unit_artifact

(** [merge_units ?sccp ssa artifacts] reassembles the whole-program
    analysis; renderers and the dependence pass run on it unchanged, so
    incremental reports are byte-identical to a cold run. *)
val merge_units : ?sccp:Sccp.result -> Ir.Ssa.t -> unit_artifact list -> analysis

(* -- report renderers (shared by Driver and the service engine) -- *)

val namer_of : analysis -> Ivclass.namer

val pp_report : Format.formatter -> analysis -> unit

(** The per-loop classification report ([Driver.report]). *)
val report_of : analysis -> string

(** The per-loop trip-count report (the [trip] artifact). *)
val trip_report_of : analysis -> string

(** [range_of a] runs the value-range analysis over a (promoted)
    analysis record — the [Ranges] pass body, also reachable through
    [Driver.ranges] for standalone consumers (transform validation). *)
val range_of : analysis -> Range.t

(* -- the lazy per-source instance -- *)

type t

(** [create ?options src] — nothing is forced yet. *)
val create : ?options:options -> string -> t

val options : t -> options

(** Digest of the raw source text plus the options — the base cache
    key. Computed once at {!create}. *)
val source_digest : t -> Hash.Fnv.t

(** Per-pass accessors: each forces its pass (and, transitively, the
    pass's inputs) on first use and returns the memoized result after.
    [Error] carries the parse / SSA-construction diagnostic. *)

val parse : t -> (Ir.Ast.program, string) result

val lower : t -> (Ir.Cfg.t, string) result
val ssa : t -> (Ir.Ssa.t, string) result
val looptree : t -> (Ir.Loops.t, string) result
val sccp : t -> (Sccp.result option, string) result

(** The un-promoted analysis (classification tables, trip counts, exit
    values). A trip-count query needs nothing past this. *)
val classified : t -> (analysis, string) result

(** The rendered trip-count report (forces through [Trip] only). *)
val trip_report : t -> (string, string) result

(** The promoted (final) analysis — what [Driver.analyze] returns. *)
val promoted : t -> (analysis, string) result

(** The rendered classification report (forces through [Promote]). *)
val report : t -> (string, string) result

(** The analysis-unit partition with per-unit digests ([Ok None] when
    the syntactic partition could not be mapped onto the loop forest —
    callers fall back to the whole-program walk). *)
val units : t -> (unit_info list option, string) result

(** The value-range analysis over the promoted classification (forces
    through [Ranges]). *)
val ranges : t -> (Range.t, string) result

(** The rendered range table (the [Ranges] digest source). *)
val range_report : t -> (string, string) result

(** [classify_with_units ?pool_run ~lookup ~store t] satisfies
    [Classify] {e and} [Promote] through the unit layer: probe [lookup]
    with each nest unit's digest, run {!analyze_unit} for the misses
    (fanned out through [pool_run] when given and more than one unit
    missed), [store] the fresh artifacts, and install the merged
    analysis. Returns one {!unit_outcome} per nest unit (empty when the
    partition was unmapped and the whole-program walk ran instead, or
    when [Classify] was already forced). Driven by the service engine,
    which owns the shared unit-artifact cache. *)
val classify_with_units :
  ?pool_run:((unit -> unit_artifact) array -> unit_artifact array) ->
  lookup:(Hash.Fnv.t -> unit_artifact option) ->
  store:(Hash.Fnv.t -> unit_artifact -> unit) ->
  t ->
  (unit_outcome list, string) result

(** [force t pass] forces one pass generically. [Depgraph] cannot be
    forced here (it lives above this library) and returns [Error]. *)
val force : t -> pass -> (unit, string) result

(** [forced t pass] — has the pass run (or, for [Depgraph], been
    {!note}d)? Never forces anything. *)
val forced : t -> pass -> bool

(** [digest t pass] is the stable digest of the pass's result, once
    forced. Digests are content hashes of a canonical rendering, so
    they are reproducible across instances and processes. *)
val digest : t -> pass -> Hash.Fnv.t option

(** [note t pass d] records an externally-computed pass (the service
    layer's dependence graph) as forced with result digest [d]. *)
val note : t -> pass -> Hash.Fnv.t -> unit
