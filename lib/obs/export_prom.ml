(* Prometheus text exposition format 0.0.4.

   The registry's flat names map onto Prometheus metric families:

   - dots become underscores and everything gets the [iv_] namespace
     ([pool.task_latency] -> [iv_pool_task_latency_seconds]);
   - a trailing [{k="v",...}] block produced by [Instrument.labeled] is
     split off the name and re-emitted as labels;
   - counters get the [_total] suffix, histograms [_seconds] (all our
     histograms record seconds) with cumulative [_bucket{le="..."}]
     lines, [_sum] and [_count]; gauges are bare.

   Rows sharing a family render under one [# TYPE] header; within a
   family, samples keep the registry's sorted-by-name order, so output
   is deterministic for the same recorded data. *)

type metric =
  | Counter of float
  | Gauge of float
  | Histogram of { h_count : int; h_sum : float; h_buckets : (float * int) list }

type row = { name : string; help : string option; metric : metric }

let row ?help name metric = { name; help; metric }

(* Split a registry name into (base, label block) — the block, if any,
   was appended by [Instrument.labeled] and starts at the first '{'. *)
let split_labels name =
  match String.index_opt name '{' with
  | None -> (name, "")
  | Some i -> (String.sub name 0 i, String.sub name i (String.length name - i))

let sanitize base =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    base

let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Prometheus floats: integers without a fraction part, everything else
   shortest-round-trip-ish via %.9g (exposition format allows any Go
   ParseFloat-able rendering). *)
let number v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let family_name ~namespace name metric =
  let base, labels = split_labels name in
  let suffix =
    match metric with Counter _ -> "_total" | Gauge _ -> "" | Histogram _ -> "_seconds"
  in
  (namespace ^ "_" ^ sanitize base ^ suffix, labels)

(* [labels] is "" or "{k=\"v\",...}"; merge in an extra le label. *)
let with_le labels le =
  if labels = "" then Printf.sprintf "{le=\"%s\"}" le
  else Printf.sprintf "%s,le=\"%s\"}" (String.sub labels 0 (String.length labels - 1)) le

let type_of = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let render_rows ?(namespace = "iv") rows =
  let keyed =
    List.map
      (fun r ->
        let fam, labels = family_name ~namespace r.name r.metric in
        (fam, labels, r))
      rows
  in
  let keyed =
    List.stable_sort
      (fun (fa, la, _) (fb, lb, _) ->
        match String.compare fa fb with 0 -> String.compare la lb | c -> c)
      keyed
  in
  let buf = Buffer.create 4096 in
  let current = ref "" in
  List.iter
    (fun (fam, labels, r) ->
      if fam <> !current then begin
        current := fam;
        (match r.help with
         | Some h ->
           Buffer.add_string buf
             (Printf.sprintf "# HELP %s %s\n" fam (escape_help h))
         | None -> ());
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" fam (type_of r.metric))
      end;
      match r.metric with
      | Counter v | Gauge v ->
        Buffer.add_string buf (Printf.sprintf "%s%s %s\n" fam labels (number v))
      | Histogram h ->
        let seen = ref 0 in
        List.iter
          (fun (upper, count) ->
            seen := !seen + count;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" fam
                 (with_le labels (number upper))
                 !seen))
          h.h_buckets;
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket%s %d\n" fam (with_le labels "+Inf") h.h_count);
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" fam labels (number h.h_sum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" fam labels h.h_count))
    keyed;
  Buffer.contents buf

let of_instruments m =
  List.map
    (fun (name, v) ->
      match (v : Instrument.view) with
      | Instrument.V_counter c -> row name (Counter (float_of_int c))
      | Instrument.V_gauge g -> row name (Gauge (float_of_int g))
      | Instrument.V_histogram { v_count; v_sum; v_buckets; _ } ->
        row name (Histogram { h_count = v_count; h_sum = v_sum; h_buckets = v_buckets }))
    (Instrument.snapshot m)

let render ?namespace m = render_rows ?namespace (of_instruments m)
