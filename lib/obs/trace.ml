(* Hierarchical spans and structured events, collected into an ambient
   per-process collector.

   The collector is installed globally (an [Atomic]); when none is
   installed, [with_span]/[event] cost one atomic load and nothing else,
   so the whole pipeline can stay instrumented unconditionally. Span
   parentage is tracked with a per-domain stack, so concurrent domains
   each build their own well-nested tree under one collector. *)

type attr =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type span = {
  sid : int;
  parent : int option;
  name : string;
  cat : string;
  tid : int; (* domain id *)
  start_ns : int64;
  mutable stop_ns : int64; (* equal to start while the span is open *)
  mutable attrs : (string * attr) list;
}

type event = {
  ev_name : string;
  ev_cat : string;
  ev_tid : int;
  ts_ns : int64;
  ev_attrs : (string * attr) list;
}

type t = {
  lock : Mutex.t;
  limit : int;
  mutable spans_rev : span list;
  mutable events_rev : event list;
  mutable n : int; (* spans + events retained *)
  mutable dropped : int;
  next_sid : int Atomic.t;
}

let create ?(limit = 200_000) () =
  {
    lock = Mutex.create ();
    limit = max 1 limit;
    spans_rev = [];
    events_rev = [];
    n = 0;
    dropped = 0;
    next_sid = Atomic.make 1;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* --- the ambient collector --- *)

let ambient : t option Atomic.t = Atomic.make None

let install t = Atomic.set ambient (Some t)
let uninstall () = Atomic.set ambient None
let current () = Atomic.get ambient
let enabled () = Atomic.get ambient <> None

(* Innermost open span id, per domain. *)
let stack : int list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let tid () = (Domain.self () :> int)

(* --- recording --- *)

let record_span t span =
  locked t (fun () ->
      if t.n >= t.limit then t.dropped <- t.dropped + 1
      else begin
        t.spans_rev <- span :: t.spans_rev;
        t.n <- t.n + 1
      end)

let record_event t ev =
  locked t (fun () ->
      if t.n >= t.limit then t.dropped <- t.dropped + 1
      else begin
        t.events_rev <- ev :: t.events_rev;
        t.n <- t.n + 1
      end)

let with_span ?(cat = "pipeline") ?(attrs = []) name f =
  match Atomic.get ambient with
  | None -> f ()
  | Some t ->
    let st = Domain.DLS.get stack in
    let parent = match !st with [] -> None | p :: _ -> Some p in
    let sid = Atomic.fetch_and_add t.next_sid 1 in
    let start_ns = Clock.now_ns () in
    let span = { sid; parent; name; cat; tid = tid (); start_ns; stop_ns = start_ns; attrs } in
    (* Recorded at start so children observe the parent id even if the
       collector is drained mid-flight; [stop_ns] is patched at exit. *)
    record_span t span;
    st := sid :: !st;
    Fun.protect
      ~finally:(fun () ->
        (match !st with s :: rest when s = sid -> st := rest | _ -> ());
        span.stop_ns <- Clock.now_ns ())
      f

let add_attrs attrs =
  match Atomic.get ambient with
  | None -> ()
  | Some t -> (
    match !(Domain.DLS.get stack) with
    | [] -> ()
    | top :: _ ->
      (* The open span is near the head of the reversed list. *)
      locked t (fun () ->
          match List.find_opt (fun s -> s.sid = top) t.spans_rev with
          | Some s -> s.attrs <- s.attrs @ attrs
          | None -> ()))

let event ?(cat = "event") ?(attrs = []) name =
  match Atomic.get ambient with
  | None -> ()
  | Some t ->
    record_event t
      { ev_name = name; ev_cat = cat; ev_tid = tid (); ts_ns = Clock.now_ns (); ev_attrs = attrs }

(* --- reading a collector --- *)

let spans t = locked t (fun () -> List.rev t.spans_rev)
let events t = locked t (fun () -> List.rev t.events_rev)
let dropped t = locked t (fun () -> t.dropped)

let drain t =
  locked t (fun () ->
      let s = List.rev t.spans_rev and e = List.rev t.events_rev in
      t.spans_rev <- [];
      t.events_rev <- [];
      t.n <- 0;
      (s, e))

(* [collect f] runs [f] under a fresh, temporarily-installed collector
   and restores whatever was installed before — the backbone of
   `ivtool --trace` and `ivtool explain`. *)
let collect ?limit f =
  let t = create ?limit () in
  let previous = Atomic.get ambient in
  Atomic.set ambient (Some t);
  let restore () = Atomic.set ambient previous in
  let result = Fun.protect ~finally:restore (fun () -> f ()) in
  (result, t)

(* --- attr rendering (shared by exporters) --- *)

let attr_to_string = function
  | Str s -> s
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6g" f
  | Bool b -> string_of_bool b
