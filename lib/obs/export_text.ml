(* The sorted-text summary: spans aggregated by (cat, name), events
   counted by name, instruments rendered through Instrument.dump.

   This is the human-facing sibling of the Chrome exporter — the STATS
   payload and `ivtool batch --stats` extend their old metrics dump with
   whatever span data has been collected. *)

type agg = {
  mutable count : int;
  mutable total_ns : int64;
  mutable min_ns : int64;
  mutable max_ns : int64;
}

let span_table spans =
  let tbl : (string * string, agg) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (s : Trace.span) ->
      let d = Int64.sub s.Trace.stop_ns s.Trace.start_ns in
      match Hashtbl.find_opt tbl (s.Trace.cat, s.Trace.name) with
      | Some a ->
        a.count <- a.count + 1;
        a.total_ns <- Int64.add a.total_ns d;
        if Int64.compare d a.min_ns < 0 then a.min_ns <- d;
        if Int64.compare d a.max_ns > 0 then a.max_ns <- d
      | None ->
        Hashtbl.replace tbl (s.Trace.cat, s.Trace.name)
          { count = 1; total_ns = d; min_ns = d; max_ns = d })
    spans;
  tbl

let us ns = Int64.to_float ns /. 1e3

(* Integer µs, half away from zero — same stable convention as
   Instrument.dump. *)
let us_string ns = Printf.sprintf "%.0f" (Float.round (us ns))

let summary ?instruments spans events =
  let buf = Buffer.create 1024 in
  let tbl = span_table spans in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  if rows <> [] then begin
    Buffer.add_string buf "spans (by cat/name):\n";
    rows
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.iter (fun ((cat, name), a) ->
           Buffer.add_string buf
             (Printf.sprintf "%-40s count=%-6d total=%sus mean=%sus min=%sus max=%sus\n"
                (cat ^ "/" ^ name) a.count (us_string a.total_ns)
                (us_string (Int64.div a.total_ns (Int64.of_int a.count)))
                (us_string a.min_ns) (us_string a.max_ns)))
  end;
  let ev_counts : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Trace.event) ->
      let key = e.Trace.ev_cat ^ "/" ^ e.Trace.ev_name in
      match Hashtbl.find_opt ev_counts key with
      | Some r -> incr r
      | None -> Hashtbl.replace ev_counts key (ref 1))
    events;
  if Hashtbl.length ev_counts > 0 then begin
    Buffer.add_string buf "events (by cat/name):\n";
    Hashtbl.fold (fun k v acc -> (k, !v) :: acc) ev_counts []
    |> List.sort compare
    |> List.iter (fun (k, n) ->
           Buffer.add_string buf (Printf.sprintf "%-40s count=%d\n" k n))
  end;
  (match instruments with
   | Some m ->
     let d = Instrument.dump m in
     if d <> "" then begin
       Buffer.add_string buf d;
       Buffer.add_char buf '\n'
     end
   | None -> ());
  Buffer.contents buf

let render ?instruments t =
  summary ?instruments (Trace.spans t) (Trace.events t)
