(* The trace time source: nanoseconds since an arbitrary process-local
   epoch. [Unix.gettimeofday] is the only portable clock the stdlib
   offers; it can step backwards under NTP, so each domain clamps to its
   own last reading — span durations never come out negative and nesting
   stays consistent within a domain. *)

let epoch = Unix.gettimeofday ()

let raw_ns () =
  Int64.of_float ((Unix.gettimeofday () -. epoch) *. 1e9)

let last : int64 ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0L)

let now_ns () =
  let l = Domain.DLS.get last in
  let t = raw_ns () in
  let t = if Int64.compare t !l < 0 then !l else t in
  l := t;
  t

(* Microseconds with sub-µs precision, for Chrome's [ts]/[dur] fields. *)
let ns_to_us ns = Int64.to_float ns /. 1e3
