(** A small counters/gauges/histograms registry.

    Instruments are created (or looked up) by name in a registry; all
    operations are thread-safe and cheap enough for hot paths. Latency
    histograms bucket samples into powers of two of microseconds, so
    percentile estimates are deterministic (no sampling) and domains can
    record concurrently without coordination beyond the registry lock.

    [dump] renders the whole registry as sorted text — the backing for
    the server's [STATS] reply and `ivtool batch --stats`. This module
    is re-exported unchanged as [Service.Metrics]. *)

type t

type counter
type gauge
type histogram

(** A fresh, empty registry. *)
val create : unit -> t

(** [counter t name] finds or registers a monotonic counter. *)
val counter : t -> string -> counter

val incr : ?by:int -> counter -> unit
val count : counter -> int

(** [gauge t name] finds or registers a last-value-wins gauge. *)
val gauge : t -> string -> gauge

val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

(** [histogram t name] finds or registers a latency histogram
    (samples in seconds). *)
val histogram : t -> string -> histogram

val observe : histogram -> float -> unit

(** [time t name f] runs [f] and records its wall-clock duration in the
    histogram [name]. The sample is recorded even if [f] raises. *)
val time : t -> string -> (unit -> 'a) -> 'a

(** Number of samples a histogram has seen. *)
val samples : histogram -> int

(** Quantile in seconds from the power-of-two buckets; [None] when the
    histogram is empty. [q <= 0.0] (and NaN, conservatively: maximum)
    returns the exact recorded minimum, [q >= 1.0] the exact recorded
    maximum; in between, the answer is a bucket's upper edge clamped
    into [min, max] — always reproducible for the same samples. *)
val quantile : histogram -> float -> float option

(** Mean sample in seconds; [None] when empty. *)
val mean : histogram -> float option

(** Sum of all samples, in seconds. *)
val sum : histogram -> float

(** [labeled name [(k, v); …]] renders the conventional
    [name{k="v",…}] instrument name. Registering under such names is
    how per-domain / per-pass breakdowns are encoded in the flat
    registry; {!Export_prom} splits the block back off and re-emits it
    as Prometheus labels. Values escape backslash, double quote and
    newline. *)
val labeled : string -> (string * string) list -> string

(** A point-in-time copy of one instrument: histograms carry their
    populated log2 buckets as [(upper edge in seconds, count)] pairs in
    increasing-edge order. *)
type view =
  | V_counter of int
  | V_gauge of int
  | V_histogram of {
      v_count : int;
      v_sum : float;  (** seconds *)
      v_min : float;
      v_max : float;
      v_buckets : (float * int) list;
    }

(** Every instrument's current value, sorted by name. *)
val snapshot : t -> (string * view) list

(** Render every instrument, sorted by name: counters as [name value],
    gauges as [name value (gauge)], histograms as
    [name count=… mean=… p50=… p90=… max=…]. Times are integer
    microseconds, rounded half away from zero — byte-stable for the
    same recorded samples. *)
val dump : t -> string

(** Forget every instrument's value (instruments stay registered). *)
val reset : t -> unit

(** Seconds rendered as integer microseconds, rounded half away from
    zero — the byte-stable rendering [dump] uses. *)
val us_string : float -> string
