(** A minimal JSON parser — enough to re-parse and validate the Chrome
    trace output (tests, `ivtool trace-check`). Numbers parse as
    floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** [escape_to_buffer buf s] appends [s] as a JSON string literal
    (including the surrounding quotes): quotes, backslashes, and
    control characters are escaped; bytes >= 0x80 pass through
    verbatim, so UTF-8 round-trips. Every JSON string the exporters
    emit goes through here. *)
val escape_to_buffer : Buffer.t -> string -> unit

(** [escape s] is {!escape_to_buffer} into a fresh string. *)
val escape : string -> string

(** Parse a complete JSON document; raises {!Parse_error}. *)
val parse : string -> t

val parse_result : string -> (t, string) result

(** Object member lookup; [None] on non-objects and absent keys. *)
val member : string -> t -> t option

(** [check_trace s] validates a Chrome trace_event file: JSON parses,
    [traceEvents] is an array, every record has [name]/[ph]/[ts]/[pid]/
    [tid] and complete events carry a non-negative [dur]. Returns
    [(total records, complete spans)]. *)
val check_trace : string -> (int * int, string) result
