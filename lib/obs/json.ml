(* A minimal recursive-descent JSON parser — just enough to re-parse and
   validate our own Chrome trace output (tests, `ivtool trace-check`).
   Accepts standard JSON; numbers come back as floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* The one JSON string-escaping routine in the tree: Export_chrome and
   the Prometheus/folded exporters' JSON needs all go through here so a
   single test suite covers them (test_prom). Output includes the
   surrounding quotes. Bytes >= 0x80 pass through verbatim — strings
   are treated as opaque byte sequences, which round-trips UTF-8. *)
let escape_to_buffer buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  escape_to_buffer buf s;
  Buffer.contents buf

type state = { s : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> error st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else error st ("expected " ^ word)

let escape_char st buf =
  match peek st with
  | None -> error st "unterminated escape"
  | Some c ->
    advance st;
    (match c with
     | '"' -> Buffer.add_char buf '"'
     | '\\' -> Buffer.add_char buf '\\'
     | '/' -> Buffer.add_char buf '/'
     | 'b' -> Buffer.add_char buf '\b'
     | 'f' -> Buffer.add_char buf '\012'
     | 'n' -> Buffer.add_char buf '\n'
     | 'r' -> Buffer.add_char buf '\r'
     | 't' -> Buffer.add_char buf '\t'
     | 'u' ->
       if st.pos + 4 > String.length st.s then error st "bad \\u escape";
       let hex = String.sub st.s st.pos 4 in
       st.pos <- st.pos + 4;
       let code =
         match int_of_string_opt ("0x" ^ hex) with
         | Some c -> c
         | None -> error st "bad \\u escape"
       in
       (* Encode the code point as UTF-8 (surrogates land verbatim —
          good enough for validation). *)
       if code < 0x80 then Buffer.add_char buf (Char.chr code)
       else if code < 0x800 then begin
         Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
         Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
       end
       else begin
         Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
         Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
         Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
       end
     | _ -> error st "bad escape")

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      escape_char st buf;
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> error st ("bad number " ^ text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else begin
    let fields = ref [] in
    let rec members () =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      fields := (key, v) :: !fields;
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        members ()
      | Some '}' -> advance st
      | _ -> error st "expected ',' or '}'"
    in
    members ();
    Obj (List.rev !fields)
  end

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    List []
  end
  else begin
    let items = ref [] in
    let rec elements () =
      let v = parse_value st in
      items := v :: !items;
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        elements ()
      | Some ']' -> advance st
      | _ -> error st "expected ',' or ']'"
    in
    elements ();
    List (List.rev !items)
  end

let parse s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing garbage";
  v

let parse_result s =
  match parse s with v -> Ok v | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* --- the trace-file checker (`ivtool trace-check`) --- *)

let check_trace s =
  match parse_result s with
  | Error msg -> Error ("not valid JSON: " ^ msg)
  | Ok v -> (
    match member "traceEvents" v with
    | None -> Error "missing \"traceEvents\" key"
    | Some (List evs) -> (
      let bad = ref None in
      let complete = ref 0 in
      List.iteri
        (fun i ev ->
          if !bad = None then begin
            let need key pred =
              match member key ev with
              | Some v when pred v -> ()
              | _ ->
                bad := Some (Printf.sprintf "event %d: missing or ill-typed %S" i key)
            in
            need "name" (function Str _ -> true | _ -> false);
            need "ph" (function Str _ -> true | _ -> false);
            need "ts" (function Num _ -> true | _ -> false);
            need "pid" (function Num _ -> true | _ -> false);
            need "tid" (function Num _ -> true | _ -> false);
            (match member "ph" ev with
             | Some (Str "X") ->
               complete := !complete + 1;
               need "dur" (function Num n -> n >= 0.0 | _ -> false)
             | _ -> ())
          end)
        evs;
      match !bad with
      | Some msg -> Error msg
      | None -> Ok (List.length evs, !complete))
    | Some _ -> Error "\"traceEvents\" is not an array")
