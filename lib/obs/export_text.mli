(** Sorted-text trace summary.

    Spans aggregate by (category, name) into
    [count/total/mean/min/max] rows; events count by name; an optional
    {!Instrument.t} registry is appended via {!Instrument.dump}. Rows
    sort lexicographically, times render as integer microseconds —
    output is byte-stable for the same recorded data. *)

val summary : ?instruments:Instrument.t -> Trace.span list -> Trace.event list -> string

val render : ?instruments:Instrument.t -> Trace.t -> string
