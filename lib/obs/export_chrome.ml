(* Chrome trace_event JSON (the "JSON Array Format" with a traceEvents
   wrapper), loadable in chrome://tracing and Perfetto.

   Spans become "X" (complete) events with ts/dur in microseconds;
   instant events become "i" events with scope "t". Span attributes land
   in [args]; the span id and parent id are included as args so the
   hierarchy survives even where the viewer's own stack inference (by
   time containment per tid) differs. *)

let buf_add_json_string = Json.escape_to_buffer

let buf_add_attr buf (k, v) =
  buf_add_json_string buf k;
  Buffer.add_char buf ':';
  match (v : Trace.attr) with
  | Trace.Str s -> buf_add_json_string buf s
  | Trace.Int i -> Buffer.add_string buf (string_of_int i)
  | Trace.Float f ->
    Buffer.add_string buf
      (if Float.is_finite f then Printf.sprintf "%.6g" f else "null")
  | Trace.Bool b -> Buffer.add_string buf (string_of_bool b)

let buf_add_args buf attrs =
  Buffer.add_string buf "\"args\":{";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char buf ',';
      buf_add_attr buf a)
    attrs;
  Buffer.add_char buf '}'

let span_record buf (s : Trace.span) =
  let ts = Clock.ns_to_us s.Trace.start_ns in
  let dur = Clock.ns_to_us (Int64.sub s.Trace.stop_ns s.Trace.start_ns) in
  Buffer.add_string buf "{\"name\":";
  buf_add_json_string buf s.Trace.name;
  Buffer.add_string buf ",\"cat\":";
  buf_add_json_string buf s.Trace.cat;
  Buffer.add_string buf
    (Printf.sprintf ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,"
       ts dur s.Trace.tid);
  let ids =
    ("span", Trace.Int s.Trace.sid)
    ::
    (match s.Trace.parent with
     | Some p -> [ ("parent", Trace.Int p) ]
     | None -> [])
  in
  buf_add_args buf (ids @ s.Trace.attrs);
  Buffer.add_char buf '}'

let event_record buf (e : Trace.event) =
  Buffer.add_string buf "{\"name\":";
  buf_add_json_string buf e.Trace.ev_name;
  Buffer.add_string buf ",\"cat\":";
  buf_add_json_string buf e.Trace.ev_cat;
  Buffer.add_string buf
    (Printf.sprintf ",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,"
       (Clock.ns_to_us e.Trace.ts_ns) e.Trace.ev_tid);
  buf_add_args buf e.Trace.ev_attrs;
  Buffer.add_char buf '}'

(* Perfetto/chrome://tracing label rows by "M" metadata events, not by
   raw pid/tid numbers: one [process_name] for the whole trace and one
   [thread_name] per distinct tid (tids are domain ids; 0 is the main
   domain). Without these, a multi-domain trace renders as anonymous
   numeric rows. *)
let metadata_record buf ~name ~tid ~value =
  Buffer.add_string buf "{\"name\":";
  buf_add_json_string buf name;
  Buffer.add_string buf
    (Printf.sprintf ",\"ph\":\"M\",\"ts\":0.000,\"pid\":1,\"tid\":%d,\"args\":{\"name\":"
       tid);
  buf_add_json_string buf value;
  Buffer.add_string buf "}}"

let thread_label tid = if tid = 0 then "main" else Printf.sprintf "domain-%d" tid

let distinct_tids spans events =
  let module IS = Set.Make (Int) in
  let tids = List.fold_left (fun acc (s : Trace.span) -> IS.add s.Trace.tid acc) IS.empty spans in
  let tids = List.fold_left (fun acc (e : Trace.event) -> IS.add e.Trace.ev_tid acc) tids events in
  IS.elements tids

let render_parts spans events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n";
  in
  sep ();
  metadata_record buf ~name:"process_name" ~tid:0 ~value:"ivtool";
  List.iter
    (fun tid ->
      sep ();
      metadata_record buf ~name:"thread_name" ~tid ~value:(thread_label tid))
    (distinct_tids spans events);
  List.iter (fun s -> sep (); span_record buf s) spans;
  List.iter (fun e -> sep (); event_record buf e) events;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let render t = render_parts (Trace.spans t) (Trace.events t)

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (render t))
