(** Folded-stacks exporter (flamegraph collapsed format).

    One line per distinct span stack — [frame;frame;frame value] —
    where the value is the stack's *self* time (duration minus direct
    children) in integer microseconds; zero-self-time stacks are
    omitted. Each stack is rooted at a synthetic [domainN] frame, so
    multi-domain traces fold into per-domain towers. Lines sort
    lexicographically — byte-stable for the same recorded spans, and
    directly consumable by flamegraph.pl / speedscope / inferno. *)

val render_parts : Trace.span list -> string
val render : Trace.t -> string
val write_file : string -> Trace.t -> unit
