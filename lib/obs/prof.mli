(** GC/allocation profiling: [Gc.quick_stat] deltas scoped to a span of
    work, recorded into an {!Instrument} registry.

    [quick_stat] is cheap and, on OCaml 5, domain-local for minor-heap
    counters — sampling inside a pool worker attributes allocation to
    that worker's domain. Major-heap counters are process-global:
    per-domain deltas of those over-attribute concurrent work, so
    per-domain analysis should lead with [minor_words].

    Deltas become counters named [<prefix>.minor_words],
    [<prefix>.promoted_words], [<prefix>.major_words],
    [<prefix>.minor_gcs], [<prefix>.major_gcs] (plus a process-wide
    [gc.heap_words] gauge), optionally labeled via
    {!Instrument.labeled} — so STATS, Prometheus and [--profile] all
    see them with no extra plumbing. *)

type sample = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  heap_words : int;
}

(** A [Gc.quick_stat] reading (allocation totals for the calling
    domain, process-wide major-heap figures). *)
val sample : unit -> sample

type delta = {
  d_minor_words : int;
  d_promoted_words : int;
  d_major_words : int;
  d_minor_gcs : int;
  d_major_gcs : int;
  d_heap_words : int;  (** heap level at the end sample, not a delta *)
}

(** [delta before after] — component-wise difference, clamped at 0. *)
val delta : sample -> sample -> delta

(** Bump [<prefix>.<field>] counters (zero deltas are skipped) and set
    the [gc.heap_words] gauge. [labels] are appended to each counter
    name via {!Instrument.labeled}. *)
val record :
  ?labels:(string * string) list -> Instrument.t -> prefix:string -> delta -> unit

(** The nonzero fields of a delta as span attributes
    ([minor_words], [promoted_words], [major_words], [minor_gcs],
    [major_gcs]) — attach with {!Trace.add_attrs}. *)
val attrs : delta -> (string * Trace.attr) list

(** [time m name f] is {!Instrument.time} plus a GC delta recorded
    under the same [name] prefix — wall clock into the [name]
    histogram, allocation into [name.minor_words] etc. Records even if
    [f] raises. *)
val time : Instrument.t -> string -> (unit -> 'a) -> 'a

(** Render the per-pass wall/alloc/GC table from a registry: one row
    per [phase.<pass>] histogram joined with its sibling GC counters,
    sorted by total wall time descending, with a totals row and the
    current [gc.heap_words] gauge. The [--profile] surface. *)
val phase_table : Instrument.t -> string
