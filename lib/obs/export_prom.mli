(** Prometheus text exposition (format 0.0.4) for an {!Instrument}
    registry, plus a row type so callers (e.g. [Service.Engine]) can
    fold in metrics that live outside the registry.

    Name mapping: dots become underscores under the [iv] namespace
    (override with [?namespace]); a trailing [{k="v",…}] block written
    by {!Instrument.labeled} is split off and re-emitted as labels;
    counters get [_total], histograms [_seconds] with cumulative
    [le]-bucket lines, [_sum] and [_count]; gauges are bare. Output is
    sorted by family then label block — byte-stable for the same
    recorded data. *)

type metric =
  | Counter of float
  | Gauge of float
  | Histogram of {
      h_count : int;
      h_sum : float;  (** seconds *)
      h_buckets : (float * int) list;
          (** (upper edge seconds, per-bucket count), increasing *)
    }

type row = { name : string; help : string option; metric : metric }

(** [row ?help name metric] — [name] is a registry-style dotted name,
    optionally with an {!Instrument.labeled} label block. *)
val row : ?help:string -> string -> metric -> row

(** Every instrument of a registry as rows (sorted by name). *)
val of_instruments : Instrument.t -> row list

(** Render rows as Prometheus text. *)
val render_rows : ?namespace:string -> row list -> string

(** [render m] = [render_rows (of_instruments m)]. *)
val render : ?namespace:string -> Instrument.t -> string
