(** The trace time source.

    Nanoseconds since a process-local epoch, monotonic within each
    domain (readings are clamped to never step backwards, so span
    durations are non-negative). *)

val now_ns : unit -> int64

(** Microseconds (with sub-µs precision) for Chrome's [ts]/[dur]. *)
val ns_to_us : int64 -> float
