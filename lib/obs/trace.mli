(** Hierarchical tracing: spans and structured events.

    One collector may be installed as the process-wide ambient sink;
    while none is installed, {!with_span} and {!event} cost a single
    atomic load (the pipeline stays instrumented unconditionally).
    Spans nest per domain — each domain keeps its own open-span stack,
    so a {!Trace.t} shared by a pool records one well-formed tree per
    worker, distinguished by the span's [tid]. *)

type attr =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type span = {
  sid : int;  (** unique within a collector *)
  parent : int option;  (** enclosing span on the same domain *)
  name : string;
  cat : string;
  tid : int;  (** domain id *)
  start_ns : int64;
  mutable stop_ns : int64;  (** = [start_ns] while still open *)
  mutable attrs : (string * attr) list;
}

type event = {
  ev_name : string;
  ev_cat : string;
  ev_tid : int;
  ts_ns : int64;
  ev_attrs : (string * attr) list;
}

type t

(** [create ~limit ()] — a collector retaining at most [limit] records
    (default 200k); excess spans/events are counted in {!dropped}
    instead of growing without bound (relevant to long-lived `serve`
    sessions). *)
val create : ?limit:int -> unit -> t

val install : t -> unit
val uninstall : unit -> unit
val current : unit -> t option
val enabled : unit -> bool

(** [with_span ~cat ~attrs name f] runs [f] inside a span; the span is
    recorded (and closed) even if [f] raises. No-op without an ambient
    collector. *)
val with_span : ?cat:string -> ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a

(** Append attributes to the innermost open span of this domain. *)
val add_attrs : (string * attr) list -> unit

(** An instant event. No-op without an ambient collector. *)
val event : ?cat:string -> ?attrs:(string * attr) list -> string -> unit

(** Recorded spans/events, in recording (chronological) order. *)
val spans : t -> span list

val events : t -> event list

(** Records rejected because the collector was full. *)
val dropped : t -> int

(** Atomically read and clear — the serve-mode [TRACE] verb. *)
val drain : t -> span list * event list

(** [collect f] runs [f] under a fresh temporarily-installed collector,
    restoring the previous one after; returns [f]'s result and the
    collector. *)
val collect : ?limit:int -> (unit -> 'a) -> 'a * t

val attr_to_string : attr -> string
