(* GC/allocation profiling built on [Gc.quick_stat] deltas.

   [Gc.quick_stat] is cheap (no heap traversal) and, on OCaml 5,
   domain-local for the minor-heap counters — so sampling inside a pool
   worker attributes allocation to that worker's domain, which is
   exactly what the per-domain scheduler telemetry needs. Major-heap
   figures (major_words, major_collections, heap_words) are shared
   across domains; deltas of those taken on one domain over-attribute
   work done concurrently elsewhere, which is why the per-phase table
   leads with minor words (the reliable per-domain signal).

   Deltas land in plain [Instrument] counters named
   [<prefix>.minor_words], [<prefix>.promoted_words],
   [<prefix>.major_words], [<prefix>.minor_gcs], [<prefix>.major_gcs]
   (optionally with a trailing [{k="v"}] label block via
   [Instrument.labeled]), so every exposition surface — STATS dump,
   Prometheus, the --profile table — reads them with no new plumbing. *)

type sample = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  heap_words : int;
}

let sample () =
  let s = Gc.quick_stat () in
  {
    (* Not [s.minor_words]: on OCaml 5 the quick_stat field only
       advances at GC events, so short spans that trigger no minor
       collection would read as zero allocation. [Gc.minor_words ()]
       adds the live young-region delta and is exact per domain. *)
    minor_words = Gc.minor_words ();
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    heap_words = s.Gc.heap_words;
  }

type delta = {
  d_minor_words : int;
  d_promoted_words : int;
  d_major_words : int;
  d_minor_gcs : int;
  d_major_gcs : int;
  d_heap_words : int;  (* level at the end sample, not a difference *)
}

let words f = if Float.is_finite f && f > 0.0 then int_of_float f else 0

let delta before after =
  {
    d_minor_words = words (after.minor_words -. before.minor_words);
    d_promoted_words = words (after.promoted_words -. before.promoted_words);
    d_major_words = words (after.major_words -. before.major_words);
    d_minor_gcs = max 0 (after.minor_collections - before.minor_collections);
    d_major_gcs = max 0 (after.major_collections - before.major_collections);
    d_heap_words = after.heap_words;
  }

let fields d =
  [
    ("minor_words", d.d_minor_words);
    ("promoted_words", d.d_promoted_words);
    ("major_words", d.d_major_words);
    ("minor_gcs", d.d_minor_gcs);
    ("major_gcs", d.d_major_gcs);
  ]

let record ?(labels = []) m ~prefix d =
  List.iter
    (fun (field, v) ->
      if v <> 0 then
        Instrument.incr ~by:v
          (Instrument.counter m (Instrument.labeled (prefix ^ "." ^ field) labels)))
    (fields d);
  Instrument.set_gauge (Instrument.gauge m "gc.heap_words") d.d_heap_words

let attrs d =
  List.filter_map
    (fun (field, v) -> if v = 0 then None else Some (field, Trace.Int v))
    (fields d)

let time m name f =
  let h = Instrument.histogram m name in
  let before = sample () in
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      Instrument.observe h (Unix.gettimeofday () -. t0);
      record m ~prefix:name (delta before (sample ())))
    f

(* --- the --profile per-pass table --- *)

(* Rows come straight out of a registry snapshot: one row per
   [phase.<pass>] histogram, joined with its sibling GC counters. The
   label block (if any) stays part of the pass name, so per-domain
   phase breakdowns would render as distinct rows. *)
let phase_prefix = "phase."

let phase_table m =
  let snap = Instrument.snapshot m in
  let counter name =
    match List.assoc_opt name snap with
    | Some (Instrument.V_counter v) -> v
    | _ -> 0
  in
  let rows =
    List.filter_map
      (fun (name, v) ->
        match v with
        | Instrument.V_histogram { v_count; v_sum; _ }
          when String.length name > String.length phase_prefix
               && String.sub name 0 (String.length phase_prefix) = phase_prefix ->
          let pass =
            String.sub name (String.length phase_prefix)
              (String.length name - String.length phase_prefix)
          in
          Some
            ( pass,
              v_count,
              v_sum,
              counter (name ^ ".minor_words"),
              counter (name ^ ".promoted_words"),
              counter (name ^ ".major_words"),
              counter (name ^ ".minor_gcs"),
              counter (name ^ ".major_gcs") )
        | _ -> None)
      snap
  in
  let rows =
    List.sort
      (fun (na, _, sa, _, _, _, _, _) (nb, _, sb, _, _, _, _, _) ->
        match Float.compare sb sa with 0 -> String.compare na nb | c -> c)
      rows
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "profile: per-pass wall / allocation / GC (sorted by wall time)\n";
  Buffer.add_string buf
    (Printf.sprintf "%-16s %6s %10s %12s %12s %12s %5s %5s\n" "pass" "calls"
       "wall_us" "minor_w" "promoted_w" "major_w" "mGC" "MGC");
  let t_calls = ref 0 and t_sum = ref 0.0 in
  let t_minor = ref 0 and t_prom = ref 0 and t_major = ref 0 in
  let t_mgc = ref 0 and t_mjgc = ref 0 in
  List.iter
    (fun (pass, calls, sum, minor, prom, major, mgc, mjgc) ->
      t_calls := !t_calls + calls;
      t_sum := !t_sum +. sum;
      t_minor := !t_minor + minor;
      t_prom := !t_prom + prom;
      t_major := !t_major + major;
      t_mgc := !t_mgc + mgc;
      t_mjgc := !t_mjgc + mjgc;
      Buffer.add_string buf
        (Printf.sprintf "%-16s %6d %10s %12d %12d %12d %5d %5d\n" pass calls
           (Instrument.us_string sum) minor prom major mgc mjgc))
    rows;
  if rows = [] then Buffer.add_string buf "(no phase.* histograms recorded)\n"
  else
    Buffer.add_string buf
      (Printf.sprintf "%-16s %6d %10s %12d %12d %12d %5d %5d\n" "total" !t_calls
         (Instrument.us_string !t_sum)
         !t_minor !t_prom !t_major !t_mgc !t_mjgc);
  (match List.assoc_opt "gc.heap_words" snap with
   | Some (Instrument.V_gauge words) ->
     Buffer.add_string buf (Printf.sprintf "major heap: %d words\n" words)
   | _ -> ());
  Buffer.contents buf
