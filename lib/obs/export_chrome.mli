(** Chrome [trace_event] JSON exporter.

    The output is the standard [{"traceEvents": [...]}] object: spans as
    ["ph":"X"] complete events (ts/dur in microseconds), instant events
    as ["ph":"i"]. Load the file in chrome://tracing or
    {{:https://ui.perfetto.dev}Perfetto}. Span and parent ids ride along
    in [args] so the recorded hierarchy is recoverable exactly.

    The event stream opens with ["ph":"M"] metadata: a [process_name]
    record plus one [thread_name] per distinct tid ([main] for tid 0,
    [domain-N] otherwise), so Perfetto labels multi-domain rows instead
    of showing anonymous tid numbers. *)

val render : Trace.t -> string

(** Render pre-drained spans/events (the serve-mode [TRACE] verb). *)
val render_parts : Trace.span list -> Trace.event list -> string

val write_file : string -> Trace.t -> unit
