(* Folded-stacks output (Brendan Gregg's flamegraph collapsed format):
   one line per distinct stack, [frame;frame;frame value], where value
   is the stack's *self* time in integer microseconds — span duration
   minus the duration of its direct children, clamped at zero (children
   recorded on another domain never subtract from a parent's self
   time, because stacks nest per domain by construction).

   Stacks are rooted at a synthetic [domainN] frame per tid, so a
   multi-domain trace folds into per-domain towers. Feed the output to
   flamegraph.pl / speedscope / inferno unchanged. *)

let render_parts spans =
  let by_sid = Hashtbl.create (List.length spans * 2) in
  List.iter (fun (s : Trace.span) -> Hashtbl.replace by_sid s.Trace.sid s) spans;
  (* child durations, summed per parent sid *)
  let child_ns = Hashtbl.create 64 in
  List.iter
    (fun (s : Trace.span) ->
      match s.Trace.parent with
      | None -> ()
      | Some p ->
        let d = Int64.sub s.Trace.stop_ns s.Trace.start_ns in
        let prev =
          match Hashtbl.find_opt child_ns p with Some v -> v | None -> 0L
        in
        Hashtbl.replace child_ns p (Int64.add prev d))
    spans;
  let rec path (s : Trace.span) acc =
    let acc = s.Trace.name :: acc in
    match s.Trace.parent with
    | None -> Printf.sprintf "domain%d" s.Trace.tid :: acc
    | Some p -> (
      match Hashtbl.find_opt by_sid p with
      | Some parent -> path parent acc
      | None -> Printf.sprintf "domain%d" s.Trace.tid :: acc)
  in
  let totals = Hashtbl.create 64 in
  List.iter
    (fun (s : Trace.span) ->
      let dur = Int64.sub s.Trace.stop_ns s.Trace.start_ns in
      let children =
        match Hashtbl.find_opt child_ns s.Trace.sid with Some v -> v | None -> 0L
      in
      let self = Int64.sub dur children in
      let self = if Int64.compare self 0L < 0 then 0L else self in
      let us = int_of_float (Float.round (Clock.ns_to_us self)) in
      if us > 0 then begin
        let key = String.concat ";" (path s []) in
        let prev = match Hashtbl.find_opt totals key with Some v -> v | None -> 0 in
        Hashtbl.replace totals key (prev + us)
      end)
    spans;
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (stack, us) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" stack us))
    rows;
  Buffer.contents buf

let render t = render_parts (Trace.spans t)

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (render t))
