(* Counters, gauges and log2-bucketed latency histograms, registered by
   name. One mutex per registry; individual updates also take it (they
   are rare enough per-sample — parsing/analysis dominates by orders of
   magnitude).

   This module is the library behind [Service.Metrics] (which re-exports
   it unchanged); it lives in [lib/obs] so the tracing exporters can
   fold instrument state into their summaries. *)

let buckets = 40
(* bucket i holds samples in [2^i, 2^(i+1)) microseconds; 2^39 µs ≈ 6.4 days *)

type counter = { c_lock : Mutex.t; mutable c : int }
type gauge = { g_lock : Mutex.t; mutable g : int }

type histogram = {
  h_lock : Mutex.t;
  counts : int array; (* log2 µs buckets *)
  mutable n : int;
  mutable sum : float; (* seconds *)
  mutable min_s : float;
  mutable max_s : float;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { lock : Mutex.t; tbl : (string, instrument) Hashtbl.t }

let create () = { lock = Mutex.create (); tbl = Hashtbl.create 32 }

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let register t name make cast =
  locked t.lock (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some i -> cast name i
      | None ->
        let i = make () in
        Hashtbl.replace t.tbl name i;
        cast name i)

let wrong name = invalid_arg ("Instrument: kind mismatch for " ^ name)

let counter t name =
  register t name
    (fun () -> Counter { c_lock = Mutex.create (); c = 0 })
    (fun name -> function Counter c -> c | _ -> wrong name)

let incr ?(by = 1) c = locked c.c_lock (fun () -> c.c <- c.c + by)
let count c = locked c.c_lock (fun () -> c.c)

let gauge t name =
  register t name
    (fun () -> Gauge { g_lock = Mutex.create (); g = 0 })
    (fun name -> function Gauge g -> g | _ -> wrong name)

let set_gauge g v = locked g.g_lock (fun () -> g.g <- v)
let gauge_value g = locked g.g_lock (fun () -> g.g)

let histogram t name =
  register t name
    (fun () ->
      Histogram
        {
          h_lock = Mutex.create ();
          counts = Array.make buckets 0;
          n = 0;
          sum = 0.0;
          min_s = infinity;
          max_s = neg_infinity;
        })
    (fun name -> function Histogram h -> h | _ -> wrong name)

let bucket_of_seconds s =
  let us = s *. 1e6 in
  if us < 1.0 then 0
  else
    let b = int_of_float (Float.log2 us) in
    if b < 0 then 0 else if b >= buckets then buckets - 1 else b

(* Upper edge of bucket [i], in seconds: 2^(i+1) µs. *)
let bucket_upper i = Float.of_int (1 lsl (i + 1)) *. 1e-6

let observe h s =
  locked h.h_lock (fun () ->
      let i = bucket_of_seconds s in
      h.counts.(i) <- h.counts.(i) + 1;
      h.n <- h.n + 1;
      h.sum <- h.sum +. s;
      if s < h.min_s then h.min_s <- s;
      if s > h.max_s then h.max_s <- s)

let time t name f =
  let h = histogram t name in
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> observe h (Unix.gettimeofday () -. t0)) f

let samples h = locked h.h_lock (fun () -> h.n)
let sum h = locked h.h_lock (fun () -> h.sum)

(* The {k="v"} block goes at the *end* of the name so exporters can
   split it back off with a single [String.index] — see Export_prom. *)
let labeled name labels =
  match labels with
  | [] -> name
  | labels ->
    let buf = Buffer.create (String.length name + 16) in
    Buffer.add_string buf name;
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        String.iter
          (fun c ->
            match c with
            | '\\' -> Buffer.add_string buf "\\\\"
            | '"' -> Buffer.add_string buf "\\\""
            | '\n' -> Buffer.add_string buf "\\n"
            | c -> Buffer.add_char buf c)
          v;
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}';
    Buffer.contents buf

(* Quantiles interpolate nothing: the answer is always one of the two
   exact extremes or a bucket's upper edge clamped into [min, max], so
   the same samples always render the same bytes.

   Edge behavior: q <= 0 is the recorded minimum, q >= 1 (and NaN,
   conservatively) the recorded maximum; empty leading/trailing buckets
   are skipped by the cumulative scan. *)
let quantile h q =
  locked h.h_lock (fun () ->
      if h.n = 0 then None
      else if Float.is_nan q || q >= 1.0 then Some h.max_s
      else if q <= 0.0 then Some h.min_s
      else begin
        let target = int_of_float (Float.round (q *. float_of_int (h.n - 1))) + 1 in
        let target = if target > h.n then h.n else target in
        let rec scan i seen =
          if i >= buckets then Some h.max_s
          else
            let seen = seen + h.counts.(i) in
            if seen >= target then
              Some (Float.max h.min_s (Float.min (bucket_upper i) h.max_s))
            else scan (i + 1) seen
        in
        scan 0 0
      end)

let mean h =
  locked h.h_lock (fun () ->
      if h.n = 0 then None else Some (h.sum /. float_of_int h.n))

(* Deterministic µs rendering: integer microseconds, half away from
   zero. [%.0f] would round half-to-even through the C library;
   converting explicitly keeps the text stable across runtimes. *)
let us_string s = Printf.sprintf "%.0f" (Float.round (s *. 1e6))

let dump t =
  let rows =
    locked t.lock (fun () ->
        Hashtbl.fold (fun name i acc -> (name, i) :: acc) t.tbl [])
  in
  let render (name, i) =
    match i with
    | Counter c -> Printf.sprintf "%-32s %d" name (count c)
    | Gauge g -> Printf.sprintf "%-32s %d (gauge)" name (gauge_value g)
    | Histogram h ->
      let n = samples h in
      if n = 0 then Printf.sprintf "%-32s count=0" name
      else
        let get o = Option.value ~default:0.0 o in
        Printf.sprintf "%-32s count=%d mean=%sus p50=%sus p90=%sus max=%sus" name n
          (us_string (get (mean h)))
          (us_string (get (quantile h 0.5)))
          (us_string (get (quantile h 0.9)))
          (us_string (locked h.h_lock (fun () -> h.max_s)))
    in
  rows
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map render
  |> String.concat "\n"

(* Point-in-time copies for the exporters: no locks escape, and a
   histogram's buckets come back as (upper edge in seconds, count)
   pairs for the populated buckets only. *)
type view =
  | V_counter of int
  | V_gauge of int
  | V_histogram of {
      v_count : int;
      v_sum : float;
      v_min : float;
      v_max : float;
      v_buckets : (float * int) list;
    }

let view = function
  | Counter c -> V_counter (count c)
  | Gauge g -> V_gauge (gauge_value g)
  | Histogram h ->
    locked h.h_lock (fun () ->
        let bs = ref [] in
        for i = buckets - 1 downto 0 do
          if h.counts.(i) > 0 then bs := (bucket_upper i, h.counts.(i)) :: !bs
        done;
        V_histogram
          {
            v_count = h.n;
            v_sum = h.sum;
            v_min = h.min_s;
            v_max = h.max_s;
            v_buckets = !bs;
          })

let snapshot t =
  locked t.lock (fun () ->
      Hashtbl.fold (fun name i acc -> (name, i) :: acc) t.tbl [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (name, i) -> (name, view i))

let reset t =
  let instruments =
    locked t.lock (fun () -> Hashtbl.fold (fun _ i acc -> i :: acc) t.tbl [])
  in
  List.iter
    (function
      | Counter c -> locked c.c_lock (fun () -> c.c <- 0)
      | Gauge g -> locked g.g_lock (fun () -> g.g <- 0)
      | Histogram h ->
        locked h.h_lock (fun () ->
            Array.fill h.counts 0 buckets 0;
            h.n <- 0;
            h.sum <- 0.0;
            h.min_s <- infinity;
            h.max_s <- neg_infinity))
    instruments
