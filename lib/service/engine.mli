(** The memoizing analysis engine.

    An engine owns one {!Cache} and one {!Metrics} registry and serves
    the repository's analyses over raw source text. Artifacts are
    content-addressed: the cache key is a {!Digest} of the source text,
    the analysis options, and the artifact kind, so the same source
    analyzed under different options occupies distinct entries, and a
    re-submitted source is a pure cache hit.

    Memoized artifacts:
    - the whole-program {!Analysis.Driver.t} (the expensive step:
      parse → CFG → SSA → SCCP → classification → trip counts);
    - the [classify], [deps] and [trip] text reports derived from it.

    Phase timings (parse/ssa/classify/deps) are recorded in the metrics
    registry, and {!Pool.tick} is called between phases so pooled tasks
    honor cooperative timeouts. One engine may be shared by all domains
    of a {!Pool}. *)

type options = { use_sccp : bool }

val default_options : options

type artifact = Classify | Deps | Trip

val artifact_to_string : artifact -> string
val artifact_of_string : string -> artifact option

type t

(** [create ~capacity ~options ()] — [capacity] bounds the artifact
    cache (default 256 entries). *)
val create : ?capacity:int -> ?options:options -> unit -> t

val options : t -> options
val metrics : t -> Metrics.t
val cache_stats : t -> Cache.stats

(** The memoized whole-program analysis. [Error] carries the parse (or
    SSA-construction) diagnostic; errors are cached too, so a corpus
    with a malformed member does not re-parse it on every batch pass. *)
val analyze : t -> string -> (Analysis.Driver.t, string) result

(** [render t artifact src] is the memoized text report. *)
val render : t -> artifact -> string -> (string, string) result

val classify : t -> string -> (string, string) result
val deps : t -> string -> (string, string) result
val trip : t -> string -> (string, string) result

(** [invalidate t src] drops every cached artifact derived from [src]
    (under the engine's options); returns how many entries were
    removed. *)
val invalidate : t -> string -> int

(** Drop every cache entry and reset metrics. *)
val clear : t -> unit

(** Cache statistics plus the metrics dump, as text — the [STATS]
    payload. *)
val stats_report : t -> string
