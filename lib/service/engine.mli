(** The memoizing analysis engine.

    An engine owns one {!Cache} and one {!Metrics} registry and serves
    the repository's analyses over raw source text. Caching is
    per-pass, not per-monolith: the source text is digested once per
    request, that digest names an {!Analysis.Pipeline} instance in the
    LRU, and each request forces exactly the pipeline passes its
    artifact needs — a [trip] request never runs promotion or
    dependence testing. Per-pass hit/miss counts are kept alongside the
    entry-level cache statistics (see {!pass_stats}).

    The dependence report — the one pass computed above [lib/analysis]
    — is cached under a key derived from the promote pass's result
    digest, so it is shared by any source (under any options) whose
    promoted classification renders identically. Checked mode
    ({!check}) works the same way: each verify part is cached under the
    digests of the passes it actually reads.

    Phase timings ([phase.parse], [phase.ssa], [phase.classify],
    [phase.deps], …) are recorded in the metrics registry on the miss
    path, and {!Pool.tick} is called between passes so pooled tasks
    honor cooperative timeouts. One engine may be shared by all domains
    of a {!Pool}. *)

type options = {
  use_sccp : bool;
  check_iters : int;
      (** the oracle's per-loop iteration bound N for checked mode *)
  use_ranges : bool;
      (** range-sharpen dependence testing and run the range oracle in
          checked mode (the [--no-ranges] baseline turns this off) *)
}

val default_options : options
(** [{ use_sccp = true; check_iters = 100; use_ranges = true }] *)

type artifact = Classify | Deps | Trip | Check | Ranges

val artifact_to_string : artifact -> string
val artifact_of_string : string -> artifact option

type t

(** [create ~capacity ~options ~store ()] — [capacity] bounds the
    memory cache (default 256 entries: pipelines plus dependence
    reports). [store] layers a persistent disk tier under it: rendered
    artifacts are looked up there when the memory tier misses
    (promoting the bytes back into the LRU on a hit) and published
    there after every fresh computation, so a restarted process — or a
    sibling process sharing the same store — starts warm. Structured
    values (pipelines, unit artifacts, verify parts) stay memory-only:
    they embed process-local interned identifiers. See docs/STORE.md. *)
val create :
  ?capacity:int -> ?options:options -> ?store:Store.Disk.t -> unit -> t

val options : t -> options
val metrics : t -> Metrics.t
val cache_stats : t -> Cache.stats

(** The attached disk store, if any. *)
val store : t -> Store.Disk.t option

(** Attach ([Some]) or detach ([None]) the disk tier at runtime — the
    serve-mode [PERSIST] verb. Requests in flight keep whichever store
    they already probed. *)
val set_store : t -> Store.Disk.t option -> unit

(** The engine's pipeline instance for [src] (creating an unforced one
    on first sight). Exposed for introspection and tests. *)
val pipeline : t -> string -> Analysis.Pipeline.t

(** The memoized whole-program analysis (forces through promotion).
    [Error] carries the parse (or SSA-construction) diagnostic; errors
    are cached too, so a corpus with a malformed member does not
    re-parse it on every batch pass.

    On every entry point below, [?pool] lends the engine a domain pool:
    when a Classify miss must analyze more than one unit, the per-unit
    walks fan out across its workers. Only pass a pool from a
    coordinator context — never from inside a pool task (nested [run]
    would deadlock). *)
val analyze : ?pool:Pool.pool -> t -> string -> (Analysis.Driver.t, string) result

(** [render t artifact src] is the memoized text report, forcing only
    the passes the artifact needs. A Classify miss runs unit-at-a-time
    through the shared unit-artifact cache: unchanged units (keyed by
    their exact {!Analysis.Pipeline.unit_info} digest) are reused, and
    each nest unit counts one [unit_classify] hit or miss in
    {!pass_stats}. *)
val render : ?pool:Pool.pool -> t -> artifact -> string -> (string, string) result

val classify : t -> string -> (string, string) result
val deps : t -> string -> (string, string) result
val trip : t -> string -> (string, string) result

(** The rendered per-def interval table ([render t Ranges src]). *)
val ranges : t -> string -> (string, string) result

(** [diff t old_src new_src] analyzes [old_src] (warming the unit
    cache), then [new_src] through it, and renders one line per
    analysis unit saying whether its artifact was reused or
    re-analyzed, and why ([ivtool diff]). *)
val diff : ?pool:Pool.pool -> t -> string -> string -> (string, string) result

(** [reanalyze t src] — the serve-mode REANALYZE verb: classify [src]
    through the unit layer and prepend a unit-reuse summary line to the
    classification report. With a warm unit cache, only the units whose
    digests changed are recomputed. *)
val reanalyze : ?pool:Pool.pool -> t -> string -> (string, string) result

(** [check t src] is checked mode as a structured report: the three
    verify passes ([verify_ir], [verify_class], [verify_trans]) forced
    through the part cache — each keyed off the digests of the passes it
    reads, each recorded on the pipeline so [passes]/STATS show it. The
    rendered equivalent is [render t Check src]. When the structural
    part finds errors the report carries only that part: a broken IR is
    not interpreted or transformed. *)
val check : t -> string -> (Verify.Check.report, string) result

(** [invalidate t src] drops the pipeline entry for [src] (under the
    engine's options) and its derived dependence report; returns how
    many entries were removed. *)
val invalidate : t -> string -> int

(** Drop every cache entry, reset cache statistics, metrics, and the
    per-pass counters. *)
val clear : t -> unit

(** [(pass, hits, misses)] per pipeline pass, in topological order.
    A hit means a request needed the pass and found it already forced;
    a miss means the request ran it. *)
val pass_stats : t -> (string * int * int) list

(** [(artifact, mem, disk, computed)] per artifact kind: how many
    {!render} requests were served from the memory tier (LRU hit,
    including pipeline-level hits), from the disk store, or freshly
    computed. All zeros until the first render. *)
val artifact_stats : t -> (artifact * int * int * int) list

(** Cache statistics, the store line (when a store is attached),
    per-artifact tier counters with hit rates, per-pass hit/miss lines
    with hit rates, and the metrics dump, as text — the [STATS]
    payload. *)
val stats_report : t -> string

(** Prometheus text-format (0.0.4) exposition of everything the engine
    knows: cache/store tiers, per-pass hit/miss counters
    ([iv_pass_hits_total{pass="…"}]), per-artifact tier counters, a
    current-process GC snapshot, and the whole metrics registry (phase
    wall/GC, pool per-domain telemetry). Backs serve [METRICS] and
    `ivtool metrics`. *)
val prometheus_report : t -> string

(** [passes_report t src] — the pass DAG for [src] (the [ivtool
    passes] body). Columns: pass, forced/lazy status, owner ([store]
    when the pass's artifact was served from the disk tier and the
    pass was therefore never run, [engine] for
    {!Analysis.Pipeline.engine_forced} passes, [pipeline] otherwise),
    result digest, inputs. *)
val passes_report : t -> string -> string
